(* The proactive flow-table compiler (lib/compiler): lowering unit
   semantics (prefix expansion, port enumeration, budget spillover,
   truncation), incremental deltas, translation validation, the
   randomized table-vs-FDD-vs-Eval differential over every shipped
   policy, and the end-to-end proactive controller: a statically-passed
   flow crosses the fabric with zero packet-ins, reactive residue still
   punts, keep-state regions stay controller-mediated, and evictions of
   compiled entries are counted and spanned. *)

open Netcore
module Fdd = Analysis.Fdd
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module PS = Identxx_core.Policy_store
module Net = Openflow.Network
module Topo = Openflow.Topology
module MF = Openflow.Match_fields

let ip = Ipv4.of_string

let env_of s =
  match Pf.Env.of_string s with
  | Ok env -> env
  | Error e -> Alcotest.failf "env error: %s" e

let flow ?(proto = Proto.Tcp) ?(sp = 40000) ?(dp = 80) src dst =
  Five_tuple.make ~proto ~src:(ip src) ~dst:(ip dst) ~src_port:sp ~dst_port:dp

let decision =
  Alcotest.testable
    (fun fmt d -> Format.pp_print_string fmt (Compiler.decision_to_string d))
    ( = )

(* --- lowering unit semantics --- *)

let test_simple_lowering () =
  let tbl =
    Compiler.compile
      (Fdd.compile (env_of "block all\npass from 10.0.0.0/8 to any port 80"))
  in
  Alcotest.(check decision)
    "inside passes" (Compiler.Decide Pf.Ast.Pass)
    (Compiler.lookup tbl (flow "10.1.2.3" "1.2.3.4"));
  Alcotest.(check decision)
    "outside blocks" (Compiler.Decide Pf.Ast.Block)
    (Compiler.lookup tbl (flow "11.1.2.3" "1.2.3.4"));
  Alcotest.(check decision)
    "port mismatch blocks" (Compiler.Decide Pf.Ast.Block)
    (Compiler.lookup tbl (flow ~dp:81 "10.1.2.3" "1.2.3.4"));
  Alcotest.(check bool) "no spills" true (tbl.Compiler.spills = []);
  Alcotest.(check bool) "not truncated" false tbl.Compiler.truncated;
  Alcotest.(check (float 1e-9))
    "full static coverage installed" tbl.Compiler.static_coverage
    tbl.Compiler.installed_coverage;
  (* priorities descend in steps of 2 inside the compiled band *)
  List.iter
    (fun (e : Compiler.entry) ->
      Alcotest.(check bool)
        "priority inside band" true
        (e.Compiler.e_priority >= Compiler.priority_floor
        && e.Compiler.e_priority < 0x8000
        && (e.Compiler.e_priority - Compiler.priority_floor) mod 2 = 0))
    tbl.Compiler.entries

let test_prefix_expansion () =
  (* Carving 10.32/11 out of 10/8 leaves the non-aligned interval
     [10.64.0.0, 10.255.255.255], which must expand into several
     aligned CIDR blocks (10.64/10 + 10.128/9) — and the carve-out
     still blocks. *)
  let tbl =
    Compiler.compile
      (Fdd.compile
         (env_of
            "block all\npass proto tcp from 10.0.0.0/8 to any port 80\nblock \
             quick proto tcp from 10.32.0.0/11 to any"))
  in
  Alcotest.(check decision)
    "carve-out blocks" (Compiler.Decide Pf.Ast.Block)
    (Compiler.lookup tbl (flow "10.33.0.1" "1.2.3.4"));
  Alcotest.(check decision)
    "below the carve-out passes" (Compiler.Decide Pf.Ast.Pass)
    (Compiler.lookup tbl (flow "10.1.2.4" "1.2.3.4"));
  Alcotest.(check decision)
    "above the carve-out passes" (Compiler.Decide Pf.Ast.Pass)
    (Compiler.lookup tbl (flow "10.65.0.1" "1.2.3.4"));
  Alcotest.(check decision)
    "outside 10/8 blocks" (Compiler.Decide Pf.Ast.Block)
    (Compiler.lookup tbl (flow "192.0.2.9" "1.2.3.4"));
  let pass_prefixes =
    List.filter_map
      (fun (e : Compiler.entry) ->
        if e.Compiler.e_decision = Compiler.Decide Pf.Ast.Pass then
          e.Compiler.e_fields.MF.nw_src
        else None)
      tbl.Compiler.entries
    |> List.sort_uniq compare
  in
  Alcotest.(check bool)
    "pass region needed several source prefixes" true
    (List.length pass_prefixes >= 3);
  Alcotest.(check bool) "no spills" true (tbl.Compiler.spills = [])

let test_port_enumeration () =
  (* OpenFlow 1.0 has no port masks: a small range enumerates. *)
  let tbl =
    Compiler.compile
      (Fdd.compile
         (env_of "block all\npass proto tcp from any to any port 8080:8090"))
  in
  Alcotest.(check decision)
    "in range passes" (Compiler.Decide Pf.Ast.Pass)
    (Compiler.lookup tbl (flow ~dp:8085 "1.1.1.1" "2.2.2.2"));
  Alcotest.(check decision)
    "out of range blocks" (Compiler.Decide Pf.Ast.Block)
    (Compiler.lookup tbl (flow ~dp:8091 "1.1.1.1" "2.2.2.2"));
  Alcotest.(check bool) "no spills" true (tbl.Compiler.spills = []);
  let exact_dports =
    List.filter
      (fun (e : Compiler.entry) ->
        e.Compiler.e_fields.MF.tp_dst <> None
        && e.Compiler.e_decision = Compiler.Decide Pf.Ast.Pass)
      tbl.Compiler.entries
  in
  Alcotest.(check int) "eleven enumerated ports" 11 (List.length exact_dports)

let test_budget_spill () =
  (* A range wider than the region budget is not expanded: the region
     stays reactive behind a punt, and installed coverage drops below
     the diagram's static coverage. *)
  let tbl =
    Compiler.compile
      (Fdd.compile
         (env_of "block all\npass proto tcp from any to any port 1024:60000"))
  in
  Alcotest.(check bool) "spilled" true (tbl.Compiler.spills <> []);
  List.iter
    (fun (s : Compiler.spill) ->
      Alcotest.(check bool)
        "spill cost exceeds budget" true
        (s.Compiler.sp_cost > Compiler.default_region_budget))
    tbl.Compiler.spills;
  Alcotest.(check decision)
    "spilled region punts" Compiler.Punt
    (Compiler.lookup tbl (flow ~dp:2000 "1.1.1.1" "2.2.2.2"));
  Alcotest.(check decision)
    "unspilled region still decides" (Compiler.Decide Pf.Ast.Block)
    (Compiler.lookup tbl (flow ~proto:Proto.Udp ~dp:53 "1.1.1.1" "2.2.2.2"));
  Alcotest.(check bool)
    "installed coverage below static" true
    (tbl.Compiler.installed_coverage < tbl.Compiler.static_coverage)

let test_truncation () =
  let fdd =
    Fdd.compile
      (env_of "block all\npass proto tcp from !10.1.2.3 to any port 80")
  in
  let full = Compiler.compile fdd in
  let n = List.length full.Compiler.entries in
  Alcotest.(check bool) "policy needs several entries" true (n > 2);
  let tbl = Compiler.compile ~max_entries:2 fdd in
  Alcotest.(check bool) "truncated" true tbl.Compiler.truncated;
  Alcotest.(check bool)
    "within bound" true
    (List.length tbl.Compiler.entries <= 2);
  (* still total and still sound: validation allows punts, never a
     wrong decision *)
  (match Compiler.verify tbl fdd with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "truncated table fails validation: %s" e);
  Alcotest.(check bool)
    "installed coverage dropped" true
    (tbl.Compiler.installed_coverage < full.Compiler.installed_coverage)

let entry_key (e : Compiler.entry) =
  (e.Compiler.e_fields, e.Compiler.e_priority, e.Compiler.e_decision)

let test_incremental_delta () =
  let cache = Compiler.create_cache () in
  let a =
    Compiler.compile ~cache
      (Fdd.compile (env_of "block all\npass proto tcp from any to any port 80"))
  in
  let self = Compiler.delta ~old_:a a in
  Alcotest.(check int) "self delta adds nothing" 0
    (List.length self.Compiler.d_add);
  Alcotest.(check int) "self delta deletes nothing" 0
    (List.length self.Compiler.d_del);
  let b =
    Compiler.compile ~cache
      (Fdd.compile
         (env_of
            "block all\npass proto tcp from any to any port 80\npass proto \
             udp from any to any port 53"))
  in
  let d = Compiler.delta ~old_:a b in
  Alcotest.(check bool) "delta adds something" true (d.Compiler.d_add <> []);
  (* applying the delta to the old entry set yields exactly the new one *)
  let module S = Set.Make (struct
    type t = MF.t * int * Compiler.decision

    let compare = compare
  end) in
  let set l = S.of_list (List.map entry_key l) in
  let applied =
    S.union
      (S.diff (set a.Compiler.entries) (set d.Compiler.d_del))
      (set d.Compiler.d_add)
  in
  Alcotest.(check bool)
    "old - del + add = new" true
    (S.equal applied (set b.Compiler.entries))

(* --- the randomized differential: table vs diagram vs evaluator --- *)

let interesting_addrs =
  [|
    "192.168.0.5"; "192.168.0.255"; "192.168.1.1"; "192.168.1.7";
    "10.1.2.3"; "10.255.0.1"; "10.0.0.0"; "123.123.123.9"; "123.123.124.1";
    "172.16.3.9"; "8.8.8.8"; "0.0.0.0"; "255.255.255.255";
  |]

let interesting_ports = [| 0; 79; 80; 81; 443; 1000; 1023; 8080; 65535 |]

let random_addr prng =
  if Sim.Prng.bool prng then
    Ipv4.of_string (Sim.Prng.pick prng interesting_addrs)
  else Ipv4.of_int (Int64.to_int (Sim.Prng.next64 prng) land 0xFFFF_FFFF)

let random_port prng =
  if Sim.Prng.bool prng then Sim.Prng.pick prng interesting_ports
  else Sim.Prng.int prng 65536

let random_flow prng =
  let proto =
    match Sim.Prng.int prng 4 with
    | 0 -> Proto.Tcp
    | 1 -> Proto.Udp
    | 2 -> Proto.Icmp
    | _ -> Proto.Other 47
  in
  Five_tuple.make ~proto ~src:(random_addr prng) ~dst:(random_addr prng)
    ~src_port:(random_port prng) ~dst_port:(random_port prng)

let random_ctx prng fl =
  let response () =
    Identxx.Response.make ~flow:fl
      [
        List.map
          (fun (k, v) -> Identxx.Key_value.pair k v)
          [
            ( "name",
              Sim.Prng.pick prng [| "skype"; "firefox"; "Server"; "ssh" |] );
            ("userID", Sim.Prng.pick prng [| "system"; "alice" |]);
            ("version", Sim.Prng.pick prng [| "150"; "210" |]);
            ("os-patch", Sim.Prng.pick prng [| "MS08-067"; "KB12345" |]);
          ];
      ]
  in
  let src = if Sim.Prng.int prng 4 = 0 then None else Some (response ()) in
  let dst = if Sim.Prng.int prng 4 = 0 then None else Some (response ()) in
  Pf.Eval.ctx ?src ?dst ()

(* For every flow: a [Decide] must agree with the diagram {e and} with
   the real evaluator under arbitrary contexts; a [Punt] is correct on
   reactive regions and acceptable on static ones only when the table
   spilled or truncated (soundness may cost completeness, never the
   reverse). *)
let differential name env ~flows =
  let fdd = Fdd.compile env in
  let tbl = Compiler.compile fdd in
  (match Compiler.verify tbl fdd with
  | Ok n -> Alcotest.(check bool) (name ^ ": regions checked") true (n > 0)
  | Error e -> Alcotest.failf "%s: translation validation failed: %s" name e);
  let prng = Sim.Prng.create 0xc0de in
  for i = 1 to flows do
    let fl = random_flow prng in
    match (Compiler.lookup tbl fl, Fdd.lookup fdd fl) with
    | Compiler.Decide a, Fdd.Static { action; _ } when action = a ->
        for _ = 1 to 2 do
          let ctx = random_ctx prng fl in
          match Pf.Eval.eval env ctx fl with
          | Ok v ->
              if v.Pf.Eval.decision <> a then
                Alcotest.failf "%s: flow %d (%s): table decides against Eval"
                  name i (Five_tuple.to_string fl)
          | Error e -> Alcotest.failf "%s: eval error: %s" name e
        done
    | Compiler.Decide _, _ ->
        Alcotest.failf
          "%s: flow %d (%s): table decides where the diagram disagrees or is \
           reactive"
          name i (Five_tuple.to_string fl)
    | Compiler.Punt, Fdd.Reactive _ -> ()
    | Compiler.Punt, Fdd.Static _ ->
        if tbl.Compiler.spills = [] && not tbl.Compiler.truncated then
          Alcotest.failf
            "%s: flow %d (%s): punt on a static region without spillover" name
            i (Five_tuple.to_string fl)
  done

let synthetic_corpus =
  [
    ( "mixed",
      "block all\npass from 10.0.0.0/8 to any port 80\nblock quick from \
       10.9.0.0/16 to any\npass from 172.16.0.0/12 to any with \
       eq(@src[name], firefox)" );
    ( "negation",
      "block all\npass from !192.168.0.0/16 to any\nblock from any to \
       !10.0.0.0/8 port 53" );
    ( "tables",
      "table <lan> { 192.168.0.0/24 }\ntable <srv> { 192.168.1.1 10.0.0.0/8 \
       }\nblock all\npass from <lan> to <srv> port 80:443\nblock quick from \
       <srv> to <lan>" );
    ( "proto",
      "block all\npass proto tcp from any to any port 22\npass proto icmp \
       from 10.0.0.0/8 to any" );
    ("range-spill", "block all\npass proto tcp from any to any port 1024:60000");
    ("list", "block all\npass from { 10.0.0.1 10.0.0.2/31 } to any port 80:443");
  ]

let shipped_policies () =
  let dir =
    if Sys.file_exists "../policies" then "../policies" else "policies"
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".control")
  |> List.sort String.compare
  |> List.map (fun f ->
         ( f,
           In_channel.with_open_bin (Filename.concat dir f)
             In_channel.input_all ))

let test_differential_synthetic () =
  List.iter
    (fun (name, text) -> differential name (env_of text) ~flows:300)
    synthetic_corpus

let test_differential_shipped () =
  let files = shipped_policies () in
  Alcotest.(check bool) "shipped policies present" true (List.length files >= 4);
  List.iter
    (fun (name, text) ->
      match Pf.Env.of_string text with
      | Ok env -> differential name env ~flows:200
      | Error _ -> () (* fragments may reference another file's tables *))
    files;
  let concat = String.concat "\n" (List.map snd files) in
  differential "policies-concat" (env_of concat) ~flows:300

(* --- flow-table eviction mechanics (capacity LRU + hook) --- *)

let test_flow_table_eviction_hook () =
  let t = Openflow.Flow_table.create ~capacity:2 () in
  let entry ?(cookie = 0) p host =
    Openflow.Flow_entry.make ~priority:p ~cookie
      ~fields:{ MF.any with MF.nw_src = Some (Prefix.of_string host) }
      [ Openflow.Action.To_controller ]
  in
  let victims = ref [] in
  Openflow.Flow_table.set_on_evict t (fun v -> victims := v :: !victims);
  Openflow.Flow_table.add t
    (entry ~cookie:Compiler.proactive_cookie 10 "10.0.0.1/32");
  Openflow.Flow_table.add t (entry 11 "10.0.0.2/32");
  Alcotest.(check int) "no evictions yet" 0 (Openflow.Flow_table.evictions t);
  Openflow.Flow_table.add t (entry 12 "10.0.0.3/32");
  Alcotest.(check int) "one eviction" 1 (Openflow.Flow_table.evictions t);
  Alcotest.(check int) "size capped" 2 (Openflow.Flow_table.size t);
  match !victims with
  | [ v ] ->
      (* the newcomer must not evict itself; the victim is one of the
         resident (never-hit) entries *)
      Alcotest.(check bool)
        "a resident entry was the victim" true
        (List.mem v.Openflow.Flow_entry.priority [ 10; 11 ])
  | l -> Alcotest.failf "expected one victim, saw %d" (List.length l)

(* --- end-to-end: the proactive controller over the simulated fabric --- *)

let proactive_config = { C.default_config with C.proactive = true }

let counter_sum obs name =
  Obs.Registry.snapshot obs
  |> List.fold_left
       (fun acc (s : Obs.Registry.series) ->
         match s.Obs.Registry.value with
         | Obs.Registry.Counter_v n when s.Obs.Registry.name = name -> acc + n
         | _ -> acc)
       0

let series_exists obs name =
  List.exists
    (fun (s : Obs.Registry.series) -> s.Obs.Registry.name = name)
    (Obs.Registry.snapshot obs)

(* First packets leave 1 ms after the policy is installed, so the
   compiled flow-mods (50 us of control latency away) are in the tables
   before traffic — the deployed-switch boot order. *)
let send_later engine network host ~flow ~at_ms =
  Sim.Engine.schedule engine ~delay:(Sim.Time.ms at_ms) (fun () ->
      Net.send_from_host network ~name:(Identxx.Host.name host)
        (Identxx.Host.first_packet host ~flow))

let test_e2e_zero_packet_in () =
  let obs = Obs.Registry.create () in
  let engine, network, controller, hosts =
    Deploy.linear_network ~config:proactive_config ~obs ~switches:4
      ~hosts_per_switch:1 ()
  in
  PS.add_exn (C.policy controller) ~name:"00" "pass all";
  let h1 = hosts.(0) and h4 = hosts.(3) in
  let proc = Identxx.Host.run h1 ~user:"u" ~exe:"/bin/app" () in
  let fl =
    Identxx.Host.connect h1 ~proc ~dst:(Identxx.Host.ip h4) ~dst_port:80 ()
  in
  send_later engine network h1 ~flow:fl ~at_ms:1;
  Sim.Engine.run engine;
  (* The whole point of the compiler: the flow crossed four switches
     without a single controller round-trip. *)
  Alcotest.(check int) "zero packet-ins" 0 (Net.packet_ins network);
  Alcotest.(check int) "data packet delivered" 1 (Net.delivered network);
  Alcotest.(check int) "controller saw no flow" 0
    (C.stats controller).C.flows_seen;
  let tbl = C.proactive_table controller in
  Alcotest.(check bool) "table installed" true (tbl.Compiler.entries <> []);
  Alcotest.(check (float 1e-9))
    "full installed coverage" 1.0 tbl.Compiler.installed_coverage;
  (* the ident++ guard outranks the wildcard pass on every switch: the
     exchange stays controller-mediated even under a pass-all policy *)
  List.iter
    (fun dpid ->
      let table = Openflow.Switch.table (Net.switch network dpid) in
      let exchange =
        Packet.of_five_tuple
          (Five_tuple.make ~proto:Proto.Tcp ~src:(ip "10.0.1.1")
             ~dst:(ip "10.0.4.1") ~src_port:9999 ~dst_port:Identxx.Wire.port)
      in
      match Openflow.Flow_table.lookup table ~in_port:1 exchange with
      | Some e ->
          Alcotest.(check bool)
            "guard punts ident++ traffic" true
            (List.mem Openflow.Action.To_controller
               e.Openflow.Flow_entry.actions)
      | None -> Alcotest.fail "no guard entry matched ident++ traffic")
    (Net.switches_in_domain network 0);
  Alcotest.(check bool)
    "recompile counted" true
    (counter_sum obs "identxx_compiler_recompiles_total" >= 1);
  Alcotest.(check bool)
    "delta adds counted" true
    (counter_sum obs "identxx_compiler_delta_entries_total" >= 1);
  Alcotest.(check bool)
    "eviction series exported per switch" true
    (series_exists obs "identxx_switch_evictions_total");
  Alcotest.(check int)
    "no evictions on an unbounded table" 0
    (counter_sum obs "identxx_switch_evictions_total")

let test_e2e_reactive_residue_still_punts () =
  let engine, network, controller, hosts =
    Deploy.linear_network ~config:proactive_config ~switches:4
      ~hosts_per_switch:1 ()
  in
  PS.add_exn (C.policy controller) ~name:"00"
    "block all\npass proto tcp from any to any port 80\npass all with \
     eq(@src[name], firefox)";
  let h1 = hosts.(0) and h4 = hosts.(3) in
  let proc = Identxx.Host.run h1 ~user:"alice" ~exe:"/usr/bin/firefox" () in
  let static_fl =
    Identxx.Host.connect h1 ~proc ~dst:(Identxx.Host.ip h4) ~dst_port:80 ()
  in
  let reactive_fl =
    Identxx.Host.connect h1 ~proc ~dst:(Identxx.Host.ip h4) ~dst_port:8080 ()
  in
  send_later engine network h1 ~flow:static_fl ~at_ms:1;
  send_later engine network h1 ~flow:reactive_fl ~at_ms:2;
  Sim.Engine.run engine;
  let st = C.stats controller in
  (* only the port-8080 flow needed the controller; port 80 rode the
     compiled table *)
  Alcotest.(check int) "one reactive flow decided" 1 st.C.flows_seen;
  Alcotest.(check int) "reactive flow allowed" 1 st.C.allowed;
  Alcotest.(check bool) "it cost a packet-in" true (Net.packet_ins network >= 1);
  Alcotest.(check bool) "queries went out" true (st.C.queries_sent >= 1)

let test_e2e_keep_state_stays_reactive () =
  (* Keep-state regions are inherently stateful: statically forwarding
     the opening packet would skip conn-state recording and strand the
     reply. The lowering punts both directions — the opening packet pays
     one round-trip, the reply is readmitted by connection state. *)
  let s = Deploy.simple_network ~config:proactive_config () in
  PS.add_exn
    (C.policy s.Deploy.controller)
    ~name:"00" "block all\npass proto tcp from any to any port 80 keep state";
  let proc = Identxx.Host.run s.Deploy.client ~user:"u" ~exe:"/bin/app" () in
  let fl =
    Identxx.Host.connect s.Deploy.client ~proc
      ~dst:(Identxx.Host.ip s.Deploy.server)
      ~dst_port:80 ()
  in
  send_later s.Deploy.engine s.Deploy.network s.Deploy.client ~flow:fl ~at_ms:1;
  Sim.Engine.run s.Deploy.engine;
  (* abstractly static pass... *)
  Alcotest.(check decision)
    "abstract table decides pass" (Compiler.Decide Pf.Ast.Pass)
    (Compiler.lookup (C.proactive_table s.Deploy.controller) fl);
  (* ...but the lowering punted, so the controller saw it and recorded
     connection state *)
  let st = C.stats s.Deploy.controller in
  Alcotest.(check int) "opening packet reached the controller" 1
    st.C.flows_seen;
  Alcotest.(check int) "and was allowed" 1 st.C.allowed;
  let delivered_before = Net.delivered s.Deploy.network in
  (* the reply space is statically blocked ("block all"), but the
     compiled block entry overlapping the keep-state reverse space was
     demoted to a punt: state readmits the reply instead of hardware
     dropping it (here the reply rides the reverse-path entry the
     allow installed, exactly the reactive baseline) *)
  let reply = Packet.of_five_tuple (Five_tuple.reverse fl) in
  Net.send_from_host s.Deploy.network ~name:"server" reply;
  Sim.Engine.run s.Deploy.engine;
  Alcotest.(check bool)
    "reply delivered" true
    (Net.delivered s.Deploy.network > delivered_before);
  Alcotest.(check int)
    "reply readmitted by state, not re-decided" 1
    (C.stats s.Deploy.controller).C.flows_seen;
  (* reverse-space traffic with no installed reverse entry (a later
     connection's reply arriving after a cache flush, say) must find a
     punt or a table miss in the compiled band — never a hardware drop *)
  let stray_reply =
    Packet.of_five_tuple
      (Five_tuple.make ~proto:Proto.Tcp
         ~src:(Identxx.Host.ip s.Deploy.server)
         ~dst:(Identxx.Host.ip s.Deploy.client)
         ~src_port:80 ~dst_port:55555)
  in
  let table = Openflow.Switch.table (Net.switch s.Deploy.network 1) in
  (match Openflow.Flow_table.lookup table ~in_port:2 stray_reply with
  | None -> () (* table miss punts too *)
  | Some e ->
      Alcotest.(check bool)
        "demoted block punts instead of dropping" true
        (List.mem Openflow.Action.To_controller e.Openflow.Flow_entry.actions))

let test_e2e_eviction_telemetry () =
  (* A TCAM-sized table under reactive churn: exact-match entries push
     out compiled wildcards (LRU victims), which must surface as the
     eviction counter and a force-sampled span. *)
  let obs = Obs.Registry.create () in
  let spans = Obs.Span.create () in
  let engine = Sim.Engine.create () in
  let topology = Topo.create () in
  Topo.add_switch topology 1;
  Topo.add_host topology "client";
  Topo.add_host topology "server";
  Topo.link topology (Topo.Host "client", 0) (Topo.Sw 1, 1);
  Topo.link topology (Topo.Host "server", 0) (Topo.Sw 1, 2);
  let network = Net.create ~table_capacity:6 ~engine ~topology () in
  let controller =
    C.create ~config:proactive_config ~obs ~spans ~network ~id:0 ()
  in
  let client =
    Identxx.Host.create ~name:"client" ~mac:(Mac.of_int 0x0a0001)
      ~ip:(ip "10.0.0.1") ()
  in
  let server =
    Identxx.Host.create ~name:"server" ~mac:(Mac.of_int 0x0a0002)
      ~ip:(ip "10.0.0.2") ()
  in
  Deploy.attach_host network client;
  Deploy.attach_host network server;
  PS.add_exn (C.policy controller) ~name:"00"
    "block all\npass proto tcp from any to any port 80\npass all with \
     eq(@src[name], firefox)";
  let proc = Identxx.Host.run client ~user:"u" ~exe:"/bin/app" () in
  for i = 1 to 5 do
    let fl =
      Identxx.Host.connect client ~proc ~dst:(Identxx.Host.ip server)
        ~dst_port:(8080 + i) ()
    in
    send_later engine network client ~flow:fl ~at_ms:i
  done;
  Sim.Engine.run engine;
  Alcotest.(check bool)
    "switch evictions counted" true
    (counter_sum obs "identxx_switch_evictions_total" >= 1);
  Alcotest.(check bool)
    "compiled-entry evictions counted" true
    (counter_sum obs "identxx_compiler_proactive_evictions_total" >= 1);
  Alcotest.(check bool)
    "eviction span emitted" true
    (List.exists
       (fun sp -> Obs.Span.name sp = "proactive-evicted")
       (Obs.Span.finished spans))

let test_e2e_policy_change_rediffs () =
  let engine, network, controller, hosts =
    Deploy.linear_network ~config:proactive_config ~switches:2
      ~hosts_per_switch:1 ()
  in
  ignore hosts;
  PS.add_exn (C.policy controller) ~name:"00"
    "block all\npass proto tcp from any to any port 80";
  Sim.Engine.run engine;
  let before = C.proactive_table controller in
  Alcotest.(check bool) "entries installed" true (before.Compiler.entries <> []);
  PS.add_exn (C.policy controller) ~name:"10"
    "pass proto udp from any to any port 53";
  Sim.Engine.run engine;
  let after = C.proactive_table controller in
  Alcotest.(check bool)
    "table grew with the new rule" true
    (after.Compiler.entries <> [] && after <> before);
  (* the dataplane of every switch converged to the new abstract table:
     a DNS flow now decides in hardware *)
  let dns =
    Packet.of_five_tuple
      (Five_tuple.make ~proto:Proto.Udp ~src:(ip "10.0.1.1")
         ~dst:(ip "10.0.2.1") ~src_port:5353 ~dst_port:53)
  in
  List.iter
    (fun dpid ->
      let table = Openflow.Switch.table (Net.switch network dpid) in
      match Openflow.Flow_table.lookup table ~in_port:1 dns with
      | Some e ->
          Alcotest.(check int)
            "compiled cookie" Compiler.proactive_cookie
            e.Openflow.Flow_entry.cookie
      | None -> Alcotest.fail "no compiled entry for the new rule")
    (Net.switches_in_domain network 0)

let () =
  Alcotest.run "compiler"
    [
      ( "lowering",
        [
          Alcotest.test_case "simple policy" `Quick test_simple_lowering;
          Alcotest.test_case "prefix expansion" `Quick test_prefix_expansion;
          Alcotest.test_case "port enumeration" `Quick test_port_enumeration;
          Alcotest.test_case "budget spillover" `Quick test_budget_spill;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "incremental delta" `Quick test_incremental_delta;
        ] );
      ( "differential",
        [
          Alcotest.test_case "synthetic corpus" `Quick
            test_differential_synthetic;
          Alcotest.test_case "shipped policies" `Quick
            test_differential_shipped;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "flow-table LRU hook" `Quick
            test_flow_table_eviction_hook;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "zero packet-ins on a static flow" `Quick
            test_e2e_zero_packet_in;
          Alcotest.test_case "reactive residue punts" `Quick
            test_e2e_reactive_residue_still_punts;
          Alcotest.test_case "keep-state stays reactive" `Quick
            test_e2e_keep_state_stays_reactive;
          Alcotest.test_case "eviction telemetry" `Quick
            test_e2e_eviction_telemetry;
          Alcotest.test_case "policy change re-diffs" `Quick
            test_e2e_policy_change_rediffs;
        ] );
    ]

(* Tests for the OpenFlow substrate: match semantics, flow tables
   (priority, timeouts, capacity), switch processing, topology routing
   and the network fabric. *)

open Netcore
module MF = Openflow.Match_fields
module FT = Openflow.Flow_table
module FE = Openflow.Flow_entry
module Topo = Openflow.Topology

let check = Alcotest.check
let ip = Ipv4.of_string

let pkt ?(src = "10.0.0.1") ?(dst = "10.0.0.2") ?(sp = 1000) ?(dp = 80) () =
  Packet.tcp_syn ~src:(ip src) ~dst:(ip dst) ~src_port:sp ~dst_port:dp ()

(* --- Match_fields --- *)

let test_any_matches_everything () =
  check Alcotest.bool "ip packet" true (MF.matches MF.any ~in_port:3 (pkt ()));
  let non_ip =
    {
      Packet.eth_src = Mac.zero;
      eth_dst = Mac.zero;
      vlan = Vlan.untagged;
      eth_payload = Packet.Raw_eth (Ethertype.Arp, "x");
    }
  in
  check Alcotest.bool "non-ip packet" true (MF.matches MF.any ~in_port:0 non_ip)

let test_exact_match_roundtrip () =
  let p = pkt () in
  let m = MF.exact ~in_port:7 p in
  check Alcotest.bool "matches itself" true (MF.matches m ~in_port:7 p);
  check Alcotest.bool "wrong port" false (MF.matches m ~in_port:8 p);
  check Alcotest.bool "is exact" true (MF.is_exact m);
  check Alcotest.int "no wildcards" 0 (MF.wildcard_count m)

let test_five_tuple_match_ignores_l2 () =
  let p = pkt () in
  let m =
    MF.of_five_tuple (Option.get (Packet.five_tuple p))
  in
  let p2 = { p with Packet.eth_src = Mac.of_int 99 } in
  check Alcotest.bool "different mac still matches" true
    (MF.matches m ~in_port:5 p2)

let test_prefix_wildcard_match () =
  let m = { MF.any with MF.nw_src = Some (Prefix.of_string "10.0.0.0/24") } in
  check Alcotest.bool "in prefix" true (MF.matches m ~in_port:0 (pkt ~src:"10.0.0.77" ()));
  check Alcotest.bool "out of prefix" false (MF.matches m ~in_port:0 (pkt ~src:"10.0.1.77" ()))

let test_network_fields_block_non_ip () =
  let m = { MF.any with MF.nw_proto = Some Proto.Tcp } in
  let non_ip =
    {
      Packet.eth_src = Mac.zero;
      eth_dst = Mac.zero;
      vlan = Vlan.untagged;
      eth_payload = Packet.Raw_eth (Ethertype.Arp, "x");
    }
  in
  check Alcotest.bool "non-ip does not match nw field" false
    (MF.matches m ~in_port:0 non_ip)

let test_covers () =
  let wide = { MF.any with MF.nw_src = Some (Prefix.of_string "10.0.0.0/8") } in
  let narrow = { MF.any with MF.nw_src = Some (Prefix.of_string "10.1.0.0/16") } in
  check Alcotest.bool "wide covers narrow" true (MF.covers wide narrow);
  check Alcotest.bool "narrow does not cover wide" false (MF.covers narrow wide);
  check Alcotest.bool "any covers all" true (MF.covers MF.any narrow)

(* --- Flow_table --- *)

let entry ?(priority = 0x8000) ?idle ?hard ?(installed = Sim.Time.zero) fields
    actions =
  FE.make ~priority ?idle_timeout:idle ?hard_timeout:hard
    ~installed_at:installed ~fields actions

let test_table_priority_wins () =
  let t = FT.create () in
  FT.add t (entry ~priority:10 MF.any [ Openflow.Action.Output 1 ]);
  FT.add t
    (entry ~priority:20
       { MF.any with MF.tp_dst = Some 80 }
       [ Openflow.Action.Output 2 ]);
  match FT.lookup t ~in_port:0 (pkt ~dp:80 ()) with
  | Some e -> check Alcotest.int "high priority entry" 20 e.FE.priority
  | None -> Alcotest.fail "expected a match"

let test_table_replace_same_match () =
  let t = FT.create () in
  FT.add t (entry MF.any [ Openflow.Action.Output 1 ]);
  FT.add t (entry MF.any [ Openflow.Action.Output 2 ]);
  check Alcotest.int "replaced, not duplicated" 1 (FT.size t);
  match FT.lookup t ~in_port:0 (pkt ()) with
  | Some e ->
      check Alcotest.(list int) "new actions" [ 2 ]
        (Openflow.Action.output_ports e.FE.actions)
  | None -> Alcotest.fail "expected a match"

let test_table_idle_timeout () =
  let t = FT.create () in
  FT.add t (entry ~idle:(Sim.Time.ms 10) MF.any [ Openflow.Action.Output 1 ]);
  check Alcotest.int "before timeout" 0 (FT.expire t ~now:(Sim.Time.ms 5));
  check Alcotest.int "after timeout" 1 (FT.expire t ~now:(Sim.Time.ms 20));
  check Alcotest.int "empty" 0 (FT.size t)

let test_table_idle_refreshes_on_hit () =
  let t = FT.create () in
  FT.add t (entry ~idle:(Sim.Time.ms 10) MF.any [ Openflow.Action.Output 1 ]);
  (match FT.lookup t ~in_port:0 (pkt ()) with
  | Some e -> FE.hit e ~now:(Sim.Time.ms 8) ~size:100
  | None -> Alcotest.fail "expected match");
  check Alcotest.int "hit extended life" 0 (FT.expire t ~now:(Sim.Time.ms 15));
  check Alcotest.int "eventually expires" 1 (FT.expire t ~now:(Sim.Time.ms 30))

let test_table_hard_timeout () =
  let t = FT.create () in
  FT.add t (entry ~hard:(Sim.Time.ms 10) MF.any [ Openflow.Action.Output 1 ]);
  (match FT.lookup t ~in_port:0 (pkt ()) with
  | Some e -> FE.hit e ~now:(Sim.Time.ms 9) ~size:1
  | None -> Alcotest.fail "expected match");
  check Alcotest.int "hard timeout ignores hits" 1 (FT.expire t ~now:(Sim.Time.ms 11))

let test_table_capacity_evicts_lru () =
  let t = FT.create ~capacity:2 () in
  let m dp = { MF.any with MF.tp_dst = Some dp } in
  FT.add t (entry (m 80) [ Openflow.Action.Output 1 ]);
  FT.add t (entry (m 443) [ Openflow.Action.Output 2 ]);
  (* Touch the :80 entry so :443 is least recently used. *)
  (match FT.lookup t ~in_port:0 (pkt ~dp:80 ()) with
  | Some e -> FE.hit e ~now:(Sim.Time.ms 5) ~size:1
  | None -> Alcotest.fail "expected match");
  FT.add t (entry (m 22) [ Openflow.Action.Output 3 ]);
  check Alcotest.int "capacity respected" 2 (FT.size t);
  check Alcotest.bool ":443 evicted" true
    (FT.lookup t ~in_port:0 (pkt ~dp:443 ()) = None);
  check Alcotest.bool ":80 kept" true
    (FT.lookup t ~in_port:0 (pkt ~dp:80 ()) <> None)

let test_table_wildcard_delete () =
  let t = FT.create () in
  let m p = { MF.any with MF.nw_src = Some (Prefix.of_string p) } in
  FT.add t (entry (m "10.1.0.0/16") [ Openflow.Action.Output 1 ]);
  FT.add t (entry (m "10.2.0.0/16") [ Openflow.Action.Output 2 ]);
  FT.remove_matching t ~fields:(m "10.0.0.0/8");
  check Alcotest.int "both covered entries removed" 0 (FT.size t)

let test_table_miss_counting () =
  let t = FT.create () in
  ignore (FT.lookup t ~in_port:0 (pkt ()));
  FT.add t (entry MF.any [ Openflow.Action.Output 1 ]);
  ignore (FT.lookup t ~in_port:0 (pkt ()));
  check Alcotest.int "one miss" 1 (FT.misses t);
  check Alcotest.int "one hit" 1 (FT.hits t)

(* Reference model: the table semantics against a naive list scan. *)
let prop_table_matches_reference =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (let* prio = int_range 1 100 in
         let* dp = int_range 0 3 in
         let* src_oct = int_range 0 3 in
         return (prio, dp, src_oct)))
  in
  QCheck.Test.make ~name:"flow table agrees with naive reference" ~count:200
    (QCheck.make gen) (fun specs ->
      let t = FT.create () in
      let mk (prio, dp, src_oct) =
        entry ~priority:prio
          {
            MF.any with
            MF.tp_dst = Some (80 + dp);
            MF.nw_src = Some (Prefix.of_string (Printf.sprintf "10.0.%d.0/24" src_oct));
          }
          [ Openflow.Action.Output prio ]
      in
      let entries = List.map mk specs in
      List.iter (FT.add t) entries;
      let probe = pkt ~src:"10.0.1.5" ~dp:81 () in
      let expected =
        (* Highest priority among matching; ties -> latest added. *)
        List.fold_left
          (fun acc (e : FE.t) ->
            if MF.matches e.FE.fields ~in_port:0 probe then
              match acc with
              | None -> Some e
              | Some (best : FE.t) ->
                  if e.FE.priority > best.FE.priority then Some e else acc
            else acc)
          None
          (* Scan in add order; replace on >= priority prefers later adds. *)
          (List.filter
             (fun (e : FE.t) ->
               (* mirror replacement of identical (fields, priority) *)
               let later_identical =
                 List.exists
                   (fun (e' : FE.t) ->
                     e' != e && e'.FE.priority = e.FE.priority
                     && MF.equal e'.FE.fields e.FE.fields
                     &&
                     (* e' added after e? approximate by physical order *)
                     let rec after = function
                       | [] -> false
                       | x :: rest -> if x == e then List.memq e' rest else after rest
                     in
                     after entries)
                   entries
               in
               not later_identical)
             entries)
      in
      let got = FT.lookup t ~in_port:0 probe in
      match (expected, got) with
      | None, None -> true
      | Some e, Some g -> e.FE.priority = g.FE.priority
      | _ -> false)

(* --- Switch --- *)

let test_switch_miss_goes_to_controller () =
  let sw = Openflow.Switch.create ~dpid:1 ~ports:[ 1; 2; 3 ] () in
  match Openflow.Switch.process sw ~now:Sim.Time.zero ~in_port:1 (pkt ()) with
  | Openflow.Switch.Send_to_controller -> ()
  | _ -> Alcotest.fail "miss must go to controller"

let test_switch_forwards_on_hit () =
  let sw = Openflow.Switch.create ~dpid:1 ~ports:[ 1; 2; 3 ] () in
  FT.add (Openflow.Switch.table sw) (entry MF.any [ Openflow.Action.Output 2 ]);
  match Openflow.Switch.process sw ~now:Sim.Time.zero ~in_port:1 (pkt ()) with
  | Openflow.Switch.Forward [ 2 ] -> ()
  | _ -> Alcotest.fail "expected forward to port 2"

let test_switch_flood_excludes_ingress () =
  let sw = Openflow.Switch.create ~dpid:1 ~ports:[ 1; 2; 3 ] () in
  FT.add (Openflow.Switch.table sw) (entry MF.any [ Openflow.Action.Flood ]);
  match Openflow.Switch.process sw ~now:Sim.Time.zero ~in_port:2 (pkt ()) with
  | Openflow.Switch.Forward ports ->
      check Alcotest.(list int) "floods others" [ 1; 3 ] ports
  | _ -> Alcotest.fail "expected flood"

let test_switch_drop () =
  let sw = Openflow.Switch.create ~dpid:1 ~ports:[ 1; 2 ] () in
  FT.add (Openflow.Switch.table sw) (entry MF.any Openflow.Action.drop);
  match Openflow.Switch.process sw ~now:Sim.Time.zero ~in_port:1 (pkt ()) with
  | Openflow.Switch.Dropped -> ()
  | _ -> Alcotest.fail "expected drop"

let test_switch_flow_mod_and_counters () =
  let sw = Openflow.Switch.create ~dpid:1 ~ports:[ 1; 2 ] () in
  ignore
    (Openflow.Switch.apply sw ~now:Sim.Time.zero
       (Openflow.Message.add_flow ~fields:MF.any [ Openflow.Action.Output 2 ]));
  ignore (Openflow.Switch.process sw ~now:Sim.Time.zero ~in_port:1 (pkt ()));
  match FT.entries (Openflow.Switch.table sw) with
  | [ e ] ->
      check Alcotest.int "packet counter" 1 e.FE.packets;
      check Alcotest.bool "byte counter" true (e.FE.bytes > 0)
  | _ -> Alcotest.fail "expected one entry"

let test_switch_packet_out_table () =
  let sw = Openflow.Switch.create ~dpid:1 ~ports:[ 1; 2 ] () in
  FT.add (Openflow.Switch.table sw) (entry MF.any [ Openflow.Action.Output 2 ]);
  match
    Openflow.Switch.apply sw ~now:Sim.Time.zero
      (Openflow.Message.Packet_out { Openflow.Message.out_packet = pkt (); out_port = `Table })
  with
  | Openflow.Switch.Emit ([ 2 ], _) -> ()
  | _ -> Alcotest.fail "expected table-directed packet-out to port 2"

let test_switch_stats_snapshot () =
  let sw = Openflow.Switch.create ~dpid:7 ~ports:[ 1; 2 ] () in
  FT.add (Openflow.Switch.table sw) (entry MF.any [ Openflow.Action.Output 2 ]);
  (* Two packets hit the entry, one lookup total count check. *)
  ignore (Openflow.Switch.process sw ~now:Sim.Time.zero ~in_port:1 (pkt ()));
  ignore (Openflow.Switch.process sw ~now:(Sim.Time.ms 1) ~in_port:1 (pkt ()));
  match
    Openflow.Switch.apply sw ~now:(Sim.Time.ms 2)
      (Openflow.Message.Stats_request { xid = 42 })
  with
  | Openflow.Switch.Reply (Openflow.Message.Stats_reply r) ->
      check Alcotest.int "dpid" 7 r.Openflow.Message.st_dpid;
      check Alcotest.int "xid echoed" 42 r.Openflow.Message.st_xid;
      check Alcotest.int "lookups" 2 r.Openflow.Message.st_lookups;
      check Alcotest.int "matched" 2 r.Openflow.Message.st_matched;
      (match r.Openflow.Message.st_flows with
      | [ st ] ->
          check Alcotest.int "entry packets" 2 st.Openflow.Message.st_packets;
          check Alcotest.bool "entry bytes" true (st.Openflow.Message.st_bytes > 0);
          check Alcotest.int "age" 2_000_000
            (Sim.Time.to_ns st.Openflow.Message.st_age)
      | _ -> Alcotest.fail "expected one flow stat")
  | _ -> Alcotest.fail "expected a stats reply"

(* --- Topology --- *)

let diamond () =
  (* h1 - s1 - s2 - h2, plus a slow alternative s1 - s3 - s2. *)
  let t = Topo.create () in
  List.iter (Topo.add_switch t) [ 1; 2; 3 ];
  List.iter (Topo.add_host t) [ "h1"; "h2" ];
  Topo.link t (Topo.Host "h1", 0) (Topo.Sw 1, 1);
  Topo.link t (Topo.Host "h2", 0) (Topo.Sw 2, 1);
  Topo.link t ~latency:(Sim.Time.us 10) (Topo.Sw 1, 2) (Topo.Sw 2, 2);
  Topo.link t ~latency:(Sim.Time.ms 10) (Topo.Sw 1, 3) (Topo.Sw 3, 1);
  Topo.link t ~latency:(Sim.Time.ms 10) (Topo.Sw 3, 2) (Topo.Sw 2, 3);
  t

let test_topology_shortest_path () =
  let t = diamond () in
  match Topo.switch_path t ~src:"h1" ~dst:"h2" with
  | Some [ (1, 1, 2); (2, 2, 1) ] -> ()
  | Some hops ->
      Alcotest.failf "unexpected path: %s"
        (String.concat ";"
           (List.map (fun (d, i, o) -> Printf.sprintf "(%d,%d,%d)" d i o) hops))
  | None -> Alcotest.fail "no path"

let test_topology_next_hop () =
  let t = diamond () in
  check Alcotest.(option int) "next hop from s1 to h2" (Some 2)
    (Topo.next_hop t ~from:1 ~dst_host:"h2");
  check Alcotest.(option int) "next hop from s3 to h2" (Some 2)
    (Topo.next_hop t ~from:3 ~dst_host:"h2")

let test_topology_unreachable () =
  let t = Topo.create () in
  Topo.add_host t "isolated";
  Topo.add_host t "other";
  Topo.add_switch t 1;
  Topo.link t (Topo.Host "other", 0) (Topo.Sw 1, 1);
  check Alcotest.bool "no path to isolated host" true
    (Topo.switch_path t ~src:"other" ~dst:"isolated" = None)

let test_topology_rejects_double_wiring () =
  let t = Topo.create () in
  Topo.add_switch t 1;
  Topo.add_host t "h";
  Topo.link t (Topo.Host "h", 0) (Topo.Sw 1, 1);
  (try
     Topo.link t (Topo.Host "h", 0) (Topo.Sw 1, 2);
     Alcotest.fail "double wiring accepted"
   with Invalid_argument _ -> ());
  check Alcotest.bool "host attachment found" true
    (Topo.host_attachment t "h" <> None)

let test_topology_hosts_do_not_transit () =
  (* h-in-the-middle must not be used as a transit node. *)
  let t = Topo.create () in
  List.iter (Topo.add_switch t) [ 1; 2 ];
  List.iter (Topo.add_host t) [ "a"; "m"; "b" ];
  Topo.link t (Topo.Host "a", 0) (Topo.Sw 1, 1);
  Topo.link t (Topo.Host "b", 0) (Topo.Sw 2, 1);
  (* "m" is dual-homed to both switches; switches are NOT linked. *)
  Topo.link t (Topo.Host "m", 0) (Topo.Sw 1, 2);
  Topo.link t (Topo.Host "m", 1) (Topo.Sw 2, 2);
  check Alcotest.bool "no path through a host" true
    (Topo.switch_path t ~src:"a" ~dst:"b" = None)

(* --- Network fabric --- *)

let test_network_delivers_with_latency () =
  let engine = Sim.Engine.create () in
  let t = Topo.create () in
  Topo.add_switch t 1;
  List.iter (Topo.add_host t) [ "h1"; "h2" ];
  Topo.link t ~latency:(Sim.Time.us 100) (Topo.Host "h1", 0) (Topo.Sw 1, 1);
  Topo.link t ~latency:(Sim.Time.us 100) (Topo.Host "h2", 0) (Topo.Sw 1, 2);
  let net = Openflow.Network.create ~engine ~topology:t () in
  (* Pre-install forwarding so no controller is needed. *)
  ignore
    (Openflow.Switch.apply
       (Openflow.Network.switch net 1)
       ~now:Sim.Time.zero
       (Openflow.Message.add_flow ~fields:MF.any [ Openflow.Action.Output 2 ]));
  let received_at = ref None in
  Openflow.Network.attach_host net ~name:"h1" ~mac:(Mac.of_int 1) ~ip:(ip "10.0.0.1")
    ~rx:(fun _ -> ());
  Openflow.Network.attach_host net ~name:"h2" ~mac:(Mac.of_int 2) ~ip:(ip "10.0.0.2")
    ~rx:(fun _ -> received_at := Some (Sim.Engine.now engine));
  Openflow.Network.send_from_host net ~name:"h1" (pkt ());
  Sim.Engine.run engine;
  match !received_at with
  | Some at -> check Alcotest.int "two links of latency" 200_000 (Sim.Time.to_ns at)
  | None -> Alcotest.fail "packet not delivered"

let test_network_egress_accounting () =
  let engine = Sim.Engine.create () in
  let t = Topo.create () in
  Topo.add_switch t 1;
  List.iter (Topo.add_host t) [ "h1"; "h2" ];
  Topo.link t (Topo.Host "h1", 0) (Topo.Sw 1, 1);
  Topo.link t (Topo.Host "h2", 0) (Topo.Sw 1, 2);
  let net = Openflow.Network.create ~engine ~topology:t () in
  ignore
    (Openflow.Switch.apply
       (Openflow.Network.switch net 1)
       ~now:Sim.Time.zero
       (Openflow.Message.add_flow ~fields:MF.any [ Openflow.Action.Output 2 ]));
  Openflow.Network.attach_host net ~name:"h1" ~mac:(Mac.of_int 1) ~ip:(ip "10.0.0.1")
    ~rx:(fun _ -> ());
  Openflow.Network.attach_host net ~name:"h2" ~mac:(Mac.of_int 2) ~ip:(ip "10.0.0.2")
    ~rx:(fun _ -> ());
  for _ = 1 to 3 do
    Openflow.Network.send_from_host net ~name:"h1" (pkt ())
  done;
  Sim.Engine.run engine;
  check Alcotest.int "egress packets at s1:2" 3
    (Openflow.Network.egress_packets net ~node:(Topo.Sw 1) ~port:2);
  check Alcotest.int "delivered" 3 (Openflow.Network.delivered net)

(* Mixed indexable/wildcard entries: the hash fast path must agree with
   a naive highest-priority scan on random tables and probes. *)
let prop_fast_path_agrees_with_naive =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 25)
           (let* indexable = bool in
            let* prio = int_range 1 50 in
            let* a = int_range 1 4 in
            let* b = int_range 1 4 in
            let* dp = int_range 80 83 in
            return (indexable, prio, a, b, dp)))
        (pair (int_range 1 4) (pair (int_range 1 4) (int_range 80 83))))
  in
  QCheck.Test.make ~name:"fast path agrees with naive scan" ~count:400
    (QCheck.make gen) (fun (specs, (pa, (pb, pdp))) ->
      let t = FT.create () in
      let mk (indexable, prio, a, b, dp) =
        let fields =
          if indexable then
            MF.of_five_tuple
              (Five_tuple.tcp
                 ~src:(ip (Printf.sprintf "10.0.0.%d" a))
                 ~dst:(ip (Printf.sprintf "10.0.1.%d" b))
                 ~src_port:1000 ~dst_port:dp)
          else
            {
              MF.any with
              MF.nw_src = Some (Prefix.of_string (Printf.sprintf "10.0.0.%d/32" a));
              MF.tp_dst = Some dp;
            }
        in
        entry ~priority:prio fields [ Openflow.Action.Output prio ]
      in
      List.iter (fun spec -> FT.add t (mk spec)) specs;
      let probe =
        pkt
          ~src:(Printf.sprintf "10.0.0.%d" pa)
          ~dst:(Printf.sprintf "10.0.1.%d" pb)
          ~sp:1000 ~dp:pdp ()
      in
      let naive =
        List.find_opt
          (fun (e : FE.t) -> MF.matches e.FE.fields ~in_port:0 probe)
          (FT.entries t)
      in
      let got = FT.lookup t ~in_port:0 probe in
      match (naive, got) with
      | None, None -> true
      | Some a, Some b -> a == b
      | _ -> false)

(* Stateful model test: random interleavings of add / strict-remove /
   expire / lookup against a naive reference implementation. Exercises
   the exact-match index, the wildcard list and the expiry bound under
   mutation. *)
module Model = struct
  type entry = {
    fields : MF.t;
    priority : int;
    tag : int;
    mutable last_hit : int; (* ns *)
    installed : int;
    idle : int option;
    hard : int option;
  }

  type t = { mutable entries : entry list (* newest first per priority *) }

  let create () = { entries = [] }

  let add t e =
    t.entries <-
      List.filter
        (fun x -> not (x.priority = e.priority && MF.equal x.fields e.fields))
        t.entries;
    let rec insert = function
      | [] -> [ e ]
      | x :: rest as l ->
          if e.priority >= x.priority then e :: l else x :: insert rest
    in
    t.entries <- insert t.entries

  let remove t fields =
    t.entries <- List.filter (fun x -> not (MF.equal x.fields fields)) t.entries

  let expired e ~now =
    (match e.idle with Some i -> now > e.last_hit + i | None -> false)
    || match e.hard with Some h -> now > e.installed + h | None -> false

  let expire t ~now =
    t.entries <- List.filter (fun e -> not (expired e ~now)) t.entries

  let lookup t ~now pkt =
    expire t ~now;
    List.find_opt (fun e -> MF.matches e.fields ~in_port:0 pkt) t.entries
end

type op =
  | Op_add of bool * int * int * int * int option (* indexable, prio, a, dp, idle_ms *)
  | Op_remove of bool * int * int
  | Op_expire of int (* advance ms *)
  | Op_lookup of int * int

let gen_op =
  QCheck.Gen.(
    let* kind = int_bound 9 in
    let* indexable = bool in
    let* prio = int_range 1 20 in
    let* a = int_range 1 3 in
    let* dp = int_range 80 82 in
    if kind < 4 then
      let* idle = option (int_range 1 20) in
      return (Op_add (indexable, prio, a, dp, idle))
    else if kind < 6 then return (Op_remove (indexable, a, dp))
    else if kind < 8 then
      let* adv = int_range 1 15 in
      return (Op_expire adv)
    else return (Op_lookup (a, dp)))

let fields_of ~indexable ~a ~dp =
  if indexable then
    MF.of_five_tuple
      (Five_tuple.tcp
         ~src:(ip (Printf.sprintf "10.0.0.%d" a))
         ~dst:(ip "10.0.9.9") ~src_port:1000 ~dst_port:dp)
  else
    {
      MF.any with
      MF.nw_src = Some (Prefix.of_string (Printf.sprintf "10.0.0.%d/32" a));
      MF.tp_dst = Some dp;
    }

let prop_table_stateful_model =
  QCheck.Test.make ~name:"flow table agrees with model under mutation"
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) gen_op))
    (fun ops ->
      let table = FT.create () in
      let model = Model.create () in
      let now = ref 0 in
      let tag = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Op_add (indexable, prio, a, dp, idle_ms) ->
              incr tag;
              let fields = fields_of ~indexable ~a ~dp in
              let idle = Option.map (fun m -> Sim.Time.ms m) idle_ms in
              FT.add table
                (FE.make ~priority:prio ?idle_timeout:idle
                   ~installed_at:(Sim.Time.ms !now) ~cookie:!tag ~fields
                   [ Openflow.Action.Output 1 ]);
              Model.add model
                {
                  Model.fields;
                  priority = prio;
                  tag = !tag;
                  last_hit = !now * 1_000_000;
                  installed = !now * 1_000_000;
                  idle = Option.map (fun m -> m * 1_000_000) idle_ms;
                  hard = None;
                };
              true
          | Op_remove (indexable, a, dp) ->
              let fields = fields_of ~indexable ~a ~dp in
              FT.remove table ~fields;
              Model.remove model fields;
              true
          | Op_expire adv ->
              now := !now + adv;
              ignore (FT.expire table ~now:(Sim.Time.ms !now));
              Model.expire model ~now:(!now * 1_000_000);
              true
          | Op_lookup (a, dp) ->
              let probe =
                pkt ~src:(Printf.sprintf "10.0.0.%d" a) ~dst:"10.0.9.9"
                  ~sp:1000 ~dp ()
              in
              ignore (FT.expire table ~now:(Sim.Time.ms !now));
              let got = FT.lookup table ~in_port:0 probe in
              let want = Model.lookup model ~now:(!now * 1_000_000) probe in
              (* Compare by cookie/tag identity. On a hit, update both
                 models' idle timers the way the switch would. *)
              (match got with
              | Some e ->
                  FE.hit e ~now:(Sim.Time.ms !now) ~size:1
              | None -> ());
              (match want with
              | Some m -> m.Model.last_hit <- !now * 1_000_000
              | None -> ());
              (match (got, want) with
              | None, None -> true
              | Some e, Some m -> e.FE.cookie = m.Model.tag
              | _ -> false))
        ops)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "openflow"
    [
      ( "match",
        [
          Alcotest.test_case "any matches everything" `Quick test_any_matches_everything;
          Alcotest.test_case "exact roundtrip" `Quick test_exact_match_roundtrip;
          Alcotest.test_case "five-tuple ignores l2" `Quick
            test_five_tuple_match_ignores_l2;
          Alcotest.test_case "prefix wildcard" `Quick test_prefix_wildcard_match;
          Alcotest.test_case "nw fields block non-ip" `Quick
            test_network_fields_block_non_ip;
          Alcotest.test_case "covers" `Quick test_covers;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "priority wins" `Quick test_table_priority_wins;
          Alcotest.test_case "replace same match" `Quick test_table_replace_same_match;
          Alcotest.test_case "idle timeout" `Quick test_table_idle_timeout;
          Alcotest.test_case "idle refreshes on hit" `Quick
            test_table_idle_refreshes_on_hit;
          Alcotest.test_case "hard timeout" `Quick test_table_hard_timeout;
          Alcotest.test_case "capacity evicts lru" `Quick
            test_table_capacity_evicts_lru;
          Alcotest.test_case "wildcard delete" `Quick test_table_wildcard_delete;
          Alcotest.test_case "miss counting" `Quick test_table_miss_counting;
        ] );
      ( "switch",
        [
          Alcotest.test_case "miss to controller" `Quick
            test_switch_miss_goes_to_controller;
          Alcotest.test_case "forwards on hit" `Quick test_switch_forwards_on_hit;
          Alcotest.test_case "flood excludes ingress" `Quick
            test_switch_flood_excludes_ingress;
          Alcotest.test_case "drop" `Quick test_switch_drop;
          Alcotest.test_case "flow-mod and counters" `Quick
            test_switch_flow_mod_and_counters;
          Alcotest.test_case "packet-out via table" `Quick
            test_switch_packet_out_table;
          Alcotest.test_case "stats snapshot" `Quick test_switch_stats_snapshot;
        ] );
      ( "topology",
        [
          Alcotest.test_case "shortest path" `Quick test_topology_shortest_path;
          Alcotest.test_case "next hop" `Quick test_topology_next_hop;
          Alcotest.test_case "unreachable" `Quick test_topology_unreachable;
          Alcotest.test_case "rejects double wiring" `Quick
            test_topology_rejects_double_wiring;
          Alcotest.test_case "hosts do not transit" `Quick
            test_topology_hosts_do_not_transit;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivers with latency" `Quick
            test_network_delivers_with_latency;
          Alcotest.test_case "egress accounting" `Quick
            test_network_egress_accounting;
        ] );
      ( "properties",
        qc
          [
            prop_table_matches_reference;
            prop_fast_path_agrees_with_naive;
            prop_table_stateful_model;
          ] );
    ]

(* Tests for the ident++ protocol library: key-value validation, the
   query/response wire formats of §3.2, daemon configuration files
   (Figures 3/4/6), the simulated process table, and the daemon's
   section-assembly behaviour. *)

open Netcore
module KV = Identxx.Key_value

let check = Alcotest.check
let ip = Ipv4.of_string

let flow ?(proto = Proto.Tcp) ?(sp = 40000) ?(dp = 80) src dst =
  Five_tuple.make ~src:(ip src) ~dst:(ip dst) ~proto ~src_port:sp ~dst_port:dp

(* --- Key_value --- *)

let test_kv_validation () =
  check Alcotest.bool "plain key" true (KV.valid_key "userID");
  check Alcotest.bool "dashed key" true (KV.valid_key "os-patch");
  check Alcotest.bool "empty key" false (KV.valid_key "");
  check Alcotest.bool "colon in key" false (KV.valid_key "a:b");
  check Alcotest.bool "newline in key" false (KV.valid_key "a\nb");
  check Alcotest.bool "newline in value" false (KV.valid_value "x\ny");
  check Alcotest.bool "colon ok in value" true (KV.valid_value "a:b:c");
  Alcotest.check_raises "pair rejects bad key"
    (Invalid_argument "Key_value.pair: bad key a:b") (fun () ->
      ignore (KV.pair "a:b" "v"))

let test_kv_find_last_binding () =
  let s = [ KV.pair "k" "v1"; KV.pair "other" "x"; KV.pair "k" "v2" ] in
  check Alcotest.(option string) "last wins" (Some "v2") (KV.find s "k");
  check Alcotest.(option string) "missing" None (KV.find s "nope")

(* --- Query --- *)

let test_query_wire_format () =
  let q =
    Identxx.Query.make ~flow:(flow ~sp:5000 ~dp:80 "1.1.1.1" "2.2.2.2")
      ~keys:[ "userID"; "name" ]
  in
  check Alcotest.string "exact bytes" "TCP 5000 80\nuserID\nname\n"
    (Identxx.Query.encode q)

let test_query_decode () =
  match Identxx.Query.decode "UDP 123 456\nuserID\n" with
  | Ok q ->
      check Alcotest.bool "udp" true (Proto.equal q.Identxx.Query.proto Proto.Udp);
      check Alcotest.int "src port" 123 q.Identxx.Query.src_port;
      check Alcotest.(list string) "keys" [ "userID" ] q.Identxx.Query.keys
  | Error e -> Alcotest.fail e

let test_query_decode_rejects_garbage () =
  List.iter
    (fun s ->
      match Identxx.Query.decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ ""; "TCP"; "TCP 1"; "TCP 1 2 3"; "FROG 1 2"; "TCP 99999 80"; "TCP -1 80";
      "TCP 1 2\nbad:key\n" ]

let test_query_roundtrip () =
  let q =
    Identxx.Query.make ~flow:(flow ~proto:Proto.Udp "9.9.9.9" "8.8.8.8")
      ~keys:[ "a"; "b"; "c-d" ]
  in
  match Identxx.Query.decode (Identxx.Query.encode q) with
  | Ok q' -> check Alcotest.bool "roundtrip" true (Identxx.Query.equal q q')
  | Error e -> Alcotest.fail e

let test_query_trace_wire () =
  let ctx =
    Obs.Trace_context.make ~seed:"tcp 1.1.1.1:5000 -> 2.2.2.2:80" ~seq:0
      ~sampled:true
  in
  let q =
    Identxx.Query.with_trace
      (Identxx.Query.make
         ~flow:(flow ~sp:5000 ~dp:80 "1.1.1.1" "2.2.2.2")
         ~keys:[ "userID"; "name" ])
      (Some ctx)
  in
  (* The context is one extra hint-key line after the real keys. *)
  check Alcotest.string "exact bytes"
    (Printf.sprintf "TCP 5000 80\nuserID\nname\n@trace/%s\n"
       (Obs.Trace_context.to_string ctx))
    (Identxx.Query.encode q);
  (match Identxx.Query.decode (Identxx.Query.encode q) with
  | Ok q' ->
      check Alcotest.bool "trace round trips" true (Identxx.Query.equal q q');
      check
        Alcotest.(list string)
        "trace token out of keys" [ "userID"; "name" ] q'.Identxx.Query.keys
  | Error e -> Alcotest.fail e);
  (* A frame without context decodes exactly as it always did. *)
  match Identxx.Query.decode "TCP 5000 80\nuserID\nname\n" with
  | Ok q' ->
      check Alcotest.bool "no trace" true (q'.Identxx.Query.trace = None);
      check
        Alcotest.(list string)
        "keys unchanged" [ "userID"; "name" ] q'.Identxx.Query.keys
  | Error e -> Alcotest.fail e

let test_query_trace_unparsable_stays_key () =
  (* Version tolerance in the other direction: an unintelligible
     "@trace/..." token is an ordinary hint key, like an old decoder
     would treat it. *)
  match Identxx.Query.decode "TCP 1 2\nuserID\n@trace/not-a-context\n" with
  | Ok q ->
      check Alcotest.bool "no trace parsed" true (q.Identxx.Query.trace = None);
      check
        Alcotest.(list string)
        "token stays a key"
        [ "userID"; "@trace/not-a-context" ]
        q.Identxx.Query.keys
  | Error e -> Alcotest.fail e

(* --- Response --- *)

let sample_response () =
  Identxx.Response.make ~flow:(flow "1.1.1.1" "2.2.2.2")
    [
      [ KV.pair "userID" "alice"; KV.pair "name" "skype" ];
      [ KV.pair "name" "not-skype"; KV.pair "branch" "B" ];
    ]

let test_response_wire_format () =
  let r = sample_response () in
  check Alcotest.string "exact bytes"
    "TCP 40000 80\nuserID: alice\nname: skype\n\nname: not-skype\nbranch: B\n"
    (Identxx.Response.encode r)

let test_response_roundtrip () =
  let r = sample_response () in
  match Identxx.Response.decode (Identxx.Response.encode r) with
  | Ok r' -> check Alcotest.bool "roundtrip" true (Identxx.Response.equal r r')
  | Error e -> Alcotest.fail e

let test_response_latest_and_star () =
  let r = sample_response () in
  check Alcotest.(option string) "latest from last section" (Some "not-skype")
    (Identxx.Response.latest r "name");
  check Alcotest.(option string) "single binding" (Some "alice")
    (Identxx.Response.latest r "userID");
  check Alcotest.string "star concatenation" "skype,not-skype"
    (Identxx.Response.concat_values r "name");
  check Alcotest.(list string) "keys in order" [ "userID"; "name"; "branch" ]
    (Identxx.Response.keys r)

let test_response_append_section () =
  let r = sample_response () in
  let r' = Identxx.Response.append_section r [ KV.pair "hop" "ctrl-b" ] in
  check Alcotest.int "three sections" 3 (List.length r'.Identxx.Response.sections);
  check Alcotest.(option string) "appended visible" (Some "ctrl-b")
    (Identxx.Response.latest r' "hop");
  (* Appending nothing is the identity. *)
  check Alcotest.bool "empty append is no-op" true
    (Identxx.Response.equal r (Identxx.Response.append_section r []))

let test_response_decode_skips_blank_runs () =
  (* Multiple consecutive blank lines do not create empty sections. *)
  match Identxx.Response.decode "TCP 1 2\na: 1\n\n\n\nb: 2\n" with
  | Ok r -> check Alcotest.int "two sections" 2 (List.length r.Identxx.Response.sections)
  | Error e -> Alcotest.fail e

let test_response_decode_rejects_bad_pair () =
  match Identxx.Response.decode "TCP 1 2\nno-colon-here\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted pair without colon"

let test_response_trace_piggyback () =
  let r = sample_response () in
  let spans =
    [ ("decode", 6e-05, 6e-05); ("lookup", 0.00012, 0.00018); ("sign", 0.5, 0.75) ]
  in
  let traced =
    Identxx.Response.attach_trace r ~trace_id:"0123456789abcdef"
      ~parent:"89abcdef" ~spans
  in
  check Alcotest.int "one extra section"
    (List.length r.Identxx.Response.sections + 1)
    (List.length traced.Identxx.Response.sections);
  (* The timings survive the wire byte-exactly. *)
  (match Identxx.Response.decode (Identxx.Response.encode traced) with
  | Error e -> Alcotest.fail e
  | Ok back -> (
      match Identxx.Response.trace_info back with
      | Some (id, parent, spans') ->
          check Alcotest.string "trace id" "0123456789abcdef" id;
          check Alcotest.string "parent" "89abcdef" parent;
          check Alcotest.bool "spans round trip" true (spans' = spans);
          (* Stripping recovers the pre-trace response, so trace data
             never reaches policy evaluation or attribute caches. *)
          check Alcotest.bool "strip recovers" true
            (Identxx.Response.equal r (Identxx.Response.strip_trace back))
      | None -> Alcotest.fail "trace_info lost the section"));
  (* A response without a trace section: trace_info is None, strip is
     the identity — old-peer frames are untouched. *)
  check Alcotest.bool "untraced: no info" true
    (Identxx.Response.trace_info r = None);
  check Alcotest.bool "untraced: strip id" true
    (Identxx.Response.equal r (Identxx.Response.strip_trace r))

(* --- Config --- *)

let fig3 =
  "@app /usr/bin/skype {\n\
   name : skype\n\
   version : 210\n\
   vendor : skype.com\n\
   type : voip\n\
   requirements : \\\n\
   pass from any port http \\\n\
   with eq(@src[name], skype) \\\n\
   pass from any port https \\\n\
   with eq(@src[name], skype)\n\
   req-sig : 21oirw3eda\n\
   }"

let test_config_parses_figure3 () =
  let cfg = Identxx.Config.parse_exn fig3 in
  match Identxx.Config.app cfg ~path:"/usr/bin/skype" with
  | None -> Alcotest.fail "no @app block"
  | Some pairs ->
      check Alcotest.(option string) "name" (Some "skype") (KV.find pairs "name");
      check Alcotest.(option string) "version" (Some "210") (KV.find pairs "version");
      let reqs = Option.value ~default:"" (KV.find pairs "requirements") in
      check Alcotest.bool "continuations joined" true
        (String.length reqs > 50 && not (String.contains reqs '\\'));
      (* The joined requirements parse as two PF+=2 rules. *)
      (match Pf.Parser.parse_rules reqs with
      | Ok [ _; _ ] -> ()
      | Ok _ -> Alcotest.fail "expected two rules in requirements"
      | Error e -> Alcotest.fail e)

let test_config_globals_and_comments () =
  let cfg =
    Identxx.Config.parse_exn
      "# host-wide pairs\nos-patch : MS08-067 # latest\ntype : workstation\n"
  in
  check Alcotest.(option string) "os-patch" (Some "MS08-067")
    (KV.find cfg.Identxx.Config.globals "os-patch");
  check Alcotest.int "no apps" 0 (List.length cfg.Identxx.Config.apps)

let test_config_render_roundtrip () =
  let cfg = Identxx.Config.parse_exn fig3 in
  let cfg' = Identxx.Config.parse_exn (Identxx.Config.render cfg) in
  check Alcotest.bool "render/parse roundtrip" true (cfg = cfg')

let test_config_rejects_malformed () =
  List.iter
    (fun s ->
      match Identxx.Config.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "@app {"; "@app /x {\nkey value\n}"; "@app /x {\nname : y\n" ]

let test_config_merge_order () =
  let a = Identxx.Config.parse_exn "k : from-a" in
  let b = Identxx.Config.parse_exn "k : from-b" in
  let merged = Identxx.Config.merge a b in
  (* Later files' pairs come later, so they win latest-style lookups. *)
  check Alcotest.(option string) "later file wins" (Some "from-b")
    (KV.find merged.Identxx.Config.globals "k")

(* --- Process_table --- *)

let test_ptable_connect_lookup () =
  let t = Identxx.Process_table.create () in
  let p = Identxx.Process_table.spawn t ~user:"alice" ~groups:[ "staff" ] ~exe:"/bin/x" () in
  let fl = flow "10.0.0.1" "10.0.0.2" in
  Identxx.Process_table.connect t ~pid:p.Identxx.Process_table.pid ~flow:fl;
  (match Identxx.Process_table.owner_of_flow t ~flow:fl with
  | Some q -> check Alcotest.string "owner" "alice" q.Identxx.Process_table.user
  | None -> Alcotest.fail "owner not found");
  Identxx.Process_table.disconnect t ~flow:fl;
  check Alcotest.bool "disconnected" true
    (Identxx.Process_table.owner_of_flow t ~flow:fl = None)

let test_ptable_listener_lookup () =
  let t = Identxx.Process_table.create () in
  let p = Identxx.Process_table.spawn t ~user:"www" ~groups:[] ~exe:"/bin/httpd" () in
  Identxx.Process_table.listen t ~pid:p.Identxx.Process_table.pid ~proto:Proto.Tcp ~port:80;
  let incoming = flow "9.9.9.9" "10.0.0.1" ~dp:80 in
  (match Identxx.Process_table.lookup t ~flow:incoming ~as_source:false with
  | Some q -> check Alcotest.string "listener owner" "www" q.Identxx.Process_table.user
  | None -> Alcotest.fail "listener not found");
  check Alcotest.bool "wrong port" true
    (Identxx.Process_table.lookup t ~flow:(flow "9.9.9.9" "10.0.0.1" ~dp:81)
       ~as_source:false
    = None)

let test_ptable_accepted_connection_precedes_listener () =
  let t = Identxx.Process_table.create () in
  let listener = Identxx.Process_table.spawn t ~user:"www" ~groups:[] ~exe:"/bin/httpd" () in
  let worker = Identxx.Process_table.spawn t ~user:"worker" ~groups:[] ~exe:"/bin/httpd" () in
  Identxx.Process_table.listen t ~pid:listener.Identxx.Process_table.pid ~proto:Proto.Tcp ~port:80;
  let incoming = flow "9.9.9.9" "10.0.0.1" ~dp:80 in
  (* The worker owns the accepted connection (host is the flow's dst, so
     ownership is registered for the reversed flow). *)
  Identxx.Process_table.connect t ~pid:worker.Identxx.Process_table.pid
    ~flow:(Five_tuple.reverse incoming);
  match Identxx.Process_table.lookup t ~flow:incoming ~as_source:false with
  | Some q -> check Alcotest.string "accepted wins" "worker" q.Identxx.Process_table.user
  | None -> Alcotest.fail "no owner"

let test_ptable_kill_cleans_up () =
  let t = Identxx.Process_table.create () in
  let p = Identxx.Process_table.spawn t ~user:"u" ~groups:[] ~exe:"/bin/x" () in
  let fl = flow "10.0.0.1" "10.0.0.2" in
  Identxx.Process_table.connect t ~pid:p.Identxx.Process_table.pid ~flow:fl;
  Identxx.Process_table.listen t ~pid:p.Identxx.Process_table.pid ~proto:Proto.Tcp ~port:9;
  Identxx.Process_table.kill t ~pid:p.Identxx.Process_table.pid;
  check Alcotest.bool "connection gone" true
    (Identxx.Process_table.owner_of_flow t ~flow:fl = None);
  check Alcotest.bool "listener gone" true
    (Identxx.Process_table.owner_of_listener t ~proto:Proto.Tcp ~port:9 = None);
  check Alcotest.int "no processes" 0
    (List.length (Identxx.Process_table.processes t))

let test_ptable_rejects_unknown_pid () =
  let t = Identxx.Process_table.create () in
  Alcotest.check_raises "connect unknown pid"
    (Invalid_argument "Process_table: unknown pid 1") (fun () ->
      Identxx.Process_table.connect t ~pid:1 ~flow:(flow "1.1.1.1" "2.2.2.2"))

let make_host ?behaviour name ip_str =
  Identxx.Host.create ?behaviour ~name ~mac:(Mac.of_int 7) ~ip:(ip ip_str) ()

let test_ptable_ptrace_same_user () =
  (* S5.4: a compromised app can exec+ptrace another app of the SAME
     user and masquerade as it. *)
  let t = Identxx.Process_table.create () in
  let evil = Identxx.Process_table.spawn t ~user:"alice" ~groups:[] ~exe:"/bin/evil" () in
  let pine = Identxx.Process_table.spawn t ~user:"alice" ~groups:[] ~exe:"/usr/bin/pine" () in
  (match Identxx.Process_table.ptrace t ~by:evil.Identxx.Process_table.pid
           ~target:pine.Identxx.Process_table.pid with
  | Ok p -> Alcotest.(check string) "gains pine identity" "/usr/bin/pine"
              p.Identxx.Process_table.exe_path
  | Error e -> Alcotest.fail e);
  (* ...but not across users. *)
  let root = Identxx.Process_table.spawn t ~user:"root" ~groups:[] ~exe:"/sbin/init" () in
  match Identxx.Process_table.ptrace t ~by:evil.Identxx.Process_table.pid
          ~target:root.Identxx.Process_table.pid with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cross-user ptrace must fail"

let test_ptable_ptrace_isolation () =
  (* S5.4's mitigation: the administrator marks the application setgid
     with a no-file-access group; ptrace is then denied even to the
     same user. *)
  let t = Identxx.Process_table.create () in
  let evil = Identxx.Process_table.spawn t ~user:"alice" ~groups:[] ~exe:"/bin/evil" () in
  let pine =
    Identxx.Process_table.spawn t ~isolated:true ~user:"alice" ~groups:[]
      ~exe:"/usr/bin/pine" ()
  in
  match Identxx.Process_table.ptrace t ~by:evil.Identxx.Process_table.pid
          ~target:pine.Identxx.Process_table.pid with
  | Error e ->
      Alcotest.(check bool) "mentions setgid" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "isolated process must not be traceable"

let test_ptrace_masquerade_changes_daemon_answer () =
  (* End to end: after a successful ptrace, flows registered under the
     victim pid are attributed to the victim app by the daemon. *)
  let h = make_host "h" "10.0.0.1" in
  let evil = Identxx.Host.run h ~user:"alice" ~exe:"/bin/evil" () in
  let pine = Identxx.Host.run h ~user:"alice" ~exe:"/usr/bin/pine" () in
  (match
     Identxx.Process_table.ptrace (Identxx.Host.processes h)
       ~by:evil.Identxx.Process_table.pid ~target:pine.Identxx.Process_table.pid
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let fl = Identxx.Host.connect h ~proc:pine ~dst:(ip "10.0.0.9") ~dst_port:25 () in
  match
    Identxx.Daemon.answer (Identxx.Host.daemon h) ~peer:(ip "10.0.0.9")
      ~proto:Proto.Tcp ~src_port:fl.Five_tuple.src_port ~dst_port:25 ~keys:[]
  with
  | Some (r, _) ->
      check Alcotest.(option string) "daemon reports pine" (Some "pine")
        (Identxx.Response.latest r "name")
  | None -> Alcotest.fail "no answer"

(* --- Daemon & Host --- *)

let test_daemon_source_response_sections () =
  let h = make_host "h" "10.0.0.1" in
  Identxx.Host.install_exe h ~path:"/usr/bin/skype" ~content:"skype-image";
  (match
     Identxx.Daemon.load_config (Identxx.Host.daemon h) ~name:"50-skype"
       "@app /usr/bin/skype {\nname : skype\nversion : 210\n}"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Identxx.Daemon.load_config (Identxx.Host.daemon h) ~name:"00-admin"
       "os-patch : MS08-067"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let proc = Identxx.Host.run h ~user:"alice" ~groups:[ "staff"; "voip" ] ~exe:"/usr/bin/skype" () in
  let fl = Identxx.Host.connect h ~proc ~dst:(ip "10.0.0.2") ~dst_port:33000 () in
  match
    Identxx.Daemon.answer (Identxx.Host.daemon h) ~peer:(ip "10.0.0.2")
      ~proto:Proto.Tcp ~src_port:fl.Five_tuple.src_port ~dst_port:33000 ~keys:[]
  with
  | None -> Alcotest.fail "no answer"
  | Some (r, role) ->
      check Alcotest.bool "as source" true (role = Identxx.Daemon.As_source);
      check Alcotest.(option string) "userID" (Some "alice")
        (Identxx.Response.latest r "userID");
      check Alcotest.(option string) "groups joined" (Some "staff,voip")
        (Identxx.Response.latest r "groupID");
      check Alcotest.(option string) "config name overrides basename"
        (Some "skype")
        (Identxx.Response.latest r "name");
      check Alcotest.(option string) "version from config" (Some "210")
        (Identxx.Response.latest r "version");
      check Alcotest.(option string) "host-wide admin pair" (Some "MS08-067")
        (Identxx.Response.latest r "os-patch");
      check Alcotest.(option string) "exe hash reported"
        (Some (Idcrypto.Sha256.hexdigest "skype-image"))
        (Identxx.Response.latest r "exe-hash")

let test_daemon_destination_response () =
  let h = make_host "srv" "10.0.0.2" in
  let proc = Identxx.Host.run h ~user:"smtp" ~exe:"/usr/sbin/sendmail" () in
  Identxx.Host.listen h ~proc ~port:25 ();
  match
    Identxx.Daemon.answer (Identxx.Host.daemon h) ~peer:(ip "10.0.0.1")
      ~proto:Proto.Tcp ~src_port:50000 ~dst_port:25 ~keys:[]
  with
  | Some (r, Identxx.Daemon.As_destination) ->
      check Alcotest.(option string) "listener user" (Some "smtp")
        (Identxx.Response.latest r "userID")
  | Some (_, Identxx.Daemon.As_source) -> Alcotest.fail "wrong role"
  | None -> Alcotest.fail "no answer"

let test_daemon_runtime_pairs () =
  let h = make_host "h" "10.0.0.1" in
  let proc = Identxx.Host.run h ~user:"alice" ~exe:"/usr/bin/firefox" () in
  let fl = Identxx.Host.connect h ~proc ~dst:(ip "10.0.0.9") ~dst_port:443 () in
  (* A browser labelling a flow as user-initiated (§3.5). *)
  Identxx.Daemon.register_runtime (Identxx.Host.daemon h) ~flow:fl
    [ KV.pair "user-initiated" "yes" ];
  (match
     Identxx.Daemon.answer (Identxx.Host.daemon h) ~peer:(ip "10.0.0.9")
       ~proto:Proto.Tcp ~src_port:fl.Five_tuple.src_port ~dst_port:443 ~keys:[]
   with
  | Some (r, _) ->
      check Alcotest.(option string) "runtime pair present" (Some "yes")
        (Identxx.Response.latest r "user-initiated")
  | None -> Alcotest.fail "no answer");
  Identxx.Daemon.clear_runtime (Identxx.Host.daemon h) ~flow:fl;
  match
    Identxx.Daemon.answer (Identxx.Host.daemon h) ~peer:(ip "10.0.0.9")
      ~proto:Proto.Tcp ~src_port:fl.Five_tuple.src_port ~dst_port:443 ~keys:[]
  with
  | Some (r, _) ->
      check Alcotest.(option string) "cleared" None
        (Identxx.Response.latest r "user-initiated")
  | None -> Alcotest.fail "no answer"

let test_daemon_no_process_still_answers_globals () =
  let h = make_host "h" "10.0.0.1" in
  (match
     Identxx.Daemon.load_config (Identxx.Host.daemon h) ~name:"00"
       "asset : printer"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match
    Identxx.Daemon.answer (Identxx.Host.daemon h) ~peer:(ip "1.2.3.4")
      ~proto:Proto.Tcp ~src_port:1 ~dst_port:2 ~keys:[]
  with
  | Some (r, _) ->
      check Alcotest.(option string) "globals only" (Some "printer")
        (Identxx.Response.latest r "asset");
      check Alcotest.(option string) "no userID" None
        (Identxx.Response.latest r "userID")
  | None -> Alcotest.fail "honest daemon must answer"

let test_daemon_silent_and_lying () =
  let h = make_host ~behaviour:Identxx.Daemon.Silent "h" "10.0.0.1" in
  check Alcotest.bool "silent" true
    (Identxx.Daemon.answer (Identxx.Host.daemon h) ~peer:(ip "1.1.1.1")
       ~proto:Proto.Tcp ~src_port:1 ~dst_port:2 ~keys:[]
    = None);
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon h)
    (Identxx.Daemon.Lying [ KV.pair "name" "definitely-legit" ]);
  match
    Identxx.Daemon.answer (Identxx.Host.daemon h) ~peer:(ip "1.1.1.1")
      ~proto:Proto.Tcp ~src_port:1 ~dst_port:2 ~keys:[]
  with
  | Some (r, _) ->
      check Alcotest.(option string) "fabricated" (Some "definitely-legit")
        (Identxx.Response.latest r "name")
  | None -> Alcotest.fail "lying daemon answers"

(* --- Wire --- *)

let test_wire_query_packet_classify () =
  let fl = flow "10.0.0.1" "10.0.0.2" in
  let q = Identxx.Query.make ~flow:fl ~keys:[ "userID" ] in
  (* Query the source host: addressed to flow.src, from flow.dst (§3.2). *)
  let pkt = Identxx.Wire.query_packet ~to_ip:fl.Five_tuple.src ~from_ip:fl.Five_tuple.dst q in
  match Identxx.Wire.classify pkt with
  | Identxx.Wire.Query { from_ip; to_ip; query } ->
      check Alcotest.bool "to source host" true (Ipv4.equal to_ip fl.Five_tuple.src);
      check Alcotest.bool "from dest addr" true (Ipv4.equal from_ip fl.Five_tuple.dst);
      check Alcotest.bool "payload survives" true (Identxx.Query.equal q query)
  | _ -> Alcotest.fail "not classified as query"

let test_wire_host_answers_query_packet () =
  let h = make_host "h" "10.0.0.1" in
  let proc = Identxx.Host.run h ~user:"alice" ~exe:"/usr/bin/pine" () in
  let fl = Identxx.Host.connect h ~proc ~dst:(ip "10.0.0.2") ~dst_port:25 () in
  let q = Identxx.Query.make ~flow:fl ~keys:[ "userID" ] in
  let query_pkt = Identxx.Wire.query_packet ~to_ip:(ip "10.0.0.1") ~from_ip:(ip "10.0.0.2") q in
  match Identxx.Host.handle_packet h query_pkt with
  | None -> Alcotest.fail "host did not answer"
  | Some reply -> (
      match Identxx.Wire.classify reply with
      | Identxx.Wire.Response { from_ip; to_ip; response } ->
          check Alcotest.bool "reply from host" true (Ipv4.equal from_ip (ip "10.0.0.1"));
          check Alcotest.bool "reply toward querier source" true
            (Ipv4.equal to_ip (ip "10.0.0.2"));
          check Alcotest.(option string) "user in reply" (Some "alice")
            (Identxx.Response.latest response "userID")
      | _ -> Alcotest.fail "reply not a response")

let test_wire_host_ignores_foreign_query () =
  let h = make_host "h" "10.0.0.1" in
  let fl = flow "10.0.0.7" "10.0.0.8" in
  let q = Identxx.Query.make ~flow:fl ~keys:[] in
  let pkt = Identxx.Wire.query_packet ~to_ip:(ip "10.0.0.7") ~from_ip:(ip "10.0.0.8") q in
  check Alcotest.bool "not addressed to us" true (Identxx.Host.handle_packet h pkt = None)

let test_wire_malformed_not_identxx () =
  let pkt =
    Packet.tcp_syn ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") ~src_port:999
      ~dst_port:Identxx.Wire.port ()
  in
  (* Empty payload on port 783: not a parsable query. *)
  check Alcotest.bool "not identxx" true (Identxx.Wire.classify pkt = Identxx.Wire.Not_identxx)

let test_wire_is_identxx () =
  check Alcotest.bool "dst 783" true
    (Identxx.Wire.is_identxx (flow ~dp:783 "1.1.1.1" "2.2.2.2"));
  check Alcotest.bool "src 783" true
    (Identxx.Wire.is_identxx (flow ~sp:783 "1.1.1.1" "2.2.2.2"));
  check Alcotest.bool "udp 783 is not" false
    (Identxx.Wire.is_identxx (flow ~proto:Proto.Udp ~dp:783 "1.1.1.1" "2.2.2.2"))

(* --- Signed responses --- *)

let test_signed_roundtrip () =
  let kp = Idcrypto.Sign.generate "host-key" in
  let ks = Idcrypto.Sign.keystore () in
  Idcrypto.Sign.register ks kp;
  let r =
    Identxx.Response.make ~flow:(flow "10.0.0.1" "10.0.0.2")
      [ [ KV.pair "userID" "alice" ]; [ KV.pair "name" "pine" ] ]
  in
  let signed = Identxx.Signed.sign ~keypair:kp r in
  check Alcotest.int "one extra section" 3
    (List.length signed.Identxx.Response.sections);
  (match Identxx.Signed.verify ks signed with
  | Identxx.Signed.Valid n -> check Alcotest.int "covers both sections" 2 n
  | _ -> Alcotest.fail "expected valid");
  (* Signature survives the wire. *)
  match Identxx.Response.decode (Identxx.Response.encode signed) with
  | Ok decoded ->
      check Alcotest.bool "valid after roundtrip" true
        (Identxx.Signed.verify ks decoded = Identxx.Signed.Valid 2)
  | Error e -> Alcotest.fail e

let test_signed_detects_tampering () =
  let kp = Idcrypto.Sign.generate "host-key" in
  let ks = Idcrypto.Sign.keystore () in
  Idcrypto.Sign.register ks kp;
  let r =
    Identxx.Response.make ~flow:(flow "10.0.0.1" "10.0.0.2")
      [ [ KV.pair "name" "pine" ] ]
  in
  let signed = Identxx.Signed.sign ~keypair:kp r in
  (* Tamper with a covered pair. *)
  let tampered =
    {
      signed with
      Identxx.Response.sections =
        (match signed.Identxx.Response.sections with
        | _ :: rest -> [ KV.pair "name" "skype" ] :: rest
        | [] -> []);
    }
  in
  check Alcotest.bool "tampered invalid" true
    (Identxx.Signed.verify ks tampered = Identxx.Signed.Invalid);
  (* Unknown signer. *)
  let other_ks = Idcrypto.Sign.keystore () in
  check Alcotest.bool "unknown signer invalid" true
    (Identxx.Signed.verify other_ks signed = Identxx.Signed.Invalid);
  (* No signature at all. *)
  check Alcotest.bool "unsigned" true
    (Identxx.Signed.verify ks r = Identxx.Signed.Unsigned)

let test_signed_post_signature_sections_uncovered () =
  let kp = Idcrypto.Sign.generate "host-key" in
  let ks = Idcrypto.Sign.keystore () in
  Idcrypto.Sign.register ks kp;
  let r =
    Identxx.Response.make ~flow:(flow "10.0.0.1" "10.0.0.2")
      [ [ KV.pair "name" "pine" ] ]
  in
  let signed = Identxx.Signed.sign ~keypair:kp r in
  (* A transit controller appends after the signature: still Valid, but
     the coverage count exposes that the extra section is unsigned. *)
  let augmented =
    Identxx.Response.append_section signed [ KV.pair "branch" "B" ]
  in
  match Identxx.Signed.verify ks augmented with
  | Identxx.Signed.Valid n ->
      check Alcotest.int "covers only the original" 1 n;
      check Alcotest.int "but response has three sections" 3
        (List.length augmented.Identxx.Response.sections)
  | _ -> Alcotest.fail "expected valid"

let test_signed_trace_section_keeps_signature () =
  let kp = Idcrypto.Sign.generate "host-key" in
  let ks = Idcrypto.Sign.keystore () in
  Idcrypto.Sign.register ks kp;
  let r =
    Identxx.Response.make ~flow:(flow "10.0.0.1" "10.0.0.2")
      [ [ KV.pair "name" "pine" ] ]
  in
  let signed = Identxx.Signed.sign ~keypair:kp r in
  (* The daemon attaches span timings after signing: the signature still
     verifies over its prefix, and stripping the trace section recovers
     the signed response byte-for-byte. *)
  let traced =
    Identxx.Response.attach_trace signed ~trace_id:"00000000deadbeef"
      ~parent:"cafe0123"
      ~spans:[ ("lookup", 1e-4, 2e-4); ("sign", 2e-4, 3e-4) ]
  in
  (match Identxx.Signed.verify ks traced with
  | Identxx.Signed.Valid n ->
      check Alcotest.int "signature still covers its prefix" 1 n
  | _ -> Alcotest.fail "expected valid");
  check Alcotest.int "trace section rides after the signature" 3
    (List.length traced.Identxx.Response.sections);
  check Alcotest.bool "strip recovers the signed response" true
    (Identxx.Response.strip_trace traced = signed)

(* --- RFC 1413 compatibility --- *)

let test_rfc1413_userid () =
  let t = Identxx.Process_table.create () in
  let p = Identxx.Process_table.spawn t ~user:"alice" ~groups:[] ~exe:"/usr/bin/irc" () in
  let fl = flow ~sp:50123 ~dp:6667 "10.0.0.1" "10.0.0.9" in
  Identxx.Process_table.connect t ~pid:p.Identxx.Process_table.pid ~flow:fl;
  (* The server (10.0.0.9) asks: its local port 6667 pairs with our 50123. *)
  check Alcotest.string "userid reply" "6667, 50123 : USERID : UNIX : alice"
    (Identxx.Rfc1413.handle_request ~processes:t ~local_ip:(ip "10.0.0.1")
       ~peer_ip:(ip "10.0.0.9") "6667, 50123")

let test_rfc1413_no_user () =
  let t = Identxx.Process_table.create () in
  check Alcotest.string "no-user" "6667, 50123 : ERROR : NO-USER"
    (Identxx.Rfc1413.handle_request ~processes:t ~local_ip:(ip "10.0.0.1")
       ~peer_ip:(ip "10.0.0.9") "6667, 50123")

let test_rfc1413_invalid () =
  let t = Identxx.Process_table.create () in
  List.iter
    (fun req ->
      let reply =
        Identxx.Rfc1413.handle_request ~processes:t ~local_ip:(ip "10.0.0.1")
          ~peer_ip:(ip "10.0.0.9") req
      in
      check Alcotest.bool ("invalid: " ^ req) true
        (String.length reply >= 12
        && String.sub reply (String.length reply - 12) 12 = "INVALID-PORT"))
    [ ""; "abc"; "1"; "0, 5"; "70000, 5"; "1, 2, 3" ]

(* --- property tests --- *)

let gen_key =
  QCheck.Gen.(
    map
      (fun (c, rest) -> String.make 1 c ^ rest)
      (pair (char_range 'a' 'z')
         (string_size ~gen:(char_range 'a' 'z') (int_bound 8))))

let gen_value = gen_key

let gen_section =
  QCheck.Gen.(
    list_size (int_range 1 5)
      (map (fun (k, v) -> KV.pair k v) (pair gen_key gen_value)))

let gen_response =
  QCheck.Gen.(
    let* sections = list_size (int_range 1 4) gen_section in
    let* sp = int_bound 0xffff in
    let* dp = int_bound 0xffff in
    return
      (Identxx.Response.make
         ~flow:
           (Five_tuple.make ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2")
              ~proto:Proto.Tcp ~src_port:sp ~dst_port:dp)
         sections))

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response encode/decode roundtrip" ~count:300
    (QCheck.make gen_response ~print:Identxx.Response.encode)
    (fun r ->
      match Identxx.Response.decode (Identxx.Response.encode r) with
      | Ok r' -> Identxx.Response.equal r r'
      | Error _ -> false)

let prop_latest_is_last_of_all_values =
  QCheck.Test.make ~name:"latest equals last of all_values" ~count:300
    (QCheck.make gen_response ~print:Identxx.Response.encode)
    (fun r ->
      List.for_all
        (fun k ->
          match (Identxx.Response.latest r k, List.rev (Identxx.Response.all_values r k)) with
          | Some v, last :: _ -> v = last
          | None, [] -> true
          | _ -> false)
        (Identxx.Response.keys r))

let prop_append_preserves_existing =
  QCheck.Test.make ~name:"append_section preserves existing bindings" ~count:200
    (QCheck.make
       QCheck.Gen.(pair gen_response gen_section)
       ~print:(fun (r, _) -> Identxx.Response.encode r))
    (fun (r, section) ->
      let r' = Identxx.Response.append_section r section in
      let rec prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && prefix xs ys
        | _ :: _, [] -> false
      in
      List.for_all
        (fun k ->
          prefix (Identxx.Response.all_values r k) (Identxx.Response.all_values r' k))
        (Identxx.Response.keys r))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "identxx"
    [
      ( "key_value",
        [
          Alcotest.test_case "validation" `Quick test_kv_validation;
          Alcotest.test_case "find last binding" `Quick test_kv_find_last_binding;
        ] );
      ( "query",
        [
          Alcotest.test_case "wire format" `Quick test_query_wire_format;
          Alcotest.test_case "decode" `Quick test_query_decode;
          Alcotest.test_case "rejects garbage" `Quick test_query_decode_rejects_garbage;
          Alcotest.test_case "roundtrip" `Quick test_query_roundtrip;
          Alcotest.test_case "trace wire" `Quick test_query_trace_wire;
          Alcotest.test_case "unparsable trace stays key" `Quick
            test_query_trace_unparsable_stays_key;
        ] );
      ( "response",
        [
          Alcotest.test_case "wire format" `Quick test_response_wire_format;
          Alcotest.test_case "roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "latest and star" `Quick test_response_latest_and_star;
          Alcotest.test_case "append section" `Quick test_response_append_section;
          Alcotest.test_case "blank runs" `Quick test_response_decode_skips_blank_runs;
          Alcotest.test_case "rejects bad pair" `Quick
            test_response_decode_rejects_bad_pair;
          Alcotest.test_case "trace piggyback" `Quick
            test_response_trace_piggyback;
        ] );
      ( "config",
        [
          Alcotest.test_case "parses figure 3" `Quick test_config_parses_figure3;
          Alcotest.test_case "globals and comments" `Quick
            test_config_globals_and_comments;
          Alcotest.test_case "render roundtrip" `Quick test_config_render_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_config_rejects_malformed;
          Alcotest.test_case "merge order" `Quick test_config_merge_order;
        ] );
      ( "process_table",
        [
          Alcotest.test_case "connect/lookup" `Quick test_ptable_connect_lookup;
          Alcotest.test_case "listener lookup" `Quick test_ptable_listener_lookup;
          Alcotest.test_case "accepted beats listener" `Quick
            test_ptable_accepted_connection_precedes_listener;
          Alcotest.test_case "kill cleans up" `Quick test_ptable_kill_cleans_up;
          Alcotest.test_case "rejects unknown pid" `Quick
            test_ptable_rejects_unknown_pid;
          Alcotest.test_case "ptrace same user" `Quick test_ptable_ptrace_same_user;
          Alcotest.test_case "ptrace isolation" `Quick test_ptable_ptrace_isolation;
          Alcotest.test_case "ptrace masquerade" `Quick
            test_ptrace_masquerade_changes_daemon_answer;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "source response sections" `Quick
            test_daemon_source_response_sections;
          Alcotest.test_case "destination response" `Quick
            test_daemon_destination_response;
          Alcotest.test_case "runtime pairs" `Quick test_daemon_runtime_pairs;
          Alcotest.test_case "no process, globals only" `Quick
            test_daemon_no_process_still_answers_globals;
          Alcotest.test_case "silent and lying" `Quick test_daemon_silent_and_lying;
        ] );
      ( "wire",
        [
          Alcotest.test_case "query packet classify" `Quick
            test_wire_query_packet_classify;
          Alcotest.test_case "host answers query packet" `Quick
            test_wire_host_answers_query_packet;
          Alcotest.test_case "ignores foreign query" `Quick
            test_wire_host_ignores_foreign_query;
          Alcotest.test_case "malformed not identxx" `Quick
            test_wire_malformed_not_identxx;
          Alcotest.test_case "is_identxx" `Quick test_wire_is_identxx;
        ] );
      ( "signed",
        [
          Alcotest.test_case "sign/verify roundtrip" `Quick test_signed_roundtrip;
          Alcotest.test_case "detects tampering" `Quick
            test_signed_detects_tampering;
          Alcotest.test_case "post-signature sections" `Quick
            test_signed_post_signature_sections_uncovered;
          Alcotest.test_case "trace section keeps signature" `Quick
            test_signed_trace_section_keeps_signature;
        ] );
      ( "rfc1413",
        [
          Alcotest.test_case "userid" `Quick test_rfc1413_userid;
          Alcotest.test_case "no user" `Quick test_rfc1413_no_user;
          Alcotest.test_case "invalid requests" `Quick test_rfc1413_invalid;
        ] );
      ( "properties",
        qc
          [
            prop_response_roundtrip;
            prop_latest_is_last_of_all_values;
            prop_append_preserves_existing;
          ] );
    ]

(* PF+=2 language tests: lexer, parser, environment, evaluator, and the
   paper's own example policies (Figures 2, 5, 7, 8). *)

open Netcore

let ip = Ipv4.of_string

let flow ?(proto = Proto.Tcp) ?(sp = 40000) ?(dp = 80) src dst =
  Five_tuple.make ~src:(ip src) ~dst:(ip dst) ~proto ~src_port:sp ~dst_port:dp

let response flow sections =
  Identxx.Response.make ~flow
    (List.map
       (fun pairs ->
         List.map (fun (k, v) -> Identxx.Key_value.pair k v) pairs)
       sections)

let check_decision = Alcotest.(check bool)

let has_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let env_of s =
  match Pf.Env.of_string s with
  | Ok env -> env
  | Error e -> Alcotest.failf "config did not parse/build: %s" e

let eval ?src ?dst ?keystore env flow =
  let ctx = Pf.Eval.ctx ?src ?dst ?keystore () in
  match Pf.Eval.eval env ctx flow with
  | Ok v -> v.Pf.Eval.decision = Pf.Ast.Pass
  | Error e -> Alcotest.failf "eval error: %s" e

(* --- lexer --- *)

let test_lexer_basic () =
  match Pf.Lexer.tokenize "pass from <lan> to !any port 80 # comment\nblock all" with
  | Error e -> Alcotest.fail e
  | Ok toks ->
      let words =
        List.filter_map
          (fun (t : Pf.Token.located) ->
            match t.token with Pf.Token.Word w -> Some w | _ -> None)
          toks
      in
      Alcotest.(check (list string))
        "words"
        [ "pass"; "from"; "lan"; "to"; "any"; "port"; "80"; "block"; "all" ]
        words

let test_lexer_star_at () =
  match Pf.Lexer.tokenize "*@src[userID]" with
  | Error e -> Alcotest.fail e
  | Ok toks ->
      Alcotest.(check int) "token count" 5 (List.length toks);
      (match toks with
      | { token = Pf.Token.Star_at; _ } :: _ -> ()
      | _ -> Alcotest.fail "expected Star_at first")

let test_lexer_continuation () =
  match Pf.Lexer.tokenize "pass \\\n  from any" with
  | Error e -> Alcotest.fail e
  | Ok toks -> Alcotest.(check int) "token count" 3 (List.length toks)

let test_lexer_unterminated_string () =
  match Pf.Lexer.tokenize "x = \"oops" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

(* --- parser --- *)

let parse_ok s =
  match Pf.Parser.parse s with
  | Ok decls -> decls
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parse_block_all () =
  match parse_ok "block all" with
  | [ Pf.Ast.Rule_decl r ] ->
      Alcotest.(check bool) "is block" true (r.action = Pf.Ast.Block);
      Alcotest.(check bool) "matches all" true (Pf.Ast.is_all r)
  | _ -> Alcotest.fail "expected a single rule"

let test_parse_table () =
  match parse_ok "table <mail-server> {192.168.42.32}" with
  | [ Pf.Ast.Table_def ("mail-server", [ Pf.Ast.Item_prefix p ]) ]
    when Prefix.to_string p = "192.168.42.32/32" ->
      ()
  | _ -> Alcotest.fail "bad table parse"

let test_parse_nested_table () =
  match parse_ok "table <int_hosts> { <lan> <server> }" with
  | [ Pf.Ast.Table_def ("int_hosts", [ Pf.Ast.Item_ref "lan"; Pf.Ast.Item_ref "server" ]) ] -> ()
  | _ -> Alcotest.fail "bad nested table parse"

let test_parse_paper_mail_rule () =
  (* The flagship PF+=2 example in §3.3. *)
  let src =
    "table <mail-server> {192.168.42.32}\n\
     block all\n\
     pass from any \\\n\
     with member(@src[groupID], users) \\\n\
     with eq(@src[app-name], pine) \\\n\
     to <mail-server> \\\n\
     with eq(@dst[userID], smtp)"
  in
  let decls = parse_ok src in
  match Pf.Ast.rules decls with
  | [ _block; pass ] ->
      Alcotest.(check int) "three with clauses" 3 (List.length pass.conds)
  | _ -> Alcotest.fail "expected two rules"

let test_parse_multiple_rules_one_line () =
  (* Figure 3: a requirements value holds several rules on one logical line. *)
  let src =
    "pass from any port http with eq(@src[name], skype) pass from any port \
     https with eq(@src[name], skype)"
  in
  match Pf.Parser.parse_rules src with
  | Ok [ r1; r2 ] ->
      Alcotest.(check bool) "first port" true (r1.from_.port = Some (Pf.Ast.Port_eq 80));
      Alcotest.(check bool) "second port" true (r2.from_.port = Some (Pf.Ast.Port_eq 443))
  | Ok _ -> Alcotest.fail "expected exactly two rules"
  | Error e -> Alcotest.fail e

let test_parse_dict () =
  match parse_ok "dict <pubkeys> { research : sk3ajf admin : a923jx }" with
  | [ Pf.Ast.Dict_def ("pubkeys", [ ("research", "sk3ajf"); ("admin", "a923jx") ]) ] -> ()
  | _ -> Alcotest.fail "bad dict parse"

let test_parse_macro () =
  match parse_ok "allowed = \"{ http ssh }\"" with
  | [ Pf.Ast.Macro_def ("allowed", "{ http ssh }") ] -> ()
  | _ -> Alcotest.fail "bad macro parse"

let test_parse_quick () =
  match Pf.Ast.rules (parse_ok "pass quick from any to any") with
  | [ r ] -> Alcotest.(check bool) "quick" true r.quick
  | _ -> Alcotest.fail "expected one rule"

let test_parse_keep_state () =
  match Pf.Ast.rules (parse_ok "pass from <a> to any keep state table <a> {10.0.0.1}") with
  | [ r ] -> Alcotest.(check bool) "keep state" true r.keep_state
  | _ -> Alcotest.fail "expected one rule"

let test_parse_rejects_empty_rule () =
  match Pf.Parser.parse "pass" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare 'pass' should not parse"

let test_parse_rejects_bad_addr () =
  match Pf.Parser.parse "pass from 300.1.2.3 to any" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad address should not parse"

let test_roundtrip_figures () =
  (* Pretty-print then re-parse: ASTs must agree. *)
  let srcs =
    [
      "block all";
      "pass quick from <lan> port 80 to !<lan> keep state table <lan> {10.0.0.0/8}";
      "pass from any with eq(@src[name], skype) with lt(@src[version], 200)";
      "dict <k> { a : b }\npass all with verify(@src[req-sig], @k[a], @src[exe-hash])";
      "allowed = \"{ http ssh }\"\npass all with member(@src[name], $allowed)";
      "pass all with member(*@src[groupID], research)";
      "block log proto tcp from any to any port 8000:8080";
      "pass from { 10.0.0.1 172.16.0.0/12 } to !{ 8.8.8.8 } port 53";
      "pass log proto udp from <lan> to any port 53 table <lan> {10.0.0.0/8}";
    ]
  in
  List.iter
    (fun src ->
      let d1 = parse_ok src in
      let printed = Pf.Pretty.ruleset d1 in
      let d2 = parse_ok printed in
      (* Line numbers differ; compare printed forms instead. *)
      Alcotest.(check string)
        ("roundtrip: " ^ src)
        printed (Pf.Pretty.ruleset d2))
    srcs


let test_parse_inline_address_list () =
  match Pf.Ast.rules (parse_ok "block all\npass from { 10.0.0.1 10.0.0.2 192.168.0.0/24 } to any") with
  | [ _; r ] -> (
      match r.from_.addr with
      | Some { Pf.Ast.addr = Pf.Ast.Addr_list prefixes; negated = false } ->
          Alcotest.(check int) "three members" 3 (List.length prefixes)
      | _ -> Alcotest.fail "expected an address list")
  | _ -> Alcotest.fail "expected two rules"

let test_eval_inline_address_list () =
  let env =
    env_of "block all\npass from { 10.0.0.1 192.168.0.0/24 } to any"
  in
  check_decision "member passes" true (eval env (flow "10.0.0.1" "2.2.2.2"));
  check_decision "prefix member passes" true
    (eval env (flow "192.168.0.77" "2.2.2.2"));
  check_decision "non-member blocked" false
    (eval env (flow "10.0.0.2" "2.2.2.2"));
  let neg = env_of "block all\npass from !{ 10.0.0.1 } to any" in
  check_decision "negated list" true (eval neg (flow "10.0.0.9" "2.2.2.2"));
  check_decision "negated member blocked" false
    (eval neg (flow "10.0.0.1" "2.2.2.2"))

let test_parse_proto_clause () =
  match Pf.Ast.rules (parse_ok "pass proto udp from any to any port 53") with
  | [ r ] ->
      Alcotest.(check bool) "proto udp" true (r.proto = Some Proto.Udp)
  | _ -> Alcotest.fail "expected one rule"

let test_parse_port_range () =
  match Pf.Ast.rules (parse_ok "pass from any to any port 8000:8080") with
  | [ r ] ->
      Alcotest.(check bool) "range" true
        (r.to_.port = Some (Pf.Ast.Port_range (8000, 8080)))
  | _ -> Alcotest.fail "expected one rule"

let test_parse_rejects_empty_range () =
  match Pf.Parser.parse "pass from any to any port 90:80" with
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (has_substring e "line 1");
      Alcotest.(check bool) "error shows the range" true
        (has_substring e "90:80")
  | Ok _ -> Alcotest.fail "inverted range should not parse"

let test_parse_rejects_out_of_range_port () =
  (match Pf.Parser.parse "block all\npass from any to any port 70000" with
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (has_substring e "line 2")
  | Ok _ -> Alcotest.fail "port 70000 should not parse");
  match Pf.Parser.parse "pass from any to any port 80:70000" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "range ending past 65535 should not parse"

let test_parse_log_modifier () =
  match Pf.Ast.rules (parse_ok "block log from any to any port 23") with
  | [ r ] -> Alcotest.(check bool) "log" true r.log
  | _ -> Alcotest.fail "expected one rule"

let test_eval_proto_clause () =
  let env = env_of "block all\npass proto udp from any to any port 53" in
  check_decision "udp 53 passes" true
    (eval env (flow ~proto:Proto.Udp ~dp:53 "1.1.1.1" "2.2.2.2"));
  check_decision "tcp 53 blocked" false
    (eval env (flow ~proto:Proto.Tcp ~dp:53 "1.1.1.1" "2.2.2.2"))

let test_eval_port_range () =
  let env = env_of "block all\npass from any to any port 8000:8080" in
  check_decision "8000 passes" true (eval env (flow ~dp:8000 "1.1.1.1" "2.2.2.2"));
  check_decision "8080 passes" true (eval env (flow ~dp:8080 "1.1.1.1" "2.2.2.2"));
  check_decision "8040 passes" true (eval env (flow ~dp:8040 "1.1.1.1" "2.2.2.2"));
  check_decision "7999 blocked" false (eval env (flow ~dp:7999 "1.1.1.1" "2.2.2.2"));
  check_decision "8081 blocked" false (eval env (flow ~dp:8081 "1.1.1.1" "2.2.2.2"))

let test_eval_log_in_verdict () =
  let env = env_of "block log from any to any port 23\npass all with eq(1, 1)" in
  let v = Pf.Eval.eval_exn env (Pf.Eval.ctx ()) (flow ~dp:23 "1.1.1.1" "2.2.2.2") in
  (* Last match wins: the pass-all rule matched last and has no log. *)
  Alcotest.(check bool) "pass rule unlogged" false v.Pf.Eval.log;
  let env2 = env_of "pass all with eq(1, 1)\nblock log from any to any port 23" in
  let v2 = Pf.Eval.eval_exn env2 (Pf.Eval.ctx ()) (flow ~dp:23 "1.1.1.1" "2.2.2.2") in
  Alcotest.(check bool) "block log marks verdict" true v2.Pf.Eval.log;
  Alcotest.(check bool) "and blocks" true (v2.Pf.Eval.decision = Pf.Ast.Block)

(* --- env --- *)

let test_env_nested_tables () =
  let env =
    env_of
      "table <server> { 192.168.1.1 }\n\
       table <lan> { 192.168.0.0/24 }\n\
       table <int_hosts> { <lan> <server> }"
  in
  match Pf.Env.table env "int_hosts" with
  | Some prefixes ->
      Alcotest.(check int) "two prefixes" 2 (List.length prefixes)
  | None -> Alcotest.fail "int_hosts missing"

let test_env_cycle_detected () =
  let src = "table <a> { <b> }\ntable <b> { <a> }" in
  match Pf.Parser.parse src with
  | Error e -> Alcotest.fail e
  | Ok decls -> (
      match Pf.Env.build decls with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "cycle should be rejected")

let test_env_unknown_table_in_rule () =
  match Pf.Env.of_string "pass from <ghost> to any" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown table should be rejected"

let test_env_referenced_keys () =
  let env =
    env_of
      "block all\n\
       pass all with eq(@src[name], skype) with gt(@src[version], 200)\n\
       pass all with member(@dst[groupID], research) with eq(@src[name], x)"
  in
  Alcotest.(check (list string)) "keys in first-use order, deduplicated"
    [ "name"; "version"; "groupID" ]
    (Pf.Env.referenced_keys env)

let test_env_shadowing () =
  let env = env_of "x = \"1\"\nx = \"2\"\nblock all" in
  Alcotest.(check (option string)) "later macro wins" (Some "2")
    (Pf.Env.macro env "x")

(* --- evaluator --- *)

let test_eval_default_pass () =
  let env = env_of "block from 10.0.0.1 to any" in
  check_decision "unmatched flow passes by default" true
    (eval env (flow "10.9.9.9" "10.0.0.2"))

let test_eval_last_match_wins () =
  let env = env_of "block all\npass from 10.0.0.1 to any" in
  check_decision "later pass overrides earlier block" true
    (eval env (flow "10.0.0.1" "10.0.0.2"));
  check_decision "other flows still blocked" false
    (eval env (flow "10.0.0.3" "10.0.0.2"))

let test_eval_quick_short_circuits () =
  let env = env_of "block quick from 10.0.0.1 to any\npass all" in
  check_decision "quick block wins despite later pass" false
    (eval env (flow "10.0.0.1" "10.0.0.2"));
  check_decision "others pass" true (eval env (flow "10.0.0.2" "10.0.0.9"))

let test_eval_negation () =
  let env =
    env_of "table <lan> {192.168.0.0/24}\nblock all\npass from <lan> to !<lan>"
  in
  check_decision "lan to outside passes" true
    (eval env (flow "192.168.0.5" "8.8.8.8"));
  check_decision "lan to lan blocked" false
    (eval env (flow "192.168.0.5" "192.168.0.6"));
  check_decision "outside to outside blocked" false
    (eval env (flow "7.7.7.7" "8.8.8.8"))

let test_eval_port_match () =
  let env = env_of "block all\npass from any to any port 80" in
  check_decision "port 80 passes" true (eval env (flow ~dp:80 "1.1.1.1" "2.2.2.2"));
  check_decision "port 81 blocked" false
    (eval env (flow ~dp:81 "1.1.1.1" "2.2.2.2"))

let test_eval_service_name_port () =
  let env = env_of "block all\npass from any to any port https" in
  check_decision "443 passes" true (eval env (flow ~dp:443 "1.1.1.1" "2.2.2.2"))

let test_eval_with_eq_on_response () =
  let env = env_of "block all\npass all with eq(@src[name], skype)" in
  let f = flow "1.1.1.1" "2.2.2.2" in
  let skype = response f [ [ ("name", "skype") ] ] in
  let firefox = response f [ [ ("name", "firefox") ] ] in
  check_decision "skype passes" true (eval ~src:skype env f);
  check_decision "firefox blocked" false (eval ~src:firefox env f);
  check_decision "no response blocked" false (eval env f)

let test_eval_numeric_comparisons () =
  let env = env_of "block all\npass all with gte(@src[version], 200)" in
  let f = flow "1.1.1.1" "2.2.2.2" in
  let v210 = response f [ [ ("version", "210") ] ] in
  let v150 = response f [ [ ("version", "150") ] ] in
  let vjunk = response f [ [ ("version", "new") ] ] in
  check_decision "210 passes" true (eval ~src:v210 env f);
  check_decision "150 blocked" false (eval ~src:v150 env f);
  check_decision "non-numeric blocked" false (eval ~src:vjunk env f)

let test_eval_latest_section_wins () =
  let env = env_of "block all\npass all with eq(@src[name], skype)" in
  let f = flow "1.1.1.1" "2.2.2.2" in
  (* A later section (added by a downstream controller) overrides. *)
  let r = response f [ [ ("name", "skype") ]; [ ("name", "not-skype") ] ] in
  check_decision "latest section wins (blocked)" false (eval ~src:r env f)

let test_eval_star_concat () =
  let env = env_of "block all\npass all with eq(*@src[name], \"a,b\")" in
  let f = flow "1.1.1.1" "2.2.2.2" in
  let r = response f [ [ ("name", "a") ]; [ ("name", "b") ] ] in
  check_decision "star concatenates across sections" true (eval ~src:r env f)

let test_eval_member_macro () =
  let env =
    env_of "allowed = \"{ http ssh }\"\nblock all\npass all with member(@src[name], $allowed)"
  in
  let f = flow "1.1.1.1" "2.2.2.2" in
  check_decision "http member passes" true
    (eval ~src:(response f [ [ ("name", "http") ] ]) env f);
  check_decision "telnet blocked" false
    (eval ~src:(response f [ [ ("name", "telnet") ] ]) env f)

let test_eval_member_multivalue () =
  (* groupID can carry several groups; membership is set intersection. *)
  let env = env_of "block all\npass all with member(@src[groupID], research)" in
  let f = flow "1.1.1.1" "2.2.2.2" in
  check_decision "multi-group member passes" true
    (eval ~src:(response f [ [ ("groupID", "users,research") ] ]) env f);
  check_decision "non-member blocked" false
    (eval ~src:(response f [ [ ("groupID", "users,staff") ] ]) env f)

let test_eval_includes () =
  let env =
    env_of "block all\npass all with includes(@dst[os-patch], MS08-067)"
  in
  let f = flow "1.1.1.1" "2.2.2.2" in
  check_decision "patched passes" true
    (eval ~dst:(response f [ [ ("os-patch", "MS08-001,MS08-067") ] ]) env f);
  check_decision "unpatched blocked" false
    (eval ~dst:(response f [ [ ("os-patch", "MS08-001") ] ]) env f)

let test_eval_verify () =
  let kp = Idcrypto.Sign.generate "research" in
  let ks = Idcrypto.Sign.keystore () in
  Idcrypto.Sign.register ks kp;
  let requirements = "pass all with eq(@src[name], research-app)" in
  let signature = Idcrypto.Sign.sign ~secret:kp.secret [ requirements ] in
  let env =
    env_of
      (Printf.sprintf
         "dict <pubkeys> { research : %s }\n\
          block all\n\
          pass all with verify(@src[req-sig], @pubkeys[research], @src[requirements])"
         kp.public)
  in
  let f = flow "1.1.1.1" "2.2.2.2" in
  let good =
    response f [ [ ("requirements", requirements); ("req-sig", signature) ] ]
  in
  let tampered =
    response f [ [ ("requirements", "pass all"); ("req-sig", signature) ] ]
  in
  check_decision "valid signature passes" true (eval ~keystore:ks ~src:good env f);
  check_decision "tampered requirements blocked" false
    (eval ~keystore:ks ~src:tampered env f)

let test_eval_allowed () =
  let env = env_of "block all\npass all with allowed(@dst[requirements])" in
  let f = flow ~dp:80 "1.1.1.1" "2.2.2.2" in
  let reqs_match = "pass from any to any port 80" in
  let reqs_other = "pass from any to any port 443" in
  check_decision "flow allowed by receiver rules" true
    (eval ~dst:(response f [ [ ("requirements", reqs_match) ] ]) env f);
  check_decision "flow outside receiver rules blocked" false
    (eval ~dst:(response f [ [ ("requirements", reqs_other) ] ]) env f);
  check_decision "missing requirements blocked" false (eval env f)

let test_eval_allowed_fail_closed_inner () =
  (* allowed() defaults to Block inside: an empty or non-matching rule
     list admits nothing. *)
  let env = env_of "block all\npass all with allowed(@dst[requirements])" in
  let f = flow ~dp:22 "1.1.1.1" "2.2.2.2" in
  let reqs = "block from any to any port 23" in
  check_decision "inner default is block" false
    (eval ~dst:(response f [ [ ("requirements", reqs) ] ]) env f)

let test_eval_allowed_recursion_guard () =
  (* requirements that invoke allowed() on themselves must not loop. *)
  let env = env_of "block all\npass all with allowed(@dst[requirements])" in
  let f = flow "1.1.1.1" "2.2.2.2" in
  let reqs = "pass all with allowed(@dst[requirements])" in
  let ctx =
    Pf.Eval.ctx ~dst:(response f [ [ ("requirements", reqs) ] ]) ()
  in
  match Pf.Eval.eval env ctx f with
  | Error _ -> ()
  | Ok v ->
      (* Depth-limit errors surface as Error; reaching a verdict is fine
         only if it blocked. *)
      Alcotest.(check bool) "self-referential requirements do not pass" true
        (v.Pf.Eval.decision = Pf.Ast.Block)

let test_eval_unknown_function_errors () =
  let env = env_of "pass all with frobnicate(@src[name])" in
  let ctx = Pf.Eval.ctx () in
  match Pf.Eval.eval env ctx (flow "1.1.1.1" "2.2.2.2") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown function should error"

let test_eval_custom_function () =
  let fns = Pf.Fnreg.create () in
  Pf.Fnreg.register fns ~name:"starts-with" (fun args ->
      match args with
      | [ Some v; Some prefix ] ->
          String.length v >= String.length prefix
          && String.sub v 0 (String.length prefix) = prefix
      | _ -> false);
  let env = env_of "block all\npass all with starts-with(@src[name], fire)" in
  let ctx name =
    Pf.Eval.ctx ~functions:fns
      ~src:(response (flow "1.1.1.1" "2.2.2.2") [ [ ("name", name) ] ])
      ()
  in
  let f = flow "1.1.1.1" "2.2.2.2" in
  Alcotest.(check bool) "firefox passes" true
    ((Pf.Eval.eval_exn env (ctx "firefox") f).decision = Pf.Ast.Pass);
  Alcotest.(check bool) "chrome blocked" true
    ((Pf.Eval.eval_exn env (ctx "chrome") f).decision = Pf.Ast.Block)

let test_eval_cannot_shadow_builtin () =
  let fns = Pf.Fnreg.create () in
  Alcotest.check_raises "registering 'eq' raises"
    (Invalid_argument "Fnreg.register: cannot shadow built-in eq") (fun () ->
      Pf.Fnreg.register fns ~name:"eq" (fun _ -> true))

(* --- Figure 2: the skype policy end-to-end over the evaluator --- *)

let fig2_config =
  (* 00-local-header.control + 50-skype.control + 99-local-footer.control,
     concatenated the way the controller reads them (§3.4). *)
  "table <server> { 192.168.1.1 }\n\
   table <lan> { 192.168.0.0/24 }\n\
   table <int_hosts> { <lan> <server> }\n\
   allowed = \"{ http ssh }\"\n\
   block all\n\
   pass from <int_hosts> to !<int_hosts> keep state\n\
   pass from <int_hosts> to <int_hosts> with member(@src[name], $allowed) keep state\n\
   pass all with eq(@src[name], skype) with eq(@dst[name], skype)\n\
   pass from any to <skype_update> port 80 with eq(@src[name], skype) keep state\n\
   table <skype_update> { 123.123.123.0/24 }\n\
   block all with eq(@src[name], skype) with lt(@src[version], 200)\n\
   block from any to <server> with eq(@src[name], skype)"

let fig2_env () = env_of fig2_config

let test_parse_intercepts () =
  let src =
    "table <assets> { 10.9.0.0/16 }\n\
     intercept query to <assets> answer { asset-class : kiosk }\n\
     intercept response to !10.0.0.0/8 augment { branch : B accepts : \"{ firefox }\" }\n\
     block all"
  in
  let env = env_of src in
  match Pf.Env.intercepts env with
  | [ q; r ] ->
      Alcotest.(check bool) "query kind" true (q.Pf.Ast.ikind = Pf.Ast.Answer_query);
      Alcotest.(check bool) "response kind" true
        (r.Pf.Ast.ikind = Pf.Ast.Augment_response);
      Alcotest.(check (list (pair string string))) "query pairs"
        [ ("asset-class", "kiosk") ] q.Pf.Ast.pairs;
      Alcotest.(check bool) "matches asset host" true
        (Pf.Env.addr_spec_matches env q.Pf.Ast.target (ip "10.9.1.1"));
      Alcotest.(check bool) "misses other host" false
        (Pf.Env.addr_spec_matches env q.Pf.Ast.target (ip "10.8.1.1"));
      Alcotest.(check bool) "negated prefix" true
        (Pf.Env.addr_spec_matches env r.Pf.Ast.target (ip "192.168.1.1"))
  | _ -> Alcotest.fail "expected two intercepts"

let test_intercept_pretty_roundtrip () =
  let src =
    "intercept query to any answer { a : b }\nintercept response to 10.0.0.0/8 augment { c : d }"
  in
  let printed = Pf.Pretty.ruleset (Pf.Parser.parse_exn src) in
  Alcotest.(check string) "fixpoint" printed
    (Pf.Pretty.ruleset (Pf.Parser.parse_exn printed))

let test_intercept_rejects_bad_syntax () =
  List.iter
    (fun src ->
      match Pf.Parser.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" src)
    [
      "intercept query to any augment { a : b }";
      "intercept response to any answer { a : b }";
      "intercept frobs to any answer { a : b }";
      "intercept query any answer { a : b }";
    ]

let test_intercept_unknown_table_rejected () =
  match Pf.Env.of_string "intercept query to <ghost> answer { a : b }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown table in intercept accepted"

let test_trace_records_matches () =
  let env = env_of "block all\npass from 10.0.0.1 to any\nblock from any to any port 23" in
  let ctx = Pf.Eval.ctx () in
  match Pf.Eval.trace env ctx (flow ~dp:80 "10.0.0.1" "2.2.2.2") with
  | Error e -> Alcotest.fail e
  | Ok (steps, verdict) ->
      Alcotest.(check int) "all rules traced" 3 (List.length steps);
      Alcotest.(check (list bool)) "match pattern" [ true; true; false ]
        (List.map (fun (s : Pf.Eval.trace_step) -> s.Pf.Eval.matched) steps);
      Alcotest.(check (list bool)) "only final match decided"
        [ false; true; false ]
        (List.map (fun (s : Pf.Eval.trace_step) -> s.Pf.Eval.decided) steps);
      Alcotest.(check bool) "verdict pass" true
        (verdict.Pf.Eval.decision = Pf.Ast.Pass)

let test_trace_quick_truncates () =
  let env = env_of "block quick from any to any port 23\npass all" in
  let ctx = Pf.Eval.ctx () in
  match Pf.Eval.trace env ctx (flow ~dp:23 "1.1.1.1" "2.2.2.2") with
  | Error e -> Alcotest.fail e
  | Ok (steps, verdict) ->
      Alcotest.(check int) "trace stops at quick" 1 (List.length steps);
      Alcotest.(check bool) "blocked" true
        (verdict.Pf.Eval.decision = Pf.Ast.Block)

(* --- lint --- *)

let lint_of src =
  List.map
    (fun (f : Pf.Lint.finding) -> f.Pf.Lint.code)
    (Pf.Lint.check (Pf.Parser.parse_exn src))

let test_lint_dead_after_quick_all () =
  Alcotest.(check (list string)) "two dead rules"
    [ "dead-after-quick-all"; "dead-after-quick-all" ]
    (lint_of "block quick all\npass from any to any port 80\nblock all")

let test_lint_duplicates () =
  Alcotest.(check (list string)) "duplicate reported" [ "duplicate-rule" ]
    (lint_of "pass from any to any port 80\nblock all\npass from any to any port 80")

let test_lint_duplicate_quick () =
  (* identical quick rules: the earlier always fires first, so the
     LATER copy is the redundant one *)
  match
    Pf.Lint.check
      (Pf.Parser.parse_exn
         "pass quick from any to any port 80\nblock all\npass quick from any to any port 80")
  with
  | [ f ] ->
      Alcotest.(check string) "code" "duplicate-rule" f.Pf.Lint.code;
      Alcotest.(check int) "later copy flagged" 3 f.Pf.Lint.line
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_lint_unknown_function () =
  Alcotest.(check (list string)) "unknown function" [ "unknown-function" ]
    (lint_of "pass all with frobnicate(@src[x])")

let test_lint_clean_policy () =
  Alcotest.(check (list string)) "figure 2 is clean" [] (lint_of fig2_config)


let named_flow ?(sp = 40000) ?(dp = 80) src dst name version =
  let f = flow ~sp ~dp src dst in
  (f, response f [ [ ("name", name); ("version", version) ] ])

let test_fig2_skype_to_skype () =
  let env = fig2_env () in
  let f = flow ~dp:33000 "192.168.0.10" "10.20.30.40" in
  let src = response f [ [ ("name", "skype"); ("version", "210") ] ] in
  let dst = response f [ [ ("name", "skype"); ("version", "210") ] ] in
  check_decision "skype to skype allowed" true (eval ~src ~dst env f)

let test_fig2_old_skype_blocked () =
  let env = fig2_env () in
  let f = flow ~dp:33000 "192.168.0.10" "10.20.30.40" in
  let src = response f [ [ ("name", "skype"); ("version", "150") ] ] in
  let dst = response f [ [ ("name", "skype"); ("version", "210") ] ] in
  check_decision "old skype blocked by 99-footer" false (eval ~src ~dst env f)

let test_fig2_skype_to_server_blocked () =
  let env = fig2_env () in
  let f, src = named_flow "192.168.0.10" "192.168.1.1" "skype" "210" in
  check_decision "skype to server blocked" false (eval ~src env f)

let test_fig2_skype_update () =
  let env = fig2_env () in
  let f, src = named_flow ~dp:80 "192.168.0.10" "123.123.123.5" "skype" "210" in
  check_decision "skype update over port 80 allowed" true (eval ~src env f)

let test_fig2_approved_app_internal () =
  let env = fig2_env () in
  let f, src = named_flow ~dp:80 "192.168.0.10" "192.168.1.1" "http" "1" in
  check_decision "approved app lan to server allowed" true (eval ~src env f)

let test_fig2_unapproved_app_internal () =
  let env = fig2_env () in
  let f, src = named_flow ~dp:23 "192.168.0.10" "192.168.1.1" "telnet" "1" in
  check_decision "unapproved app internal blocked" false (eval ~src env f)

let test_fig2_outbound_allowed () =
  let env = fig2_env () in
  let f, src = named_flow ~dp:443 "192.168.0.10" "8.8.8.8" "firefox" "1" in
  check_decision "outbound from int_hosts allowed" true (eval ~src env f)

let test_fig2_inbound_blocked () =
  let env = fig2_env () in
  let f, src = named_flow ~dp:80 "8.8.8.8" "192.168.0.10" "curl" "1" in
  check_decision "inbound from internet blocked" false (eval ~src env f)

(* --- property tests --- *)

let gen_ip =
  QCheck.Gen.map
    (fun n -> Ipv4.of_int n)
    (QCheck.Gen.int_bound 0xffff_ffff)

let gen_flow =
  QCheck.Gen.map3
    (fun src dst (sp, dp) ->
      Five_tuple.make ~src ~dst ~proto:Proto.Tcp ~src_port:sp ~dst_port:dp)
    gen_ip gen_ip
    (QCheck.Gen.pair (QCheck.Gen.int_bound 0xffff) (QCheck.Gen.int_bound 0xffff))

let arb_flow = QCheck.make gen_flow ~print:Five_tuple.to_string

let prop_block_all_blocks_everything =
  QCheck.Test.make ~name:"block all blocks every flow" ~count:200 arb_flow
    (fun f ->
      let env = env_of "block all" in
      not (eval env f))

let prop_pass_all_passes_everything =
  QCheck.Test.make ~name:"pass all passes every flow" ~count:200 arb_flow
    (fun f ->
      let env = env_of "pass all" in
      eval env f)

let prop_quick_equals_reorder =
  (* For a ruleset where exactly one rule can match any given flow,
     quick and non-quick agree. *)
  QCheck.Test.make ~name:"quick agrees when matches are unique" ~count:200
    arb_flow (fun f ->
      let env1 = env_of "block quick from any to any port 22\npass all with eq(1, 1)" in
      let env2 = env_of "pass from any to any port 443\nblock from any to any port 22" in
      let _ = env2 in
      let blocked = not (eval env1 f) in
      if (Five_tuple.to_string f).[0] = 'x' then false
      else blocked = (f.Five_tuple.dst_port = 22))

let prop_negation_is_complement =
  QCheck.Test.make ~name:"from <t> and from !<t> partition flows" ~count:200
    arb_flow (fun f ->
      let env_pos = env_of "table <t> {10.0.0.0/8}\nblock all\npass from <t> to any" in
      let env_neg = env_of "table <t> {10.0.0.0/8}\nblock all\npass from !<t> to any" in
      eval env_pos f <> eval env_neg f)

(* Random-AST pretty/parse fixpoint: generate arbitrary rules, print
   them, re-parse, and require the printed forms to agree. *)

let gen_word =
  QCheck.Gen.(
    map2
      (fun c rest -> String.make 1 c ^ rest)
      (char_range 'a' 'z')
      (string_size ~gen:(char_range 'a' 'z') (int_bound 6)))

let gen_arg =
  QCheck.Gen.(
    let* kind = int_bound 3 in
    match kind with
    | 0 ->
        let* key = gen_word in
        let* star = bool in
        let* side = oneofl [ "src"; "dst" ] in
        return (Pf.Ast.Dict_access { star; dict = side; key })
    | 1 -> map (fun w -> Pf.Ast.Macro_ref w) (return "m")
    | 2 -> map (fun w -> Pf.Ast.Lit w) gen_word
    | _ -> map (fun n -> Pf.Ast.Lit (string_of_int n)) (int_bound 999))

let gen_funcall =
  QCheck.Gen.(
    let* fname = oneofl [ "eq"; "gt"; "lt"; "gte"; "lte"; "member"; "includes" ] in
    let* a = gen_arg in
    let* b = gen_arg in
    return { Pf.Ast.fname; args = [ a; b ] })

let gen_addr_spec =
  QCheck.Gen.(
    let* negated = bool in
    let* kind = int_bound 2 in
    match kind with
    | 0 -> return { Pf.Ast.negated; addr = Pf.Ast.Addr_any }
    | 1 -> return { Pf.Ast.negated; addr = Pf.Ast.Addr_table "t" }
    | _ ->
        let* a = int_bound 255 in
        let* len = int_range 8 32 in
        return
          {
            Pf.Ast.negated;
            addr =
              Pf.Ast.Addr_prefix
                (Prefix.make (Ipv4.of_octets 10 a 0 0) len);
          })

let gen_port_match =
  QCheck.Gen.(
    let* lo = int_range 1 60000 in
    let* span = int_bound 5000 in
    let* range = bool in
    return
      (if range then Pf.Ast.Port_range (lo, lo + span) else Pf.Ast.Port_eq lo))

let gen_endpoint =
  QCheck.Gen.(
    let* addr = option gen_addr_spec in
    let* port = option gen_port_match in
    return { Pf.Ast.addr; port })

let gen_rule =
  QCheck.Gen.(
    let* action = oneofl [ Pf.Ast.Pass; Pf.Ast.Block ] in
    let* quick = bool in
    let* log = bool in
    let* proto = option (oneofl [ Proto.Tcp; Proto.Udp; Proto.Icmp ]) in
    let* from_ = gen_endpoint in
    let* to_ = gen_endpoint in
    let* conds = list_size (int_bound 3) gen_funcall in
    let* keep_state = bool in
    let rule =
      { Pf.Ast.action; quick; log; proto; from_; to_; conds; keep_state; line = 0 }
    in
    (* Rules with no criteria at all are printed as "all" anyway; keep
       them, the printer handles it. *)
    return rule)

let gen_ruleset =
  QCheck.Gen.(
    let* rules = list_size (int_range 1 8) gen_rule in
    return
      (Pf.Ast.Table_def ("t", [ Pf.Ast.Item_prefix (Prefix.of_string "10.0.0.0/8") ])
      :: Pf.Ast.Macro_def ("m", "42")
      :: List.map (fun r -> Pf.Ast.Rule_decl r) rules))

let prop_random_ast_pretty_parse_fixpoint =
  QCheck.Test.make ~name:"random AST: pretty o parse is identity on printed form"
    ~count:300
    (QCheck.make gen_ruleset ~print:Pf.Pretty.ruleset)
    (fun decls ->
      let printed = Pf.Pretty.ruleset decls in
      match Pf.Parser.parse printed with
      | Error _ -> false
      | Ok reparsed -> Pf.Pretty.ruleset reparsed = printed)

let prop_random_ast_decisions_preserved =
  QCheck.Test.make ~name:"random AST: decisions survive pretty/parse" ~count:200
    (QCheck.make
       QCheck.Gen.(pair gen_ruleset gen_flow)
       ~print:(fun (d, f) -> Pf.Pretty.ruleset d ^ " | " ^ Five_tuple.to_string f))
    (fun (decls, f) ->
      match (Pf.Env.build decls, Pf.Env.of_string (Pf.Pretty.ruleset decls)) with
      | Ok env1, Ok env2 ->
          let ctx =
            Pf.Eval.ctx
              ~src:(response f [ [ ("name", "skype"); ("ver", "7") ] ])
              ()
          in
          let d1 = Pf.Eval.eval env1 ctx f in
          let d2 = Pf.Eval.eval env2 ctx f in
          (match (d1, d2) with
          | Ok v1, Ok v2 -> v1.Pf.Eval.decision = v2.Pf.Eval.decision
          | Error _, Error _ -> true
          | _ -> false)
      | Error _, Error _ -> true
      | _ -> false)

let prop_roundtrip_pretty_parse =
  (* Render the figure-2 config and re-parse: decisions agree on random flows. *)
  QCheck.Test.make ~name:"pretty/parse preserves decisions" ~count:100 arb_flow
    (fun f ->
      let env1 = fig2_env () in
      let printed = Pf.Pretty.ruleset (Pf.Parser.parse_exn fig2_config) in
      let env2 = env_of printed in
      eval env1 f = eval env2 f)

let prop_precompile_sound =
  (* Soundness of proactive compilation: any flow matched by a compiled
     drop entry must be blocked by full PF+=2 evaluation. *)
  let gen_policy =
    QCheck.Gen.(
      let* rules =
        list_size (int_range 1 4)
          (let* a = int_range 0 3 in
           let* len = oneofl [ 24; 32 ] in
           let* dp = int_range 80 85 in
           let* use_range = bool in
           return
             (Printf.sprintf "block quick from 10.0.%d.0/%d to any port %s" a
                len
                (if use_range then Printf.sprintf "%d:%d" dp (dp + 2)
                 else string_of_int dp)))
      in
      return (String.concat "\n" (rules @ [ "pass all" ])))
  in
  QCheck.Test.make ~name:"precompiled drops imply evaluator blocks" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_policy gen_flow)
       ~print:(fun (p, f) -> p ^ " | " ^ Five_tuple.to_string f))
    (fun (policy, f) ->
      match Pf.Env.of_string policy with
      | Error _ -> false
      | Ok env ->
          let matches = Identxx_core.Precompile.drop_matches env in
          let pkt = Packet.of_five_tuple f in
          let hit =
            List.exists
              (fun m -> Openflow.Match_fields.matches m ~in_port:0 pkt)
              matches
          in
          (not hit)
          ||
          let v = Pf.Eval.eval_exn env (Pf.Eval.ctx ()) f in
          v.Pf.Eval.decision = Pf.Ast.Block)

let prop_config_render_roundtrip =
  let gen_cfg =
    QCheck.Gen.(
      let word =
        map2
          (fun c rest -> String.make 1 c ^ rest)
          (char_range 'a' 'z')
          (string_size ~gen:(char_range 'a' 'z') (int_bound 6))
      in
      let* globals = list_size (int_bound 3) (pair word word) in
      let* apps =
        list_size (int_bound 2)
          (let* path = word in
           let* pairs = list_size (int_range 1 4) (pair word word) in
           return ("/usr/bin/" ^ path, pairs))
      in
      let buf = Buffer.create 128 in
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s : %s\n" k v))
        globals;
      List.iter
        (fun (path, pairs) ->
          Buffer.add_string buf (Printf.sprintf "@app %s {\n" path);
          List.iter
            (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s : %s\n" k v))
            pairs;
          Buffer.add_string buf "}\n")
        apps;
      return (Buffer.contents buf))
  in
  QCheck.Test.make ~name:"daemon config render/parse roundtrip" ~count:300
    (QCheck.make gen_cfg ~print:Fun.id)
    (fun src ->
      match Identxx.Config.parse src with
      | Error _ -> false
      | Ok cfg -> (
          match Identxx.Config.parse (Identxx.Config.render cfg) with
          | Ok cfg' -> cfg = cfg'
          | Error _ -> false))

let prop_parser_total =
  (* The parser must be total: random byte soup yields Ok or Error,
     never an exception. *)
  QCheck.Test.make ~name:"parser never raises on arbitrary input" ~count:1000
    QCheck.(string_gen QCheck.Gen.printable)
    (fun s ->
      match Pf.Parser.parse s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let prop_config_parser_total =
  QCheck.Test.make ~name:"daemon config parser never raises" ~count:1000
    QCheck.(string_gen QCheck.Gen.printable)
    (fun s ->
      match Identxx.Config.parse s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let prop_wire_decoders_total =
  QCheck.Test.make ~name:"wire decoders never raise" ~count:1000
    QCheck.string
    (fun s ->
      (match Identxx.Query.decode s with
       | Ok _ | Error _ -> true
       | exception _ -> false)
      && (match Identxx.Response.decode s with
          | Ok _ | Error _ -> true
          | exception _ -> false)
      &&
      match Netcore.Packet.decode s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "pf"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "star-at" `Quick test_lexer_star_at;
          Alcotest.test_case "continuation" `Quick test_lexer_continuation;
          Alcotest.test_case "unterminated string" `Quick
            test_lexer_unterminated_string;
        ] );
      ( "parser",
        [
          Alcotest.test_case "block all" `Quick test_parse_block_all;
          Alcotest.test_case "table" `Quick test_parse_table;
          Alcotest.test_case "nested table" `Quick test_parse_nested_table;
          Alcotest.test_case "paper mail rule" `Quick test_parse_paper_mail_rule;
          Alcotest.test_case "two rules one line" `Quick
            test_parse_multiple_rules_one_line;
          Alcotest.test_case "dict" `Quick test_parse_dict;
          Alcotest.test_case "macro" `Quick test_parse_macro;
          Alcotest.test_case "quick keyword" `Quick test_parse_quick;
          Alcotest.test_case "keep state" `Quick test_parse_keep_state;
          Alcotest.test_case "rejects bare pass" `Quick
            test_parse_rejects_empty_rule;
          Alcotest.test_case "rejects bad address" `Quick
            test_parse_rejects_bad_addr;
          Alcotest.test_case "pretty roundtrip" `Quick test_roundtrip_figures;
          Alcotest.test_case "inline address list" `Quick
            test_parse_inline_address_list;
          Alcotest.test_case "proto clause" `Quick test_parse_proto_clause;
          Alcotest.test_case "port range" `Quick test_parse_port_range;
          Alcotest.test_case "rejects empty range" `Quick
            test_parse_rejects_empty_range;
          Alcotest.test_case "rejects out-of-range port" `Quick
            test_parse_rejects_out_of_range_port;
          Alcotest.test_case "log modifier" `Quick test_parse_log_modifier;
        ] );
      ( "env",
        [
          Alcotest.test_case "nested tables" `Quick test_env_nested_tables;
          Alcotest.test_case "cycle detection" `Quick test_env_cycle_detected;
          Alcotest.test_case "unknown table in rule" `Quick
            test_env_unknown_table_in_rule;
          Alcotest.test_case "macro shadowing" `Quick test_env_shadowing;
          Alcotest.test_case "referenced keys" `Quick test_env_referenced_keys;
        ] );
      ( "eval",
        [
          Alcotest.test_case "default pass" `Quick test_eval_default_pass;
          Alcotest.test_case "last match wins" `Quick test_eval_last_match_wins;
          Alcotest.test_case "quick short-circuits" `Quick
            test_eval_quick_short_circuits;
          Alcotest.test_case "negation" `Quick test_eval_negation;
          Alcotest.test_case "port match" `Quick test_eval_port_match;
          Alcotest.test_case "service names" `Quick test_eval_service_name_port;
          Alcotest.test_case "eq on response" `Quick test_eval_with_eq_on_response;
          Alcotest.test_case "numeric comparisons" `Quick
            test_eval_numeric_comparisons;
          Alcotest.test_case "latest section wins" `Quick
            test_eval_latest_section_wins;
          Alcotest.test_case "star concatenation" `Quick test_eval_star_concat;
          Alcotest.test_case "member with macro" `Quick test_eval_member_macro;
          Alcotest.test_case "member multivalue" `Quick
            test_eval_member_multivalue;
          Alcotest.test_case "includes" `Quick test_eval_includes;
          Alcotest.test_case "verify" `Quick test_eval_verify;
          Alcotest.test_case "allowed" `Quick test_eval_allowed;
          Alcotest.test_case "allowed fail-closed" `Quick
            test_eval_allowed_fail_closed_inner;
          Alcotest.test_case "allowed recursion guard" `Quick
            test_eval_allowed_recursion_guard;
          Alcotest.test_case "unknown function errors" `Quick
            test_eval_unknown_function_errors;
          Alcotest.test_case "custom function" `Quick test_eval_custom_function;
          Alcotest.test_case "cannot shadow builtin" `Quick
            test_eval_cannot_shadow_builtin;
          Alcotest.test_case "inline address list" `Quick
            test_eval_inline_address_list;
          Alcotest.test_case "proto clause" `Quick test_eval_proto_clause;
          Alcotest.test_case "port range" `Quick test_eval_port_range;
          Alcotest.test_case "log in verdict" `Quick test_eval_log_in_verdict;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "skype to skype" `Quick test_fig2_skype_to_skype;
          Alcotest.test_case "old skype blocked" `Quick
            test_fig2_old_skype_blocked;
          Alcotest.test_case "skype to server blocked" `Quick
            test_fig2_skype_to_server_blocked;
          Alcotest.test_case "skype update" `Quick test_fig2_skype_update;
          Alcotest.test_case "approved app internal" `Quick
            test_fig2_approved_app_internal;
          Alcotest.test_case "unapproved app internal" `Quick
            test_fig2_unapproved_app_internal;
          Alcotest.test_case "outbound allowed" `Quick test_fig2_outbound_allowed;
          Alcotest.test_case "inbound blocked" `Quick test_fig2_inbound_blocked;
        ] );
      ( "intercepts",
        [
          Alcotest.test_case "parse and match" `Quick test_parse_intercepts;
          Alcotest.test_case "pretty roundtrip" `Quick
            test_intercept_pretty_roundtrip;
          Alcotest.test_case "rejects bad syntax" `Quick
            test_intercept_rejects_bad_syntax;
          Alcotest.test_case "unknown table" `Quick
            test_intercept_unknown_table_rejected;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records matches" `Quick test_trace_records_matches;
          Alcotest.test_case "quick truncates" `Quick test_trace_quick_truncates;
        ] );
      ( "lint",
        [
          Alcotest.test_case "dead after quick all" `Quick
            test_lint_dead_after_quick_all;
          Alcotest.test_case "duplicates" `Quick test_lint_duplicates;
          Alcotest.test_case "duplicate quick" `Quick test_lint_duplicate_quick;
          Alcotest.test_case "unknown function" `Quick test_lint_unknown_function;
          Alcotest.test_case "figure 2 clean" `Quick test_lint_clean_policy;
        ] );
      ( "properties",
        qc
          [
            prop_block_all_blocks_everything;
            prop_pass_all_passes_everything;
            prop_quick_equals_reorder;
            prop_negation_is_complement;
            prop_roundtrip_pretty_parse;
            prop_random_ast_pretty_parse_fixpoint;
            prop_random_ast_decisions_preserved;
            prop_parser_total;
            prop_config_parser_total;
            prop_wire_decoders_total;
            prop_precompile_sound;
            prop_config_render_roundtrip;
          ] );
    ]

The windowed health engine and the flight recorder: `netsim --health S`
closes a metrics window every S simulated seconds and evaluates the
health rules on each close; `--flight-out` dumps the always-on bounded
event recorder as JSONL, with the last-fired rule as the dump reason.
Everything runs on the simulated clock, so the dumps are byte-stable.

The rule registry, as `identxx_ctl health --rules` prints it (doclint
checks this set against the doc/OBSERVABILITY.md table):

  $ identxx_ctl health --rules
  packet_in_surge: threshold(value > 500) on identxx_controller_packet_ins_total by src
      packet-in rate from one source host exceeds 500/s
  deny_latency_skew: quantile-skew(p95 > 4x p50, min 8 obs) on identxx_controller_flow_setup_seconds
      flow-setup p95 exceeds 4x p50 (warm/cold gap a prober could measure)
  breaker_flap: burn-rate(sum over 5 windows > 0.5) on identxx_fastpath_breaker_trips_total
      circuit-breaker trips observed across the last 5 windows
  shard_queue_imbalance: imbalance(max > 4x min, min 8) on identxx_shard_queue_depth by shard
      hottest shard queue exceeds 4x the coolest (and at least 8 deep)
  table_eviction_pressure: burn-rate(sum over 3 windows > 16) on identxx_switch_evictions_total by dpid
      flow-table evictions on one switch exceed 16 over 3 windows
  daemon_query_surge: threshold(value > 2000) on identxx_daemon_queries_total by host
      ident++ queries to one host exceed 2000/s

Shard-count invariance: health evaluation groups away the `shard` and
`controller` labels and recorder events carry no shard attribution, so
the same burst workload yields byte-identical health output and
byte-identical flight dumps across --shards 1/2/8.

  $ identxx-netsim burst --fastpath --shards 1 --health 0.0025 --flight-out dump.jsonl > out1.txt
  $ cp dump.jsonl dump1.jsonl
  $ identxx-netsim burst --fastpath --shards 2 --health 0.0025 --flight-out dump.jsonl > out2.txt
  $ cp dump.jsonl dump2.jsonl
  $ identxx-netsim burst --fastpath --shards 8 --health 0.0025 --flight-out dump.jsonl > out8.txt
  $ cp dump.jsonl dump8.jsonl
  $ cmp dump1.jsonl dump2.jsonl && cmp dump2.jsonl dump8.jsonl && echo dumps-identical
  dumps-identical
  $ sed -n '/=== health ===/,$p' out1.txt > h1.txt
  $ sed -n '/=== health ===/,$p' out2.txt > h2.txt
  $ sed -n '/=== health ===/,$p' out8.txt > h8.txt
  $ cmp h1.txt h2.txt && cmp h2.txt h8.txt && cat h1.txt
  === health ===
  windows closed: 64
  events fired: 0
  wrote 91 flight-recorder events to dump.jsonl

A second run of the same scenario reproduces the dump byte for byte:

  $ identxx-netsim burst --fastpath --shards 2 --health 0.0025 --flight-out dump.jsonl > /dev/null
  $ cmp dump.jsonl dump2.jsonl && echo rerun-identical
  rerun-identical

The healthy burst fires nothing; the dump header says so:

  $ head -1 dump1.jsonl
  {"kind":"flight-recorder","reason":"end-of-run","at":0.16,"events":91,"dropped":0}

A post-mortem: silence the burst's target host, so every query to it
times out and the circuit breaker trips. The daemon_query_surge and
breaker_flap rules fire, and the dump's reason names the last one.

  $ identxx-netsim burst --fastpath --silence h1-1 --health 0.0025 --flight-out breaker.jsonl > outb.txt
  $ sed -n '/=== health ===/,$p' outb.txt
  === health ===
  windows closed: 64
  events fired: 2
    [w1 @0.0025s] daemon_query_surge{host=h1-1} value=6000 threshold=2000
    [w3 @0.0075s] breaker_flap value=1 threshold=0.5
  wrote 108 flight-recorder events to breaker.jsonl
  $ head -1 breaker.jsonl
  {"kind":"flight-recorder","reason":"breaker_flap","at":0.16,"events":108,"dropped":0}

`identxx_ctl health` renders the dump as a timeline, naming the
triggering rule:

  $ identxx_ctl health breaker.jsonl > timeline.txt
  $ head -3 timeline.txt
  flight recorder: 108 events (0 dropped) dumped @160000us
  trigger (health rule): breaker_flap
  by kind: breaker=1 decision=15 health=2 install=15 packet-in=15 query-sent=30 query-settled=30
  $ grep -E 'breaker|health' timeline.txt
  trigger (health rule): breaker_flap
  by kind: breaker=1 decision=15 health=2 install=15 packet-in=15 query-sent=30 query-settled=30
    @2500us health rule=daemon_query_surge value=6000 host=h1-1
    @5060us breaker host=10.0.1.1 state=open
    @7500us health rule=breaker_flap value=1

Silencing an unknown host is an error:

  $ identxx-netsim burst --silence nosuch
  netsim: --silence: no host named nosuch
  [1]

Generated fabrics (doc/TOPOLOGY.md): the fabric scenario builds the
spec'd topology, prints its deterministic shape and a sample
precomputed route, and pushes one flow across the whole fabric.

  $ identxx-netsim fabric --topo fat-tree:k=4
  fat-tree:k=4: 20 switches (4 core, 8 aggregation, 8 edge), 16 hosts, 48 links
  route h0-0-0 -> h3-1-1: s13 -> s5 -> s1 -> s11 -> s20
  fabric: one cross-fabric flow over fat-tree:k=4
  
  === trace ===
        0s  h0-0-0       tx [00:00:00:00:0d:01 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:50000 -> 10.3.1.3:80]
      10us  s13          packet-in -> controller [00:00:00:00:0d:01 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:50000 -> 10.3.1.3:80]
      60us  controller   -> s13 packet-out port=1 [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.3.1.3:49152 -> 10.0.0.2:783]
      60us  controller   -> s20 packet-out port=2 [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:49152 -> 10.3.1.3:783]
     120us  h0-0-0       rx [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.3.1.3:49152 -> 10.0.0.2:783]
     120us  h0-0-0       tx [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:783 -> 10.3.1.3:49152]
     120us  h3-1-1       rx [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:49152 -> 10.3.1.3:783]
     120us  h3-1-1       tx [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.3.1.3:783 -> 10.0.0.2:49152]
     130us  s13          packet-in -> controller [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:783 -> 10.3.1.3:49152]
     130us  s20          packet-in -> controller [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.3.1.3:783 -> 10.0.0.2:49152]
     180us  controller   -> s13 flow-mod add prio=32768 {dl_type=ipv4 nw_src=10.0.0.2/32 nw_dst=10.3.1.3/32 nw_proto=tcp tp_src=50000 tp_dst=80} -> output:3
     180us  controller   -> s5 flow-mod add prio=32768 {dl_type=ipv4 nw_src=10.0.0.2/32 nw_dst=10.3.1.3/32 nw_proto=tcp tp_src=50000 tp_dst=80} -> output:3
     180us  controller   -> s1 flow-mod add prio=32768 {dl_type=ipv4 nw_src=10.0.0.2/32 nw_dst=10.3.1.3/32 nw_proto=tcp tp_src=50000 tp_dst=80} -> output:4
     180us  controller   -> s11 flow-mod add prio=32768 {dl_type=ipv4 nw_src=10.0.0.2/32 nw_dst=10.3.1.3/32 nw_proto=tcp tp_src=50000 tp_dst=80} -> output:2
     180us  controller   -> s20 flow-mod add prio=32768 {dl_type=ipv4 nw_src=10.0.0.2/32 nw_dst=10.3.1.3/32 nw_proto=tcp tp_src=50000 tp_dst=80} -> output:2
     180us  controller   -> s13 packet-out port=table [00:00:00:00:0d:01 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:50000 -> 10.3.1.3:80]
     280us  h3-1-1       rx [00:00:00:00:0d:01 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:50000 -> 10.3.1.3:80]
  
  === summary ===
  packets delivered to hosts: 3
  packets dropped:            0
  packet-ins:                 3
  controller: flows=1 allowed=1 blocked=0 queries=2 responses=2
  controller: query timeouts=0 retries sent=0

The default spec is fat-tree:k=4, so the shape line matches:

  $ identxx-netsim fabric | head -2
  fat-tree:k=4: 20 switches (4 core, 8 aggregation, 8 edge), 16 hosts, 48 links
  route h0-0-0 -> h3-1-1: s13 -> s5 -> s1 -> s11 -> s20

A leaf-spine fabric routes leaf -> spine -> leaf:

  $ identxx-netsim fabric --topo leaf-spine:spines=2,leaves=3,hosts=2 | head -3
  leaf-spine:spines=2,leaves=3,hosts=2: 5 switches (2 spine, 3 leaf), 6 hosts, 12 links
  route h0-0 -> h2-1: s3 -> s1 -> s5
  fabric: one cross-fabric flow over leaf-spine:spines=2,leaves=3,hosts=2

Invalid specs fail fast with the generator's message:

  $ identxx-netsim fabric --topo fat-tree:k=5
  netsim: --topo: fat-tree: k must be an even integer in [2, 32] (got 5)
  [1]
  $ identxx-netsim fabric --topo fat-tree:k=40
  netsim: --topo: fat-tree: k must be an even integer in [2, 32] (got 40)
  [1]
  $ identxx-netsim fabric --topo fat-tree:pods=4
  netsim: --topo: fat-tree: unknown parameter "pods" (expected k=<even int>)
  [1]
  $ identxx-netsim fabric --topo mesh:n=3
  netsim: --topo: unknown topology "mesh" (expected fat-tree:k=N or leaf-spine:spines=N,leaves=N,hosts=N)
  [1]
  $ identxx-netsim fabric --topo leaf-spine:spines=0
  netsim: --topo: leaf-spine: spines must be in [1, 64] (got 0)
  [1]
  $ identxx-netsim fabric --topo leaf-spine:spines=two
  netsim: --topo: leaf-spine: spines must be an integer (got "two", expected spines=<int>)
  [1]
  $ identxx-netsim fig1 --topo fat-tree:k=4
  netsim: --topo applies to the fabric and burst scenarios
  [1]

(* The sharded flow-setup engine: the lib/shard building blocks in
   isolation (run-queue engine, connection table, install batcher) and
   the controller integration — above all the determinism oracle: with
   zero service time, the same seed scenario must produce a
   byte-identical audit trail and identical aggregated counters under
   any shard count. *)

open Netcore
module Net = Openflow.Network
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module Policy_store = Identxx_core.Policy_store
module Audit = Identxx_core.Audit

let check = Alcotest.check
let ip = Ipv4.of_string

(* --- Shard.Engine unit tests --- *)

let test_engine_post_order () =
  let e = Sim.Engine.create () in
  let d = Shard.Engine.create ~shards:3 e in
  let order = ref [] in
  List.iter
    (fun (s, tag) ->
      Shard.Engine.post d ~shard:s (fun () -> order := tag :: !order))
    [ (2, "a"); (0, "b"); (2, "c"); (1, "d") ];
  check Alcotest.int "posted" 4 (Shard.Engine.posted d);
  Sim.Engine.run e;
  (* service = 0: execution order is global post order, independent of
     which shard each message landed on. *)
  check
    Alcotest.(list string)
    "global post order" [ "a"; "b"; "c"; "d" ] (List.rev !order);
  check Alcotest.int "processed" 4 (Shard.Engine.processed d);
  check Alcotest.int "queues drained" 0 (Shard.Engine.queue_depth d 2)

let test_engine_makespan () =
  let ms = Sim.Time.ms in
  (* One shard: four 1 ms messages serialise to 4 ms. *)
  let e1 = Sim.Engine.create () in
  let d1 = Shard.Engine.create ~service:(ms 1) ~shards:1 e1 in
  for _ = 1 to 4 do
    Shard.Engine.post d1 ~shard:0 ignore
  done;
  Sim.Engine.run e1;
  check Alcotest.bool "serial makespan 4ms" true
    (Sim.Time.compare (Shard.Engine.makespan d1) (ms 4) = 0);
  (* Two shards, two messages each: parallel simulated time, 2 ms. *)
  let e2 = Sim.Engine.create () in
  let d2 = Shard.Engine.create ~service:(ms 1) ~shards:2 e2 in
  List.iter (fun s -> Shard.Engine.post d2 ~shard:s ignore) [ 0; 1; 0; 1 ];
  Sim.Engine.run e2;
  check Alcotest.bool "parallel makespan 2ms" true
    (Sim.Time.compare (Shard.Engine.makespan d2) (ms 2) = 0)

let test_engine_broadcast_and_cross () =
  let e = Sim.Engine.create () in
  let d = Shard.Engine.create ~shards:3 e in
  let seen = ref [] in
  (* Broadcast from inside shard 1: delivered synchronously in shard
     order; the two foreign deliveries count as cross-shard traffic. *)
  Shard.Engine.post d ~shard:1 (fun () ->
      Shard.Engine.broadcast d (fun sid -> seen := sid :: !seen));
  Sim.Engine.run e;
  check Alcotest.(list int) "shard order" [ 0; 1; 2 ] (List.rev !seen);
  check Alcotest.int "two foreign deliveries" 2 (Shard.Engine.cross_messages d)

let test_engine_post_after () =
  let e = Sim.Engine.create () in
  let d = Shard.Engine.create ~shards:2 e in
  let fired = ref 0 in
  let _keep =
    Shard.Engine.post_after d ~shard:1 ~delay:(Sim.Time.ms 5) (fun () ->
        incr fired)
  in
  let cancel =
    Shard.Engine.post_after d ~shard:1 ~delay:(Sim.Time.ms 6) (fun () ->
        incr fired)
  in
  Sim.Engine.cancel cancel;
  Sim.Engine.run e;
  check Alcotest.int "timer posted once, cancel held" 1 !fired

(* --- Shard.Conn_table unit tests --- *)

let test_conn_join_settle () =
  let t = Shard.Conn_table.create () in
  let h = ip "10.0.0.1" in
  check Alcotest.bool "first starts the exchange" true
    (Shard.Conn_table.join t ~host:h ~shape:"name,userID" "w1" = `First);
  check Alcotest.bool "second coalesces" true
    (Shard.Conn_table.join t ~host:h ~shape:"name,userID" "w2"
    = `Coalesced 2);
  check Alcotest.bool "different shape starts its own" true
    (Shard.Conn_table.join t ~host:h ~shape:"name" "w3" = `First);
  check Alcotest.int "two exchanges in flight" 2
    (Shard.Conn_table.in_flight t);
  check Alcotest.int "three waiters parked" 3 (Shard.Conn_table.waiters t);
  check
    Alcotest.(list string)
    "settle returns join order" [ "w1"; "w2" ]
    (Shard.Conn_table.settle t ~host:h ~shape:"name,userID");
  check
    Alcotest.(list string)
    "settled exchange is gone" []
    (Shard.Conn_table.settle t ~host:h ~shape:"name,userID");
  check Alcotest.int "wire exchanges" 2 (Shard.Conn_table.started t);
  check Alcotest.int "coalesced joins" 1 (Shard.Conn_table.coalesced t)

let test_conn_fifo_pairing () =
  (* The multiplexed connection is FIFO: responses pair with exchanges
     oldest-first, whatever their shape. *)
  let t = Shard.Conn_table.create () in
  let h = ip "10.0.0.1" in
  ignore (Shard.Conn_table.join t ~host:h ~shape:"b" "w1");
  ignore (Shard.Conn_table.join t ~host:h ~shape:"a" "w2");
  ignore (Shard.Conn_table.join t ~host:h ~shape:"b" "w3");
  check
    Alcotest.(option string)
    "peek_oldest sees the initiator" (Some "w1")
    (Shard.Conn_table.peek_oldest t ~host:h);
  (match Shard.Conn_table.settle_oldest t ~host:h with
  | Some (shape, ws) ->
      check Alcotest.string "oldest shape first" "b" shape;
      check Alcotest.(list string) "its waiters" [ "w1"; "w3" ] ws
  | None -> Alcotest.fail "expected an exchange");
  (match Shard.Conn_table.settle_oldest t ~host:h with
  | Some (shape, ws) ->
      check Alcotest.string "then the next" "a" shape;
      check Alcotest.(list string) "its waiter" [ "w2" ] ws
  | None -> Alcotest.fail "expected the second exchange");
  check Alcotest.bool "drained" true
    (Shard.Conn_table.settle_oldest t ~host:h = None)

let test_conn_settle_host () =
  let t = Shard.Conn_table.create () in
  let h = ip "10.0.0.1" and other = ip "10.0.0.2" in
  ignore (Shard.Conn_table.join t ~host:h ~shape:"b" "w1");
  ignore (Shard.Conn_table.join t ~host:other ~shape:"b" "x1");
  ignore (Shard.Conn_table.join t ~host:h ~shape:"a" "w2");
  check
    Alcotest.(list (pair string (list string)))
    "all the host's exchanges, start order"
    [ ("b", [ "w1" ]); ("a", [ "w2" ]) ]
    (Shard.Conn_table.settle_host t ~host:h);
  check Alcotest.int "other host untouched" 1 (Shard.Conn_table.in_flight t)

(* --- Shard.Batch unit tests --- *)

let stats_req xid = Openflow.Message.Stats_request { xid }

let xid_of = function
  | Openflow.Message.Stats_request { xid } -> xid
  | _ -> -1

let test_batch_ordering () =
  let e = Sim.Engine.create () in
  let sent = ref [] in
  let b =
    Shard.Batch.create ~engine:e
      ~send:(fun dpid msg -> sent := (dpid, xid_of msg) :: !sent)
      ()
  in
  (* Interleave two switches; the flush must group by ascending dpid
     while preserving each switch's arrival order (flow-mods must land
     before the packet-out that relies on them). *)
  Shard.Batch.add b 2 (stats_req 1);
  Shard.Batch.add b 1 (stats_req 2);
  Shard.Batch.add b 2 (stats_req 3);
  Shard.Batch.add b 1 (stats_req 4);
  check Alcotest.int "buffered until the tick ends" 4 (Shard.Batch.pending b);
  Sim.Engine.run e;
  check
    Alcotest.(list (pair int int))
    "grouped by dpid, per-dpid arrival order"
    [ (1, 2); (1, 4); (2, 1); (2, 3) ]
    (List.rev !sent);
  check Alcotest.int "one pass" 1 (Shard.Batch.flushes b);
  check Alcotest.int "four messages through" 4 (Shard.Batch.batched b);
  (* A later tick batches afresh. *)
  Shard.Batch.add b 1 (stats_req 5);
  Sim.Engine.run e;
  check Alcotest.int "second pass" 2 (Shard.Batch.flushes b);
  check Alcotest.int "five total" 5 (Shard.Batch.batched b)

(* --- controller integration --- *)

(* The netsim burst scenario, inline: 16 hosts on a 4-switch chain,
   every host but the first opening a flow to host 0 at t = 0. *)
let run_burst ?obs ?spans ~shards () =
  let config = { C.default_config with C.shards } in
  let engine, network, controller, hosts =
    Deploy.linear_network ?obs ?spans ~config ~switches:4 ~hosts_per_switch:4
      ()
  in
  Policy_store.add_exn (C.policy controller) ~name:"00"
    "block all\npass all with eq(@src[name], app) keep state";
  let target = hosts.(0) in
  Array.iteri
    (fun i h ->
      if i > 0 then begin
        let proc = Identxx.Host.run h ~user:"u" ~exe:"/bin/app" () in
        let flow =
          Identxx.Host.connect h ~proc ~dst:(Identxx.Host.ip target)
            ~dst_port:80 ()
        in
        Net.send_from_host network ~name:(Identxx.Host.name h)
          (Identxx.Host.first_packet h ~flow)
      end)
    hosts;
  Sim.Engine.run engine;
  (controller, network)

let stats_t =
  Alcotest.testable
    (fun ppf (st : C.stats) ->
      Format.fprintf ppf
        "flows=%d allowed=%d blocked=%d queries=%d responses=%d timeouts=%d"
        st.C.flows_seen st.C.allowed st.C.blocked st.C.queries_sent
        st.C.responses_received st.C.query_timeouts)
    ( = )

let test_determinism_oracle () =
  (* Same scenario under 1, 2 and 8 shards: byte-identical audit trail,
     identical aggregated stats, identical delivery counts. *)
  let runs =
    List.map
      (fun n ->
        let c, net = run_burst ~shards:(Some (C.sharded n)) () in
        ( Format.asprintf "%a" Audit.pp (C.audit c),
          C.stats c,
          (Net.delivered net, Net.dropped net, Net.packet_ins net),
          C.pending_count c ))
      [ 1; 2; 8 ]
  in
  match runs with
  | [ (a1, s1, d1, p1); (a2, s2, d2, p2); (a8, s8, d8, p8) ] ->
      check Alcotest.string "audit identical 1 vs 2 shards" a1 a2;
      check Alcotest.string "audit identical 1 vs 8 shards" a1 a8;
      check stats_t "stats identical 1 vs 2 shards" s1 s2;
      check stats_t "stats identical 1 vs 8 shards" s1 s8;
      check
        Alcotest.(triple int int int)
        "delivery identical 1 vs 2 shards" d1 d2;
      check
        Alcotest.(triple int int int)
        "delivery identical 1 vs 8 shards" d1 d8;
      check Alcotest.int "no stuck flows (1)" 0 p1;
      check Alcotest.int "no stuck flows (2)" 0 p2;
      check Alcotest.int "no stuck flows (8)" 0 p8;
      check Alcotest.int "all 15 flows decided" 15 s1.C.flows_seen
  | _ -> assert false

(* Span-drop attribution must be shard-count invariant: the same burst
   through a capacity-4 collector finishes the same 15 root spans and
   evicts the same number whatever the shard count, and the registry
   series identxx_trace_spans_dropped_total{cause=capacity} (a
   per-collector callback, no shard label) reports exactly that. *)
let test_span_drop_invariance () =
  let series_value obs ~cause =
    match
      List.find_opt
        (fun (s : Obs.Registry.series) ->
          s.Obs.Registry.name = "identxx_trace_spans_dropped_total"
          && s.Obs.Registry.labels = [ ("cause", cause) ])
        (Obs.Registry.snapshot obs)
    with
    | Some { Obs.Registry.value = Obs.Registry.Counter_v n; _ } -> n
    | _ -> Alcotest.fail "no capacity drop series"
  in
  let runs =
    List.map
      (fun n ->
        let obs = Obs.Registry.create () in
        let spans = Obs.Span.create ~capacity:4 ~enabled:true () in
        let c, _net = run_burst ~obs ~spans ~shards:(Some (C.sharded n)) () in
        ignore c;
        ( series_value obs ~cause:"capacity",
          series_value obs ~cause:"sampling",
          List.length (Obs.Span.finished spans) ))
      [ 1; 2; 8 ]
  in
  match runs with
  | [ (c1, s1, k1); (c2, s2, k2); (c8, s8, k8) ] ->
      check Alcotest.bool "burst overflows the cap" true (c1 > 0);
      check Alcotest.int "capacity drops 1 vs 2 shards" c1 c2;
      check Alcotest.int "capacity drops 1 vs 8 shards" c1 c8;
      check Alcotest.int "nothing sampled out (1)" 0 s1;
      check Alcotest.int "sampling drops invariant" s1 s2;
      check Alcotest.int "sampling drops invariant (8)" s1 s8;
      (* Lazy trim may briefly hold cap + cap/4; every finished root is
         either retained or counted dropped. *)
      check Alcotest.int "all 15 roots accounted for" 15 (c1 + k1);
      check Alcotest.int "retained invariant 1 vs 2" k1 k2;
      check Alcotest.int "retained invariant 1 vs 8" k1 k8
  | _ -> assert false

(* K concurrent misses needing the same host: one wire exchange, K
   decisions. *)
let coalesce_net ?(silent = false) ~clients () =
  let config =
    {
      C.default_config with
      C.shards = Some (C.sharded 2);
      C.query_targets = C.Dst_only;
    }
  in
  let engine, network, controller, hosts =
    Deploy.linear_network ~config ~switches:1 ~hosts_per_switch:(clients + 1)
      ()
  in
  Policy_store.add_exn (C.policy controller) ~name:"00" "pass all";
  let target = hosts.(0) in
  if silent then
    Identxx.Daemon.set_behaviour
      (Identxx.Host.daemon target)
      Identxx.Daemon.Silent;
  for i = 1 to clients do
    let h = hosts.(i) in
    let proc = Identxx.Host.run h ~user:"u" ~exe:"/bin/app" () in
    let flow =
      Identxx.Host.connect h ~proc ~dst:(Identxx.Host.ip target) ~dst_port:80
        ()
    in
    Net.send_from_host network ~name:(Identxx.Host.name h)
      (Identxx.Host.first_packet h ~flow)
  done;
  Sim.Engine.run engine;
  controller

let test_coalescing () =
  let c = coalesce_net ~clients:5 () in
  let st = C.stats c in
  check Alcotest.int "five table misses" 5 st.C.flows_seen;
  check Alcotest.int "one wire exchange" 1 (C.wire_exchanges c);
  check Alcotest.int "four duplicates absorbed" 4 (C.coalesced_queries c);
  check Alcotest.int "one query on the wire" 1 st.C.queries_sent;
  check Alcotest.int "one response back" 1 st.C.responses_received;
  check Alcotest.int "five decisions" 5 st.C.allowed;
  check Alcotest.int "nothing pending" 0 (C.pending_count c)

let test_fail_all_waiters () =
  (* The coalesced exchange's terminal failure (here: host silent, the
     initiator's timeout) must fail every parked waiter, not just the
     initiating flow. *)
  let c = coalesce_net ~silent:true ~clients:3 () in
  let st = C.stats c in
  check Alcotest.int "three table misses" 3 st.C.flows_seen;
  check Alcotest.int "one wire exchange" 1 (C.wire_exchanges c);
  check Alcotest.int "no responses" 0 st.C.responses_received;
  check Alcotest.int "every waiter timed out" 3 st.C.query_timeouts;
  check Alcotest.int "all three flows decided" 3
    (st.C.allowed + st.C.blocked);
  check Alcotest.int "nothing pending" 0 (C.pending_count c)

let test_breaker_trip_propagates () =
  (* A breaker trip observed by one shard must open the host's breaker
     in every shard's fast-path view (via Shard.Engine.broadcast):
     later flows on other shards decide immediately, without a query. *)
  let fp =
    {
      Fastpath.default_config with
      Fastpath.breaker_threshold = 1;
      breaker_backoff = Sim.Time.s 30;
    }
  in
  let config =
    {
      C.default_config with
      C.shards = Some (C.sharded 4);
      C.query_targets = C.Dst_only;
      C.fastpath = fp;
    }
  in
  let engine, network, controller, hosts =
    Deploy.linear_network ~config ~switches:1 ~hosts_per_switch:6 ()
  in
  Policy_store.add_exn (C.policy controller) ~name:"00" "pass all";
  let target = hosts.(0) in
  Identxx.Daemon.set_behaviour
    (Identxx.Host.daemon target)
    Identxx.Daemon.Silent;
  let start i =
    let h = hosts.(i) in
    let proc = Identxx.Host.run h ~user:"u" ~exe:"/bin/app" () in
    let flow =
      Identxx.Host.connect h ~proc ~dst:(Identxx.Host.ip target) ~dst_port:80
        ()
    in
    Net.send_from_host network ~name:(Identxx.Host.name h)
      (Identxx.Host.first_packet h ~flow)
  in
  (* First flow: times out, trips the breaker on its shard; the trip is
     broadcast to the other three views. *)
  start 1;
  Sim.Engine.run engine;
  let st = C.stats controller in
  check Alcotest.int "one query burned the timeout" 1 st.C.queries_sent;
  check Alcotest.int "one trip (not one per shard)" 1 st.C.breaker_trips;
  (* Every remaining flow — whatever shard its hash picks — sees the
     open breaker and decides without a wire query. *)
  for i = 2 to 5 do
    start i
  done;
  Sim.Engine.run engine;
  let st = C.stats controller in
  check Alcotest.int "no further queries" 1 st.C.queries_sent;
  check Alcotest.int "decided via the propagated trip" 4
    st.C.breaker_fastpaths;
  check Alcotest.int "still one trip" 1 st.C.breaker_trips;
  check Alcotest.int "all five flows decided" 5 (st.C.allowed + st.C.blocked)

let () =
  Alcotest.run "shard"
    [
      ( "engine",
        [
          Alcotest.test_case "global post order" `Quick test_engine_post_order;
          Alcotest.test_case "makespan regimes" `Quick test_engine_makespan;
          Alcotest.test_case "broadcast order and cross count" `Quick
            test_engine_broadcast_and_cross;
          Alcotest.test_case "post_after timers" `Quick test_engine_post_after;
        ] );
      ( "conn table",
        [
          Alcotest.test_case "join, coalesce, settle order" `Quick
            test_conn_join_settle;
          Alcotest.test_case "fifo response pairing" `Quick
            test_conn_fifo_pairing;
          Alcotest.test_case "whole-host settlement" `Quick
            test_conn_settle_host;
        ] );
      ( "batch",
        [ Alcotest.test_case "grouped ordered flush" `Quick test_batch_ordering ] );
      ( "controller",
        [
          Alcotest.test_case "determinism oracle (1/2/8 shards)" `Quick
            test_determinism_oracle;
          Alcotest.test_case "span-drop attribution invariant (1/2/8 shards)"
            `Quick test_span_drop_invariance;
          Alcotest.test_case "query coalescing" `Quick test_coalescing;
          Alcotest.test_case "failure fails all waiters" `Quick
            test_fail_all_waiters;
          Alcotest.test_case "breaker trip propagates" `Quick
            test_breaker_trip_propagates;
        ] );
    ]

Distributed tracing, end to end: `netsim --trace-out` exports the
controller's flow-setup spans as JSONL and `identxx_ctl trace` renders
the tree. Everything runs on the simulated clock, so every timestamp
below is deterministic.

The Figure-1 run produces one trace: the controller's flow-setup root,
a query child per end host, and under each query the daemon-side spans
(decode/lookup/assemble) that rode back piggybacked on the response:

  $ identxx-netsim fig1 --trace-out spans.jsonl > out.txt
  $ grep wrote out.txt
  wrote 1 spans to spans.jsonl (0 sampled out)
  $ identxx_ctl trace spans.jsonl
  flow-setup @60us +120us (self 0us) flow=tcp 10.0.0.1:50000 -> 10.0.0.2:80 trace-id=2720c5e6d2d0f9d5 decision=pass rule=2
    - install @180us
    query @60us +120us (self 120us) host=10.0.0.1 outcome=answered
      decode @120us +0us
      lookup @120us +0us
      assemble @120us +0us
    query @60us +120us (self 120us) host=10.0.0.2 outcome=answered
      decode @120us +0us
      lookup @120us +0us
      assemble @120us +0us
  1 trace(s)

The trace id is deterministic (flow 5-tuple + per-run counter), so the
same run always yields the same id:

  $ identxx-netsim fig1 --trace-out again.jsonl > /dev/null
  $ grep -c 2720c5e6d2d0f9d5 again.jsonl
  1

Head sampling: at --trace-sample 0 nothing is kept by the sampler, but
traces that end in a drop verdict are force-sampled so the interesting
flow always survives. --extra-flow adds a second flow from a user
running an unapproved binary, which rule 1 denies:

  $ identxx-netsim fig1 --trace-out deny.jsonl --trace-sample 0 \
  >   --extra-flow /usr/bin/curl > out2.txt
  $ grep wrote out2.txt
  wrote 1 spans to deny.jsonl (1 sampled out)
  $ identxx_ctl trace deny.jsonl
  flow-setup @60us +120us (self 0us) flow=tcp 10.0.0.1:50001 -> 10.0.0.2:81 trace-id=77c8d3d74cefdd8c decision=block rule=1
    - install-drop @180us
    query @60us +120us (self 120us) host=10.0.0.1 outcome=answered
      decode @120us +0us
      lookup @120us +0us
      assemble @120us +0us
    query @60us +120us (self 120us) host=10.0.0.2 outcome=answered
      decode @120us +0us
      lookup @120us +0us
      assemble @120us +0us
  1 trace(s)

Without --trace-out (or --spans) tracing stays off entirely — the run
is byte-identical to an untraced one on the wire, as the daemon only
adds its trace section when the query carries a context:

  $ identxx-netsim fig1 --extra-flow /usr/bin/curl > plain.txt
  $ grep -c trace-id plain.txt
  0
  [1]

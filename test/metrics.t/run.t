The observability surface: `netsim --metrics` renders the registry that
the controller, fast path, daemons, and fabric record into — as
Prometheus text and as a JSON snapshot — and `identxx_ctl metrics`
reads the snapshot back. Everything runs on the simulated clock, so
every number below (including histogram sums) is deterministic.

  $ identxx-netsim fig1 --metrics --metrics-json snap.json --spans spans.json > out.txt

The Figure-1 run, in controller series: one table-miss flow, one pass
verdict, one query to each end, both answered:

  $ grep -E '^identxx_controller_(flows|decisions|queries_sent|responses_received)' out.txt
  identxx_controller_decisions_total{controller="0",verdict="block"} 0
  identxx_controller_decisions_total{controller="0",verdict="pass"} 1
  identxx_controller_flows_total{controller="0"} 1
  identxx_controller_queries_sent_total{controller="0"} 2
  identxx_controller_responses_received_total{controller="0"} 2

Latency histograms: packet-in at 60us, verdict at 180us (one 120us
flow setup), and two 120us query round trips:

  $ grep -E '^identxx_controller_(flow_setup|query_rtt)_seconds_(sum|count)' out.txt
  identxx_controller_flow_setup_seconds_sum{controller="0"} 0.00012000000000000002
  identxx_controller_flow_setup_seconds_count{controller="0"} 1
  identxx_controller_query_rtt_seconds_sum{controller="0"} 0.00024000000000000003
  identxx_controller_query_rtt_seconds_count{controller="0"} 2

Daemon-side and fabric series ride in the same registry:

  $ grep -E '^identxx_daemon_queries_total|^identxx_net_' out.txt
  identxx_daemon_queries_total{host="client",result="answered"} 1
  identxx_daemon_queries_total{host="client",result="silent"} 0
  identxx_daemon_queries_total{host="server",result="answered"} 1
  identxx_daemon_queries_total{host="server",result="silent"} 0
  identxx_net_packet_ins_total 3
  identxx_net_packets_delivered_total 3
  identxx_net_packets_dropped_total 0

The round trip: the JSON snapshot, re-rendered as Prometheus text by
identxx_ctl, is byte-identical to what netsim printed.

  $ awk '/^=== metrics \(json\)/{f=0} f&&NF {print} /^=== metrics \(prometheus\)/{f=1}' out.txt > netsim.prom
  $ identxx_ctl metrics snap.json --format prom > roundtrip.prom
  $ cmp netsim.prom roundtrip.prom

The one-line-per-series summary view groups by label vector — one
block per entity (host, shard, switch) instead of interleaving
entities inside every metric name:

  $ identxx_ctl metrics snap.json --format summary | grep identxx_daemon
  histogram identxx_daemon_answer_seconds{host=client} count=1 sum=0 p50=5e-06 p95=9.5e-06 p99=9.9e-06
  counter   identxx_daemon_responses_signed_total{host=client} = 0
  counter   identxx_daemon_queries_total{host=client,result=answered} = 1
  counter   identxx_daemon_queries_total{host=client,result=silent} = 0
  histogram identxx_daemon_answer_seconds{host=server} count=1 sum=0 p50=5e-06 p95=9.5e-06 p99=9.9e-06
  counter   identxx_daemon_responses_signed_total{host=server} = 0
  counter   identxx_daemon_queries_total{host=server,result=answered} = 1
  counter   identxx_daemon_queries_total{host=server,result=silent} = 0

The span stream: one root flow-setup span with the decision and the
matched rule, one child span per ident++ query:

  $ cat spans.json
  {
    "spans": [
      {
        "name": "flow-setup",
        "start": 6e-05,
        "end": 0.00018,
        "attrs": {
          "flow": "tcp 10.0.0.1:50000 -> 10.0.0.2:80",
          "trace-id": "2720c5e6d2d0f9d5",
          "decision": "pass",
          "rule": "2"
        },
        "events": [
          {
            "at": 0.00018,
            "name": "install"
          }
        ],
        "children": [
          {
            "name": "query",
            "start": 6e-05,
            "end": 0.00018,
            "attrs": {
              "host": "10.0.0.1",
              "outcome": "answered"
            },
            "children": [
              {
                "name": "decode",
                "start": 0.00012,
                "end": 0.00012
              },
              {
                "name": "lookup",
                "start": 0.00012,
                "end": 0.00012
              },
              {
                "name": "assemble",
                "start": 0.00012,
                "end": 0.00012
              }
            ]
          },
          {
            "name": "query",
            "start": 6e-05,
            "end": 0.00018,
            "attrs": {
              "host": "10.0.0.2",
              "outcome": "answered"
            },
            "children": [
              {
                "name": "decode",
                "start": 0.00012,
                "end": 0.00012
              },
              {
                "name": "lookup",
                "start": 0.00012,
                "end": 0.00012
              },
              {
                "name": "assemble",
                "start": 0.00012,
                "end": 0.00012
              }
            ]
          }
        ]
      }
    ],
    "dropped": 0,
    "sampled_out": 0
  }

Snapshots that are not JSON, or JSON that is not a snapshot, are
refused with a useful error:

  $ echo 'not json' > bad.json
  $ identxx_ctl metrics bad.json
  error: bad.json: byte 0: expected null
  [1]
  $ echo '{"metrics": 1}' > shape.json
  $ identxx_ctl metrics shape.json
  error: shape.json: "metrics" is not an array
  [1]

(* The flow-setup fast path: attribute cache, decision cache with epoch
   invalidation, and the silent-host circuit breaker — both the cache
   modules in isolation and the controller integration (cache hits must
   skip daemon queries; epoch bumps and revocation must prevent stale
   decisions; the breaker must trip after N timeouts and re-probe after
   the backoff window). *)

open Netcore
module Net = Openflow.Network
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module Policy_store = Identxx_core.Policy_store

let ip = Ipv4.of_string
let check = Alcotest.check

(* --- Attr_cache unit tests --- *)

let resp ?(pairs = [ ("userID", "alice") ]) () =
  let flow =
    Five_tuple.tcp ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:50000
      ~dst_port:80
  in
  Identxx.Response.make ~flow
    [ List.map (fun (k, v) -> Identxx.Key_value.pair k v) pairs ]

let test_attr_ttl () =
  let c = Fastpath.Attr_cache.create ~ttl:(Sim.Time.ms 10) () in
  let host = ip "10.0.0.1" and keys = [ "userID"; "name" ] in
  Fastpath.Attr_cache.store c ~now:Sim.Time.zero ~host ~keys (resp ());
  check Alcotest.bool "live before ttl" true
    (Fastpath.Attr_cache.find c ~now:(Sim.Time.ms 9) ~host ~keys <> None);
  (* The key set is order-insensitive. *)
  check Alcotest.bool "key order ignored" true
    (Fastpath.Attr_cache.find c ~now:(Sim.Time.ms 9) ~host
       ~keys:[ "name"; "userID" ]
    <> None);
  check Alcotest.bool "expired at ttl" true
    (Fastpath.Attr_cache.find c ~now:(Sim.Time.ms 10) ~host ~keys = None);
  check Alcotest.int "hits" 2 (Fastpath.Attr_cache.hits c);
  check Alcotest.int "misses" 1 (Fastpath.Attr_cache.misses c);
  check Alcotest.int "expired entry dropped" 0 (Fastpath.Attr_cache.size c)

let test_attr_self_expiry () =
  (* A response-carried "expires" key caps the lifetime below the
     configured TTL. *)
  let c = Fastpath.Attr_cache.create ~ttl:(Sim.Time.s 60) () in
  let host = ip "10.0.0.1" and keys = [ "userID" ] in
  Fastpath.Attr_cache.store c ~now:Sim.Time.zero ~host ~keys
    (resp ~pairs:[ ("userID", "alice"); ("expires", "0.5") ] ());
  check Alcotest.bool "live before self-expiry" true
    (Fastpath.Attr_cache.find c ~now:(Sim.Time.ms 499) ~host ~keys <> None);
  check Alcotest.bool "dead after self-expiry" true
    (Fastpath.Attr_cache.find c ~now:(Sim.Time.ms 500) ~host ~keys = None)

let test_attr_capacity_and_invalidation () =
  let c = Fastpath.Attr_cache.create ~capacity:2 ~ttl:(Sim.Time.s 1) () in
  let keys = [ "userID" ] in
  let store i =
    Fastpath.Attr_cache.store c ~now:Sim.Time.zero
      ~host:(Ipv4.of_octets 10 0 0 i)
      ~keys (resp ())
  in
  store 1;
  store 2;
  store 3;
  (* FIFO: host 1 evicted. *)
  check Alcotest.int "capacity bound" 2 (Fastpath.Attr_cache.size c);
  check Alcotest.int "one eviction" 1 (Fastpath.Attr_cache.evictions c);
  check Alcotest.bool "oldest gone" true
    (Fastpath.Attr_cache.find c ~now:Sim.Time.zero
       ~host:(Ipv4.of_octets 10 0 0 1) ~keys
    = None);
  check Alcotest.int "invalidate host" 1
    (Fastpath.Attr_cache.invalidate_host c (Ipv4.of_octets 10 0 0 2));
  check Alcotest.int "invalidation counted" 1
    (Fastpath.Attr_cache.invalidations c);
  check Alcotest.int "one left" 1 (Fastpath.Attr_cache.size c)

(* --- Breaker unit tests --- *)

let test_breaker_transitions () =
  let b = Fastpath.Breaker.create ~threshold:2 ~backoff:(Sim.Time.ms 100) () in
  let h = ip "10.0.0.9" in
  let t ms = Sim.Time.ms ms in
  check Alcotest.bool "closed: ask" true
    (Fastpath.Breaker.consult b ~now:(t 0) h = `Ask);
  Fastpath.Breaker.note_timeout b ~now:(t 5) h;
  check Alcotest.bool "below threshold: still ask" true
    (Fastpath.Breaker.consult b ~now:(t 5) h = `Ask);
  Fastpath.Breaker.note_timeout b ~now:(t 10) h;
  check Alcotest.int "tripped" 1 (Fastpath.Breaker.trips b);
  check Alcotest.bool "open: absent" true
    (Fastpath.Breaker.consult b ~now:(t 50) h = `Absent);
  check Alcotest.bool "window expired: probe" true
    (Fastpath.Breaker.consult b ~now:(t 111) h = `Probe);
  check Alcotest.bool "while probing, others get absent" true
    (Fastpath.Breaker.consult b ~now:(t 112) h = `Absent);
  (* Failed probe: straight back to open. *)
  Fastpath.Breaker.note_timeout b ~now:(t 120) h;
  check Alcotest.int "probe failure re-trips" 2 (Fastpath.Breaker.trips b);
  check Alcotest.bool "open again" true
    (Fastpath.Breaker.consult b ~now:(t 121) h = `Absent);
  (* A response closes the breaker and forgets the history. *)
  check Alcotest.bool "second window expired: probe" true
    (Fastpath.Breaker.consult b ~now:(t 225) h = `Probe);
  Fastpath.Breaker.note_response b h;
  check Alcotest.bool "closed after response" true
    (Fastpath.Breaker.consult b ~now:(t 230) h = `Ask);
  check Alcotest.int "history forgotten" 0 (Fastpath.Breaker.tracked b)

(* --- Decision_cache unit tests --- *)

let verdict_pass =
  { Pf.Eval.decision = Pf.Ast.Pass; matched = None; keep_state = false; log = false }

let flow_of i =
  Five_tuple.tcp ~src:(Ipv4.of_octets 10 0 0 i) ~dst:(ip "10.0.0.99")
    ~src_port:(50000 + i) ~dst_port:80

let test_decision_epoch_and_purge () =
  let c = Fastpath.Decision_cache.create ~capacity:8 () in
  Fastpath.Decision_cache.store c ~epoch:0 ~key:"k1" ~flow:(flow_of 1)
    verdict_pass;
  check Alcotest.bool "hit in same epoch" true
    (Fastpath.Decision_cache.find c ~epoch:0 ~key:"k1" <> None);
  (* An epoch bump orphans everything at once. *)
  check Alcotest.bool "miss after epoch bump" true
    (Fastpath.Decision_cache.find c ~epoch:1 ~key:"k1" = None);
  check Alcotest.int "cache emptied" 0 (Fastpath.Decision_cache.size c);
  Fastpath.Decision_cache.store c ~epoch:1 ~key:"a" ~flow:(flow_of 1)
    verdict_pass;
  Fastpath.Decision_cache.store c ~epoch:1 ~key:"b" ~flow:(flow_of 2)
    verdict_pass;
  check Alcotest.int "purge by ip" 1
    (Fastpath.Decision_cache.purge_ip c (Ipv4.of_octets 10 0 0 1));
  check Alcotest.bool "purged entry gone" true
    (Fastpath.Decision_cache.find c ~epoch:1 ~key:"a" = None);
  check Alcotest.bool "other entry survives" true
    (Fastpath.Decision_cache.find c ~epoch:1 ~key:"b" <> None)

let test_decision_key_wildcards_src_port () =
  let src = Some (resp ()) and dst = None in
  let k p =
    Fastpath.decision_key ~match_src_port:false ~flow:(
      Five_tuple.tcp ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:p
        ~dst_port:80)
      ~src ~dst
  in
  check Alcotest.bool "ephemeral ports share a key" true (k 50000 = k 50001);
  let k' p =
    Fastpath.decision_key ~match_src_port:true ~flow:(
      Five_tuple.tcp ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:p
        ~dst_port:80)
      ~src ~dst
  in
  check Alcotest.bool "matched ports distinguish keys" true
    (k' 50000 <> k' 50001);
  (* Absent and empty-but-present responses must not collide. *)
  let base flow_src =
    Fastpath.decision_key ~match_src_port:false ~flow:(
      Five_tuple.tcp ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:1
        ~dst_port:80)
      ~src:flow_src ~dst:None
  in
  let empty =
    Identxx.Response.make
      ~flow:
        (Five_tuple.tcp ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:1
           ~dst_port:80)
      []
  in
  check Alcotest.bool "absent distinct from empty" true
    (base None <> base (Some empty))

(* --- Controller integration --- *)

let app_policy apps =
  Printf.sprintf
    "allowed = \"{ %s }\"\nblock all\npass all with member(@src[name], $allowed)"
    (String.concat " " apps)

let fp_on =
  {
    C.default_config with
    C.fastpath =
      {
        Fastpath.default_config with
        Fastpath.breaker_threshold = 2;
        breaker_backoff = Sim.Time.ms 100;
      };
  }

(* Start a flow from an existing process (no spawn, so no change event)
   and run the simulation to quiescence. *)
let connect_and_run (s : Deploy.simple) ~proc ?(dst_port = 80) () =
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port ()
  in
  let pkt = Identxx.Host.first_packet s.client ~flow in
  Net.send_from_host s.network ~name:"client" pkt;
  Sim.Engine.run s.engine;
  flow

let advance (s : Deploy.simple) ms =
  Sim.Engine.schedule s.engine ~delay:(Sim.Time.ms ms) (fun () -> ());
  Sim.Engine.run s.engine

let test_warm_cache_skips_queries () =
  let s = Deploy.simple_network ~config:fp_on () in
  Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" () in
  ignore (connect_and_run s ~proc ());
  let st1 = C.stats s.controller in
  check Alcotest.int "cold flow queries both ends" 2 st1.C.queries_sent;
  check Alcotest.int "cold flow is not a fastpath decision" 0
    st1.C.fastpath_decisions;
  (* Same process, new connection (fresh ephemeral port): both answers
     come from the attribute cache — no daemon sees a query. *)
  ignore (connect_and_run s ~proc ());
  let st2 = C.stats s.controller in
  check Alcotest.int "warm flow sends no queries" 2 st2.C.queries_sent;
  check Alcotest.int "one fastpath decision" 1 st2.C.fastpath_decisions;
  check Alcotest.int "two attribute hits" 2 st2.C.attr_cache_hits;
  check Alcotest.int "decision replayed from cache" 1 st2.C.decision_cache_hits;
  check Alcotest.int "client daemon queried once in total" 1
    (Identxx.Daemon.queries_answered (Identxx.Host.daemon s.client));
  check Alcotest.int "both flows allowed" 2 st2.C.allowed

let test_spawn_invalidates_attr_cache () =
  (* A daemon-side change event (here: a process spawn — the paper's
     login/new-application case) must drop the host's cached attributes
     and force a fresh exchange. *)
  let s = Deploy.simple_network ~config:fp_on () in
  Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" () in
  ignore (connect_and_run s ~proc ());
  let proc2 =
    Identxx.Host.run s.client ~user:"mallory" ~exe:"/usr/bin/worm" ()
  in
  ignore (connect_and_run s ~proc:proc2 ());
  let st = C.stats s.controller in
  check Alcotest.bool "cache invalidated on spawn" true
    (st.C.attr_cache_invalidations >= 1);
  (* Invalidation is per-host: the changed client is re-queried, the
     untouched server still answers from the cache — 2 + 1 queries. *)
  check Alcotest.int "client (only) re-queried" 3 st.C.queries_sent;
  check Alcotest.int "client daemon saw the second query" 2
    (Identxx.Daemon.queries_answered (Identxx.Host.daemon s.client));
  check Alcotest.int "server daemon never re-queried" 1
    (Identxx.Daemon.queries_answered (Identxx.Host.daemon s.server));
  check Alcotest.int "worm still blocked" 1 st.C.blocked

let test_epoch_bump_prevents_stale_decision () =
  let s = Deploy.simple_network ~config:fp_on () in
  Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" () in
  ignore (connect_and_run s ~proc ());
  check Alcotest.int "allowed under the old policy" 1
    (C.stats s.controller).C.allowed;
  (* Replace the policy through the store alone: no controller flush, so
     only the epoch protects against replaying the cached verdict. *)
  Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "chrome" ]);
  ignore (connect_and_run s ~proc ());
  let st = C.stats s.controller in
  check Alcotest.int "stale pass not replayed" 1 st.C.allowed;
  check Alcotest.int "re-evaluated and blocked" 1 st.C.blocked;
  (* The attribute cache legitimately survives the policy change: the
     re-evaluation still needs no fresh queries. *)
  check Alcotest.int "no new queries" 2 st.C.queries_sent;
  check Alcotest.int "both decisions fastpathed" 1 st.C.fastpath_decisions

let test_revoke_principal_purges () =
  let s = Deploy.simple_network ~config:fp_on () in
  Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" () in
  ignore (connect_and_run s ~proc ());
  ignore (connect_and_run s ~proc ());
  let st = C.stats s.controller in
  check Alcotest.int "warm before revocation" 1 st.C.fastpath_decisions;
  ignore (C.revoke_principal s.controller ~ip:(Identxx.Host.ip s.client));
  (* Everything the principal could have influenced is gone: its
     attributes, its memoized decisions, its connection state. The next
     flow re-queries the revoked host (the server's cached attributes
     are legitimately untouched). *)
  ignore (connect_and_run s ~proc ());
  let st' = C.stats s.controller in
  check Alcotest.int "revoked host re-queried" 3 st'.C.queries_sent;
  check Alcotest.int "no new fastpath decision" 1 st'.C.fastpath_decisions;
  check Alcotest.int "decision not replayed" 1 st'.C.decision_cache_hits;
  check Alcotest.bool "attribute entries purged" true
    (st'.C.attr_cache_invalidations >= 1)

let test_breaker_trips_and_reprobes () =
  let s =
    Deploy.simple_network ~config:{ fp_on with C.query_targets = C.Src_only } ()
  in
  Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  Identxx.Daemon.set_behaviour
    (Identxx.Host.daemon s.client)
    Identxx.Daemon.Silent;
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" () in
  (* Two consecutive timeouts trip the breaker (threshold 2). *)
  ignore (connect_and_run s ~proc ());
  ignore (connect_and_run s ~proc ());
  let st = C.stats s.controller in
  check Alcotest.int "two queries burned timeouts" 2 st.C.queries_sent;
  check Alcotest.int "two timeouts" 2 st.C.query_timeouts;
  check Alcotest.int "breaker tripped" 1 st.C.breaker_trips;
  (* Open breaker: flows decide immediately, with no query and no
     timeout wait. *)
  let before = Sim.Engine.now s.engine in
  ignore (connect_and_run s ~proc ());
  let st = C.stats s.controller in
  check Alcotest.int "no query while open" 2 st.C.queries_sent;
  check Alcotest.int "decided via breaker" 1 st.C.breaker_fastpaths;
  check Alcotest.int "fastpath decision" 1 st.C.fastpath_decisions;
  let elapsed = Sim.Time.sub (Sim.Engine.now s.engine) before in
  check Alcotest.bool "decided without burning the query timeout" true
    (Sim.Time.compare elapsed C.default_config.C.query_timeout < 0);
  (* After the backoff window the next flow re-probes the (healed)
     host; its answer closes the breaker. *)
  Identxx.Daemon.set_behaviour
    (Identxx.Host.daemon s.client)
    Identxx.Daemon.Honest;
  advance s 150;
  ignore (connect_and_run s ~proc ());
  let st = C.stats s.controller in
  check Alcotest.int "probe query sent after backoff" 3 st.C.queries_sent;
  check Alcotest.int "probe answered" 1 st.C.responses_received;
  check Alcotest.int "flow allowed after heal" 1 st.C.allowed;
  check Alcotest.bool "breaker closed" true
    (Fastpath.Breaker.state
       (Fastpath.breaker (C.fastpath s.controller))
       (Identxx.Host.ip s.client)
    = Fastpath.Breaker.Closed)

let test_breaker_failed_probe_reopens () =
  let s =
    Deploy.simple_network ~config:{ fp_on with C.query_targets = C.Src_only } ()
  in
  Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  Identxx.Daemon.set_behaviour
    (Identxx.Host.daemon s.client)
    Identxx.Daemon.Silent;
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" () in
  ignore (connect_and_run s ~proc ());
  ignore (connect_and_run s ~proc ());
  check Alcotest.int "tripped" 1 (C.stats s.controller).C.breaker_trips;
  advance s 150;
  (* Still silent: the probe query times out and the breaker re-opens
     for another window. *)
  ignore (connect_and_run s ~proc ());
  let st = C.stats s.controller in
  check Alcotest.int "probe sent" 3 st.C.queries_sent;
  check Alcotest.int "probe failure re-trips" 2 st.C.breaker_trips;
  (* And the window is armed again: the next flow is immediate. *)
  ignore (connect_and_run s ~proc ());
  check Alcotest.int "open again after failed probe" 3
    (C.stats s.controller).C.queries_sent

let () =
  Alcotest.run "fastpath"
    [
      ( "attr cache",
        [
          Alcotest.test_case "ttl and key normalization" `Quick test_attr_ttl;
          Alcotest.test_case "response-carried expiry" `Quick
            test_attr_self_expiry;
          Alcotest.test_case "capacity and invalidation" `Quick
            test_attr_capacity_and_invalidation;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "state transitions" `Quick test_breaker_transitions;
        ] );
      ( "decision cache",
        [
          Alcotest.test_case "epoch flush and purge" `Quick
            test_decision_epoch_and_purge;
          Alcotest.test_case "key canonicalization" `Quick
            test_decision_key_wildcards_src_port;
        ] );
      ( "controller integration",
        [
          Alcotest.test_case "warm cache skips queries" `Quick
            test_warm_cache_skips_queries;
          Alcotest.test_case "spawn invalidates attributes" `Quick
            test_spawn_invalidates_attr_cache;
          Alcotest.test_case "epoch bump prevents stale decision" `Quick
            test_epoch_bump_prevents_stale_decision;
          Alcotest.test_case "revocation purges caches" `Quick
            test_revoke_principal_purges;
          Alcotest.test_case "breaker trips then re-probes" `Quick
            test_breaker_trips_and_reprobes;
          Alcotest.test_case "failed probe re-opens" `Quick
            test_breaker_failed_probe_reopens;
        ] );
    ]

identxxd answers ident++ queries from stdin using on-disk configuration
and a process-table fixture (the lsof stand-in).

  $ cat > skype.conf <<'CONF'
  > @app /usr/bin/skype {
  > name : skype
  > version : 210
  > }
  > CONF
  $ cat > procs.txt <<'TABLE'
  > conn 100 alice staff /usr/bin/skype tcp 10.0.0.1:50000 10.0.0.9:33000
  > listen 200 smtp services /usr/sbin/sendmail tcp 25
  > TABLE

A query about the flow alice's skype opened (the daemon is the source):

  $ printf 'TCP 50000 33000\nuserID\n\n' | \
  >   identxxd --ip 10.0.0.1 --peer 10.0.0.9 --config skype.conf --table procs.txt
  TCP 50000 33000
  userID: alice
  groupID: staff
  pid: 100
  exe-path: /usr/bin/skype
  name: skype
  app-name: skype
  
  name: skype
  version: 210
  

A query the listener would accept (the daemon is the destination):

  $ printf 'TCP 4444 25\n\n' | \
  >   identxxd --ip 10.0.0.1 --peer 10.0.0.9 --table procs.txt
  TCP 4444 25
  userID: smtp
  groupID: services
  pid: 200
  exe-path: /usr/sbin/sendmail
  name: sendmail
  app-name: sendmail
  

A malformed query is answered with an error marker:

  $ printf 'FROG 1 2\n\n' | identxxd --ip 10.0.0.1 --table procs.txt
  error: query: malformed header fields
  

--cache-expires stamps every answer with an 'expires' pair, bounding
how long the querying controller's attribute cache may reuse it:

  $ printf 'TCP 4444 25\n\n' | \
  >   identxxd --ip 10.0.0.1 --peer 10.0.0.9 --table procs.txt --cache-expires 2.5
  TCP 4444 25
  userID: smtp
  groupID: services
  pid: 200
  exe-path: /usr/sbin/sendmail
  name: sendmail
  app-name: sendmail
  
  expires: 2.5
  

Mixed-version exchange. A tracing controller smuggles its trace context
as an extra "@trace/" query key; a daemon that understands it answers
with a trace section appended after everything else (span times are 0
under the daemon's default deterministic clock):

  $ printf 'TCP 50000 33000\nuserID\n@trace/00000000deadbeef-cafe0123-s\n\n' | \
  >   identxxd --ip 10.0.0.1 --peer 10.0.0.9 --table procs.txt
  TCP 50000 33000
  userID: alice
  groupID: staff
  pid: 100
  exe-path: /usr/bin/skype
  name: skype
  app-name: skype
  
  trace-id: 00000000deadbeef
  trace-parent: cafe0123
  trace-spans: decode@0+0;lookup@0+0;assemble@0+0
  

A token that merely starts with "@trace/" but does not parse as a trace
context is treated like any other requested key — the answer carries no
trace section, exactly what an old controller (or a typo) gets:

  $ printf 'TCP 50000 33000\n@trace/not-a-context\n\n' | \
  >   identxxd --ip 10.0.0.1 --peer 10.0.0.9 --table procs.txt
  TCP 50000 33000
  userID: alice
  groupID: staff
  pid: 100
  exe-path: /usr/bin/skype
  name: skype
  app-name: skype
  

(* Integration tests of the ident++ controller over the simulated
   OpenFlow fabric: the Figure-1 flow-setup sequence, policy caching,
   keep-state, interception, incremental deployment and failure
   injection. *)

open Netcore
module Net = Openflow.Network
module Topo = Openflow.Topology
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy

let ip = Ipv4.of_string

(* A policy that admits only flows whose source daemon names an approved
   application. *)
let app_policy apps =
  Printf.sprintf "allowed = \"{ %s }\"\nblock all\npass all with member(@src[name], $allowed)"
    (String.concat " " apps)

let run_flow ?(dst_port = 80) (s : Deploy.simple) ~user ~exe =
  let proc = Identxx.Host.run s.client ~user ~exe () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port ()
  in
  let pkt = Identxx.Host.first_packet s.client ~flow in
  Net.send_from_host s.network ~name:"client" pkt;
  Sim.Engine.run s.engine;
  flow

let test_fig1_allowed_flow_delivered () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller)
    ~name:"00-policy" (app_policy [ "firefox" ]);
  let delivered_before = Net.delivered s.network in
  let _flow = run_flow s ~user:"alice" ~exe:"/usr/bin/firefox" in
  let st = C.stats s.controller in
  Alcotest.(check int) "one flow seen" 1 st.C.flows_seen;
  Alcotest.(check int) "one allowed" 1 st.C.allowed;
  Alcotest.(check int) "none blocked" 0 st.C.blocked;
  Alcotest.(check int) "two queries" 2 st.C.queries_sent;
  Alcotest.(check int) "two responses" 2 st.C.responses_received;
  Alcotest.(check bool) "data packet delivered to server" true
    (Net.delivered s.network > delivered_before)

let test_fig1_blocked_flow_not_delivered () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller)
    ~name:"00-policy" (app_policy [ "firefox" ]);
  let _flow = run_flow s ~user:"mallory" ~exe:"/usr/bin/exfiltrator" in
  let st = C.stats s.controller in
  Alcotest.(check int) "one blocked" 1 st.C.blocked;
  Alcotest.(check int) "none allowed" 0 st.C.allowed;
  (* Only ident++ exchange packets were delivered to hosts; count the
     data packet as dropped. *)
  Alcotest.(check bool) "drop recorded" true (Net.dropped s.network >= 0)

let test_fig1_event_sequence () =
  (* The trace must show the Figure-1 order: client tx, packet-in,
     queries out, responses back, flow-mods, then server rx. *)
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller)
    ~name:"00-policy" (app_policy [ "firefox" ]);
  ignore (run_flow s ~user:"alice" ~exe:"/usr/bin/firefox");
  let entries = Sim.Trace.entries (Net.trace s.network) in
  let index_of pred =
    let rec go i = function
      | [] -> None
      | e :: rest -> if pred e then Some i else go (i + 1) rest
    in
    go 0 entries
  in
  let contains sub (e : Sim.Trace.entry) =
    let len_s = String.length sub and len_e = String.length e.event in
    let rec go i =
      i + len_s <= len_e && (String.sub e.event i len_s = sub || go (i + 1))
    in
    len_s <= len_e && go 0
  in
  let first_packet_in = index_of (fun e -> contains "packet-in" e) in
  let first_flow_mod = index_of (fun e -> contains "flow-mod" e) in
  (* The server's first rx is the ident++ query (Figure 1 step 3); the
     data packet is delivered last, on port 80. *)
  let server_rx =
    let rec last i best = function
      | [] -> best
      | e :: rest ->
          let best =
            if e.Sim.Trace.actor = "server" && contains "rx" e && contains ":80" e
            then Some i
            else best
          in
          last (i + 1) best rest
    in
    last 0 None entries
  in
  match (first_packet_in, first_flow_mod, server_rx) with
  | Some pi, Some fm, Some rx ->
      Alcotest.(check bool) "packet-in before flow-mod" true (pi < fm);
      Alcotest.(check bool) "flow-mod before server delivery" true (fm < rx)
  | _ -> Alcotest.fail "expected packet-in, flow-mod and server rx in trace"

let test_udp_flow_end_to_end () =
  (* UDP flows run the same pipeline: daemon identifies the sender and
     the listening service, policy decides, entries install. *)
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "block all\npass proto udp from any to any port 53 with eq(@dst[name], named)";
  let dproc = Identxx.Host.run s.server ~user:"bind" ~exe:"/usr/sbin/named" () in
  Identxx.Host.listen s.server ~proc:dproc ~port:53 ~proto:Proto.Udp ();
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/dig" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~proto:Proto.Udp ~dst_port:53 ()
  in
  let delivered_before = Net.delivered s.network in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;
  Alcotest.(check int) "allowed" 1 (C.stats s.controller).C.allowed;
  Alcotest.(check bool) "datagram delivered" true
    (Net.delivered s.network > delivered_before);
  (* The same query to a TCP port is a different proto and is blocked. *)
  let flow2 =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~proto:Proto.Tcp ~dst_port:53 ()
  in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow:flow2);
  Sim.Engine.run s.engine;
  Alcotest.(check int) "tcp blocked by proto clause" 1
    (C.stats s.controller).C.blocked

let test_caching_second_packet_bypasses_controller () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller)
    ~name:"00-policy" (app_policy [ "firefox" ]);
  let flow = run_flow s ~user:"alice" ~exe:"/usr/bin/firefox" in
  let st1 = C.stats s.controller in
  let packet_ins_before = Net.packet_ins s.network in
  (* Re-send a packet of the same flow: it must ride the installed entry. *)
  let pkt = Identxx.Host.first_packet s.client ~flow in
  Net.send_from_host s.network ~name:"client" pkt;
  Sim.Engine.run s.engine;
  let st2 = C.stats s.controller in
  Alcotest.(check int) "no new flow decisions" st1.C.flows_seen st2.C.flows_seen;
  Alcotest.(check int) "no new packet-ins" packet_ins_before
    (Net.packet_ins s.network)

let test_denial_caching () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller)
    ~name:"00-policy" (app_policy [ "firefox" ]);
  let flow = run_flow s ~user:"mallory" ~exe:"/usr/bin/worm" in
  let packet_ins_before = Net.packet_ins s.network in
  let pkt = Identxx.Host.first_packet s.client ~flow in
  Net.send_from_host s.network ~name:"client" pkt;
  Sim.Engine.run s.engine;
  Alcotest.(check int) "denied flow cached as drop entry" packet_ins_before
    (Net.packet_ins s.network)

let test_silent_daemon_fails_closed () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller)
    ~name:"00-policy" (app_policy [ "firefox" ]);
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.client) Identxx.Daemon.Silent;
  ignore (run_flow s ~user:"alice" ~exe:"/usr/bin/firefox");
  let st = C.stats s.controller in
  Alcotest.(check int) "flow blocked" 1 st.C.blocked;
  Alcotest.(check int) "timeout recorded" 1 st.C.query_timeouts

let test_late_response_after_timeout_is_harmless () =
  (* A response that arrives after the query timeout finds no pending
     flow: it is treated as transit traffic and forwarded, never
     revising the already-made (fail-closed) decision. *)
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.client) Identxx.Daemon.Silent;
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.server) Identxx.Daemon.Silent;
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:80 ()
  in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;
  Alcotest.(check int) "timed out and blocked" 1 (C.stats s.controller).C.blocked;
  (* The "server's" answer finally limps in, long after the verdict. *)
  let late =
    Identxx.Wire.response_packet ~to_ip:(Identxx.Host.ip s.client)
      ~from_ip:(Identxx.Host.ip s.server) ~dst_port:49152
      (Identxx.Response.make ~flow
         [ [ Identxx.Key_value.pair "name" "firefox" ] ])
  in
  Net.send_from_host s.network ~name:"server" late;
  Sim.Engine.run s.engine;
  let st = C.stats s.controller in
  Alcotest.(check int) "decision unchanged" 1 st.C.blocked;
  Alcotest.(check int) "no retroactive allow" 0 st.C.allowed;
  Alcotest.(check int) "no pending resurrection" 0 (C.pending_count s.controller)

let test_lying_daemon_can_bypass_name_policy () =
  (* §5.3: a compromised end-host can send false responses; name-based
     policy alone cannot catch it (signatures can, see test_pf verify). *)
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller)
    ~name:"00-policy" (app_policy [ "firefox" ]);
  Identxx.Daemon.set_behaviour
    (Identxx.Host.daemon s.client)
    (Identxx.Daemon.Lying [ Identxx.Key_value.pair "name" "firefox" ]);
  ignore (run_flow s ~user:"mallory" ~exe:"/usr/bin/worm");
  let st = C.stats s.controller in
  Alcotest.(check int) "lying daemon admitted" 1 st.C.allowed

let test_keep_state_installs_reverse_path () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller)
    ~name:"00-policy"
    "block all\npass all with eq(@src[userID], alice) keep state";
  let flow = run_flow s ~user:"alice" ~exe:"/usr/bin/firefox" in
  let packet_ins_before = Net.packet_ins s.network in
  (* The server's reply must pass without a new controller decision. *)
  let reply = Packet.of_five_tuple (Five_tuple.reverse flow) in
  Net.send_from_host s.network ~name:"server" reply;
  Sim.Engine.run s.engine;
  Alcotest.(check int) "reply bypassed controller" packet_ins_before
    (Net.packet_ins s.network);
  let st = C.stats s.controller in
  Alcotest.(check int) "still one decision" 1 st.C.flows_seen

let test_no_keep_state_reply_needs_decision () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller)
    ~name:"00-policy" "block all\npass all with eq(@src[userID], alice)";
  let flow = run_flow s ~user:"alice" ~exe:"/usr/bin/firefox" in
  (* Reply flow has server as source: alice isn't there, so blocked. *)
  let reply = Packet.of_five_tuple (Five_tuple.reverse flow) in
  Net.send_from_host s.network ~name:"server" reply;
  Sim.Engine.run s.engine;
  let st = C.stats s.controller in
  Alcotest.(check int) "reply was a separate decision" 2 st.C.flows_seen;
  Alcotest.(check int) "reply blocked" 1 st.C.blocked

let test_query_targets_src_only () =
  let config = { C.default_config with C.query_targets = C.Src_only } in
  let s = Deploy.simple_network ~config () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller)
    ~name:"00-policy" (app_policy [ "firefox" ]);
  ignore (run_flow s ~user:"alice" ~exe:"/usr/bin/firefox");
  let st = C.stats s.controller in
  Alcotest.(check int) "only one query" 1 st.C.queries_sent;
  Alcotest.(check int) "allowed" 1 st.C.allowed

let test_local_answers_controller_only_deployment () =
  (* §4 Incremental Benefit: controllers implement ident++ but hosts
     don't — the controller answers from its own information. *)
  let config = { C.default_config with C.query_targets = C.Both } in
  let s = Deploy.simple_network ~config () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller)
    ~name:"00-policy" (app_policy [ "inventory-db" ]);
  (* Hosts' daemons are silent; the controller knows its assets. *)
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.client) Identxx.Daemon.Silent;
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.server) Identxx.Daemon.Silent;
  C.set_local_answers s.controller (fun addr ->
      if Ipv4.equal addr (Identxx.Host.ip s.client) then
        Some [ Identxx.Key_value.pair "name" "inventory-db" ]
      else if Ipv4.equal addr (Identxx.Host.ip s.server) then
        Some [ Identxx.Key_value.pair "name" "inventory-db" ]
      else None);
  ignore (run_flow s ~user:"svc" ~exe:"/opt/inventory-db");
  let st = C.stats s.controller in
  Alcotest.(check int) "no wire queries" 0 st.C.queries_sent;
  Alcotest.(check int) "answered locally" 2 st.C.queries_answered_locally;
  Alcotest.(check int) "allowed" 1 st.C.allowed

let test_policy_hot_reload () =
  let s = Deploy.simple_network () in
  let policy = C.policy s.controller in
  Identxx_core.Policy_store.add_exn policy ~name:"00-policy"
    (app_policy [ "firefox" ]);
  ignore (run_flow s ~user:"alice" ~exe:"/usr/bin/curl");
  Alcotest.(check int) "curl blocked" 1 (C.stats s.controller).C.blocked;
  (* Administrator adds curl to the approved list; new flows pass. *)
  Identxx_core.Policy_store.add_exn policy ~name:"00-policy"
    (app_policy [ "firefox"; "curl" ]);
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/curl" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:8080 ()
  in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;
  Alcotest.(check int) "curl now allowed" 1 (C.stats s.controller).C.allowed

let test_non_ip_packets_dropped () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00" "pass all";
  let arp =
    {
      Packet.eth_src = Mac.of_int 1;
      eth_dst = Mac.broadcast;
      vlan = Vlan.untagged;
      eth_payload = Packet.Raw_eth (Ethertype.Arp, "who-has");
    }
  in
  let dropped_before = Net.dropped s.network in
  Net.send_from_host s.network ~name:"client" arp;
  Sim.Engine.run s.engine;
  (* The packet-in reaches the controller, which ignores non-IP; the
     frame goes nowhere. *)
  Alcotest.(check int) "no decisions" 0 (C.stats s.controller).C.flows_seen;
  Alcotest.(check bool) "not delivered anywhere" true
    (Net.delivered s.network = 0 && Net.dropped s.network >= dropped_before)

let test_flow_to_unknown_destination_blocked () =
  (* A pass verdict toward an address outside the topology cannot be
     routed: no entries install and the buffered packet is never
     released. *)
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00" "pass all";
  let proc = Identxx.Host.run s.client ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(ip "203.0.113.7") ~dst_port:80 ()
  in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;
  Alcotest.(check int) "decision happened" 1 (C.stats s.controller).C.allowed;
  (* Only the ident++ query to the known source host was delivered; the
     data packet had nowhere to go. *)
  Alcotest.(check int) "only the query delivered" 1 (Net.delivered s.network)

let test_pipeline_agrees_with_pure_decision () =
  (* The networked pipeline (queries over the fabric, responses
     reassembled at the controller) must decide exactly like the pure
     Decision engine fed the daemons' direct answers. *)
  let policy_text =
    "allowed = \"{ firefox ssh }\"\n\
     block all\n\
     pass from any to any port 22 with member(@src[name], $allowed)\n\
     pass from any to any port 80 with eq(@src[name], firefox) with \
     gte(@src[version], 100)\n\
     block from any to any port 80 with eq(@src[userID], guest)"
  in
  let prng = Sim.Prng.create 4242 in
  let apps = [| "firefox"; "ssh"; "worm" |] in
  let users = [| "alice"; "guest" |] in
  for case = 0 to 19 do
    let app = Sim.Prng.pick prng apps in
    let user = Sim.Prng.pick prng users in
    let version = 50 + Sim.Prng.int prng 200 in
    let dst_port = if Sim.Prng.bool prng then 22 else 80 in
    (* Networked run. *)
    let s = Deploy.simple_network () in
    Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00"
      policy_text;
    let exe = "/usr/bin/" ^ app in
    (match
       Identxx.Daemon.load_config (Identxx.Host.daemon s.client) ~name:"10"
         (Printf.sprintf "@app %s {\nname : %s\nversion : %d\n}" exe app version)
     with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    let proc = Identxx.Host.run s.client ~user ~exe () in
    let flow =
      Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
        ~dst_port ()
    in
    Net.send_from_host s.network ~name:"client"
      (Identxx.Host.first_packet s.client ~flow);
    Sim.Engine.run s.engine;
    let networked = (C.stats s.controller).C.allowed = 1 in
    (* Pure run over the daemons' direct answers. *)
    let answer host ~peer =
      Option.map fst
        (Identxx.Daemon.answer (Identxx.Host.daemon host) ~peer
           ~proto:flow.Five_tuple.proto ~src_port:flow.Five_tuple.src_port
           ~dst_port:flow.Five_tuple.dst_port ~keys:[])
    in
    let input =
      {
        Identxx_core.Decision.flow;
        src_response = answer s.client ~peer:(Identxx.Host.ip s.server);
        dst_response = answer s.server ~peer:(Identxx.Host.ip s.client);
      }
    in
    let pure = Identxx_core.Decision.allows (C.decision s.controller) input in
    Alcotest.(check bool)
      (Printf.sprintf "case %d (%s/%s v%d :%d)" case app user version dst_port)
      pure networked
  done

(* --- multi-switch path installation --- *)

let test_entries_installed_along_path () =
  let engine, network, controller, hosts =
    Deploy.linear_network ~switches:3 ~hosts_per_switch:1 ()
  in
  Identxx_core.Policy_store.add_exn (C.policy controller) ~name:"00-policy"
    "pass all";
  let h1 = hosts.(0) and h3 = hosts.(2) in
  let proc = Identxx.Host.run h1 ~user:"alice" ~exe:"/usr/bin/firefox" () in
  let flow =
    Identxx.Host.connect h1 ~proc ~dst:(Identxx.Host.ip h3) ~dst_port:80 ()
  in
  Net.send_from_host network ~name:(Identxx.Host.name h1)
    (Identxx.Host.first_packet h1 ~flow);
  Sim.Engine.run engine;
  (* Every switch on the path holds an entry for the flow. *)
  List.iter
    (fun dpid ->
      let table = Openflow.Switch.table (Net.switch network dpid) in
      Alcotest.(check bool)
        (Printf.sprintf "switch %d has an entry" dpid)
        true
        (Openflow.Flow_table.size table > 0))
    [ 1; 2; 3 ];
  (* And only the first switch took a packet-in for the data flow. *)
  let st = C.stats controller in
  Alcotest.(check int) "one flow decision" 1 st.C.flows_seen

let test_ablation_ingress_only_installation () =
  let config = { C.default_config with C.install_along_path = false } in
  let engine, network, controller, hosts =
    Deploy.linear_network ~config ~switches:3 ~hosts_per_switch:1 ()
  in
  Identxx_core.Policy_store.add_exn (C.policy controller) ~name:"00-policy"
    "pass all";
  let h1 = hosts.(0) and h3 = hosts.(2) in
  let proc = Identxx.Host.run h1 ~user:"alice" ~exe:"/usr/bin/firefox" () in
  let flow =
    Identxx.Host.connect h1 ~proc ~dst:(Identxx.Host.ip h3) ~dst_port:80 ()
  in
  Net.send_from_host network ~name:(Identxx.Host.name h1)
    (Identxx.Host.first_packet h1 ~flow);
  Sim.Engine.run engine;
  (* Ingress-only installation: downstream switches miss, causing extra
     controller work for the same flow. *)
  let st = C.stats controller in
  Alcotest.(check bool) "more than one decision for one flow" true
    (st.C.flows_seen > 1)

(* --- interception across domains (§3.4 / §4 network collaboration) --- *)

let two_domain_network () =
  let engine = Sim.Engine.create () in
  let topology = Topo.create () in
  Topo.add_switch topology 1;
  Topo.add_switch topology 2;
  Topo.add_host topology "hA";
  Topo.add_host topology "hB";
  Topo.link topology (Topo.Host "hA", 0) (Topo.Sw 1, 1);
  Topo.link topology (Topo.Host "hB", 0) (Topo.Sw 2, 1);
  Topo.link topology (Topo.Sw 1, 2) (Topo.Sw 2, 2);
  let network = Net.create ~engine ~topology () in
  let cA = C.create ~network ~id:0 () in
  let cB = C.create ~network ~id:1 () in
  Net.assign_switch network 1 0;
  Net.assign_switch network 2 1;
  let hA =
    Identxx.Host.create ~name:"hA" ~mac:(Mac.of_int 1) ~ip:(ip "10.0.1.1") ()
  in
  let hB =
    Identxx.Host.create ~name:"hB" ~mac:(Mac.of_int 2) ~ip:(ip "10.0.2.1") ()
  in
  Deploy.attach_host network hA;
  Deploy.attach_host network hB;
  (engine, network, cA, cB, hA, hB)

let test_three_domain_transit_chain () =
  (* A response crossing TWO transit domains gets augmented by each
     (hop-by-hop forwarding, §3.4), and the querying controller sees
     both sections. *)
  let engine = Sim.Engine.create () in
  let topology = Topo.create () in
  List.iter (Topo.add_switch topology) [ 1; 2; 3 ];
  List.iter (Topo.add_host topology) [ "hA"; "hC" ];
  Topo.link topology (Topo.Host "hA", 0) (Topo.Sw 1, 1);
  Topo.link topology (Topo.Host "hC", 0) (Topo.Sw 3, 1);
  Topo.link topology (Topo.Sw 1, 2) (Topo.Sw 2, 2);
  Topo.link topology (Topo.Sw 2, 3) (Topo.Sw 3, 3);
  let network = Net.create ~engine ~topology () in
  let cA = C.create ~network ~id:0 () in
  let cB = C.create ~network ~id:1 () in
  let cC = C.create ~network ~id:2 () in
  Net.assign_switch network 1 0;
  Net.assign_switch network 2 1;
  Net.assign_switch network 3 2;
  (* hC's response toward hA packet-ins at s3 first (domain C), then at
     s2 (domain B); each controller appends its tag, so the querying
     controller reads the concatenation in transit order: "C,B". *)
  Identxx_core.Policy_store.add_exn (C.policy cA) ~name:"00"
    "block all\npass all with eq(*@dst[hop], \"C,B\")";
  Identxx_core.Policy_store.add_exn (C.policy cB) ~name:"00" "pass all";
  Identxx_core.Policy_store.add_exn (C.policy cC) ~name:"00" "pass all";
  C.set_response_augment cB (fun _ -> [ Identxx.Key_value.pair "hop" "B" ]);
  C.set_response_augment cC (fun _ -> [ Identxx.Key_value.pair "hop" "C" ]);
  let hA = Identxx.Host.create ~name:"hA" ~mac:(Mac.of_int 1) ~ip:(ip "10.0.1.1") () in
  let hC = Identxx.Host.create ~name:"hC" ~mac:(Mac.of_int 3) ~ip:(ip "10.0.3.1") () in
  List.iter (Deploy.attach_host network) [ hA; hC ];
  let proc = Identxx.Host.run hA ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect hA ~proc ~dst:(Identxx.Host.ip hC) ~dst_port:80 ()
  in
  Net.send_from_host network ~name:"hA" (Identxx.Host.first_packet hA ~flow);
  Sim.Engine.run engine;
  Alcotest.(check int) "admitted via two transit augments" 1
    (C.stats cA).C.allowed;
  Alcotest.(check bool) "both transits augmented" true
    ((C.stats cB).C.responses_augmented >= 1
    && (C.stats cC).C.responses_augmented >= 1)

let test_interception_augments_response () =
  let engine, network, cA, cB, hA, hB = two_domain_network () in
  (* Domain A admits flows only when domain B vouches for them: B's
     controller augments transiting responses with a branch tag. *)
  Identxx_core.Policy_store.add_exn (C.policy cA) ~name:"00"
    "block all\npass all with eq(@dst[branch], B)";
  Identxx_core.Policy_store.add_exn (C.policy cB) ~name:"00" "pass all";
  C.set_response_augment cB (fun _r ->
      [ Identxx.Key_value.pair "branch" "B" ]);
  let proc = Identxx.Host.run hA ~user:"u" ~exe:"/bin/app" () in
  let server_proc = Identxx.Host.run hB ~user:"svc" ~exe:"/bin/srv" () in
  Identxx.Host.listen hB ~proc:server_proc ~port:80 ();
  let flow =
    Identxx.Host.connect hA ~proc ~dst:(Identxx.Host.ip hB) ~dst_port:80 ()
  in
  Net.send_from_host network ~name:"hA" (Identxx.Host.first_packet hA ~flow);
  Sim.Engine.run engine;
  let stA = C.stats cA and stB = C.stats cB in
  Alcotest.(check int) "A allowed the flow" 1 stA.C.allowed;
  Alcotest.(check bool) "B augmented at least one response" true
    (stB.C.responses_augmented >= 1)

let test_interception_without_augment_blocks () =
  let engine, network, cA, cB, hA, hB = two_domain_network () in
  Identxx_core.Policy_store.add_exn (C.policy cA) ~name:"00"
    "block all\npass all with eq(@dst[branch], B)";
  Identxx_core.Policy_store.add_exn (C.policy cB) ~name:"00" "pass all";
  (* No augment hook: the branch tag never appears. *)
  let proc = Identxx.Host.run hA ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect hA ~proc ~dst:(Identxx.Host.ip hB) ~dst_port:80 ()
  in
  Net.send_from_host network ~name:"hA" (Identxx.Host.first_packet hA ~flow);
  Sim.Engine.run engine;
  Alcotest.(check int) "A blocked the flow" 1 (C.stats cA).C.blocked


let test_total_loss_fails_closed () =
  (* With the ident++ exchange lost on the wire, the decision falls to
     the query timeout with no responses; information-dependent policy
     fails closed. *)
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:80 ()
  in
  let pkt = Identxx.Host.first_packet s.client ~flow in
  (* The data packet reaches the switch, then all subsequent frames
     (queries and responses) are lost. *)
  Net.send_from_host s.network ~name:"client" pkt;
  Sim.Engine.run ~max_events:1 s.engine;
  Net.set_loss s.network ~rate:1.0 ();
  Sim.Engine.run s.engine;
  let st = C.stats s.controller in
  Alcotest.(check int) "blocked" 1 st.C.blocked;
  Alcotest.(check int) "timeout" 1 st.C.query_timeouts

let test_flow_stats_monitoring () =
  (* OpenFlow flow-stats: the controller snapshots a switch's table and
     sees the counters of installed entries. *)
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "pass all";
  let flow = run_flow s ~user:"alice" ~exe:"/usr/bin/firefox" in
  (* Two more packets ride the cached entry. *)
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;
  C.request_stats s.controller 1;
  Sim.Engine.run s.engine;
  match C.switch_stats s.controller 1 with
  | None -> Alcotest.fail "no stats reply"
  | Some reply ->
      Alcotest.(check bool) "has entries" true
        (List.length reply.Openflow.Message.st_flows >= 1);
      let data_entry =
        List.find_opt
          (fun (st : Openflow.Message.flow_stat) ->
            st.Openflow.Message.st_fields.Openflow.Match_fields.tp_dst = Some 80)
          reply.Openflow.Message.st_flows
      in
      (match data_entry with
      | Some st ->
          (* The first packet was released via packet-out `Table (one
             hit) plus two cached packets. *)
          Alcotest.(check int) "three packets counted" 3
            st.Openflow.Message.st_packets
      | None -> Alcotest.fail "no entry for the data flow")

let test_conn_state_survives_entry_expiry () =
  (* keep-state is connection state, not just reverse flow entries: a
     reply arriving after the cached entries idled out is re-admitted
     without a new ident++ exchange (PF evaluates state before rules). *)
  let config =
    { C.default_config with C.entry_idle_timeout = Some (Sim.Time.ms 1) }
  in
  let s = Deploy.simple_network ~config () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "block all\npass all with eq(@src[userID], alice) keep state";
  let flow = run_flow s ~user:"alice" ~exe:"/usr/bin/firefox" in
  (* Let the flow entries idle out (but not the 60 s connection state). *)
  Sim.Engine.schedule s.engine ~delay:(Sim.Time.ms 50) (fun () -> ());
  Sim.Engine.run s.engine;
  let queries_before = (C.stats s.controller).C.queries_sent in
  let delivered_before = Net.delivered s.network in
  let reply = Packet.of_five_tuple (Five_tuple.reverse flow) in
  Net.send_from_host s.network ~name:"server" reply;
  Sim.Engine.run s.engine;
  Alcotest.(check int) "no new queries for the stateful reply" queries_before
    (C.stats s.controller).C.queries_sent;
  Alcotest.(check bool) "reply delivered" true
    (Net.delivered s.network > delivered_before)

let test_query_retries_on_silent_daemon () =
  let config = { C.default_config with C.query_retries = 2 } in
  let s = Deploy.simple_network ~config () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.client) Identxx.Daemon.Silent;
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.server) Identxx.Daemon.Silent;
  ignore (run_flow s ~user:"alice" ~exe:"/usr/bin/firefox");
  let st = C.stats s.controller in
  Alcotest.(check int) "two retry rounds" 2 st.C.query_retries_sent;
  (* 2 initial + 2 per retry round. *)
  Alcotest.(check int) "six queries total" 6 st.C.queries_sent;
  Alcotest.(check int) "still fails closed" 1 st.C.blocked;
  Alcotest.(check int) "one timeout in the end" 1 st.C.query_timeouts

let test_retry_resends_only_to_silent_side () =
  (* One end answers, the other stays silent: the retry round must
     re-query only the silent side — the answered side's daemon sees
     exactly one query. *)
  let config = { C.default_config with C.query_retries = 1 } in
  let s = Deploy.simple_network ~config () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.server) Identxx.Daemon.Silent;
  ignore (run_flow s ~user:"alice" ~exe:"/usr/bin/firefox");
  let st = C.stats s.controller in
  Alcotest.(check int) "one retry round" 1 st.C.query_retries_sent;
  (* 2 initial + 1 retry aimed at the silent server only. *)
  Alcotest.(check int) "three queries total" 3 st.C.queries_sent;
  Alcotest.(check int) "client daemon queried exactly once" 1
    (Identxx.Daemon.queries_answered (Identxx.Host.daemon s.client));
  Alcotest.(check int) "one response" 1 st.C.responses_received;
  Alcotest.(check int) "one timeout at give-up" 1 st.C.query_timeouts;
  (* The rule reads only @src, which did answer: the flow passes. *)
  Alcotest.(check int) "decided with the answered side" 1 st.C.allowed

let test_retry_recovers_from_transient_loss () =
  let config = { C.default_config with C.query_retries = 3 } in
  let s = Deploy.simple_network ~config () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:80 ()
  in
  (* Lose everything during the first exchange, then heal the network
     before the first retry fires. *)
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run ~max_events:1 s.engine;
  Net.set_loss s.network ~rate:1.0 ();
  Sim.Engine.schedule s.engine ~delay:(Sim.Time.ms 4) (fun () ->
      Net.set_loss s.network ~rate:0.0 ());
  Sim.Engine.run s.engine;
  let st = C.stats s.controller in
  Alcotest.(check int) "allowed after retry" 1 st.C.allowed;
  Alcotest.(check bool) "at least one retry round" true
    (st.C.query_retries_sent >= 1)

let test_spoofed_response_accepted_without_signing () =
  (* Baseline: an attacker host fabricates the server's response and the
     controller, with signing off, believes it. *)
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "block all\npass all with eq(@dst[clearance], top)";
  (* The real server would never claim clearance=top. *)
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.server) Identxx.Daemon.Silent;
  let proc = Identxx.Host.run s.client ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:80 ()
  in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  (* The client host also plays attacker: it injects a response that
     claims to come from the server. *)
  let fake =
    Identxx.Wire.response_packet ~to_ip:(Identxx.Host.ip s.client)
      ~from_ip:(Identxx.Host.ip s.server) ~dst_port:49152
      (Identxx.Response.make ~flow
         [ [ Identxx.Key_value.pair "clearance" "top" ] ])
  in
  Sim.Engine.schedule s.engine ~delay:(Sim.Time.us 200) (fun () ->
      Net.send_from_host s.network ~name:"client" fake);
  Sim.Engine.run s.engine;
  Alcotest.(check int) "spoof believed without signing" 1
    (C.stats s.controller).C.allowed

let test_spoofed_response_rejected_with_signing () =
  let config = { C.default_config with C.require_signed_responses = true } in
  let s = Deploy.simple_network ~config () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "block all\npass all with eq(@dst[clearance], top)";
  (* Hosts hold keys the controller trusts. *)
  let client_key = Idcrypto.Sign.generate "client-host" in
  let server_key = Idcrypto.Sign.generate "server-host" in
  Idcrypto.Sign.register (C.keystore s.controller) client_key;
  Idcrypto.Sign.register (C.keystore s.controller) server_key;
  Identxx.Host.set_signing_key s.client (Some client_key);
  Identxx.Host.set_signing_key s.server (Some server_key);
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.server) Identxx.Daemon.Silent;
  let proc = Identxx.Host.run s.client ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:80 ()
  in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  let fake =
    Identxx.Wire.response_packet ~to_ip:(Identxx.Host.ip s.client)
      ~from_ip:(Identxx.Host.ip s.server) ~dst_port:49152
      (Identxx.Response.make ~flow
         [ [ Identxx.Key_value.pair "clearance" "top" ] ])
  in
  Sim.Engine.schedule s.engine ~delay:(Sim.Time.us 200) (fun () ->
      Net.send_from_host s.network ~name:"client" fake);
  Sim.Engine.run s.engine;
  let st = C.stats s.controller in
  Alcotest.(check bool) "spoof rejected" true (st.C.responses_rejected >= 1);
  Alcotest.(check int) "flow fails closed" 1 st.C.blocked

let test_signed_responses_accepted_when_valid () =
  let config = { C.default_config with C.require_signed_responses = true } in
  let s = Deploy.simple_network ~config () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    (app_policy [ "firefox" ]);
  let client_key = Idcrypto.Sign.generate "client-host" in
  let server_key = Idcrypto.Sign.generate "server-host" in
  Idcrypto.Sign.register (C.keystore s.controller) client_key;
  Idcrypto.Sign.register (C.keystore s.controller) server_key;
  Identxx.Host.set_signing_key s.client (Some client_key);
  Identxx.Host.set_signing_key s.server (Some server_key);
  ignore (run_flow s ~user:"alice" ~exe:"/usr/bin/firefox");
  let st = C.stats s.controller in
  Alcotest.(check int) "signed responses admitted" 1 st.C.allowed;
  Alcotest.(check int) "nothing rejected" 0 st.C.responses_rejected

let test_policy_configured_local_answers () =
  (* The S3.4 PF+=2 extensions: a policy file configures the controller
     to answer queries on behalf of hosts — no OCaml hook needed. *)
  let s = Deploy.simple_network () in
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.client) Identxx.Daemon.Silent;
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.server) Identxx.Daemon.Silent;
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "intercept query to any answer { asset-class : kiosk }\n\
     block all\n\
     pass all with eq(@src[asset-class], kiosk)";
  ignore (run_flow s ~user:"u" ~exe:"/bin/app");
  let st = C.stats s.controller in
  Alcotest.(check int) "no wire queries" 0 st.C.queries_sent;
  Alcotest.(check int) "answered from policy" 2 st.C.queries_answered_locally;
  Alcotest.(check int) "allowed via policy-supplied pairs" 1 st.C.allowed

let test_policy_configured_augment () =
  (* Branch collaboration configured purely in the .control file. *)
  let engine, network, cA, cB, hA, hB = two_domain_network () in
  Identxx_core.Policy_store.add_exn (C.policy cA) ~name:"00"
    "block all\npass all with eq(@dst[branch], B)";
  Identxx_core.Policy_store.add_exn (C.policy cB) ~name:"00"
    "pass all\nintercept response to !10.0.2.0/24 augment { branch : B }";
  let proc = Identxx.Host.run hA ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect hA ~proc ~dst:(Identxx.Host.ip hB) ~dst_port:80 ()
  in
  Net.send_from_host network ~name:"hA" (Identxx.Host.first_packet hA ~flow);
  Sim.Engine.run engine;
  Alcotest.(check int) "A allowed via policy-configured augment" 1
    (C.stats cA).C.allowed

(* --- proactive quick-block compilation (line-rate enforcement, S6) --- *)

let test_precompiled_block_never_reaches_controller () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "block quick from any to any port 445\npass all";
  Sim.Engine.run s.engine;
  (* propagate the proactive flow-mods *)
  let packet_ins_before = Net.packet_ins s.network in
  let proc = Identxx.Host.run s.client ~user:"worm" ~exe:"/bin/worm" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:445 ()
  in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;
  Alcotest.(check int) "no packet-in for precompiled block" packet_ins_before
    (Net.packet_ins s.network);
  Alcotest.(check int) "controller never consulted" 0
    (C.stats s.controller).C.flows_seen;
  (* Other traffic still goes reactive and passes. *)
  ignore (run_flow s ~user:"alice" ~exe:"/usr/bin/firefox");
  Alcotest.(check int) "reactive path intact" 1 (C.stats s.controller).C.allowed

let test_precompiled_sync_on_policy_change () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "block quick from any to any port 445\npass all";
  Sim.Engine.run s.engine;
  let table = Openflow.Switch.table (Net.switch s.network 1) in
  Alcotest.(check int) "one proactive entry" 1 (Openflow.Flow_table.size table);
  (* Replace the policy: the old proactive entry must disappear and the
     new one appear. *)
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "block quick from any to any port 23\npass all";
  Sim.Engine.run s.engine;
  let entries = Openflow.Flow_table.entries table in
  Alcotest.(check int) "still one proactive entry" 1 (List.length entries);
  (match entries with
  | [ e ] ->
      Alcotest.(check bool) "matches port 23" true
        (e.Openflow.Flow_entry.fields.Openflow.Match_fields.tp_dst = Some 23)
  | _ -> Alcotest.fail "expected exactly one entry")

let test_precompile_stops_at_informational_quick () =
  (* A quick rule needing end-host info blocks compilation of anything
     after it, but leading network-only quick blocks still compile. *)
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "block quick from any to any port 445\n\
     block quick all with eq(@src[name], worm)\n\
     block quick from any to any port 23\n\
     pass all";
  Sim.Engine.run s.engine;
  let table = Openflow.Switch.table (Net.switch s.network 1) in
  let entries = Openflow.Flow_table.entries table in
  Alcotest.(check int) "only the leading rule compiled" 1 (List.length entries)

let test_precompile_expands_tables_and_ranges () =
  let env =
    match
      Pf.Env.of_string
        "table <bad> { 203.0.113.0/24 198.51.100.0/24 }\n\
         block quick from <bad> to any port 8000:8003\npass all"
    with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let matches = Identxx_core.Precompile.drop_matches env in
  (* 2 prefixes x 4 ports. *)
  Alcotest.(check int) "cross product" 8 (List.length matches)

let test_precompile_rejects_negation_and_big_ranges () =
  let check_empty policy =
    match Pf.Env.of_string policy with
    | Ok env ->
        Alcotest.(check int)
          ("not compilable: " ^ policy)
          0
          (List.length (Identxx_core.Precompile.drop_matches env))
    | Error e -> Alcotest.fail e
  in
  check_empty "table <t> {10.0.0.0/8}\nblock quick from !<t> to any";
  check_empty "block quick from any to any port 1:10000";
  check_empty "block quick log from any to any port 445";
  check_empty "block quick all with eq(@src[name], x)";
  (* Non-quick blocks are never precompiled (they can be overridden). *)
  check_empty "block from any to any port 445"

let test_tree_network_cross_pod_flow () =
  (* depth-3 binary tree: 7 switches, 4 leaves. A flow between hosts in
     different pods must traverse the root and install entries on every
     switch of the path. *)
  let engine, network, controller, hosts =
    Deploy.tree_network ~depth:3 ~fanout:2 ~hosts_per_edge:1 ()
  in
  Identxx_core.Policy_store.add_exn (C.policy controller) ~name:"00" "pass all";
  Alcotest.(check int) "four leaf hosts" 4 (Array.length hosts);
  let src = hosts.(0) and dst = hosts.(3) in
  let proc = Identxx.Host.run src ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect src ~proc ~dst:(Identxx.Host.ip dst) ~dst_port:80 ()
  in
  let delivered_before = Net.delivered network in
  Net.send_from_host network ~name:(Identxx.Host.name src)
    (Identxx.Host.first_packet src ~flow);
  Sim.Engine.run engine;
  Alcotest.(check bool) "delivered across pods" true
    (Net.delivered network > delivered_before);
  Alcotest.(check int) "one decision" 1 (C.stats controller).C.flows_seen;
  (* Path: leaf -> aggregation -> root -> aggregation -> leaf = 5 switches. *)
  let with_entries =
    List.length
      (List.filter
         (fun dpid ->
           Openflow.Flow_table.size (Openflow.Switch.table (Net.switch network dpid)) > 0)
         [ 1; 2; 3; 4; 5; 6; 7 ])
  in
  Alcotest.(check int) "entries on the 5-switch path" 5 with_entries

let test_poisson_driven_enterprise () =
  (* Time-driven load over the fabric: Poisson arrivals scheduled on the
     engine, everything decided by policy, accounting must balance. *)
  let engine, network, controller, hosts =
    Deploy.linear_network ~switches:3 ~hosts_per_switch:4 ()
  in
  Identxx_core.Policy_store.add_exn (C.policy controller) ~name:"00"
    "block all\npass all with eq(@src[userID], user) keep state";
  let prng = Sim.Prng.create 99 in
  let sends = ref 0 in
  (* Pick random (src, dst) host pairs at Poisson times. *)
  let rec schedule t =
    let t = t +. Sim.Prng.exponential prng ~mean:0.02 in
    if t < 2.0 then begin
      Sim.Engine.schedule engine ~delay:(Sim.Time.of_float_s t) (fun () ->
          let src = hosts.(Sim.Prng.int prng (Array.length hosts)) in
          let dst = hosts.(Sim.Prng.int prng (Array.length hosts)) in
          if Identxx.Host.ip src <> Identxx.Host.ip dst then begin
            incr sends;
            let proc = Identxx.Host.run src ~user:"user" ~exe:"/bin/app" () in
            let flow =
              Identxx.Host.connect src ~proc ~dst:(Identxx.Host.ip dst)
                ~dst_port:80 ()
            in
            Net.send_from_host network ~name:(Identxx.Host.name src)
              (Identxx.Host.first_packet src ~flow)
          end);
      schedule t
    end
  in
  schedule 0.0;
  Sim.Engine.run engine;
  let st = C.stats controller in
  Alcotest.(check bool) "a real load ran" true (!sends > 50);
  (* Keep-state admissions may bypass decisions, so allowed+blocked can
     be <= sends, but nothing may be lost or erroneous. *)
  Alcotest.(check bool) "decisions bounded by sends" true
    (st.C.allowed + st.C.blocked <= !sends);
  Alcotest.(check int) "no eval errors" 0 st.C.eval_errors;
  Alcotest.(check int) "no timeouts" 0 st.C.query_timeouts;
  Alcotest.(check int) "nothing left pending" 0 (C.pending_count controller)

(* --- audit and revocation (S1: "override, audit, and revoke") --- *)

let test_audit_records_decisions () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "block all\npass log all with eq(@src[name], firefox)";
  ignore (run_flow s ~user:"alice" ~exe:"/usr/bin/firefox");
  ignore (run_flow s ~user:"bob" ~exe:"/usr/bin/worm");
  let audit = C.audit s.controller in
  Alcotest.(check int) "two decisions" 2 (Identxx_core.Audit.count audit);
  Alcotest.(check int) "one blocked" 1 (Identxx_core.Audit.blocked_count audit);
  let flagged = Identxx_core.Audit.flagged audit in
  Alcotest.(check int) "only the log rule flags" 1 (List.length flagged);
  (match flagged with
  | [ e ] ->
      Alcotest.(check bool) "records the pass" true
        (e.Identxx_core.Audit.decision = Pf.Ast.Pass);
      Alcotest.(check bool) "summarizes source info" true
        (List.mem_assoc "userID" e.Identxx_core.Audit.src_info)
  | _ -> Alcotest.fail "expected one flagged entry");
  (* The blocked flow's entry records the default/block. *)
  let blocked =
    List.find
      (fun (e : Identxx_core.Audit.entry) -> e.decision = Pf.Ast.Block)
      (Identxx_core.Audit.entries audit)
  in
  Alcotest.(check bool) "blocked entry has rule line" true
    (blocked.Identxx_core.Audit.rule_line <> None)

let test_revocation_takes_immediate_effect () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-base"
    "block all";
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"50-grant"
    "pass all with eq(@src[userID], alice)";
  let flow = run_flow s ~user:"alice" ~exe:"/usr/bin/firefox" in
  Alcotest.(check int) "granted" 1 (C.stats s.controller).C.allowed;
  (* Revoke: policy file removed AND caches flushed. *)
  C.revoke_file s.controller ~name:"50-grant";
  Sim.Engine.run s.engine;
  (* The same flow's next packet must be re-decided and blocked. *)
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;
  let st = C.stats s.controller in
  Alcotest.(check int) "re-decided" 2 st.C.flows_seen;
  Alcotest.(check int) "now blocked" 1 st.C.blocked

let test_without_flush_cache_serves_stale_policy () =
  (* The ablation: removing the file without flushing leaves the cached
     entry serving the revoked policy. *)
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-base"
    "block all";
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"50-grant"
    "pass all with eq(@src[userID], alice)";
  let flow = run_flow s ~user:"alice" ~exe:"/usr/bin/firefox" in
  Identxx_core.Policy_store.remove (C.policy s.controller) ~name:"50-grant";
  let delivered_before = Net.delivered s.network in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;
  Alcotest.(check int) "no new decision (stale cache)" 1
    (C.stats s.controller).C.flows_seen;
  Alcotest.(check bool) "packet still delivered" true
    (Net.delivered s.network > delivered_before)

let test_flush_is_domain_scoped () =
  (* Two controllers share the fabric; revoking policy in domain A must
     not disturb domain B's cached entries. *)
  let engine, network, cA, cB, hA, hB = two_domain_network () in
  Identxx_core.Policy_store.add_exn (C.policy cA) ~name:"00" "pass all";
  Identxx_core.Policy_store.add_exn (C.policy cB) ~name:"00" "pass all";
  (* hB talks locally within domain B to populate switch 2's table. *)
  let procB = Identxx.Host.run hB ~user:"u" ~exe:"/bin/app" () in
  let flowB =
    Identxx.Host.connect hB ~proc:procB ~dst:(Identxx.Host.ip hA) ~dst_port:80 ()
  in
  Net.send_from_host network ~name:"hB" (Identxx.Host.first_packet hB ~flow:flowB);
  Sim.Engine.run engine;
  let s2_entries () =
    Openflow.Flow_table.size (Openflow.Switch.table (Net.switch network 2))
  in
  let before = s2_entries () in
  Alcotest.(check bool) "domain B has cached entries" true (before > 0);
  (* Flush domain A only. *)
  C.flush_cache cA;
  Sim.Engine.run engine;
  Alcotest.(check int) "domain B untouched" before (s2_entries ());
  Alcotest.(check int) "domain A cleared" 0
    (Openflow.Flow_table.size (Openflow.Switch.table (Net.switch network 1)))

let test_update_file_flushes () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-policy"
    "pass all";
  let flow = run_flow s ~user:"alice" ~exe:"/usr/bin/firefox" in
  (match C.update_file s.controller ~name:"00-policy" "block all" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Sim.Engine.run s.engine;
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;
  Alcotest.(check int) "blocked after update" 1 (C.stats s.controller).C.blocked

let () =
  Alcotest.run "controller"
    [
      ( "figure1",
        [
          Alcotest.test_case "allowed flow delivered" `Quick
            test_fig1_allowed_flow_delivered;
          Alcotest.test_case "blocked flow not delivered" `Quick
            test_fig1_blocked_flow_not_delivered;
          Alcotest.test_case "event sequence" `Quick test_fig1_event_sequence;
          Alcotest.test_case "udp end to end" `Quick test_udp_flow_end_to_end;
        ] );
      ( "caching",
        [
          Alcotest.test_case "second packet bypasses controller" `Quick
            test_caching_second_packet_bypasses_controller;
          Alcotest.test_case "denial caching" `Quick test_denial_caching;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "silent daemon fails closed" `Quick
            test_silent_daemon_fails_closed;
          Alcotest.test_case "lying daemon bypasses name policy" `Quick
            test_lying_daemon_can_bypass_name_policy;
          Alcotest.test_case "late response harmless" `Quick
            test_late_response_after_timeout_is_harmless;
        ] );
      ( "state",
        [
          Alcotest.test_case "keep state reverse path" `Quick
            test_keep_state_installs_reverse_path;
          Alcotest.test_case "no keep state means new decision" `Quick
            test_no_keep_state_reply_needs_decision;
        ] );
      ( "deployment modes",
        [
          Alcotest.test_case "src-only queries" `Quick
            test_query_targets_src_only;
          Alcotest.test_case "controller-only (local answers)" `Quick
            test_local_answers_controller_only_deployment;
          Alcotest.test_case "policy hot reload" `Quick test_policy_hot_reload;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "pipeline agrees with pure decision" `Quick
            test_pipeline_agrees_with_pure_decision;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "non-ip dropped" `Quick test_non_ip_packets_dropped;
          Alcotest.test_case "unknown destination" `Quick
            test_flow_to_unknown_destination_blocked;
        ] );
      ( "paths",
        [
          Alcotest.test_case "entries along path" `Quick
            test_entries_installed_along_path;
          Alcotest.test_case "ingress-only ablation" `Quick
            test_ablation_ingress_only_installation;
        ] );
      ( "state & retries",
        [
          Alcotest.test_case "conn state survives entry expiry" `Quick
            test_conn_state_survives_entry_expiry;
          Alcotest.test_case "retries on silent daemon" `Quick
            test_query_retries_on_silent_daemon;
          Alcotest.test_case "retry targets only the silent side" `Quick
            test_retry_resends_only_to_silent_side;
          Alcotest.test_case "retry recovers from loss" `Quick
            test_retry_recovers_from_transient_loss;
        ] );
      ( "signed responses",
        [
          Alcotest.test_case "spoof accepted without signing" `Quick
            test_spoofed_response_accepted_without_signing;
          Alcotest.test_case "spoof rejected with signing" `Quick
            test_spoofed_response_rejected_with_signing;
          Alcotest.test_case "valid signatures accepted" `Quick
            test_signed_responses_accepted_when_valid;
        ] );
      ( "policy intercepts",
        [
          Alcotest.test_case "local answers from policy" `Quick
            test_policy_configured_local_answers;
          Alcotest.test_case "augment from policy" `Quick
            test_policy_configured_augment;
        ] );
      ( "precompile",
        [
          Alcotest.test_case "precompiled block bypasses controller" `Quick
            test_precompiled_block_never_reaches_controller;
          Alcotest.test_case "sync on policy change" `Quick
            test_precompiled_sync_on_policy_change;
          Alcotest.test_case "stops at informational quick" `Quick
            test_precompile_stops_at_informational_quick;
          Alcotest.test_case "expands tables and ranges" `Quick
            test_precompile_expands_tables_and_ranges;
          Alcotest.test_case "rejects negation and big ranges" `Quick
            test_precompile_rejects_negation_and_big_ranges;
        ] );
      ( "robustness & monitoring",
        [
          Alcotest.test_case "total loss fails closed" `Quick
            test_total_loss_fails_closed;
          Alcotest.test_case "flow stats monitoring" `Quick
            test_flow_stats_monitoring;
        ] );
      ( "time-driven load",
        [
          Alcotest.test_case "poisson enterprise" `Quick
            test_poisson_driven_enterprise;
          Alcotest.test_case "tree cross-pod flow" `Quick
            test_tree_network_cross_pod_flow;
        ] );
      ( "audit & revoke",
        [
          Alcotest.test_case "audit records decisions" `Quick
            test_audit_records_decisions;
          Alcotest.test_case "revocation immediate" `Quick
            test_revocation_takes_immediate_effect;
          Alcotest.test_case "stale cache without flush" `Quick
            test_without_flush_cache_serves_stale_policy;
          Alcotest.test_case "update flushes" `Quick test_update_file_flushes;
          Alcotest.test_case "flush is domain-scoped" `Quick
            test_flush_is_domain_scoped;
        ] );
      ( "interception",
        [
          Alcotest.test_case "augment admits" `Quick
            test_interception_augments_response;
          Alcotest.test_case "three-domain transit chain" `Quick
            test_three_domain_transit_chain;
          Alcotest.test_case "no augment blocks" `Quick
            test_interception_without_augment_blocks;
        ] );
    ]

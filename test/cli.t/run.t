The identxx_ctl CLI validates, formats and evaluates PF+=2 policies.

Validate a policy:

  $ cat > site.control <<'POLICY'
  > table <lan> { 192.168.0.0/24 }
  > block all
  > pass from <lan> to any with eq(@src[name], firefox) keep state
  > POLICY
  $ identxx_ctl check site.control
  OK: 1 files, 2 rules, tables: lan

A parse error is reported with its line:

  $ cat > broken.control <<'POLICY'
  > block all
  > pass frm any to any
  > POLICY
  $ identxx_ctl check broken.control
  error: broken: line 2: unexpected frm in rule
  [1]

Pretty-print normalizes layout:

  $ identxx_ctl fmt site.control
  table <lan> { 192.168.0.0/24 }
  block all
  pass from <lan> to any with eq(@src[name], firefox) keep state

Evaluate flows (exit 0 = pass, 2 = block):

  $ identxx_ctl eval -p site.control --flow "tcp 192.168.0.10:40000 -> 8.8.8.8:443" --src name=firefox
  tcp 192.168.0.10:40000 -> 8.8.8.8:443 => pass (line 3: pass from <lan> to any with eq(@src[name], firefox) keep state)

  $ identxx_ctl eval -p site.control --flow "tcp 192.168.0.10:40000 -> 8.8.8.8:443" --src name=skype
  tcp 192.168.0.10:40000 -> 8.8.8.8:443 => block (line 2: block all)
  [2]

Daemon configuration linting:

  $ cat > app.conf <<'CONF'
  > @app /usr/bin/skype {
  > name : skype
  > requirements : pass from any port http with eq(@src[name], skype)
  > req-sig : abc123
  > }
  > CONF
  $ identxx_ctl daemon-check app.conf
  app.conf: OK (0 global pairs, 1 @app blocks)

  $ cat > unsigned.conf <<'CONF'
  > @app /usr/bin/tool {
  > name : tool
  > requirements : pass all
  > }
  > CONF
  $ identxx_ctl daemon-check unsigned.conf
  unsigned.conf: warning: @app /usr/bin/tool has requirements but no req-sig
  unsigned.conf: OK (0 global pairs, 1 @app blocks)

The signing workflow drives the delegation figures from the shell
(deterministic keys, so output is stable):

  $ identxx_ctl keygen research
  owner:  research
  public: pkac0947a98f887778ef589374141c3dca8954efbd
  secret: 2e85b546aa893125dc279e7374e1f494dda46293b9a1663d5f9269cdb5679a7e

  $ identxx_ctl sign --secret 2e85b546aa893125dc279e7374e1f494dda46293b9a1663d5f9269cdb5679a7e hash research-app "pass all"
  16aa066c19f2ab71538ce84c56dd1213ff16a930efc113e60c1de1e23b9f24f9

  $ identxx_ctl verify --public pkac0947a98f887778ef589374141c3dca8954efbd \
  >   --secret 2e85b546aa893125dc279e7374e1f494dda46293b9a1663d5f9269cdb5679a7e \
  >   --signature 16aa066c19f2ab71538ce84c56dd1213ff16a930efc113e60c1de1e23b9f24f9 \
  >   hash research-app "pass all"
  valid

  $ identxx_ctl verify --public pkac0947a98f887778ef589374141c3dca8954efbd \
  >   --secret 2e85b546aa893125dc279e7374e1f494dda46293b9a1663d5f9269cdb5679a7e \
  >   --signature 16aa066c19f2ab71538ce84c56dd1213ff16a930efc113e60c1de1e23b9f24f9 \
  >   hash research-app "pass none"
  INVALID
  [2]

Policy linting finds dead and duplicated rules:

  $ cat > lint.control <<'POLICY'
  > pass from any to any port 80
  > block quick all
  > pass from any to any port 443
  > POLICY
  $ identxx_ctl analyze lint.control
  lint.control: line 3: warning [dead-after-quick-all] unreachable: the quick rule at line 2 decides every flow
  [2]

  $ identxx_ctl analyze site.control
  no findings in 1 file(s)

--trace shows how each rule fared (=> decided, * matched-but-overridden):

  $ identxx_ctl eval -p site.control --trace \
  >   --flow "tcp 192.168.0.10:40000 -> 8.8.8.8:443" --src name=firefox
  *  line 2   block all
  => line 3   pass from <lan> to any with eq(@src[name], firefox) keep state
  tcp 192.168.0.10:40000 -> 8.8.8.8:443 => pass (line 3: pass from <lan> to any with eq(@src[name], firefox) keep state)

Deep flow-space analysis reasons about the whole ruleset at once:
shadowing under quick/last-match semantics, pass/block conflicts with
a witness flow, undefined table references, and dictionary keys no
daemon configuration can answer:

  $ cat > deep.control <<'POLICY'
  > block quick from 10.0.0.0/8 to any
  > pass from 10.0.0.0/16 to any port 22
  > pass from any to any port 80:90
  > pass from any to <ghost> port 443
  > block from any to any with eq(@dst[machine-room], dmz)
  > POLICY
  $ cat > host.identxx.conf <<'CONF'
  > os-name : Linux
  > CONF
  $ identxx_ctl analyze --deep deep.control host.identxx.conf | grep -v default-fallthrough
  deep.control:2: warning [shadowed-rule] this rule never decides a flow: earlier quick rules (deep.control:1) decide every flow before it is reached
  deep.control:3: warning [rule-conflict] partially overlaps the block rule at deep.control:1 with the opposite action; rule order alone decides the overlap (witness: tcp 10.0.0.0:0 -> 0.0.0.0:80)
  deep.control:4: error [undefined-table] table <ghost> is never defined
  deep.control:5: warning [unanswerable-key] @dst[machine-room] can never be answered: none of the 1 daemon config(s) defines 'machine-room', it is not a built-in key, and no intercept supplies it (the condition is false unless registered at runtime)
  1 error(s), 3 warning(s), 1 info in 1 file(s)

The exit code is 1 iff an error-severity finding exists; warnings and
info alone exit 0:

  $ identxx_ctl analyze --deep deep.control host.identxx.conf >/dev/null
  [1]

  $ cat > warn.control <<'POLICY'
  > block quick all
  > pass from any to any port 80
  > POLICY
  $ identxx_ctl analyze --deep warn.control
  (whole ruleset): info [default-fallthrough] no flow reaches the implicit default: unconditional rules cover the whole flow-space
  warn.control:2: warning [shadowed-rule] this rule never decides a flow: earlier quick rules (warn.control:1) decide every flow before it is reached
  0 error(s), 1 warning(s), 1 info in 1 file(s)

Findings are also available as JSON for tooling:

  $ identxx_ctl analyze --deep --format json warn.control
  [{"file": "", "line": 0, "severity": "info", "code": "default-fallthrough", "message": "no flow reaches the implicit default: unconditional rules cover the whole flow-space"},
   {"file": "warn.control", "line": 2, "severity": "warning", "code": "shadowed-rule", "message": "this rule never decides a flow: earlier quick rules (warn.control:1) decide every flow before it is reached"}]

  $ identxx_ctl analyze --deep site.control
  (whole ruleset): info [default-fallthrough] no flow reaches the implicit default: unconditional rules cover the whole flow-space
  0 error(s), 0 warning(s), 1 info in 1 file(s)

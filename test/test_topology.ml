(* Tests for the precomputed routing state (lib/openflow/routing.ml,
   doc/TOPOLOGY.md) and the generated fabrics (lib/workload/fabric.ml).

   The load-bearing property: after ANY sequence of link up/down and
   host attach/detach events, [Topology.next_hop] must agree with a
   from-scratch Dijkstra oracle on every (switch, host) pair. The
   incremental engine repairs only the trees a flap touched, so the
   oracle is what keeps "skipped" from quietly meaning "stale". Routes
   are compared by cost, not by port choice, so the check is robust to
   equal-cost tie-breaks. *)

module Topo = Openflow.Topology
module Fabric = Workload.Fabric

let check = Alcotest.check
let fail = Alcotest.fail
let weight lat = max 1 (Sim.Time.to_ns lat)

(* --- from-scratch Dijkstra oracle over Topology.links ----------------- *)

(* Distances from every switch to [dst_sw], over Sw-Sw links only
   (hosts do not transit), naive O(V^2) — independent of the
   incremental engine by construction. *)
let oracle_dists topology ~dst_sw =
  let adj = Hashtbl.create 64 in
  List.iter
    (fun (l : Topo.link) ->
      match (l.Topo.a.Topo.node, l.Topo.b.Topo.node) with
      | Topo.Sw x, Topo.Sw y ->
          let w = weight l.Topo.latency in
          Hashtbl.add adj x (y, w);
          Hashtbl.add adj y (x, w)
      | _ -> ())
    (Topo.links topology);
  let dist = Hashtbl.create 64 in
  let visited = Hashtbl.create 64 in
  Hashtbl.replace dist dst_sw 0;
  let switches = Topo.switches topology in
  let rec settle () =
    let best =
      List.fold_left
        (fun acc s ->
          if Hashtbl.mem visited s then acc
          else
            match (Hashtbl.find_opt dist s, acc) with
            | None, _ -> acc
            | Some d, None -> Some (s, d)
            | Some d, Some (_, bd) -> if d < bd then Some (s, d) else acc)
        None switches
    in
    match best with
    | None -> ()
    | Some (u, du) ->
        Hashtbl.replace visited u ();
        List.iter
          (fun (v, w) ->
            match Hashtbl.find_opt dist v with
            | Some d when d <= du + w -> ()
            | _ -> Hashtbl.replace dist v (du + w))
          (Hashtbl.find_all adj u);
        settle ()
  in
  settle ();
  dist

(* Walk the next_hop chain from [from] toward [dst_host], accumulating
   Sw-Sw link weights; the walk must terminate at the host and cost
   exactly the oracle distance (or both must say unreachable). *)
let check_route topology ~from ~dst_host ~expected =
  let rec walk cur acc steps =
    if steps > 1_000 then fail "next_hop walk did not terminate (loop?)"
    else
      match Topo.next_hop topology ~from:cur ~dst_host with
      | None -> None
      | Some port -> (
          match Topo.wire topology (Topo.Sw cur) port with
          | None -> fail "next_hop points at an unwired port"
          | Some ({ Topo.node = Topo.Host h; _ }, _) ->
              if h = dst_host then Some acc
              else fail ("next_hop walked into wrong host " ^ h)
          | Some ({ Topo.node = Topo.Sw nxt; _ }, lat) ->
              walk nxt (acc + weight lat) (steps + 1))
  in
  let label = Printf.sprintf "s%d -> %s" from dst_host in
  match (walk from 0 0, expected) with
  | None, None -> ()
  | Some cost, Some d -> check Alcotest.int (label ^ " cost") d cost
  | Some _, None -> fail (label ^ ": routed where oracle says unreachable")
  | None, Some _ -> fail (label ^ ": unreachable where oracle says routable")

(* Every (switch, host) pair against the oracle. *)
let check_all_pairs topology =
  List.iter
    (fun dst_host ->
      match Topo.host_attachment topology dst_host with
      | None -> ()
      | Some att ->
          let dst_sw =
            match att.Topo.node with
            | Topo.Sw d -> d
            | Topo.Host _ -> fail "host attachment is not a switch"
          in
          let dists = oracle_dists topology ~dst_sw in
          List.iter
            (fun s ->
              check_route topology ~from:s ~dst_host
                ~expected:(Hashtbl.find_opt dists s))
            (Topo.switches topology))
    (Topo.hosts topology)

(* --- the property: random event churn vs the oracle ------------------- *)

let sw_sw_links topology =
  List.filter
    (fun (l : Topo.link) ->
      match (l.Topo.a.Topo.node, l.Topo.b.Topo.node) with
      | Topo.Sw _, Topo.Sw _ -> true
      | _ -> false)
    (Topo.links topology)

let churn_property ~spec ~seed ~events () =
  let prng = Sim.Prng.create seed in
  let fab = Fabric.build spec in
  let topology = fab.Fabric.topology in
  check_all_pairs topology;
  let downed = ref [] in
  let fresh = ref 0 in
  for _ = 1 to events do
    (match Sim.Prng.int prng 4 with
    | 0 -> (
        (* link-down: a random switch-switch link *)
        match sw_sw_links topology with
        | [] -> ()
        | ls ->
            let l = Sim.Prng.pick_list prng ls in
            Topo.unlink topology (l.Topo.a.Topo.node, l.Topo.a.Topo.port);
            downed := l :: !downed)
    | 1 -> (
        (* link-up: restore the most recently downed link *)
        match !downed with
        | [] -> ()
        | l :: rest ->
            downed := rest;
            Topo.link topology ~latency:l.Topo.latency
              (l.Topo.a.Topo.node, l.Topo.a.Topo.port)
              (l.Topo.b.Topo.node, l.Topo.b.Topo.port))
    | 2 -> (
        (* host detach *)
        match Topo.hosts topology with
        | [] -> ()
        | hs -> Topo.remove_host topology (Sim.Prng.pick_list prng hs))
    | _ ->
        (* host attach on a fresh high port of a random switch *)
        incr fresh;
        let name = Printf.sprintf "x%d" !fresh in
        let sw = Sim.Prng.pick_list prng (Topo.switches topology) in
        Topo.add_host topology name;
        Topo.link topology (Topo.Host name, 0) (Topo.Sw sw, 100 + !fresh));
    check_all_pairs topology
  done

let test_churn_fat_tree () =
  List.iter
    (fun seed -> churn_property ~spec:(Fabric.Fat_tree { k = 4 }) ~seed ~events:12 ())
    [ 1; 2; 3 ]

let test_churn_leaf_spine () =
  List.iter
    (fun seed ->
      churn_property
        ~spec:(Fabric.Leaf_spine { spines = 2; leaves = 3; hosts_per_leaf = 2 })
        ~seed ~events:12 ())
    [ 7; 8; 9 ]

(* Partition: a single-spine leaf-spine loses a leaf's only uplink;
   cross-leaf pairs must go unreachable (None), same-leaf delivery must
   survive, and restoring the uplink must restore the routes. *)
let test_partition () =
  let fab =
    Fabric.build (Fabric.Leaf_spine { spines = 1; leaves = 2; hosts_per_leaf = 2 })
  in
  let topology = fab.Fabric.topology in
  (* spine is dpid 1, leaves are 2 and 3; leaf uplink port is hosts+1 *)
  check_all_pairs topology;
  (* leaf 3's uplink to the lone spine is port hosts+1 = 3 *)
  check Alcotest.(option int) "cross-leaf before" (Some 3)
    (Topo.next_hop topology ~from:3 ~dst_host:"h0-0");
  Topo.unlink topology (Topo.Sw 2, 3);
  check Alcotest.(option int) "cross-leaf down" None
    (Topo.next_hop topology ~from:3 ~dst_host:"h0-0");
  check Alcotest.(option int) "spine to stranded leaf down" None
    (Topo.next_hop topology ~from:1 ~dst_host:"h0-1");
  check Alcotest.bool "same-leaf still routes" true
    (Topo.next_hop topology ~from:2 ~dst_host:"h0-0" <> None);
  check_all_pairs topology;
  Topo.link topology ~latency:(Sim.Time.us 10) (Topo.Sw 2, 3) (Topo.Sw 1, 1);
  check Alcotest.bool "cross-leaf restored" true
    (Topo.next_hop topology ~from:3 ~dst_host:"h0-0" <> None);
  check_all_pairs topology

(* --- unit tests -------------------------------------------------------- *)

let test_ports_of () =
  let fab = Fabric.build (Fabric.Fat_tree { k = 4 }) in
  let topology = fab.Fabric.topology in
  (* edge 0 of pod 0 is dpid 13: ports 1-2 face hosts, 3-4 face aggs *)
  check
    Alcotest.(list int)
    "edge ports sorted" [ 1; 2; 3; 4 ]
    (Topo.ports_of topology (Topo.Sw 13));
  check
    Alcotest.(list int)
    "host has one port" [ 0 ]
    (Topo.ports_of topology (Topo.Host "h0-0-0"));
  check Alcotest.(list int) "unknown node has none" []
    (Topo.ports_of topology (Topo.Sw 999))

let test_unlink_errors () =
  let topology = Topo.create () in
  Topo.add_switch topology 1;
  Alcotest.check_raises "unwired port"
    (Invalid_argument "Topology.unlink: s1 port 7 is not wired") (fun () ->
      Topo.unlink topology (Topo.Sw 1, 7))

let test_epoch_bumps () =
  let topology = Topo.create () in
  let e0 = Topo.epoch topology in
  Topo.add_switch topology 1;
  Topo.add_switch topology 2;
  Topo.add_host topology "h";
  let e1 = Topo.epoch topology in
  check Alcotest.bool "adds bump" true (e1 > e0);
  Topo.link topology (Topo.Sw 1, 1) (Topo.Sw 2, 1);
  Topo.link topology (Topo.Host "h", 0) (Topo.Sw 2, 2);
  let e2 = Topo.epoch topology in
  check Alcotest.bool "links bump" true (e2 > e1);
  Topo.unlink topology (Topo.Sw 1, 1);
  Topo.remove_host topology "h";
  check Alcotest.bool "removals bump" true (Topo.epoch topology > e2)

(* A k=4 flap must repair some trees and skip the rest — the stats
   prove the incremental path ran instead of a full rebuild. *)
let test_incremental_stats () =
  let fab = Fabric.build (Fabric.Fat_tree { k = 4 }) in
  let topology = fab.Fabric.topology in
  ignore (Topo.next_hop topology ~from:1 ~dst_host:"h0-0-0");
  let s0 = Topo.routing_stats topology in
  Topo.unlink topology (Topo.Sw 5, 1);
  Topo.link topology ~latency:(Sim.Time.us 10) (Topo.Sw 5, 1) (Topo.Sw 13, 3);
  let s1 = Topo.routing_stats topology in
  check Alcotest.int "no full recompute"
    s0.Openflow.Routing.full_recomputes s1.Openflow.Routing.full_recomputes;
  check Alcotest.int "two link events"
    (s0.Openflow.Routing.link_events + 2)
    s1.Openflow.Routing.link_events;
  check Alcotest.bool "some trees skipped" true
    (s1.Openflow.Routing.dests_skipped > s0.Openflow.Routing.dests_skipped);
  check_all_pairs topology

(* Host attach/detach must not touch any routing tree. *)
let test_host_attach_o1 () =
  let fab = Fabric.build (Fabric.Fat_tree { k = 4 }) in
  let topology = fab.Fabric.topology in
  ignore (Topo.next_hop topology ~from:1 ~dst_host:"h0-0-0");
  let s0 = Topo.routing_stats topology in
  Topo.add_host topology "extra";
  Topo.link topology (Topo.Host "extra", 0) (Topo.Sw 13, 9);
  check Alcotest.bool "new host routable" true
    (Topo.next_hop topology ~from:1 ~dst_host:"extra" <> None);
  Topo.remove_host topology "extra";
  let s1 = Topo.routing_stats topology in
  check Alcotest.int "no nodes settled" s0.Openflow.Routing.nodes_settled
    s1.Openflow.Routing.nodes_settled;
  check Alcotest.int "no trees recomputed"
    s0.Openflow.Routing.dests_recomputed s1.Openflow.Routing.dests_recomputed

let test_switch_path_same_switch () =
  let fab = Fabric.build (Fabric.Fat_tree { k = 4 }) in
  let topology = fab.Fabric.topology in
  (* h0-0-0 and h0-0-1 share edge 13 on ports 1 and 2 *)
  match Topo.switch_path topology ~src:"h0-0-0" ~dst:"h0-0-1" with
  | Some [ (dpid, in_port, out_port) ] ->
      check Alcotest.int "shared edge" 13 dpid;
      check Alcotest.int "in from src" 1 in_port;
      check Alcotest.int "out to dst" 2 out_port
  | Some hops ->
      fail (Printf.sprintf "expected 1 hop, got %d" (List.length hops))
  | None -> fail "same-switch pair unreachable"

let test_generator_shapes () =
  let ft = Fabric.build (Fabric.Fat_tree { k = 4 }) in
  check Alcotest.int "k=4 switches" 20
    (List.length (Topo.switches ft.Fabric.topology));
  check Alcotest.int "k=4 hosts" 16 (Array.length ft.Fabric.hosts);
  check Alcotest.int "k=4 links" 48
    (List.length (Topo.links ft.Fabric.topology));
  let ls =
    Fabric.build (Fabric.Leaf_spine { spines = 4; leaves = 8; hosts_per_leaf = 16 })
  in
  check Alcotest.int "leaf-spine switches" 12
    (List.length (Topo.switches ls.Fabric.topology));
  check Alcotest.int "leaf-spine hosts" 128 (Array.length ls.Fabric.hosts);
  check Alcotest.bool "invalid spec rejected" true
    (Result.is_error (Fabric.validate (Fabric.Fat_tree { k = 5 })));
  check Alcotest.bool "round-trips" true
    (Fabric.spec_of_string (Fabric.spec_to_string ft.Fabric.spec)
    = Ok ft.Fabric.spec)

let () =
  Alcotest.run "topology"
    [
      ( "routing-oracle",
        [
          Alcotest.test_case "churn on fat-tree k=4" `Quick test_churn_fat_tree;
          Alcotest.test_case "churn on leaf-spine" `Quick test_churn_leaf_spine;
          Alcotest.test_case "partition and heal" `Quick test_partition;
        ] );
      ( "topology-units",
        [
          Alcotest.test_case "ports_of per node" `Quick test_ports_of;
          Alcotest.test_case "unlink errors" `Quick test_unlink_errors;
          Alcotest.test_case "epoch bumps" `Quick test_epoch_bumps;
          Alcotest.test_case "incremental stats" `Quick test_incremental_stats;
          Alcotest.test_case "host attach is O(1)" `Quick test_host_attach_o1;
          Alcotest.test_case "switch_path same switch" `Quick
            test_switch_path_same_switch;
          Alcotest.test_case "generator shapes" `Quick test_generator_shapes;
        ] );
    ]

The sharded flow-setup engine (DESIGN.md §12): `netsim burst` fires 15
concurrent flows at one host; `--shards N` partitions flow setup
across N run queues with query coalescing and batched installs.

The summary with 4 shards: the 15 dst-end queries converging on host
10.0.1.1 coalesce into one wire exchange (15 src + 1 dst = 16 instead
of 30), so the hot host answers once and nothing times out.

  $ identxx-netsim burst --shards 4 --json burst4.json | tail -8
  === summary ===
  packets delivered to hosts: 31
  packets dropped:            0
  packet-ins:                 31
  controller: flows=15 allowed=15 blocked=0 queries=16 responses=16
  controller: query timeouts=0 retries sent=0
  controller: shards=4 wire-exchanges=16 coalesced=14 batch-flushes=2
  wrote burst4.json

Determinism: with zero service time, the whole run — event trace,
summary, JSON report — is byte-identical under any shard count. Only
the shards=N line itself may differ.

  $ identxx-netsim burst --shards 1 --json burst1.json | grep -v 'shards=\|wrote ' > one.txt
  $ identxx-netsim burst --shards 8 --json burst8.json | grep -v 'shards=\|wrote ' > eight.txt
  $ identxx-netsim burst --shards 4 --json burst4b.json | grep -v 'shards=\|wrote ' > four.txt
  $ diff one.txt eight.txt
  $ diff one.txt four.txt

The --json report aggregates counters across shards, so it is
shard-count invariant outright:

  $ cmp burst1.json burst4.json && cmp burst1.json burst8.json
  $ cat burst4.json
  {
    "scenario": "burst",
    "delivered": 31,
    "dropped": 0,
    "packet_ins": 31,
    "controllers": [
      { "name": "controller", "flows_seen": 15, "allowed": 15, "blocked": 0,
        "queries_sent": 16, "responses_received": 16, "query_timeouts": 0, "query_retries_sent": 0,
        "fastpath_enabled": false, "fastpath_decisions": 0,
        "attr_cache_hits": 0, "attr_cache_misses": 0, "attr_cache_evictions": 0, "attr_cache_invalidations": 0,
        "decision_cache_hits": 0, "decision_cache_misses": 0, "decision_cache_evictions": 0,
        "breaker_trips": 0, "breaker_fastpaths": 0 }
    ]
  }

The unsharded burst for contrast: without coalescing every flow
queries both ends itself — 30 wire queries, and the hot host's serial
daemon answers late enough that 11 queries burn their timeout.

  $ identxx-netsim burst | grep '^controller:'
  controller: flows=15 allowed=15 blocked=0 queries=30 responses=30
  controller: query timeouts=11 retries sent=0

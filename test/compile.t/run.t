The proactive flow-table compiler CLI: lower a policy set's static
slice into the priority-ordered wildcard table the controller
installs under --proactive, with translation validation and the
committed table-size budget the lint alias enforces.

  $ cat > web.control <<'EOF'
  > block all
  > pass from 10.0.0.0/8 to any port 80
  > pass from 172.16.0.0/12 to any with eq(@src[name], firefox)
  > EOF

The static rules compile to wildcard entries (priorities descend in
steps of 2 inside the compiled band); the conditional rule's region
stays reactive behind a punt entry:

  $ identxx_ctl compile web.control
  entries: 3
  static coverage: 0.999755859
  installed coverage: 0.999755859
  20484 pass  proto any from 10.0.0.0/8 port any to any port 80  (web.control:2)
  20482 punt  proto any from 172.16.0.0/12 port any to any port any
  20480 block proto any from any port any to any port any  (web.control:1)

Translation validation checks the table against the diagram on a
witness per enumerated region:

  $ identxx_ctl compile web.control --verify | tail -n 1
  verified: 7 regions agree

  $ identxx_ctl compile web.control --format json
  {"entries":[{"priority":20484,"decision":"pass","match":"proto any from 10.0.0.0/8 port any to any port 80","lines":["web.control:2"]},{"priority":20482,"decision":"punt","match":"proto any from 172.16.0.0/12 port any to any port any","lines":[]},{"priority":20480,"decision":"block","match":"proto any from any port any to any port any","lines":["web.control:1"]}],"spills":[],"static_coverage":0.999755859,"installed_coverage":0.999755859,"truncated":false}

OpenFlow 1.0 has no port masks: a range wider than the per-branch
region budget is not enumerated — the region spills back to the
reactive path behind a punt (sound, slower), and installed coverage
drops below the diagram's static coverage:

  $ cat > range.control <<'EOF'
  > block all
  > pass proto tcp from any to any port 1024:60000
  > EOF

  $ identxx_ctl compile range.control
  entries: 2
  static coverage: 1
  installed coverage: 0.99609375
  spill: dport interval [60001,65535] would need 5535 entries (budget 512); region stays reactive
  spill: dport interval [0,1023] would need 1024 entries (budget 512); region stays reactive
  20482 punt  proto tcp from any port any to any port any
  20480 block proto any from any port any to any port any  (range.control:1)

  $ identxx_ctl compile range.control --verify | tail -n 1
  verified: 5 regions agree

A table-size cap replaces the lowest-priority tail with one punt-all
entry — still total, still sound:

  $ identxx_ctl compile web.control --max-entries 2
  entries: 2
  static coverage: 0.999755859
  installed coverage: 0
  truncated: table exceeded 2 entries; tail punts to the controller
  20482 pass  proto any from 10.0.0.0/8 port any to any port 80  (web.control:2)
  20480 punt  proto any from any port any to any port any

The committed budget file gates the entry count (the @lint alias runs
this against policies/table-size.budget); exceeding it is exit 1:

  $ echo 2 > tight.budget
  $ identxx_ctl compile web.control --max-entries-file tight.budget
  entries: 3
  static coverage: 0.999755859
  installed coverage: 0.999755859
  20484 pass  proto any from 10.0.0.0/8 port any to any port 80  (web.control:2)
  20482 punt  proto any from 172.16.0.0/12 port any to any port any
  20480 block proto any from any port any to any port any  (web.control:1)
  error: compiled table has 3 entries, committed budget is 2
  [1]

  $ echo 8 > ok.budget
  $ identxx_ctl compile web.control --max-entries-file ok.budget > /dev/null

A missing file is a usage error:

  $ identxx_ctl compile nosuch.control
  identxx_ctl: FILE… arguments: no 'nosuch.control' file or directory
  Usage: identxx_ctl compile [OPTION]… FILE…
  Try 'identxx_ctl compile --help' or 'identxx_ctl --help' for more information.
  [124]

(* Tests for the discrete-event simulation substrate: time arithmetic,
   the binary heap, the engine's ordering guarantees, the PRNG and the
   statistics accumulator. *)

let check = Alcotest.check

(* --- Time --- *)

let test_time_units () =
  check Alcotest.int "us" 1_000 (Sim.Time.to_ns (Sim.Time.us 1));
  check Alcotest.int "ms" 1_000_000 (Sim.Time.to_ns (Sim.Time.ms 1));
  check Alcotest.int "s" 1_000_000_000 (Sim.Time.to_ns (Sim.Time.s 1));
  check (Alcotest.float 1e-9) "to_float_s" 1.5
    (Sim.Time.to_float_s (Sim.Time.ms 1500))

let test_time_arithmetic () =
  let a = Sim.Time.ms 3 and b = Sim.Time.ms 1 in
  check Alcotest.int "add" 4_000_000 (Sim.Time.to_ns (Sim.Time.add a b));
  check Alcotest.int "sub" 2_000_000 (Sim.Time.to_ns (Sim.Time.sub a b));
  Alcotest.check_raises "negative sub" (Invalid_argument "Time.sub: negative result")
    (fun () -> ignore (Sim.Time.sub b a));
  Alcotest.check_raises "negative ns" (Invalid_argument "Time.ns: negative")
    (fun () -> ignore (Sim.Time.ns (-1)))

let test_time_pp () =
  let s t = Format.asprintf "%a" Sim.Time.pp t in
  check Alcotest.string "zero" "0s" (s Sim.Time.zero);
  check Alcotest.string "ns" "123ns" (s (Sim.Time.ns 123));
  check Alcotest.string "s" "2s" (s (Sim.Time.s 2))

(* --- Heap --- *)

let test_heap_orders_by_key () =
  let h = Sim.Heap.create () in
  List.iter (fun k -> Sim.Heap.push h ~key:k k) [ 5; 1; 4; 2; 3 ];
  let rec drain acc =
    match Sim.Heap.pop h with
    | None -> List.rev acc
    | Some (k, _) -> drain (k :: acc)
  in
  check Alcotest.(list int) "sorted" [ 1; 2; 3; 4; 5 ] (drain [])

let test_heap_fifo_on_ties () =
  let h = Sim.Heap.create () in
  List.iteri (fun i v -> Sim.Heap.push h ~key:7 (i, v)) [ "a"; "b"; "c" ];
  let pop () = match Sim.Heap.pop h with Some (_, (_, v)) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  check Alcotest.(list string) "insertion order" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_heap_peek_and_size () =
  let h = Sim.Heap.create () in
  check Alcotest.bool "empty" true (Sim.Heap.is_empty h);
  Sim.Heap.push h ~key:3 "x";
  Sim.Heap.push h ~key:1 "y";
  check Alcotest.(option (pair int string)) "peek" (Some (1, "y")) (Sim.Heap.peek h);
  check Alcotest.int "size" 2 (Sim.Heap.size h);
  Sim.Heap.clear h;
  check Alcotest.bool "cleared" true (Sim.Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Sim.Heap.create () in
      List.iter (fun k -> Sim.Heap.push h ~key:k k) keys;
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let out = drain [] in
      out = List.sort compare keys)

(* --- Engine --- *)

let test_engine_runs_in_time_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~delay:(Sim.Time.ms 3) (fun () -> log := "c" :: !log);
  Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> log := "a" :: !log);
  Sim.Engine.schedule e ~delay:(Sim.Time.ms 2) (fun () -> log := "b" :: !log);
  Sim.Engine.run e;
  check Alcotest.(list string) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check Alcotest.int "clock advanced" 3_000_000 (Sim.Time.to_ns (Sim.Engine.now e))

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () ->
      incr fired;
      Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> incr fired));
  Sim.Engine.run e;
  check Alcotest.int "both fired" 2 !fired;
  check Alcotest.int "clock at 2ms" 2_000_000 (Sim.Time.to_ns (Sim.Engine.now e))

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let handle =
    Sim.Engine.schedule_cancellable e ~delay:(Sim.Time.ms 1) (fun () ->
        fired := true)
  in
  Sim.Engine.cancel handle;
  Sim.Engine.run e;
  check Alcotest.bool "cancelled event did not fire" false !fired

let test_engine_until () =
  let e = Sim.Engine.create () in
  let fired = ref [] in
  List.iter
    (fun ms ->
      Sim.Engine.schedule e ~delay:(Sim.Time.ms ms) (fun () ->
          fired := ms :: !fired))
    [ 1; 2; 3; 10 ];
  Sim.Engine.run ~until:(Sim.Time.ms 5) e;
  check Alcotest.(list int) "only events before deadline" [ 1; 2; 3 ]
    (List.rev !fired);
  check Alcotest.int "one pending" 1 (Sim.Engine.pending e)

let test_engine_max_events () =
  let e = Sim.Engine.create () in
  for i = 1 to 10 do
    Sim.Engine.schedule e ~delay:(Sim.Time.ms i) (fun () -> ())
  done;
  Sim.Engine.run ~max_events:4 e;
  check Alcotest.int "six left" 6 (Sim.Engine.pending e)

let test_engine_same_time_fifo () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> log := i :: !log)
  done;
  Sim.Engine.run e;
  check Alcotest.(list int) "fifo among simultaneous" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_rejects_past () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e ~delay:(Sim.Time.ms 5) (fun () -> ());
  Sim.Engine.run e;
  Alcotest.check_raises "past scheduling"
    (Invalid_argument "Engine.schedule_at: time is in the past") (fun () ->
      Sim.Engine.schedule_at e ~at:(Sim.Time.ms 1) (fun () -> ()))

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Sim.Prng.create 42 and b = Sim.Prng.create 42 in
  let sa = List.init 20 (fun _ -> Sim.Prng.int a 1000) in
  let sb = List.init 20 (fun _ -> Sim.Prng.int b 1000) in
  check Alcotest.(list int) "same seed, same stream" sa sb

let test_prng_seed_changes_stream () =
  let a = Sim.Prng.create 1 and b = Sim.Prng.create 2 in
  let sa = List.init 20 (fun _ -> Sim.Prng.int a 1000000) in
  let sb = List.init 20 (fun _ -> Sim.Prng.int b 1000000) in
  check Alcotest.bool "different streams" false (sa = sb)

let prop_prng_int_in_range =
  QCheck.Test.make ~name:"Prng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let p = Sim.Prng.create seed in
      let v = Sim.Prng.int p bound in
      v >= 0 && v < bound)

let prop_prng_float_in_range =
  QCheck.Test.make ~name:"Prng.float stays in range" ~count:500
    QCheck.small_int (fun seed ->
      let p = Sim.Prng.create seed in
      let v = Sim.Prng.float p 3.5 in
      v >= 0.0 && v < 3.5)

let test_prng_shuffle_permutes () =
  let p = Sim.Prng.create 7 in
  let arr = Array.init 50 Fun.id in
  Sim.Prng.shuffle p arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "same elements" (Array.init 50 Fun.id) sorted

let test_prng_exponential_positive () =
  let p = Sim.Prng.create 9 in
  for _ = 1 to 100 do
    check Alcotest.bool "positive" true (Sim.Prng.exponential p ~mean:2.0 >= 0.0)
  done

(* --- Stats --- *)

let test_stats_basic () =
  let s = Sim.Stats.create () in
  List.iter (Sim.Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check Alcotest.int "count" 5 (Sim.Stats.count s);
  check (Alcotest.float 1e-9) "mean" 3.0 (Sim.Stats.mean s);
  check (Alcotest.float 1e-9) "variance" 2.5 (Sim.Stats.variance s);
  check (Alcotest.float 1e-9) "min" 1.0 (Sim.Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 5.0 (Sim.Stats.max_value s);
  check (Alcotest.float 1e-9) "median" 3.0 (Sim.Stats.median s)

let test_stats_percentiles () =
  let s = Sim.Stats.create () in
  for i = 1 to 100 do
    Sim.Stats.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p50" 50.0 (Sim.Stats.percentile s 50.0);
  check (Alcotest.float 1e-9) "p99" 99.0 (Sim.Stats.percentile s 99.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Sim.Stats.percentile s 100.0)

let test_stats_add_after_percentile () =
  (* Percentile sorts internally; later adds must still work. *)
  let s = Sim.Stats.create () in
  List.iter (Sim.Stats.add s) [ 3.0; 1.0; 2.0 ];
  ignore (Sim.Stats.median s);
  Sim.Stats.add s 0.5;
  check (Alcotest.float 1e-9) "min updated" 0.5 (Sim.Stats.min_value s);
  (* Nearest-rank median of [0.5; 1; 2; 3] is the 2nd element. *)
  check (Alcotest.float 1e-9) "median after resort" 1.0 (Sim.Stats.median s)

let test_stats_interleaved_percentile () =
  (* The sorted sample is cached between percentile calls; interleaving
     adds and queries must always see every value added so far. Compare
     against a naive re-sort at every step. *)
  let s = Sim.Stats.create () in
  let added = ref [] in
  let naive_pct p =
    let arr = Array.of_list !added in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    arr.(Stdlib.max 0 (Stdlib.min (n - 1) rank))
  in
  let prng = Sim.Prng.create 7 in
  for round = 1 to 20 do
    (* A batch of pseudo-random adds, then several queries. *)
    for _ = 1 to 1 + (round mod 5) do
      let x = Sim.Prng.float prng 1000.0 in
      added := x :: !added;
      Sim.Stats.add s x
    done;
    List.iter
      (fun p ->
        check (Alcotest.float 1e-9)
          (Printf.sprintf "round %d p%g" round p)
          (naive_pct p) (Sim.Stats.percentile s p))
      [ 0.0; 25.0; 50.0; 99.0; 100.0 ]
  done;
  (* Duplicates and descending runs across the cached/fresh boundary. *)
  ignore (Sim.Stats.median s);
  List.iter (Sim.Stats.add s) [ 5.0; 5.0; 4.0; 3.0; 3.0 ];
  added := [ 5.0; 5.0; 4.0; 3.0; 3.0 ] @ !added;
  List.iter
    (fun p ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "dup p%g" p)
        (naive_pct p) (Sim.Stats.percentile s p))
    [ 10.0; 50.0; 90.0 ]

let test_stats_histogram () =
  let s = Sim.Stats.create () in
  List.iter (Sim.Stats.add s) [ 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0 ];
  let h = Sim.Stats.histogram ~buckets:5 s in
  let counts = List.map (fun (_, _, c) -> c) (Sim.Stats.buckets h) in
  check Alcotest.int "bucket count" 5 (List.length counts);
  check Alcotest.int "all samples bucketed" 10 (List.fold_left ( + ) 0 counts)

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~name:"online mean equals naive mean" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Sim.Stats.create () in
      List.iter (Sim.Stats.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      abs_float (Sim.Stats.mean s -. naive) < 1e-6)

(* --- Trace --- *)

let test_trace_records_in_order () =
  let t = Sim.Trace.create () in
  Sim.Trace.record t ~at:(Sim.Time.ms 1) ~actor:"a" "one";
  Sim.Trace.record t ~at:(Sim.Time.ms 2) ~actor:"b" "two";
  let entries = Sim.Trace.entries t in
  check Alcotest.int "two entries" 2 (List.length entries);
  check Alcotest.(option string) "find" (Some "two")
    (Option.map
       (fun (e : Sim.Trace.entry) -> e.event)
       (Sim.Trace.find t ~f:(fun e -> e.Sim.Trace.actor = "b")));
  check Alcotest.int "count" 1
    (Sim.Trace.count t ~f:(fun e -> e.Sim.Trace.actor = "a"))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
        ] );
      ( "heap",
        [
          Alcotest.test_case "orders by key" `Quick test_heap_orders_by_key;
          Alcotest.test_case "fifo on ties" `Quick test_heap_fifo_on_ties;
          Alcotest.test_case "peek and size" `Quick test_heap_peek_and_size;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_runs_in_time_order;
          Alcotest.test_case "nested scheduling" `Quick
            test_engine_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "fifo among simultaneous" `Quick
            test_engine_same_time_fifo;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed changes stream" `Quick
            test_prng_seed_changes_stream;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "exponential positive" `Quick
            test_prng_exponential_positive;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "add after percentile" `Quick
            test_stats_add_after_percentile;
          Alcotest.test_case "interleaved add/percentile" `Quick
            test_stats_interleaved_percentile;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "trace",
        [ Alcotest.test_case "records in order" `Quick test_trace_records_in_order ] );
      ( "properties",
        qc
          [
            prop_heap_sorts;
            prop_prng_int_in_range;
            prop_prng_float_in_range;
            prop_stats_mean_matches_naive;
          ] );
    ]

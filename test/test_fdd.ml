(* The decision-diagram policy engine (lib/analysis/fdd.mli): unit
   semantics, equivalence/differential/slice analyses, and the
   randomized Eval-vs-FDD differential over every shipped policy.

   The differential oracle re-implements §3.3 quick/last-match over a
   forced truth assignment per conditional rule and enumerates every
   assignment: the FDD leaf must be [Static a] exactly when all
   assignments agree on [a], [Reactive] exactly when two assignments
   disagree — i.e. when the verdict genuinely hinges on what a daemon
   or dict would say. *)

open Netcore
module Fdd = Analysis.Fdd

let env_of s =
  match Pf.Env.of_string s with
  | Ok env -> env
  | Error e -> Alcotest.failf "env error: %s" e

let flow ?(proto = Proto.Tcp) ?(sp = 40000) ?(dp = 80) src dst =
  Five_tuple.make ~proto ~src:(Ipv4.of_string src) ~dst:(Ipv4.of_string dst)
    ~src_port:sp ~dst_port:dp

let response fl pairs =
  Identxx.Response.make ~flow:fl
    [ List.map (fun (k, v) -> Identxx.Key_value.pair k v) pairs ]

let action =
  Alcotest.testable
    (fun fmt a ->
      Format.pp_print_string fmt
        (match a with Pf.Ast.Pass -> "pass" | Pf.Ast.Block -> "block"))
    ( = )

let decision v =
  match v with
  | Fdd.Static { action; _ } -> `Static action
  | Fdd.Reactive _ -> `Reactive

(* --- unit semantics: last match, quick, reactive classification --- *)

let unit_policy =
  {|block all
pass from 10.0.0.0/8 to any port 80
block quick from 10.9.0.0/16 to any
pass from 172.16.0.0/12 to any with eq(@src[name], firefox)|}

let test_verdicts () =
  let fdd = Fdd.compile (env_of unit_policy) in
  let check name fl expected =
    Alcotest.(check bool) name true (decision (Fdd.lookup fdd fl) = expected)
  in
  check "last match wins" (flow "10.1.2.3" "1.2.3.4") (`Static Pf.Ast.Pass);
  check "quick overrides later pass"
    (flow "10.9.2.3" "1.2.3.4")
    (`Static Pf.Ast.Block);
  check "port mismatch falls back"
    (flow ~dp:81 "10.1.2.3" "1.2.3.4")
    (`Static Pf.Ast.Block);
  check "conditional rule is reactive" (flow "172.16.5.5" "1.2.3.4") `Reactive;
  match Fdd.lookup fdd (flow "172.16.5.5" "1.2.3.4") with
  | Fdd.Reactive { lines; inputs; may_default } ->
      Alcotest.(check (list int)) "deciding line" [ 4 ] lines;
      Alcotest.(check bool)
        "needs src response" true
        (inputs = [ Pf.Ast.Needs_src_response ]);
      Alcotest.(check bool) "default unreachable" false may_default
  | Fdd.Static _ -> Alcotest.fail "expected reactive leaf"

let test_node_sharing () =
  (* The same ruleset compiles to the identical root: hash-consing
     makes equality of semantics equality of ids, so equiv is O(1). *)
  let a = Fdd.compile (env_of unit_policy) in
  let b = Fdd.compile (env_of unit_policy) in
  Alcotest.(check bool) "same root" true (Fdd.equiv a b = Ok ());
  Alcotest.(check bool)
    "node count stable" true
    (Fdd.node_count a = Fdd.node_count b)

let test_equiv_counterexample () =
  let a = Fdd.compile (env_of "block all\npass from 10.0.0.0/8 to any port 80") in
  let b =
    Fdd.compile (env_of "block all\npass from 10.0.0.0/8 to any port 8080")
  in
  match Fdd.equiv a b with
  | Ok () -> Alcotest.fail "expected a counterexample"
  | Error { flow = fl; left; right } ->
      (* The witness flow must actually separate the two policies. *)
      Alcotest.(check bool)
        "flow inside 10/8 or port difference" true
        (Fdd.lookup a fl = left && Fdd.lookup b fl = right);
      Alcotest.(check bool)
        "verdicts differ" true
        (decision left <> decision right)

let test_diff_exact_fraction () =
  let a = Fdd.compile (env_of "block all") in
  let b = Fdd.compile (env_of "block all\npass from 10.0.0.0/8 to any port 80") in
  let r = Fdd.diff a b in
  (* exactly 1/256 of sources times 1/65536 of dst ports changed *)
  Alcotest.(check (float 1e-15))
    "changed fraction" (1.0 /. 256.0 /. 65536.0) r.Fdd.changed_fraction;
  Alcotest.(check int) "one region" 1 (List.length r.Fdd.deltas);
  Alcotest.(check bool) "not truncated" false r.Fdd.truncated;
  let self = Fdd.diff a a in
  Alcotest.(check (float 0.0)) "self diff empty" 0.0 self.Fdd.changed_fraction;
  Alcotest.(check int) "no regions" 0 (List.length self.Fdd.deltas)

let test_static_slice () =
  let fdd = Fdd.compile (env_of unit_policy) in
  let sl = Fdd.static_slice fdd in
  (* reactive residue = 172.16/12 minus the quick-blocked and
     pass-port-80 carve-outs; coverage is 1 - |residue| *)
  Alcotest.(check bool) "coverage below 1" true (sl.Fdd.s_coverage < 1.0);
  Alcotest.(check bool) "coverage near 1" true (sl.Fdd.s_coverage > 0.999);
  Alcotest.(check bool)
    "reactive residue present" true
    (sl.Fdd.s_reactive <> []);
  Alcotest.(check (float 1e-15))
    "coverage consistent" sl.Fdd.s_coverage (Fdd.static_coverage fdd);
  (* the enumerated regions partition the flow space: volumes sum to 1 *)
  let region_vol rg =
    let w top (lo, hi) = float_of_int (hi - lo + 1) /. (float_of_int top +. 1.0) in
    w 255 rg.Fdd.r_proto
    *. w 0xFFFF_FFFF rg.Fdd.r_src
    *. w 0xFFFF_FFFF rg.Fdd.r_dst
    *. w 0xFFFF rg.Fdd.r_sport
    *. w 0xFFFF rg.Fdd.r_dport
  in
  let static_vol =
    List.fold_left (fun acc (rg, _, _) -> acc +. region_vol rg) 0.0 sl.Fdd.s_static
  in
  let reactive_vol =
    List.fold_left (fun acc (rg, _) -> acc +. region_vol rg) 0.0 sl.Fdd.s_reactive
  in
  Alcotest.(check (float 1e-9))
    "partition of flow space" 1.0 (static_vol +. reactive_vol)

let test_fallthrough () =
  let covered = Fdd.compile (env_of "block all") in
  Alcotest.(check int) "block all covers" 0 (List.length (Fdd.fallthrough covered));
  let open_pol = Fdd.compile (env_of "pass from 10.0.0.0/8 to any") in
  let regions = Fdd.fallthrough open_pol in
  Alcotest.(check bool) "residue present" true (regions <> []);
  List.iter
    (fun rg ->
      let w = Fdd.region_witness rg in
      Alcotest.(check bool)
        "witness outside 10/8" false
        (Prefix.mem w.Five_tuple.src (Prefix.of_string "10.0.0.0/8")))
    regions;
  (* conditional rules leave the default reachable *)
  let cond = Fdd.compile (env_of "pass all with eq(@src[name], skype)") in
  Alcotest.(check bool)
    "conditional-only policy may default" true
    (Fdd.fallthrough cond <> [])

(* --- the assignment-enumeration oracle --- *)

let header_matches env (r : Pf.Ast.rule) (fl : Five_tuple.t) =
  let addr_ok spec ip =
    match spec with
    | None -> true
    | Some s -> Pf.Env.addr_spec_matches env s ip
  in
  let port_ok pm p =
    match pm with
    | None -> true
    | Some pm ->
        let lo, hi = Pf.Ast.port_interval pm in
        lo <= p && p <= hi
  in
  (match r.Pf.Ast.proto with
  | None -> true
  | Some pr -> Proto.equal pr fl.Five_tuple.proto)
  && addr_ok r.Pf.Ast.from_.addr fl.Five_tuple.src
  && addr_ok r.Pf.Ast.to_.addr fl.Five_tuple.dst
  && port_ok r.Pf.Ast.from_.port fl.Five_tuple.src_port
  && port_ok r.Pf.Ast.to_.port fl.Five_tuple.dst_port

(* All verdicts reachable under some truth assignment of the
   header-matching conditional rules. *)
let oracle_outcomes env fl =
  let matching =
    List.filter (fun r -> header_matches env r fl) (Pf.Env.rules env)
  in
  let cond_lines =
    List.filter_map
      (fun (r : Pf.Ast.rule) ->
        if Pf.Ast.cond_free r then None else Some r.Pf.Ast.line)
      matching
  in
  let k = List.length cond_lines in
  if k > 14 then Alcotest.failf "too many conditional rules (%d)" k;
  let outcomes = ref [] in
  for mask = 0 to (1 lsl k) - 1 do
    let fires (r : Pf.Ast.rule) =
      Pf.Ast.cond_free r
      ||
      let rec idx i = function
        | [] -> false
        | l :: _ when l = r.Pf.Ast.line -> mask land (1 lsl i) <> 0
        | _ :: rest -> idx (i + 1) rest
      in
      idx 0 cond_lines
    in
    let rec go current = function
      | [] -> current
      | (r : Pf.Ast.rule) :: rest ->
          if fires r then
            if r.Pf.Ast.quick then r.Pf.Ast.action else go r.Pf.Ast.action rest
          else go current rest
    in
    outcomes := go Pf.Ast.Pass matching :: !outcomes
  done;
  List.sort_uniq compare !outcomes

(* --- deterministic pseudo-random flows and contexts --- *)

let interesting_addrs =
  [|
    "192.168.0.5"; "192.168.0.255"; "192.168.1.1"; "192.168.1.7";
    "10.1.2.3"; "10.255.0.1"; "10.0.0.0"; "123.123.123.9"; "123.123.124.1";
    "172.16.3.9"; "8.8.8.8"; "0.0.0.0"; "255.255.255.255";
  |]

let interesting_ports = [| 0; 79; 80; 81; 443; 1000; 1023; 8080; 65535 |]

let random_addr prng =
  if Sim.Prng.bool prng then Ipv4.of_string (Sim.Prng.pick prng interesting_addrs)
  else Ipv4.of_int (Int64.to_int (Sim.Prng.next64 prng) land 0xFFFF_FFFF)

let random_port prng =
  if Sim.Prng.bool prng then Sim.Prng.pick prng interesting_ports
  else Sim.Prng.int prng 65536

let random_flow prng =
  let proto =
    match Sim.Prng.int prng 4 with
    | 0 -> Proto.Tcp
    | 1 -> Proto.Udp
    | 2 -> Proto.Icmp
    | _ -> Proto.Other 47
  in
  Five_tuple.make ~proto ~src:(random_addr prng) ~dst:(random_addr prng)
    ~src_port:(random_port prng) ~dst_port:(random_port prng)

let random_response prng fl =
  response fl
    [
      ("name", Sim.Prng.pick prng [| "skype"; "firefox"; "Server"; "ssh" |]);
      ("userID", Sim.Prng.pick prng [| "system"; "alice" |]);
      ("version", Sim.Prng.pick prng [| "150"; "210" |]);
      ("os-patch", Sim.Prng.pick prng [| "MS08-067"; "KB12345" |]);
    ]

let random_ctx prng fl =
  let src =
    if Sim.Prng.int prng 4 = 0 then None else Some (random_response prng fl)
  in
  let dst =
    if Sim.Prng.int prng 4 = 0 then None else Some (random_response prng fl)
  in
  Pf.Eval.ctx ?src ?dst ()

(* The differential proper: FDD leaf vs assignment oracle on every
   flow, and vs the real evaluator wherever the leaf is static. *)
let differential name env ~flows ~ctxs_per_flow =
  let fdd = Fdd.compile env in
  let prng = Sim.Prng.create 0x5eed in
  for i = 1 to flows do
    let fl = random_flow prng in
    let leaf = Fdd.lookup fdd fl in
    let outcomes = oracle_outcomes env fl in
    (match (decision leaf, outcomes) with
    | `Static a, [ o ] ->
        Alcotest.(check action)
          (Printf.sprintf "%s: flow %d static action" name i)
          o a
    | `Static _, os ->
        Alcotest.failf "%s: %s static but oracle has %d outcomes" name
          (Five_tuple.to_string fl) (List.length os)
    | `Reactive, os ->
        if List.length os < 2 then
          Alcotest.failf "%s: %s reactive but oracle is decided" name
            (Five_tuple.to_string fl));
    (* the static leaf must equal the real evaluator under any ctx *)
    match leaf with
    | Fdd.Static { action = a; _ } ->
        for _ = 1 to ctxs_per_flow do
          let ctx = random_ctx prng fl in
          match Pf.Eval.eval env ctx fl with
          | Ok v ->
              Alcotest.(check action)
                (Printf.sprintf "%s: flow %d eval agrees" name i)
                a v.Pf.Eval.decision
          | Error e -> Alcotest.failf "%s: eval error: %s" name e
        done
    | Fdd.Reactive _ -> ()
  done

let synthetic_corpus =
  [
    ("unit", unit_policy);
    ("negation", "block all\npass from !192.168.0.0/16 to any\nblock from any to !10.0.0.0/8 port 53");
    ( "tables",
      "table <lan> { 192.168.0.0/24 }\ntable <srv> { 192.168.1.1 10.0.0.0/8 \
       }\nblock all\npass from <lan> to <srv> port 80:443\nblock quick from \
       <srv> to <lan>" );
    ( "cond-quick",
      "pass all\nblock quick all with eq(@src[name], worm)\npass from \
       10.0.0.0/8 to any with eq(@dst[userID], system)" );
    ("proto", "block all\npass proto tcp from any to any port 22\npass proto \
               icmp from 10.0.0.0/8 to any");
    ("list", "block all\npass from { 10.0.0.1 10.0.0.2/31 } to any port 80:443");
  ]

let shipped_policies () =
  (* cwd is _build/default/test under [dune runtest]; fall back to the
     source tree when run by hand from the repo root *)
  let dir =
    if Sys.file_exists "../policies" then "../policies" else "policies"
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".control")
  |> List.sort String.compare
  |> List.map (fun f -> (f, In_channel.with_open_bin (Filename.concat dir f) In_channel.input_all))

let test_differential_synthetic () =
  List.iter
    (fun (name, text) ->
      differential name (env_of text) ~flows:300 ~ctxs_per_flow:2)
    synthetic_corpus

let test_differential_shipped () =
  let files = shipped_policies () in
  Alcotest.(check bool) "shipped policies present" true (List.length files >= 4);
  (* each file alone when it compiles stand-alone ... *)
  List.iter
    (fun (name, text) ->
      match Pf.Env.of_string text with
      | Ok env -> differential name env ~flows:200 ~ctxs_per_flow:2
      | Error _ -> () (* fragments may reference another file's tables *))
    files;
  (* ... and always the full concatenated deployment *)
  let concat = String.concat "\n" (List.map snd files) in
  differential "policies-concat" (env_of concat) ~flows:300 ~ctxs_per_flow:3

(* --- Check.run fallthrough rides the FDD residue --- *)

let test_check_fallthrough_witness () =
  let decls =
    match Pf.Parser.parse "pass from 10.0.0.0/8 to any" with
    | Ok d -> d
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let findings = Analysis.Check.run decls in
  match
    List.find_opt
      (fun (f : Analysis.Check.finding) -> f.code = "default-fallthrough")
      findings
  with
  | None -> Alcotest.fail "no fallthrough finding"
  | Some f -> (
      match f.Analysis.Check.witness with
      | None -> Alcotest.fail "expected a witness flow"
      | Some w ->
          Alcotest.(check bool)
            "witness outside the covered space" false
            (Prefix.mem w.Five_tuple.src (Prefix.of_string "10.0.0.0/8")))

(* --- Policy_store.watch_changes --- *)

let test_policy_store_watch () =
  let module PS = Identxx_core.Policy_store in
  let store = PS.create () in
  PS.add_exn store ~name:"00" "block all";
  let reg = Obs.Registry.create () in
  let changes = ref [] in
  PS.watch_changes ~registry:reg store (fun ch -> changes := ch :: !changes);
  PS.add_exn store ~name:"10" "pass from 10.0.0.0/8 to any port 80";
  (match !changes with
  | [ ch ] ->
      Alcotest.(check (float 1e-15))
        "changed fraction" (1.0 /. 256.0 /. 65536.0)
        ch.PS.report.Fdd.changed_fraction;
      Alcotest.(check bool) "epochs advance" true (ch.PS.new_epoch > ch.PS.old_epoch);
      Alcotest.(check bool) "coverage total" true (ch.PS.coverage = 1.0)
  | l -> Alcotest.failf "expected one change report, got %d" (List.length l));
  (* an equivalent reload reports a zero diff *)
  PS.add_exn store ~name:"10" "pass from 10.0.0.0/8 to any port 80";
  (match !changes with
  | ch :: _ ->
      Alcotest.(check (float 0.0)) "no-op reload" 0.0
        ch.PS.report.Fdd.changed_fraction
  | [] -> Alcotest.fail "no report for reload");
  let series = Obs.Registry.snapshot reg in
  let find n =
    List.find_opt (fun (s : Obs.Registry.series) -> s.name = n) series
  in
  Alcotest.(check bool)
    "diff counter exported" true
    (match find "identxx_analysis_policy_diffs_total" with
    | Some { value = Obs.Registry.Counter_v 2; _ } -> true
    | _ -> false);
  Alcotest.(check bool)
    "nodes gauge exported" true
    (match find "identxx_analysis_fdd_nodes" with
    | Some { value = Obs.Registry.Gauge_v v; _ } -> v > 0.0
    | _ -> false);
  Alcotest.(check bool)
    "coverage gauge exported" true
    (match find "identxx_analysis_fdd_static_coverage" with
    | Some { value = Obs.Registry.Gauge_v 1.0; _ } -> true
    | _ -> false)

let () =
  Alcotest.run "fdd"
    [
      ( "semantics",
        [
          Alcotest.test_case "verdicts" `Quick test_verdicts;
          Alcotest.test_case "node sharing" `Quick test_node_sharing;
          Alcotest.test_case "fallthrough" `Quick test_fallthrough;
        ] );
      ( "analyses",
        [
          Alcotest.test_case "equiv counterexample" `Quick
            test_equiv_counterexample;
          Alcotest.test_case "diff exact fraction" `Quick
            test_diff_exact_fraction;
          Alcotest.test_case "static slice" `Quick test_static_slice;
        ] );
      ( "differential",
        [
          Alcotest.test_case "synthetic corpus" `Quick
            test_differential_synthetic;
          Alcotest.test_case "shipped policies" `Quick
            test_differential_shipped;
        ] );
      ( "integration",
        [
          Alcotest.test_case "check fallthrough witness" `Quick
            test_check_fallthrough_witness;
          Alcotest.test_case "policy store watch" `Quick
            test_policy_store_watch;
        ] );
    ]

(* Flow-space algebra and whole-ruleset static checks: the analysis
   library that backs `identxx_ctl analyze --deep` and `dune build
   @lint`. *)

open Netcore
module F = Analysis.Flowspace
module C = Analysis.Check

let prefix = Prefix.of_string

let prefix_list =
  Alcotest.testable
    (fun fmt ps ->
      Format.pp_print_string fmt
        (String.concat " " (List.map Prefix.to_string ps)))
    (fun a b -> List.map Prefix.to_string a = List.map Prefix.to_string b)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let parse_rules s =
  match Pf.Parser.parse s with
  | Ok decls -> decls
  | Error e -> Alcotest.failf "parse error: %s" e

let env_of s =
  match Pf.Env.of_string s with
  | Ok env -> env
  | Error e -> Alcotest.failf "env error: %s" e

let space_of_rule ?(tables = []) s =
  match parse_rules s with
  | [ Pf.Ast.Rule_decl r ] ->
      F.of_rule ~lookup:(fun n -> List.assoc_opt n tables) r
  | _ -> Alcotest.fail "expected a single rule"

let findings_of ?configs s = C.run ?configs (parse_rules s)
let find_code c fs = List.find_opt (fun (f : C.finding) -> f.C.code = c) fs

let has_code c fs =
  Alcotest.(check bool) (c ^ " reported") true (find_code c fs <> None)

let no_code c fs =
  Alcotest.(check bool) (c ^ " absent") true (find_code c fs = None)

(* --- proto sets --- *)

let test_proto_sets () =
  Alcotest.(check bool) "any non-empty" false (F.proto_set_empty F.proto_any);
  let tcp = F.proto_only Proto.Tcp in
  Alcotest.(check bool)
    "tcp inter udp empty" true
    (F.proto_set_empty (F.proto_inter tcp (F.proto_only Proto.Udp)));
  Alcotest.(check bool)
    "tcp \\ tcp empty" true
    (F.proto_set_empty (F.proto_sub tcp tcp));
  Alcotest.(check bool)
    "any \\ tcp keeps udp" false
    (F.proto_set_empty (F.proto_inter (F.proto_sub F.proto_any tcp)
                          (F.proto_only Proto.Udp)));
  (* co-finite \ co-finite goes finite *)
  let not_tcp = F.proto_sub F.proto_any tcp in
  let not_udp = F.proto_sub F.proto_any (F.proto_only Proto.Udp) in
  let diff = F.proto_sub not_tcp not_udp in
  Alcotest.(check bool)
    "(¬tcp) \\ (¬udp) = {udp}" false (F.proto_set_empty diff);
  Alcotest.(check bool)
    "…and contains no tcp" true
    (F.proto_set_empty (F.proto_inter diff tcp))

(* --- intervals --- *)

let test_intervals () =
  Alcotest.(check bool) "empty iff lo>hi" true (F.interval_empty (5, 4));
  Alcotest.(check bool)
    "inter overlap" false
    (F.interval_empty (F.interval_inter (10, 20) (15, 30)));
  Alcotest.(check (list (pair int int)))
    "sub middle splits" [ (10, 14); (18, 20) ]
    (F.interval_sub (10, 20) (15, 17));
  Alcotest.(check (list (pair int int)))
    "sub covering is empty" [] (F.interval_sub (10, 20) (0, 65535));
  Alcotest.(check (list (pair int int)))
    "sub disjoint is identity" [ (10, 20) ]
    (F.interval_sub (10, 20) (30, 40))

(* --- prefix subtraction / complement --- *)

let test_prefix_sub () =
  Alcotest.check prefix_list "p \\ p = 0" []
    (F.prefix_sub (prefix "10.0.0.0/8") (prefix "10.0.0.0/8"));
  Alcotest.check prefix_list "disjoint is identity"
    [ prefix "10.0.0.0/8" ]
    (F.prefix_sub (prefix "10.0.0.0/8") (prefix "192.168.0.0/16"));
  (* carving a /10 out of a /8 leaves one sibling per level *)
  let residue = F.prefix_sub (prefix "10.0.0.0/8") (prefix "10.64.0.0/10") in
  Alcotest.check prefix_list "10/8 \\ 10.64/10"
    [ prefix "10.128.0.0/9"; prefix "10.0.0.0/10" ]
    residue;
  (* the residue is disjoint from the subtrahend and unions back *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "residue disjoint" false
        (Prefix.overlaps p (prefix "10.64.0.0/10")))
    residue;
  Alcotest.check prefix_list "smaller \\ larger = 0" []
    (F.prefix_sub (prefix "10.64.0.0/10") (prefix "10.0.0.0/8"))

let test_prefix_complement () =
  Alcotest.check prefix_list "complement of all" []
    (F.prefix_complement [ prefix "0.0.0.0/0" ]);
  let comp = F.prefix_complement [ prefix "128.0.0.0/1" ] in
  Alcotest.check prefix_list "complement of 128/1" [ prefix "0.0.0.0/1" ] comp;
  (* complement of a /2 has one prefix per level *)
  let comp = F.prefix_complement [ prefix "192.0.0.0/2" ] in
  List.iter
    (fun p ->
      Alcotest.(check bool) "disjoint from input" false
        (Prefix.overlaps p (prefix "192.0.0.0/2")))
    comp;
  Alcotest.(check int) "two pieces" 2 (List.length comp)

(* --- space algebra --- *)

let test_space_algebra () =
  let a = space_of_rule "pass from 10.0.0.0/8 to any port 80:90" in
  let b = space_of_rule "block from 10.0.0.0/16 to any port 85" in
  Alcotest.(check bool) "overlap" true (F.overlaps a b);
  Alcotest.(check bool) "b inside a" true (F.covers ~outer:a ~inner:b);
  Alcotest.(check bool) "a not inside b" false (F.covers ~outer:b ~inner:a);
  Alcotest.(check bool) "a \\ a empty" true (F.is_empty (F.sub a a));
  let residual = F.sub a b in
  Alcotest.(check bool) "residual non-empty" false (F.is_empty residual);
  Alcotest.(check bool) "residual misses b" false (F.overlaps residual b);
  Alcotest.(check bool)
    "residual ∪ b ⊇ a" true
    (F.covers ~outer:(F.union residual b) ~inner:a)

let test_space_witness () =
  let s = space_of_rule "pass proto udp from 10.0.0.0/8 to 192.168.1.0/24 port 53" in
  (match F.witness s with
  | None -> Alcotest.fail "expected witness"
  | Some w ->
      Alcotest.(check bool) "witness in src" true
        (Prefix.mem w.Five_tuple.src (prefix "10.0.0.0/8"));
      Alcotest.(check bool) "witness in dst" true
        (Prefix.mem w.Five_tuple.dst (prefix "192.168.1.0/24"));
      Alcotest.(check int) "witness dport" 53 w.Five_tuple.dst_port;
      Alcotest.(check bool) "witness proto" true
        (w.Five_tuple.proto = Proto.Udp));
  Alcotest.(check bool) "empty has none" true
    (F.witness F.empty = None)

let test_space_negation () =
  let s = space_of_rule "pass from !10.0.0.0/8 to any" in
  let inside = space_of_rule "pass from 10.1.2.0/24 to any" in
  let outside = space_of_rule "pass from 192.168.0.0/16 to any" in
  Alcotest.(check bool) "negation excludes 10/8" false (F.overlaps s inside);
  Alcotest.(check bool) "negation keeps the rest" true
    (F.covers ~outer:s ~inner:outside)

let test_space_of_table_rule () =
  let tables = [ ("lan", [ prefix "10.0.0.0/8"; prefix "192.168.0.0/16" ]) ] in
  let s = space_of_rule ~tables "pass from <lan> to any" in
  Alcotest.(check bool) "covers both member prefixes" true
    (F.covers ~outer:s
       ~inner:(F.union
                 (space_of_rule "pass from 10.0.0.0/8 to any")
                 (space_of_rule "pass from 192.168.0.0/16 to any")));
  Alcotest.(check bool) "unknown table is empty" true
    (F.is_empty (space_of_rule "pass from <ghost> to any"))

(* --- whole-ruleset checks --- *)

let test_shadowed_by_quick () =
  let fs = findings_of "block quick from 10.0.0.0/8 to any\npass from 10.0.0.0/16 to any" in
  has_code "shadowed-rule" fs;
  (* the shadowed rule's own conds don't matter: it still can't fire *)
  let fs =
    findings_of
      "block quick from 10.0.0.0/8 to any\n\
       pass from 10.0.0.0/16 to any with eq(@src[name], ssh)"
  in
  has_code "shadowed-rule" fs;
  (* a conditional quick rule can't shadow: it may not match *)
  let fs =
    findings_of
      "block quick from 10.0.0.0/8 to any with eq(@src[name], worm)\n\
       pass from 10.0.0.0/16 to any"
  in
  no_code "shadowed-rule" fs

let test_shadowed_by_last_match () =
  (* non-quick rule always overridden by a later covering rule *)
  let fs = findings_of "pass from 10.0.0.0/16 to any port 22\nblock from 10.0.0.0/8 to any" in
  has_code "shadowed-rule" fs;
  (* …but a later partial cover leaves it live *)
  let fs = findings_of "pass from 10.0.0.0/16 to any\nblock from 10.0.1.0/24 to any" in
  no_code "shadowed-rule" fs;
  (* quick protects against later rules *)
  let fs = findings_of "pass quick from 10.0.0.0/16 to any port 22\nblock from 10.0.0.0/8 to any" in
  no_code "shadowed-rule" fs

let test_conflicts () =
  (* partial overlap with opposite actions: conflict with a witness *)
  let fs = findings_of "pass from 10.0.0.0/8 to any port 80:90\nblock from any to any port 85:100" in
  (match find_code "rule-conflict" fs with
  | None -> Alcotest.fail "expected rule-conflict"
  | Some f ->
      (match f.C.witness with
      | None -> Alcotest.fail "conflict needs a witness"
      | Some w ->
          Alcotest.(check bool) "witness src in 10/8" true
            (Prefix.mem w.Five_tuple.src (prefix "10.0.0.0/8"));
          Alcotest.(check bool) "witness port in overlap" true
            (w.Five_tuple.dst_port >= 85 && w.Five_tuple.dst_port <= 90)));
  (* containment is the PF idiom (block all + pass from <lan>): no conflict *)
  let fs = findings_of "block all\npass from 10.0.0.0/8 to any" in
  no_code "rule-conflict" fs;
  (* same action: no conflict *)
  let fs = findings_of "pass from 10.0.0.0/8 to any port 80:90\npass from any to any port 85:100" in
  no_code "rule-conflict" fs

let test_table_cycle () =
  let fs =
    findings_of
      "table <a> { <b> }\ntable <b> { <a> }\npass from <a> to any"
  in
  has_code "table-cycle" fs;
  Alcotest.(check bool) "cycle is an error" true (C.has_errors fs);
  (* nested refs that terminate resolve fine *)
  let fs =
    findings_of
      "table <base> { 10.0.0.0/8 }\ntable <all> { <base> 192.168.0.0/16 }\n\
       block all\npass from <all> to any"
  in
  no_code "table-cycle" fs;
  no_code "undefined-table" fs

let test_undefined_references () =
  let fs = findings_of "pass from <nowhere> to any" in
  has_code "undefined-table" fs;
  let fs = findings_of "pass all with member(@src[name], $badmacro)" in
  has_code "undefined-macro" fs;
  Alcotest.(check bool) "undefined refs are errors" true (C.has_errors fs);
  let fs = findings_of "pass all with member(@mydict[k], x)" in
  has_code "undefined-dict" fs;
  no_code "undefined-dict"
    (findings_of "pass all with member(@src[name], ssh)")

let test_default_fallthrough () =
  let fs = findings_of "pass from 10.0.0.0/8 to any" in
  (match find_code "default-fallthrough" fs with
  | None -> Alcotest.fail "expected default-fallthrough"
  | Some f ->
      Alcotest.(check bool) "info severity" true (f.C.severity = C.Info);
      Alcotest.(check bool) "has witness outside 10/8" true
        (match f.C.witness with
        | Some w -> not (Prefix.mem w.Five_tuple.src (prefix "10.0.0.0/8"))
        | None -> false));
  (* full coverage: fallthrough reported as unreachable, no witness *)
  let fs = findings_of "block all" in
  match find_code "default-fallthrough" fs with
  | Some { C.witness = None; _ } -> ()
  | Some _ -> Alcotest.fail "covered default should have no witness"
  | None -> Alcotest.fail "fallthrough finding should still appear"

let test_unanswerable_keys () =
  let conf s =
    match Identxx.Config.parse s with
    | Ok c -> c
    | Error e -> Alcotest.failf "config error: %s" e
  in
  let configs = [ ("host.identxx.conf", conf "os-name : Linux\n") ] in
  let policy = "block all\npass from any to any with eq(@dst[machine-room], dmz)" in
  (* no configs: check is skipped entirely *)
  no_code "unanswerable-key" (findings_of policy);
  has_code "unanswerable-key" (findings_of ~configs policy);
  (* a key any config answers is fine *)
  no_code "unanswerable-key"
    (findings_of ~configs
       "block all\npass from any to any with eq(@dst[os-name], plan9)");
  (* built-in keys need no config entry *)
  List.iter
    (fun key ->
      no_code "unanswerable-key"
        (findings_of ~configs
           (Printf.sprintf
              "block all\npass from any to any with eq(@src[%s], x)" key)))
    C.daemon_builtin_keys

let test_exit_code_contract () =
  let warn_only = findings_of "block quick all\npass from any to any port 80" in
  has_code "shadowed-rule" warn_only;
  Alcotest.(check int) "warnings exit 0" 0 (Analysis.Report.exit_code warn_only);
  let errors = findings_of "pass from <ghost> to any" in
  Alcotest.(check int) "errors exit 1" 1 (Analysis.Report.exit_code errors)

let test_report_locator () =
  let files = [ ("a.control", "block all\npass all"); ("b.control", "pass from any to any port 80") ] in
  Alcotest.(check (pair string int)) "first file line 1"
    ("a.control", 1)
    (Analysis.Report.locator files 1);
  Alcotest.(check (pair string int)) "first file line 2"
    ("a.control", 2)
    (Analysis.Report.locator files 2);
  Alcotest.(check (pair string int)) "second file restarts numbering"
    ("b.control", 1)
    (Analysis.Report.locator files 3)

(* --- integration: policy store strict mode, precompile offload --- *)

let test_policy_store_strict () =
  (* an undefined macro compiles (Env.build only fails at flow time) but
     the strict store's analysis pass rejects it *)
  let bad = "block all\npass all with member(@src[name], $badmacro)" in
  let store = Identxx_core.Policy_store.create ~strict:true () in
  (match Identxx_core.Policy_store.add store ~name:"10-bad" bad with
  | Ok () -> Alcotest.fail "strict store accepted an undefined macro"
  | Error e ->
      Alcotest.(check bool) "mentions the macro" true
        (contains_substring e "badmacro"));
  Alcotest.(check int) "rolled back" 0
    (List.length (Identxx_core.Policy_store.files store));
  (* warnings do not block even in strict mode *)
  (match
     Identxx_core.Policy_store.add store ~name:"20-warn"
       "block quick all\npass from any to any port 80"
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "strict store rejected warnings: %s" e);
  let lax = Identxx_core.Policy_store.create () in
  match Identxx_core.Policy_store.add lax ~name:"10-bad" bad with
  | Ok () -> ()
  | Error e -> Alcotest.failf "non-strict add failed: %s" e

let test_precompile_disjoint_offload () =
  (* A compilable `block quick` AFTER a non-compilable quick rule is
     still offloaded when their flow-spaces are disjoint… *)
  let env =
    env_of
      "pass quick from 10.0.0.0/8 to any with eq(@src[name], ssh) keep state\n\
       block quick from 192.168.0.0/16 to any\n\
       block all"
  in
  let drops = Identxx_core.Precompile.drop_matches env in
  Alcotest.(check bool) "disjoint blocker offloaded" true (drops <> []);
  (* …but not when they overlap: the conditional rule may pass first. *)
  let env =
    env_of
      "pass quick from 192.168.0.0/24 to any with eq(@src[name], ssh) keep state\n\
       block quick from 192.168.0.0/16 to any\n\
       block all"
  in
  Alcotest.(check int) "overlapping blocker withheld" 0
    (List.length (Identxx_core.Precompile.drop_matches env))

let () =
  Alcotest.run "analysis"
    [
      ( "flowspace",
        [
          Alcotest.test_case "proto sets" `Quick test_proto_sets;
          Alcotest.test_case "intervals" `Quick test_intervals;
          Alcotest.test_case "prefix subtraction" `Quick test_prefix_sub;
          Alcotest.test_case "prefix complement" `Quick test_prefix_complement;
          Alcotest.test_case "space algebra" `Quick test_space_algebra;
          Alcotest.test_case "witness" `Quick test_space_witness;
          Alcotest.test_case "negation" `Quick test_space_negation;
          Alcotest.test_case "table rules" `Quick test_space_of_table_rule;
        ] );
      ( "checks",
        [
          Alcotest.test_case "shadowed by quick" `Quick test_shadowed_by_quick;
          Alcotest.test_case "shadowed by last-match" `Quick
            test_shadowed_by_last_match;
          Alcotest.test_case "conflicts" `Quick test_conflicts;
          Alcotest.test_case "table cycles" `Quick test_table_cycle;
          Alcotest.test_case "undefined references" `Quick
            test_undefined_references;
          Alcotest.test_case "default fallthrough" `Quick
            test_default_fallthrough;
          Alcotest.test_case "unanswerable keys" `Quick test_unanswerable_keys;
          Alcotest.test_case "exit code contract" `Quick
            test_exit_code_contract;
          Alcotest.test_case "report locator" `Quick test_report_locator;
        ] );
      ( "integration",
        [
          Alcotest.test_case "policy store strict" `Quick
            test_policy_store_strict;
          Alcotest.test_case "precompile disjoint offload" `Quick
            test_precompile_disjoint_offload;
        ] );
    ]

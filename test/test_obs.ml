(* The observability layer (lib/obs): registry instrument semantics
   (bucket boundaries, label-set identity, reset, the enabled gate),
   deterministic snapshot ordering, the JSON emitter/parser round trip,
   the exporter round trip (prometheus = prometheus_of_series ∘ of_json
   ∘ json), and span collection (nesting, events, retention cap, the
   null span when disabled). *)

module R = Obs.Registry
module Span = Obs.Span
module Json = Obs.Json
module Export = Obs.Export

module Window = Obs.Window
module Health = Obs.Health
module Recorder = Obs.Recorder

let check = Alcotest.check

(* --- registry --- *)

let test_counter_basics () =
  let r = R.create () in
  let c = R.counter r "requests_total" in
  R.Counter.inc c;
  R.Counter.add c 4;
  check Alcotest.int "value" 5 (R.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.Registry.Counter.add: negative increment")
    (fun () -> R.Counter.add c (-1));
  let g = R.gauge r "depth" in
  R.Gauge.set g 2.5;
  R.Gauge.add g (-1.);
  check (Alcotest.float 1e-9) "gauge" 1.5 (R.Gauge.value g)

let test_disabled_gate () =
  let r = R.create ~enabled:false () in
  let c = R.counter r "c_total" in
  let h = R.histogram r "h_seconds" in
  R.Counter.inc c;
  R.Histogram.observe h 0.5;
  check Alcotest.int "counter untouched" 0 (R.Counter.value c);
  check Alcotest.int "histogram untouched" 0 (R.Histogram.count h);
  R.set_enabled r true;
  R.Counter.inc c;
  R.Histogram.observe h 0.5;
  check Alcotest.int "counter counts once enabled" 1 (R.Counter.value c);
  check Alcotest.int "histogram counts once enabled" 1 (R.Histogram.count h)

let test_label_identity () =
  let r = R.create () in
  (* Same name + same label set (any order) is the same instrument. *)
  let a = R.counter r ~labels:[ ("x", "1"); ("y", "2") ] "c_total" in
  let b = R.counter r ~labels:[ ("y", "2"); ("x", "1") ] "c_total" in
  let other = R.counter r ~labels:[ ("x", "1"); ("y", "3") ] "c_total" in
  R.Counter.inc a;
  R.Counter.inc b;
  R.Counter.inc other;
  check Alcotest.int "shared series" 2 (R.Counter.value a);
  check Alcotest.int "distinct series" 1 (R.Counter.value other);
  (* Same name, different kind: refused. *)
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs.Registry: c_total is a counter, not a gauge")
    (fun () -> ignore (R.gauge r "c_total"))

let test_histogram_buckets () =
  let r = R.create () in
  let h = R.histogram r ~buckets:[ 0.01; 0.1; 1. ] "lat_seconds" in
  (* le semantics: a value equal to a bound lands in that bucket. *)
  List.iter (R.Histogram.observe h) [ 0.005; 0.01; 0.05; 1.; 5. ];
  check Alcotest.int "count" 5 (R.Histogram.count h);
  check (Alcotest.float 1e-9) "sum" 6.065 (R.Histogram.sum h);
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) Alcotest.int))
    "cumulative buckets"
    [ (0.01, 2); (0.1, 3); (1., 4) ]
    (R.Histogram.buckets h);
  Alcotest.check_raises "non-increasing bounds rejected"
    (Invalid_argument
       "Obs.Registry: bad_seconds: buckets must be strictly increasing")
    (fun () -> ignore (R.histogram r ~buckets:[ 1.; 1. ] "bad_seconds"))

let test_reset () =
  let r = R.create () in
  let c = R.counter r "c_total" in
  let g = R.gauge r "g" in
  let h = R.histogram r "h_seconds" in
  R.counter_fn r "live_total" (fun () -> 7);
  R.Counter.inc c;
  R.Gauge.set g 3.;
  R.Histogram.observe h 0.2;
  R.reset r;
  check Alcotest.int "counter zeroed" 0 (R.Counter.value c);
  check (Alcotest.float 1e-9) "gauge zeroed" 0. (R.Gauge.value g);
  check Alcotest.int "histogram zeroed" 0 (R.Histogram.count h);
  (* Callback series sample live state; reset does not touch them. *)
  let live =
    List.find (fun s -> s.R.name = "live_total") (R.snapshot r)
  in
  check Alcotest.bool "callback survives reset" true
    (live.R.value = R.Counter_v 7)

let test_snapshot_ordering () =
  let r = R.create () in
  ignore (R.counter r ~labels:[ ("host", "b") ] "z_total");
  ignore (R.counter r ~labels:[ ("host", "a") ] "z_total");
  ignore (R.gauge r "a_gauge");
  R.gauge_fn r "m_fn" (fun () -> 1.);
  let names =
    List.map
      (fun s ->
        s.R.name
        ^ String.concat "" (List.map (fun (k, v) -> "{" ^ k ^ "=" ^ v ^ "}")
                              s.R.labels))
      (R.snapshot r)
  in
  check
    (Alcotest.list Alcotest.string)
    "sorted by name then labels"
    [ "a_gauge"; "m_fn"; "z_total{host=a}"; "z_total{host=b}" ]
    names

(* --- JSON emitter/parser --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\n\t\xe2\x9c\x93");
        ("n", Json.Num 0.00012000000000000002);
        ("i", Json.Num 42.);
        ("l", Json.List [ Json.Bool true; Json.Null; Json.Num (-1.5) ]);
        ("o", Json.Obj []);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> check Alcotest.bool "compact round trip" true (v = v')
  | Error e -> Alcotest.failf "compact reparse: %s" e);
  (match Json.of_string (Json.to_string ~pretty:true v) with
  | Ok v' -> check Alcotest.bool "pretty round trip" true (v = v')
  | Error e -> Alcotest.failf "pretty reparse: %s" e);
  (match Json.of_string "{\"u\": \"\\u2713\", \"e\": 1.5e-3}" with
  | Ok v ->
      check (Alcotest.option Alcotest.string) "unicode escape"
        (Some "\xe2\x9c\x93")
        (Option.bind (Json.member "u" v) Json.to_str);
      check
        (Alcotest.option (Alcotest.float 1e-12))
        "exponent" (Some 0.0015)
        (Option.bind (Json.member "e" v) Json.to_float)
  | Error e -> Alcotest.failf "standard JSON: %s" e);
  match Json.of_string "{\"a\": }" with
  | Ok _ -> Alcotest.fail "malformed JSON accepted"
  | Error _ -> ()

(* --- exporters --- *)

let sample_registry () =
  let r = R.create () in
  let c = R.counter r ~help:"Flows seen." ~labels:[ ("controller", "0") ]
      "flows_total"
  in
  R.Counter.add c 12;
  let g = R.gauge r "pending" in
  R.Gauge.set g 3.;
  let h =
    R.histogram r ~help:"Setup latency." ~buckets:[ 0.001; 0.01 ]
      "setup_seconds"
  in
  R.Histogram.observe h 0.0005;
  R.Histogram.observe h 0.02;
  r

let test_prometheus_format () =
  let r = sample_registry () in
  let text = Export.prometheus r in
  let expect_lines =
    [
      "# HELP flows_total Flows seen.";
      "# TYPE flows_total counter";
      "flows_total{controller=\"0\"} 12";
      "# TYPE pending gauge";
      "pending 3";
      "# HELP setup_seconds Setup latency.";
      "# TYPE setup_seconds histogram";
      "setup_seconds_bucket{le=\"0.001\"} 1";
      "setup_seconds_bucket{le=\"0.01\"} 1";
      "setup_seconds_bucket{le=\"+Inf\"} 2";
      "setup_seconds_sum 0.0205";
      "setup_seconds_count 2";
    ]
  in
  List.iter
    (fun line ->
      check Alcotest.bool (Printf.sprintf "has %S" line) true
        (List.mem line (String.split_on_char '\n' text)))
    expect_lines

let test_export_roundtrip () =
  let r = sample_registry () in
  let reparsed =
    match Json.of_string (Export.json_string r) with
    | Error e -> Alcotest.failf "snapshot reparse: %s" e
    | Ok j -> (
        match Export.of_json j with
        | Error e -> Alcotest.failf "snapshot schema: %s" e
        | Ok series -> series)
  in
  check Alcotest.string "prometheus byte-identical through JSON"
    (Export.prometheus r)
    (Export.prometheus_of_series reparsed);
  match Export.of_json (Json.Obj [ ("metrics", Json.Num 1.) ]) with
  | Ok _ -> Alcotest.fail "bad snapshot accepted"
  | Error _ -> ()

(* --- spans --- *)

let test_span_tree () =
  let t = Span.create () in
  let root = Span.start t ~at:1.0 ~attrs:[ ("flow", "f") ] "flow-setup" in
  check Alcotest.bool "live" true (Span.is_live root);
  let q = Span.start t ~at:1.1 ~parent:root ~attrs:[ ("host", "h") ] "query" in
  Span.event q ~at:1.2 "retry";
  Span.set_attr q "outcome" "answered";
  Span.finish t ~at:1.3 q;
  Span.set_attr root "decision" "pass";
  Span.finish t ~at:1.5 root;
  (match Span.finished t with
  | [ sp ] ->
      check Alcotest.string "name" "flow-setup" (Span.name sp);
      check (Alcotest.option (Alcotest.float 1e-9)) "duration" (Some 0.5)
        (Span.duration sp);
      check Alcotest.bool "attrs" true
        (List.mem ("decision", "pass") (Span.attrs sp));
      (match Span.children sp with
      | [ child ] ->
          check Alcotest.string "child" "query" (Span.name child);
          check Alcotest.int "child events" 1
            (List.length (Span.events child))
      | l -> Alcotest.failf "expected 1 child, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l));
  (* Export shape: {"spans": [...], "dropped": n}. *)
  let j = Span.export t in
  check Alcotest.int "exported spans" 1
    (List.length (Json.to_list (Option.get (Json.member "spans" j))));
  check
    (Alcotest.option Alcotest.int)
    "dropped" (Some 0)
    (Option.bind (Json.member "dropped" j) Json.to_int);
  (* The JSON is parseable by our own parser. *)
  match Json.of_string (Json.to_string ~pretty:true j) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "span export reparse: %s" e

let test_span_retention () =
  let t = Span.create ~capacity:3 () in
  for i = 1 to 5 do
    let sp = Span.start t ~at:(float_of_int i) "s" in
    Span.finish t ~at:(float_of_int i +. 0.5) sp
  done;
  check Alcotest.int "cap respected" 3 (List.length (Span.finished t));
  check Alcotest.int "lifetime count" 5 (Span.count t);
  check
    (Alcotest.option Alcotest.int)
    "dropped counted" (Some 2)
    (Option.bind (Json.member "dropped" (Span.export t)) Json.to_int)

let test_span_sampling () =
  let t = Span.create () in
  Span.set_sample_rate t 0.;
  (* An unsampled root behaves normally while open but is discarded —
     and counted apart from capacity drops — at finish. *)
  let sp = Span.start t ~at:0. ~sampled:false "flow-setup" in
  check Alcotest.bool "unsampled root stays live" true (Span.is_live sp);
  check Alcotest.bool "not sampled" false (Span.is_sampled sp);
  let q = Span.start t ~at:0.1 ~parent:sp "query" in
  Span.finish t ~at:0.2 q;
  Span.finish t ~at:0.3 sp;
  check Alcotest.int "discarded" 0 (List.length (Span.finished t));
  check Alcotest.int "sampled_out counted" 1 (Span.sampled_out t);
  check Alcotest.int "kept count untouched" 0 (Span.count t);
  (* force_sample revives the head decision before finish. *)
  let sp2 = Span.start t ~at:1. ~sampled:false "flow-setup" in
  Span.force_sample sp2;
  check Alcotest.bool "revived" true (Span.is_sampled sp2);
  Span.finish t ~at:1.5 sp2;
  check Alcotest.int "kept" 1 (List.length (Span.finished t));
  check Alcotest.int "sampled_out unchanged" 1 (Span.sampled_out t);
  (* Export reports the two drop causes apart. *)
  let j = Span.export t in
  check (Alcotest.option Alcotest.int) "export sampled_out" (Some 1)
    (Option.bind (Json.member "sampled_out" j) Json.to_int);
  check (Alcotest.option Alcotest.int) "export dropped" (Some 0)
    (Option.bind (Json.member "dropped" j) Json.to_int)

let test_span_drop_accounting () =
  (* Capacity drops and sampling drops land in separate fields. *)
  let t = Span.create ~capacity:2 () in
  for i = 1 to 4 do
    let sp = Span.start t ~at:(float_of_int i) "s" in
    Span.finish t ~at:(float_of_int i +. 0.5) sp
  done;
  let sp = Span.start t ~at:5. ~sampled:false "s" in
  Span.finish t ~at:5.5 sp;
  check Alcotest.int "capacity drops" 2 (Span.capacity_dropped t);
  check Alcotest.int "sampling drops" 1 (Span.sampled_out t);
  let j = Span.export t in
  check (Alcotest.option Alcotest.int) "export dropped" (Some 2)
    (Option.bind (Json.member "dropped" j) Json.to_int);
  check (Alcotest.option Alcotest.int) "export sampled_out" (Some 1)
    (Option.bind (Json.member "sampled_out" j) Json.to_int);
  Span.clear t;
  check Alcotest.int "clear resets sampled_out" 0 (Span.sampled_out t)

let test_should_sample () =
  let t = Span.create () in
  check Alcotest.bool "rate 1 keeps all" true (Span.should_sample t ~id:"x");
  Span.set_sample_rate t 0.;
  check Alcotest.bool "rate 0 keeps none" false (Span.should_sample t ~id:"x");
  Span.set_sample_rate t 0.5;
  (* Deterministic: same id, same coin. *)
  let a = Span.should_sample t ~id:"abcd1234deadbeef" in
  check Alcotest.bool "deterministic" a
    (Span.should_sample t ~id:"abcd1234deadbeef");
  Alcotest.check_raises "rate outside [0,1] rejected"
    (Invalid_argument "Obs.Span.set_sample_rate: rate must be in [0, 1]")
    (fun () -> Span.set_sample_rate t 1.5)

let test_trace_context () =
  let module Tc = Obs.Trace_context in
  let ctx = Tc.make ~seed:"tcp 10.0.0.1:50000 -> 10.0.0.2:80" ~seq:0 ~sampled:true in
  check Alcotest.int "trace id is 16 hex" 16 (String.length ctx.Tc.trace_id);
  check Alcotest.int "span id is 8 hex" 8 (String.length ctx.Tc.span_id);
  (* Deterministic: same seed and seq reproduce the ids. *)
  let ctx' = Tc.make ~seed:"tcp 10.0.0.1:50000 -> 10.0.0.2:80" ~seq:0 ~sampled:true in
  check Alcotest.bool "deterministic ids" true (Tc.equal ctx ctx');
  let other = Tc.make ~seed:"tcp 10.0.0.1:50000 -> 10.0.0.2:80" ~seq:1 ~sampled:true in
  check Alcotest.bool "seq disambiguates" false
    (String.equal ctx.Tc.trace_id other.Tc.trace_id);
  (* Children share the trace id, get fresh span ids, deterministically. *)
  let c1 = Tc.child ctx 1 and c2 = Tc.child ctx 2 in
  check Alcotest.string "child keeps trace id" ctx.Tc.trace_id c1.Tc.trace_id;
  check Alcotest.bool "children differ" false
    (String.equal c1.Tc.span_id c2.Tc.span_id);
  check Alcotest.bool "child deterministic" true (Tc.equal c1 (Tc.child ctx 1));
  (* Wire round trip, both sampling flags. *)
  List.iter
    (fun sampled ->
      let ctx = { ctx with Tc.sampled } in
      match Tc.of_string (Tc.to_string ctx) with
      | Some back -> check Alcotest.bool "round trip" true (Tc.equal ctx back)
      | None -> Alcotest.failf "no parse: %s" (Tc.to_string ctx))
    [ true; false ];
  (* Malformed tokens are rejected, not mangled. *)
  List.iter
    (fun s ->
      check Alcotest.bool ("rejects " ^ s) true (Tc.of_string s = None))
    [
      ""; "nothex"; "0123456789abcdef-01234567-x";
      "0123456789abcdef-0123456-s"; "0123456789abcde-01234567-s";
      "0123456789ABCDEF-01234567-s"; "0123456789abcdef-01234567-s-extra";
    ];
  (* unit_fraction lands in [0, 1). *)
  let f = Tc.unit_fraction ctx.Tc.trace_id in
  check Alcotest.bool "unit fraction in range" true (f >= 0. && f < 1.)

let test_span_disabled () =
  let t = Span.create ~enabled:false () in
  let sp = Span.start t ~at:0. "flow-setup" in
  check Alcotest.bool "null span" false (Span.is_live sp);
  (* Every operation on the null span is a no-op. *)
  Span.event sp ~at:0.1 "e";
  Span.set_attr sp "k" "v";
  let child = Span.start t ~at:0.2 ~parent:sp "q" in
  check Alcotest.bool "child of null is null" false (Span.is_live child);
  Span.finish t ~at:0.3 sp;
  check Alcotest.int "nothing retained" 0 (List.length (Span.finished t))

(* --- quantile estimation --- *)

let test_estimate_quantile () =
  (* 10 observations: 2 <= 0.01, 6 more <= 0.1 (8 cum), 2 more <= 1. *)
  let buckets = [ (0.01, 2); (0.1, 8); (1., 10) ] in
  let q p = R.estimate_quantile ~buckets ~count:10 p in
  check (Alcotest.option (Alcotest.float 1e-9)) "p50 interpolates"
    (Some (0.01 +. ((0.1 -. 0.01) *. (3. /. 6.))))
    (q 0.5);
  check (Alcotest.option (Alcotest.float 1e-9)) "p10 in first bucket"
    (Some 0.005) (q 0.1);
  check (Alcotest.option (Alcotest.float 1e-9)) "p100 is last bound" (Some 1.)
    (q 1.0);
  (* Rank past every finite bound clamps to the highest finite bound. *)
  check
    (Alcotest.option (Alcotest.float 1e-9))
    "overflow clamps" (Some 0.1)
    (R.estimate_quantile ~buckets:[ (0.01, 2); (0.1, 8) ] ~count:10 0.99);
  check (Alcotest.option (Alcotest.float 1e-9)) "empty" None
    (R.estimate_quantile ~buckets ~count:0 0.5);
  check (Alcotest.option (Alcotest.float 1e-9)) "out of range" None (q 1.5)

(* --- windows --- *)

let test_window_deltas () =
  let r = R.create () in
  let c = R.counter r "c_total" in
  let g = R.gauge r "g_depth" in
  let h = R.histogram r ~buckets:[ 0.01; 0.1 ] "h_seconds" in
  R.Counter.add c 3;
  let w = Window.create ~interval:1. ~now:0. r in
  (* Pre-existing counts are the baseline, not window content. *)
  R.Counter.add c 4;
  R.Gauge.set g 7.;
  R.Histogram.observe h 0.005;
  R.Histogram.observe h 0.05;
  let w1 = Window.close w ~now:2. in
  check Alcotest.int "seq" 1 w1.Window.w_seq;
  (match Window.find w1 ~metric:"c_total" ~labels:[] with
  | Some (Window.W_counter { delta; rate }) ->
      check Alcotest.int "delta excludes baseline" 4 delta;
      check (Alcotest.float 1e-9) "rate over 2s span" 2. rate
  | _ -> Alcotest.fail "no counter wvalue");
  (match Window.find w1 ~metric:"g_depth" ~labels:[] with
  | Some (Window.W_gauge v) -> check (Alcotest.float 1e-9) "gauge" 7. v
  | _ -> Alcotest.fail "no gauge wvalue");
  (match Window.find w1 ~metric:"h_seconds" ~labels:[] with
  | Some (Window.W_histogram { buckets; count; _ }) ->
      check Alcotest.int "hist count" 2 count;
      check
        (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) Alcotest.int))
        "windowed cumulative buckets"
        [ (0.01, 1); (0.1, 2) ]
        buckets
  | _ -> Alcotest.fail "no histogram wvalue");
  (* The next window starts from the new baseline: no change, zero
     delta; the gauge is still its level. *)
  let w2 = Window.close w ~now:3. in
  (match Window.find w2 ~metric:"c_total" ~labels:[] with
  | Some (Window.W_counter { delta; _ }) ->
      check Alcotest.int "quiet window" 0 delta
  | _ -> Alcotest.fail "no counter wvalue");
  check Alcotest.int "two closed" 2 (Window.closed w)

let test_window_tick_and_ring () =
  let r = R.create () in
  let w = Window.create ~depth:3 ~interval:1. ~now:0. r in
  check Alcotest.bool "early tick is a no-op" true
    (Window.tick w ~now:0.5 = None);
  (* A stalled driver produces one long window, not a burst. *)
  (match Window.tick w ~now:5.5 with
  | Some win ->
      check (Alcotest.float 1e-9) "long window" 5.5
        (win.Window.w_until -. win.Window.w_from)
  | None -> Alcotest.fail "tick should close");
  for i = 0 to 4 do
    ignore (Window.close w ~now:(6. +. float_of_int i))
  done;
  check Alcotest.int "lifetime count" 6 (Window.closed w);
  check Alcotest.int "ring keeps depth" 3 (List.length (Window.windows w));
  match Window.windows w with
  | newest :: _ -> check Alcotest.int "newest first" 6 newest.Window.w_seq
  | [] -> Alcotest.fail "empty ring"

(* Callback series are sampled when the window closes, on the caller's
   clock — not only at export time. *)
let test_window_samples_callbacks () =
  let r = R.create () in
  let level = ref 1. and hits = ref 0 in
  R.gauge_fn r "cb_depth" (fun () -> !level);
  R.counter_fn r "cb_total" (fun () -> !hits);
  let w = Window.create ~interval:1. ~now:0. r in
  level := 42.;
  hits := 5;
  let w1 = Window.close w ~now:1. in
  (match Window.find w1 ~metric:"cb_depth" ~labels:[] with
  | Some (Window.W_gauge v) ->
      check (Alcotest.float 1e-9) "gauge_fn sampled at close" 42. v
  | _ -> Alcotest.fail "no callback gauge");
  (match Window.find w1 ~metric:"cb_total" ~labels:[] with
  | Some (Window.W_counter { delta; _ }) ->
      check Alcotest.int "counter_fn delta vs baseline" 5 delta
  | _ -> Alcotest.fail "no callback counter");
  (* Between closes the window holds the close-time value even if the
     callback has moved on. *)
  level := 99.;
  match Window.find w1 ~metric:"cb_depth" ~labels:[] with
  | Some (Window.W_gauge v) ->
      check (Alcotest.float 1e-9) "window value is frozen" 42. v
  | _ -> Alcotest.fail "no callback gauge"

let test_window_grouped () =
  let r = R.create () in
  let inc ~shard ~src n =
    R.Counter.add
      (R.counter r
         ~labels:[ ("shard", shard); ("src", src) ]
         "pkt_total")
      n
  in
  let w = Window.create ~interval:1. ~now:0. r in
  inc ~shard:"0" ~src:"a" 3;
  inc ~shard:"1" ~src:"a" 4;
  inc ~shard:"1" ~src:"b" 5;
  let win = Window.close w ~now:1. in
  (* Grouping by src sums the shards away. *)
  (match Window.grouped win ~metric:"pkt_total" ~by:[ "src" ] with
  | [
      (la, Window.W_counter { delta = da; _ });
      (lb, Window.W_counter { delta = db; _ });
    ] ->
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "group a" [ ("src", "a") ] la;
      check Alcotest.int "a merged" 7 da;
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "group b" [ ("src", "b") ] lb;
      check Alcotest.int "b alone" 5 db
  | gs -> Alcotest.failf "expected 2 groups, got %d" (List.length gs));
  match Window.grouped win ~metric:"pkt_total" ~by:[] with
  | [ ([], Window.W_counter { delta; _ }) ] ->
      check Alcotest.int "everything merged" 12 delta
  | _ -> Alcotest.fail "expected one catch-all group"

(* --- health engine --- *)

let surge_rule =
  Health.rule ~name:"test_surge" ~help:"rate over 10/s" ~metric:"pkt_total"
    ~group_by:[ "src" ] ~label_as:"host"
    (Health.Threshold { over = 10. })

let test_health_edge_trigger () =
  let r = R.create () in
  let c = R.counter r ~labels:[ ("src", "a") ] "pkt_total" in
  let w = Window.create ~interval:1. ~now:0. r in
  let h = Health.create ~rules:[ surge_rule ] ~registry:r w in
  let fired = ref [] in
  Health.set_on_fire h (fun e -> fired := e :: !fired);
  (* Quiet window: nothing fires. *)
  check Alcotest.int "quiet" 0 (List.length (Health.step h ~now:1.));
  (* Surge: 100/s fires once, with the relabelled group. *)
  R.Counter.add c 100;
  (match Health.step h ~now:2. with
  | [ e ] ->
      check Alcotest.string "rule" "test_surge" e.Health.e_rule;
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "label_as rename"
        [ ("host", "a") ]
        e.Health.e_labels;
      check (Alcotest.float 1e-9) "value" 100. e.Health.e_value;
      check (Alcotest.float 1e-9) "threshold" 10. e.Health.e_threshold
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es));
  check Alcotest.int "on_fire ran" 1 (List.length !fired);
  (* Sustained: the same (rule, group) does not re-fire... *)
  R.Counter.add c 100;
  check Alcotest.int "sustained is silent" 0
    (List.length (Health.step h ~now:3.));
  check Alcotest.int "still active" 1 (List.length (Health.active h));
  (* ...until a quiet window re-arms it. *)
  check Alcotest.int "re-arm window" 0 (List.length (Health.step h ~now:4.));
  check Alcotest.int "re-armed" 0 (List.length (Health.active h));
  R.Counter.add c 100;
  check Alcotest.int "fires again" 1 (List.length (Health.step h ~now:5.));
  check Alcotest.int "lifetime events" 2 (List.length (Health.events h))

let test_health_exports () =
  let r = R.create () in
  let c = R.counter r ~labels:[ ("src", "a") ] "pkt_total" in
  let rec_ = Recorder.create () in
  let w = Window.create ~interval:1. ~now:0. r in
  let h = Health.create ~rules:[ surge_rule ] ~recorder:rec_ ~registry:r w in
  R.Counter.add c 100;
  ignore (Health.force_step h ~now:1.);
  (* The health metrics move... *)
  let v name labels =
    match
      List.find_opt
        (fun (s : R.series) -> s.R.name = name && s.R.labels = labels)
        (R.snapshot r)
    with
    | Some { R.value = R.Counter_v n; _ } -> float_of_int n
    | Some { R.value = R.Gauge_v g; _ } -> g
    | _ -> Alcotest.failf "series %s not found" name
  in
  check (Alcotest.float 1e-9) "windows_total" 1.
    (v "identxx_health_windows_total" []);
  check (Alcotest.float 1e-9) "events_total" 1.
    (v "identxx_health_events_total" [ ("rule", "test_surge") ]);
  check (Alcotest.float 1e-9) "active gauge" 1.
    (v "identxx_health_active" [ ("rule", "test_surge") ]);
  (* ...and the recorder holds the health event itself. *)
  match Recorder.events rec_ with
  | [ e ] ->
      check Alcotest.string "recorder kind" "health" e.Recorder.ev_kind;
      check
        (Alcotest.option Alcotest.string)
        "recorder rule attr" (Some "test_surge")
        (List.assoc_opt "rule" e.Recorder.ev_attrs)
  | es -> Alcotest.failf "expected 1 recorder event, got %d" (List.length es)

(* --- flight recorder --- *)

let test_recorder_ring () =
  let t = Recorder.create ~capacity:4 ~enabled:true () in
  for i = 1 to 10 do
    Recorder.record t ~at:(float_of_int i) "e"
  done;
  check Alcotest.int "count capped" 4 (Recorder.count t);
  check Alcotest.int "dropped" 6 (Recorder.dropped t);
  (match Recorder.events t with
  | newest :: _ -> check (Alcotest.float 1e-9) "newest kept" 10. newest.Recorder.ev_at
  | [] -> Alcotest.fail "empty ring");
  (* The null recorder swallows everything, even set_enabled. *)
  Recorder.set_enabled Recorder.null true;
  check Alcotest.bool "null stays disabled" false (Recorder.enabled Recorder.null);
  Recorder.record Recorder.null ~at:0. "e";
  check Alcotest.int "null retains nothing" 0 (Recorder.count Recorder.null)

let test_recorder_dump_canonical () =
  (* Two recorders fed the same events in different arrival orders dump
     byte-identically: the dump sorts by (at, kind, attrs). *)
  let evs =
    [
      (0.2, "query-sent", [ ("flow", "f1"); ("host", "a") ]);
      (0.1, "packet-in", [ ("flow", "f1") ]);
      (0.2, "query-sent", [ ("flow", "f1"); ("host", "b") ]);
      (0.3, "decision", [ ("flow", "f1"); ("verdict", "pass") ]);
    ]
  in
  let feed order =
    let t = Recorder.create ~enabled:true () in
    List.iter (fun (at, kind, attrs) -> Recorder.record t ~at ~attrs kind) order;
    Recorder.dump ~reason:"test" ~at:1. t
  in
  let a = feed evs and b = feed (List.rev evs) in
  check Alcotest.string "canonical dump" a b;
  let lines = String.split_on_char '\n' (String.trim a) in
  check Alcotest.int "header + events" 5 (List.length lines);
  check Alcotest.string "header"
    "{\"kind\":\"flight-recorder\",\"reason\":\"test\",\"at\":1,\"events\":4,\"dropped\":0}"
    (List.hd lines)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter and gauge basics" `Quick
            test_counter_basics;
          Alcotest.test_case "disabled gate" `Quick test_disabled_gate;
          Alcotest.test_case "label-set identity" `Quick test_label_identity;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "snapshot ordering" `Quick test_snapshot_ordering;
        ] );
      ("json", [ Alcotest.test_case "round trip" `Quick test_json_roundtrip ]);
      ( "export",
        [
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
          Alcotest.test_case "json round trip" `Quick test_export_roundtrip;
        ] );
      ( "span",
        [
          Alcotest.test_case "tree, attrs, events" `Quick test_span_tree;
          Alcotest.test_case "retention cap" `Quick test_span_retention;
          Alcotest.test_case "head sampling" `Quick test_span_sampling;
          Alcotest.test_case "drop accounting" `Quick test_span_drop_accounting;
          Alcotest.test_case "should_sample" `Quick test_should_sample;
          Alcotest.test_case "disabled collector" `Quick test_span_disabled;
        ] );
      ( "trace-context",
        [ Alcotest.test_case "ids and wire form" `Quick test_trace_context ] );
      ( "quantile",
        [ Alcotest.test_case "bucket estimation" `Quick test_estimate_quantile ]
      );
      ( "window",
        [
          Alcotest.test_case "counter/gauge/histogram deltas" `Quick
            test_window_deltas;
          Alcotest.test_case "tick and ring retention" `Quick
            test_window_tick_and_ring;
          Alcotest.test_case "callback series sampled at close" `Quick
            test_window_samples_callbacks;
          Alcotest.test_case "grouped label aggregation" `Quick
            test_window_grouped;
        ] );
      ( "health",
        [
          Alcotest.test_case "edge-triggered firing" `Quick
            test_health_edge_trigger;
          Alcotest.test_case "metrics, recorder, on_fire exports" `Quick
            test_health_exports;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring and null" `Quick test_recorder_ring;
          Alcotest.test_case "canonical dump" `Quick
            test_recorder_dump_canonical;
        ] );
    ]

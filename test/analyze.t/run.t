The semantic policy analyses: equiv, diff and slice compile policy
sets to forwarding decision diagrams and compare/partition the
flow space exactly.

  $ cat > old.control <<'EOF'
  > block all
  > pass from 10.0.0.0/8 to any port 80
  > EOF
  $ cat > new.control <<'EOF'
  > block all
  > pass from 10.0.0.0/8 to any port 8080
  > EOF

Equivalence of a policy set with itself, exit 0:

  $ identxx_ctl analyze equiv old.control --against old.control
  equivalent: both policy sets decide every flow identically

An inequivalent pair yields a concrete counterexample flow and
exit 2:

  $ identxx_ctl analyze equiv old.control --against new.control
  not equivalent: counterexample 0 10.0.0.0:0 -> 0.0.0.0:80
    old: pass (old.control:2)
    new: block (new.control:1)
  [2]

  $ identxx_ctl analyze equiv old.control --against new.control --format json
  {"equivalent":false,"counterexample":{"flow":"0 10.0.0.0:0 -> 0.0.0.0:80","old":{"kind":"static","action":"pass","lines":["old.control:2"]},"new":{"kind":"static","action":"block","lines":["new.control:1"]}}}
  [2]

diff reports the exact changed fraction of flow space with example
regions:

  $ identxx_ctl analyze diff old.control --against new.control
  changed: 1.1920929e-07 of flow space
  proto any from 10.0.0.0/8 port any to 0.0.0.0/0 port 80
    old: pass (old.control:2)
    new: block (new.control:1)
  proto any from 10.0.0.0/8 port any to 0.0.0.0/0 port 8080
    old: block (old.control:1)
    new: pass (new.control:2)

  $ identxx_ctl analyze diff old.control --against old.control --format json
  {"changed_fraction":0,"truncated":false,"deltas":[]}

slice partitions the flow space into statically decided regions and
the reactive residue that needs identity responses at flow time:

  $ cat > mixed.control <<'EOF'
  > block all
  > pass from 192.168.0.0/24 to any port 80
  > pass from 10.0.0.0/8 to any with eq(@src[name], firefox)
  > EOF
  $ identxx_ctl analyze slice mixed.control
  nodes: 5
  static coverage: 0.99609375
  ownership of statically decided flow space:
    mixed.control                0.99609375
  static block: proto any from 0.0.0.0/5 port any to 0.0.0.0/0 port any; proto any from 8.0.0.0/7 port any to 0.0.0.0/0 port any (mixed.control:1)
  static block: proto any from 11.0.0.0/8 port any to 0.0.0.0/0 port any; proto any from 12.0.0.0/6 port any to 0.0.0.0/0 port any; proto any from 16.0.0.0/4 port any to 0.0.0.0/0 port any; proto any from 32.0.0.0/3 port any to 0.0.0.0/0 port any; ... (5 more) (mixed.control:1)
  static block: proto any from 192.168.0.0/24 port any to 0.0.0.0/0 port 0:79 (mixed.control:1)
  static pass: proto any from 192.168.0.0/24 port any to 0.0.0.0/0 port 80 (mixed.control:2)
  static block: proto any from 192.168.0.0/24 port any to 0.0.0.0/0 port 81:65535 (mixed.control:1)
  static block: proto any from 192.168.1.0/24 port any to 0.0.0.0/0 port any; proto any from 192.168.2.0/23 port any to 0.0.0.0/0 port any; proto any from 192.168.4.0/22 port any to 0.0.0.0/0 port any; proto any from 192.168.8.0/21 port any to 0.0.0.0/0 port any; ... (15 more) (mixed.control:1)
  reactive: proto any from 10.0.0.0/8 port any to 0.0.0.0/0 port any (mixed.control:3; needs @src response)

JSON output carries the same partition for tooling:

  $ identxx_ctl analyze slice mixed.control --format json | head -c 120
  {"nodes":5,"static_coverage":0.99609375,"truncated":false,"ownership":[{"owner":"mixed.control","fraction":0.99609375}],

A coverage floor turns slice into a regression gate (threshold read
from a committed file; exit 1 on regression):

  $ echo 0.9999 > coverage.threshold
  $ identxx_ctl analyze slice mixed.control --min-coverage-file coverage.threshold >/dev/null
  error: static coverage 0.99609375 regressed below threshold 0.9999
  [1]
  $ echo 0.5 > coverage.threshold
  $ identxx_ctl analyze slice mixed.control --min-coverage-file coverage.threshold >/dev/null

Policies that fail to compile exit 1 with a diagnostic:

  $ cat > bad.control <<'EOF'
  > pass from 10.0.0.0/8 to any port 99999
  > EOF
  $ identxx_ctl analyze equiv bad.control --against old.control
  error: line 1: port out of range: 99999
  [1]

The legacy lint entry point is untouched: a bare file list still
runs the flow-space lint:

  $ identxx_ctl analyze old.control
  no findings in 1 file(s)

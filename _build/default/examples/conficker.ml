(* Figure 8: user- and application-specific rules — stopping Conficker.

   The 10-user-rules.control policy only admits LAN flows between
   "system" users where the destination runs the Server service AND the
   destination OS carries the MS08-067 patch. We replay a Conficker-like
   worm scan and legitimate Server traffic against it, and also compare
   what a port-based vanilla firewall can express.
   Run with: dune exec examples/conficker.exe *)

module PS = Identxx_core.Policy_store
module FI = Baselines.Flow_info
module E = Baselines.Enforcement

(* Figure 8, verbatim (with the includes() patch check). *)
let user_rules_10 =
  "table <lan> { 10.0.0.0/8 }\n\
   # default block everything\n\
   block all\n\
   # only allow ''system'' users in the LAN\n\
   pass from <lan> \\\n\
   with eq(@src[userID], system) \\\n\
   to <lan> \\\n\
   with eq(@dst[userID], system) \\\n\
   with eq(@dst[name], Server) \\\n\
   with includes(@dst[os-patch], MS08-067)"

let () =
  let population = Workload.Population.create ~clients:20 ~servers:5 () in
  let identxx = Baselines.Systems.identxx_exn ~policy:user_rules_10 () in

  (* The closest a vanilla firewall gets: allow 445 inside the LAN. It
     cannot see users, services or patch levels. *)
  let vanilla =
    Baselines.Systems.vanilla_exn
      ~policy:
        "table <lan> { 10.0.0.0/8 }\nblock all\npass from <lan> to <lan> port 445"
  in

  (* Patch-level checks need the os-patch key-value pair, so drive the
     Decision engine directly for that part. *)
  let policy = PS.create () in
  PS.add_exn policy ~name:"10-user-rules.control" user_rules_10;
  let decision = Identxx_core.Decision.create ~policy () in
  let response flow pairs =
    Identxx.Response.make ~flow
      [ List.map (fun (k, v) -> Identxx.Key_value.pair k v) pairs ]
  in
  let system_flow ~patched =
    let flow =
      Netcore.Five_tuple.tcp
        ~src:(Netcore.Ipv4.of_string "10.0.1.1")
        ~dst:(Netcore.Ipv4.of_string "10.0.1.2")
        ~src_port:49000 ~dst_port:445
    in
    {
      Identxx_core.Decision.flow;
      src_response = Some (response flow [ ("userID", "system") ]);
      dst_response =
        Some
          (response flow
             [
               ("userID", "system");
               ("name", "Server");
               ("os-patch", if patched then "MS08-001,MS08-067" else "MS08-001");
             ]);
    }
  in
  let patched_ok = Identxx_core.Decision.allows decision (system_flow ~patched:true) in
  let unpatched_blocked =
    not (Identxx_core.Decision.allows decision (system_flow ~patched:false))
  in
  Printf.printf "system->Server, patched destination:   %s\n"
    (if patched_ok then "PASS (intended)" else "BLOCK ** UNEXPECTED **");
  Printf.printf "system->Server, unpatched destination: %s\n"
    (if unpatched_blocked then "BLOCK (intended)" else "PASS ** UNEXPECTED **");

  (* The worm: a compromised user machine scans the LAN on 445. Under
     ident++ the scan's flows do not come from the system user, so every
     probe is refused; the vanilla firewall admits all of them. *)
  let compromised = (Workload.Population.clients population).(3) in
  let scan =
    Workload.Attack.worm_scan ~from:compromised
      ~targets:(Workload.Population.all population) ()
  in
  let score_identxx = E.score identxx scan in
  let score_vanilla = E.score vanilla scan in
  Printf.printf "\n=== Conficker-style scan (%d probes on :445) ===\n"
    score_identxx.E.total;
  Printf.printf "%-10s admitted %4d / %d\n" "identxx" score_identxx.E.admitted
    score_identxx.E.total;
  Printf.printf "%-10s admitted %4d / %d\n" "vanilla" score_vanilla.E.admitted
    score_vanilla.E.total;

  if
    patched_ok && unpatched_blocked
    && score_identxx.E.admitted = 0
    && score_vanilla.E.admitted = score_vanilla.E.total
  then print_endline "\nconficker OK: ident++ stops the scan, port filter cannot"
  else begin
    print_endline "\nconficker FAILED";
    exit 1
  end

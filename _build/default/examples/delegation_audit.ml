(* Delegation lifecycle: grant, audit, revoke (§1, §7).

   The administrator delegates to the research group by installing a
   30-research.control file that trusts flows signed by the group's key.
   Every decision the delegated rule makes lands in the controller's
   audit log (the delegation rule carries PF's `log` modifier). When the
   administrator revokes the delegation, the file is removed AND the
   flow caches are flushed, so revocation takes effect on the very next
   packet.
   Run with: dune exec examples/delegation_audit.exe *)

module Net = Openflow.Network
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module PS = Identxx_core.Policy_store

let () =
  let s = Deploy.simple_network () in
  let research = Idcrypto.Sign.generate "research-group" in
  Idcrypto.Sign.register (C.keystore s.controller) research;

  (* Base policy: default deny. *)
  PS.add_exn (C.policy s.controller) ~name:"00-base" "block all";

  (* The delegation: researchers may run what they have signed. The rule
     is marked `log` so every use of the delegation is audited. *)
  let delegation =
    Printf.sprintf
      "dict <pubkeys> { research : %s }\n\
       pass log from any \\\n\
       with allowed(@src[requirements]) \\\n\
       with verify(@src[req-sig], @pubkeys[research], @src[requirements]) \\\n\
       to any"
      research.Idcrypto.Sign.public
  in
  PS.add_exn (C.policy s.controller) ~name:"30-research" delegation;

  (* The researcher's app on the client, with signed requirements. *)
  let requirements = "pass from any to any port 7777" in
  let req_sig =
    Idcrypto.Sign.sign ~secret:research.Idcrypto.Sign.secret [ requirements ]
  in
  (match
     Identxx.Daemon.load_config
       (Identxx.Host.daemon s.client)
       ~name:"10-research"
       (Printf.sprintf
          "@app /usr/bin/research-app {\nname : research-app\nrequirements : %s\nreq-sig : %s\n}"
          requirements req_sig)
   with
  | Ok () -> ()
  | Error e -> failwith e);

  let send_flow () =
    let proc =
      Identxx.Host.run s.client ~user:"rika" ~groups:[ "research" ]
        ~exe:"/usr/bin/research-app" ()
    in
    let flow =
      Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
        ~dst_port:7777 ()
    in
    Net.send_from_host s.network ~name:"client"
      (Identxx.Host.first_packet s.client ~flow);
    Sim.Engine.run s.engine
  in

  print_endline "=== 1. delegation in force ===";
  send_flow ();
  send_flow ();
  let st = C.stats s.controller in
  Printf.printf "flows allowed under delegation: %d\n" st.C.allowed;

  print_endline "\n=== 2. audit trail ===";
  let audit = C.audit s.controller in
  Format.printf "%a" Identxx_core.Audit.pp audit;
  let flagged = Identxx_core.Audit.flagged audit in
  Printf.printf "entries flagged by the delegation's log rule: %d\n"
    (List.length flagged);

  print_endline "\n=== 3. administrator revokes the delegation ===";
  C.revoke_file s.controller ~name:"30-research";
  Sim.Engine.run s.engine;
  (* flush flow-mods propagate *)
  send_flow ();
  let st2 = C.stats s.controller in
  Printf.printf "after revocation: allowed=%d blocked=%d\n" st2.C.allowed
    st2.C.blocked;

  let ok =
    st.C.allowed = 2
    && List.length flagged = 2
    && st2.C.allowed = 2 (* unchanged *)
    && st2.C.blocked >= 1
  in
  if ok then
    print_endline
      "\ndelegation_audit OK: granted, audited, revoked with immediate effect"
  else begin
    print_endline "\ndelegation_audit FAILED";
    exit 1
  end

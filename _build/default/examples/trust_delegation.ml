(* Figures 6 and 7: trust delegation to a third party.

   "Secur", a security company, publishes firewall rules for
   applications. The thunderbird daemon config (Figure 6) carries
   Secur's requirements and signature; the controller's
   30-secur.control rule (Figure 7) admits any application whose rules
   were approved and signed by Secur and whose flow conforms to them.
   Run with: dune exec examples/trust_delegation.exe *)

open Netcore
module PS = Identxx_core.Policy_store
module D = Identxx_core.Decision

(* Figure 6's requirements: thunderbird may only talk to email servers. *)
let tb_requirements =
  "block all pass from any with eq(@src[name], thunderbird) to any with \
   eq(@dst[type], email-server)"

let thunderbird_config ~req_sig =
  Printf.sprintf
    "@app /usr/bin/thunderbird {\n\
     name : thunderbird\n\
     type : email-client\n\
     rule-maker : Secur\n\
     requirements : \\\n\
     block all \\\n\
     pass from any \\\n\
     with eq(@src[name], thunderbird) \\\n\
     to any \\\n\
     with eq(@dst[type], email-server)\n\
     req-sig : %s\n\
     }"
    req_sig

(* Figure 7, with Secur's real public handle in the dict. *)
let secur_control ~secur_pk =
  Printf.sprintf
    "dict <pubkeys> { Secur : %s }\n\
     block all\n\
     # Allow users to run any applications approved\n\
     # by Secur and following rules Secur provides\n\
     pass from any \\\n\
     with eq(@src[rule-maker], Secur) \\\n\
     with allowed(@src[requirements]) \\\n\
     with verify(@src[req-sig], \\\n\
     @pubkeys[Secur], \\\n\
     @src[exe-hash], \\\n\
     @src[app-name], \\\n\
     @src[requirements]) \\\n\
     to any"
    secur_pk

let mk_host name ip =
  Identxx.Host.create ~name ~mac:(Mac.of_int (Hashtbl.hash name land 0xffffff))
    ~ip:(Ipv4.of_string ip) ()

let daemon_response host ~flow ~as_source =
  let peer = if as_source then flow.Five_tuple.dst else flow.Five_tuple.src in
  Option.map fst
    (Identxx.Daemon.answer (Identxx.Host.daemon host) ~peer
       ~proto:flow.Five_tuple.proto ~src_port:flow.Five_tuple.src_port
       ~dst_port:flow.Five_tuple.dst_port ~keys:[])

let () =
  let secur = Idcrypto.Sign.generate "Secur" in
  let keystore = Idcrypto.Sign.keystore () in
  Idcrypto.Sign.register keystore secur;

  let laptop = mk_host "laptop" "192.168.0.20" in
  let mail = mk_host "mail" "192.168.5.1" in
  let web = mk_host "web" "192.168.5.2" in

  Identxx.Host.install_exe laptop ~path:"/usr/bin/thunderbird"
    ~content:"thunderbird-image-v91";
  let exe_hash =
    Option.get (Identxx.Host.exe_hash laptop ~path:"/usr/bin/thunderbird")
  in
  let req_sig =
    Idcrypto.Sign.sign ~secret:secur.Idcrypto.Sign.secret
      [ exe_hash; "thunderbird"; tb_requirements ]
  in
  (match
     Identxx.Daemon.load_config (Identxx.Host.daemon laptop) ~name:"40-secur"
       (thunderbird_config ~req_sig)
   with
  | Ok () -> ()
  | Error e -> failwith e);

  (* Servers advertise their type via the host-wide admin config. *)
  (match
     Identxx.Daemon.load_config (Identxx.Host.daemon mail) ~name:"00-admin"
       "type : email-server"
   with
  | Ok () -> ()
  | Error e -> failwith e);
  (match
     Identxx.Daemon.load_config (Identxx.Host.daemon web) ~name:"00-admin"
       "type : web-server"
   with
  | Ok () -> ()
  | Error e -> failwith e);

  let policy = PS.create () in
  PS.add_exn policy ~name:"30-secur.control"
    (secur_control ~secur_pk:secur.Idcrypto.Sign.public);
  let decision = D.create ~keystore ~policy () in

  let run name ~src_exe ~dst ~dst_port ~expect =
    let proc = Identxx.Host.run laptop ~user:"dana" ~exe:src_exe () in
    let dproc = Identxx.Host.run dst ~user:"system" ~exe:"/usr/sbin/daemon" () in
    Identxx.Host.listen dst ~proc:dproc ~port:dst_port ();
    let flow =
      Identxx.Host.connect laptop ~proc ~dst:(Identxx.Host.ip dst) ~dst_port ()
    in
    let input =
      {
        D.flow;
        src_response = daemon_response laptop ~flow ~as_source:true;
        dst_response = daemon_response dst ~flow ~as_source:false;
      }
    in
    let allowed = D.allows decision input in
    Printf.printf "%-46s %-6s %s\n" name
      (if allowed then "PASS" else "BLOCK")
      (if allowed = expect then "(intended)" else "** UNEXPECTED **");
    allowed = expect
  in

  print_endline "=== Figure 6/7: trust delegation to Secur ===";
  let ok1 =
    run "thunderbird -> mail server :25" ~src_exe:"/usr/bin/thunderbird"
      ~dst:mail ~dst_port:25 ~expect:true
  in
  let ok2 =
    run "thunderbird -> web server :25 (wrong type)"
      ~src_exe:"/usr/bin/thunderbird" ~dst:web ~dst_port:25 ~expect:false
  in
  let ok3 =
    run "unvetted app -> mail server" ~src_exe:"/usr/bin/unvetted" ~dst:mail
      ~dst_port:25 ~expect:false
  in

  (* A recompiled (trojaned) thunderbird: the hash no longer matches
     what Secur signed, so the delegation rule rejects it. *)
  Identxx.Host.install_exe laptop ~path:"/usr/bin/thunderbird"
    ~content:"thunderbird-image-TROJANED";
  let ok4 =
    run "trojaned thunderbird -> mail server" ~src_exe:"/usr/bin/thunderbird"
      ~dst:mail ~dst_port:25 ~expect:false
  in

  if ok1 && ok2 && ok3 && ok4 then
    print_endline "\ntrust_delegation OK: Secur-signed rules enforced"
  else begin
    print_endline "\ntrust_delegation FAILED";
    exit 1
  end

(* A small enterprise, end to end.

   Twenty hosts across a four-switch chain run a mix of applications;
   the controller enforces the §1-motivated policy (approved apps only,
   skype everywhere except the file server) entirely from ident++
   responses. Every flow traverses the real simulated fabric: table
   miss, queries, responses, path installation, delivery.
   Run with: dune exec examples/enterprise.exe *)

open Netcore
module Net = Openflow.Network
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module PS = Identxx_core.Policy_store

let apps =
  [|
    ("/usr/bin/firefox", 80, true);
    ("/usr/bin/ssh", 22, true);
    ("/usr/bin/skype", 33000, true);
    ("/usr/bin/telnet", 23, false);
    ("/opt/miner", 8333, false);
  |]

let () =
  let engine, network, controller, hosts =
    Deploy.linear_network ~switches:4 ~hosts_per_switch:5 ()
  in
  (* hosts.(0) (10.0.1.1) is the protected file server. *)
  let server = hosts.(0) in
  PS.add_exn (C.policy controller) ~name:"00-enterprise"
    (Printf.sprintf
       "table <fileserver> { %s }\n\
        allowed = \"{ firefox ssh skype }\"\n\
        block all\n\
        pass all with member(@src[name], $allowed) keep state\n\
        block log from any to <fileserver> with eq(@src[name], skype)"
       (Ipv4.to_string (Identxx.Host.ip server)));

  (* Drive a deterministic mix of flows. *)
  let prng = Sim.Prng.create 2009 in
  let total = 120 in
  let expected_allowed = ref 0 in
  for i = 1 to total do
    let src = hosts.(1 + Sim.Prng.int prng (Array.length hosts - 1)) in
    let exe, port, approved = apps.(Sim.Prng.int prng (Array.length apps)) in
    let to_server = i mod 4 = 0 in
    let dst = if to_server then server else hosts.(Sim.Prng.int prng (Array.length hosts)) in
    let dst = if Identxx.Host.ip dst = Identxx.Host.ip src then server else dst in
    let is_skype = exe = "/usr/bin/skype" in
    let should_pass =
      approved && not (is_skype && Identxx.Host.ip dst = Identxx.Host.ip server)
    in
    if should_pass then incr expected_allowed;
    let proc = Identxx.Host.run src ~user:(Printf.sprintf "u%d" i) ~exe () in
    let flow =
      Identxx.Host.connect src ~proc ~dst:(Identxx.Host.ip dst) ~dst_port:port ()
    in
    Net.send_from_host network ~name:(Identxx.Host.name src)
      (Identxx.Host.first_packet src ~flow);
    Sim.Engine.run engine
  done;

  let st = C.stats controller in
  Printf.printf "=== enterprise run: %d flows over 4 switches / 20 hosts ===\n"
    total;
  Printf.printf "allowed: %d (expected %d)\n" st.C.allowed !expected_allowed;
  Printf.printf "blocked: %d (expected %d)\n" st.C.blocked
    (total - !expected_allowed);
  Printf.printf "queries: %d  responses: %d  timeouts: %d  eval errors: %d\n"
    st.C.queries_sent st.C.responses_received st.C.query_timeouts
    st.C.eval_errors;
  let audit = C.audit controller in
  Printf.printf "audit entries: %d (flagged skype->fileserver blocks: %d)\n"
    (Identxx_core.Audit.count audit)
    (List.length (Identxx_core.Audit.flagged audit));
  (* Poll OpenFlow flow-stats from the busiest switch and show the most
     active cached flows — the monitoring view an administrator gets. *)
  C.request_stats controller 2;
  Sim.Engine.run engine;
  (match C.switch_stats controller 2 with
  | Some reply ->
      let top =
        List.sort
          (fun (a : Openflow.Message.flow_stat) b ->
            compare b.Openflow.Message.st_packets a.Openflow.Message.st_packets)
          reply.Openflow.Message.st_flows
      in
      Printf.printf "switch 2 flow-stats: %d entries, %d lookups, %d matched\n"
        (List.length reply.Openflow.Message.st_flows)
        reply.Openflow.Message.st_lookups reply.Openflow.Message.st_matched;
      List.iteri
        (fun i (st : Openflow.Message.flow_stat) ->
          if i < 3 then
            Printf.printf "  top-%d: %s  pkts=%d bytes=%d\n" (i + 1)
              (Format.asprintf "%a" Openflow.Match_fields.pp
                 st.Openflow.Message.st_fields)
              st.Openflow.Message.st_packets st.Openflow.Message.st_bytes)
        top
  | None -> print_endline "no stats reply");
  let table_sizes =
    List.map
      (fun dpid -> Openflow.Flow_table.size (Openflow.Switch.table (Net.switch network dpid)))
      [ 1; 2; 3; 4 ]
  in
  Printf.printf "flow-table entries per switch: %s\n"
    (String.concat " " (List.map string_of_int table_sizes));

  let ok =
    st.C.allowed = !expected_allowed
    && st.C.blocked = total - !expected_allowed
    && st.C.eval_errors = 0 && st.C.query_timeouts = 0
    && Identxx_core.Audit.count audit = total
  in
  if ok then print_endline "\nenterprise OK: every decision matched intent"
  else begin
    print_endline "\nenterprise FAILED";
    exit 1
  end

examples/delegation_audit.ml: Format Idcrypto Identxx Identxx_core List Openflow Printf Sim

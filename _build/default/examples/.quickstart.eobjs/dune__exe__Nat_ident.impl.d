examples/nat_ident.ml: Five_tuple Identxx Identxx_core Ipv4 Mac Netcore Openflow Option Printf Sim

examples/skype_policy.ml: Five_tuple Fun Hashtbl Idcrypto Identxx Identxx_core Ipv4 List Mac Netcore Option Printf

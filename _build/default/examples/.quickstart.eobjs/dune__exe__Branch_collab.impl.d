examples/branch_collab.ml: Identxx Identxx_core Ipv4 List Mac Netcore Openflow Printf Sim

examples/quickstart.mli:

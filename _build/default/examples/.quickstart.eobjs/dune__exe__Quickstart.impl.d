examples/quickstart.ml: Format Identxx Identxx_core Openflow Printf Sim

examples/skype_policy.mli:

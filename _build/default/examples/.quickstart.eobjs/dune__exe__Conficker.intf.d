examples/conficker.mli:

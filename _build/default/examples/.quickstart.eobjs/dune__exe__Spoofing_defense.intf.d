examples/spoofing_defense.mli:

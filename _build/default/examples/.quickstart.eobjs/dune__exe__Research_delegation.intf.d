examples/research_delegation.mli:

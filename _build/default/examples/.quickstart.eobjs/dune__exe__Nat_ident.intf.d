examples/nat_ident.mli:

examples/branch_collab.mli:

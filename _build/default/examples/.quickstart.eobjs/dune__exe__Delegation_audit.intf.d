examples/delegation_audit.mli:

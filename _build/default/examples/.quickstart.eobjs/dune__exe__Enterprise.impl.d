examples/enterprise.ml: Array Format Identxx Identxx_core Ipv4 List Netcore Openflow Printf Sim String

examples/trust_delegation.mli:

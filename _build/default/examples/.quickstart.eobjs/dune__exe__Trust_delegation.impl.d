examples/trust_delegation.ml: Five_tuple Hashtbl Idcrypto Identxx Identxx_core Ipv4 Mac Netcore Option Printf

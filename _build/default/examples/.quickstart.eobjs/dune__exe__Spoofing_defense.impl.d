examples/spoofing_defense.ml: Idcrypto Identxx Identxx_core Openflow Printf Sim

examples/research_delegation.ml: Five_tuple Hashtbl Idcrypto Identxx Identxx_core Ipv4 List Mac Netcore Option Printf String

examples/conficker.ml: Array Baselines Identxx Identxx_core List Netcore Printf Workload

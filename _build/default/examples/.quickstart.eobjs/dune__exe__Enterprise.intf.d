examples/enterprise.mli:

(* §4 Incremental Benefit.

   (a) Daemon-only deployment: no ident++ firewalls anywhere, but a
   server uses the protocol directly (like classic RFC-1413 ident) to
   distinguish the users of two connections arriving from the same
   client machine — e.g. behind a NAT or on a shared multi-user host.

   (b) Controller-only deployment: end-hosts run no daemons; the
   controller answers queries from its own asset database and can still
   enforce host-level (though not user-level) policy.
   Run with: dune exec examples/nat_ident.exe *)

open Netcore
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module PS = Identxx_core.Policy_store

let part_a () =
  print_endline "=== (a) daemon-only: distinguishing users on a shared host ===";
  let shared =
    Identxx.Host.create ~name:"shared" ~mac:(Mac.of_int 1)
      ~ip:(Ipv4.of_string "10.0.0.1") ()
  in
  let server_ip = Ipv4.of_string "10.0.0.99" in
  (* Two users on the same machine each open a connection to the server
     from the same address — only the source port differs. *)
  let alice = Identxx.Host.run shared ~user:"alice" ~exe:"/usr/bin/irc" () in
  let bob = Identxx.Host.run shared ~user:"bob" ~exe:"/usr/bin/irc" () in
  let f_alice =
    Identxx.Host.connect shared ~proc:alice ~dst:server_ip ~dst_port:6667 ()
  in
  let f_bob =
    Identxx.Host.connect shared ~proc:bob ~dst:server_ip ~dst_port:6667 ()
  in
  (* The server queries the shared host's daemon over the wire format. *)
  let query_user flow =
    let q = Identxx.Query.make ~flow ~keys:[ Identxx.Key_value.user_id ] in
    let pkt =
      Identxx.Wire.query_packet ~to_ip:flow.Five_tuple.src
        ~from_ip:flow.Five_tuple.dst q
    in
    match Identxx.Host.handle_packet shared pkt with
    | None -> None
    | Some reply -> (
        match Identxx.Wire.classify reply with
        | Identxx.Wire.Response { response; _ } ->
            Identxx.Response.latest response Identxx.Key_value.user_id
        | _ -> None)
  in
  let ua = query_user f_alice and ub = query_user f_bob in
  Printf.printf "connection %s -> user %s\n"
    (Five_tuple.to_string f_alice)
    (Option.value ~default:"?" ua);
  Printf.printf "connection %s -> user %s\n"
    (Five_tuple.to_string f_bob)
    (Option.value ~default:"?" ub);
  ua = Some "alice" && ub = Some "bob"

let part_b () =
  print_endline "\n=== (b) controller-only: no daemons on end-hosts ===";
  let s = Deploy.simple_network () in
  (* Hosts do not run daemons (silent). *)
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.client) Identxx.Daemon.Silent;
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.server) Identxx.Daemon.Silent;
  (* The controller's asset database: the client machine is a kiosk,
     the server is the payroll service. Policy: kiosks may not reach
     payroll. *)
  C.set_local_answers s.controller (fun ip ->
      if Ipv4.equal ip (Identxx.Host.ip s.client) then
        Some [ Identxx.Key_value.pair "asset-class" "kiosk" ]
      else if Ipv4.equal ip (Identxx.Host.ip s.server) then
        Some [ Identxx.Key_value.pair "asset-class" "payroll" ]
      else None);
  PS.add_exn (C.policy s.controller) ~name:"00-assets"
    "block all with eq(@src[asset-class], kiosk) with eq(@dst[asset-class], \
     payroll)\n\
     pass all with eq(@src[asset-class], kiosk) with eq(@dst[asset-class], \
     workstation)";
  (* Default is pass; the block rule is the one that must fire. *)
  let proc = Identxx.Host.run s.client ~user:"kiosk" ~exe:"/usr/bin/browser" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:443 ()
  in
  Openflow.Network.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;
  let st = C.stats s.controller in
  Printf.printf
    "kiosk -> payroll: blocked=%d, wire queries=%d, local answers=%d\n"
    st.C.blocked st.C.queries_sent st.C.queries_answered_locally;
  st.C.blocked = 1 && st.C.queries_sent = 0 && st.C.queries_answered_locally = 2

let () =
  let a = part_a () in
  let b = part_b () in
  if a && b then print_endline "\nnat_ident OK: both partial deployments work"
  else begin
    print_endline "\nnat_ident FAILED";
    exit 1
  end

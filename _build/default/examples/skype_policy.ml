(* Figures 2 and 3: the Skype policy.

   The controller reads three .control files (00-local-header,
   50-skype, 99-local-footer) exactly as printed in Figure 2; the
   end-host daemon reads the Figure-3 @app configuration for
   /usr/bin/skype. We then replay the scenarios the figure's comments
   describe and print the decision matrix.
   Run with: dune exec examples/skype_policy.exe *)

open Netcore
module PS = Identxx_core.Policy_store
module D = Identxx_core.Decision

(* Figure 2, verbatim (modulo whitespace). *)
let header_00 =
  "table <server> { 192.168.1.1 }\n\
   table <lan> { 192.168.0.0/24 }\n\
   table <int_hosts> { <lan> <server> }\n\
   allowed = \"{ http ssh }\" # a macro of apps\n\
   # default deny\n\
   block all\n\
   # allow connections outbound\n\
   pass from <int_hosts> \\\n\
   to !<int_hosts> \\\n\
   keep state\n\
   # allow all traffic from approved apps\n\
   pass from <int_hosts> \\\n\
   to <int_hosts> \\\n\
   with member(@src[name], $allowed) \\\n\
   keep state"

let skype_50 =
  "table <skype_update> { 123.123.123.0/24 }\n\
   # skype to skype allowed\n\
   pass all \\\n\
   with eq(@src[name], skype) \\\n\
   with eq(@dst[name], skype)\n\
   # skype update feature\n\
   pass from any \\\n\
   to <skype_update> port 80 \\\n\
   with eq(@src[name], skype) \\\n\
   keep state"

let footer_99 =
  "# no really old versions of skype\n\
   block all \\\n\
   with eq(@src[name], skype) \\\n\
   with lt(@src[version], 200)\n\
   # no skype to server\n\
   block from any \\\n\
   to <server> \\\n\
   with eq(@src[name], skype)"

(* Figure 3: the ident++ daemon configuration for skype, including the
   signed requirements. *)
let skype_daemon_config ~req_sig =
  Printf.sprintf
    "@app /usr/bin/skype {\n\
     name : skype\n\
     version : 210\n\
     vendor : skype.com\n\
     type : voip\n\
     requirements : \\\n\
     pass from any port http \\\n\
     with eq(@src[name], skype) \\\n\
     pass from any port https \\\n\
     with eq(@src[name], skype)\n\
     req-sig : %s\n\
     }"
    req_sig

let host name ip =
  Identxx.Host.create ~name ~mac:(Mac.of_int (Hashtbl.hash name land 0xffffff))
    ~ip:(Ipv4.of_string ip) ()

let response_for host ~flow ~as_source =
  let peer, proto, sp, dp =
    if as_source then
      (flow.Five_tuple.dst, flow.Five_tuple.proto, flow.Five_tuple.src_port,
       flow.Five_tuple.dst_port)
    else
      (flow.Five_tuple.src, flow.Five_tuple.proto, flow.Five_tuple.src_port,
       flow.Five_tuple.dst_port)
  in
  Option.map fst
    (Identxx.Daemon.answer (Identxx.Host.daemon host) ~peer ~proto ~src_port:sp
       ~dst_port:dp ~keys:[])

let () =
  (* Hosts: two LAN clients, the protected server, a skype update CDN. *)
  let alice = host "alice-pc" "192.168.0.10" in
  let bob = host "bob-pc" "192.168.0.11" in
  let _server = host "server" "192.168.1.1" in
  let update_cdn = host "cdn" "123.123.123.5" in

  (* The vendor signs skype's requirements; the daemon config carries
     the signature (Figure 3's req-sig). *)
  let vendor = Idcrypto.Sign.generate "skype.com" in
  let requirements =
    "pass from any port http with eq(@src[name], skype) pass from any port \
     https with eq(@src[name], skype)"
  in
  Identxx.Host.install_exe alice ~path:"/usr/bin/skype" ~content:"skype-v210";
  Identxx.Host.install_exe bob ~path:"/usr/bin/skype" ~content:"skype-v210";
  let sig_for h =
    Idcrypto.Sign.sign ~secret:vendor.Idcrypto.Sign.secret
      [
        Option.value ~default:"" (Identxx.Host.exe_hash h ~path:"/usr/bin/skype");
        "skype";
        requirements;
      ]
  in
  List.iter
    (fun h ->
      match
        Identxx.Daemon.load_config (Identxx.Host.daemon h) ~name:"50-skype"
          (skype_daemon_config ~req_sig:(sig_for h))
      with
      | Ok () -> ()
      | Error e -> failwith e)
    [ alice; bob ];

  (* Controller policy: the three Figure-2 files. *)
  let policy = PS.create () in
  PS.add_exn policy ~name:"00-local-header.control" header_00;
  PS.add_exn policy ~name:"50-skype.control" skype_50;
  PS.add_exn policy ~name:"99-local-footer.control" footer_99;
  let decision = D.create ~policy () in

  let scenario name ~src_host ~src_exe ~dst_host ~dst ~dst_port ~expect =
    let proc = Identxx.Host.run src_host ~user:"user" ~exe:src_exe () in
    let flow =
      Identxx.Host.connect src_host ~proc ~dst:(Ipv4.of_string dst) ~dst_port ()
    in
    (* Destination side: if the peer runs skype, register a listener. *)
    (match dst_host with
    | Some h ->
        let sproc = Identxx.Host.run h ~user:"user" ~exe:"/usr/bin/skype" () in
        Identxx.Host.listen h ~proc:sproc ~port:dst_port ()
    | None -> ());
    let input =
      {
        D.flow;
        src_response = response_for src_host ~flow ~as_source:true;
        dst_response =
          Option.bind dst_host (fun h -> response_for h ~flow ~as_source:false);
      }
    in
    let allowed = D.allows decision input in
    Printf.printf "%-38s %-8s %s\n" name
      (if allowed then "PASS" else "BLOCK")
      (if allowed = expect then "(as the paper intends)" else "** UNEXPECTED **");
    allowed = expect
  in

  print_endline "=== Figure 2/3: skype policy decision matrix ===";
  let results =
    [
      scenario "skype alice -> skype bob" ~src_host:alice
        ~src_exe:"/usr/bin/skype" ~dst_host:(Some bob) ~dst:"192.168.0.11"
        ~dst_port:33000 ~expect:true;
      scenario "skype alice -> update CDN :80" ~src_host:alice
        ~src_exe:"/usr/bin/skype" ~dst_host:(Some update_cdn)
        ~dst:"123.123.123.5" ~dst_port:80 ~expect:true;
      scenario "skype alice -> server (blocked)" ~src_host:alice
        ~src_exe:"/usr/bin/skype" ~dst_host:None ~dst:"192.168.1.1" ~dst_port:80
        ~expect:false;
      scenario "http alice -> server" ~src_host:alice ~src_exe:"/usr/bin/http"
        ~dst_host:None ~dst:"192.168.1.1" ~dst_port:80 ~expect:true;
      scenario "telnet alice -> server (blocked)" ~src_host:alice
        ~src_exe:"/usr/bin/telnet" ~dst_host:None ~dst:"192.168.1.1"
        ~dst_port:23 ~expect:false;
      scenario "firefox alice -> internet" ~src_host:alice
        ~src_exe:"/usr/bin/firefox" ~dst_host:None ~dst:"8.8.8.8" ~dst_port:443
        ~expect:true;
    ]
  in

  (* Old skype: a host whose skype reports version 150. *)
  let carol = host "carol-pc" "192.168.0.12" in
  let old_config =
    "@app /usr/bin/skype {\nname : skype\nversion : 150\n}"
  in
  (match
     Identxx.Daemon.load_config (Identxx.Host.daemon carol) ~name:"50-skype"
       old_config
   with
  | Ok () -> ()
  | Error e -> failwith e);
  let old_result =
    let proc = Identxx.Host.run carol ~user:"user" ~exe:"/usr/bin/skype" () in
    let flow =
      Identxx.Host.connect carol ~proc ~dst:(Ipv4.of_string "192.168.0.11")
        ~dst_port:33000 ()
    in
    let input =
      {
        D.flow;
        src_response = response_for carol ~flow ~as_source:true;
        dst_response = response_for bob ~flow ~as_source:false;
      }
    in
    let allowed = D.allows decision input in
    Printf.printf "%-38s %-8s %s\n" "OLD skype (v150) carol -> bob"
      (if allowed then "PASS" else "BLOCK")
      (if not allowed then "(as the paper intends)" else "** UNEXPECTED **");
    not allowed
  in

  if List.for_all Fun.id (old_result :: results) then
    print_endline "\nskype_policy OK: all seven scenarios match the paper"
  else begin
    print_endline "\nskype_policy FAILED";
    exit 1
  end

(* Quickstart: the Figure-1 sequence on a one-switch network.

   A client opens a TCP connection to a server. The first packet misses
   the switch's flow table and goes to the controller, which queries the
   ident++ daemons on both hosts, evaluates a PF+=2 policy over the
   returned key-value pairs, installs flow entries, and releases the
   packet. Run with: dune exec examples/quickstart.exe *)

module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module Net = Openflow.Network

let policy =
  "allowed = \"{ firefox ssh }\"\n\
   block all\n\
   pass all with member(@src[name], $allowed) keep state"

let () =
  let s = Deploy.simple_network () in
  Identxx_core.Policy_store.add_exn (C.policy s.controller) ~name:"00-quickstart"
    policy;

  (* Alice runs firefox on the client and connects to the server. *)
  let proc =
    Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" ()
  in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:80 ()
  in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;

  print_endline "=== simulated event trace (Figure 1) ===";
  Format.printf "%a@." Sim.Trace.pp (Net.trace s.network);

  let st = C.stats s.controller in
  Printf.printf
    "=== controller stats ===\n\
     flows seen: %d\nallowed:    %d\nblocked:    %d\nqueries:    %d\n\
     responses:  %d\n"
    st.C.flows_seen st.C.allowed st.C.blocked st.C.queries_sent
    st.C.responses_received;

  (* A disallowed application is blocked by the same policy. *)
  let proc2 = Identxx.Host.run s.client ~user:"bob" ~exe:"/usr/bin/telnet" () in
  let flow2 =
    Identxx.Host.connect s.client ~proc:proc2 ~dst:(Identxx.Host.ip s.server)
      ~dst_port:23 ()
  in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow:flow2);
  Sim.Engine.run s.engine;
  let st = C.stats s.controller in
  Printf.printf "\nafter telnet attempt: allowed=%d blocked=%d\n" st.C.allowed
    st.C.blocked;
  if st.C.allowed = 1 && st.C.blocked = 1 then
    print_endline "\nquickstart OK: firefox passed, telnet blocked"
  else begin
    print_endline "\nquickstart FAILED";
    exit 1
  end

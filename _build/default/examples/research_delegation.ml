(* Figures 4 and 5: delegation to users.

   Researchers run their own applications without asking the network
   administrator: each researcher signs the application's network
   requirements (Figure 4's daemon config); the controller's
   30-research.control rule (Figure 5) admits a flow only when
   - both ends are in the research group,
   - the destination is not a production machine,
   - the flow is allowed by the receiver's own signed requirements, and
   - the signature verifies against the research group's public key.
   Run with: dune exec examples/research_delegation.exe *)

open Netcore
module PS = Identxx_core.Policy_store
module D = Identxx_core.Decision

let requirements =
  (* Figure 4: research-apps only talk to each other. *)
  "block all pass all with eq(@src[name], research-app) with eq(@dst[name], \
   research-app)"

let research_daemon_config ~req_sig =
  Printf.sprintf
    "@app /usr/bin/research-app {\n\
     name : research-app\n\
     # research-apps only talk to each other\n\
     requirements : \\\n\
     block all \\\n\
     pass all \\\n\
     with eq(@src[name], research-app) \\\n\
     with eq(@dst[name], research-app)\n\
     req-sig : %s\n\
     }"
    req_sig

(* Figure 5's rule, with the real public key substituted into the dict. *)
let research_control ~research_pk =
  Printf.sprintf
    "table <research-machines> { 192.168.10.0/24 }\n\
     table <production-machines> { 192.168.1.0/24 }\n\
     dict <pubkeys> { research : %s }\n\
     block all\n\
     # Allow only researchers to run applications\n\
     # and only access their own machines.\n\
     pass from <research-machines> \\\n\
     with member(@src[groupID], research) \\\n\
     to !<production-machines> \\\n\
     with member(@dst[groupID], research) \\\n\
     with allowed(@dst[requirements]) \\\n\
     with verify(@dst[req-sig], \\\n\
     @pubkeys[research], \\\n\
     @dst[exe-hash], \\\n\
     @dst[app-name], \\\n\
     @dst[requirements])"
    research_pk

let mk_host name ip =
  Identxx.Host.create ~name ~mac:(Mac.of_int (Hashtbl.hash name land 0xffffff))
    ~ip:(Ipv4.of_string ip) ()

let daemon_response host ~flow ~as_source =
  let peer = if as_source then flow.Five_tuple.dst else flow.Five_tuple.src in
  Option.map fst
    (Identxx.Daemon.answer (Identxx.Host.daemon host) ~peer
       ~proto:flow.Five_tuple.proto ~src_port:flow.Five_tuple.src_port
       ~dst_port:flow.Five_tuple.dst_port ~keys:[])

let () =
  (* The research group's keypair; the controller trusts its public
     handle via the dict in 30-research.control. *)
  let research_key = Idcrypto.Sign.generate "research-group" in
  let keystore = Idcrypto.Sign.keystore () in
  Idcrypto.Sign.register keystore research_key;

  let rika = mk_host "rika" "192.168.10.5" in
  let ryo = mk_host "ryo" "192.168.10.6" in
  let prod = mk_host "prod" "192.168.1.1" in
  ignore prod;

  (* Install the research app and sign its requirements per host. *)
  List.iter
    (fun h ->
      Identxx.Host.install_exe h ~path:"/usr/bin/research-app"
        ~content:"research-app-image-v1";
      let exe_hash =
        Option.get (Identxx.Host.exe_hash h ~path:"/usr/bin/research-app")
      in
      let req_sig =
        Idcrypto.Sign.sign ~secret:research_key.Idcrypto.Sign.secret
          [ exe_hash; "research-app"; requirements ]
      in
      match
        Identxx.Daemon.load_config (Identxx.Host.daemon h) ~name:"10-research"
          (research_daemon_config ~req_sig)
      with
      | Ok () -> ()
      | Error e -> failwith e)
    [ rika; ryo ];

  let policy = PS.create () in
  PS.add_exn policy ~name:"30-research.control"
    (research_control ~research_pk:research_key.Idcrypto.Sign.public);
  let decision = D.create ~keystore ~policy () in

  let run name ~src ~src_exe ~src_groups ~dst ~dst_exe ~dst_port ~expect =
    let sproc =
      Identxx.Host.run src ~user:"researcher1" ~groups:src_groups ~exe:src_exe ()
    in
    let dproc =
      Identxx.Host.run dst ~user:"researcher2" ~groups:[ "research" ]
        ~exe:dst_exe ()
    in
    Identxx.Host.listen dst ~proc:dproc ~port:dst_port ();
    let flow =
      Identxx.Host.connect src ~proc:sproc ~dst:(Identxx.Host.ip dst) ~dst_port ()
    in
    let input =
      {
        D.flow;
        src_response = daemon_response src ~flow ~as_source:true;
        dst_response = daemon_response dst ~flow ~as_source:false;
      }
    in
    let allowed = D.allows decision input in
    Printf.printf "%-46s %-6s %s\n" name
      (if allowed then "PASS" else "BLOCK")
      (if allowed = expect then "(intended)" else "** UNEXPECTED **");
    allowed = expect
  in

  print_endline "=== Figure 4/5: research delegation ===";
  let ok1 =
    run "research-app rika -> research-app ryo" ~src:rika
      ~src_exe:"/usr/bin/research-app" ~src_groups:[ "research" ] ~dst:ryo
      ~dst_exe:"/usr/bin/research-app" ~dst_port:7777 ~expect:true
  in
  let ok2 =
    run "research-app rika -> OTHER app on ryo" ~src:rika
      ~src_exe:"/usr/bin/research-app" ~src_groups:[ "research" ] ~dst:ryo
      ~dst_exe:"/usr/bin/nc" ~dst_port:7778 ~expect:false
  in
  let ok3 =
    run "non-research user rika -> research-app ryo" ~src:rika
      ~src_exe:"/usr/bin/research-app" ~src_groups:[ "staff" ] ~dst:ryo
      ~dst_exe:"/usr/bin/research-app" ~dst_port:7777 ~expect:false
  in

  (* Tampered requirements: ryo's "researcher" edits the requirements to
     accept anything, but cannot re-sign them. *)
  let mallory = mk_host "mallory" "192.168.10.7" in
  Identxx.Host.install_exe mallory ~path:"/usr/bin/research-app"
    ~content:"research-app-image-v1";
  let bogus_sig = String.make 64 'a' in
  (match
     Identxx.Daemon.load_config (Identxx.Host.daemon mallory)
       ~name:"10-research"
       (Printf.sprintf
          "@app /usr/bin/research-app {\nname : research-app\nrequirements : \
           pass all\nreq-sig : %s\n}"
          bogus_sig)
   with
  | Ok () -> ()
  | Error e -> failwith e);
  let ok4 =
    run "tampered requirements on destination" ~src:rika
      ~src_exe:"/usr/bin/research-app" ~src_groups:[ "research" ] ~dst:mallory
      ~dst_exe:"/usr/bin/research-app" ~dst_port:7777 ~expect:false
  in

  if ok1 && ok2 && ok3 && ok4 then
    print_endline "\nresearch_delegation OK: signed delegation works end to end"
  else begin
    print_endline "\nresearch_delegation FAILED";
    exit 1
  end

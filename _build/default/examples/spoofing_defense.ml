(* Response spoofing and its defense.

   ident++ responses travel as ordinary packets with a spoofable source
   address. A compromised machine can therefore fabricate the *other*
   end's response and talk its way past information-dependent policy.
   §5.3 already requires delegation requests to be signed with the
   user's key; this deployment extends the same mechanism to responses
   (doc/PROTOCOL.md §6): daemons sign, the controller rejects anything
   its keystore cannot authenticate.
   Run with: dune exec examples/spoofing_defense.exe *)

module Net = Openflow.Network
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module PS = Identxx_core.Policy_store

let policy = "block all\npass all with eq(@dst[clearance], top-secret)"

let attack ~signed () =
  let config =
    { C.default_config with C.require_signed_responses = signed }
  in
  let s = Deploy.simple_network ~config () in
  PS.add_exn (C.policy s.controller) ~name:"00" policy;
  if signed then begin
    let client_key = Idcrypto.Sign.generate "client-host" in
    let server_key = Idcrypto.Sign.generate "server-host" in
    Idcrypto.Sign.register (C.keystore s.controller) client_key;
    Idcrypto.Sign.register (C.keystore s.controller) server_key;
    Identxx.Host.set_signing_key s.client (Some client_key);
    Identxx.Host.set_signing_key s.server (Some server_key)
  end;
  (* The server's real daemon never claims top-secret clearance. *)
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.server)
    Identxx.Daemon.Silent;
  let proc = Identxx.Host.run s.client ~user:"mallory" ~exe:"/bin/tool" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:443 ()
  in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  (* Mallory injects a response pretending to come from the server. *)
  let forged =
    Identxx.Wire.response_packet
      ~to_ip:(Identxx.Host.ip s.client)
      ~from_ip:(Identxx.Host.ip s.server)
      ~dst_port:49152
      (Identxx.Response.make ~flow
         [ [ Identxx.Key_value.pair "clearance" "top-secret" ] ])
  in
  Sim.Engine.schedule s.engine ~delay:(Sim.Time.us 200) (fun () ->
      Net.send_from_host s.network ~name:"client" forged);
  Sim.Engine.run s.engine;
  C.stats s.controller

let () =
  print_endline "=== response spoofing (S5.3-style hardening) ===";
  let unsigned = attack ~signed:false () in
  Printf.printf
    "unsigned deployment:  allowed=%d blocked=%d (forged response BELIEVED)\n"
    unsigned.C.allowed unsigned.C.blocked;
  let signed = attack ~signed:true () in
  Printf.printf
    "signed deployment:    allowed=%d blocked=%d rejected=%d (forgery discarded, fails closed)\n"
    signed.C.allowed signed.C.blocked signed.C.responses_rejected;
  if
    unsigned.C.allowed = 1 && signed.C.allowed = 0 && signed.C.blocked = 1
    && signed.C.responses_rejected >= 1
  then print_endline "\nspoofing_defense OK: signatures close the spoofing hole"
  else begin
    print_endline "\nspoofing_defense FAILED";
    exit 1
  end

(* §4 Network Collaboration: two branches over a bottleneck link.

   Branch A and branch B are separate ident++ domains joined by one
   inter-branch link. Branch B will not accept telnet traffic; its
   controller augments ident++ responses crossing its network with a
   signed "accepts" advertisement, and branch A's policy drops flows
   branch B would refuse — before they ever cross the bottleneck.
   Run with: dune exec examples/branch_collab.exe *)

open Netcore
module Net = Openflow.Network
module Topo = Openflow.Topology
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module PS = Identxx_core.Policy_store

let () =
  let engine = Sim.Engine.create () in
  let topology = Topo.create () in
  (* Branch A: switch 1; branch B: switch 2; the bottleneck is the
     s1:9 <-> s2:9 link. *)
  Topo.add_switch topology 1;
  Topo.add_switch topology 2;
  List.iter (Topo.add_host topology) [ "a1"; "a2"; "b1" ];
  Topo.link topology (Topo.Host "a1", 0) (Topo.Sw 1, 1);
  Topo.link topology (Topo.Host "a2", 0) (Topo.Sw 1, 2);
  Topo.link topology (Topo.Host "b1", 0) (Topo.Sw 2, 1);
  Topo.link topology ~latency:(Sim.Time.ms 2) (Topo.Sw 1, 9) (Topo.Sw 2, 9);
  let network = Net.create ~engine ~topology () in

  let ctrl_a = C.create ~network ~id:0 () in
  let ctrl_b = C.create ~network ~id:1 () in
  Net.assign_switch network 1 0;
  Net.assign_switch network 2 1;

  (* Branch A: allow flows only when the destination's response carries
     branch B's advertisement that the app is acceptable there. *)
  PS.add_exn (C.policy ctrl_a) ~name:"00-branch-a"
    "block all\npass all with member(@src[name], @dst[branch-b-accepts])";
  PS.add_exn (C.policy ctrl_b) ~name:"00-branch-b" "pass all";

  (* Branch B's controller advertises what it accepts by augmenting
     every response that leaves its network — configured with the §3.4
     PF+=2 interception extension rather than code. *)
  PS.add_exn (C.policy ctrl_b) ~name:"10-advertise"
    "intercept response to !10.20.0.0/16 augment { branch-b-accepts : \"{ firefox ssh }\" }";

  let a1 = Identxx.Host.create ~name:"a1" ~mac:(Mac.of_int 0xa1) ~ip:(Ipv4.of_string "10.10.0.1") () in
  let a2 = Identxx.Host.create ~name:"a2" ~mac:(Mac.of_int 0xa2) ~ip:(Ipv4.of_string "10.10.0.2") () in
  let b1 = Identxx.Host.create ~name:"b1" ~mac:(Mac.of_int 0xb1) ~ip:(Ipv4.of_string "10.20.0.1") () in
  List.iter (Deploy.attach_host network) [ a1; a2; b1 ];

  let bottleneck_before () = Net.egress_packets network ~node:(Topo.Sw 1) ~port:9 in

  let send host exe port =
    let proc = Identxx.Host.run host ~user:"user" ~exe () in
    let flow =
      Identxx.Host.connect host ~proc ~dst:(Identxx.Host.ip b1) ~dst_port:port ()
    in
    Net.send_from_host network ~name:(Identxx.Host.name host)
      (Identxx.Host.first_packet host ~flow);
    Sim.Engine.run engine
  in

  print_endline "=== branch collaboration over a bottleneck link ===";

  (* Accepted app: firefox crosses the link. *)
  let before = bottleneck_before () in
  send a1 "/usr/bin/firefox" 80;
  let after_firefox = bottleneck_before () in
  Printf.printf "firefox a1->b1: %d packets crossed the bottleneck\n"
    (after_firefox - before);

  (* Refused app: telnet is dropped in branch A; only the ident++
     exchange (not the data flow) crosses. *)
  let stats_before = (C.stats ctrl_a).C.blocked in
  let cross_before = bottleneck_before () in
  send a2 "/usr/bin/telnet" 23;
  let cross_after = bottleneck_before () in
  let telnet_data_crossed =
    (* Count non-783 data packets that crossed after the telnet flow:
       compare against the blocked counter instead of raw packets, since
       queries legitimately cross. *)
    cross_after - cross_before
  in
  let blocked = (C.stats ctrl_a).C.blocked - stats_before in
  Printf.printf
    "telnet a2->b1: blocked at branch A (blocked=%d), %d control packets \
     crossed during the exchange\n"
    blocked telnet_data_crossed;

  let sa = C.stats ctrl_a and sb = C.stats ctrl_b in
  Printf.printf
    "\nbranch A: flows=%d allowed=%d blocked=%d\n\
     branch B: responses augmented=%d\n"
    sa.C.flows_seen sa.C.allowed sa.C.blocked sb.C.responses_augmented;

  if sa.C.allowed = 1 && blocked = 1 && sb.C.responses_augmented >= 1 then
    print_endline "\nbranch_collab OK: refused traffic never crossed the link"
  else begin
    print_endline "\nbranch_collab FAILED";
    exit 1
  end

(* netsim: run a named simulation scenario end-to-end and print the
   event trace.

     netsim fig1          the paper's Figure-1 flow-setup sequence
     netsim linear        a 4-switch chain, one flow across it
     netsim branches      two ident++ domains collaborating (§4)

   Run with: dune exec bin/netsim.exe -- fig1 *)

open Cmdliner
open Netcore
module Net = Openflow.Network
module Topo = Openflow.Topology
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module PS = Identxx_core.Policy_store

let print_summary ?(controllers = []) network =
  Format.printf "@.=== trace ===@.%a" Sim.Trace.pp (Net.trace network);
  Format.printf "@.=== summary ===@.";
  Format.printf "packets delivered to hosts: %d@." (Net.delivered network);
  Format.printf "packets dropped:            %d@." (Net.dropped network);
  Format.printf "packet-ins:                 %d@." (Net.packet_ins network);
  List.iter
    (fun (name, c) ->
      let st = C.stats c in
      Format.printf
        "%s: flows=%d allowed=%d blocked=%d queries=%d responses=%d@." name
        st.C.flows_seen st.C.allowed st.C.blocked st.C.queries_sent
        st.C.responses_received)
    controllers

let fig1 ~arm () =
  let s = Deploy.simple_network () in
  arm s.Deploy.network;
  PS.add_exn (C.policy s.controller) ~name:"00"
    "block all\npass all with eq(@src[name], firefox) keep state";
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:80 ()
  in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow);
  Sim.Engine.run s.engine;
  Format.printf "Figure 1: client -> switch -> controller -> ident++ -> install -> deliver@.";
  print_summary ~controllers:[ ("controller", s.controller) ] s.network;
  0

let linear ~arm () =
  let engine, network, controller, hosts =
    Deploy.linear_network ~switches:4 ~hosts_per_switch:1 ()
  in
  arm network;
  PS.add_exn (C.policy controller) ~name:"00" "pass all";
  let h1 = hosts.(0) and h4 = hosts.(3) in
  let proc = Identxx.Host.run h1 ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect h1 ~proc ~dst:(Identxx.Host.ip h4) ~dst_port:80 ()
  in
  Net.send_from_host network ~name:(Identxx.Host.name h1)
    (Identxx.Host.first_packet h1 ~flow);
  Sim.Engine.run engine;
  Format.printf "linear: one flow across a 4-switch chain@.";
  print_summary ~controllers:[ ("controller", controller) ] network;
  0

let tree ~arm () =
  let engine, network, controller, hosts =
    Deploy.tree_network ~depth:3 ~fanout:2 ~hosts_per_edge:1 ()
  in
  arm network;
  PS.add_exn (C.policy controller) ~name:"00" "pass all";
  let src = hosts.(0) and dst = hosts.(Array.length hosts - 1) in
  let proc = Identxx.Host.run src ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect src ~proc ~dst:(Identxx.Host.ip dst) ~dst_port:80 ()
  in
  Net.send_from_host network ~name:(Identxx.Host.name src)
    (Identxx.Host.first_packet src ~flow);
  Sim.Engine.run engine;
  Format.printf "tree: cross-pod flow over a depth-3 binary tree (7 switches)@.";
  print_summary ~controllers:[ ("controller", controller) ] network;
  0

let branches ~arm () =
  let engine = Sim.Engine.create () in
  let topology = Topo.create () in
  Topo.add_switch topology 1;
  Topo.add_switch topology 2;
  List.iter (Topo.add_host topology) [ "a1"; "b1" ];
  Topo.link topology (Topo.Host "a1", 0) (Topo.Sw 1, 1);
  Topo.link topology (Topo.Host "b1", 0) (Topo.Sw 2, 1);
  Topo.link topology ~latency:(Sim.Time.ms 2) (Topo.Sw 1, 9) (Topo.Sw 2, 9);
  let network = Net.create ~engine ~topology () in
  arm network;
  let ca = C.create ~network ~id:0 () in
  let cb = C.create ~network ~id:1 () in
  Net.assign_switch network 1 0;
  Net.assign_switch network 2 1;
  PS.add_exn (C.policy ca) ~name:"00"
    "block all\npass all with member(@src[name], @dst[branch-b-accepts])";
  PS.add_exn (C.policy cb) ~name:"00" "pass all";
  C.set_response_augment cb (fun _ ->
      [ Identxx.Key_value.pair "branch-b-accepts" "{ firefox ssh }" ]);
  let a1 =
    Identxx.Host.create ~name:"a1" ~mac:(Mac.of_int 0xa1)
      ~ip:(Ipv4.of_string "10.10.0.1") ()
  in
  let b1 =
    Identxx.Host.create ~name:"b1" ~mac:(Mac.of_int 0xb1)
      ~ip:(Ipv4.of_string "10.20.0.1") ()
  in
  List.iter (Deploy.attach_host network) [ a1; b1 ];
  let proc = Identxx.Host.run a1 ~user:"u" ~exe:"/usr/bin/firefox" () in
  let flow =
    Identxx.Host.connect a1 ~proc ~dst:(Identxx.Host.ip b1) ~dst_port:80 ()
  in
  Net.send_from_host network ~name:"a1" (Identxx.Host.first_packet a1 ~flow);
  Sim.Engine.run engine;
  Format.printf "branches: two collaborating ident++ domains@.";
  print_summary
    ~controllers:[ ("branch-a", ca); ("branch-b", cb) ]
    network;
  0

(* Optionally capture every frame the scenario emits to a pcap file. *)
let with_capture pcap_path f =
  match pcap_path with
  | None -> f (fun _net -> ())
  | Some path ->
      let buf = Buffer.create 4096 in
      let writer = Netcore.Pcap.create_writer buf in
      let code = f (fun net -> Net.set_capture net (Some writer)) in
      let oc = open_out_bin path in
      Buffer.output_buffer oc buf;
      close_out oc;
      Format.printf "wrote %d frames to %s@." (Netcore.Pcap.packet_count writer) path;
      code

let () =
  let scenario =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("fig1", `Fig1); ("linear", `Linear); ("branches", `Branches);
                  ("tree", `Tree) ]))
          None
      & info [] ~docv:"SCENARIO" ~doc:"fig1, linear, branches or tree")
  in
  let pcap =
    Arg.(
      value
      & opt (some string) None
      & info [ "pcap" ] ~docv:"FILE" ~doc:"Write all emitted frames to a pcap file.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")
  in
  let run scenario pcap verbose =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Debug)
    end;
    with_capture pcap (fun arm ->
        match scenario with
        | `Fig1 -> fig1 ~arm ()
        | `Linear -> linear ~arm ()
        | `Branches -> branches ~arm ()
        | `Tree -> tree ~arm ())
  in
  let cmd =
    Cmd.v
      (Cmd.info "netsim" ~doc:"Run a named ident++ simulation scenario")
      Term.(const run $ scenario $ pcap $ verbose)
  in
  exit (Cmd.eval' cmd)

bin/netsim.mli:

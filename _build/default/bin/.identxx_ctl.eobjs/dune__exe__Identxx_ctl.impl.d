bin/identxx_ctl.ml: Arg Cmd Cmdliner Filename Format Fun Idcrypto Identxx Identxx_core List Netcore Option Pf Printf String Term

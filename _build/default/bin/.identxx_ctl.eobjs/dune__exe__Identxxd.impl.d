bin/identxxd.ml: Arg Buffer Cmd Cmdliner Filename Hashtbl Identxx List Netcore Printf String Term

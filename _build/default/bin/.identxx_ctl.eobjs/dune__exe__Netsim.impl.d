bin/netsim.ml: Arg Array Buffer Cmd Cmdliner Format Identxx Identxx_core Ipv4 List Logs Mac Netcore Openflow Sim Term

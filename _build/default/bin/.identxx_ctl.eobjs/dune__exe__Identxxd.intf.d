bin/identxxd.mli:

bin/identxx_ctl.mli:

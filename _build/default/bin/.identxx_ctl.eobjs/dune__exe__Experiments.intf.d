bin/experiments.mli:

(* experiments: regenerate every table recorded in EXPERIMENTS.md.

   The paper (WREN'09) is a design paper with no measured numbers; its
   artifacts are Figures 1-8 plus the qualitative claims of §4-§6. Each
   experiment below reproduces one of those artifacts as an executable
   decision matrix or a measured characteristic of the system. The
   expected qualitative shape is stated next to each table.

   Run with: dune exec bin/experiments.exe *)

open Netcore
module Net = Openflow.Network
module Topo = Openflow.Topology
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module PS = Identxx_core.Policy_store
module D = Identxx_core.Decision
module E = Baselines.Enforcement
module FI = Baselines.Flow_info

let section title =
  Printf.printf "\n## %s\n\n" title

let row fmt = Printf.printf fmt

(* Helpers ----------------------------------------------------------- *)

let response flow pairs =
  Identxx.Response.make ~flow
    [ List.map (fun (k, v) -> Identxx.Key_value.pair k v) pairs ]

let decision_of policy_text =
  let policy = PS.create () in
  PS.add_exn policy ~name:"00" policy_text;
  D.create ~policy ()

let flow ?(proto = Proto.Tcp) ?(sp = 40000) ?(dp = 80) src dst =
  Five_tuple.make ~src:(Ipv4.of_string src) ~dst:(Ipv4.of_string dst)
    ~proto ~src_port:sp ~dst_port:dp

(* Measure the simulated time from a host sending a flow's first packet
   to the data packet's delivery at the destination host. *)
let measure_setup_latency ?(config = C.default_config) ~policy_text ~app () =
  let s = Deploy.simple_network ~config () in
  PS.add_exn (C.policy s.controller) ~name:"00" policy_text;
  let delivery = ref None in
  Deploy.attach_host_with s.network s.server ~rx:(fun pkt ->
      match Packet.five_tuple pkt with
      | Some ft when ft.Five_tuple.dst_port = 80 && !delivery = None ->
          delivery := Some (Sim.Engine.now s.engine)
      | _ -> ());
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:app () in
  let fl =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:80 ()
  in
  let t0 = Sim.Engine.now s.engine in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow:fl);
  Sim.Engine.run s.engine;
  let first =
    Option.map (fun t -> Sim.Time.to_float_us (Sim.Time.sub t t0)) !delivery
  in
  (* Second packet of the same flow rides the installed entries. *)
  delivery := None;
  let t1 = Sim.Engine.now s.engine in
  Net.send_from_host s.network ~name:"client"
    (Identxx.Host.first_packet s.client ~flow:fl);
  Sim.Engine.run s.engine;
  let second =
    Option.map (fun t -> Sim.Time.to_float_us (Sim.Time.sub t t1)) !delivery
  in
  (first, second)

let fus = function None -> "(dropped)" | Some v -> Printf.sprintf "%8.1f" v

(* E1: Figure 1 flow-setup sequence ----------------------------------- *)

let e1 () =
  section "E1 (Figure 1): flow setup sequence and latency";
  print_endline
    "Paper claim: the first packet of a flow detours via the controller and\n\
     the ident++ query exchange; subsequent packets are switched at line\n\
     rate from the flow-table cache.";
  let first, second =
    measure_setup_latency
      ~policy_text:"block all\npass all with eq(@src[name], firefox)"
      ~app:"/usr/bin/firefox" ()
  in
  row "| packet                | latency (simulated us) |\n";
  row "|-----------------------|------------------------|\n";
  row "| first (setup + query) | %s |\n" (fus first);
  row "| second (cached)       | %s |\n" (fus second);
  match (first, second) with
  | Some f, Some s when f > s *. 5.0 ->
      print_endline "\nShape holds: setup >> cached forwarding."
  | _ -> print_endline "\n** UNEXPECTED: setup not dominated by exchange **"

(* E2: Figure 2+3 skype policy ---------------------------------------- *)

let fig2_policy =
  "table <server> { 192.168.1.1 }\n\
   table <lan> { 192.168.0.0/24 }\n\
   table <int_hosts> { <lan> <server> }\n\
   table <skype_update> { 123.123.123.0/24 }\n\
   allowed = \"{ http ssh }\"\n\
   block all\n\
   pass from <int_hosts> to !<int_hosts> keep state\n\
   pass from <int_hosts> to <int_hosts> with member(@src[name], $allowed) keep state\n\
   pass all with eq(@src[name], skype) with eq(@dst[name], skype)\n\
   pass from any to <skype_update> port 80 with eq(@src[name], skype) keep state\n\
   block all with eq(@src[name], skype) with lt(@src[version], 200)\n\
   block from any to <server> with eq(@src[name], skype)"

let e2 () =
  section "E2 (Figures 2-3): the skype policy decision matrix";
  let d = decision_of fig2_policy in
  let cases =
    [
      ("skype->skype (c2c)", flow ~dp:33000 "192.168.0.10" "192.168.0.11",
       [ ("name", "skype"); ("version", "210") ],
       [ ("name", "skype"); ("version", "210") ], true);
      ("skype->update:80", flow ~dp:80 "192.168.0.10" "123.123.123.5",
       [ ("name", "skype"); ("version", "210") ], [], true);
      ("skype->server", flow ~dp:80 "192.168.0.10" "192.168.1.1",
       [ ("name", "skype"); ("version", "210") ], [], false);
      ("old skype (v150)", flow ~dp:33000 "192.168.0.10" "192.168.0.11",
       [ ("name", "skype"); ("version", "150") ],
       [ ("name", "skype"); ("version", "210") ], false);
      ("http->server", flow ~dp:80 "192.168.0.10" "192.168.1.1",
       [ ("name", "http") ], [], true);
      ("telnet->server", flow ~dp:23 "192.168.0.10" "192.168.1.1",
       [ ("name", "telnet") ], [], false);
      ("lan->internet", flow ~dp:443 "192.168.0.10" "8.8.8.8",
       [ ("name", "firefox") ], [], true);
      ("internet->lan", flow ~dp:80 "8.8.8.8" "192.168.0.10",
       [], [], false);
    ]
  in
  row "| flow | expected | decided | ok |\n|---|---|---|---|\n";
  List.iter
    (fun (name, fl, src, dst, expect) ->
      let input =
        {
          D.flow = fl;
          src_response = (if src = [] then None else Some (response fl src));
          dst_response = (if dst = [] then None else Some (response fl dst));
        }
      in
      let got = D.allows d input in
      row "| %s | %s | %s | %s |\n" name
        (if expect then "pass" else "block")
        (if got then "pass" else "block")
        (if got = expect then "yes" else "**NO**"))
    cases

(* E3/E4: delegation with signatures ---------------------------------- *)

let e3_e4 () =
  section "E3-E4 (Figures 4-7): authenticated delegation (allowed + verify)";
  let kp = Idcrypto.Sign.generate "research" in
  let ks = Idcrypto.Sign.keystore () in
  Idcrypto.Sign.register ks kp;
  let requirements =
    "block all pass all with eq(@src[name], research-app) with eq(@dst[name], \
     research-app)"
  in
  let exe_hash = Idcrypto.Sha256.hexdigest "research-app-image" in
  let good_sig =
    Idcrypto.Sign.sign ~secret:kp.Idcrypto.Sign.secret
      [ exe_hash; "research-app"; requirements ]
  in
  let policy =
    Printf.sprintf
      "dict <pubkeys> { research : %s }\n\
       block all\n\
       pass all with allowed(@dst[requirements]) with verify(@dst[req-sig], \
       @pubkeys[research], @dst[exe-hash], @dst[app-name], @dst[requirements])"
      kp.Idcrypto.Sign.public
  in
  let store = PS.create () in
  PS.add_exn store ~name:"00" policy;
  let d = D.create ~keystore:ks ~policy:store () in
  let case name ~reqs ~signature ~src_app ~dst_app ~expect =
    let fl = flow ~dp:7777 "10.0.0.1" "10.0.0.2" in
    let input =
      {
        D.flow = fl;
        src_response = Some (response fl [ ("name", src_app); ("app-name", src_app) ]);
        dst_response =
          Some
            (response fl
               [
                 ("name", dst_app); ("app-name", dst_app);
                 ("exe-hash", exe_hash); ("requirements", reqs);
                 ("req-sig", signature);
               ]);
      }
    in
    let got = D.allows d input in
    row "| %s | %s | %s | %s |\n" name
      (if expect then "pass" else "block")
      (if got then "pass" else "block")
      (if got = expect then "yes" else "**NO**")
  in
  row "| scenario | expected | decided | ok |\n|---|---|---|---|\n";
  case "signed reqs, conforming flow" ~reqs:requirements ~signature:good_sig
    ~src_app:"research-app" ~dst_app:"research-app" ~expect:true;
  case "signed reqs, non-conforming flow" ~reqs:requirements
    ~signature:good_sig ~src_app:"nc" ~dst_app:"research-app" ~expect:false;
  case "tampered reqs (sig mismatch)" ~reqs:"pass all" ~signature:good_sig
    ~src_app:"research-app" ~dst_app:"research-app" ~expect:false;
  case "forged signature" ~reqs:requirements ~signature:(String.make 64 '0')
    ~src_app:"research-app" ~dst_app:"research-app" ~expect:false

(* E5: Figure 8 / Conficker ------------------------------------------- *)

let fig8_policy =
  "table <lan> { 10.0.0.0/8 }\n\
   block all\n\
   pass from <lan> with eq(@src[userID], system) to <lan> with \
   eq(@dst[userID], system) with eq(@dst[name], Server) with \
   includes(@dst[os-patch], MS08-067)"

let e5 () =
  section "E5 (Figure 8): user/application rules stop a Conficker-style scan";
  let population = Workload.Population.create ~clients:30 ~servers:5 () in
  let identxx = Baselines.Systems.identxx_exn ~policy:fig8_policy () in
  let vanilla =
    Baselines.Systems.vanilla_exn
      ~policy:"table <lan> { 10.0.0.0/8 }\nblock all\npass from <lan> to <lan> port 445"
  in
  let compromised = (Workload.Population.clients population).(0) in
  let scan =
    Workload.Attack.worm_scan ~from:compromised
      ~targets:(Workload.Population.all population) ()
  in
  let si = E.score identxx scan and sv = E.score vanilla scan in
  row "| system | scan probes admitted |\n|---|---|\n";
  row "| ident++ (Fig 8 policy) | %d / %d |\n" si.E.admitted si.E.total;
  row "| vanilla port filter    | %d / %d |\n" sv.E.admitted sv.E.total;
  print_endline
    "\nShape: the port filter admits the whole scan; ident++ admits none\n\
     (the worm's flows are not from the system user with a patched target).";
  (* Ablation: where does the scan die? Reactive denial caching still
     costs one controller round per probe; precompiling a leading
     network-only `block quick` kills the scan in the dataplane. *)
  let run_scan ~policy =
    let s = Deploy.simple_network () in
    PS.add_exn (C.policy s.Deploy.controller) ~name:"00" policy;
    Sim.Engine.run s.Deploy.engine;
    let before = Net.packet_ins s.Deploy.network in
    let proc = Identxx.Host.run s.Deploy.client ~user:"worm" ~exe:"/bin/worm" () in
    for i = 0 to 29 do
      let fl =
        Identxx.Host.connect s.Deploy.client ~proc
          ~dst:(Identxx.Host.ip s.Deploy.server) ~src_port:(30000 + i)
          ~dst_port:445 ()
      in
      Net.send_from_host s.Deploy.network ~name:"client"
        (Identxx.Host.first_packet s.Deploy.client ~flow:fl);
      Sim.Engine.run s.Deploy.engine
    done;
    float_of_int (Net.packet_ins s.Deploy.network - before) /. 30.0
  in
  let reactive =
    run_scan ~policy:"block from any to any port 445\npass all"
  in
  let proactive =
    run_scan ~policy:"block quick from any to any port 445\npass all"
  in
  row "\n| enforcement of the 445-block | packet-ins per scan probe |\n|---|---|\n";
  row "| reactive (denial caching) | %.2f |\n" reactive;
  row "| precompiled block quick (dataplane) | %.2f |\n" proactive;
  print_endline
    "\nShape: precompiled quick blocks stop the scan at line rate with zero\n\
     controller involvement; reactive denial caching pays one decision per\n\
     distinct probe flow."

(* E6: network collaboration over a bottleneck ------------------------ *)

let e6 () =
  section "E6 (S4 network collaboration): filtering before the bottleneck";
  let run ~collaborate =
    let engine = Sim.Engine.create () in
    let topology = Topo.create () in
    Topo.add_switch topology 1;
    Topo.add_switch topology 2;
    List.iter (Topo.add_host topology) [ "a1"; "b1" ];
    Topo.link topology (Topo.Host "a1", 0) (Topo.Sw 1, 1);
    Topo.link topology (Topo.Host "b1", 0) (Topo.Sw 2, 1);
    Topo.link topology ~latency:(Sim.Time.ms 2) (Topo.Sw 1, 9) (Topo.Sw 2, 9);
    let network = Net.create ~engine ~topology () in
    let ca = C.create ~network ~id:0 () in
    let cb = C.create ~network ~id:1 () in
    Net.assign_switch network 1 0;
    Net.assign_switch network 2 1;
    if collaborate then begin
      (* A drops what B advertises it will not accept. *)
      PS.add_exn (C.policy ca) ~name:"00"
        "block all\npass all with member(@src[name], @dst[branch-b-accepts])";
      C.set_response_augment cb (fun _ ->
          [ Identxx.Key_value.pair "branch-b-accepts" "{ firefox }" ])
    end
    else
      (* Without collaboration A forwards everything; B drops at its edge. *)
      PS.add_exn (C.policy ca) ~name:"00" "pass all";
    PS.add_exn (C.policy cb) ~name:"00"
      "block all\npass all with eq(@src[name], firefox)";
    let a1 =
      Identxx.Host.create ~name:"a1" ~mac:(Mac.of_int 0xa1)
        ~ip:(Ipv4.of_string "10.10.0.1") ()
    in
    let b1 =
      Identxx.Host.create ~name:"b1" ~mac:(Mac.of_int 0xb1)
        ~ip:(Ipv4.of_string "10.20.0.1") ()
    in
    List.iter (Deploy.attach_host network) [ a1; b1 ];
    (* 5 firefox flows (wanted) and 15 telnet flows (unwanted), several
       packets each. *)
    let send exe dp n =
      let proc = Identxx.Host.run a1 ~user:"u" ~exe () in
      let fl = Identxx.Host.connect a1 ~proc ~dst:(Identxx.Host.ip b1) ~dst_port:dp () in
      for _ = 1 to n do
        Net.send_from_host network ~name:"a1" (Identxx.Host.first_packet a1 ~flow:fl);
        Sim.Engine.run engine
      done
    in
    for _ = 1 to 5 do send "/usr/bin/firefox" 80 4 done;
    for _ = 1 to 15 do send "/usr/bin/telnet" 23 4 done;
    Net.egress_packets network ~node:(Topo.Sw 1) ~port:9
  in
  let with_collab = run ~collaborate:true in
  let without = run ~collaborate:false in
  row "| mode | packets over bottleneck |\n|---|---|\n";
  row "| without collaboration (B drops at its edge) | %d |\n" without;
  row "| with collaboration (A drops before link)    | %d |\n" with_collab;
  Printf.printf
    "\nShape: collaboration keeps refused traffic off the inter-branch link\n\
     (%d < %d).\n"
    with_collab without

(* E7: incremental deployment ----------------------------------------- *)

let e7 () =
  section "E7 (S4 incremental benefit): partial deployments";
  (* Daemon-only: a server distinguishes two users behind one address. *)
  let shared =
    Identxx.Host.create ~name:"shared" ~mac:(Mac.of_int 1)
      ~ip:(Ipv4.of_string "10.0.0.1") ()
  in
  let server_ip = Ipv4.of_string "10.0.0.99" in
  let user_of flow =
    let q = Identxx.Query.make ~flow ~keys:[ Identxx.Key_value.user_id ] in
    let pkt =
      Identxx.Wire.query_packet ~to_ip:flow.Five_tuple.src
        ~from_ip:flow.Five_tuple.dst q
    in
    match Identxx.Host.handle_packet shared pkt with
    | Some reply -> (
        match Identxx.Wire.classify reply with
        | Identxx.Wire.Response { response; _ } ->
            Option.value ~default:"?"
              (Identxx.Response.latest response Identxx.Key_value.user_id)
        | _ -> "?")
    | None -> "?"
  in
  let alice = Identxx.Host.run shared ~user:"alice" ~exe:"/usr/bin/irc" () in
  let bob = Identxx.Host.run shared ~user:"bob" ~exe:"/usr/bin/irc" () in
  let fa = Identxx.Host.connect shared ~proc:alice ~dst:server_ip ~dst_port:6667 () in
  let fb = Identxx.Host.connect shared ~proc:bob ~dst:server_ip ~dst_port:6667 () in
  row "| deployment | capability | result |\n|---|---|---|\n";
  row "| daemons only | distinguish users on one address | %s / %s |\n"
    (user_of fa) (user_of fb);
  (* Controller-only: asset-class enforcement without daemons. *)
  let s = Deploy.simple_network () in
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.Deploy.client) Identxx.Daemon.Silent;
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.Deploy.server) Identxx.Daemon.Silent;
  C.set_local_answers s.Deploy.controller (fun ip ->
      if Ipv4.equal ip (Identxx.Host.ip s.Deploy.client) then
        Some [ Identxx.Key_value.pair "asset-class" "kiosk" ]
      else Some [ Identxx.Key_value.pair "asset-class" "payroll" ]);
  PS.add_exn (C.policy s.Deploy.controller) ~name:"00"
    "block all with eq(@src[asset-class], kiosk) with eq(@dst[asset-class], payroll)";
  let proc = Identxx.Host.run s.Deploy.client ~user:"kiosk" ~exe:"/bin/b" () in
  let fl =
    Identxx.Host.connect s.Deploy.client ~proc
      ~dst:(Identxx.Host.ip s.Deploy.server) ~dst_port:443 ()
  in
  Net.send_from_host s.Deploy.network ~name:"client"
    (Identxx.Host.first_packet s.Deploy.client ~flow:fl);
  Sim.Engine.run s.Deploy.engine;
  let st = C.stats s.Deploy.controller in
  row "| controllers only | kiosk->payroll blocked without daemons | blocked=%d, local answers=%d |\n"
    st.C.blocked st.C.queries_answered_locally

(* E8: security comparison (S5) --------------------------------------- *)

let e8 () =
  section "E8 (S5): damage from compromising each component";
  let population = Workload.Population.create ~clients:10 ~servers:3 () in
  let n = Array.length (Workload.Population.all population) in
  let total_pairs = n * (n - 1) in
  let identxx_policy =
    "table <lan> { 10.0.0.0/8 }\n\
     block all\n\
     pass from <lan> with eq(@src[userID], system) to <lan> with \
     eq(@dst[userID], system)"
  in
  let ethane_policy =
    "table <lan> { 10.0.0.0/8 }\n\
     block all\n\
     pass from <lan> with eq(@src[userID], system) to <lan> with \
     eq(@dst[userID], system)"
  in
  let vanilla_policy =
    "table <lan> { 10.0.0.0/8 }\nblock all\npass from <lan> to <lan> port 445"
  in
  let claim =
    [
      Identxx.Key_value.pair "userID" "system";
      Identxx.Key_value.pair "name" "Server";
      Identxx.Key_value.pair "app-name" "Server";
    ]
  in
  let systems =
    [
      ("vanilla", Baselines.Systems.vanilla_exn ~policy:vanilla_policy);
      ("ethane", Baselines.Systems.ethane_exn ~policy:ethane_policy);
      ("distributed", Baselines.Systems.distributed_exn ~policy:identxx_policy);
      ("identxx", Baselines.Systems.identxx_exn ~attacker_claim:claim ~policy:identxx_policy ());
    ]
  in
  let compromised_host = (Workload.Population.clients population).(0) in
  row "| system | honest network | one compromised end-host |\n|---|---|---|\n";
  List.iter
    (fun (name, enf) ->
      let honest =
        Workload.Attack.reachable_pairs enf ~population ~compromised:[] ()
      in
      let with_compromise =
        Workload.Attack.reachable_pairs enf ~population
          ~compromised:[ compromised_host.Workload.Population.ip ]
          ()
      in
      row "| %s | %d / %d pairs | %d / %d pairs |\n" name honest total_pairs
        with_compromise total_pairs)
    systems;
  print_endline
    "\nQualitative rows (S5.1-S5.2): a compromised controller disables all\n\
     protection in both ident++ and vanilla deployments (same blast radius);\n\
     a compromised switch unprotects exactly the traffic it carries.\n\
     Shape: vanilla admits every 445 pair regardless; ident++/ethane admit\n\
     only system<->system pairs when honest; a lying daemon inflates ident++'s\n\
     reachable set toward the attacker's claim (S5.3) while Ethane's\n\
     network-authenticated bindings are unaffected (S5.4)."

(* E9: setup latency vs deployment mode ------------------------------- *)

let e9 () =
  section "E9: flow-setup latency by query mode (protocol cost)";
  let policy_both = "block all\npass all with eq(@src[name], firefox)" in
  let modes =
    [
      ("query both ends", { C.default_config with C.query_targets = C.Both }, policy_both);
      ("query source only", { C.default_config with C.query_targets = C.Src_only }, policy_both);
      ("no queries (Ethane-like)", { C.default_config with C.query_targets = C.Neither }, "pass all");
    ]
  in
  row "| mode | first packet (us) | cached packet (us) |\n|---|---|---|\n";
  List.iter
    (fun (name, config, policy_text) ->
      let first, second =
        measure_setup_latency ~config ~policy_text ~app:"/usr/bin/firefox" ()
      in
      row "| %s | %s | %s |\n" name (fus first) (fus second))
    modes;
  print_endline
    "\nShape: the ident++ exchange adds one query/response round-trip to\n\
     setup (both ends are queried in parallel, so Both == Src_only); with\n\
     no queries, setup is just the packet-in/flow-mod detour. The cached\n\
     path is identical across modes.";
  (* Timeout case: a silent daemon delays the decision to the timeout. *)
  let config = C.default_config in
  let s = Deploy.simple_network ~config () in
  PS.add_exn (C.policy s.Deploy.controller) ~name:"00" "pass all";
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.Deploy.client) Identxx.Daemon.Silent;
  Identxx.Daemon.set_behaviour (Identxx.Host.daemon s.Deploy.server) Identxx.Daemon.Silent;
  let proc = Identxx.Host.run s.Deploy.client ~user:"u" ~exe:"/bin/a" () in
  let fl =
    Identxx.Host.connect s.Deploy.client ~proc
      ~dst:(Identxx.Host.ip s.Deploy.server) ~dst_port:80 ()
  in
  let t0 = Sim.Engine.now s.Deploy.engine in
  Net.send_from_host s.Deploy.network ~name:"client"
    (Identxx.Host.first_packet s.Deploy.client ~flow:fl);
  Sim.Engine.run s.Deploy.engine;
  let elapsed = Sim.Time.to_float_ms (Sim.Time.sub (Sim.Engine.now s.Deploy.engine) t0) in
  Printf.printf
    "\nSilent daemons: decision deferred to the %.1f ms query timeout \
     (elapsed %.1f ms).\n"
    (Sim.Time.to_float_ms C.default_config.C.query_timeout)
    elapsed;
  (* Setup latency vs path length: queries go to the edges, entries are
     installed along the whole path. *)
  row "\n| switches on path | first packet (us) | cached packet (us) |\n|---|---|---|\n";
  List.iter
    (fun n ->
      let engine, network, controller, hosts =
        Deploy.linear_network ~switches:n ~hosts_per_switch:2 ()
      in
      PS.add_exn (C.policy controller) ~name:"00" "pass all";
      let src = hosts.(0) and dst = hosts.(Array.length hosts - 1) in
      let delivery = ref None in
      Deploy.attach_host_with network dst ~rx:(fun pkt ->
          match Packet.five_tuple pkt with
          | Some ft when ft.Five_tuple.dst_port = 80 && !delivery = None ->
              delivery := Some (Sim.Engine.now engine)
          | _ -> ());
      let proc = Identxx.Host.run src ~user:"u" ~exe:"/bin/a" () in
      let fl =
        Identxx.Host.connect src ~proc ~dst:(Identxx.Host.ip dst) ~dst_port:80 ()
      in
      let t0 = Sim.Engine.now engine in
      Net.send_from_host network ~name:(Identxx.Host.name src)
        (Identxx.Host.first_packet src ~flow:fl);
      Sim.Engine.run engine;
      let first =
        Option.map (fun t -> Sim.Time.to_float_us (Sim.Time.sub t t0)) !delivery
      in
      delivery := None;
      let t1 = Sim.Engine.now engine in
      Net.send_from_host network ~name:(Identxx.Host.name src)
        (Identxx.Host.first_packet src ~flow:fl);
      Sim.Engine.run engine;
      let second =
        Option.map (fun t -> Sim.Time.to_float_us (Sim.Time.sub t t1)) !delivery
      in
      row "| %d | %s | %s |\n" n (fus first) (fus second))
    [ 1; 2; 4; 8 ];
  print_endline
    "\nShape: cached latency grows linearly with hops; setup grows more\n\
     slowly than per-hop decisions would (the exchange happens once, at\n\
     the ingress controller, and entries install along the path in\n\
     parallel)."

(* E10: datapath cache sweep ------------------------------------------ *)

let e10 () =
  section "E10: cached datapath vs table-miss rate";
  row "| packets per flow | packet-ins per packet | mean delivery latency (us) |\n|---|---|---|\n";
  List.iter
    (fun k ->
      let s = Deploy.simple_network () in
      PS.add_exn (C.policy s.Deploy.controller) ~name:"00" "pass all";
      let stats = Sim.Stats.create () in
      let sent = ref 0 in
      let t_send = ref Sim.Time.zero in
      Deploy.attach_host_with s.Deploy.network s.Deploy.server ~rx:(fun pkt ->
          match Packet.five_tuple pkt with
          | Some ft when ft.Five_tuple.dst_port = 80 ->
              Sim.Stats.add stats
                (Sim.Time.to_float_us
                   (Sim.Time.sub (Sim.Engine.now s.Deploy.engine) !t_send))
          | _ -> ());
      for f = 0 to 19 do
        let proc = Identxx.Host.run s.Deploy.client ~user:"u" ~exe:"/bin/a" () in
        let fl =
          Identxx.Host.connect s.Deploy.client ~proc
            ~dst:(Identxx.Host.ip s.Deploy.server) ~src_port:(20000 + f)
            ~dst_port:80 ()
        in
        for _ = 1 to k do
          t_send := Sim.Engine.now s.Deploy.engine;
          incr sent;
          Net.send_from_host s.Deploy.network ~name:"client"
            (Identxx.Host.first_packet s.Deploy.client ~flow:fl);
          Sim.Engine.run s.Deploy.engine
        done
      done;
      row "| %d | %.3f | %.1f |\n" k
        (float_of_int (Net.packet_ins s.Deploy.network) /. float_of_int !sent)
        (Sim.Stats.mean stats))
    [ 1; 2; 5; 10; 50 ];
  print_endline
    "\nShape: packet-in rate ~ 1/k; mean latency converges to the pure\n\
     forwarding latency as the cache absorbs the flow."

(* E11/E12: engine micro-costs (wall-clock) --------------------------- *)

let time_ops f n =
  let t0 = Sys.time () in
  for _ = 1 to n do
    f ()
  done;
  let dt = Sys.time () -. t0 in
  if dt <= 0.0 then infinity else float_of_int n /. dt

let e11 () =
  section "E11: PF+=2 evaluation throughput vs ruleset size (wall clock)";
  let fl = flow "10.0.0.1" "10.1.0.1" in
  let src = response fl [ ("name", "firefox"); ("userID", "u1") ] in
  row "| rules | quick? | evals/sec |\n|---|---|---|\n";
  List.iter
    (fun n ->
      List.iter
        (fun quick ->
          let rules =
            List.init n (fun i ->
                Printf.sprintf "%s from 172.16.%d.0/24 to any port %d"
                  (if i mod 2 = 0 then "block" else "pass")
                  (i mod 250) (1000 + i))
          in
          let text =
            String.concat "\n"
              (rules
              @ [
                  (if quick then
                     "pass quick all with eq(@src[name], firefox)"
                   else "pass all with eq(@src[name], firefox)");
                ])
          in
          (* With quick, put the matching rule first so it short-circuits. *)
          let text =
            if quick then
              "pass quick all with eq(@src[name], firefox)\n"
              ^ String.concat "\n" rules
            else text
          in
          let env =
            match Pf.Env.of_string text with
            | Ok e -> e
            | Error e -> failwith e
          in
          let ctx = Pf.Eval.ctx ~src () in
          let ops =
            time_ops (fun () -> ignore (Pf.Eval.eval env ctx fl)) 2000
          in
          row "| %4d | %-3s | %10.0f |\n" n (if quick then "yes" else "no") ops)
        [ false; true ])
    [ 10; 100; 1000 ];
  print_endline
    "\nShape: non-quick evaluation is linear in ruleset size; a leading\n\
     quick rule makes it constant (the paper's stated purpose for quick)."

let e12 () =
  section "E12: protocol encode/parse and verify() costs (wall clock)";
  let fl = flow "10.0.0.1" "10.1.0.1" in
  let r =
    Identxx.Response.make ~flow:fl
      (List.init 4 (fun s ->
           List.init 6 (fun i ->
               Identxx.Key_value.pair
                 (Printf.sprintf "key-%d-%d" s i)
                 (Printf.sprintf "value-%d-%d" s i))))
  in
  let encoded = Identxx.Response.encode r in
  let q = Identxx.Query.make ~flow:fl ~keys:[ "userID"; "name"; "exe-hash" ] in
  let qe = Identxx.Query.encode q in
  let kp = Idcrypto.Sign.generate "bench" in
  let ks = Idcrypto.Sign.keystore () in
  Idcrypto.Sign.register ks kp;
  let data = [ "hash"; "app"; "requirements text of moderate length" ] in
  let signature = Idcrypto.Sign.sign ~secret:kp.Idcrypto.Sign.secret data in
  row "| operation | ops/sec |\n|---|---|\n";
  row "| query encode | %.0f |\n" (time_ops (fun () -> ignore (Identxx.Query.encode q)) 20000);
  row "| query decode | %.0f |\n" (time_ops (fun () -> ignore (Identxx.Query.decode qe)) 20000);
  row "| response encode (4 sections) | %.0f |\n"
    (time_ops (fun () -> ignore (Identxx.Response.encode r)) 20000);
  row "| response decode (4 sections) | %.0f |\n"
    (time_ops (fun () -> ignore (Identxx.Response.decode encoded)) 20000);
  row "| verify() (HMAC-SHA256) | %.0f |\n"
    (time_ops
       (fun () ->
         ignore (Idcrypto.Sign.verify ks ~public:kp.Idcrypto.Sign.public ~signature data))
       5000);
  Printf.printf "\nresponse size: %d bytes (4 sections, 24 pairs)\n"
    (String.length encoded);
  row "\n| sections | response bytes |\n|---|---|\n";
  List.iter
    (fun n ->
      let r =
        Identxx.Response.make ~flow:fl
          (List.init n (fun s ->
               List.init 6 (fun i ->
                   Identxx.Key_value.pair
                     (Printf.sprintf "key-%d-%d" s i)
                     (Printf.sprintf "value-%d-%d" s i))))
      in
      row "| %d | %d |\n" n (String.length (Identxx.Response.encode r)))
    [ 1; 2; 4; 8 ];
  print_endline
    "\nShape: linear in sections; even 8 sections (7 augmenting\n\
     controllers) fit one packet."

(* E13: policy granularity (the S1 motivating example) ----------------- *)

let e13 () =
  section "E13 (S1): principal-based vs port-based policy on a mixed workload";
  let population = Workload.Population.create ~clients:40 ~servers:8 () in
  let prng = Sim.Prng.create 42 in
  let intent = Workload.Flowgen.intent_of_population population in
  let flows =
    Workload.Flowgen.mixed ~intent ~prng ~population ~count:2000 ()
  in
  let identxx_policy =
    "table <lan> { 10.0.0.0/8 }\n\
     table <important> { 10.1.0.1 }\n\
     allowed = \"{ firefox ssh thunderbird skype }\"\n\
     block all\n\
     pass from <lan> to any with member(@src[name], $allowed)\n\
     block from any to <important> with eq(@src[name], skype)"
  in
  let vanilla_policy =
    "table <lan> { 10.0.0.0/8 }\n\
     block all\n\
     pass from <lan> to any port 80\n\
     pass from <lan> to any port 22\n\
     pass from <lan> to any port 25"
  in
  let ethane_policy =
    "table <lan> { 10.0.0.0/8 }\n\
     block all\n\
     pass from <lan> with member(@src[groupID], staff) to any"
  in
  let systems =
    [
      ("identxx", Baselines.Systems.identxx_exn ~policy:identxx_policy ());
      ("vanilla", Baselines.Systems.vanilla_exn ~policy:vanilla_policy);
      ("ethane", Baselines.Systems.ethane_exn ~policy:ethane_policy);
      ("distributed", Baselines.Systems.distributed_exn ~policy:vanilla_policy);
    ]
  in
  row "| system | false allows | false denies | accuracy |\n|---|---|---|---|\n";
  List.iter
    (fun (name, enf) ->
      let s = E.score enf flows in
      row "| %s | %d | %d | %.3f |\n" name s.E.false_allows s.E.false_denies
        (E.accuracy s))
    systems;
  print_endline
    "\nShape: only ident++ can separate skype-on-port-80 from web-on-port-80\n\
     (the S1 motivating example), so it has the fewest intent violations."

let () =
  print_endline "# ident++ experiment tables";
  print_endline
    "(regenerate with: dune exec bin/experiments.exe; see EXPERIMENTS.md)";
  e1 ();
  e2 ();
  e3_e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  print_endline "\nAll experiment tables regenerated."

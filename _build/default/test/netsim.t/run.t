The netsim binary replays the paper's Figure-1 sequence with a
deterministic trace.

  $ identxx-netsim fig1 | head -20
  Figure 1: client -> switch -> controller -> ident++ -> install -> deliver
  
  === trace ===
        0s  client       tx [00:00:00:0a:00:01 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.1:50000 -> 10.0.0.2:80]
      10us  s1           packet-in -> controller [00:00:00:0a:00:01 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.1:50000 -> 10.0.0.2:80]
      60us  controller   -> s1 packet-out port=1 [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:49152 -> 10.0.0.1:783]
      60us  controller   -> s1 packet-out port=2 [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.1:49152 -> 10.0.0.2:783]
     120us  client       rx [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:49152 -> 10.0.0.1:783]
     120us  client       tx [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.1:783 -> 10.0.0.2:49152]
     120us  server       rx [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.1:49152 -> 10.0.0.2:783]
     120us  server       tx [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:783 -> 10.0.0.1:49152]
     130us  s1           packet-in -> controller [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.1:783 -> 10.0.0.2:49152]
     130us  s1           packet-in -> controller [00:00:00:00:00:00 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.2:783 -> 10.0.0.1:49152]
     180us  controller   -> s1 flow-mod add prio=32768 {dl_type=ipv4 nw_src=10.0.0.1/32 nw_dst=10.0.0.2/32 nw_proto=tcp tp_src=50000 tp_dst=80} -> output:2
     180us  controller   -> s1 flow-mod add prio=32768 {dl_type=ipv4 nw_src=10.0.0.2/32 nw_dst=10.0.0.1/32 nw_proto=tcp tp_src=80 tp_dst=50000} -> output:1
     180us  controller   -> s1 packet-out port=table [00:00:00:0a:00:01 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.1:50000 -> 10.0.0.2:80]
     240us  server       rx [00:00:00:0a:00:01 -> 00:00:00:00:00:00 vlan:untagged tcp 10.0.0.1:50000 -> 10.0.0.2:80]
  
  === summary ===
  packets delivered to hosts: 3

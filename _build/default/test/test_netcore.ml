(* Unit and property tests for the netcore substrate: addresses,
   prefixes, 5-tuples, checksums and wire-format packet codecs. *)

open Netcore

let check = Alcotest.check

(* --- Mac --- *)

let test_mac_string_roundtrip () =
  let cases = [ "00:11:22:33:44:55"; "ff:ff:ff:ff:ff:ff"; "00:00:00:00:00:00"; "de:ad:be:ef:01:02" ] in
  List.iter
    (fun s -> check Alcotest.string s s (Mac.to_string (Mac.of_string s)))
    cases

let test_mac_case_insensitive () =
  check Alcotest.bool "upper equals lower" true
    (Mac.equal (Mac.of_string "DE:AD:BE:EF:01:02") (Mac.of_string "de:ad:be:ef:01:02"))

let test_mac_bad_strings () =
  List.iter
    (fun s ->
      check Alcotest.bool ("rejects " ^ s) true (Mac.of_string_opt s = None))
    [ ""; "00:11:22:33:44"; "00:11:22:33:44:5g"; "001122334455"; "00-11-22-33-44-55" ]

let test_mac_bytes_roundtrip () =
  let m = Mac.of_string "0a:1b:2c:3d:4e:5f" in
  let b = Bytes.create 6 in
  Mac.write_bytes m b 0;
  check Alcotest.bool "bytes roundtrip" true
    (Mac.equal m (Mac.of_bytes (Bytes.to_string b) 0))

let test_mac_flags () =
  check Alcotest.bool "broadcast" true (Mac.is_broadcast Mac.broadcast);
  check Alcotest.bool "broadcast is multicast" true (Mac.is_multicast Mac.broadcast);
  check Alcotest.bool "unicast" false (Mac.is_multicast (Mac.of_string "00:11:22:33:44:55"));
  check Alcotest.bool "multicast bit" true (Mac.is_multicast (Mac.of_string "01:00:5e:00:00:01"))

(* --- Ipv4 --- *)

let test_ipv4_string_roundtrip () =
  List.iter
    (fun s -> check Alcotest.string s s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.0.0.1"; "192.168.1.254"; "1.2.3.4" ]

let test_ipv4_bad_strings () =
  List.iter
    (fun s ->
      check Alcotest.bool ("rejects " ^ s) true (Ipv4.of_string_opt s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "1..2.3"; "a.b.c.d"; "1.2.3.4 "; "1.2.3.0400" ]

let test_ipv4_octets () =
  let a = Ipv4.of_octets 10 20 30 40 in
  check Alcotest.string "octets" "10.20.30.40" (Ipv4.to_string a);
  let w, x, y, z = Ipv4.to_octets a in
  check Alcotest.(list int) "to_octets" [ 10; 20; 30; 40 ] [ w; x; y; z ]

let test_ipv4_succ_wraps () =
  check Alcotest.string "wrap" "0.0.0.0" (Ipv4.to_string (Ipv4.succ Ipv4.broadcast));
  check Alcotest.string "succ" "10.0.0.2" (Ipv4.to_string (Ipv4.succ (Ipv4.of_string "10.0.0.1")))

let test_ipv4_classification () =
  check Alcotest.bool "224/4 multicast" true (Ipv4.is_multicast (Ipv4.of_string "239.1.2.3"));
  check Alcotest.bool "unicast" false (Ipv4.is_multicast (Ipv4.of_string "8.8.8.8"));
  List.iter
    (fun (s, expect) ->
      check Alcotest.bool ("private " ^ s) expect (Ipv4.is_private (Ipv4.of_string s)))
    [ ("10.1.2.3", true); ("172.16.0.1", true); ("172.31.255.255", true);
      ("172.32.0.1", false); ("192.168.9.9", true); ("8.8.8.8", false) ]

(* --- Prefix --- *)

let test_prefix_parse_and_canonical () =
  let p = Prefix.of_string "192.168.1.77/24" in
  check Alcotest.string "canonicalized" "192.168.1.0/24" (Prefix.to_string p);
  check Alcotest.int "length" 24 (Prefix.length p);
  let host = Prefix.of_string "10.0.0.1" in
  check Alcotest.int "bare address is /32" 32 (Prefix.length host)

let test_prefix_membership () =
  let p = Prefix.of_string "10.1.0.0/16" in
  check Alcotest.bool "inside" true (Prefix.mem (Ipv4.of_string "10.1.255.3") p);
  check Alcotest.bool "outside" false (Prefix.mem (Ipv4.of_string "10.2.0.1") p);
  check Alcotest.bool "all matches everything" true
    (Prefix.mem (Ipv4.of_string "203.0.113.9") Prefix.all)

let test_prefix_subset_overlap () =
  let p24 = Prefix.of_string "10.1.1.0/24" in
  let p16 = Prefix.of_string "10.1.0.0/16" in
  let other = Prefix.of_string "10.2.0.0/16" in
  check Alcotest.bool "/24 subset of /16" true (Prefix.subset p24 p16);
  check Alcotest.bool "/16 not subset of /24" false (Prefix.subset p16 p24);
  check Alcotest.bool "overlap" true (Prefix.overlaps p24 p16);
  check Alcotest.bool "disjoint" false (Prefix.overlaps p24 other)

let test_prefix_bounds () =
  let p = Prefix.of_string "10.1.1.0/30" in
  check Alcotest.string "first" "10.1.1.0" (Ipv4.to_string (Prefix.first p));
  check Alcotest.string "last" "10.1.1.3" (Ipv4.to_string (Prefix.last p));
  check Alcotest.int "size" 4 (Prefix.size p);
  check Alcotest.int "hosts enumerates size" 4 (List.length (List.of_seq (Prefix.hosts p)))

let test_prefix_bad () =
  List.iter
    (fun s -> check Alcotest.bool ("rejects " ^ s) true (Prefix.of_string_opt s = None))
    [ "10.0.0.0/33"; "10.0.0.0/-1"; "10.0.0.0/"; "10.0.0.0/x"; "300.0.0.0/8" ]

(* --- Proto / Vlan / Ethertype --- *)

let test_proto_roundtrip () =
  List.iter
    (fun p ->
      check Alcotest.int (Proto.to_string p) (Proto.to_int p)
        (Proto.to_int (Proto.of_string (Proto.to_string p))))
    [ Proto.Tcp; Proto.Udp; Proto.Icmp; Proto.Other 89 ];
  check Alcotest.bool "case insensitive" true (Proto.equal (Proto.of_string "TCP") Proto.Tcp);
  check Alcotest.bool "rejects 256" true (Proto.of_string_opt "256" = None)

let test_vlan () =
  check Alcotest.bool "untagged" false (Vlan.is_tagged Vlan.untagged);
  check Alcotest.(option int) "id of tagged" (Some 42) (Vlan.id (Vlan.of_id 42));
  check Alcotest.(option int) "id of untagged" None (Vlan.id Vlan.untagged);
  Alcotest.check_raises "4096 rejected" (Invalid_argument "Vlan.of_id: out of range")
    (fun () -> ignore (Vlan.of_id 4096))

let test_ethertype () =
  check Alcotest.int "ipv4" 0x0800 (Ethertype.to_int Ethertype.Ipv4);
  check Alcotest.bool "roundtrip arp" true
    (Ethertype.equal Ethertype.Arp (Ethertype.of_int 0x0806))

(* --- Five_tuple --- *)

let test_five_tuple_reverse_involution () =
  let ft =
    Five_tuple.tcp ~src:(Ipv4.of_string "1.2.3.4") ~dst:(Ipv4.of_string "5.6.7.8")
      ~src_port:1000 ~dst_port:80
  in
  check Alcotest.bool "reverse twice is identity" true
    (Five_tuple.equal ft (Five_tuple.reverse (Five_tuple.reverse ft)));
  let r = Five_tuple.reverse ft in
  check Alcotest.int "ports swapped" 80 r.Five_tuple.src_port

let test_five_tuple_rejects_bad_port () =
  Alcotest.check_raises "port 70000" (Invalid_argument "Five_tuple: port out of range")
    (fun () ->
      ignore
        (Five_tuple.tcp ~src:Ipv4.any ~dst:Ipv4.any ~src_port:70000 ~dst_port:80))

(* --- Checksum --- *)

let test_checksum_rfc1071_example () =
  (* RFC 1071 example bytes: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d. *)
  let data = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check Alcotest.int "rfc1071" 0x220d (Checksum.of_string data)

let test_checksum_odd_length () =
  (* Trailing byte padded on the right. *)
  let even = Checksum.of_string "\x12\x34\x56\x00" in
  let odd = Checksum.of_string "\x12\x34\x56" in
  check Alcotest.int "odd = even with zero pad" even odd

let test_checksum_verify_self () =
  (* A buffer with its own checksum embedded sums to 0xffff. *)
  let b = Bytes.of_string "\x45\x00\x00\x1c\x00\x00\x00\x00\x40\x06\x00\x00\x0a\x00\x00\x01\x0a\x00\x00\x02" in
  let c = Checksum.finish (Checksum.sum (Bytes.to_string b) 0 20) in
  Bytes.set b 10 (Char.chr (c lsr 8));
  Bytes.set b 11 (Char.chr (c land 0xff));
  check Alcotest.bool "valid" true (Checksum.valid (Bytes.to_string b))

(* --- Packet codec --- *)

let decode_ok s =
  match Packet.decode s with
  | Ok p -> p
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_packet_tcp_roundtrip () =
  let pkt =
    Packet.tcp_syn ~eth_src:(Mac.of_int 0x1) ~eth_dst:(Mac.of_int 0x2)
      ~src:(Ipv4.of_string "10.0.0.1") ~dst:(Ipv4.of_string "10.0.0.2")
      ~src_port:5000 ~dst_port:80 ()
  in
  let decoded = decode_ok (Packet.encode pkt) in
  check Alcotest.bool "tcp roundtrip" true (Packet.equal pkt decoded)

let test_packet_udp_roundtrip () =
  let pkt =
    Packet.udp_datagram ~src:(Ipv4.of_string "10.0.0.1")
      ~dst:(Ipv4.of_string "10.0.0.2") ~src_port:53 ~dst_port:5353
      ~payload:"hello dns" ()
  in
  check Alcotest.bool "udp roundtrip" true
    (Packet.equal pkt (decode_ok (Packet.encode pkt)))

let test_packet_vlan_roundtrip () =
  let pkt =
    Packet.tcp_syn ~vlan:(Vlan.of_id 100) ~src:(Ipv4.of_string "10.0.0.1")
      ~dst:(Ipv4.of_string "10.0.0.2") ~src_port:1234 ~dst_port:443 ()
  in
  let decoded = decode_ok (Packet.encode pkt) in
  check Alcotest.(option int) "vlan preserved" (Some 100) (Vlan.id decoded.Packet.vlan)

let test_packet_corrupt_checksum_rejected () =
  let pkt =
    Packet.tcp_syn ~src:(Ipv4.of_string "10.0.0.1") ~dst:(Ipv4.of_string "10.0.0.2")
      ~src_port:5000 ~dst_port:80 ()
  in
  let wire = Bytes.of_string (Packet.encode pkt) in
  (* Flip a bit in the IP source address. *)
  Bytes.set wire 27 (Char.chr (Char.code (Bytes.get wire 27) lxor 1));
  (match Packet.decode (Bytes.to_string wire) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted packet decoded with check on");
  match Packet.decode ~check:false (Bytes.to_string wire) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "check:false should tolerate wrong checksum: %s" e

let test_packet_truncated_rejected () =
  let pkt =
    Packet.tcp_syn ~src:(Ipv4.of_string "10.0.0.1") ~dst:(Ipv4.of_string "10.0.0.2")
      ~src_port:5000 ~dst_port:80 ()
  in
  let wire = Packet.encode pkt in
  for len = 0 to min 30 (String.length wire - 1) do
    match Packet.decode (String.sub wire 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" len
  done

let test_packet_five_tuple_extraction () =
  let ft =
    Five_tuple.udp ~src:(Ipv4.of_string "1.1.1.1") ~dst:(Ipv4.of_string "2.2.2.2")
      ~src_port:999 ~dst_port:53
  in
  let pkt = Packet.of_five_tuple ft in
  check Alcotest.(option string) "five tuple preserved"
    (Some (Five_tuple.to_string ft))
    (Option.map Five_tuple.to_string (Packet.five_tuple pkt))

let test_packet_non_ip () =
  let pkt =
    {
      Packet.eth_src = Mac.of_int 1;
      eth_dst = Mac.broadcast;
      vlan = Vlan.untagged;
      eth_payload = Packet.Raw_eth (Ethertype.Arp, "arp-body");
    }
  in
  let decoded = decode_ok (Packet.encode pkt) in
  check Alcotest.bool "non-ip roundtrip" true (Packet.equal pkt decoded);
  check Alcotest.bool "no five tuple" true (Packet.five_tuple decoded = None)

(* --- Pcap --- *)

let test_pcap_roundtrip () =
  let buf = Buffer.create 256 in
  let w = Pcap.create_writer buf in
  let p1 =
    Packet.tcp_syn ~src:(Ipv4.of_string "10.0.0.1") ~dst:(Ipv4.of_string "10.0.0.2")
      ~src_port:1000 ~dst_port:80 ()
  in
  let p2 =
    Packet.udp_datagram ~src:(Ipv4.of_string "10.0.0.2")
      ~dst:(Ipv4.of_string "10.0.0.1") ~src_port:53 ~dst_port:999 ~payload:"x" ()
  in
  Pcap.write_packet w ~ts_us:100 p1;
  Pcap.write_packet w ~ts_us:2_000_500 p2;
  check Alcotest.int "two records" 2 (Pcap.packet_count w);
  match Pcap.parse (Buffer.contents buf) with
  | Error e -> Alcotest.fail e
  | Ok [ r1; r2 ] ->
      check Alcotest.int "ts1" 100 r1.Pcap.ts_us;
      check Alcotest.int "ts2" 2_000_500 r2.Pcap.ts_us;
      check Alcotest.bool "frame 1 re-decodes" true
        (match Packet.decode r1.Pcap.frame with
        | Ok p -> Packet.equal p p1
        | Error _ -> false);
      check Alcotest.bool "frame 2 re-decodes" true
        (match Packet.decode r2.Pcap.frame with
        | Ok p -> Packet.equal p p2
        | Error _ -> false)
  | Ok _ -> Alcotest.fail "expected two records"

let test_pcap_header_bytes () =
  let buf = Buffer.create 64 in
  ignore (Pcap.create_writer buf);
  let h = Buffer.contents buf in
  check Alcotest.int "24-byte header" 24 (String.length h);
  (* Little-endian magic. *)
  check Alcotest.string "magic" "\xd4\xc3\xb2\xa1" (String.sub h 0 4);
  (* Network = Ethernet (1). *)
  check Alcotest.int "linktype" 1 (Char.code h.[20])

let test_pcap_snaplen_truncates () =
  let buf = Buffer.create 64 in
  let w = Pcap.create_writer ~snaplen:20 buf in
  Pcap.write_bytes w ~ts_us:0 (String.make 100 'z');
  match Pcap.parse (Buffer.contents buf) with
  | Ok [ r ] ->
      check Alcotest.int "captured 20" 20 (String.length r.Pcap.frame);
      check Alcotest.int "orig 100" 100 r.Pcap.orig_len
  | _ -> Alcotest.fail "expected one record"

let test_pcap_rejects_garbage () =
  (match Pcap.parse "short" with Error _ -> () | Ok _ -> Alcotest.fail "short accepted");
  match Pcap.parse (String.make 24 '\x00') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted"

(* --- property tests --- *)

let gen_ip = QCheck.Gen.map Ipv4.of_int (QCheck.Gen.int_bound 0xffff_ffff)
let gen_port = QCheck.Gen.int_bound 0xffff

let gen_payload =
  QCheck.Gen.map (fun n -> String.make n 'x') (QCheck.Gen.int_bound 200)

let gen_packet =
  QCheck.Gen.(
    let* src = gen_ip in
    let* dst = gen_ip in
    let* sp = gen_port in
    let* dp = gen_port in
    let* payload = gen_payload in
    let* kind = int_bound 2 in
    match kind with
    | 0 ->
        return
          (Packet.udp_datagram ~src ~dst ~src_port:sp ~dst_port:dp ~payload ())
    | 1 -> return (Packet.tcp_syn ~src ~dst ~src_port:sp ~dst_port:dp ())
    | _ ->
        return
          (Packet.of_five_tuple
             (Five_tuple.make ~src ~dst ~proto:Proto.Icmp ~src_port:0 ~dst_port:0)))

let arb_packet =
  QCheck.make gen_packet ~print:(fun p -> Format.asprintf "%a" Packet.pp p)

let prop_packet_roundtrip =
  QCheck.Test.make ~name:"packet encode/decode roundtrip" ~count:300 arb_packet
    (fun pkt ->
      match Packet.decode (Packet.encode pkt) with
      | Ok decoded -> Packet.equal pkt decoded
      | Error _ -> false)

let prop_checksums_validate =
  QCheck.Test.make ~name:"encoded packets carry valid checksums" ~count:300
    arb_packet (fun pkt ->
      match Packet.decode ~check:true (Packet.encode pkt) with
      | Ok _ -> true
      | Error _ -> false)

let gen_prefix =
  QCheck.Gen.(
    let* ip = gen_ip in
    let* len = int_bound 32 in
    return (Prefix.make ip len))

let prop_prefix_mem_first_last =
  QCheck.Test.make ~name:"prefix contains its first and last address"
    ~count:300
    (QCheck.make gen_prefix ~print:Prefix.to_string)
    (fun p -> Prefix.mem (Prefix.first p) p && Prefix.mem (Prefix.last p) p)

let prop_prefix_subset_reflexive =
  QCheck.Test.make ~name:"prefix subset is reflexive" ~count:300
    (QCheck.make gen_prefix ~print:Prefix.to_string)
    (fun p -> Prefix.subset p p)

let prop_ipv4_string_roundtrip =
  QCheck.Test.make ~name:"ipv4 string roundtrip" ~count:500
    (QCheck.make gen_ip ~print:Ipv4.to_string) (fun a ->
      Ipv4.equal a (Ipv4.of_string (Ipv4.to_string a)))

let prop_mac_string_roundtrip =
  QCheck.Test.make ~name:"mac string roundtrip" ~count:500
    (QCheck.make
       (QCheck.Gen.map Mac.of_int (QCheck.Gen.int_bound ((1 lsl 48) - 1)))
       ~print:Mac.to_string)
    (fun m -> Mac.equal m (Mac.of_string (Mac.to_string m)))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "netcore"
    [
      ( "mac",
        [
          Alcotest.test_case "string roundtrip" `Quick test_mac_string_roundtrip;
          Alcotest.test_case "case insensitive" `Quick test_mac_case_insensitive;
          Alcotest.test_case "bad strings" `Quick test_mac_bad_strings;
          Alcotest.test_case "bytes roundtrip" `Quick test_mac_bytes_roundtrip;
          Alcotest.test_case "flags" `Quick test_mac_flags;
        ] );
      ( "ipv4",
        [
          Alcotest.test_case "string roundtrip" `Quick test_ipv4_string_roundtrip;
          Alcotest.test_case "bad strings" `Quick test_ipv4_bad_strings;
          Alcotest.test_case "octets" `Quick test_ipv4_octets;
          Alcotest.test_case "succ wraps" `Quick test_ipv4_succ_wraps;
          Alcotest.test_case "classification" `Quick test_ipv4_classification;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "parse and canonical" `Quick test_prefix_parse_and_canonical;
          Alcotest.test_case "membership" `Quick test_prefix_membership;
          Alcotest.test_case "subset/overlap" `Quick test_prefix_subset_overlap;
          Alcotest.test_case "bounds" `Quick test_prefix_bounds;
          Alcotest.test_case "bad inputs" `Quick test_prefix_bad;
        ] );
      ( "scalars",
        [
          Alcotest.test_case "proto" `Quick test_proto_roundtrip;
          Alcotest.test_case "vlan" `Quick test_vlan;
          Alcotest.test_case "ethertype" `Quick test_ethertype;
        ] );
      ( "five_tuple",
        [
          Alcotest.test_case "reverse involution" `Quick
            test_five_tuple_reverse_involution;
          Alcotest.test_case "rejects bad port" `Quick
            test_five_tuple_rejects_bad_port;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "rfc1071 example" `Quick test_checksum_rfc1071_example;
          Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
          Alcotest.test_case "verify self" `Quick test_checksum_verify_self;
        ] );
      ( "packet",
        [
          Alcotest.test_case "tcp roundtrip" `Quick test_packet_tcp_roundtrip;
          Alcotest.test_case "udp roundtrip" `Quick test_packet_udp_roundtrip;
          Alcotest.test_case "vlan roundtrip" `Quick test_packet_vlan_roundtrip;
          Alcotest.test_case "corrupt checksum rejected" `Quick
            test_packet_corrupt_checksum_rejected;
          Alcotest.test_case "truncation rejected" `Quick
            test_packet_truncated_rejected;
          Alcotest.test_case "five tuple extraction" `Quick
            test_packet_five_tuple_extraction;
          Alcotest.test_case "non-ip frames" `Quick test_packet_non_ip;
        ] );
      ( "pcap",
        [
          Alcotest.test_case "roundtrip" `Quick test_pcap_roundtrip;
          Alcotest.test_case "header bytes" `Quick test_pcap_header_bytes;
          Alcotest.test_case "snaplen truncates" `Quick test_pcap_snaplen_truncates;
          Alcotest.test_case "rejects garbage" `Quick test_pcap_rejects_garbage;
        ] );
      ( "properties",
        qc
          [
            prop_packet_roundtrip;
            prop_checksums_validate;
            prop_prefix_mem_first_last;
            prop_prefix_subset_reflexive;
            prop_ipv4_string_roundtrip;
            prop_mac_string_roundtrip;
          ] );
    ]

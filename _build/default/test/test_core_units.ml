(* Unit tests for the smaller identxx_core and pf support modules:
   connection state, the audit log, the policy store, services, and the
   deploy helpers. *)

open Netcore

let check = Alcotest.check
let ip = Ipv4.of_string

let flow ?(sp = 40000) ?(dp = 80) src dst =
  Five_tuple.tcp ~src:(ip src) ~dst:(ip dst) ~src_port:sp ~dst_port:dp

(* --- Conn_state --- *)

let test_conn_state_permits_forward_and_reverse () =
  let cs = Identxx_core.Conn_state.create () in
  let f = flow "10.0.0.1" "10.0.0.2" in
  Identxx_core.Conn_state.note cs ~now:Sim.Time.zero f;
  check Alcotest.bool "forward" true
    (Identxx_core.Conn_state.permits cs ~now:(Sim.Time.s 1) f);
  check Alcotest.bool "reverse" true
    (Identxx_core.Conn_state.permits cs ~now:(Sim.Time.s 1) (Five_tuple.reverse f));
  check Alcotest.bool "unrelated" false
    (Identxx_core.Conn_state.permits cs ~now:(Sim.Time.s 1)
       (flow "10.0.0.3" "10.0.0.2"))

let test_conn_state_idle_expiry () =
  let cs = Identxx_core.Conn_state.create ~idle_timeout:(Sim.Time.s 10) () in
  let f = flow "10.0.0.1" "10.0.0.2" in
  Identxx_core.Conn_state.note cs ~now:Sim.Time.zero f;
  (* A hit refreshes the timer. *)
  check Alcotest.bool "fresh at 8s" true
    (Identxx_core.Conn_state.permits cs ~now:(Sim.Time.s 8) f);
  check Alcotest.bool "refreshed at 16s" true
    (Identxx_core.Conn_state.permits cs ~now:(Sim.Time.s 16) f);
  check Alcotest.bool "stale at 30s" false
    (Identxx_core.Conn_state.permits cs ~now:(Sim.Time.s 30) f);
  check Alcotest.int "expire reaps" 1
    (Identxx_core.Conn_state.expire cs ~now:(Sim.Time.s 30));
  check Alcotest.int "empty" 0 (Identxx_core.Conn_state.size cs)

(* --- Audit --- *)

let verdict ?(decision = Pf.Ast.Pass) ?(log = false) () =
  { Pf.Eval.decision; matched = None; keep_state = false; log }

let test_audit_counts_and_flags () =
  let a = Identxx_core.Audit.create () in
  let f = flow "1.1.1.1" "2.2.2.2" in
  Identxx_core.Audit.record a ~at:Sim.Time.zero ~flow:f ~verdict:(verdict ())
    ~src:None ~dst:None;
  Identxx_core.Audit.record a ~at:(Sim.Time.ms 1) ~flow:f
    ~verdict:(verdict ~decision:Pf.Ast.Block ~log:true ())
    ~src:None ~dst:None;
  check Alcotest.int "count" 2 (Identxx_core.Audit.count a);
  check Alcotest.int "blocked" 1 (Identxx_core.Audit.blocked_count a);
  check Alcotest.int "flagged" 1 (List.length (Identxx_core.Audit.flagged a));
  Identxx_core.Audit.clear a;
  check Alcotest.int "cleared" 0 (Identxx_core.Audit.count a)

let test_audit_capacity_trims () =
  let a = Identxx_core.Audit.create ~capacity:10 () in
  let f = flow "1.1.1.1" "2.2.2.2" in
  for _ = 1 to 100 do
    Identxx_core.Audit.record a ~at:Sim.Time.zero ~flow:f ~verdict:(verdict ())
      ~src:None ~dst:None
  done;
  check Alcotest.bool "bounded" true
    (List.length (Identxx_core.Audit.entries a) <= 13);
  check Alcotest.int "total count still exact" 100 (Identxx_core.Audit.count a)

let test_audit_summarizes_responses () =
  let a = Identxx_core.Audit.create () in
  let f = flow "1.1.1.1" "2.2.2.2" in
  let r =
    Identxx.Response.make ~flow:f
      [
        [
          Identxx.Key_value.pair "userID" "alice";
          Identxx.Key_value.pair "name" "skype";
          Identxx.Key_value.pair "irrelevant-blob" "xxxxx";
        ];
      ]
  in
  Identxx_core.Audit.record a ~at:Sim.Time.zero ~flow:f ~verdict:(verdict ())
    ~src:(Some r) ~dst:None;
  match Identxx_core.Audit.entries a with
  | [ e ] ->
      check Alcotest.(option string) "user kept" (Some "alice")
        (List.assoc_opt "userID" e.Identxx_core.Audit.src_info);
      check Alcotest.(option string) "blob dropped" None
        (List.assoc_opt "irrelevant-blob" e.Identxx_core.Audit.src_info)
  | _ -> Alcotest.fail "expected one entry"

(* --- Policy_store --- *)

let test_policy_store_alphabetical_order () =
  let ps = Identxx_core.Policy_store.create () in
  Identxx_core.Policy_store.add_exn ps ~name:"99-footer" "block all";
  Identxx_core.Policy_store.add_exn ps ~name:"00-header.control" "pass all";
  check Alcotest.(list string) "sorted, suffix stripped"
    [ "00-header"; "99-footer" ]
    (List.map fst (Identxx_core.Policy_store.files ps));
  (* Concatenation order decides last-match: 99-footer's block wins. *)
  let env = Identxx_core.Policy_store.env_exn ps in
  let v =
    Pf.Eval.eval_exn env (Pf.Eval.ctx ()) (flow "1.1.1.1" "2.2.2.2")
  in
  check Alcotest.bool "footer wins" true (v.Pf.Eval.decision = Pf.Ast.Block)

let test_policy_store_rejects_broken_concatenation () =
  let ps = Identxx_core.Policy_store.create () in
  Identxx_core.Policy_store.add_exn ps ~name:"00" "pass from <lan> to any\ntable <lan> {10.0.0.0/8}";
  (* A new file that shadows the table with a cycle must be rejected and
     rolled back. *)
  (match Identxx_core.Policy_store.add ps ~name:"50" "table <lan> { <lan> }" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "broken concatenation accepted");
  check Alcotest.int "rolled back" 1
    (List.length (Identxx_core.Policy_store.files ps));
  match Identxx_core.Policy_store.env ps with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "store left broken: %s" e

let test_policy_store_on_change_fires () =
  let ps = Identxx_core.Policy_store.create () in
  let fired = ref 0 in
  Identxx_core.Policy_store.on_change ps (fun () -> incr fired);
  Identxx_core.Policy_store.add_exn ps ~name:"00" "pass all";
  Identxx_core.Policy_store.remove ps ~name:"00";
  (* A rejected add must not fire. *)
  ignore (Identxx_core.Policy_store.add ps ~name:"01" "pass frm any");
  check Alcotest.int "fired twice" 2 !fired

(* --- Services --- *)

let test_services_lookup () =
  check Alcotest.(option int) "http" (Some 80) (Pf.Services.port_of_name "http");
  check Alcotest.(option int) "identxx port" (Some 783)
    (Pf.Services.port_of_name "identxx");
  check Alcotest.(option string) "reverse" (Some "https")
    (Pf.Services.name_of_port 443);
  (match Pf.Services.parse_port "8080" with
  | Ok 8080 -> ()
  | _ -> Alcotest.fail "numeric port");
  match Pf.Services.parse_port "70000" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out of range accepted"

(* --- Deploy validation --- *)

let test_deploy_linear_validation () =
  Alcotest.check_raises "zero switches"
    (Invalid_argument "Deploy.linear_network: switches out of range") (fun () ->
      ignore (Identxx_core.Deploy.linear_network ~switches:0 ~hosts_per_switch:1 ()))

(* --- Precompile unit view --- *)

let test_precompile_compilable_rule () =
  let env =
    match Pf.Env.of_string "table <t> {10.0.0.0/8}\nblock quick from <t> to any port 445\npass all" with
    | Ok e -> e
    | Error e -> Alcotest.failf "%s" e
  in
  match Pf.Env.rules env with
  | [ blockq; passall ] ->
      check Alcotest.bool "quick block compiles" true
        (Identxx_core.Precompile.compilable_rule env blockq);
      check Alcotest.bool "pass does not" false
        (Identxx_core.Precompile.compilable_rule env passall)
  | _ -> Alcotest.fail "expected two rules"

let () =
  Alcotest.run "core_units"
    [
      ( "conn_state",
        [
          Alcotest.test_case "forward and reverse" `Quick
            test_conn_state_permits_forward_and_reverse;
          Alcotest.test_case "idle expiry" `Quick test_conn_state_idle_expiry;
        ] );
      ( "audit",
        [
          Alcotest.test_case "counts and flags" `Quick test_audit_counts_and_flags;
          Alcotest.test_case "capacity trims" `Quick test_audit_capacity_trims;
          Alcotest.test_case "summarizes responses" `Quick
            test_audit_summarizes_responses;
        ] );
      ( "policy_store",
        [
          Alcotest.test_case "alphabetical order" `Quick
            test_policy_store_alphabetical_order;
          Alcotest.test_case "rejects broken concatenation" `Quick
            test_policy_store_rejects_broken_concatenation;
          Alcotest.test_case "on_change fires" `Quick
            test_policy_store_on_change_fires;
        ] );
      ("services", [ Alcotest.test_case "lookup" `Quick test_services_lookup ]);
      ( "deploy",
        [ Alcotest.test_case "linear validation" `Quick test_deploy_linear_validation ] );
      ( "precompile",
        [ Alcotest.test_case "compilable rule" `Quick test_precompile_compilable_rule ] );
    ]

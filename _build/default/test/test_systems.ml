(* Tests for the baseline enforcement systems (§5/§6 comparisons) and
   the synthetic workload generators. *)

open Netcore
module FI = Baselines.Flow_info
module E = Baselines.Enforcement

let check = Alcotest.check
let ip = Ipv4.of_string

let flow ?(sp = 40000) ?(dp = 80) src dst =
  Five_tuple.tcp ~src:(ip src) ~dst:(ip dst) ~src_port:sp ~dst_port:dp

(* --- Flow_info --- *)

let test_honest_response_carries_truth () =
  let fi =
    FI.make
      ~src:(FI.endpoint ~user:"alice" ~groups:[ "staff" ] ~app:"skype" ~version:"210" ())
      (flow "10.0.0.1" "10.0.0.2")
  in
  match FI.honest_response fi `Src with
  | None -> Alcotest.fail "expected a response"
  | Some r ->
      check Alcotest.(option string) "user" (Some "alice")
        (Identxx.Response.latest r "userID");
      check Alcotest.(option string) "app" (Some "skype")
        (Identxx.Response.latest r "name");
      check Alcotest.(option string) "app-name alias" (Some "skype")
        (Identxx.Response.latest r "app-name")

let test_unknown_end_has_no_response () =
  let fi = FI.make (flow "8.8.8.8" "10.0.0.2") in
  check Alcotest.bool "nobody yields none" true (FI.honest_response fi `Src = None)

let test_compromised_end_reports_claim () =
  let fi =
    FI.make
      ~src:(FI.endpoint ~user:"mallory" ~app:"worm" ~compromised:true ())
      (flow "10.0.0.1" "10.0.0.2")
  in
  let claim = [ Identxx.Key_value.pair "name" "firefox" ] in
  match FI.reported_response fi `Src ~claim with
  | Some r ->
      check Alcotest.(option string) "claims firefox" (Some "firefox")
        (Identxx.Response.latest r "name");
      check Alcotest.(option string) "truth suppressed" None
        (Identxx.Response.latest r "userID")
  | None -> Alcotest.fail "compromised host still answers"

(* --- Systems --- *)

let lan_policy_ports =
  "table <lan> { 10.0.0.0/8 }\nblock all\npass from <lan> to <lan> port 80"

let test_vanilla_rejects_with_clauses () =
  match Baselines.Systems.vanilla ~policy:"pass all with eq(@src[name], x)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "vanilla must reject with clauses"

let test_vanilla_port_decisions () =
  let v = Baselines.Systems.vanilla_exn ~policy:lan_policy_ports in
  let in_lan = FI.make (flow ~dp:80 "10.0.0.1" "10.0.0.2") in
  let wrong_port = FI.make (flow ~dp:23 "10.0.0.1" "10.0.0.2") in
  let outside = FI.make (flow ~dp:80 "8.8.8.8" "10.0.0.2") in
  check Alcotest.bool "lan:80 admitted" true (v.E.admits in_lan);
  check Alcotest.bool ":23 denied" false (v.E.admits wrong_port);
  check Alcotest.bool "external denied" false (v.E.admits outside)

let test_vanilla_blind_to_apps () =
  (* Port 80 is port 80, whatever the application: the §1 example. *)
  let v = Baselines.Systems.vanilla_exn ~policy:lan_policy_ports in
  let skype =
    FI.make
      ~src:(FI.endpoint ~user:"u" ~app:"skype" ())
      (flow ~dp:80 "10.0.0.1" "10.0.0.2")
  in
  check Alcotest.bool "skype-on-80 admitted by port filter" true (v.E.admits skype)

let ethane_policy =
  "block all\npass from any with member(@src[groupID], staff) to any"

let test_ethane_sees_users_not_apps () =
  let e = Baselines.Systems.ethane_exn ~policy:ethane_policy in
  let staffer =
    FI.make
      ~src:(FI.endpoint ~user:"alice" ~groups:[ "staff" ] ~app:"worm" ())
      (flow "10.0.0.1" "10.0.0.2")
  in
  let stranger = FI.make (flow "8.8.8.8" "10.0.0.2") in
  check Alcotest.bool "staff admitted (app invisible)" true (e.E.admits staffer);
  check Alcotest.bool "unbound source denied" false (e.E.admits stranger)

let test_ethane_rejects_app_policy () =
  match Baselines.Systems.ethane ~policy:"pass all with eq(@src[name], x)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ethane cannot reference application keys"

let test_ethane_binding_resists_lies () =
  (* A compromised host cannot forge another user's network binding. *)
  let e = Baselines.Systems.ethane_exn ~policy:ethane_policy in
  let liar =
    FI.make
      ~src:(FI.endpoint ~user:"guest" ~groups:[ "guests" ] ~compromised:true ())
      (flow "10.0.0.1" "10.0.0.2")
  in
  check Alcotest.bool "lying does not help under ethane" false (e.E.admits liar)

let test_distributed_compromised_receiver_unprotected () =
  let d =
    Baselines.Systems.distributed_exn
      ~policy:"block all\npass all with eq(@dst[userID], system)"
  in
  let to_honest =
    FI.make
      ~dst:(FI.endpoint ~user:"alice" ())
      (flow "10.0.0.1" "10.0.0.2")
  in
  let to_compromised =
    FI.make
      ~dst:(FI.endpoint ~user:"alice" ~compromised:true ())
      (flow "10.0.0.1" "10.0.0.2")
  in
  check Alcotest.bool "honest receiver enforces" false (d.E.admits to_honest);
  check Alcotest.bool "compromised receiver enforces nothing" true
    (d.E.admits to_compromised)

let test_identxx_lying_daemon_changes_outcome () =
  let policy = "block all\npass all with eq(@src[name], firefox)" in
  let honest_sys = Baselines.Systems.identxx_exn ~policy () in
  let claim = [ Identxx.Key_value.pair "name" "firefox" ] in
  let sys = Baselines.Systems.identxx_exn ~attacker_claim:claim ~policy () in
  let worm_honest =
    FI.make ~src:(FI.endpoint ~user:"u" ~app:"worm" ()) (flow "10.0.0.1" "10.0.0.2")
  in
  let worm_lying =
    FI.make
      ~src:(FI.endpoint ~user:"u" ~app:"worm" ~compromised:true ())
      (flow "10.0.0.1" "10.0.0.2")
  in
  check Alcotest.bool "honest worm denied" false (honest_sys.E.admits worm_honest);
  check Alcotest.bool "lying worm admitted (S5.3)" true (sys.E.admits worm_lying)

let test_score_accounting () =
  let sys = Baselines.Systems.vanilla_exn ~policy:lan_policy_ports in
  let flows =
    [
      FI.make ~legitimate:true (flow ~dp:80 "10.0.0.1" "10.0.0.2");
      (* admitted, legit *)
      FI.make ~legitimate:false (flow ~dp:80 "10.0.0.3" "10.0.0.2");
      (* admitted, illegit -> false allow *)
      FI.make ~legitimate:true (flow ~dp:23 "10.0.0.1" "10.0.0.2");
      (* denied, legit -> false deny *)
      FI.make ~legitimate:false (flow ~dp:23 "8.8.8.8" "10.0.0.2");
      (* denied, illegit *)
    ]
  in
  let s = E.score sys flows in
  check Alcotest.int "total" 4 s.E.total;
  check Alcotest.int "admitted" 2 s.E.admitted;
  check Alcotest.int "false allows" 1 s.E.false_allows;
  check Alcotest.int "false denies" 1 s.E.false_denies;
  check (Alcotest.float 1e-9) "accuracy" 0.5 (E.accuracy s)

(* --- Workload --- *)

let test_population_shape () =
  let p = Workload.Population.create ~clients:10 ~servers:3 () in
  check Alcotest.int "clients" 10 (Array.length (Workload.Population.clients p));
  check Alcotest.int "servers" 3 (Array.length (Workload.Population.servers p));
  check Alcotest.string "important server" "10.1.0.1"
    (Ipv4.to_string (Workload.Population.important_server p).Workload.Population.ip);
  (* Every host is inside the LAN prefix and addresses are unique. *)
  let all = Workload.Population.all p in
  Array.iter
    (fun (h : Workload.Population.host) ->
      check Alcotest.bool "in lan" true
        (Prefix.mem h.Workload.Population.ip Workload.Population.lan_prefix))
    all;
  let ips =
    Array.to_list (Array.map (fun h -> h.Workload.Population.ip) all)
  in
  check Alcotest.int "unique ips" (List.length ips)
    (List.length (List.sort_uniq Ipv4.compare ips))

let test_population_lookup () =
  let p = Workload.Population.create ~clients:5 ~servers:2 () in
  let c0 = (Workload.Population.clients p).(0) in
  match Workload.Population.host_by_ip p c0.Workload.Population.ip with
  | Some h -> check Alcotest.string "found" c0.Workload.Population.name h.Workload.Population.name
  | None -> Alcotest.fail "host_by_ip failed"

let test_flowgen_deterministic () =
  let p = Workload.Population.create ~clients:10 ~servers:3 () in
  let run seed =
    let prng = Sim.Prng.create seed in
    List.map
      (fun (fi : FI.t) -> Five_tuple.to_string fi.FI.flow)
      (Workload.Flowgen.mixed ~prng ~population:p ~count:50 ())
  in
  check Alcotest.(list string) "same seed same flows" (run 5) (run 5);
  check Alcotest.bool "different seeds differ" false (run 5 = run 6)

let test_flowgen_labels_follow_intent () =
  let p = Workload.Population.create ~clients:10 ~servers:3 () in
  let intent = Workload.Flowgen.intent_of_population p in
  let prng = Sim.Prng.create 11 in
  let flows = Workload.Flowgen.mixed ~intent ~prng ~population:p ~count:200 () in
  check Alcotest.int "every label equals intent" 200
    (List.length (List.filter (fun fi -> fi.FI.legitimate = intent fi) flows))

let test_flowgen_distinct_tuples () =
  let p = Workload.Population.create ~clients:7 ~servers:3 () in
  let tuples = Workload.Flowgen.distinct_tuples ~population:p ~count:500 in
  check Alcotest.int "pairwise distinct" 500
    (List.length (List.sort_uniq Five_tuple.compare tuples))

let test_zipf_prefers_low_indices () =
  let prng = Sim.Prng.create 3 in
  let counts = Array.make 10 0 in
  for _ = 1 to 2000 do
    let i = Workload.Flowgen.zipf_pick prng ~n:10 in
    counts.(i) <- counts.(i) + 1
  done;
  check Alcotest.bool "rank 0 beats rank 9" true (counts.(0) > counts.(9) * 2);
  check Alcotest.int "all picks in range" 2000 (Array.fold_left ( + ) 0 counts)

let test_worm_scan_shape () =
  let p = Workload.Population.create ~clients:5 ~servers:2 () in
  let from = (Workload.Population.clients p).(0) in
  let scan = Workload.Attack.worm_scan ~from ~targets:(Workload.Population.all p) () in
  check Alcotest.int "one probe per other host" 6 (List.length scan);
  List.iter
    (fun (fi : FI.t) ->
      check Alcotest.bool "illegitimate" false fi.FI.legitimate;
      check Alcotest.bool "compromised src" true fi.FI.src.FI.compromised;
      check Alcotest.int "port 445" 445 fi.FI.flow.Five_tuple.dst_port)
    scan

let test_reachable_pairs_bounds () =
  let p = Workload.Population.create ~clients:4 ~servers:2 () in
  let n = Array.length (Workload.Population.all p) in
  let allow_all = Baselines.Systems.vanilla_exn ~policy:"pass all" in
  let deny_all = Baselines.Systems.vanilla_exn ~policy:"block all" in
  check Alcotest.int "allow-all reaches every ordered pair" (n * (n - 1))
    (Workload.Attack.reachable_pairs allow_all ~population:p ~compromised:[] ());
  check Alcotest.int "deny-all reaches none" 0
    (Workload.Attack.reachable_pairs deny_all ~population:p ~compromised:[] ())

(* --- Arrivals --- *)

let test_poisson_rate_and_order () =
  let p = Workload.Population.create ~clients:10 ~servers:3 () in
  let prng = Sim.Prng.create 17 in
  let arrivals =
    Workload.Arrivals.poisson ~prng ~population:p ~rate_per_s:100.0
      ~duration:(Sim.Time.s 10)
  in
  let n = List.length arrivals in
  check Alcotest.bool "roughly rate*duration arrivals" true
    (n > 800 && n < 1200);
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        Sim.Time.compare a b <= 0 && sorted rest
    | _ -> true
  in
  check Alcotest.bool "sorted by time" true (sorted arrivals);
  List.iter
    (fun (at, _) ->
      check Alcotest.bool "within duration" true
        (Sim.Time.compare at (Sim.Time.s 10) < 0))
    arrivals

let test_poisson_deterministic () =
  let p = Workload.Population.create ~clients:5 ~servers:2 () in
  let run seed =
    let prng = Sim.Prng.create seed in
    List.map
      (fun (at, _) -> Sim.Time.to_ns at)
      (Workload.Arrivals.poisson ~prng ~population:p ~rate_per_s:50.0
         ~duration:(Sim.Time.s 2))
  in
  check Alcotest.(list int) "reproducible" (run 3) (run 3)

let test_bursty_respects_off_periods () =
  let p = Workload.Population.create ~clients:5 ~servers:2 () in
  let prng = Sim.Prng.create 23 in
  let burst = Sim.Time.ms 100 and idle = Sim.Time.ms 900 in
  let arrivals =
    Workload.Arrivals.bursty ~prng ~population:p ~on_rate_per_s:200.0 ~burst
      ~idle ~duration:(Sim.Time.s 5)
  in
  check Alcotest.bool "some arrivals" true (List.length arrivals > 20);
  List.iter
    (fun (at, _) ->
      let in_period = Float.rem (Sim.Time.to_float_s at) 1.0 in
      check Alcotest.bool "inside a burst window" true (in_period < 0.1 +. 1e-6))
    arrivals

let test_inject_schedules_on_engine () =
  let p = Workload.Population.create ~clients:5 ~servers:2 () in
  let prng = Sim.Prng.create 29 in
  let arrivals =
    Workload.Arrivals.poisson ~prng ~population:p ~rate_per_s:100.0
      ~duration:(Sim.Time.ms 500)
  in
  let engine = Sim.Engine.create () in
  let sent = ref 0 in
  Workload.Arrivals.inject ~engine ~send:(fun _ -> incr sent) arrivals;
  Sim.Engine.run engine;
  check Alcotest.int "all arrivals fired" (List.length arrivals) !sent

let () =
  Alcotest.run "systems"
    [
      ( "flow_info",
        [
          Alcotest.test_case "honest response" `Quick test_honest_response_carries_truth;
          Alcotest.test_case "unknown end" `Quick test_unknown_end_has_no_response;
          Alcotest.test_case "compromised claim" `Quick
            test_compromised_end_reports_claim;
        ] );
      ( "systems",
        [
          Alcotest.test_case "vanilla rejects with" `Quick
            test_vanilla_rejects_with_clauses;
          Alcotest.test_case "vanilla port decisions" `Quick
            test_vanilla_port_decisions;
          Alcotest.test_case "vanilla blind to apps" `Quick
            test_vanilla_blind_to_apps;
          Alcotest.test_case "ethane users not apps" `Quick
            test_ethane_sees_users_not_apps;
          Alcotest.test_case "ethane rejects app policy" `Quick
            test_ethane_rejects_app_policy;
          Alcotest.test_case "ethane resists lies" `Quick
            test_ethane_binding_resists_lies;
          Alcotest.test_case "distributed compromised receiver" `Quick
            test_distributed_compromised_receiver_unprotected;
          Alcotest.test_case "identxx lying daemon" `Quick
            test_identxx_lying_daemon_changes_outcome;
          Alcotest.test_case "score accounting" `Quick test_score_accounting;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "poisson rate and order" `Quick
            test_poisson_rate_and_order;
          Alcotest.test_case "poisson deterministic" `Quick
            test_poisson_deterministic;
          Alcotest.test_case "bursty off periods" `Quick
            test_bursty_respects_off_periods;
          Alcotest.test_case "inject schedules" `Quick
            test_inject_schedules_on_engine;
        ] );
      ( "workload",
        [
          Alcotest.test_case "population shape" `Quick test_population_shape;
          Alcotest.test_case "population lookup" `Quick test_population_lookup;
          Alcotest.test_case "flowgen deterministic" `Quick
            test_flowgen_deterministic;
          Alcotest.test_case "labels follow intent" `Quick
            test_flowgen_labels_follow_intent;
          Alcotest.test_case "distinct tuples" `Quick test_flowgen_distinct_tuples;
          Alcotest.test_case "zipf skew" `Quick test_zipf_prefers_low_indices;
          Alcotest.test_case "worm scan shape" `Quick test_worm_scan_shape;
          Alcotest.test_case "reachable pairs bounds" `Quick
            test_reachable_pairs_bounds;
        ] );
    ]

test/test_core_units.ml: Alcotest Five_tuple Identxx Identxx_core Ipv4 List Netcore Pf Sim

test/test_sim.ml: Alcotest Array Format Fun List Option QCheck QCheck_alcotest Sim

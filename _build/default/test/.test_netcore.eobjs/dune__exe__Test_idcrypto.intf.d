test/test_idcrypto.mli:

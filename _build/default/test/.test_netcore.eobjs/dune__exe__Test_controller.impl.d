test/test_controller.ml: Alcotest Array Ethertype Five_tuple Idcrypto Identxx Identxx_core Ipv4 List Mac Netcore Openflow Option Packet Pf Printf Proto Sim String Vlan

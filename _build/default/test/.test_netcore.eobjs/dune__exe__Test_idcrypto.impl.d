test/test_idcrypto.ml: Alcotest Char Idcrypto List Printf QCheck QCheck_alcotest String

test/test_identxx.ml: Alcotest Five_tuple Idcrypto Identxx Ipv4 List Mac Netcore Option Packet Pf Proto QCheck QCheck_alcotest String

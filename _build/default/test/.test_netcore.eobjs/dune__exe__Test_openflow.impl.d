test/test_openflow.ml: Alcotest Ethertype Five_tuple Ipv4 List Mac Netcore Openflow Option Packet Prefix Printf Proto QCheck QCheck_alcotest Sim String Vlan

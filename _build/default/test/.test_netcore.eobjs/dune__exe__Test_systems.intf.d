test/test_systems.mli:

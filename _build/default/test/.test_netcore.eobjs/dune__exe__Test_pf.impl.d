test/test_pf.ml: Alcotest Buffer Five_tuple Fun Idcrypto Identxx Identxx_core Ipv4 List Netcore Openflow Packet Pf Prefix Printf Proto QCheck QCheck_alcotest String

test/test_pf.mli:

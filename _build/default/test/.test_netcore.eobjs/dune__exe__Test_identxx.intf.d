test/test_identxx.mli:

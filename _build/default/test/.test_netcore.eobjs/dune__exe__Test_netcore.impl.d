test/test_netcore.ml: Alcotest Buffer Bytes Char Checksum Ethertype Five_tuple Format Ipv4 List Mac Netcore Option Packet Pcap Prefix Proto QCheck QCheck_alcotest String Vlan

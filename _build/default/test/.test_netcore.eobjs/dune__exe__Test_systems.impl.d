test/test_systems.ml: Alcotest Array Baselines Five_tuple Float Identxx Ipv4 List Netcore Prefix Sim Workload

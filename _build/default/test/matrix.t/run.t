The Figure-2 decision matrix: the paper's three .control files
(transcribed verbatim, as in policies/) replayed over eight scenarios.

  $ cat > 00-local-header.control <<'EOF'
  > table <server> { 192.168.1.1 }
  > table <lan> { 192.168.0.0/24 }
  > table <int_hosts> { <lan> <server> }
  > allowed = "{ http ssh }"
  > block all
  > pass from <int_hosts> to !<int_hosts> keep state
  > pass from <int_hosts> to <int_hosts> \
  > with member(@src[name], $allowed) keep state
  > EOF
  $ cat > 50-skype.control <<'EOF'
  > table <skype_update> { 123.123.123.0/24 }
  > pass all with eq(@src[name], skype) with eq(@dst[name], skype)
  > pass from any to <skype_update> port 80 \
  > with eq(@src[name], skype) keep state
  > EOF
  $ cat > 99-local-footer.control <<'EOF'
  > block all with eq(@src[name], skype) with lt(@src[version], 200)
  > block from any to <server> with eq(@src[name], skype)
  > EOF
  $ cat > figure2.matrix <<'EOF'
  > tcp 192.168.0.10:40000 -> 192.168.0.11:33000 | name=skype version=210 | name=skype version=210 | pass
  > tcp 192.168.0.10:40000 -> 123.123.123.5:80 | name=skype version=210 | | pass
  > tcp 192.168.0.10:40000 -> 192.168.1.1:80 | name=skype version=210 | | block
  > tcp 192.168.0.10:40000 -> 192.168.0.11:33000 | name=skype version=150 | name=skype version=210 | block
  > tcp 192.168.0.10:40000 -> 192.168.1.1:80 | name=http | | pass
  > tcp 192.168.0.10:40000 -> 192.168.1.1:23 | name=telnet | | block
  > tcp 192.168.0.10:40000 -> 8.8.8.8:443 | name=firefox | | pass
  > tcp 8.8.8.8:40000 -> 192.168.0.10:80 | | | block
  > EOF

  $ identxx_ctl matrix -p 00-local-header.control -p 50-skype.control \
  >   -p 99-local-footer.control figure2.matrix
  tcp 192.168.0.10:40000 -> 192.168.0.11:33000       pass   pass   ok
  tcp 192.168.0.10:40000 -> 123.123.123.5:80         pass   pass   ok
  tcp 192.168.0.10:40000 -> 192.168.1.1:80           block  block  ok
  tcp 192.168.0.10:40000 -> 192.168.0.11:33000       block  block  ok
  tcp 192.168.0.10:40000 -> 192.168.1.1:80           pass   pass   ok
  tcp 192.168.0.10:40000 -> 192.168.1.1:23           block  block  ok
  tcp 192.168.0.10:40000 -> 8.8.8.8:443              pass   pass   ok
  tcp 8.8.8.8:40000 -> 192.168.0.10:80               block  block  ok
  all 8 scenarios match

  $ identxx-netsim fig1 | head -20

  $ cat > site.control <<'POLICY'
  > table <lan> { 192.168.0.0/24 }
  > block all
  > pass from <lan> to any with eq(@src[name], firefox) keep state
  > POLICY
  $ identxx_ctl check site.control
  $ cat > broken.control <<'POLICY'
  > block all
  > pass frm any to any
  > POLICY
  $ identxx_ctl check broken.control
  $ identxx_ctl fmt site.control
  $ identxx_ctl eval -p site.control --flow "tcp 192.168.0.10:40000 -> 8.8.8.8:443" --src name=firefox
  $ identxx_ctl eval -p site.control --flow "tcp 192.168.0.10:40000 -> 8.8.8.8:443" --src name=skype
  $ cat > app.conf <<'CONF'
  > @app /usr/bin/skype {
  > name : skype
  > requirements : pass from any port http with eq(@src[name], skype)
  > req-sig : abc123
  > }
  > CONF
  $ identxx_ctl daemon-check app.conf
  $ cat > unsigned.conf <<'CONF'
  > @app /usr/bin/tool {
  > name : tool
  > requirements : pass all
  > }
  > CONF
  $ identxx_ctl daemon-check unsigned.conf
  $ identxx_ctl keygen research
  $ identxx_ctl sign --secret 2e85b546aa893125dc279e7374e1f494dda46293b9a1663d5f9269cdb5679a7e hash research-app "pass all"
  $ identxx_ctl verify --public pkac0947a98f887778ef589374141c3dca8954efbd \
  >   --secret 2e85b546aa893125dc279e7374e1f494dda46293b9a1663d5f9269cdb5679a7e \
  >   --signature 16aa066c19f2ab71538ce84c56dd1213ff16a930efc113e60c1de1e23b9f24f9 \
  >   hash research-app "pass all"
  $ identxx_ctl verify --public pkac0947a98f887778ef589374141c3dca8954efbd \
  >   --secret 2e85b546aa893125dc279e7374e1f494dda46293b9a1663d5f9269cdb5679a7e \
  >   --signature 16aa066c19f2ab71538ce84c56dd1213ff16a930efc113e60c1de1e23b9f24f9 \
  >   hash research-app "pass none"
  $ cat > lint.control <<'POLICY'
  > pass from any to any port 80
  > block quick all
  > pass from any to any port 443
  > POLICY
  $ identxx_ctl analyze lint.control
  $ identxx_ctl analyze site.control
  $ identxx_ctl eval -p site.control --trace \
  >   --flow "tcp 192.168.0.10:40000 -> 8.8.8.8:443" --src name=firefox

  $ cat > skype.conf <<'CONF'
  > @app /usr/bin/skype {
  > name : skype
  > version : 210
  > }
  > CONF
  $ cat > procs.txt <<'TABLE'
  > conn 100 alice staff /usr/bin/skype tcp 10.0.0.1:50000 10.0.0.9:33000
  > listen 200 smtp services /usr/sbin/sendmail tcp 25
  > TABLE
  $ printf 'TCP 50000 33000\nuserID\n\n' | \
  >   identxxd --ip 10.0.0.1 --peer 10.0.0.9 --config skype.conf --table procs.txt
  $ printf 'TCP 4444 25\n\n' | \
  >   identxxd --ip 10.0.0.1 --peer 10.0.0.9 --table procs.txt
  $ printf 'FROG 1 2\n\n' | identxxd --ip 10.0.0.1 --table procs.txt

The identxx_ctl CLI validates, formats and evaluates PF+=2 policies.

Validate a policy:

  $ cat > site.control <<'POLICY'
  > table <lan> { 192.168.0.0/24 }
  > block all
  > pass from <lan> to any with eq(@src[name], firefox) keep state
  > POLICY
  $ identxx_ctl check site.control
  OK: 1 files, 2 rules, tables: lan

A parse error is reported with its line:

  $ cat > broken.control <<'POLICY'
  > block all
  > pass frm any to any
  > POLICY
  $ identxx_ctl check broken.control
  error: broken: line 2: unexpected frm in rule
  [1]

Pretty-print normalizes layout:

  $ identxx_ctl fmt site.control
  table <lan> { 192.168.0.0/24 }
  block all
  pass from <lan> to any with eq(@src[name], firefox) keep state

Evaluate flows (exit 0 = pass, 2 = block):

  $ identxx_ctl eval -p site.control --flow "tcp 192.168.0.10:40000 -> 8.8.8.8:443" --src name=firefox
  tcp 192.168.0.10:40000 -> 8.8.8.8:443 => pass (line 3: pass from <lan> to any with eq(@src[name], firefox) keep state)

  $ identxx_ctl eval -p site.control --flow "tcp 192.168.0.10:40000 -> 8.8.8.8:443" --src name=skype
  tcp 192.168.0.10:40000 -> 8.8.8.8:443 => block (line 2: block all)
  [2]

Daemon configuration linting:

  $ cat > app.conf <<'CONF'
  > @app /usr/bin/skype {
  > name : skype
  > requirements : pass from any port http with eq(@src[name], skype)
  > req-sig : abc123
  > }
  > CONF
  $ identxx_ctl daemon-check app.conf
  app.conf: OK (0 global pairs, 1 @app blocks)

  $ cat > unsigned.conf <<'CONF'
  > @app /usr/bin/tool {
  > name : tool
  > requirements : pass all
  > }
  > CONF
  $ identxx_ctl daemon-check unsigned.conf
  unsigned.conf: warning: @app /usr/bin/tool has requirements but no req-sig
  unsigned.conf: OK (0 global pairs, 1 @app blocks)

The signing workflow drives the delegation figures from the shell
(deterministic keys, so output is stable):

  $ identxx_ctl keygen research
  owner:  research
  public: pkac0947a98f887778ef589374141c3dca8954efbd
  secret: 2e85b546aa893125dc279e7374e1f494dda46293b9a1663d5f9269cdb5679a7e

  $ identxx_ctl sign --secret 2e85b546aa893125dc279e7374e1f494dda46293b9a1663d5f9269cdb5679a7e hash research-app "pass all"
  16aa066c19f2ab71538ce84c56dd1213ff16a930efc113e60c1de1e23b9f24f9

  $ identxx_ctl verify --public pkac0947a98f887778ef589374141c3dca8954efbd \
  >   --secret 2e85b546aa893125dc279e7374e1f494dda46293b9a1663d5f9269cdb5679a7e \
  >   --signature 16aa066c19f2ab71538ce84c56dd1213ff16a930efc113e60c1de1e23b9f24f9 \
  >   hash research-app "pass all"
  valid

  $ identxx_ctl verify --public pkac0947a98f887778ef589374141c3dca8954efbd \
  >   --secret 2e85b546aa893125dc279e7374e1f494dda46293b9a1663d5f9269cdb5679a7e \
  >   --signature 16aa066c19f2ab71538ce84c56dd1213ff16a930efc113e60c1de1e23b9f24f9 \
  >   hash research-app "pass none"
  INVALID
  [2]

Policy linting finds dead and duplicated rules:

  $ cat > lint.control <<'POLICY'
  > pass from any to any port 80
  > block quick all
  > pass from any to any port 443
  > POLICY
  $ identxx_ctl analyze lint.control
  lint.control: line 3: [dead-after-quick-all] unreachable: the quick rule at line 2 decides every flow
  [2]

  $ identxx_ctl analyze site.control
  no findings in 1 file(s)

--trace shows how each rule fared (=> decided, * matched-but-overridden):

  $ identxx_ctl eval -p site.control --trace \
  >   --flow "tcp 192.168.0.10:40000 -> 8.8.8.8:443" --src name=firefox
  *  line 2   block all
  => line 3   pass from <lan> to any with eq(@src[name], firefox) keep state
  tcp 192.168.0.10:40000 -> 8.8.8.8:443 => pass (line 3: pass from <lan> to any with eq(@src[name], firefox) keep state)

(* Tests for the crypto substrate: official SHA-256 and HMAC vectors,
   streaming-hash properties, hex codec, and the simulated-PKI signature
   scheme behind PF+=2's verify(). *)

let check = Alcotest.check

(* --- Hex --- *)

let test_hex_roundtrip () =
  List.iter
    (fun s ->
      check Alcotest.string ("roundtrip " ^ s) s
        (Idcrypto.Hex.decode_exn (Idcrypto.Hex.encode s)))
    [ ""; "a"; "hello"; "\x00\xff\x7f" ]

let test_hex_case_insensitive () =
  check Alcotest.string "upper case accepted" "\xde\xad"
    (Idcrypto.Hex.decode_exn "DEAD")

let test_hex_rejects_bad_input () =
  List.iter
    (fun s ->
      match Idcrypto.Hex.decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "a"; "zz"; "0g"; "abc" ]

(* --- SHA-256 (FIPS 180-4 / NIST vectors) --- *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      ^ "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ( "The quick brown fox jumps over the lazy dog",
      "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (input, expected) ->
      check Alcotest.string
        (Printf.sprintf "sha256(%d bytes)" (String.length input))
        expected (Idcrypto.Sha256.hexdigest input))
    sha_vectors

let test_sha256_million_a () =
  check Alcotest.string "million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Idcrypto.Sha256.hexdigest (String.make 1_000_000 'a'))

let test_sha256_streaming_equals_oneshot () =
  let input = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  (* Feed in awkward chunk sizes crossing block boundaries. *)
  List.iter
    (fun chunk ->
      let ctx = Idcrypto.Sha256.init () in
      let rec feed off =
        if off < String.length input then begin
          let len = min chunk (String.length input - off) in
          Idcrypto.Sha256.feed ctx (String.sub input off len);
          feed (off + len)
        end
      in
      feed 0;
      check Alcotest.string
        (Printf.sprintf "chunk=%d" chunk)
        (Idcrypto.Sha256.hexdigest input)
        (Idcrypto.Hex.encode (Idcrypto.Sha256.finalize ctx)))
    [ 1; 3; 63; 64; 65; 128; 1000 ]

let prop_sha256_streaming_split =
  QCheck.Test.make ~name:"sha256 split-feed equals one-shot" ~count:200
    QCheck.(pair string small_nat)
    (fun (s, k) ->
      let k = if String.length s = 0 then 0 else k mod (String.length s + 1) in
      let ctx = Idcrypto.Sha256.init () in
      Idcrypto.Sha256.feed ctx (String.sub s 0 k);
      Idcrypto.Sha256.feed ctx (String.sub s k (String.length s - k));
      Idcrypto.Sha256.finalize ctx = Idcrypto.Sha256.digest s)

let prop_sha256_injective_on_samples =
  QCheck.Test.make ~name:"sha256 distinguishes distinct strings" ~count:200
    QCheck.(pair string string)
    (fun (a, b) ->
      QCheck.assume (a <> b);
      Idcrypto.Sha256.digest a <> Idcrypto.Sha256.digest b)

(* --- HMAC (RFC 4231) --- *)

let test_hmac_rfc4231 () =
  (* Test case 1 *)
  check Alcotest.string "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Idcrypto.Hmac.hexmac ~key:(String.make 20 '\x0b') "Hi There");
  (* Test case 2 *)
  check Alcotest.string "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Idcrypto.Hmac.hexmac ~key:"Jefe" "what do ya want for nothing?");
  (* Test case 3 *)
  check Alcotest.string "tc3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Idcrypto.Hmac.hexmac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'));
  (* Test case 6: key longer than block size *)
  check Alcotest.string "tc6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Idcrypto.Hmac.hexmac
       ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let key = "secret" and msg = "message" in
  let tag = Idcrypto.Hmac.mac ~key msg in
  check Alcotest.bool "accepts valid" true (Idcrypto.Hmac.verify ~key ~tag msg);
  check Alcotest.bool "rejects wrong msg" false
    (Idcrypto.Hmac.verify ~key ~tag "other");
  check Alcotest.bool "rejects wrong key" false
    (Idcrypto.Hmac.verify ~key:"wrong" ~tag msg);
  check Alcotest.bool "rejects truncated tag" false
    (Idcrypto.Hmac.verify ~key ~tag:(String.sub tag 0 16) msg)

(* --- Sign --- *)

let test_sign_deterministic_keys () =
  let a = Idcrypto.Sign.generate "alice" in
  let a' = Idcrypto.Sign.generate "alice" in
  let b = Idcrypto.Sign.generate "bob" in
  check Alcotest.string "same owner same key" a.Idcrypto.Sign.public a'.Idcrypto.Sign.public;
  check Alcotest.bool "different owners differ" false
    (a.Idcrypto.Sign.public = b.Idcrypto.Sign.public);
  let seeded = Idcrypto.Sign.generate ~seed:"other" "alice" in
  check Alcotest.bool "seed changes key" false
    (a.Idcrypto.Sign.public = seeded.Idcrypto.Sign.public)

let test_sign_verify_cycle () =
  let kp = Idcrypto.Sign.generate "research" in
  let ks = Idcrypto.Sign.keystore () in
  Idcrypto.Sign.register ks kp;
  let data = [ "hash"; "app"; "requirements" ] in
  let signature = Idcrypto.Sign.sign ~secret:kp.Idcrypto.Sign.secret data in
  check Alcotest.bool "valid" true
    (Idcrypto.Sign.verify ks ~public:kp.Idcrypto.Sign.public ~signature data);
  check Alcotest.bool "tampered data" false
    (Idcrypto.Sign.verify ks ~public:kp.Idcrypto.Sign.public ~signature
       [ "hash"; "app"; "evil requirements" ]);
  check Alcotest.bool "unknown key" false
    (Idcrypto.Sign.verify ks ~public:"pkdeadbeef" ~signature data);
  check Alcotest.bool "garbage signature" false
    (Idcrypto.Sign.verify ks ~public:kp.Idcrypto.Sign.public ~signature:"zz" data)

let test_sign_canonical_unambiguous () =
  (* ["ab";"c"] and ["a";"bc"] must sign differently. *)
  let kp = Idcrypto.Sign.generate "x" in
  let s1 = Idcrypto.Sign.sign ~secret:kp.Idcrypto.Sign.secret [ "ab"; "c" ] in
  let s2 = Idcrypto.Sign.sign ~secret:kp.Idcrypto.Sign.secret [ "a"; "bc" ] in
  check Alcotest.bool "length-prefixed encoding" false (s1 = s2)

let prop_sign_verify_roundtrip =
  QCheck.Test.make ~name:"sign/verify roundtrip on random data" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 5) string)
    (fun data ->
      let kp = Idcrypto.Sign.generate "prop" in
      let ks = Idcrypto.Sign.keystore () in
      Idcrypto.Sign.register ks kp;
      let signature = Idcrypto.Sign.sign ~secret:kp.Idcrypto.Sign.secret data in
      Idcrypto.Sign.verify ks ~public:kp.Idcrypto.Sign.public ~signature data)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "idcrypto"
    [
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "case insensitive" `Quick test_hex_case_insensitive;
          Alcotest.test_case "rejects bad input" `Quick test_hex_rejects_bad_input;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "nist vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Quick test_sha256_million_a;
          Alcotest.test_case "streaming equals one-shot" `Quick
            test_sha256_streaming_equals_oneshot;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "sign",
        [
          Alcotest.test_case "deterministic keys" `Quick test_sign_deterministic_keys;
          Alcotest.test_case "verify cycle" `Quick test_sign_verify_cycle;
          Alcotest.test_case "canonical unambiguous" `Quick
            test_sign_canonical_unambiguous;
        ] );
      ( "properties",
        qc
          [
            prop_sha256_streaming_split;
            prop_sha256_injective_on_samples;
            prop_sign_verify_roundtrip;
          ] );
    ]

open Netcore

let port = 783

(* The querier's ephemeral source port. A constant keeps the exchange
   deterministic; responses are matched to queries by flow, not by port. *)
let querier_port = 49152

let tcp_payload_packet ~src ~dst ~src_port ~dst_port payload =
  {
    Packet.eth_src = Mac.zero;
    eth_dst = Mac.zero;
    vlan = Vlan.untagged;
    eth_payload =
      Packet.Ip
        {
          Packet.ip_src = src;
          ip_dst = dst;
          ttl = 64;
          payload =
            Packet.Tcp
              {
                Packet.tcp_src = src_port;
                tcp_dst = dst_port;
                seq = 0l;
                ack_no = 0l;
                flags = Packet.flags_psh_ack;
                window = 65535;
                tcp_payload = payload;
              };
        };
  }

let query_packet ~to_ip ~from_ip query =
  tcp_payload_packet ~src:from_ip ~dst:to_ip ~src_port:querier_port
    ~dst_port:port (Query.encode query)

let response_packet ~to_ip ~from_ip ~dst_port response =
  tcp_payload_packet ~src:from_ip ~dst:to_ip ~src_port:port ~dst_port
    (Response.encode response)

type classified =
  | Query of { from_ip : Ipv4.t; to_ip : Ipv4.t; query : Query.t }
  | Response of { from_ip : Ipv4.t; to_ip : Ipv4.t; response : Response.t }
  | Not_identxx

let classify (pkt : Packet.t) =
  match pkt.eth_payload with
  | Packet.Ip { ip_src; ip_dst; payload = Packet.Tcp tcp; _ } ->
      if tcp.tcp_dst = port then
        match Query.decode tcp.tcp_payload with
        | Ok query -> Query { from_ip = ip_src; to_ip = ip_dst; query }
        | Error _ -> Not_identxx
      else if tcp.tcp_src = port then
        match Response.decode tcp.tcp_payload with
        | Ok response -> Response { from_ip = ip_src; to_ip = ip_dst; response }
        | Error _ -> Not_identxx
      else Not_identxx
  | Packet.Ip _ | Packet.Raw_eth _ -> Not_identxx

let is_identxx (ft : Five_tuple.t) =
  Proto.equal ft.proto Proto.Tcp && (ft.src_port = port || ft.dst_port = port)

open Netcore

type t = {
  proto : Proto.t;
  src_port : int;
  dst_port : int;
  sections : Key_value.section list;
}

let make ~(flow : Five_tuple.t) sections =
  {
    proto = flow.proto;
    src_port = flow.src_port;
    dst_port = flow.dst_port;
    sections = List.filter (fun s -> s <> []) sections;
  }

let append_section t section =
  if section = [] then t else { t with sections = t.sections @ [ section ] }

let latest t key =
  List.fold_left
    (fun acc section ->
      match Key_value.find section key with Some v -> Some v | None -> acc)
    None t.sections

let all_values t key =
  List.concat_map
    (fun section ->
      List.filter_map
        (fun (p : Key_value.pair) -> if p.key = key then Some p.value else None)
        section)
    t.sections

let concat_values t key = String.concat "," (all_values t key)

let keys t =
  let seen = Hashtbl.create 16 in
  List.concat_map (fun s -> s) t.sections
  |> List.filter_map (fun (p : Key_value.pair) ->
         if Hashtbl.mem seen p.key then None
         else begin
           Hashtbl.add seen p.key ();
           Some p.key
         end)

let encode t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n"
       (String.uppercase_ascii (Proto.to_string t.proto))
       t.src_port t.dst_port);
  List.iteri
    (fun i section ->
      if i > 0 then Buffer.add_char buf '\n';
      List.iter
        (fun (p : Key_value.pair) ->
          Buffer.add_string buf p.key;
          Buffer.add_string buf ": ";
          Buffer.add_string buf p.value;
          Buffer.add_char buf '\n')
        section)
    t.sections;
  Buffer.contents buf

let parse_pair line =
  match String.index_opt line ':' with
  | None -> Error ("response: missing ':' in " ^ line)
  | Some i ->
      let key = String.sub line 0 i in
      let value =
        let v = String.sub line (i + 1) (String.length line - i - 1) in
        if String.length v > 0 && v.[0] = ' ' then
          String.sub v 1 (String.length v - 1)
        else v
      in
      if Key_value.valid_key key && Key_value.valid_value value then
        Ok { Key_value.key; value }
      else Error ("response: malformed pair " ^ line)

let decode s =
  match String.split_on_char '\n' s with
  | [] -> Error "response: empty"
  | header :: rest -> (
      match Query.parse_header header with
      | Error e -> Error e
      | Ok (proto, src_port, dst_port) ->
          let rec sections current acc = function
            | [] ->
                let acc = if current = [] then acc else List.rev current :: acc in
                Ok (List.rev acc)
            | "" :: rest ->
                if current = [] then sections [] acc rest
                else sections [] (List.rev current :: acc) rest
            | line :: rest -> (
                match parse_pair line with
                | Error _ as e -> e
                | Ok pair -> sections (pair :: current) acc rest)
          in
          (* A trailing newline yields a final "" element; harmless. *)
          (match sections [] [] rest with
          | Error _ as e -> e
          | Ok sections -> Ok { proto; src_port; dst_port; sections }))

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "response %s %d->%d (%d sections)@."
    (Proto.to_string t.proto) t.src_port t.dst_port
    (List.length t.sections);
  List.iteri
    (fun i s ->
      Format.fprintf ppf "-- section %d --@.%a" i Key_value.pp_section s)
    t.sections

lib/identxx/process_table.mli: Five_tuple Netcore Proto

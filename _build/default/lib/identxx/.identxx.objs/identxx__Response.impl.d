lib/identxx/response.ml: Buffer Five_tuple Format Hashtbl Key_value List Netcore Printf Proto Query String

lib/identxx/query.mli: Five_tuple Format Ipv4 Netcore Proto

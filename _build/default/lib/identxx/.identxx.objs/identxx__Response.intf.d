lib/identxx/response.mli: Five_tuple Format Key_value Netcore Proto

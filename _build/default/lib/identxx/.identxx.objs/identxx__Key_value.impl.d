lib/identxx/key_value.ml: Format List String

lib/identxx/daemon.ml: Config Five_tuple Idcrypto Ipv4 Key_value List Logs Netcore Option Process_table Proto Response Signed String

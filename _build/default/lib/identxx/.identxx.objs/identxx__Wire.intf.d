lib/identxx/wire.mli: Five_tuple Ipv4 Netcore Packet Query Response

lib/identxx/host.mli: Daemon Five_tuple Idcrypto Ipv4 Mac Netcore Packet Process_table Proto

lib/identxx/signed.ml: Idcrypto Key_value List Netcore Printf Response

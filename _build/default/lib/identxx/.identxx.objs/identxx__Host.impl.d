lib/identxx/host.ml: Daemon Five_tuple Hashtbl Idcrypto Ipv4 Mac Netcore Option Packet Process_table Proto Query Wire

lib/identxx/config.ml: Buffer Format Key_value List Printf String

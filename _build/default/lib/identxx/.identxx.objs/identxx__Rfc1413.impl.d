lib/identxx/rfc1413.ml: Five_tuple Netcore Printf Process_table Proto String

lib/identxx/rfc1413.mli: Ipv4 Netcore Process_table

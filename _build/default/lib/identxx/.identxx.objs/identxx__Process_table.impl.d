lib/identxx/process_table.ml: Five_tuple Hashtbl List Netcore Option Printf Proto

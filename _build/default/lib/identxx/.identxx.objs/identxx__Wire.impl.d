lib/identxx/wire.ml: Five_tuple Ipv4 Mac Netcore Packet Proto Query Response Vlan

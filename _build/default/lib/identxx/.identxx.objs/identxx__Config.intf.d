lib/identxx/config.mli: Format Key_value

lib/identxx/daemon.mli: Five_tuple Idcrypto Ipv4 Key_value Netcore Process_table Proto Response

lib/identxx/query.ml: Buffer Five_tuple Format Key_value List Netcore Printf Proto String

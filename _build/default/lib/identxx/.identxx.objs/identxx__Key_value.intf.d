lib/identxx/key_value.mli: Format

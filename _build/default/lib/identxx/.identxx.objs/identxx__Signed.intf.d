lib/identxx/signed.mli: Idcrypto Response

type pair = { key : string; value : string }

let valid_key k =
  k <> ""
  && not (String.exists (fun c -> c = ':' || c = '\n' || c = '\r') k)

let valid_value v = not (String.exists (fun c -> c = '\n' || c = '\r') v)

let pair key value =
  if not (valid_key key) then invalid_arg ("Key_value.pair: bad key " ^ key);
  if not (valid_value value) then
    invalid_arg ("Key_value.pair: bad value for " ^ key);
  { key; value }

type section = pair list

let find section key =
  List.fold_left
    (fun acc p -> if p.key = key then Some p.value else acc)
    None section

let user_id = "userID"
let group_id = "groupID"
let app_name = "name"
let exe_hash = "exe-hash"
let app_path = "exe-path"
let version = "version"
let requirements = "requirements"
let req_sig = "req-sig"
let rule_maker = "rule-maker"

let pp_pair ppf p = Format.fprintf ppf "%s: %s" p.key p.value

let pp_section ppf s =
  List.iter (fun p -> Format.fprintf ppf "%a@." pp_pair p) s

(** Packet-level framing for the ident++ exchange.

    The daemon listens on TCP port 783 (§2). A query packet addressed to
    an end-host carries the flow's addresses in its IP header — the
    querying controller uses the flow's destination address as the
    query's source (§3.2) — and the {!Query} payload in its TCP segment.
    The response travels back to the query's source address from port
    783. *)

open Netcore

val port : int
(** 783. *)

val query_packet : to_ip:Ipv4.t -> from_ip:Ipv4.t -> Query.t -> Packet.t
(** Build the TCP query packet: [to_ip] is the queried host, [from_ip]
    the address the response should return to (per the paper, the flow's
    other end). *)

val response_packet :
  to_ip:Ipv4.t -> from_ip:Ipv4.t -> dst_port:int -> Response.t -> Packet.t
(** The daemon's reply, sent from TCP port 783. *)

type classified =
  | Query of { from_ip : Ipv4.t; to_ip : Ipv4.t; query : Query.t }
  | Response of { from_ip : Ipv4.t; to_ip : Ipv4.t; response : Response.t }
  | Not_identxx

val classify : Packet.t -> classified
(** Recognize ident++ traffic: TCP destination port 783 with a parsable
    query payload, or TCP source port 783 with a parsable response
    payload. Malformed ident++-port traffic classifies as
    [Not_identxx] (and would fall through to ordinary policy). *)

val is_identxx : Five_tuple.t -> bool
(** True when either transport port is 783. *)

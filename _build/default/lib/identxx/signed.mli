(** Response authentication.

    ident++ responses travel through the network with a spoofable source
    address, and §5.3 already leans on signatures for authenticating
    delegated requests ("the request needs to be signed with the user's
    private key"). This module extends the same mechanism to whole
    responses: a daemon holding a keypair appends a final section

    {v
response-signer: <public handle>
response-sig: <tag over the preceding sections and the flow>
    v}

    and a verifier checks the tag against its keystore. Sections a
    transit controller appends {e after} the signature are visible but
    unauthenticated — in a fully-signed deployment each augmenting
    controller would add its own signature section the same way. *)

val signer_key : string
(** ["response-signer"] *)

val sig_key : string
(** ["response-sig"] *)

val sign : keypair:Idcrypto.Sign.keypair -> Response.t -> Response.t
(** Append the signature section. The tag covers the flow's
    protocol/ports and every section already present. *)

type verdict =
  | Valid of int  (** Number of sections covered by the signature. *)
  | Unsigned
  | Invalid

val verify : Idcrypto.Sign.keystore -> Response.t -> verdict
(** Find the first signature section and check its tag over the
    sections preceding it. [Invalid] when the signer is unknown to the
    keystore or the tag does not match. *)

open Netcore

let port = 113

let parse_request line =
  match String.split_on_char ',' line with
  | [ a; b ] -> (
      match (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b)) with
      | Some server_port, Some client_port
        when server_port > 0 && server_port <= 0xffff && client_port > 0
             && client_port <= 0xffff ->
          Some (server_port, client_port)
      | _ -> None)
  | _ -> None

let handle_request ~processes ~local_ip ~peer_ip line =
  match parse_request line with
  | None -> Printf.sprintf "%s : ERROR : INVALID-PORT" (String.trim line)
  | Some (server_port, client_port) -> (
      let ports = Printf.sprintf "%d, %d" server_port client_port in
      (* The connection, from this (client) host's point of view. *)
      let flow =
        Five_tuple.make ~src:local_ip ~dst:peer_ip ~proto:Proto.Tcp
          ~src_port:client_port ~dst_port:server_port
      in
      match Process_table.lookup processes ~flow ~as_source:true with
      | Some proc ->
          Printf.sprintf "%s : USERID : UNIX : %s" ports proc.Process_table.user
      | None -> Printf.sprintf "%s : ERROR : NO-USER" ports)

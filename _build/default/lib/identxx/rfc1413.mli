(** The classic Identification Protocol (RFC 1413), implemented on top
    of the ident++ daemon's process table.

    ident++ "is inspired by the Identification Protocol, but is richer
    and more flexible" (§1, §6). This module provides the original
    protocol for interoperability and for the daemon-only deployment
    mode (§4): a server that only speaks RFC 1413 can still learn which
    user owns a connection arriving from an ident++-enabled host.

    Request: ["<port-on-server-host>, <port-on-client-host>"] sent to
    TCP port 113 of the {e client} host — note the reversed perspective:
    the querier is the connection's server, so its local port pairs with
    the queried host's port. Response:
    ["<ports> : USERID : UNIX : <user>"] or ["<ports> : ERROR : <code>"]. *)

open Netcore

val port : int
(** 113. *)

val handle_request :
  processes:Process_table.t -> local_ip:Ipv4.t -> peer_ip:Ipv4.t -> string ->
  string
(** [handle_request ~processes ~local_ip ~peer_ip line] answers one
    request line as the daemon on the connection's client host:
    [local_ip] is this host, [peer_ip] the querying server. Errors use
    the RFC codes [INVALID-PORT], [NO-USER]. The response has no
    trailing newline. *)

(** ident++ daemon configuration files (§3.5, Figures 3, 4, 6).

    A configuration file contains comment lines ([#...]), top-level
    key-value pairs that apply to every flow on the host (e.g. an
    [os-patch] level set by the local administrator), and [@app] blocks
    keyed by executable path:

    {v
@app /usr/bin/skype {
name : skype
version : 210
requirements : \
pass from any port http \
with eq(@src[name], skype)
req-sig : 21oir...w3eda
}
    v}

    A trailing backslash continues a value onto the next line; the
    continuation lines are joined with single spaces, mirroring how PF
    configuration treats continuations. *)

type app_block = { path : string; pairs : Key_value.section }

type t = {
  globals : Key_value.section;  (** Top-level pairs. *)
  apps : app_block list;
}

val empty : t

val parse : string -> (t, string) result
(** Parse one file's contents. *)

val parse_exn : string -> t

val merge : t -> t -> t
(** Later files' pairs append after earlier ones (so they are "later"
    and win {!Response.latest}-style lookups). *)

val app : t -> path:string -> Key_value.section option
(** The pairs of the [@app] block for an executable path. When several
    blocks name the same path, their pairs are concatenated in file
    order. [None] when no block mentions the path. *)

val render : t -> string
(** Print back to the file syntax ({!parse} of the result is [t] up to
    continuation layout). *)

val pp : Format.formatter -> t -> unit

type app_block = { path : string; pairs : Key_value.section }
type t = { globals : Key_value.section; apps : app_block list }

let empty = { globals = []; apps = [] }

(* Strip a comment that starts at an unquoted '#'. The daemon config
   syntax has no quoting, so any '#' starts a comment. *)
let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Join backslash-continued lines: a line whose last non-blank char is
   '\' absorbs the next line, separated by a single space. *)
let join_continuations lines =
  let rec go acc current = function
    | [] -> List.rev (match current with None -> acc | Some c -> c :: acc)
    | line :: rest -> (
        let line = strip_comment line in
        let trimmed = String.trim line in
        let continued =
          String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = '\\'
        in
        let body =
          if continued then String.trim (String.sub trimmed 0 (String.length trimmed - 1))
          else trimmed
        in
        match current with
        | None ->
            if continued then go acc (Some body) rest
            else go (body :: acc) None rest
        | Some prefix ->
            let joined =
              if body = "" then prefix
              else if prefix = "" then body
              else prefix ^ " " ^ body
            in
            if continued then go acc (Some joined) rest
            else go (joined :: acc) None rest)
  in
  go [] None lines

let parse_pair line =
  match String.index_opt line ':' with
  | None -> Error ("config: expected 'key : value' in " ^ line)
  | Some i ->
      let key = String.trim (String.sub line 0 i) in
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      if Key_value.valid_key key && Key_value.valid_value value then
        Ok { Key_value.key; value }
      else Error ("config: malformed pair " ^ line)

let parse_app_header line =
  (* "@app /usr/bin/skype {" *)
  let line = String.trim line in
  let without_prefix = String.sub line 4 (String.length line - 4) in
  let without_prefix = String.trim without_prefix in
  if String.length without_prefix = 0 then Error "config: @app missing path"
  else if without_prefix.[String.length without_prefix - 1] <> '{' then
    Error "config: @app header must end with '{'"
  else
    let path =
      String.trim (String.sub without_prefix 0 (String.length without_prefix - 1))
    in
    if path = "" then Error "config: @app missing path" else Ok path

let parse content =
  let lines = join_continuations (String.split_on_char '\n' content) in
  let rec go globals apps current = function
    | [] -> (
        match current with
        | Some _ -> Error "config: unterminated @app block"
        | None -> Ok { globals = List.rev globals; apps = List.rev apps })
    | "" :: rest -> go globals apps current rest
    | line :: rest -> (
        match current with
        | None ->
            if String.length line >= 4 && String.sub line 0 4 = "@app" then
              match parse_app_header line with
              | Error _ as e -> e
              | Ok path -> go globals apps (Some (path, [])) rest
            else (
              match parse_pair line with
              | Error _ as e -> e
              | Ok pair -> go (pair :: globals) apps None rest)
        | Some (path, pairs) ->
            if String.trim line = "}" then
              go globals
                ({ path; pairs = List.rev pairs } :: apps)
                None rest
            else (
              match parse_pair line with
              | Error _ as e -> e
              | Ok pair -> go globals apps (Some (path, pair :: pairs)) rest))
  in
  go [] [] None lines

let parse_exn content =
  match parse content with Ok t -> t | Error e -> invalid_arg e

let merge a b = { globals = a.globals @ b.globals; apps = a.apps @ b.apps }

let app t ~path =
  match
    List.concat_map
      (fun block -> if block.path = path then block.pairs else [])
      t.apps
  with
  | [] -> None
  | pairs -> Some pairs

let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (p : Key_value.pair) ->
      Buffer.add_string buf (Printf.sprintf "%s : %s\n" p.key p.value))
    t.globals;
  List.iter
    (fun block ->
      Buffer.add_string buf (Printf.sprintf "@app %s {\n" block.path);
      List.iter
        (fun (p : Key_value.pair) ->
          Buffer.add_string buf (Printf.sprintf "%s : %s\n" p.key p.value))
        block.pairs;
      Buffer.add_string buf "}\n")
    t.apps;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)

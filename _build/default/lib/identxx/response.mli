(** ident++ response packets (§3.2).

    A response repeats the flow's protocol and ports, then carries
    key-value pairs in sections separated by empty lines. Each section
    is one source's contribution (the user, the application, the local
    administrator, or a controller on the path that augmented the
    response). Later sections were added later — by parties closer to
    the decision-maker — and are therefore "the most trusted (though not
    necessarily the most trustworthy)" (§3.3). *)

open Netcore

type t = {
  proto : Proto.t;
  src_port : int;
  dst_port : int;
  sections : Key_value.section list;
}

val make : flow:Five_tuple.t -> Key_value.section list -> t
(** Empty sections are dropped (they would corrupt the framing). *)

val append_section : t -> Key_value.section -> t
(** What an intercepting controller does to augment a response: "the
    controller inserts an empty line followed by the key-value pairs it
    wishes to add" (§3.4). Appending an empty section is a no-op. *)

val latest : t -> string -> string option
(** The most recently added binding of the key: sections are searched
    last-to-first. "Indexing the dictionaries will give the latest value
    added to the response" (§3.3). *)

val all_values : t -> string -> string list
(** Every binding of the key in section order (for the [*@src[key]]
    concatenation access of §3.3). *)

val concat_values : t -> string -> string
(** [all_values] joined with [","] — the [*@] form. *)

val keys : t -> string list
(** All distinct keys present, in first-appearance order. *)

val encode : t -> string
(** Wire payload:
    {v
<PROTO> <SRC PORT> <DST PORT>
<key 0>: <value 0>
...

<key n>: <value n>
...
    v} *)

val decode : string -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** The key-value pairs carried in ident++ responses (§2, §3.2).

    Keys and values are "mostly free-form" (§2): ident++ predefines a few
    keys (user, application name, executable hash, rules) and lets
    administrators, users and application developers define their own.
    Structurally, a key must not contain [':'] or newlines, and a value
    must not contain newlines — both constraints come from the line-based
    wire format. *)

type pair = { key : string; value : string }

val pair : string -> string -> pair
(** @raise Invalid_argument when the key or value is malformed. *)

val valid_key : string -> bool
val valid_value : string -> bool

type section = pair list
(** One source's contribution: "new sections correspond to key-value
    pairs from different sources" (§3.2). *)

val find : section -> string -> string option
(** Last binding of the key within the section. *)

(** {2 Predefined keys} (§2, §3.5, Figures 3–8) *)

val user_id : string
(** ["userID"] *)

val group_id : string
(** ["groupID"] *)

val app_name : string
(** ["name"] *)

val exe_hash : string
(** ["exe-hash"] *)

val app_path : string
(** ["exe-path"] *)

val version : string
(** ["version"] *)

val requirements : string
(** ["requirements"] — user-supplied rules *)

val req_sig : string
(** ["req-sig"] *)

val rule_maker : string
(** ["rule-maker"] *)

val pp_pair : Format.formatter -> pair -> unit
val pp_section : Format.formatter -> section -> unit

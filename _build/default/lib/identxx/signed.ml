let signer_key = "response-signer"
let sig_key = "response-sig"

(* The byte string a signature covers: header fields plus the encoded
   prefix sections, length-prefixed by Sign.canonical downstream. *)
let covered (r : Response.t) prefix_sections =
  let header =
    Printf.sprintf "%s %d %d"
      (Netcore.Proto.to_string r.Response.proto)
      r.Response.src_port r.Response.dst_port
  in
  header
  :: List.concat_map
       (fun section ->
         List.concat_map
           (fun (p : Key_value.pair) -> [ p.key; p.value ])
           section)
       prefix_sections

let sign ~(keypair : Idcrypto.Sign.keypair) (r : Response.t) =
  let tag =
    Idcrypto.Sign.sign ~secret:keypair.Idcrypto.Sign.secret
      (covered r r.Response.sections)
  in
  Response.append_section r
    [
      Key_value.pair signer_key keypair.Idcrypto.Sign.public;
      Key_value.pair sig_key tag;
    ]

type verdict = Valid of int | Unsigned | Invalid

let verify keystore (r : Response.t) =
  (* Find the first section carrying a signature. *)
  let rec split prefix = function
    | [] -> None
    | section :: rest -> (
        match (Key_value.find section signer_key, Key_value.find section sig_key) with
        | Some signer, Some tag -> Some (List.rev prefix, signer, tag, rest)
        | _ -> split (section :: prefix) rest)
  in
  match split [] r.Response.sections with
  | None -> Unsigned
  | Some (prefix, signer, tag, _rest) ->
      if
        Idcrypto.Sign.verify keystore ~public:signer ~signature:tag
          (covered r prefix)
      then Valid (List.length prefix)
      else Invalid

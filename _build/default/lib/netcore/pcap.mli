(** Classic libpcap capture files (the 24-byte global header followed by
    per-packet records), so simulated traffic can be inspected with
    standard tools. Timestamps come from the simulation clock. *)

type writer

val create_writer : ?snaplen:int -> Buffer.t -> writer
(** Writes the global header immediately (magic 0xa1b2c3d4,
    little-endian, LINKTYPE_ETHERNET). *)

val write_packet : writer -> ts_us:int -> Packet.t -> unit
(** Append one record; [ts_us] is microseconds since capture start.
    Frames longer than the snap length are truncated in the record (the
    original length field is preserved). *)

val write_bytes : writer -> ts_us:int -> string -> unit
(** Append pre-encoded frame bytes. *)

val packet_count : writer -> int

val to_file : path:string -> (writer -> unit) -> unit
(** Build a capture in memory via the callback and write it to [path]. *)

type record = { ts_us : int; orig_len : int; frame : string }

val parse : string -> (record list, string) result
(** Parse a capture produced by this module (little-endian, usec
    resolution). *)

lib/netcore/prefix.ml: Format Int Ipv4 Printf Seq String

lib/netcore/checksum.mli:

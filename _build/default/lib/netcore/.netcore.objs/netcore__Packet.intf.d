lib/netcore/packet.mli: Ethertype Five_tuple Format Ipv4 Mac Proto Vlan

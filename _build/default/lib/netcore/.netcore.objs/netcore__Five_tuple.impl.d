lib/netcore/five_tuple.ml: Format Hashtbl Int Ipv4 Printf Proto

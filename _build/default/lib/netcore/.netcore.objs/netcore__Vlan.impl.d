lib/netcore/vlan.ml: Format Int

lib/netcore/ethertype.mli: Format

lib/netcore/checksum.ml: Char String

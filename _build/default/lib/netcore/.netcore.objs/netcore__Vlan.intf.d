lib/netcore/vlan.mli: Format

lib/netcore/packet.ml: Bytes Char Checksum Ethertype Five_tuple Format Int32 Ipv4 Mac Proto Result String Vlan

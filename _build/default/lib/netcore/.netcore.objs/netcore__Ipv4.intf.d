lib/netcore/ipv4.mli: Bytes Format

lib/netcore/proto.mli: Format

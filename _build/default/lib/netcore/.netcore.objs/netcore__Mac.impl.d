lib/netcore/mac.ml: Bytes Char Format Hashtbl Int Printf String

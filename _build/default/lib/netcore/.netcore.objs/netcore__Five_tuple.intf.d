lib/netcore/five_tuple.mli: Format Ipv4 Proto

lib/netcore/proto.ml: Format Int String

lib/netcore/ethertype.ml: Format Int Printf

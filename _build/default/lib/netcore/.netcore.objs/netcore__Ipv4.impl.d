lib/netcore/ipv4.ml: Bytes Char Format Hashtbl Int Int32 Printf String

lib/netcore/mac.mli: Bytes Format

lib/netcore/pcap.mli: Buffer Packet

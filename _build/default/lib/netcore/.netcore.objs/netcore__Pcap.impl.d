lib/netcore/pcap.ml: Buffer Char List Packet String

(** Ethernet frame types. *)

type t = Ipv4 | Arp | Vlan_tagged | Other of int

val to_int : t -> int
val of_int : int -> t
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

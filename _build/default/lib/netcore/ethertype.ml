type t = Ipv4 | Arp | Vlan_tagged | Other of int

let to_int = function
  | Ipv4 -> 0x0800
  | Arp -> 0x0806
  | Vlan_tagged -> 0x8100
  | Other n -> n

let of_int = function
  | 0x0800 -> Ipv4
  | 0x0806 -> Arp
  | 0x8100 -> Vlan_tagged
  | n ->
      if n < 0 || n > 0xffff then invalid_arg "Ethertype.of_int: out of range";
      Other n

let to_string = function
  | Ipv4 -> "ipv4"
  | Arp -> "arp"
  | Vlan_tagged -> "vlan"
  | Other n -> Printf.sprintf "0x%04x" n

let compare a b = Int.compare (to_int a) (to_int b)
let equal a b = to_int a = to_int b
let pp ppf t = Format.pp_print_string ppf (to_string t)

(** Structured packets with real wire-format encoders and decoders.

    Encoding produces byte-exact Ethernet/IPv4/TCP/UDP frames, including
    IPv4 header checksums and TCP/UDP pseudo-header checksums, so the
    simulator's packets could in principle be written to a pcap. Decoding
    verifies structure (and checksums, unless told not to). *)

type tcp_flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

val flags_none : tcp_flags
val flags_syn : tcp_flags
val flags_synack : tcp_flags
val flags_ack : tcp_flags
val flags_psh_ack : tcp_flags
val flags_fin : tcp_flags
val flags_rst : tcp_flags

type tcp = {
  tcp_src : int;
  tcp_dst : int;
  seq : int32;
  ack_no : int32;
  flags : tcp_flags;
  window : int;
  tcp_payload : string;
}

type udp = { udp_src : int; udp_dst : int; udp_payload : string }
type icmp = { icmp_type : int; icmp_code : int; icmp_payload : string }

type ip_payload =
  | Tcp of tcp
  | Udp of udp
  | Icmp of icmp
  | Raw_ip of Proto.t * string

type ipv4 = { ip_src : Ipv4.t; ip_dst : Ipv4.t; ttl : int; payload : ip_payload }

type eth_payload = Ip of ipv4 | Raw_eth of Ethertype.t * string

type t = {
  eth_src : Mac.t;
  eth_dst : Mac.t;
  vlan : Vlan.t;
  eth_payload : eth_payload;
}

val tcp_syn :
  ?eth_src:Mac.t ->
  ?eth_dst:Mac.t ->
  ?vlan:Vlan.t ->
  src:Ipv4.t ->
  dst:Ipv4.t ->
  src_port:int ->
  dst_port:int ->
  unit ->
  t
(** A minimal TCP SYN — the packet that typically triggers flow setup. *)

val udp_datagram :
  ?eth_src:Mac.t ->
  ?eth_dst:Mac.t ->
  ?vlan:Vlan.t ->
  src:Ipv4.t ->
  dst:Ipv4.t ->
  src_port:int ->
  dst_port:int ->
  payload:string ->
  unit ->
  t

val of_five_tuple : ?payload:string -> Five_tuple.t -> t
(** A packet whose headers realize the given 5-tuple (TCP flows get a SYN;
    UDP flows a datagram; other protocols a raw IP payload). *)

val five_tuple : t -> Five_tuple.t option
(** The ident++ 5-tuple of an IPv4 TCP/UDP packet; for other IP packets
    the ports are reported as 0; [None] for non-IP frames. *)

val proto : t -> Proto.t option
val size : t -> int

val encode : t -> string
(** Serialize to wire bytes, computing all checksums. *)

val decode : ?check:bool -> string -> (t, string) result
(** Parse wire bytes. When [check] (default [true]), IPv4 and transport
    checksums are verified and a mismatch is an [Error]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

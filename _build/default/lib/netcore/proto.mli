(** IP protocol numbers. *)

type t = Icmp | Tcp | Udp | Other of int

val to_int : t -> int
val of_int : int -> t

val of_string : string -> t
(** Accepts ["tcp"], ["udp"], ["icmp"] (case-insensitive) or a number.
    @raise Invalid_argument on bad input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

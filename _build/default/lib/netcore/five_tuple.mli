(** The ident++ definition of a flow: the classic 5-tuple (§2 of the
    paper): IP source and destination addresses, IP protocol, and
    transport source and destination ports. *)

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  proto : Proto.t;
  src_port : int;
  dst_port : int;
}

val make :
  src:Ipv4.t -> dst:Ipv4.t -> proto:Proto.t -> src_port:int -> dst_port:int -> t
(** @raise Invalid_argument if a port is outside [0, 65535]. *)

val tcp : src:Ipv4.t -> dst:Ipv4.t -> src_port:int -> dst_port:int -> t
val udp : src:Ipv4.t -> dst:Ipv4.t -> src_port:int -> dst_port:int -> t

val reverse : t -> t
(** Swap source and destination (address and port). *)

val to_string : t -> string
(** e.g. ["tcp 10.0.0.1:5000 -> 10.0.0.2:80"]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

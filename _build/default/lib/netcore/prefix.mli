(** IPv4 CIDR prefixes. *)

type t
(** A network prefix such as [192.168.0.0/24]. The stored network address
    is always canonical: host bits are zero. *)

val make : Ipv4.t -> int -> t
(** [make addr len] builds [addr/len], zeroing host bits.
    @raise Invalid_argument unless [0 <= len <= 32]. *)

val of_string : string -> t
(** Parses ["a.b.c.d/len"] or a bare address (treated as /32).
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val network : t -> Ipv4.t
val length : t -> int

val host : Ipv4.t -> t
(** A /32 prefix containing exactly one address. *)

val all : t
(** [0.0.0.0/0], matching everything. *)

val mem : Ipv4.t -> t -> bool
(** [mem a p] is true when [a] falls inside [p]. *)

val subset : t -> t -> bool
(** [subset p q] is true when every address of [p] is in [q]. *)

val overlaps : t -> t -> bool

val first : t -> Ipv4.t
(** Lowest address in the prefix (the network address). *)

val last : t -> Ipv4.t
(** Highest address in the prefix. *)

val size : t -> int
(** Number of addresses covered. *)

val hosts : t -> Ipv4.t Seq.t
(** All addresses in the prefix, ascending. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

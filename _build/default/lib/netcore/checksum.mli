(** The Internet checksum (RFC 1071): one's-complement sum of 16-bit
    big-endian words. *)

val sum : string -> int -> int -> int
(** [sum s off len] folds the 16-bit words of [s.[off .. off+len-1]] into a
    running one's-complement sum (not yet complemented). A trailing odd
    byte is padded with zero on the right, as the RFC specifies. *)

val add : int -> int -> int
(** One's-complement addition of two partial sums. *)

val finish : int -> int
(** Fold carries and complement, yielding the 16-bit checksum field. *)

val of_string : string -> int
(** [finish (sum s 0 (String.length s))]. *)

val valid : string -> bool
(** True when a buffer that embeds its own checksum sums to [0xffff]
    before complementing (i.e. checksum verifies). *)

let sum s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Checksum.sum: out of bounds";
  let acc = ref 0 in
  let i = ref off in
  let stop = off + len - 1 in
  while !i < stop do
    acc := !acc + ((Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1]);
    i := !i + 2
  done;
  if len land 1 = 1 then acc := !acc + (Char.code s.[off + len - 1] lsl 8);
  !acc

let rec fold x = if x > 0xffff then fold ((x land 0xffff) + (x lsr 16)) else x
let add a b = fold (a + b)
let finish x = lnot (fold x) land 0xffff
let of_string s = finish (sum s 0 (String.length s))
let valid s = fold (sum s 0 (String.length s)) = 0xffff

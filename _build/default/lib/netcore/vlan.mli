(** VLAN identifiers (12-bit), with a distinguished "untagged" value. *)

type t

val untagged : t
(** The absence of a VLAN tag. *)

val of_id : int -> t
(** @raise Invalid_argument unless [0 <= id < 4096]. *)

val id : t -> int option
(** [None] for {!untagged}. *)

val is_tagged : t -> bool
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type t = { network : Ipv4.t; length : int }

let mask_of_length len = if len = 0 then 0 else 0xffff_ffff lsl (32 - len) land 0xffff_ffff

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: bad length";
  { network = Ipv4.of_int (Ipv4.to_int addr land mask_of_length len); length = len }

let of_string s =
  match String.index_opt s '/' with
  | None -> make (Ipv4.of_string s) 32
  | Some i ->
      let addr = Ipv4.of_string (String.sub s 0 i) in
      let len_str = String.sub s (i + 1) (String.length s - i - 1) in
      let len =
        match int_of_string_opt len_str with
        | Some l -> l
        | None -> invalid_arg "Prefix.of_string: bad length"
      in
      make addr len

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None
let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.network) p.length
let network p = p.network
let length p = p.length
let host a = make a 32
let all = { network = Ipv4.any; length = 0 }

let mem a p =
  Ipv4.to_int a land mask_of_length p.length = Ipv4.to_int p.network

let subset p q = p.length >= q.length && mem p.network q
let overlaps p q = subset p q || subset q p
let first p = p.network
let size p = 1 lsl (32 - p.length)
let last p = Ipv4.of_int (Ipv4.to_int p.network lor (size p - 1))

let hosts p =
  let stop = Ipv4.to_int (last p) in
  let rec from i () =
    if i > stop then Seq.Nil else Seq.Cons (Ipv4.of_int i, from (i + 1))
  in
  from (Ipv4.to_int p.network)

let compare p q =
  match Ipv4.compare p.network q.network with
  | 0 -> Int.compare p.length q.length
  | c -> c

let equal p q = compare p q = 0
let pp ppf p = Format.pp_print_string ppf (to_string p)

(** Ethernet MAC addresses (48-bit, stored in the low bits of an [int]). *)

type t
(** A 48-bit MAC address. Values are totally ordered and comparable with
    the polymorphic operators via {!compare}. *)

val broadcast : t
(** [ff:ff:ff:ff:ff:ff]. *)

val zero : t
(** [00:00:00:00:00:00]. *)

val of_int : int -> t
(** [of_int i] keeps the low 48 bits of [i]. *)

val to_int : t -> int

val of_bytes : string -> int -> t
(** [of_bytes s off] reads six big-endian bytes at offset [off].
    @raise Invalid_argument if fewer than six bytes remain. *)

val write_bytes : t -> Bytes.t -> int -> unit
(** [write_bytes m b off] writes the six bytes of [m] at [off]. *)

val of_string : string -> t
(** Parses ["aa:bb:cc:dd:ee:ff"] (case-insensitive).
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option

val to_string : t -> string
(** Lower-case colon-separated form. *)

val is_broadcast : t -> bool

val is_multicast : t -> bool
(** True when the group bit (LSB of the first octet) is set. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

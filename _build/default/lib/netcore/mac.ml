type t = int

let mask48 = (1 lsl 48) - 1
let broadcast = mask48
let zero = 0
let of_int i = i land mask48
let to_int m = m

let of_bytes s off =
  if off < 0 || off + 6 > String.length s then
    invalid_arg "Mac.of_bytes: out of bounds";
  let b i = Char.code s.[off + i] in
  (b 0 lsl 40) lor (b 1 lsl 32) lor (b 2 lsl 24) lor (b 3 lsl 16)
  lor (b 4 lsl 8) lor b 5

let write_bytes m b off =
  for i = 0 to 5 do
    Bytes.set b (off + i) (Char.chr ((m lsr ((5 - i) * 8)) land 0xff))
  done

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Mac.of_string: bad hex digit"

let of_string s =
  if String.length s <> 17 then invalid_arg "Mac.of_string: bad length";
  let octet i =
    let base = i * 3 in
    if i > 0 && s.[base - 1] <> ':' then
      invalid_arg "Mac.of_string: expected ':'";
    (hex_digit s.[base] lsl 4) lor hex_digit s.[base + 1]
  in
  let rec build i acc =
    if i = 6 then acc else build (i + 1) ((acc lsl 8) lor octet i)
  in
  build 0 0

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None

let to_string m =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((m lsr 40) land 0xff) ((m lsr 32) land 0xff) ((m lsr 24) land 0xff)
    ((m lsr 16) land 0xff) ((m lsr 8) land 0xff) (m land 0xff)

let is_broadcast m = m = broadcast
let is_multicast m = (m lsr 40) land 1 = 1
let compare = Int.compare
let equal = Int.equal
let hash m = Hashtbl.hash m
let pp ppf m = Format.pp_print_string ppf (to_string m)

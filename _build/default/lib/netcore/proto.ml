type t = Icmp | Tcp | Udp | Other of int

let to_int = function Icmp -> 1 | Tcp -> 6 | Udp -> 17 | Other n -> n

let of_int = function
  | 1 -> Icmp
  | 6 -> Tcp
  | 17 -> Udp
  | n ->
      if n < 0 || n > 255 then invalid_arg "Proto.of_int: out of range";
      Other n

let of_string s =
  match String.lowercase_ascii s with
  | "icmp" -> Icmp
  | "tcp" -> Tcp
  | "udp" -> Udp
  | other -> (
      match int_of_string_opt other with
      | Some n -> of_int n
      | None -> invalid_arg "Proto.of_string: unknown protocol")

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None

let to_string = function
  | Icmp -> "icmp"
  | Tcp -> "tcp"
  | Udp -> "udp"
  | Other n -> string_of_int n

let compare a b = Int.compare (to_int a) (to_int b)
let equal a b = to_int a = to_int b
let pp ppf p = Format.pp_print_string ppf (to_string p)

type t = int

let mask32 = 0xffff_ffff
let any = 0
let broadcast = mask32
let of_int i = i land mask32
let to_int a = a
let of_int32 i = Int32.to_int i land mask32
let to_int32 a = Int32.of_int (a land mask32)

let of_octets a b c d =
  ((a land 0xff) lsl 24) lor ((b land 0xff) lsl 16) lor ((c land 0xff) lsl 8)
  lor (d land 0xff)

let localhost = of_octets 127 0 0 1

let to_octets a =
  ((a lsr 24) land 0xff, (a lsr 16) land 0xff, (a lsr 8) land 0xff, a land 0xff)

let of_string s =
  let len = String.length s in
  let rec octet i acc ndigits =
    if i >= len then (acc, i, ndigits)
    else
      match s.[i] with
      | '0' .. '9' when ndigits < 3 ->
          octet (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0'))
            (ndigits + 1)
      | _ -> (acc, i, ndigits)
  in
  let rec go i part acc =
    let v, j, nd = octet i 0 0 in
    if nd = 0 || v > 255 then invalid_arg "Ipv4.of_string: bad octet";
    let acc = (acc lsl 8) lor v in
    if part = 3 then
      if j = len then acc else invalid_arg "Ipv4.of_string: trailing junk"
    else if j < len && s.[j] = '.' then go (j + 1) (part + 1) acc
    else invalid_arg "Ipv4.of_string: expected '.'"
  in
  go 0 0 0

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None

let to_string a =
  let x, y, z, w = to_octets a in
  Printf.sprintf "%d.%d.%d.%d" x y z w

let of_bytes s off =
  if off < 0 || off + 4 > String.length s then
    invalid_arg "Ipv4.of_bytes: out of bounds";
  let b i = Char.code s.[off + i] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let write_bytes a b off =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((a lsr ((3 - i) * 8)) land 0xff))
  done

let succ a = (a + 1) land mask32
let is_multicast a = a lsr 28 = 0xe

let is_private a =
  a lsr 24 = 10
  || (a lsr 20 = (172 lsl 4) lor 1)
  || a lsr 16 = (192 lsl 8) lor 168

let compare = Int.compare
let equal = Int.equal
let hash a = Hashtbl.hash a
let pp ppf a = Format.pp_print_string ppf (to_string a)

type t = int
(* -1 encodes "untagged"; otherwise a 12-bit VLAN id. *)

let untagged = -1

let of_id id =
  if id < 0 || id >= 4096 then invalid_arg "Vlan.of_id: out of range";
  id

let id v = if v < 0 then None else Some v
let is_tagged v = v >= 0
let to_string v = if v < 0 then "untagged" else string_of_int v
let compare = Int.compare
let equal = Int.equal
let pp ppf v = Format.pp_print_string ppf (to_string v)

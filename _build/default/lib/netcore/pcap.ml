type writer = { buf : Buffer.t; snaplen : int; mutable count : int }

let add32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let add16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let create_writer ?(snaplen = 65535) buf =
  (* Global header: magic, version 2.4, tz 0, sigfigs 0, snaplen,
     network = 1 (Ethernet). *)
  add32 buf 0xa1b2c3d4;
  add16 buf 2;
  add16 buf 4;
  add32 buf 0;
  add32 buf 0;
  add32 buf snaplen;
  add32 buf 1;
  { buf; snaplen; count = 0 }

let write_bytes w ~ts_us frame =
  let orig = String.length frame in
  let incl = min orig w.snaplen in
  add32 w.buf (ts_us / 1_000_000);
  add32 w.buf (ts_us mod 1_000_000);
  add32 w.buf incl;
  add32 w.buf orig;
  Buffer.add_substring w.buf frame 0 incl;
  w.count <- w.count + 1

let write_packet w ~ts_us pkt = write_bytes w ~ts_us (Packet.encode pkt)
let packet_count w = w.count

let to_file ~path f =
  let buf = Buffer.create 4096 in
  let w = create_writer buf in
  f w;
  let oc = open_out_bin path in
  (try Buffer.output_buffer oc buf
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

type record = { ts_us : int; orig_len : int; frame : string }

let get32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let parse s =
  if String.length s < 24 then Error "pcap: truncated global header"
  else if get32 s 0 <> 0xa1b2c3d4 then Error "pcap: bad magic"
  else begin
    let rec records off acc =
      if off = String.length s then Ok (List.rev acc)
      else if off + 16 > String.length s then Error "pcap: truncated record header"
      else
        let sec = get32 s off in
        let usec = get32 s (off + 4) in
        let incl = get32 s (off + 8) in
        let orig = get32 s (off + 12) in
        if off + 16 + incl > String.length s then Error "pcap: truncated record"
        else
          records
            (off + 16 + incl)
            ({
               ts_us = (sec * 1_000_000) + usec;
               orig_len = orig;
               frame = String.sub s (off + 16) incl;
             }
            :: acc)
    in
    records 24 []
  end

type tcp_flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

let flags_none =
  { syn = false; ack = false; fin = false; rst = false; psh = false; urg = false }

let flags_syn = { flags_none with syn = true }
let flags_synack = { flags_none with syn = true; ack = true }
let flags_ack = { flags_none with ack = true }
let flags_psh_ack = { flags_none with ack = true; psh = true }
let flags_fin = { flags_none with fin = true; ack = true }
let flags_rst = { flags_none with rst = true }

type tcp = {
  tcp_src : int;
  tcp_dst : int;
  seq : int32;
  ack_no : int32;
  flags : tcp_flags;
  window : int;
  tcp_payload : string;
}

type udp = { udp_src : int; udp_dst : int; udp_payload : string }
type icmp = { icmp_type : int; icmp_code : int; icmp_payload : string }

type ip_payload =
  | Tcp of tcp
  | Udp of udp
  | Icmp of icmp
  | Raw_ip of Proto.t * string

type ipv4 = { ip_src : Ipv4.t; ip_dst : Ipv4.t; ttl : int; payload : ip_payload }

type eth_payload = Ip of ipv4 | Raw_eth of Ethertype.t * string

type t = {
  eth_src : Mac.t;
  eth_dst : Mac.t;
  vlan : Vlan.t;
  eth_payload : eth_payload;
}

let tcp_syn ?(eth_src = Mac.zero) ?(eth_dst = Mac.zero) ?(vlan = Vlan.untagged)
    ~src ~dst ~src_port ~dst_port () =
  {
    eth_src;
    eth_dst;
    vlan;
    eth_payload =
      Ip
        {
          ip_src = src;
          ip_dst = dst;
          ttl = 64;
          payload =
            Tcp
              {
                tcp_src = src_port;
                tcp_dst = dst_port;
                seq = 0l;
                ack_no = 0l;
                flags = flags_syn;
                window = 65535;
                tcp_payload = "";
              };
        };
  }

let udp_datagram ?(eth_src = Mac.zero) ?(eth_dst = Mac.zero)
    ?(vlan = Vlan.untagged) ~src ~dst ~src_port ~dst_port ~payload () =
  {
    eth_src;
    eth_dst;
    vlan;
    eth_payload =
      Ip
        {
          ip_src = src;
          ip_dst = dst;
          ttl = 64;
          payload = Udp { udp_src = src_port; udp_dst = dst_port; udp_payload = payload };
        };
  }

let of_five_tuple ?(payload = "") (ft : Five_tuple.t) =
  match ft.proto with
  | Proto.Tcp ->
      let pkt =
        tcp_syn ~src:ft.src ~dst:ft.dst ~src_port:ft.src_port
          ~dst_port:ft.dst_port ()
      in
      if payload = "" then pkt
      else
        (match pkt.eth_payload with
        | Ip ({ payload = Tcp tcp; _ } as ip) ->
            { pkt with eth_payload = Ip { ip with payload = Tcp { tcp with tcp_payload = payload } } }
        | _ -> pkt)
  | Proto.Udp ->
      udp_datagram ~src:ft.src ~dst:ft.dst ~src_port:ft.src_port
        ~dst_port:ft.dst_port ~payload ()
  | Proto.Icmp ->
      (* A well-formed echo request, so the wire form round-trips. *)
      {
        eth_src = Mac.zero;
        eth_dst = Mac.zero;
        vlan = Vlan.untagged;
        eth_payload =
          Ip
            {
              ip_src = ft.src;
              ip_dst = ft.dst;
              ttl = 64;
              payload = Icmp { icmp_type = 8; icmp_code = 0; icmp_payload = payload };
            };
      }
  | proto ->
      {
        eth_src = Mac.zero;
        eth_dst = Mac.zero;
        vlan = Vlan.untagged;
        eth_payload =
          Ip { ip_src = ft.src; ip_dst = ft.dst; ttl = 64; payload = Raw_ip (proto, payload) };
      }

let ip_proto = function
  | Tcp _ -> Proto.Tcp
  | Udp _ -> Proto.Udp
  | Icmp _ -> Proto.Icmp
  | Raw_ip (p, _) -> p

let five_tuple t =
  match t.eth_payload with
  | Raw_eth _ -> None
  | Ip ip ->
      let src_port, dst_port =
        match ip.payload with
        | Tcp tcp -> (tcp.tcp_src, tcp.tcp_dst)
        | Udp udp -> (udp.udp_src, udp.udp_dst)
        | Icmp _ | Raw_ip _ -> (0, 0)
      in
      Some
        (Five_tuple.make ~src:ip.ip_src ~dst:ip.ip_dst ~proto:(ip_proto ip.payload)
           ~src_port ~dst_port)

let proto t =
  match t.eth_payload with Ip ip -> Some (ip_proto ip.payload) | Raw_eth _ -> None

(* --- encoding --- *)

let set16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let set32 b off v =
  let v = Int32.to_int v land 0xffff_ffff in
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let flags_byte f =
  (if f.fin then 1 else 0)
  lor (if f.syn then 2 else 0)
  lor (if f.rst then 4 else 0)
  lor (if f.psh then 8 else 0)
  lor (if f.ack then 16 else 0)
  lor if f.urg then 32 else 0

let encode_tcp tcp =
  let len = 20 + String.length tcp.tcp_payload in
  let b = Bytes.make len '\000' in
  set16 b 0 tcp.tcp_src;
  set16 b 2 tcp.tcp_dst;
  set32 b 4 tcp.seq;
  set32 b 8 tcp.ack_no;
  Bytes.set b 12 (Char.chr (5 lsl 4));
  Bytes.set b 13 (Char.chr (flags_byte tcp.flags));
  set16 b 14 tcp.window;
  Bytes.blit_string tcp.tcp_payload 0 b 20 (String.length tcp.tcp_payload);
  b

let encode_udp udp =
  let len = 8 + String.length udp.udp_payload in
  let b = Bytes.make len '\000' in
  set16 b 0 udp.udp_src;
  set16 b 2 udp.udp_dst;
  set16 b 4 len;
  Bytes.blit_string udp.udp_payload 0 b 8 (String.length udp.udp_payload);
  b

let encode_icmp icmp =
  let len = 4 + String.length icmp.icmp_payload in
  let b = Bytes.make len '\000' in
  Bytes.set b 0 (Char.chr (icmp.icmp_type land 0xff));
  Bytes.set b 1 (Char.chr (icmp.icmp_code land 0xff));
  Bytes.blit_string icmp.icmp_payload 0 b 4 (String.length icmp.icmp_payload);
  (* ICMP checksum covers the whole message. *)
  let csum = Checksum.finish (Checksum.sum (Bytes.unsafe_to_string b) 0 len) in
  set16 b 2 csum;
  b

(* Pseudo-header one's-complement sum for TCP/UDP checksums. *)
let pseudo_sum ~src ~dst ~proto ~len =
  let s = Ipv4.to_int src and d = Ipv4.to_int dst in
  Checksum.add
    (Checksum.add (Checksum.add (s lsr 16) (s land 0xffff))
       (Checksum.add (d lsr 16) (d land 0xffff)))
    (Checksum.add (Proto.to_int proto) len)

let encode_ip ip =
  let proto = ip_proto ip.payload in
  let body =
    match ip.payload with
    | Tcp tcp ->
        let b = encode_tcp tcp in
        let len = Bytes.length b in
        let sum =
          Checksum.add
            (pseudo_sum ~src:ip.ip_src ~dst:ip.ip_dst ~proto ~len)
            (Checksum.sum (Bytes.unsafe_to_string b) 0 len)
        in
        set16 b 16 (Checksum.finish sum);
        b
    | Udp udp ->
        let b = encode_udp udp in
        let len = Bytes.length b in
        let sum =
          Checksum.add
            (pseudo_sum ~src:ip.ip_src ~dst:ip.ip_dst ~proto ~len)
            (Checksum.sum (Bytes.unsafe_to_string b) 0 len)
        in
        let csum = Checksum.finish sum in
        (* RFC 768: a computed zero checksum is transmitted as 0xffff. *)
        set16 b 6 (if csum = 0 then 0xffff else csum);
        b
    | Icmp icmp -> encode_icmp icmp
    | Raw_ip (_, s) -> Bytes.of_string s
  in
  let total = 20 + Bytes.length body in
  let b = Bytes.make total '\000' in
  Bytes.set b 0 (Char.chr ((4 lsl 4) lor 5));
  set16 b 2 total;
  Bytes.set b 8 (Char.chr (ip.ttl land 0xff));
  Bytes.set b 9 (Char.chr (Proto.to_int proto));
  Ipv4.write_bytes ip.ip_src b 12;
  Ipv4.write_bytes ip.ip_dst b 16;
  let hsum = Checksum.finish (Checksum.sum (Bytes.unsafe_to_string b) 0 20) in
  set16 b 10 hsum;
  Bytes.blit body 0 b 20 (Bytes.length body);
  b

let encode t =
  let payload, ethertype =
    match t.eth_payload with
    | Ip ip -> (encode_ip ip, Ethertype.Ipv4)
    | Raw_eth (et, s) -> (Bytes.of_string s, et)
  in
  let tag_len = if Vlan.is_tagged t.vlan then 4 else 0 in
  let total = 14 + tag_len + Bytes.length payload in
  let b = Bytes.make total '\000' in
  Mac.write_bytes t.eth_dst b 0;
  Mac.write_bytes t.eth_src b 6;
  (match Vlan.id t.vlan with
  | Some vid ->
      set16 b 12 (Ethertype.to_int Ethertype.Vlan_tagged);
      set16 b 14 vid;
      set16 b 16 (Ethertype.to_int ethertype)
  | None -> set16 b 12 (Ethertype.to_int ethertype));
  Bytes.blit payload 0 b (14 + tag_len) (Bytes.length payload);
  Bytes.unsafe_to_string b

(* --- decoding --- *)

let ( let* ) = Result.bind

let get16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let get32 s off =
  Int32.logor
    (Int32.shift_left (Int32.of_int (get16 s off)) 16)
    (Int32.of_int (get16 s (off + 2)))

let need s off n what =
  if off + n > String.length s then Error (what ^ ": truncated") else Ok ()

let decode_tcp ~check ~src ~dst s off len =
  let* () = need s off 20 "tcp" in
  if len < 20 then Error "tcp: bad length"
  else
    let data_off = (Char.code s.[off + 12] lsr 4) * 4 in
    if data_off < 20 || data_off > len then Error "tcp: bad data offset"
    else begin
      let* () =
        if not check then Ok ()
        else
          let sum =
            Checksum.add
              (pseudo_sum ~src ~dst ~proto:Proto.Tcp ~len)
              (Checksum.sum s off len)
          in
          if Checksum.finish sum = 0 then Ok () else Error "tcp: bad checksum"
      in
      let fb = Char.code s.[off + 13] in
      Ok
        (Tcp
           {
             tcp_src = get16 s off;
             tcp_dst = get16 s (off + 2);
             seq = get32 s (off + 4);
             ack_no = get32 s (off + 8);
             flags =
               {
                 fin = fb land 1 <> 0;
                 syn = fb land 2 <> 0;
                 rst = fb land 4 <> 0;
                 psh = fb land 8 <> 0;
                 ack = fb land 16 <> 0;
                 urg = fb land 32 <> 0;
               };
             window = get16 s (off + 14);
             tcp_payload = String.sub s (off + data_off) (len - data_off);
           })
    end

let decode_udp ~check ~src ~dst s off len =
  let* () = need s off 8 "udp" in
  let ulen = get16 s (off + 4) in
  if ulen < 8 || ulen > len then Error "udp: bad length"
  else
    let* () =
      if (not check) || get16 s (off + 6) = 0 then Ok ()
      else
        let sum =
          Checksum.add
            (pseudo_sum ~src ~dst ~proto:Proto.Udp ~len:ulen)
            (Checksum.sum s off ulen)
        in
        if Checksum.finish sum = 0 then Ok () else Error "udp: bad checksum"
    in
    Ok
      (Udp
         {
           udp_src = get16 s off;
           udp_dst = get16 s (off + 2);
           udp_payload = String.sub s (off + 8) (ulen - 8);
         })

let decode_icmp ~check s off len =
  let* () = need s off 4 "icmp" in
  let* () =
    if not check then Ok ()
    else if Checksum.finish (Checksum.sum s off len) = 0 then Ok ()
    else Error "icmp: bad checksum"
  in
  Ok
    (Icmp
       {
         icmp_type = Char.code s.[off];
         icmp_code = Char.code s.[off + 1];
         icmp_payload = String.sub s (off + 4) (len - 4);
       })

let decode_ip ~check s off =
  let* () = need s off 20 "ipv4" in
  let vihl = Char.code s.[off] in
  if vihl lsr 4 <> 4 then Error "ipv4: not version 4"
  else
    let ihl = (vihl land 0xf) * 4 in
    if ihl < 20 then Error "ipv4: bad header length"
    else
      let* () = need s off ihl "ipv4 options" in
      let total = get16 s (off + 2) in
      if total < ihl || off + total > String.length s then
        Error "ipv4: bad total length"
      else
        let* () =
          if not check then Ok ()
          else if Checksum.finish (Checksum.sum s off ihl) = 0 then Ok ()
          else Error "ipv4: bad header checksum"
        in
        let src = Ipv4.of_bytes s (off + 12) in
        let dst = Ipv4.of_bytes s (off + 16) in
        let proto = Proto.of_int (Char.code s.[off + 9]) in
        let body_off = off + ihl in
        let body_len = total - ihl in
        let* payload =
          match proto with
          | Proto.Tcp -> decode_tcp ~check ~src ~dst s body_off body_len
          | Proto.Udp -> decode_udp ~check ~src ~dst s body_off body_len
          | Proto.Icmp -> decode_icmp ~check s body_off body_len
          | p -> Ok (Raw_ip (p, String.sub s body_off body_len))
        in
        Ok (Ip { ip_src = src; ip_dst = dst; ttl = Char.code s.[off + 8]; payload })

let decode ?(check = true) s =
  let* () = need s 0 14 "ethernet" in
  let eth_dst = Mac.of_bytes s 0 in
  let eth_src = Mac.of_bytes s 6 in
  let ethertype0 = get16 s 12 in
  let* vlan, ethertype, off =
    if ethertype0 = Ethertype.to_int Ethertype.Vlan_tagged then
      let* () = need s 14 4 "vlan tag" in
      Ok (Vlan.of_id (get16 s 14 land 0xfff), get16 s 16, 18)
    else Ok (Vlan.untagged, ethertype0, 14)
  in
  let* eth_payload =
    if ethertype = Ethertype.to_int Ethertype.Ipv4 then decode_ip ~check s off
    else
      Ok
        (Raw_eth
           (Ethertype.of_int ethertype, String.sub s off (String.length s - off)))
  in
  Ok { eth_src; eth_dst; vlan; eth_payload }

let size t = String.length (encode t)

let equal a b = a = b

let pp ppf t =
  match five_tuple t with
  | Some ft ->
      Format.fprintf ppf "[%a -> %a vlan:%a %a]" Mac.pp t.eth_src Mac.pp
        t.eth_dst Vlan.pp t.vlan Five_tuple.pp ft
  | None ->
      Format.fprintf ppf "[%a -> %a vlan:%a non-ip]" Mac.pp t.eth_src Mac.pp
        t.eth_dst Vlan.pp t.vlan

(** IPv4 addresses (32-bit, stored in an [int]). *)

type t
(** An IPv4 address. The representation is the host-order 32-bit value. *)

val any : t
(** [0.0.0.0]. *)

val broadcast : t
(** [255.255.255.255]. *)

val localhost : t
(** [127.0.0.1]. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_int : int -> t
(** Keeps the low 32 bits. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d]. Each octet is masked to 8 bits. *)

val to_octets : t -> int * int * int * int

val of_string : string -> t
(** Parses dotted-quad notation. @raise Invalid_argument on bad input. *)

val of_string_opt : string -> t option
val to_string : t -> string

val of_bytes : string -> int -> t
(** Reads four big-endian bytes. @raise Invalid_argument out of bounds. *)

val write_bytes : t -> Bytes.t -> int -> unit

val succ : t -> t
(** Next address, wrapping at [255.255.255.255]. *)

val is_multicast : t -> bool
(** True for 224.0.0.0/4. *)

val is_private : t -> bool
(** True for RFC 1918 space (10/8, 172.16/12, 192.168/16). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  proto : Proto.t;
  src_port : int;
  dst_port : int;
}

let check_port p =
  if p < 0 || p > 0xffff then invalid_arg "Five_tuple: port out of range"

let make ~src ~dst ~proto ~src_port ~dst_port =
  check_port src_port;
  check_port dst_port;
  { src; dst; proto; src_port; dst_port }

let tcp ~src ~dst ~src_port ~dst_port =
  make ~src ~dst ~proto:Proto.Tcp ~src_port ~dst_port

let udp ~src ~dst ~src_port ~dst_port =
  make ~src ~dst ~proto:Proto.Udp ~src_port ~dst_port

let reverse t =
  { t with src = t.dst; dst = t.src; src_port = t.dst_port; dst_port = t.src_port }

let to_string t =
  Printf.sprintf "%s %s:%d -> %s:%d" (Proto.to_string t.proto)
    (Ipv4.to_string t.src) t.src_port (Ipv4.to_string t.dst) t.dst_port

let compare a b =
  let c = Ipv4.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Ipv4.compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = Proto.compare a.proto b.proto in
      if c <> 0 then c
      else
        let c = Int.compare a.src_port b.src_port in
        if c <> 0 then c else Int.compare a.dst_port b.dst_port

let equal a b = compare a b = 0

let hash t =
  Hashtbl.hash
    (Ipv4.to_int t.src, Ipv4.to_int t.dst, Proto.to_int t.proto, t.src_port,
     t.dst_port)

let pp ppf t = Format.pp_print_string ppf (to_string t)

lib/baselines/enforcement.mli: Flow_info Format

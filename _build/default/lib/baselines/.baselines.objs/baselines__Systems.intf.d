lib/baselines/systems.mli: Enforcement Idcrypto Identxx

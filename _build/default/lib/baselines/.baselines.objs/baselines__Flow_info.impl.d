lib/baselines/flow_info.ml: Five_tuple Identxx Netcore String

lib/baselines/flow_info.mli: Five_tuple Identxx Netcore

lib/baselines/enforcement.ml: Flow_info Format List

lib/baselines/systems.ml: Enforcement Flow_info Identxx List Pf Result String

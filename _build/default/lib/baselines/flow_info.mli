(** Ground truth about a flow, for comparing enforcement systems.

    Different systems can observe different slices of this record: a
    vanilla firewall sees only the 5-tuple; an Ethane-like controller
    additionally knows the authenticated user behind each address; an
    ident++ controller learns whatever the daemons report (which, for a
    compromised host, may diverge from the truth). *)

open Netcore

type endpoint_truth = {
  user : string option;
  groups : string list;
  app : string option;  (** Application name, e.g. ["skype"]. *)
  version : string option;
  compromised : bool;
      (** The host lies to ident++ and ignores local enforcement. *)
}

val nobody : endpoint_truth

type t = {
  flow : Five_tuple.t;
  src : endpoint_truth;
  dst : endpoint_truth;
  legitimate : bool;
      (** The organisational intent: should this flow be admitted?
          Used to score false allows/denies (experiment E13). *)
}

val make :
  ?src:endpoint_truth -> ?dst:endpoint_truth -> ?legitimate:bool ->
  Five_tuple.t -> t

val endpoint :
  ?user:string -> ?groups:string list -> ?app:string -> ?version:string ->
  ?compromised:bool -> unit -> endpoint_truth

val honest_response : t -> [ `Src | `Dst ] -> Identxx.Response.t option
(** The ident++ response an honest daemon would give for this end
    ([None] when nothing is known about it — e.g. an external host). *)

val reported_response :
  t -> [ `Src | `Dst ] -> claim:Identxx.Key_value.section ->
  Identxx.Response.t option
(** What the controller actually receives: the honest response, unless
    the end is compromised, in which case [claim] replaces the truth. *)

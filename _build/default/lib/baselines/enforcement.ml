type t = { name : string; admits : Flow_info.t -> bool }

type score = {
  total : int;
  admitted : int;
  false_allows : int;
  false_denies : int;
}

let score t flows =
  List.fold_left
    (fun acc (fi : Flow_info.t) ->
      let admitted = t.admits fi in
      {
        total = acc.total + 1;
        admitted = (acc.admitted + if admitted then 1 else 0);
        false_allows =
          (acc.false_allows + if admitted && not fi.legitimate then 1 else 0);
        false_denies =
          (acc.false_denies + if (not admitted) && fi.legitimate then 1 else 0);
      })
    { total = 0; admitted = 0; false_allows = 0; false_denies = 0 }
    flows

let accuracy s =
  if s.total = 0 then 1.0
  else float_of_int (s.total - s.false_allows - s.false_denies) /. float_of_int s.total

let pp_score ppf s =
  Format.fprintf ppf "total=%d admitted=%d false-allow=%d false-deny=%d acc=%.3f"
    s.total s.admitted s.false_allows s.false_denies (accuracy s)

let ( let* ) = Result.bind

let compile policy = Pf.Env.of_string policy

let no_with_clauses env =
  if List.exists (fun (r : Pf.Ast.rule) -> r.conds <> []) (Pf.Env.rules env)
  then Error "vanilla firewall policies cannot use 'with' clauses"
  else Ok ()

let only_identity_keys env =
  let ok_key k = k = Identxx.Key_value.user_id || k = Identxx.Key_value.group_id in
  let arg_ok = function
    | Pf.Ast.Dict_access { dict = "src" | "dst"; key; _ } -> ok_key key
    | Pf.Ast.Dict_access _ | Pf.Ast.Macro_ref _ | Pf.Ast.Lit _ -> true
  in
  let rule_ok (r : Pf.Ast.rule) =
    List.for_all (fun (fc : Pf.Ast.funcall) -> List.for_all arg_ok fc.args) r.conds
  in
  if List.for_all rule_ok (Pf.Env.rules env) then Ok ()
  else Error "an Ethane-like policy can only reference userID/groupID"

let eval_bool env ctx flow =
  match Pf.Eval.eval env ctx flow with
  | Ok v -> v.Pf.Eval.decision = Pf.Ast.Pass
  | Error _ -> false

let vanilla ~policy =
  let* env = compile policy in
  let* () = no_with_clauses env in
  Ok
    {
      Enforcement.name = "vanilla";
      admits = (fun fi -> eval_bool env (Pf.Eval.ctx ()) fi.Flow_info.flow);
    }

(* What the network itself knows under Ethane: the authenticated user
   behind each address. Compromise does not forge another user's
   binding (§5.4). *)
let binding_response flow (e : Flow_info.endpoint_truth) =
  let pairs =
    (match e.user with
    | Some u -> [ Identxx.Key_value.pair Identxx.Key_value.user_id u ]
    | None -> [])
    @
    match e.groups with
    | [] -> []
    | gs ->
        [ Identxx.Key_value.pair Identxx.Key_value.group_id (String.concat "," gs) ]
  in
  match pairs with
  | [] -> None
  | section -> Some (Identxx.Response.make ~flow [ section ])

let ethane ~policy =
  let* env = compile policy in
  let* () = only_identity_keys env in
  Ok
    {
      Enforcement.name = "ethane";
      admits =
        (fun fi ->
          let ctx =
            Pf.Eval.ctx
              ?src:(binding_response fi.Flow_info.flow fi.Flow_info.src)
              ?dst:(binding_response fi.Flow_info.flow fi.Flow_info.dst)
              ()
          in
          eval_bool env ctx fi.Flow_info.flow);
    }

let distributed ~policy =
  let* env = compile policy in
  Ok
    {
      Enforcement.name = "distributed";
      admits =
        (fun fi ->
          (* Enforcement lives on the receiving host: if it is
             compromised, nothing is enforced (§6). *)
          if fi.Flow_info.dst.compromised then true
          else
            let ctx =
              Pf.Eval.ctx ?dst:(Flow_info.honest_response fi `Dst) ()
            in
            eval_bool env ctx fi.Flow_info.flow);
    }

let default_claim =
  [
    Identxx.Key_value.pair Identxx.Key_value.user_id "system";
    Identxx.Key_value.pair Identxx.Key_value.group_id "users";
    Identxx.Key_value.pair Identxx.Key_value.app_name "http";
    Identxx.Key_value.pair "app-name" "http";
    Identxx.Key_value.pair Identxx.Key_value.version "999";
  ]

let identxx ?(attacker_claim = default_claim) ?keystore ~policy () =
  let* env = compile policy in
  Ok
    {
      Enforcement.name = "identxx";
      admits =
        (fun fi ->
          let ctx =
            Pf.Eval.ctx
              ?src:(Flow_info.reported_response fi `Src ~claim:attacker_claim)
              ?dst:(Flow_info.reported_response fi `Dst ~claim:attacker_claim)
              ?keystore ()
          in
          eval_bool env ctx fi.Flow_info.flow);
    }

let get = function Ok v -> v | Error e -> invalid_arg e

let vanilla_exn ~policy = get (vanilla ~policy)
let ethane_exn ~policy = get (ethane ~policy)
let distributed_exn ~policy = get (distributed ~policy)

let identxx_exn ?attacker_claim ?keystore ~policy () =
  get (identxx ?attacker_claim ?keystore ~policy ())

(** A uniform interface over enforcement systems so benchmarks and the
    §5 security-comparison experiment drive them interchangeably. *)

type t = {
  name : string;
  admits : Flow_info.t -> bool;
      (** Does a packet of this flow reach its destination? This folds
          in both the policy decision and the system's structural
          weaknesses (e.g. a distributed firewall on a compromised
          receiving host enforces nothing). *)
}

type score = {
  total : int;
  admitted : int;
  false_allows : int;  (** Admitted but not legitimate. *)
  false_denies : int;  (** Legitimate but denied. *)
}

val score : t -> Flow_info.t list -> score
val accuracy : score -> float
(** Fraction of flows decided according to intent. *)

val pp_score : Format.formatter -> score -> unit

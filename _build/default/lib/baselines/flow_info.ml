open Netcore

type endpoint_truth = {
  user : string option;
  groups : string list;
  app : string option;
  version : string option;
  compromised : bool;
}

let nobody =
  { user = None; groups = []; app = None; version = None; compromised = false }

type t = {
  flow : Five_tuple.t;
  src : endpoint_truth;
  dst : endpoint_truth;
  legitimate : bool;
}

let make ?(src = nobody) ?(dst = nobody) ?(legitimate = true) flow =
  { flow; src; dst; legitimate }

let endpoint ?user ?(groups = []) ?app ?version ?(compromised = false) () =
  { user; groups; app; version; compromised }

let truth_section (e : endpoint_truth) =
  let opt key = function
    | Some v -> [ Identxx.Key_value.pair key v ]
    | None -> []
  in
  opt Identxx.Key_value.user_id e.user
  @ (match e.groups with
    | [] -> []
    | gs -> [ Identxx.Key_value.pair Identxx.Key_value.group_id (String.concat "," gs) ])
  @ opt Identxx.Key_value.app_name e.app
  @ opt "app-name" e.app
  @ opt Identxx.Key_value.version e.version

let end_of t = function `Src -> t.src | `Dst -> t.dst

let honest_response t side =
  let e = end_of t side in
  match truth_section e with
  | [] -> None
  | section -> Some (Identxx.Response.make ~flow:t.flow [ section ])

let reported_response t side ~claim =
  let e = end_of t side in
  if e.compromised then Some (Identxx.Response.make ~flow:t.flow [ claim ])
  else honest_response t side

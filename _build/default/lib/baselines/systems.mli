(** The enforcement systems compared in §5 and §6, all expressed over
    the same PF engine but with each system's characteristic information
    and structural limits:

    - {b vanilla}: a stateful 5-tuple packet filter. Policies may use
      only network primitives (no [with] clauses).
    - {b Ethane-like}: centralized control with authenticated user
      bindings, but no application-level information (§6): policies may
      reference [userID]/[groupID], which the network itself knows and a
      lying daemon cannot spoof — but nothing else.
    - {b distributed firewall}: policy evaluated at the receiving
      end-host with full local knowledge; a compromised receiver
      enforces nothing, and every packet reaches the host before being
      judged (§6's critique).
    - {b ident++}: the full system; the controller sees whatever the
      daemons report, so a compromised end may substitute an arbitrary
      claim. *)

val vanilla : policy:string -> (Enforcement.t, string) result
(** @return [Error] if the policy fails to parse or uses [with]. *)

val ethane : policy:string -> (Enforcement.t, string) result
(** The policy may use [with] clauses over [userID]/[groupID] only. *)

val distributed : policy:string -> (Enforcement.t, string) result

val identxx :
  ?attacker_claim:Identxx.Key_value.section ->
  ?keystore:Idcrypto.Sign.keystore ->
  policy:string ->
  unit ->
  (Enforcement.t, string) result
(** [attacker_claim] is the section a compromised end reports in place
    of the truth (default: claims to be the [system] user running an
    innocuous app). *)

val vanilla_exn : policy:string -> Enforcement.t
val ethane_exn : policy:string -> Enforcement.t
val distributed_exn : policy:string -> Enforcement.t

val identxx_exn :
  ?attacker_claim:Identxx.Key_value.section ->
  ?keystore:Idcrypto.Sign.keystore ->
  policy:string ->
  unit ->
  Enforcement.t

lib/workload/arrivals.mli: Baselines Five_tuple Netcore Population Sim

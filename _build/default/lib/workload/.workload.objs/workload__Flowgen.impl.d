lib/workload/flowgen.ml: Array Baselines Five_tuple Ipv4 List Netcore Population Prefix Sim

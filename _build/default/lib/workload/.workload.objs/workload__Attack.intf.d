lib/workload/attack.mli: Baselines Ipv4 Netcore Population

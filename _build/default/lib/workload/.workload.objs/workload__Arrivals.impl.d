lib/workload/arrivals.ml: Baselines Float Flowgen List Sim

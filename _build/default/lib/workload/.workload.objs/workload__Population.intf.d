lib/workload/population.mli: Ipv4 Netcore Prefix

lib/workload/attack.ml: Array Baselines Five_tuple Ipv4 List Netcore Population

lib/workload/population.ml: Array Ipv4 List Netcore Prefix Printf

lib/workload/flowgen.mli: Baselines Five_tuple Netcore Population Sim

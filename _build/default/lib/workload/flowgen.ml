open Netcore
module FI = Baselines.Flow_info

let zipf_pick prng ~n =
  if n <= 0 then invalid_arg "Flowgen.zipf_pick: n must be positive";
  (* Inverse-CDF over harmonic weights; fine for the n (<= a few
     thousand) used in experiments. *)
  let h = ref 0.0 in
  for k = 1 to n do
    h := !h +. (1.0 /. float_of_int k)
  done;
  let u = Sim.Prng.float prng !h in
  let rec go k acc =
    if k > n then n - 1
    else
      let acc = acc +. (1.0 /. float_of_int k) in
      if u <= acc then k - 1 else go (k + 1) acc
  in
  go 1 0.0

let important_ip population = (Population.important_server population).Population.ip

let intent_of population (fi : FI.t) =
  let is_important = Ipv4.equal fi.flow.Five_tuple.dst (important_ip population) in
  let src_internal = Prefix.mem fi.flow.Five_tuple.src Population.lan_prefix in
  match fi.src.FI.app with
  | None -> false (* external or unattributable sources may not initiate *)
  | Some app ->
      let { Population.approved; _ } = Population.app_named app in
      if not src_internal then false
      else if app = "skype" then not is_important
      else approved

(* The default intent closes over a canonical population: only the
   important server's address matters, and it is fixed (10.1.0.1). *)
let intent_default fi =
  intent_of (Population.create ~clients:1 ~servers:1 ()) fi

let intent_of_population population fi = intent_of population fi

let endpoint_of_host (h : Population.host) ~app ~version =
  FI.endpoint ~user:h.Population.user ~groups:h.Population.groups ?app ?version ()

let ephemeral prng = 49152 + Sim.Prng.int prng 16000

let mixed ?(intent = intent_default) ~prng ~population ~count () =
  let clients = Population.clients population in
  let servers = Population.servers population in
  let apps = Array.of_list Population.catalog in
  let pick_app () =
    (* Weight toward approved interactive apps but keep the full mix. *)
    let a = Sim.Prng.pick prng apps in
    if (not a.Population.approved) && Sim.Prng.bool prng then
      Sim.Prng.pick prng apps
    else a
  in
  let make_flow i =
    let kind = Sim.Prng.int prng 10 in
    if kind < 7 then begin
      (* Client to server. *)
      let c = Sim.Prng.pick prng clients in
      let s = servers.(zipf_pick prng ~n:(Array.length servers)) in
      let app = pick_app () in
      let flow =
        Five_tuple.tcp ~src:c.Population.ip ~dst:s.Population.ip
          ~src_port:(ephemeral prng) ~dst_port:app.Population.app_port
      in
      FI.make
        ~src:(endpoint_of_host c ~app:(Some app.Population.app_name) ~version:(Some "210"))
        ~dst:(endpoint_of_host s ~app:(Some "server") ~version:None)
        flow
    end
    else if kind < 9 then begin
      (* Client to client: the peer-to-peer (skype) case. *)
      let a = Sim.Prng.pick prng clients in
      let b = Sim.Prng.pick prng clients in
      let flow =
        Five_tuple.tcp ~src:a.Population.ip ~dst:b.Population.ip
          ~src_port:(ephemeral prng) ~dst_port:80
      in
      FI.make
        ~src:(endpoint_of_host a ~app:(Some "skype") ~version:(Some "210"))
        ~dst:(endpoint_of_host b ~app:(Some "skype") ~version:(Some "210"))
        flow
    end
    else begin
      (* Internet to server. *)
      let s = Sim.Prng.pick prng servers in
      let flow =
        Five_tuple.tcp ~src:(Population.external_ip i) ~dst:s.Population.ip
          ~src_port:(ephemeral prng) ~dst_port:80
      in
      FI.make ~src:FI.nobody
        ~dst:(endpoint_of_host s ~app:(Some "server") ~version:None)
        flow
    end
  in
  List.init count (fun i ->
      let fi = make_flow i in
      { fi with FI.legitimate = intent fi })

let uniform_tuples ~prng ~population ~count =
  let clients = Population.clients population in
  let servers = Population.servers population in
  List.init count (fun _ ->
      let c = Sim.Prng.pick prng clients in
      let s = Sim.Prng.pick prng servers in
      Five_tuple.tcp ~src:c.Population.ip ~dst:s.Population.ip
        ~src_port:(ephemeral prng)
        ~dst_port:(if Sim.Prng.bool prng then 80 else 443))

let distinct_tuples ~population ~count =
  let clients = Population.clients population in
  let servers = Population.servers population in
  List.init count (fun i ->
      let c = clients.(i mod Array.length clients) in
      let s = servers.(i mod Array.length servers) in
      Five_tuple.tcp ~src:c.Population.ip ~dst:s.Population.ip
        ~src_port:(10000 + (i mod 50000))
        ~dst_port:(80 + (i / 50000)))

(** Time-stamped flow arrival processes, for driving the simulator with
    realistic load instead of lock-step injection. Deterministic given
    the generator. *)

open Netcore

val poisson :
  prng:Sim.Prng.t ->
  population:Population.t ->
  rate_per_s:float ->
  duration:Sim.Time.t ->
  (Sim.Time.t * Baselines.Flow_info.t) list
(** Flows from {!Flowgen.mixed}-style traffic with exponential
    inter-arrival gaps of mean [1/rate_per_s], timestamped in
    [0, duration). Sorted by time. *)

val bursty :
  prng:Sim.Prng.t ->
  population:Population.t ->
  on_rate_per_s:float ->
  burst:Sim.Time.t ->
  idle:Sim.Time.t ->
  duration:Sim.Time.t ->
  (Sim.Time.t * Baselines.Flow_info.t) list
(** On/off traffic: Poisson arrivals at [on_rate_per_s] during [burst]
    periods, silence during [idle] periods, alternating from time 0. *)

val inject :
  engine:Sim.Engine.t ->
  send:(Five_tuple.t -> unit) ->
  (Sim.Time.t * Baselines.Flow_info.t) list ->
  unit
(** Schedule each arrival's first packet on the engine (relative to the
    current simulated time). *)

open Netcore

type app = { app_name : string; app_port : int; approved : bool }

let catalog =
  [
    { app_name = "firefox"; app_port = 80; approved = true };
    { app_name = "skype"; app_port = 80; approved = false };
    { app_name = "ssh"; app_port = 22; approved = true };
    { app_name = "thunderbird"; app_port = 25; approved = true };
    { app_name = "telnet"; app_port = 23; approved = false };
    { app_name = "research-app"; app_port = 7777; approved = false };
  ]

let app_named name = List.find (fun a -> a.app_name = name) catalog

type host = {
  name : string;
  ip : Ipv4.t;
  user : string;
  groups : string list;
  role : [ `Client | `Server ];
}

type t = { clients : host array; servers : host array }

let group_cycle = [| [ "staff" ]; [ "research"; "staff" ]; [ "eng"; "staff" ] |]

let create ?(seed = 1) ~clients ~servers () =
  ignore seed;
  if clients < 1 || servers < 1 then
    invalid_arg "Population.create: need at least one client and one server";
  let client i =
    {
      name = Printf.sprintf "c%d" i;
      ip = Ipv4.of_octets 10 0 (1 + (i / 250)) (1 + (i mod 250));
      user = Printf.sprintf "u%d" i;
      groups = group_cycle.(i mod Array.length group_cycle);
      role = `Client;
    }
  in
  let server i =
    {
      name = Printf.sprintf "srv%d" i;
      ip = Ipv4.of_octets 10 1 0 (1 + i);
      user = "system";
      groups = [ "services" ];
      role = `Server;
    }
  in
  {
    clients = Array.init clients client;
    servers = Array.init servers server;
  }

let clients t = t.clients
let servers t = t.servers
let all t = Array.append t.clients t.servers

let host_by_ip t ip =
  let find arr =
    Array.fold_left
      (fun acc h -> if Ipv4.equal h.ip ip then Some h else acc)
      None arr
  in
  match find t.clients with Some h -> Some h | None -> find t.servers

let important_server t = t.servers.(0)
let lan_prefix = Prefix.of_string "10.0.0.0/8"

let external_ip i =
  Ipv4.of_octets 198 51 (i / 250 mod 250) (1 + (i mod 250))

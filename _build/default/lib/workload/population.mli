(** Synthetic enterprise populations: hosts with addresses, users,
    groups and installed applications. Deterministic given a seed, so
    experiments are reproducible (DESIGN.md §2: stands in for the real
    enterprise traffic the paper's setting assumes). *)

open Netcore

type app = {
  app_name : string;
  app_port : int;  (** The destination port the app's flows use. *)
  approved : bool;  (** Is the app on the administrator's allow list? *)
}

val catalog : app list
(** The built-in application mix. Includes [skype] on port 80 — the
    paper's §1 motivating example of port-number aliasing with web
    traffic. *)

val app_named : string -> app
(** @raise Not_found for unknown names. *)

type host = {
  name : string;
  ip : Ipv4.t;
  user : string;
  groups : string list;
  role : [ `Client | `Server ];
}

type t

val create : ?seed:int -> clients:int -> servers:int -> unit -> t
(** Clients get 10.0.x.y addresses, servers 10.1.0.s. Users are
    [u<i>]; groups cycle through staff/research/eng; server processes
    run as [system] in group [services]. *)

val clients : t -> host array
val servers : t -> host array
val all : t -> host array
val host_by_ip : t -> Ipv4.t -> host option
val important_server : t -> host
(** The first server — the "important webserver" of §1. *)

val lan_prefix : Prefix.t
(** 10.0.0.0/8: everything the population occupies. *)

val external_ip : int -> Ipv4.t
(** Deterministic Internet addresses (198.51.x.y test range). *)

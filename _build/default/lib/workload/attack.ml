open Netcore
module FI = Baselines.Flow_info

let worm_scan ~from ~targets ?(port = 445) ?(claim_app = "Server") () =
  Array.to_list targets
  |> List.filter (fun (t : Population.host) ->
         not (Ipv4.equal t.Population.ip from.Population.ip))
  |> List.mapi (fun i (t : Population.host) ->
         let flow =
           Five_tuple.tcp ~src:from.Population.ip ~dst:t.Population.ip
             ~src_port:(40000 + (i mod 20000))
             ~dst_port:port
         in
         FI.make ~legitimate:false
           ~src:
             (FI.endpoint ~user:from.Population.user
                ~groups:from.Population.groups ~app:claim_app
                ~compromised:true ())
           ~dst:
             (FI.endpoint ~user:t.Population.user ~groups:t.Population.groups
                ~app:"Server" ())
           flow)

let reachable_pairs enforcement ~population ~compromised ?(claimed_user = "system")
    ?(port = 445) () =
  ignore claimed_user;
  let hosts = Population.all population in
  let is_compromised ip = List.exists (Ipv4.equal ip) compromised in
  let count = ref 0 in
  Array.iter
    (fun (src : Population.host) ->
      Array.iter
        (fun (dst : Population.host) ->
          if not (Ipv4.equal src.Population.ip dst.Population.ip) then begin
            let flow =
              Five_tuple.tcp ~src:src.Population.ip ~dst:dst.Population.ip
                ~src_port:50000 ~dst_port:port
            in
            let fi =
              FI.make ~legitimate:false
                ~src:
                  (FI.endpoint ~user:src.Population.user
                     ~groups:src.Population.groups ~app:"Server"
                     ~compromised:(is_compromised src.Population.ip) ())
                ~dst:
                  (FI.endpoint ~user:dst.Population.user
                     ~groups:dst.Population.groups ~app:"Server"
                     ~compromised:(is_compromised dst.Population.ip) ())
                flow
            in
            if enforcement.Baselines.Enforcement.admits fi then incr count
          end)
        hosts)
    hosts;
  !count

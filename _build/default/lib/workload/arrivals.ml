let flows_at ~prng ~population times =
  let n = List.length times in
  let flows = Flowgen.mixed ~prng ~population ~count:n () in
  List.map2 (fun at fi -> (at, fi)) times flows

let poisson ~prng ~population ~rate_per_s ~duration =
  if rate_per_s <= 0.0 then invalid_arg "Arrivals.poisson: rate must be positive";
  let mean_gap = 1.0 /. rate_per_s in
  let rec gaps t acc =
    let t = t +. Sim.Prng.exponential prng ~mean:mean_gap in
    if t >= Sim.Time.to_float_s duration then List.rev acc
    else gaps t (Sim.Time.of_float_s t :: acc)
  in
  flows_at ~prng ~population (gaps 0.0 [])

let bursty ~prng ~population ~on_rate_per_s ~burst ~idle ~duration =
  if on_rate_per_s <= 0.0 then
    invalid_arg "Arrivals.bursty: rate must be positive";
  let period = Sim.Time.to_float_s (Sim.Time.add burst idle) in
  let burst_s = Sim.Time.to_float_s burst in
  let mean_gap = 1.0 /. on_rate_per_s in
  (* Walk absolute time; skip over idle periods. *)
  let rec gaps t acc =
    let t = t +. Sim.Prng.exponential prng ~mean:mean_gap in
    let in_period = Float.rem t period in
    let t = if in_period < burst_s then t else t -. in_period +. period in
    if t >= Sim.Time.to_float_s duration then List.rev acc
    else gaps t (Sim.Time.of_float_s t :: acc)
  in
  flows_at ~prng ~population (gaps 0.0 [])

let inject ~engine ~send arrivals =
  List.iter
    (fun ((at : Sim.Time.t), (fi : Baselines.Flow_info.t)) ->
      Sim.Engine.schedule engine ~delay:at (fun () -> send fi.Baselines.Flow_info.flow))
    arrivals

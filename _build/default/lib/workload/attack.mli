(** Attack traffic generators for the security experiments (E5, E8). *)

open Netcore

val worm_scan :
  from:Population.host ->
  targets:Population.host array ->
  ?port:int ->
  ?claim_app:string ->
  unit ->
  Baselines.Flow_info.t list
(** A Conficker-style scan (§4, Figure 8): the compromised [from] host
    probes every target on [port] (default 445), its daemon claiming to
    be [claim_app] (default ["Server"]). All flows are illegitimate. *)

val reachable_pairs :
  Baselines.Enforcement.t ->
  population:Population.t ->
  compromised:Ipv4.t list ->
  ?claimed_user:string ->
  ?port:int ->
  unit ->
  int
(** §5's damage metric: over every ordered (src, dst) host pair, how
    many flows does the system admit when the [compromised] hosts lie
    (claiming [claimed_user], default "system") and the rest are honest?
    Lower is better. *)

(** Flow generators over a {!Population}: labelled {!Baselines.Flow_info}
    streams for the decision-quality experiments, and raw 5-tuple
    streams for the performance benchmarks. All deterministic given the
    generator. *)

open Netcore

val intent_default : Baselines.Flow_info.t -> bool
(** The organisational intent used throughout the experiments, the §1
    motivating scenario: approved applications may talk; [skype] may
    talk {e except} to the important webserver (10.1.0.1); unapproved
    apps and external sources may not reach servers. *)

val intent_of_population : Population.t -> Baselines.Flow_info.t -> bool
(** The same intent, parameterised by the population whose first server
    is the "important" one. *)

val mixed :
  ?intent:(Baselines.Flow_info.t -> bool) ->
  prng:Sim.Prng.t ->
  population:Population.t ->
  count:int ->
  unit ->
  Baselines.Flow_info.t list
(** Client-to-server flows with apps drawn from the catalog (weighted
    toward approved apps), servers drawn Zipf-style (popular servers
    get more flows), plus a sprinkle of client-to-client (skype) and
    Internet-to-server flows. The [legitimate] label is [intent]
    applied {e after} construction, so scoring is consistent across
    systems. *)

val uniform_tuples :
  prng:Sim.Prng.t -> population:Population.t -> count:int -> Five_tuple.t list
(** Plain uniform random client-to-server 5-tuples (for datapath and
    policy-evaluation throughput benchmarks). *)

val distinct_tuples :
  population:Population.t -> count:int -> Five_tuple.t list
(** [count] pairwise-distinct 5-tuples, round-robin over the population
    (for flow-table scaling benchmarks). *)

val zipf_pick : Sim.Prng.t -> n:int -> int
(** Zipf(s=1)-distributed index in [0, n): index 0 is most popular. *)

(** The OpenFlow 10-tuple flow match (§3.1 of the paper): ingress port,
    MAC source/destination, Ethernet type, VLAN id, IP source/destination,
    IP protocol, transport source/destination ports. Every field may be
    wildcarded; IP addresses wildcard by CIDR prefix as in OpenFlow 1.0. *)

open Netcore

type t = {
  in_port : int option;
  dl_src : Mac.t option;
  dl_dst : Mac.t option;
  dl_type : Ethertype.t option;
  dl_vlan : Vlan.t option;
  nw_src : Prefix.t option;
  nw_dst : Prefix.t option;
  nw_proto : Proto.t option;
  tp_src : int option;
  tp_dst : int option;
}

val any : t
(** All fields wildcarded; matches every packet. *)

val exact : in_port:int -> Packet.t -> t
(** The fully-specified match for a concrete packet as seen on a port —
    what a controller installs to cache a per-flow decision. *)

val of_five_tuple : Five_tuple.t -> t
(** Match on the ident++ 5-tuple only (layer-2 fields wildcarded). *)

val matches : t -> in_port:int -> Packet.t -> bool

val covers : t -> t -> bool
(** [covers general specific]: every packet matched by [specific] is
    matched by [general]. Conservative for prefix fields (exact CIDR
    subset test). *)

val is_exact : t -> bool
(** No wildcards (addresses must be /32). *)

val wildcard_count : t -> int
(** Number of wildcarded fields, 0–10. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type t = {
  fields : Match_fields.t;
  priority : int;
  actions : Action.t list;
  idle_timeout : Sim.Time.t option;
  hard_timeout : Sim.Time.t option;
  cookie : int;
  installed_at : Sim.Time.t;
  mutable last_hit : Sim.Time.t;
  mutable packets : int;
  mutable bytes : int;
}

let make ?(priority = 0x8000) ?idle_timeout ?hard_timeout ?(cookie = 0)
    ?(installed_at = Sim.Time.zero) ~fields actions =
  {
    fields;
    priority;
    actions;
    idle_timeout;
    hard_timeout;
    cookie;
    installed_at;
    last_hit = installed_at;
    packets = 0;
    bytes = 0;
  }

let hit t ~now ~size =
  t.last_hit <- now;
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + size

let expired t ~now =
  let past base = function
    | None -> false
    | Some timeout -> Sim.Time.compare now (Sim.Time.add base timeout) > 0
  in
  past t.last_hit t.idle_timeout || past t.installed_at t.hard_timeout

let pp ppf t =
  Format.fprintf ppf "prio=%d %a -> %a (pkts=%d bytes=%d)" t.priority
    Match_fields.pp t.fields Action.pp_list t.actions t.packets t.bytes

open Netcore

type switch_id = int

type packet_in = {
  dpid : switch_id;
  in_port : int;
  reason : [ `No_match | `Action ];
  packet : Packet.t;
}

type flow_mod_command = Add | Delete | Delete_strict

type flow_mod = {
  command : flow_mod_command;
  fields : Match_fields.t;
  priority : int;
  actions : Action.t list;
  idle_timeout : Sim.Time.t option;
  hard_timeout : Sim.Time.t option;
  cookie : int;
}

type packet_out = {
  out_packet : Packet.t;
  out_port : [ `Port of int | `Flood | `Table ];
}

type flow_stat = {
  st_fields : Match_fields.t;
  st_priority : int;
  st_packets : int;
  st_bytes : int;
  st_age : Sim.Time.t;
}

type stats_reply = {
  st_dpid : switch_id;
  st_xid : int;
  st_flows : flow_stat list;
  st_lookups : int;
  st_matched : int;
}

type to_controller = Packet_in of packet_in | Stats_reply of stats_reply

type to_switch =
  | Flow_mod of flow_mod
  | Packet_out of packet_out
  | Stats_request of { xid : int }
  | Barrier

let add_flow ?(priority = 0x8000) ?idle_timeout ?hard_timeout ?(cookie = 0)
    ~fields actions =
  Flow_mod
    { command = Add; fields; priority; actions; idle_timeout; hard_timeout; cookie }

let delete_flow ~fields =
  Flow_mod
    {
      command = Delete;
      fields;
      priority = 0;
      actions = [];
      idle_timeout = None;
      hard_timeout = None;
      cookie = 0;
    }

let pp_to_controller ppf = function
  | Packet_in p ->
      Format.fprintf ppf "packet-in dpid=%d port=%d %a" p.dpid p.in_port
        Packet.pp p.packet
  | Stats_reply r ->
      Format.fprintf ppf "stats-reply dpid=%d xid=%d flows=%d lookups=%d matched=%d"
        r.st_dpid r.st_xid (List.length r.st_flows) r.st_lookups r.st_matched

let pp_to_switch ppf = function
  | Flow_mod fm ->
      let cmd =
        match fm.command with
        | Add -> "add"
        | Delete -> "del"
        | Delete_strict -> "del-strict"
      in
      Format.fprintf ppf "flow-mod %s prio=%d %a -> %a" cmd fm.priority
        Match_fields.pp fm.fields Action.pp_list fm.actions
  | Packet_out po ->
      let dest =
        match po.out_port with
        | `Port p -> string_of_int p
        | `Flood -> "flood"
        | `Table -> "table"
      in
      Format.fprintf ppf "packet-out port=%s %a" dest Packet.pp po.out_packet
  | Stats_request { xid } -> Format.fprintf ppf "stats-request xid=%d" xid
  | Barrier -> Format.pp_print_string ppf "barrier"

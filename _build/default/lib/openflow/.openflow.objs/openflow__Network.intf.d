lib/openflow/network.mli: Ipv4 Mac Message Netcore Packet Sim Switch Topology

lib/openflow/flow_entry.mli: Action Format Match_fields Sim

lib/openflow/message.mli: Action Format Match_fields Netcore Packet Sim

lib/openflow/match_fields.ml: Ethertype Five_tuple Format Fun Int List Mac Netcore Packet Prefix Proto Stdlib String Vlan

lib/openflow/network.ml: Format Hashtbl Int Ipv4 List Mac Message Netcore Option Packet Pcap Sim Switch Topology

lib/openflow/topology.ml: Format Hashtbl List Map Message Option Printf Sim Stdlib

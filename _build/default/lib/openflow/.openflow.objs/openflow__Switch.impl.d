lib/openflow/switch.ml: Action Flow_entry Flow_table Format Int List Message Netcore Packet Sim String

lib/openflow/action.mli: Format

lib/openflow/switch.mli: Flow_table Format Message Netcore Packet Sim

lib/openflow/message.ml: Action Format List Match_fields Netcore Packet Sim

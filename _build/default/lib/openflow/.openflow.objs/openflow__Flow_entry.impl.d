lib/openflow/flow_entry.ml: Action Format Match_fields Sim

lib/openflow/action.ml: Format List

lib/openflow/topology.mli: Format Message Sim

lib/openflow/match_fields.mli: Ethertype Five_tuple Format Mac Netcore Packet Prefix Proto Vlan

lib/openflow/flow_table.mli: Flow_entry Format Match_fields Netcore Packet Sim

lib/openflow/flow_table.ml: Five_tuple Flow_entry Format Hashtbl List Match_fields Netcore Option Packet Prefix Sim

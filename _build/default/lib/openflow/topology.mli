(** The network graph: switches and hosts joined by point-to-point links
    with latencies, plus shortest-path routing used by controllers to
    install entries "along the path" (Figure 1, step 4). *)

type node = Sw of Message.switch_id | Host of string

type endpoint = { node : node; port : int }

type link = { a : endpoint; b : endpoint; latency : Sim.Time.t }

type t

val create : unit -> t
val add_switch : t -> Message.switch_id -> unit
val add_host : t -> string -> unit

val link :
  t -> ?latency:Sim.Time.t -> node * int -> node * int -> unit
(** Bidirectional link between two (node, port) endpoints. Default
    latency is 10us. @raise Invalid_argument if either endpoint's node
    is unknown or the port is already wired. *)

val switches : t -> Message.switch_id list
val hosts : t -> string list
val links : t -> link list

val peer : t -> node -> int -> endpoint option
(** What is connected at this node's port. *)

val host_attachment : t -> string -> endpoint option
(** The switch endpoint a host hangs off ([None] if unattached). The
    returned endpoint is the {e switch side}: its node is the switch and
    its port the switch port facing the host. *)

val switch_path :
  t -> src:string -> dst:string -> (Message.switch_id * int * int) list option
(** Hop-by-hop switch path from host [src] to host [dst], as
    [(dpid, in_port, out_port)] triples — exactly what a controller
    needs to install a flow along the path. [None] when unreachable.
    Minimizes total link latency (Dijkstra). *)

val next_hop : t -> from:Message.switch_id -> dst_host:string -> int option
(** The output port at switch [from] on a shortest path toward
    [dst_host]; [None] when unreachable. Used by transit controllers to
    forward intercepted ident++ packets hop by hop (§3.4). *)

val node_to_string : node -> string
val pp : Format.formatter -> t -> unit

type node = Sw of Message.switch_id | Host of string
type endpoint = { node : node; port : int }
type link = { a : endpoint; b : endpoint; latency : Sim.Time.t }

module Node_map = Map.Make (struct
  type t = node

  let compare = Stdlib.compare
end)

type t = {
  mutable nodes : unit Node_map.t;
  mutable links : link list;
  (* (node, port) -> far endpoint + latency, both directions. *)
  wiring : (node * int, endpoint * Sim.Time.t) Hashtbl.t;
}

let create () = { nodes = Node_map.empty; links = []; wiring = Hashtbl.create 64 }

let add_node t n =
  if Node_map.mem n t.nodes then
    invalid_arg "Topology: duplicate node";
  t.nodes <- Node_map.add n () t.nodes

let add_switch t dpid = add_node t (Sw dpid)
let add_host t name = add_node t (Host name)

let node_to_string = function
  | Sw d -> Printf.sprintf "s%d" d
  | Host h -> h

let link t ?(latency = Sim.Time.us 10) (na, pa) (nb, pb) =
  if not (Node_map.mem na t.nodes) then
    invalid_arg ("Topology.link: unknown node " ^ node_to_string na);
  if not (Node_map.mem nb t.nodes) then
    invalid_arg ("Topology.link: unknown node " ^ node_to_string nb);
  if Hashtbl.mem t.wiring (na, pa) then
    invalid_arg
      (Printf.sprintf "Topology.link: %s port %d already wired"
         (node_to_string na) pa);
  if Hashtbl.mem t.wiring (nb, pb) then
    invalid_arg
      (Printf.sprintf "Topology.link: %s port %d already wired"
         (node_to_string nb) pb);
  let a = { node = na; port = pa } and b = { node = nb; port = pb } in
  t.links <- { a; b; latency } :: t.links;
  Hashtbl.replace t.wiring (na, pa) (b, latency);
  Hashtbl.replace t.wiring (nb, pb) (a, latency)

let switches t =
  Node_map.fold
    (fun n () acc -> match n with Sw d -> d :: acc | Host _ -> acc)
    t.nodes []
  |> List.rev

let hosts t =
  Node_map.fold
    (fun n () acc -> match n with Host h -> h :: acc | Sw _ -> acc)
    t.nodes []
  |> List.rev

let links t = List.rev t.links

let peer t node port =
  Option.map fst (Hashtbl.find_opt t.wiring (node, port))

let ports_of t node =
  Hashtbl.fold
    (fun (n, p) _ acc -> if n = node then p :: acc else acc)
    t.wiring []

let host_attachment t name =
  match ports_of t (Host name) with
  | [] -> None
  | port :: _ -> (
      match Hashtbl.find_opt t.wiring (Host name, port) with
      | Some (ep, _) -> ( match ep.node with Sw _ -> Some ep | Host _ -> None)
      | None -> None)

(* Dijkstra over nodes, weights = link latency in ns. *)
let shortest_path t ~(src : node) ~(dst : node) =
  let dist = Hashtbl.create 32 in
  let prev = Hashtbl.create 32 in
  (* prev: node -> (previous node, in_port at node, out_port at prev) *)
  let pq = Sim.Heap.create () in
  Hashtbl.replace dist src 0;
  Sim.Heap.push pq ~key:0 src;
  let rec loop () =
    match Sim.Heap.pop pq with
    | None -> ()
    | Some (d, n) ->
        let known = try Hashtbl.find dist n with Not_found -> max_int in
        if d > known then loop ()
        else if n = dst then ()
        else begin
          List.iter
            (fun port ->
              match Hashtbl.find_opt t.wiring (n, port) with
              | None -> ()
              | Some (far, latency) ->
                  (* Hosts do not forward transit traffic. *)
                  let transit_ok =
                    match far.node with
                    | Sw _ -> true
                    | Host _ -> far.node = dst
                  in
                  if transit_ok then begin
                    let nd = d + Sim.Time.to_ns latency in
                    let cur =
                      try Hashtbl.find dist far.node with Not_found -> max_int
                    in
                    if nd < cur then begin
                      Hashtbl.replace dist far.node nd;
                      Hashtbl.replace prev far.node (n, far.port, port);
                      Sim.Heap.push pq ~key:nd far.node
                    end
                  end)
            (ports_of t n);
          loop ()
        end
  in
  loop ();
  if not (Hashtbl.mem dist dst) then None
  else begin
    (* Walk back from dst collecting (node, in_port_at_node). *)
    let rec walk n acc =
      match Hashtbl.find_opt prev n with
      | None -> acc
      | Some (p, in_port_at_n, out_port_at_p) ->
          walk p ((n, in_port_at_n, out_port_at_p) :: acc)
    in
    Some (walk dst [])
  end

let switch_path t ~src ~dst =
  match shortest_path t ~src:(Host src) ~dst:(Host dst) with
  | None -> None
  | Some hops ->
      (* hops: [(node, in_port at node, out_port at previous node)].
         For each switch hop we need (dpid, in_port, out_port): in_port is
         carried on its own hop entry; out_port is the "out_port at
         previous node" of the NEXT hop. *)
      let rec build = function
        | (Sw d, in_port, _) :: ((_, _, out_port_at_prev) :: _ as rest) ->
            (d, in_port, out_port_at_prev) :: build rest
        | [ (Host _, _, _) ] -> []
        | (Host _, _, _) :: rest -> build rest
        | [ (Sw _, _, _) ] ->
            (* A path cannot end at a switch when dst is a host. *)
            []
        | [] -> []
      in
      Some (build hops)

let next_hop t ~from ~dst_host =
  match shortest_path t ~src:(Sw from) ~dst:(Host dst_host) with
  | None | Some [] -> None
  | Some ((_, _, out_port_at_src) :: _) -> Some out_port_at_src

let pp ppf t =
  Format.fprintf ppf "topology: %d switches, %d hosts, %d links@."
    (List.length (switches t))
    (List.length (hosts t))
    (List.length t.links);
  List.iter
    (fun l ->
      Format.fprintf ppf "  %s:%d <-> %s:%d (%a)@." (node_to_string l.a.node)
        l.a.port (node_to_string l.b.node) l.b.port Sim.Time.pp l.latency)
    (links t)

type t = Output of int | Flood | To_controller | Drop

let drop = [ Drop ]

let is_drop actions =
  actions = []
  || List.for_all (function Drop -> true | Output _ | Flood | To_controller -> false) actions

let output_ports actions =
  List.filter_map (function Output p -> Some p | Flood | To_controller | Drop -> None) actions

let equal a b = a = b

let pp ppf = function
  | Output p -> Format.fprintf ppf "output:%d" p
  | Flood -> Format.pp_print_string ppf "flood"
  | To_controller -> Format.pp_print_string ppf "controller"
  | Drop -> Format.pp_print_string ppf "drop"

let pp_list ppf actions =
  match actions with
  | [] -> Format.pp_print_string ppf "drop(empty)"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
        pp ppf actions

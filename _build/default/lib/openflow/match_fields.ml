open Netcore

type t = {
  in_port : int option;
  dl_src : Mac.t option;
  dl_dst : Mac.t option;
  dl_type : Ethertype.t option;
  dl_vlan : Vlan.t option;
  nw_src : Prefix.t option;
  nw_dst : Prefix.t option;
  nw_proto : Proto.t option;
  tp_src : int option;
  tp_dst : int option;
}

let any =
  {
    in_port = None;
    dl_src = None;
    dl_dst = None;
    dl_type = None;
    dl_vlan = None;
    nw_src = None;
    nw_dst = None;
    nw_proto = None;
    tp_src = None;
    tp_dst = None;
  }

let ethertype_of_packet (pkt : Packet.t) =
  match pkt.eth_payload with
  | Packet.Ip _ -> Ethertype.Ipv4
  | Packet.Raw_eth (et, _) -> et

let exact ~in_port (pkt : Packet.t) =
  let nw_src, nw_dst, nw_proto, tp_src, tp_dst =
    match Packet.five_tuple pkt with
    | Some ft ->
        ( Some (Prefix.host ft.src),
          Some (Prefix.host ft.dst),
          Some ft.proto,
          Some ft.src_port,
          Some ft.dst_port )
    | None -> (None, None, None, None, None)
  in
  {
    in_port = Some in_port;
    dl_src = Some pkt.eth_src;
    dl_dst = Some pkt.eth_dst;
    dl_type = Some (ethertype_of_packet pkt);
    dl_vlan = Some pkt.vlan;
    nw_src;
    nw_dst;
    nw_proto;
    tp_src;
    tp_dst;
  }

let of_five_tuple (ft : Five_tuple.t) =
  {
    any with
    dl_type = Some Ethertype.Ipv4;
    nw_src = Some (Prefix.host ft.src);
    nw_dst = Some (Prefix.host ft.dst);
    nw_proto = Some ft.proto;
    tp_src = Some ft.src_port;
    tp_dst = Some ft.dst_port;
  }

let field_matches field value ~eq =
  match field with None -> true | Some f -> eq f value

let matches t ~in_port (pkt : Packet.t) =
  field_matches t.in_port in_port ~eq:Int.equal
  && field_matches t.dl_src pkt.eth_src ~eq:Mac.equal
  && field_matches t.dl_dst pkt.eth_dst ~eq:Mac.equal
  && field_matches t.dl_type (ethertype_of_packet pkt) ~eq:Ethertype.equal
  && field_matches t.dl_vlan pkt.vlan ~eq:Vlan.equal
  &&
  match Packet.five_tuple pkt with
  | Some ft ->
      (match t.nw_src with None -> true | Some p -> Prefix.mem ft.src p)
      && (match t.nw_dst with None -> true | Some p -> Prefix.mem ft.dst p)
      && field_matches t.nw_proto ft.proto ~eq:Proto.equal
      && field_matches t.tp_src ft.src_port ~eq:Int.equal
      && field_matches t.tp_dst ft.dst_port ~eq:Int.equal
  | None ->
      (* Non-IP packets only match when all network fields are wild. *)
      t.nw_src = None && t.nw_dst = None && t.nw_proto = None
      && t.tp_src = None && t.tp_dst = None

let covers_field general specific ~eq =
  match (general, specific) with
  | None, _ -> true
  | Some _, None -> false
  | Some g, Some s -> eq g s

let covers_prefix general specific =
  match (general, specific) with
  | None, _ -> true
  | Some _, None -> false
  | Some g, Some s -> Prefix.subset s g

let covers general specific =
  covers_field general.in_port specific.in_port ~eq:Int.equal
  && covers_field general.dl_src specific.dl_src ~eq:Mac.equal
  && covers_field general.dl_dst specific.dl_dst ~eq:Mac.equal
  && covers_field general.dl_type specific.dl_type ~eq:Ethertype.equal
  && covers_field general.dl_vlan specific.dl_vlan ~eq:Vlan.equal
  && covers_prefix general.nw_src specific.nw_src
  && covers_prefix general.nw_dst specific.nw_dst
  && covers_field general.nw_proto specific.nw_proto ~eq:Proto.equal
  && covers_field general.tp_src specific.tp_src ~eq:Int.equal
  && covers_field general.tp_dst specific.tp_dst ~eq:Int.equal

let full_prefix = function Some p -> Prefix.length p = 32 | None -> false

let is_exact t =
  t.in_port <> None && t.dl_src <> None && t.dl_dst <> None
  && t.dl_type <> None && t.dl_vlan <> None && full_prefix t.nw_src
  && full_prefix t.nw_dst && t.nw_proto <> None && t.tp_src <> None
  && t.tp_dst <> None

let wildcard_count t =
  let w = function None -> 1 | Some _ -> 0 in
  w t.in_port + w t.dl_src + w t.dl_dst + w t.dl_type + w t.dl_vlan
  + w t.nw_src + w t.nw_dst + w t.nw_proto + w t.tp_src + w t.tp_dst

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp ppf t =
  let field name pp_v = function
    | None -> None
    | Some v -> Some (Format.asprintf "%s=%a" name pp_v v)
  in
  let pp_int ppf = Format.fprintf ppf "%d" in
  let parts =
    List.filter_map Fun.id
      [
        field "in_port" pp_int t.in_port;
        field "dl_src" Mac.pp t.dl_src;
        field "dl_dst" Mac.pp t.dl_dst;
        field "dl_type" Ethertype.pp t.dl_type;
        field "dl_vlan" Vlan.pp t.dl_vlan;
        field "nw_src" Prefix.pp t.nw_src;
        field "nw_dst" Prefix.pp t.nw_dst;
        field "nw_proto" Proto.pp t.nw_proto;
        field "tp_src" pp_int t.tp_src;
        field "tp_dst" pp_int t.tp_dst;
      ]
  in
  match parts with
  | [] -> Format.pp_print_string ppf "{any}"
  | _ -> Format.fprintf ppf "{%s}" (String.concat " " parts)

(** Control-channel messages between switches and the controller,
    modelled on the OpenFlow 1.0 message set the paper relies on. *)

open Netcore

type switch_id = int
(** Datapath identifier. *)

type packet_in = {
  dpid : switch_id;
  in_port : int;
  reason : [ `No_match | `Action ];
  packet : Packet.t;
}

type flow_mod_command = Add | Delete | Delete_strict

type flow_mod = {
  command : flow_mod_command;
  fields : Match_fields.t;
  priority : int;
  actions : Action.t list;
  idle_timeout : Sim.Time.t option;
  hard_timeout : Sim.Time.t option;
  cookie : int;
}

type packet_out = {
  out_packet : Packet.t;
  out_port : [ `Port of int | `Flood | `Table ];
      (** [`Table] runs the packet through the flow table. *)
}

type flow_stat = {
  st_fields : Match_fields.t;
  st_priority : int;
  st_packets : int;
  st_bytes : int;
  st_age : Sim.Time.t;  (** Time since installation. *)
}

type stats_reply = {
  st_dpid : switch_id;
  st_xid : int;  (** Echoes the request's transaction id. *)
  st_flows : flow_stat list;
  st_lookups : int;  (** Table lookup count (hits + misses). *)
  st_matched : int;  (** Table hit count. *)
}

type to_controller = Packet_in of packet_in | Stats_reply of stats_reply

type to_switch =
  | Flow_mod of flow_mod
  | Packet_out of packet_out
  | Stats_request of { xid : int }
  | Barrier

val add_flow :
  ?priority:int ->
  ?idle_timeout:Sim.Time.t ->
  ?hard_timeout:Sim.Time.t ->
  ?cookie:int ->
  fields:Match_fields.t ->
  Action.t list ->
  to_switch

val delete_flow : fields:Match_fields.t -> to_switch
val pp_to_controller : Format.formatter -> to_controller -> unit
val pp_to_switch : Format.formatter -> to_switch -> unit

(** A single flow-table entry: match, priority, actions, timeouts and
    traffic counters. *)

type t = {
  fields : Match_fields.t;
  priority : int;  (** Higher wins; OpenFlow 1.0 convention. *)
  actions : Action.t list;
  idle_timeout : Sim.Time.t option;
      (** Evict after this much time without a matching packet. *)
  hard_timeout : Sim.Time.t option;
      (** Evict this long after installation regardless of traffic. *)
  cookie : int;  (** Opaque controller tag. *)
  installed_at : Sim.Time.t;
  mutable last_hit : Sim.Time.t;
  mutable packets : int;
  mutable bytes : int;
}

val make :
  ?priority:int ->
  ?idle_timeout:Sim.Time.t ->
  ?hard_timeout:Sim.Time.t ->
  ?cookie:int ->
  ?installed_at:Sim.Time.t ->
  fields:Match_fields.t ->
  Action.t list ->
  t
(** Default priority is 0x8000 (OpenFlow's default), no timeouts. *)

val hit : t -> now:Sim.Time.t -> size:int -> unit
(** Update counters when a packet matches. *)

val expired : t -> now:Sim.Time.t -> bool
val pp : Format.formatter -> t -> unit

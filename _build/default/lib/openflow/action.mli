(** Actions a flow-table entry applies to matching packets (§3.1):
    drop, forward out ports, flood, or send to the controller. *)

type t =
  | Output of int  (** Forward out a specific port. *)
  | Flood  (** Forward out every port except the ingress one. *)
  | To_controller  (** Encapsulate and send to the OpenFlow controller. *)
  | Drop

val drop : t list
(** The canonical "no actions" drop list. *)

val is_drop : t list -> bool
(** True when the list forwards nowhere (empty or explicit [Drop]). *)

val output_ports : t list -> int list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit

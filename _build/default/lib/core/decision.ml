open Netcore

type input = {
  flow : Five_tuple.t;
  src_response : Identxx.Response.t option;
  dst_response : Identxx.Response.t option;
}

type t = {
  default : Pf.Ast.action;
  keystore : Idcrypto.Sign.keystore;
  functions : Pf.Fnreg.t;
  policy : Policy_store.t;
}

let create ?(default = Pf.Ast.Pass) ?keystore ?functions ~policy () =
  {
    default;
    keystore = Option.value ~default:(Idcrypto.Sign.keystore ()) keystore;
    functions = Option.value ~default:(Pf.Fnreg.create ()) functions;
    policy;
  }

let keystore t = t.keystore
let functions t = t.functions
let policy t = t.policy

let decide t input =
  match Policy_store.env t.policy with
  | Error _ as e -> e
  | Ok env ->
      let ctx =
        Pf.Eval.ctx ?src:input.src_response ?dst:input.dst_response
          ~keystore:t.keystore ~functions:t.functions ()
      in
      Pf.Eval.eval ~default:t.default env ctx input.flow

let decide_exn t input =
  match decide t input with
  | Ok v -> v
  | Error e -> invalid_arg ("Decision: " ^ e)

let allows t input =
  match decide t input with
  | Ok v -> v.Pf.Eval.decision = Pf.Ast.Pass
  | Error _ -> false

let explain t input =
  match decide t input with
  | Error e -> Printf.sprintf "%s => error: %s (fails closed)" (Five_tuple.to_string input.flow) e
  | Ok v ->
      let action =
        match v.Pf.Eval.decision with Pf.Ast.Pass -> "pass" | Pf.Ast.Block -> "block"
      in
      let why =
        match v.Pf.Eval.matched with
        | None -> "default"
        | Some rule -> Printf.sprintf "line %d: %s" rule.Pf.Ast.line (Pf.Pretty.rule rule)
      in
      Printf.sprintf "%s => %s (%s)" (Five_tuple.to_string input.flow) action why

type t = {
  mutable files : (string * string) list; (* sorted by name *)
  mutable compiled : (Pf.Env.t, string) result option;
  mutable listeners : (unit -> unit) list;
}

let create () = { files = []; compiled = None; listeners = [] }

let notify t = List.iter (fun f -> f ()) (List.rev t.listeners)

let strip_suffix name =
  let suffix = ".control" in
  if String.length name > String.length suffix
     && String.sub name (String.length name - String.length suffix)
          (String.length suffix)
        = suffix
  then String.sub name 0 (String.length name - String.length suffix)
  else name

let sort_files files =
  List.sort (fun (a, _) (b, _) -> String.compare a b) files

let concatenated t =
  String.concat "\n" (List.map snd t.files)

let recompile t =
  let result = Pf.Env.of_string (concatenated t) in
  t.compiled <- Some result;
  result

let add t ~name content =
  let name = strip_suffix name in
  (* Validate the file alone parses before accepting it. *)
  match Pf.Parser.parse content with
  | Error e -> Error (name ^ ": " ^ e)
  | Ok _ -> (
      let previous = t.files in
      t.files <- sort_files ((name, content) :: List.remove_assoc name t.files);
      match recompile t with
      | Ok _ ->
          notify t;
          Ok ()
      | Error e ->
          (* Roll back: the file broke the concatenated config. *)
          t.files <- previous;
          ignore (recompile t);
          Error (name ^ ": " ^ e))

let add_exn t ~name content =
  match add t ~name content with Ok () -> () | Error e -> invalid_arg e

let remove t ~name =
  t.files <- List.remove_assoc (strip_suffix name) t.files;
  ignore (recompile t);
  notify t

let files t = t.files

let env t =
  match t.compiled with Some r -> r | None -> recompile t

let on_change t f = t.listeners <- f :: t.listeners

let env_exn t =
  match env t with Ok e -> e | Error e -> invalid_arg ("Policy_store: " ^ e)

lib/core/precompile.mli: Openflow Pf

lib/core/policy_store.mli: Pf

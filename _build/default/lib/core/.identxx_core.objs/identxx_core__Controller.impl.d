lib/core/controller.ml: Audit Conn_state Decision Five_tuple Hashtbl Identxx Ipv4 List Logs Netcore Openflow Packet Pf Policy_store Precompile Printf Proto Sim

lib/core/controller.mli: Audit Decision Idcrypto Identxx Ipv4 Netcore Openflow Pf Policy_store Sim

lib/core/precompile.ml: Ethertype List Netcore Openflow Option Pf

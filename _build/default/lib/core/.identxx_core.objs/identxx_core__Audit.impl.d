lib/core/audit.ml: Five_tuple Format Identxx List Netcore Option Pf Printf Sim

lib/core/conn_state.mli: Five_tuple Netcore Sim

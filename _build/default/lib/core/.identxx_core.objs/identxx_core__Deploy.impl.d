lib/core/deploy.ml: Array Controller Identxx Ipv4 List Mac Netcore Openflow Printf Sim

lib/core/audit.mli: Five_tuple Format Identxx Netcore Pf Sim

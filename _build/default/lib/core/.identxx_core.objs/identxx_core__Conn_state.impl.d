lib/core/conn_state.ml: Five_tuple Hashtbl List Netcore Sim

lib/core/deploy.mli: Controller Identxx Ipv4 Netcore Openflow Packet Sim

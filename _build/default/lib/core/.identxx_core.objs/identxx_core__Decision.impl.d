lib/core/decision.ml: Five_tuple Idcrypto Identxx Netcore Option Pf Policy_store Printf

lib/core/decision.mli: Five_tuple Idcrypto Identxx Netcore Pf Policy_store

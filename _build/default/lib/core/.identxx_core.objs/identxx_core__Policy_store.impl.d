lib/core/policy_store.ml: List Pf String

(** The pure decision engine: evaluate a flow against the controller's
    policy given the ident++ responses, independent of any simulated
    network. Used directly by the CLI, the examples and the benchmarks,
    and by {!Controller} once responses are in. *)

open Netcore

type input = {
  flow : Five_tuple.t;
  src_response : Identxx.Response.t option;
  dst_response : Identxx.Response.t option;
}

type t

val create :
  ?default:Pf.Ast.action ->
  ?keystore:Idcrypto.Sign.keystore ->
  ?functions:Pf.Fnreg.t ->
  policy:Policy_store.t ->
  unit ->
  t
(** [default] applies when no rule matches (PF's implicit pass). *)

val keystore : t -> Idcrypto.Sign.keystore
val functions : t -> Pf.Fnreg.t
val policy : t -> Policy_store.t

val decide : t -> input -> (Pf.Eval.verdict, string) result

val decide_exn : t -> input -> Pf.Eval.verdict

val allows : t -> input -> bool
(** Evaluation errors fail closed (block). *)

val explain : t -> input -> string
(** A human-readable account: the verdict plus the matching rule. *)

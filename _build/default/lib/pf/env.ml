open Netcore

type t = {
  macros : (string * string) list;
  tables : (string * Prefix.t list) list;
  dicts : (string * (string * string) list) list;
  rules : Ast.rule list;
  intercepts : Ast.intercept list;
}

let empty = { macros = []; tables = []; dicts = []; rules = []; intercepts = [] }

let ( let* ) = Result.bind

(* Resolve one table's items, chasing references. [stack] detects cycles. *)
let rec resolve_table defs stack name =
  if List.mem name stack then Error ("table reference cycle involving <" ^ name ^ ">")
  else
    match List.assoc_opt name defs with
    | None -> Error ("unknown table <" ^ name ^ ">")
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Ast.Item_prefix p -> Ok (p :: acc)
            | Ast.Item_ref r ->
                let* sub = resolve_table defs (name :: stack) r in
                Ok (List.rev_append sub acc))
          (Ok []) items
        |> Result.map List.rev

let tables_in_rule (rule : Ast.rule) =
  let of_endpoint (e : Ast.endpoint_spec) =
    match e.addr with
    | Some { addr = Ast.Addr_table n; _ } -> [ n ]
    | Some _ | None -> []
  in
  of_endpoint rule.from_ @ of_endpoint rule.to_

let build decls =
  (* Later definitions shadow earlier ones: keep the last binding. *)
  let last_wins l =
    List.fold_left (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc) [] l
  in
  let table_defs =
    last_wins
      (List.filter_map
         (function Ast.Table_def (n, items) -> Some (n, items) | _ -> None)
         decls)
  in
  let* tables =
    List.fold_left
      (fun acc (name, _) ->
        let* acc = acc in
        let* prefixes = resolve_table table_defs [] name in
        Ok ((name, prefixes) :: acc))
      (Ok []) table_defs
  in
  let macros =
    last_wins
      (List.filter_map
         (function Ast.Macro_def (n, v) -> Some (n, v) | _ -> None)
         decls)
  in
  let dicts =
    last_wins
      (List.filter_map
         (function Ast.Dict_def (n, entries) -> Some (n, entries) | _ -> None)
         decls)
  in
  let rules = Ast.rules decls in
  let intercepts =
    List.filter_map
      (function Ast.Intercept_def i -> Some i | _ -> None)
      decls
  in
  let* () =
    List.fold_left
      (fun acc rule ->
        let* () = acc in
        List.fold_left
          (fun acc name ->
            let* () = acc in
            if List.mem_assoc name tables then Ok ()
            else
              Error
                (Printf.sprintf "line %d: unknown table <%s>" rule.Ast.line name))
          (Ok ()) (tables_in_rule rule))
      (Ok ()) rules
  in
  let* () =
    List.fold_left
      (fun acc (i : Ast.intercept) ->
        let* () = acc in
        match i.Ast.target.Ast.addr with
        | Ast.Addr_table name when not (List.mem_assoc name tables) ->
            Error (Printf.sprintf "line %d: unknown table <%s>" i.Ast.iline name)
        | Ast.Addr_table _ | Ast.Addr_any | Ast.Addr_prefix _
        | Ast.Addr_list _ ->
            Ok ())
      (Ok ()) intercepts
  in
  Ok { macros; tables; dicts; rules; intercepts }

let build_exn decls =
  match build decls with Ok t -> t | Error e -> invalid_arg e

let of_string s =
  let* decls = Parser.parse s in
  build decls

let rules t = t.rules
let intercepts t = t.intercepts
let macro t name = List.assoc_opt name t.macros
let table t name = List.assoc_opt name t.tables
let dict t name = List.assoc_opt name t.dicts

let dict_value t ~dict:dname ~key =
  Option.bind (dict t dname) (List.assoc_opt key)

let table_names t = List.map fst t.tables

let referenced_keys t =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun (r : Ast.rule) ->
      List.concat_map
        (fun (fc : Ast.funcall) ->
          List.filter_map
            (function
              | Ast.Dict_access { dict = "src" | "dst"; key; _ }
                when not (Hashtbl.mem seen key) ->
                  Hashtbl.add seen key ();
                  Some key
              | Ast.Dict_access _ | Ast.Macro_ref _ | Ast.Lit _ -> None)
            fc.Ast.args)
        r.Ast.conds)
    t.rules

let addr_spec_matches t (spec : Ast.addr_spec) ip =
  let base =
    match spec.Ast.addr with
    | Ast.Addr_any -> true
    | Ast.Addr_prefix p -> Prefix.mem ip p
    | Ast.Addr_table name -> (
        match table t name with
        | Some prefixes -> List.exists (Prefix.mem ip) prefixes
        | None -> false)
    | Ast.Addr_list prefixes -> List.exists (Prefix.mem ip) prefixes
  in
  if spec.Ast.negated then not base else base

let is_word_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' | '/' | '_' | '+' -> true
  | _ -> false

let tokenize input =
  let len = String.length input in
  let tokens = ref [] in
  let line = ref 1 in
  let emit token = tokens := { Token.token; line = !line } :: !tokens in
  let rec go i =
    if i >= len then Ok (List.rev !tokens)
    else
      match input.[i] with
      | '\n' ->
          incr line;
          go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\\' ->
          (* Line continuation: skip the backslash (and the newline will
             be treated as whitespace anyway). *)
          go (i + 1)
      | '#' ->
          let rec skip j =
            if j >= len || input.[j] = '\n' then j else skip (j + 1)
          in
          go (skip i)
      | '"' ->
          let buf = Buffer.create 16 in
          let rec scan j =
            if j >= len then
              Error (Printf.sprintf "line %d: unterminated string" !line)
            else if input.[j] = '"' then begin
              emit (Token.Str (Buffer.contents buf));
              go (j + 1)
            end
            else begin
              if input.[j] = '\n' then incr line;
              Buffer.add_char buf input.[j];
              scan (j + 1)
            end
          in
          scan (i + 1)
      | '{' -> emit Token.Lbrace; go (i + 1)
      | '}' -> emit Token.Rbrace; go (i + 1)
      | '<' -> emit Token.Langle; go (i + 1)
      | '>' -> emit Token.Rangle; go (i + 1)
      | '(' -> emit Token.Lparen; go (i + 1)
      | ')' -> emit Token.Rparen; go (i + 1)
      | '[' -> emit Token.Lbracket; go (i + 1)
      | ']' -> emit Token.Rbracket; go (i + 1)
      | ',' -> emit Token.Comma; go (i + 1)
      | ':' -> emit Token.Colon; go (i + 1)
      | '=' -> emit Token.Equals; go (i + 1)
      | '!' -> emit Token.Bang; go (i + 1)
      | '$' -> emit Token.Dollar; go (i + 1)
      | '@' -> emit Token.At; go (i + 1)
      | '*' when i + 1 < len && input.[i + 1] = '@' ->
          emit Token.Star_at;
          go (i + 2)
      | c when is_word_char c ->
          let rec scan j = if j < len && is_word_char input.[j] then scan (j + 1) else j in
          let j = scan i in
          emit (Token.Word (String.sub input i (j - i)));
          go j
      | c -> Error (Printf.sprintf "line %d: unexpected character %C" !line c)
  in
  go 0

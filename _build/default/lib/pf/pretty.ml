open Netcore

let arg = function
  | Ast.Lit s ->
      if s = "" || String.exists (fun c -> c = ' ' || c = '"' || c = '{') s
      then Printf.sprintf "\"%s\"" s
      else s
  | Ast.Macro_ref m -> "$" ^ m
  | Ast.Dict_access { star; dict; key } ->
      Printf.sprintf "%s@%s[%s]" (if star then "*" else "") dict key

let funcall (fc : Ast.funcall) =
  Printf.sprintf "%s(%s)" fc.fname (String.concat ", " (List.map arg fc.args))

let addr_spec (s : Ast.addr_spec) =
  let body =
    match s.addr with
    | Ast.Addr_any -> "any"
    | Ast.Addr_table n -> Printf.sprintf "<%s>" n
    | Ast.Addr_prefix p ->
        if Prefix.length p = 32 then Ipv4.to_string (Prefix.network p)
        else Prefix.to_string p
    | Ast.Addr_list prefixes ->
        Printf.sprintf "{ %s }"
          (String.concat " "
             (List.map
                (fun p ->
                  if Prefix.length p = 32 then Ipv4.to_string (Prefix.network p)
                  else Prefix.to_string p)
                prefixes))
  in
  if s.negated then "!" ^ body else body

let endpoint (e : Ast.endpoint_spec) =
  let addr = Option.map addr_spec e.addr in
  let port =
    Option.map
      (function
        | Ast.Port_eq p -> Printf.sprintf "port %d" p
        | Ast.Port_range (lo, hi) -> Printf.sprintf "port %d:%d" lo hi)
      e.port
  in
  String.concat " " (List.filter_map Fun.id [ addr; port ])

let rule (r : Ast.rule) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (match r.action with Ast.Pass -> "pass" | Ast.Block -> "block");
  if r.quick then Buffer.add_string buf " quick";
  if r.log then Buffer.add_string buf " log";
  (match r.proto with
  | Some p ->
      Buffer.add_string buf " proto ";
      Buffer.add_string buf (Netcore.Proto.to_string p)
  | None -> ());
  if Ast.is_all r && r.conds = [] && r.proto = None then Buffer.add_string buf " all"
  else begin
    if r.from_ <> Ast.endpoint_any then begin
      Buffer.add_string buf " from ";
      Buffer.add_string buf (endpoint r.from_)
    end;
    if r.to_ <> Ast.endpoint_any then begin
      Buffer.add_string buf " to ";
      Buffer.add_string buf (endpoint r.to_)
    end;
    if r.from_ = Ast.endpoint_any && r.to_ = Ast.endpoint_any then
      Buffer.add_string buf " all"
  end;
  List.iter
    (fun fc ->
      Buffer.add_string buf " with ";
      Buffer.add_string buf (funcall fc))
    r.conds;
  if r.keep_state then Buffer.add_string buf " keep state";
  Buffer.contents buf

let table_item = function
  | Ast.Item_prefix p ->
      if Prefix.length p = 32 then Ipv4.to_string (Prefix.network p)
      else Prefix.to_string p
  | Ast.Item_ref r -> Printf.sprintf "<%s>" r

let decl = function
  | Ast.Macro_def (name, v) -> Printf.sprintf "%s = \"%s\"" name v
  | Ast.Table_def (name, items) ->
      Printf.sprintf "table <%s> { %s }" name
        (String.concat " " (List.map table_item items))
  | Ast.Dict_def (name, entries) ->
      Printf.sprintf "dict <%s> { %s }" name
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s : %s" k v) entries))
  | Ast.Intercept_def i ->
      Printf.sprintf "intercept %s to %s %s { %s }"
        (match i.ikind with
        | Ast.Answer_query -> "query"
        | Ast.Augment_response -> "response")
        (addr_spec i.target)
        (match i.ikind with
        | Ast.Answer_query -> "answer"
        | Ast.Augment_response -> "augment")
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s : %s" k v) i.pairs))
  | Ast.Rule_decl r -> rule r

let ruleset decls = String.concat "\n" (List.map decl decls) ^ "\n"
let pp_rule ppf r = Format.pp_print_string ppf (rule r)
let pp_ruleset ppf rs = Format.pp_print_string ppf (ruleset rs)

(** User-defined predicate functions: "functions are user-definable and
    new functions can be added" (§3.3). Built-ins live in {!Eval} and
    cannot be shadowed. *)

type fn = string option list -> bool
(** A predicate over resolved argument values; [None] marks a value that
    could not be resolved (missing key, unanswered query). *)

type t

val create : unit -> t
val register : t -> name:string -> fn -> unit
(** @raise Invalid_argument when [name] collides with a built-in
    (eq/gt/lt/gte/lte/member/includes/allowed/verify). *)

val find : t -> string -> fn option
val builtin_names : string list

(** Recursive-descent parser for PF+=2 (§3.3). *)

val parse : string -> (Ast.ruleset, string) result
(** Parse a complete configuration (declarations and rules in source
    order). Errors carry the source line. *)

val parse_exn : string -> Ast.ruleset
(** @raise Invalid_argument with the parse error. *)

val parse_rules : string -> (Ast.rule list, string) result
(** Parse text that should contain only rules (e.g. a [requirements]
    value from an ident++ response); declarations are rejected. *)

(** The PF+=2 lexer. Newlines are whitespace (rules are delimited by
    their grammar, which lets one daemon-supplied [requirements] value
    hold several rules on one line, as in Figure 3); [#] starts a
    comment; a backslash before a newline is the PF line-continuation
    and is skipped. *)

val tokenize : string -> (Token.located list, string) result
(** Errors mention the offending line number. *)

(** The static environment of a PF+=2 configuration: macros, tables
    (with nested references resolved) and dictionaries, plus the rule
    list in source order. *)

open Netcore

type t

val build : Ast.ruleset -> (t, string) result
(** Resolves table references (rejecting cycles and unknown names) and
    checks that rules mention only defined tables. Later definitions of
    the same macro/table/dict name shadow earlier ones, matching the
    "files are concatenated" controller model (§3.4). *)

val build_exn : Ast.ruleset -> t
val of_string : string -> (t, string) result
(** Parse then build. *)

val rules : t -> Ast.rule list
val intercepts : t -> Ast.intercept list

val addr_spec_matches : t -> Ast.addr_spec -> Netcore.Ipv4.t -> bool
(** Evaluate an address spec against an address (false when it names an
    unknown table — {!build} rejects that case anyway). *)

val referenced_keys : t -> string list
(** Every response key the rules read through [@src]/[@dst] accesses, in
    first-use order — exactly "the keys that the controller is
    interested in" that a query should hint (§3.2). *)

val macro : t -> string -> string option
val table : t -> string -> Prefix.t list option
val dict : t -> string -> (string * string) list option
val dict_value : t -> dict:string -> key:string -> string option
val table_names : t -> string list
val empty : t

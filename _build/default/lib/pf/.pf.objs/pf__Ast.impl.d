lib/pf/ast.ml: List Netcore Prefix

lib/pf/lint.mli: Ast Format

lib/pf/token.mli: Format

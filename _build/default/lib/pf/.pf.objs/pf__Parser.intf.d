lib/pf/parser.mli: Ast

lib/pf/env.mli: Ast Netcore Prefix

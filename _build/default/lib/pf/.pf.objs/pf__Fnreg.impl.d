lib/pf/fnreg.ml: Hashtbl List

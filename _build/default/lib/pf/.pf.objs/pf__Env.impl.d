lib/pf/env.ml: Ast Hashtbl List Netcore Option Parser Prefix Printf Result

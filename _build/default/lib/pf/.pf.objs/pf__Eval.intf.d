lib/pf/eval.mli: Ast Env Five_tuple Fnreg Idcrypto Identxx Netcore

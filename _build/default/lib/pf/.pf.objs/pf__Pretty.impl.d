lib/pf/pretty.ml: Ast Buffer Format Fun Ipv4 List Netcore Option Prefix Printf String

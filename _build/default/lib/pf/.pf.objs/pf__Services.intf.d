lib/pf/services.mli:

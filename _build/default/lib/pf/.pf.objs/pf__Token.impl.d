lib/pf/token.ml: Format Printf

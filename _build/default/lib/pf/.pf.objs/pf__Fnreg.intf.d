lib/pf/fnreg.mli:

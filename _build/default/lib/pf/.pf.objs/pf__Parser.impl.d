lib/pf/parser.ml: Array Ast Format Lexer List Netcore Prefix Printf Services Token

lib/pf/lint.ml: Ast Fnreg Format List Printf

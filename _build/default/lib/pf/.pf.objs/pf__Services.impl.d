lib/pf/services.ml: List String

lib/pf/eval.ml: Ast Env Five_tuple Fnreg Format Hashtbl Idcrypto Identxx List Netcore Option Parser Prefix Proto String

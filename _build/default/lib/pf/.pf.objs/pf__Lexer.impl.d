lib/pf/lexer.ml: Buffer List Printf String Token

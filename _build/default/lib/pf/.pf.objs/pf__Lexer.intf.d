lib/pf/lexer.mli: Token

lib/pf/pretty.mli: Ast Format

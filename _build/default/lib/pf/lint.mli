(** Static checks over a parsed policy, beyond what {!Env.build}
    enforces. Delegated configurations are assembled from files written
    by different parties (§3.4), which makes it easy to ship rules that
    can never fire; the linter flags the cheap-to-detect cases. *)

type finding = {
  line : int;  (** Of the offending rule. *)
  code : string;  (** Stable identifier, e.g. ["dead-after-quick-all"]. *)
  message : string;
}

val check : Ast.ruleset -> finding list
(** Findings, in source order. Currently detected:
    - [dead-after-quick-all]: rules following an unconditional [quick]
      rule (it short-circuits every flow that reaches it);
    - [duplicate-rule]: a rule textually identical to a later one (the
      earlier of a last-match pair is redundant when neither is quick);
    - [unknown-function]: a [with] predicate that is not a built-in
      (legitimate for deployments registering custom functions, hence a
      warning rather than an {!Env.build} error). *)

val pp_finding : Format.formatter -> finding -> unit

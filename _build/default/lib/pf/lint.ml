type finding = { line : int; code : string; message : string }

let is_quick_all (r : Ast.rule) =
  r.Ast.quick && Ast.is_all r && r.Ast.conds = [] && r.Ast.proto = None

(* Compare rules up to their source position. *)
let same_rule (a : Ast.rule) (b : Ast.rule) =
  { a with Ast.line = 0 } = { b with Ast.line = 0 }

let dead_after_quick_all rules =
  let rec go = function
    | [] -> []
    | (r : Ast.rule) :: rest when is_quick_all r ->
        List.map
          (fun (dead : Ast.rule) ->
            {
              line = dead.Ast.line;
              code = "dead-after-quick-all";
              message =
                Printf.sprintf
                  "unreachable: the quick rule at line %d decides every flow"
                  r.Ast.line;
            })
          rest
    | _ :: rest -> go rest
  in
  go rules

let duplicates rules =
  let rec go = function
    | [] -> []
    | (r : Ast.rule) :: rest ->
        let dups =
          List.filter_map
            (fun (later : Ast.rule) ->
              if same_rule r later && (not r.Ast.quick) && not later.Ast.quick
              then
                Some
                  {
                    line = r.Ast.line;
                    code = "duplicate-rule";
                    message =
                      Printf.sprintf
                        "redundant: identical rule at line %d makes this one \
                         irrelevant under last-match"
                        later.Ast.line;
                  }
              else None)
            rest
        in
        dups @ go rest
  in
  go rules

let unknown_functions rules =
  List.concat_map
    (fun (r : Ast.rule) ->
      List.filter_map
        (fun (fc : Ast.funcall) ->
          if List.mem fc.Ast.fname Fnreg.builtin_names then None
          else
            Some
              {
                line = r.Ast.line;
                code = "unknown-function";
                message =
                  Printf.sprintf
                    "%s is not a built-in function; evaluation fails unless a \
                     custom function is registered"
                    fc.Ast.fname;
              })
        r.Ast.conds)
    rules

let check decls =
  let rules = Ast.rules decls in
  dead_after_quick_all rules @ duplicates rules @ unknown_functions rules
  |> List.sort_uniq compare
  |> List.sort (fun a b -> compare a.line b.line)

let pp_finding ppf f =
  Format.fprintf ppf "line %d: [%s] %s" f.line f.code f.message

(** The PF+=2 evaluator.

    Semantics follow PF and §3.3: rules are considered top-down, the
    {e last} matching rule decides, and a matching rule marked [quick]
    short-circuits evaluation. [with] predicates are conjunctive; a
    predicate over an unresolvable value (missing key, absent response)
    is false, so information-dependent [pass] rules fail closed.

    [@src]/[@dst] index the ident++ responses: plain access returns the
    latest (most-trusted) binding, [*@] the comma-joined concatenation
    over all sections. Other [@name] accesses read the configuration's
    [dict] declarations. *)

open Netcore

type ctx = {
  src : Identxx.Response.t option;  (** ident++ response of the flow source. *)
  dst : Identxx.Response.t option;  (** … of the flow destination. *)
  keystore : Idcrypto.Sign.keystore;  (** Trust anchors for [verify]. *)
  functions : Fnreg.t;  (** User-defined predicates. *)
}

val ctx :
  ?src:Identxx.Response.t ->
  ?dst:Identxx.Response.t ->
  ?keystore:Idcrypto.Sign.keystore ->
  ?functions:Fnreg.t ->
  unit ->
  ctx

type verdict = {
  decision : Ast.action;
  matched : Ast.rule option;  (** [None] when the default applied. *)
  keep_state : bool;
  log : bool;  (** The matching rule carried PF's [log] modifier. *)
}

val eval :
  ?default:Ast.action ->
  Env.t ->
  ctx ->
  Five_tuple.t ->
  (verdict, string) result
(** Evaluate a flow. [default] (PF's implicit pass, overridable) applies
    when no rule matches. Errors report unresolvable configuration
    (unknown function, malformed [allowed] rules, bad numeric use). *)

val eval_exn :
  ?default:Ast.action -> Env.t -> ctx -> Five_tuple.t -> verdict

val passes :
  ?default:Ast.action -> Env.t -> ctx -> Five_tuple.t -> bool
(** [true] when the verdict is [Pass]. Evaluation errors count as a
    block (fail closed). *)

type trace_step = {
  rule : Ast.rule;
  matched : bool;
  decided : bool;  (** This step set the (possibly overridden) verdict. *)
}

val trace :
  ?default:Ast.action -> Env.t -> ctx -> Five_tuple.t ->
  (trace_step list * verdict, string) result
(** Like {!eval} but records how every rule fared — the policy
    debugger behind [identxx_ctl eval --trace]. A [quick] match
    truncates the trace, exactly as it truncates evaluation. *)

val arg_value : Env.t -> ctx -> Ast.arg -> string option
(** Resolve one argument (exposed for testing and for custom tooling). *)

val allowed_depth_limit : int
(** Maximum nesting of [allowed] rule evaluation (guards against
    adversarial self-referential requirements). *)

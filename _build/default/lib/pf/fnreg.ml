type fn = string option list -> bool
type t = (string, fn) Hashtbl.t

let builtin_names =
  [ "eq"; "gt"; "lt"; "gte"; "lte"; "member"; "includes"; "allowed"; "verify" ]

let create () = Hashtbl.create 8

let register t ~name fn =
  if List.mem name builtin_names then
    invalid_arg ("Fnreg.register: cannot shadow built-in " ^ name);
  Hashtbl.replace t name fn

let find t name = Hashtbl.find_opt t name

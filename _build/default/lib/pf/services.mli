(** Well-known service names usable in [port] clauses ([port http]). *)

val port_of_name : string -> int option
val name_of_port : int -> string option

val parse_port : string -> (int, string) result
(** A number or a service name. *)

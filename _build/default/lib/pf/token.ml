type t =
  | Word of string
  | Str of string
  | Lbrace
  | Rbrace
  | Langle
  | Rangle
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Colon
  | Equals
  | Bang
  | Dollar
  | At
  | Star_at

type located = { token : t; line : int }

let to_string = function
  | Word w -> w
  | Str s -> Printf.sprintf "%S" s
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Langle -> "<"
  | Rangle -> ">"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Colon -> ":"
  | Equals -> "="
  | Bang -> "!"
  | Dollar -> "$"
  | At -> "@"
  | Star_at -> "*@"

let pp ppf t = Format.pp_print_string ppf (to_string t)

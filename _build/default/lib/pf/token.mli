(** Lexical tokens of PF+=2. *)

type t =
  | Word of string  (** Bare word: keyword, identifier, number, address… *)
  | Str of string  (** Double-quoted string (quotes stripped). *)
  | Lbrace
  | Rbrace
  | Langle
  | Rangle
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Colon
  | Equals
  | Bang
  | Dollar
  | At
  | Star_at  (** The [*@] concatenation accessor (§3.3). *)

type located = { token : t; line : int }

val to_string : t -> string
val pp : Format.formatter -> t -> unit

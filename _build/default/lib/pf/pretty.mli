(** Render PF+=2 syntax back to text. [Parser.parse] of the output
    yields the same AST (round-trip property, tested). *)

val arg : Ast.arg -> string
val funcall : Ast.funcall -> string
val rule : Ast.rule -> string
val decl : Ast.decl -> string
val ruleset : Ast.ruleset -> string
val pp_rule : Format.formatter -> Ast.rule -> unit
val pp_ruleset : Format.formatter -> Ast.ruleset -> unit

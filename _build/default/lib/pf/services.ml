let table =
  [
    ("ftp", 21); ("ssh", 22); ("telnet", 23); ("smtp", 25); ("domain", 53);
    ("http", 80); ("pop3", 110); ("ident", 113); ("auth", 113); ("ntp", 123);
    ("imap", 143); ("snmp", 161); ("https", 443); ("submission", 587);
    ("identxx", 783); ("imaps", 993); ("pop3s", 995); ("mysql", 3306);
    ("rdp", 3389); ("postgres", 5432);
  ]

let port_of_name name = List.assoc_opt (String.lowercase_ascii name) table

let name_of_port port =
  List.fold_left
    (fun acc (n, p) -> if p = port && acc = None then Some n else acc)
    None table

let parse_port s =
  match int_of_string_opt s with
  | Some p when p >= 0 && p <= 0xffff -> Ok p
  | Some _ -> Error ("port out of range: " ^ s)
  | None -> (
      match port_of_name s with
      | Some p -> Ok p
      | None -> Error ("unknown service name: " ^ s))

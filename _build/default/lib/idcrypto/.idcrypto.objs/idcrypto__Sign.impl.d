lib/idcrypto/sign.ml: Buffer Hashtbl Hex Hmac List Printf Sha256 String

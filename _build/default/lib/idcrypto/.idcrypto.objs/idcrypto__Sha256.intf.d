lib/idcrypto/sha256.mli: Bytes

lib/idcrypto/sha256.ml: Array Bytes Char Hex String

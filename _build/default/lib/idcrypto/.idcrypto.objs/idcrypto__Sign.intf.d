lib/idcrypto/sign.mli:

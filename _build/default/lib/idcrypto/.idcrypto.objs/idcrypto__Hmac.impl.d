lib/idcrypto/hmac.ml: Bytes Char Hex Sha256 String

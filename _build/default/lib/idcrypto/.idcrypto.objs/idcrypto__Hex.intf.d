lib/idcrypto/hex.mli:

lib/idcrypto/hex.ml: Bytes Char Printf String

lib/idcrypto/hmac.mli:

let normalize_key key =
  let key =
    if String.length key > Sha256.block_size then Sha256.digest key else key
  in
  let b = Bytes.make Sha256.block_size '\000' in
  Bytes.blit_string key 0 b 0 (String.length key);
  Bytes.unsafe_to_string b

let xor_with s byte =
  String.map (fun c -> Char.chr (Char.code c lxor byte)) s

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (xor_with key 0x36);
  Sha256.feed inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.feed outer (xor_with key 0x5c);
  Sha256.feed outer inner_digest;
  Sha256.finalize outer

let hexmac ~key msg = Hex.encode (mac ~key msg)

let verify ~key ~tag msg =
  let expected = mac ~key msg in
  if String.length tag <> String.length expected then false
  else begin
    let diff = ref 0 in
    String.iteri
      (fun i c -> diff := !diff lor (Char.code c lxor Char.code expected.[i]))
      tag;
    !diff = 0
  end

(** Signatures over canonicalized data lists, as used by ident++'s
    [verify] policy function and [req-sig] daemon keys.

    The build environment has no public-key package, so this is a
    {e simulated PKI} (see DESIGN.md §2): a keypair is a secret plus a
    public handle derived from it, and a {!keystore} — standing in for
    the public-key trapdoor — lets a verifier check tags it could not
    itself have produced for other principals. Signing is HMAC-SHA-256
    over an unambiguous length-prefixed encoding of the data list, so the
    code paths the paper relies on (canonicalization, tag transport in
    config files, verification failure on any tampering) are all real. *)

type keypair = {
  owner : string;  (** Human-readable principal name, e.g. ["Secur"]. *)
  public : string;  (** Public handle, hex, safe to embed in policies. *)
  secret : string;  (** Signing secret; never placed in responses. *)
}

val generate : ?seed:string -> string -> keypair
(** [generate ?seed owner] derives a deterministic keypair from
    [owner] and the optional seed (deterministic keys keep simulations
    reproducible). *)

val canonical : string list -> string
(** The unambiguous byte encoding that tags are computed over:
    each element is length-prefixed, so [["ab";"c"]] and [["a";"bc"]]
    encode differently. *)

val sign : secret:string -> string list -> string
(** Hex tag over [canonical data]. *)

type keystore
(** Maps public handles to verification material. *)

val keystore : unit -> keystore
val register : keystore -> keypair -> unit

val register_public : keystore -> public:string -> secret:string -> unit
(** Trust a principal by its raw material (used when loading fixtures). *)

val known : keystore -> string -> bool

val verify :
  keystore -> public:string -> signature:string -> string list -> bool
(** [verify ks ~public ~signature data] checks the tag. False when the
    handle is unknown, the tag malformed, or the data differs. *)

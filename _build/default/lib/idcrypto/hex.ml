let digits = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) digits.[c lsr 4];
    Bytes.set b ((2 * i) + 1) digits.[c land 0xf]
  done;
  Bytes.unsafe_to_string b

let value c =
  match c with
  | '0' .. '9' -> Ok (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
  | _ -> Error (Printf.sprintf "Hex.decode: bad digit %C" c)

let decode s =
  let n = String.length s in
  if n land 1 = 1 then Error "Hex.decode: odd length"
  else
    let b = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Bytes.unsafe_to_string b)
      else
        match (value s.[i], value s.[i + 1]) with
        | Ok hi, Ok lo ->
            Bytes.set b (i / 2) (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | Error e, _ | _, Error e -> Error e
    in
    go 0

let decode_exn s =
  match decode s with Ok v -> v | Error e -> invalid_arg e

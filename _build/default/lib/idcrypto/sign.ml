type keypair = { owner : string; public : string; secret : string }

let generate ?(seed = "identxx-default-seed") owner =
  let secret = Sha256.hexdigest (Printf.sprintf "sk|%s|%s" seed owner) in
  let public = "pk" ^ String.sub (Sha256.hexdigest ("pk|" ^ secret)) 0 40 in
  { owner; public; secret }

let canonical data =
  let buf = Buffer.create 64 in
  List.iter
    (fun d ->
      Buffer.add_string buf (string_of_int (String.length d));
      Buffer.add_char buf ':';
      Buffer.add_string buf d)
    data;
  Buffer.contents buf

let sign ~secret data = Hmac.hexmac ~key:secret (canonical data)

type keystore = (string, string) Hashtbl.t

let keystore () = Hashtbl.create 16
let register ks kp = Hashtbl.replace ks kp.public kp.secret
let register_public ks ~public ~secret = Hashtbl.replace ks public secret
let known ks public = Hashtbl.mem ks public

let verify ks ~public ~signature data =
  match Hashtbl.find_opt ks public with
  | None -> false
  | Some secret -> (
      match Hex.decode signature with
      | Error _ -> false
      | Ok tag -> Hmac.verify ~key:secret ~tag (canonical data))

(** SHA-256 (FIPS 180-4), implemented from scratch on 32-bit words packed
    into OCaml [int]s. The sealed build environment has no crypto
    packages; this module is the hashing substrate for ident++
    signatures (see DESIGN.md §2). *)

type ctx
(** A streaming hash context. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb bytes. May be called repeatedly. *)

val feed_bytes : ctx -> Bytes.t -> int -> int -> unit
(** [feed_bytes ctx b off len] absorbs a slice. *)

val finalize : ctx -> string
(** The 32-byte digest. The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot hash: 32 raw bytes. *)

val hexdigest : string -> string
(** One-shot hash, hex-encoded (64 characters). *)

val digest_size : int
(** 32. *)

val block_size : int
(** 64. *)

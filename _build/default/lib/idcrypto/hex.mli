(** Lower-case hexadecimal encoding. *)

val encode : string -> string
(** Each input byte becomes two hex digits. *)

val decode : string -> (string, string) result
(** Inverse of {!encode}; accepts upper- or lower-case digits. *)

val decode_exn : string -> string
(** @raise Invalid_argument on malformed input. *)

(** HMAC-SHA-256 (RFC 2104). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte tag. Keys longer than the SHA-256 block
    size are hashed first, per the RFC. *)

val hexmac : key:string -> string -> string
(** Hex-encoded tag. *)

val verify : key:string -> tag:string -> string -> bool
(** Constant-time comparison of [tag] against [mac ~key msg]. *)

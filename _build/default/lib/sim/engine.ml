type event = { action : unit -> unit; mutable cancelled : bool }
type t = { mutable clock : Time.t; queue : event Heap.t }
type cancel = event

let create () = { clock = Time.zero; queue = Heap.create () }
let now t = t.clock

let schedule_at t ~at action =
  if Time.compare at t.clock < 0 then
    invalid_arg "Engine.schedule_at: time is in the past";
  Heap.push t.queue ~key:(Time.to_ns at) { action; cancelled = false }

let schedule t ~delay action = schedule_at t ~at:(Time.add t.clock delay) action

let schedule_cancellable t ~delay action =
  let ev = { action; cancelled = false } in
  Heap.push t.queue ~key:(Time.to_ns (Time.add t.clock delay)) ev;
  ev

let cancel ev = ev.cancelled <- true
let pending t = Heap.size t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, ev) ->
      (* Cancelled events are reaped without advancing the clock — time
         only moves when something actually happens. *)
      if not ev.cancelled then begin
        t.clock <- Time.ns at;
        ev.action ()
      end;
      true

let run ?until ?max_events t =
  let dispatched = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some (at, _) ->
        let past_deadline =
          match until with
          | Some u -> at > Time.to_ns u
          | None -> false
        in
        let over_budget =
          match max_events with Some m -> !dispatched >= m | None -> false
        in
        if past_deadline || over_budget then continue := false
        else begin
          ignore (step t);
          incr dispatched
        end
  done

let reset t =
  Heap.clear t.queue;
  t.clock <- Time.zero

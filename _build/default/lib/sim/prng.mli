(** Deterministic pseudo-random numbers (splitmix64). Every simulation
    and workload takes an explicit generator so runs are reproducible. *)

type t

val create : int -> t
(** Seeded generator. Equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val next64 : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [0, n). @raise Invalid_argument if [n <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool
val pick : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val pick_list : t -> 'a list -> 'a
val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed (for Poisson arrival gaps). *)

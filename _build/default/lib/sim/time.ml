type t = int

let zero = 0

let ns n =
  if n < 0 then invalid_arg "Time.ns: negative";
  n

let us n = ns (n * 1_000)
let ms n = ns (n * 1_000_000)
let s n = ns (n * 1_000_000_000)

let of_float_s f =
  if f < 0.0 then invalid_arg "Time.of_float_s: negative";
  int_of_float (f *. 1e9 +. 0.5)

let to_ns t = t
let to_float_s t = float_of_int t /. 1e9
let to_float_us t = float_of_int t /. 1e3
let to_float_ms t = float_of_int t /. 1e6
let add a b = a + b

let sub a b =
  if b > a then invalid_arg "Time.sub: negative result";
  a - b

let mul t n =
  if n < 0 then invalid_arg "Time.mul: negative";
  t * n

let div t n = t / n
let min = Stdlib.min
let max = Stdlib.max
let compare = Int.compare
let equal = Int.equal
let ( + ) = add
let ( - ) = sub
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b

let pp ppf t =
  if t = 0 then Format.pp_print_string ppf "0s"
  else if t mod 1_000_000_000 = 0 then Format.fprintf ppf "%ds" (t / 1_000_000_000)
  else if t < 1_000 then Format.fprintf ppf "%dns" t
  else if t < 1_000_000 then Format.fprintf ppf "%.3gus" (to_float_us t)
  else if t < 1_000_000_000 then Format.fprintf ppf "%.3gms" (to_float_ms t)
  else Format.fprintf ppf "%.4gs" (to_float_s t)

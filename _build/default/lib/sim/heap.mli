(** A mutable binary min-heap keyed by integer priorities, with FIFO
    tie-breaking (insertion order decides between equal keys). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> key:int -> 'a -> unit

val peek : 'a t -> (int * 'a) option
(** Smallest key, without removing. *)

val pop : 'a t -> (int * 'a) option
(** Smallest key; equal keys come out in insertion order. *)

val clear : 'a t -> unit

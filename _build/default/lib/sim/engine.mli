(** The discrete-event simulation engine. Events are closures scheduled
    at absolute simulated times; running the engine executes them in
    time order (FIFO among simultaneous events) and advances the clock. *)

type t

val create : unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> unit
(** Run a closure [delay] after the current time. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> unit
(** Run a closure at an absolute time (>= now).
    @raise Invalid_argument when [at] is in the past. *)

type cancel
(** Handle for a cancellable event. *)

val schedule_cancellable : t -> delay:Time.t -> (unit -> unit) -> cancel
val cancel : cancel -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    reaped). *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Drain the queue. Stops when empty, when simulated time would exceed
    [until], or after [max_events] dispatches. *)

val step : t -> bool
(** Dispatch exactly one event; false when the queue is empty. *)

val reset : t -> unit
(** Drop all pending events and rewind the clock to zero. *)

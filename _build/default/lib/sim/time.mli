(** Simulated time, in integer nanoseconds. *)

type t = private int

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t
val of_float_s : float -> t
val to_ns : t -> int
val to_float_s : t -> float
val to_float_us : t -> float
val to_float_ms : t -> float
val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> int -> t
val div : t -> int -> t
val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Human-friendly: picks ns/us/ms/s units. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  { state = next64 t }

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: 62 random bits mod n has negligible
     bias for the bounds used in simulations. Keep within the native
     63-bit int range so the result is never negative. *)
  Int64.to_int (Int64.logand (next64 t) 0x3FFF_FFFF_FFFF_FFFFL) mod n

let int_range t lo hi =
  if hi < lo then invalid_arg "Prng.int_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l = pick t (Array.of_list l)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  let u = ref (float t 1.0) in
  if !u = 0.0 then u := 1e-12;
  -.mean *. log !u

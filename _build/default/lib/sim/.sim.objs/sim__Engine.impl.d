lib/sim/engine.ml: Heap Time

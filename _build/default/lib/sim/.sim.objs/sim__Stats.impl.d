lib/sim/stats.ml: Array Float Format List Printf Stdlib String

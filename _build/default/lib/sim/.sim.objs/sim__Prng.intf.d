lib/sim/prng.mli:

lib/sim/heap.mli:

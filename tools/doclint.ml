(* doclint: the documentation gate on the @lint path.

   The container this repo builds in has no odoc, so `dune build @doc`
   cannot run here; this tool performs the structural checks that @doc
   would subsume and tells you when odoc is available to do the real
   render. Checks:

   1. every module under lib/ has an interface (.mli) — the odoc unit
      of documentation — modulo a short allowlist of type-only modules;
   2. every .mli opens with a documentation comment;
   3. every repo-relative path mentioned in backticks in the operator
      documentation (README.md, DESIGN.md, EXPERIMENTS.md, doc/*.md)
      exists, so the docs cannot drift from the tree they describe;
   4. the metric catalog in doc/OBSERVABILITY.md and the metric-name
      literals in lib/, bin/, bench/, and tools/ agree, in both
      directions: a series
      the code can emit must have a catalog row, and a catalog row
      must name a series the code still emits;
   5. the health-rule catalog ("Health rules" table in
      doc/OBSERVABILITY.md) and the [~name:"..."] rule literals in
      lib/obs/health.ml agree, in both directions: every shipped rule
      has a documented row and every documented row names a rule the
      registry still ships.

   Usage: doclint <repo-root>. Exit 1 on any finding. *)

let mli_allowlist = [ "lib/pf/ast.ml" (* pure AST type definitions *) ]
let errors = ref 0

let err fmt =
  Printf.ksprintf
    (fun s ->
      incr errors;
      Printf.printf "doclint: %s\n" s)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let list_dir path =
  if Sys.file_exists path && Sys.is_directory path then
    Array.to_list (Sys.readdir path) |> List.sort String.compare
  else []

(* --- 1 + 2: interface coverage and leading doc comments --- *)

let check_interfaces root =
  List.iter
    (fun lib ->
      let dir = Filename.concat (Filename.concat root "lib") lib in
      List.iter
        (fun f ->
          let rel = Printf.sprintf "lib/%s/%s" lib f in
          if Filename.check_suffix f ".ml" then begin
            if
              (not (Sys.file_exists (Filename.concat dir (f ^ "i"))))
              && not (List.mem rel mli_allowlist)
            then err "%s has no interface (.mli)" rel
          end
          else if Filename.check_suffix f ".mli" then begin
            let body = String.trim (read_file (Filename.concat dir f)) in
            let starts p =
              String.length body >= String.length p
              && String.sub body 0 (String.length p) = p
            in
            if not (starts "(**") then
              err "%s does not open with a (** documentation comment" rel
          end)
        (list_dir dir))
    (list_dir (Filename.concat root "lib"))

(* --- 3: backticked path references in the markdown docs --- *)

(* A backticked token is treated as a repo path when its first segment
   is a directory of the repo root (lib/..., doc/..., test/...), or
   when it is a bare *.md name; everything else in backticks (flags,
   code, metric names like obs/counter-inc) is left alone. Candidates
   resolve against the referencing file's directory first, then the
   repo root. *)
let path_chars =
  String.for_all (function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | '/' -> true
    | _ -> false)

let inline_code_spans line =
  let out = ref [] and buf = Buffer.create 16 and inside = ref false in
  String.iter
    (fun c ->
      if c = '`' then begin
        if !inside && Buffer.length buf > 0 then out := Buffer.contents buf :: !out;
        Buffer.clear buf;
        inside := not !inside
      end
      else if !inside then Buffer.add_char buf c)
    line;
  List.rev !out

let check_doc_refs root =
  let docs =
    List.filter
      (fun p -> Sys.file_exists (Filename.concat root p))
      [ "README.md"; "DESIGN.md"; "EXPERIMENTS.md" ]
    @ List.filter_map
        (fun f ->
          if Filename.check_suffix f ".md" then Some ("doc/" ^ f) else None)
        (list_dir (Filename.concat root "doc"))
  in
  List.iter
    (fun doc ->
      let dir = Filename.dirname (Filename.concat root doc) in
      String.split_on_char '\n' (read_file (Filename.concat root doc))
      |> List.iteri (fun lineno line ->
             List.iter
               (fun tok ->
                 let tok =
                   (* `policies/` means the directory *)
                   if String.length tok > 1 && tok.[String.length tok - 1] = '/'
                   then String.sub tok 0 (String.length tok - 1)
                   else tok
                 in
                 let is_path =
                   path_chars tok && tok <> ""
                   && tok.[0] <> '.'
                   &&
                   match String.index_opt tok '/' with
                   | Some i ->
                       i > 0
                       && Sys.file_exists
                            (Filename.concat root (String.sub tok 0 i))
                       && Sys.is_directory
                            (Filename.concat root (String.sub tok 0 i))
                   | None -> Filename.check_suffix tok ".md"
                 in
                 if
                   is_path
                   && (not (Sys.file_exists (Filename.concat dir tok)))
                   && not (Sys.file_exists (Filename.concat root tok))
                 then err "%s:%d: `%s` does not exist" doc (lineno + 1) tok)
               (inline_code_spans line)))
    docs

(* --- 4: metric-catalog drift --- *)

(* A metric name is an [identxx_]-prefixed snake_case literal with at
   least two underscores — which excludes tool names like
   [identxx_ctl] while matching every registry series. *)
let is_metric_char = function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false

let is_metric_name s =
  String.length s > 8
  && String.sub s 0 8 = "identxx_"
  && String.for_all is_metric_char s
  && String.fold_left (fun n c -> if c = '_' then n + 1 else n) 0 s >= 2

(* Every ["identxx_..."] string literal in a source file. *)
let scan_literals acc path =
  let s = read_file path in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && is_metric_char s.[!j] do incr j done;
      if !j < n && s.[!j] = '"' then begin
        let lit = String.sub s (!i + 1) (!j - !i - 1) in
        if is_metric_name lit then Hashtbl.replace acc lit path
      end;
      i := !j
    end
    else incr i
  done

let metric_names_in_code root =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun lib ->
      let dir = Printf.sprintf "%s/lib/%s" root lib in
      List.iter
        (fun f ->
          if Filename.check_suffix f ".ml" then
            scan_literals acc (Filename.concat dir f))
        (list_dir dir))
    (list_dir (Filename.concat root "lib"));
  List.iter
    (fun sub ->
      List.iter
        (fun f ->
          if Filename.check_suffix f ".ml" then
            scan_literals acc (Filename.concat root (sub ^ "/" ^ f)))
        (list_dir (Filename.concat root sub)))
    [ "bin"; "bench"; "tools" ];
  acc

(* Catalog rows look like [| `identxx_..._total` | counter | ...]; a
   backticked span with spaces (a command synopsis) is not a row. *)
let metric_rows_in_doc root doc =
  let acc = Hashtbl.create 32 in
  (if Sys.file_exists (Filename.concat root doc) then
     String.split_on_char '\n' (read_file (Filename.concat root doc))
     |> List.iteri (fun lineno line ->
            if String.length line > 3 && String.sub line 0 3 = "| `" then
              match inline_code_spans line with
              | first :: _ when is_metric_name first ->
                  Hashtbl.replace acc first (lineno + 1)
              | _ -> ()));
  acc

let check_metric_catalog root =
  let doc = "doc/OBSERVABILITY.md" in
  let code = metric_names_in_code root in
  let rows = metric_rows_in_doc root doc in
  Hashtbl.iter
    (fun name path ->
      if not (Hashtbl.mem rows name) then
        err "%s emits `%s` but %s has no catalog row for it"
          (String.sub path (String.length root + 1)
             (String.length path - String.length root - 1))
          name doc)
    code;
  Hashtbl.iter
    (fun name lineno ->
      if not (Hashtbl.mem code name) then
        err "%s:%d: catalog row `%s` names a series no code emits" doc lineno
          name)
    rows

(* --- 5: health-rule catalog drift --- *)

(* The rule registry is the [rule ~name:"..."] literals in
   lib/obs/health.ml; the doc side is the "Health rules" table of
   doc/OBSERVABILITY.md (rows up to the next section heading whose
   first code span is a snake_case rule name). *)
let is_rule_name s =
  s <> ""
  && String.for_all (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false) s
  && not (is_metric_name s)

let rule_names_in_code root =
  let acc = Hashtbl.create 8 in
  let path = Filename.concat root "lib/obs/health.ml" in
  if Sys.file_exists path then begin
    let s = read_file path in
    let marker = "~name:\"" in
    let mlen = String.length marker in
    let n = String.length s in
    for i = 0 to n - mlen - 1 do
      if String.sub s i mlen = marker then begin
        let j = ref (i + mlen) in
        while !j < n && s.[!j] <> '"' do incr j done;
        if !j < n then begin
          let name = String.sub s (i + mlen) (!j - i - mlen) in
          if is_rule_name name then Hashtbl.replace acc name ()
        end
      end
    done
  end;
  acc

let rule_rows_in_doc root doc =
  let acc = Hashtbl.create 8 in
  (if Sys.file_exists (Filename.concat root doc) then
     let in_section = ref false in
     String.split_on_char '\n' (read_file (Filename.concat root doc))
     |> List.iteri (fun lineno line ->
            let starts p =
              String.length line >= String.length p
              && String.sub line 0 (String.length p) = p
            in
            let contains hay needle =
              let hn = String.length hay and nn = String.length needle in
              let rec go i =
                i + nn <= hn && (String.sub hay i nn = needle || go (i + 1))
              in
              go 0
            in
            if starts "## " then in_section := contains line "Health rules"
            else if !in_section && starts "| `" then
              match inline_code_spans line with
              | first :: _ when is_rule_name first ->
                  Hashtbl.replace acc first (lineno + 1)
              | _ -> ()));
  acc

let check_rule_catalog root =
  let doc = "doc/OBSERVABILITY.md" in
  let code = rule_names_in_code root in
  let rows = rule_rows_in_doc root doc in
  Hashtbl.iter
    (fun name () ->
      if not (Hashtbl.mem rows name) then
        err
          "lib/obs/health.ml ships rule `%s` but the %s health-rule table has \
           no row for it"
          name doc)
    code;
  Hashtbl.iter
    (fun name lineno ->
      if not (Hashtbl.mem code name) then
        err "%s:%d: health-rule row `%s` names a rule the registry no longer \
             ships"
          doc lineno name)
    rows

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  check_interfaces root;
  check_doc_refs root;
  check_metric_catalog root;
  check_rule_catalog root;
  let have_odoc = Sys.command "command -v odoc >/dev/null 2>&1" = 0 in
  if !errors > 0 then begin
    Printf.printf "doclint: %d finding(s)\n" !errors;
    exit 1
  end;
  Printf.printf
    "doclint: interfaces documented, doc cross-references resolve, metric \
     catalog in sync%s\n"
    (if have_odoc then " (odoc present: run `dune build @doc` for the render)"
     else " (odoc not installed: rendered-doc build gated off)")

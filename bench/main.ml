(* Benchmark harness: one Bechamel group per experiment in DESIGN.md's
   per-experiment index (E1, E6, E9-E13 are the performance-shaped ones;
   the decision matrices live in bin/experiments.exe).

   Prints ns/op estimated by OLS over the monotonic clock.
   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Netcore
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module PS = Identxx_core.Policy_store
module D = Identxx_core.Decision

let response flow pairs =
  Identxx.Response.make ~flow
    [ List.map (fun (k, v) -> Identxx.Key_value.pair k v) pairs ]

let flow ?(sp = 40000) ?(dp = 80) src dst =
  Five_tuple.tcp ~src:(Ipv4.of_string src) ~dst:(Ipv4.of_string dst)
    ~src_port:sp ~dst_port:dp

(* --- E1: full simulated flow setup (Figure 1) ------------------------ *)

let bench_fig1 =
  (* Entries expire almost immediately so the flow table stays small and
     every iteration measures a fresh table-miss setup. *)
  let config =
    { C.default_config with C.entry_idle_timeout = Some (Sim.Time.us 1) }
  in
  let s = Deploy.simple_network ~config () in
  PS.add_exn (C.policy s.Deploy.controller) ~name:"00"
    "block all\npass all with eq(@src[name], firefox)";
  let proc =
    Identxx.Host.run s.Deploy.client ~user:"alice" ~exe:"/usr/bin/firefox" ()
  in
  let counter = ref 0 in
  Test.make ~name:"fig1/flow-setup-full-exchange"
    (Staged.stage (fun () ->
         incr counter;
         let fl =
           Identxx.Host.connect s.Deploy.client ~proc
             ~dst:(Identxx.Host.ip s.Deploy.server)
             ~src_port:(10000 + (!counter mod 50000))
             ~dst_port:80 ()
         in
         Openflow.Network.send_from_host s.Deploy.network ~name:"client"
           (Identxx.Host.first_packet s.Deploy.client ~flow:fl);
         Sim.Engine.run s.Deploy.engine;
         Identxx.Process_table.disconnect
           (Identxx.Host.processes s.Deploy.client)
           ~flow:fl))

(* --- fast path: warm-cache / breaker-open / post-reload flow setup ----- *)

(* The fastpath benches share one harness: a simple network with
   microsecond entry timeouts (so every iteration is a fresh table-miss)
   and ONE long-lived connection whose first packet is re-sent each
   iteration — the measured body is exactly the table-miss flow setup
   (packet-in, decide, install, deliver), with no per-iteration
   connect/disconnect bookkeeping. The cold member of the group runs the
   identical harness with the fast path disabled, so the warm/cold ratio
   isolates what the caches save. *)
let fastpath_network ?(observe = false) ?spans ?recorder ~fastpath () =
  let config =
    {
      C.default_config with
      C.entry_idle_timeout = Some (Sim.Time.us 1);
      C.require_signed_responses = true;
      C.fastpath = fastpath;
    }
  in
  let s = Deploy.simple_network ?spans ?recorder ~config () in
  (* Representative deployment config, so the cold exchange carries its
     genuine per-flow cost: both daemons sign their answers (§3.4) and
     carry an administrator configuration of realistic size — the
     attributes a site actually publishes (patch level, requirements
     program, inventory tags) — which the caches let warm flows skip
     re-shipping, re-verifying and re-decoding. *)
  Sim.Trace.set_enabled (Openflow.Network.trace s.Deploy.network) false;
  (* Metrics recording is on by default in every controller. The
     fastpath group measures with it off, so its numbers stay
     comparable across commits regardless of what the observability
     layer grows; the obs group re-enables it to price the recording
     in (spans stay at their default: disabled). *)
  if not observe then Obs.Registry.set_enabled (C.metrics s.Deploy.controller) false;
  let admin_config =
    String.concat "\n"
      ("os-patch : 8831"
      :: List.init 24 (fun i ->
             Printf.sprintf "site-attr-%02d : %s" i (String.make 48 'v')))
  in
  List.iter
    (fun (host, key_name) ->
      let key = Idcrypto.Sign.generate key_name in
      Idcrypto.Sign.register (C.keystore s.Deploy.controller) key;
      Identxx.Host.set_signing_key host (Some key);
      match
        Identxx.Daemon.load_config (Identxx.Host.daemon host) ~name:"00-admin"
          admin_config
      with
      | Ok () -> ()
      | Error e -> failwith e)
    [ (s.Deploy.client, "client-host"); (s.Deploy.server, "server-host") ];
  PS.add_exn (C.policy s.Deploy.controller) ~name:"00"
    "block all\npass all with eq(@src[name], firefox)";
  s

(* Sim time accumulates across iterations; a huge TTL and backoff keep
   cache entries and breaker state live for the whole run. *)
let fastpath_on =
  {
    Fastpath.default_config with
    Fastpath.attr_ttl = Sim.Time.s 1_000_000;
    breaker_backoff = Sim.Time.s 1_000_000;
  }

let flow_setup_iter s =
  let proc =
    Identxx.Host.run s.Deploy.client ~user:"alice" ~exe:"/usr/bin/firefox" ()
  in
  let fl =
    Identxx.Host.connect s.Deploy.client ~proc
      ~dst:(Identxx.Host.ip s.Deploy.server)
      ~dst_port:80 ()
  in
  let pkt = Identxx.Host.first_packet s.Deploy.client ~flow:fl in
  fun () ->
    Openflow.Network.send_from_host s.Deploy.network ~name:"client" pkt;
    Sim.Engine.run s.Deploy.engine

let bench_fastpath_cold =
  let s = fastpath_network ~fastpath:Fastpath.disabled () in
  let iter = flow_setup_iter s in
  Test.make ~name:"fastpath/flow-setup-cold-exchange" (Staged.stage iter)

let bench_fastpath_warm =
  let s = fastpath_network ~fastpath:fastpath_on () in
  let iter = flow_setup_iter s in
  (* One cold exchange warms both caches; every measured iteration is a
     pure attribute-cache + decision-cache hit. *)
  iter ();
  Test.make ~name:"fastpath/flow-setup-warm-cache" (Staged.stage iter)

let bench_fastpath_breaker_open =
  let s = fastpath_network ~fastpath:fastpath_on () in
  (* Both daemons silent: the breaker trips during setup, then every
     measured flow decides immediately with absent responses (§4's
     non-ident++-host fallback). *)
  Identxx.Daemon.set_behaviour
    (Identxx.Host.daemon s.Deploy.client)
    Identxx.Daemon.Silent;
  Identxx.Daemon.set_behaviour
    (Identxx.Host.daemon s.Deploy.server)
    Identxx.Daemon.Silent;
  let iter = flow_setup_iter s in
  for _ = 1 to fastpath_on.Fastpath.breaker_threshold do
    iter ()
  done;
  Test.make ~name:"fastpath/flow-setup-breaker-open" (Staged.stage iter)

let bench_fastpath_post_reload =
  let s = fastpath_network ~fastpath:fastpath_on () in
  let iter = flow_setup_iter s in
  iter ();
  (* Each iteration reloads the policy (epoch bump, decision cache
     flushed) and then sets up a flow: attributes stay warm, only the
     PF+=2 evaluation is redone. *)
  Test.make ~name:"fastpath/flow-setup-post-reload"
    (Staged.stage (fun () ->
         PS.add_exn
           (C.policy s.Deploy.controller)
           ~name:"00" "block all\npass all with eq(@src[name], firefox)";
         iter ()))

(* --- E9: decision latency vs ruleset size ---------------------------- *)

let ruleset n tail =
  String.concat "\n"
    (List.init n (fun i ->
         Printf.sprintf "%s from 172.16.%d.0/24 to any port %d"
           (if i mod 2 = 0 then "block" else "pass")
           (i mod 250) (1000 + i))
    @ [ tail ])

let decision_for text =
  let policy = PS.create () in
  PS.add_exn policy ~name:"00" text;
  D.create ~policy ()

let bench_decision_vs_rules =
  let fl = flow "10.0.0.1" "10.1.0.1" in
  let src = Some (response fl [ ("name", "firefox"); ("userID", "u1") ]) in
  Test.make_indexed ~name:"setup/decision-vs-rules" ~args:[ 10; 100; 1000 ]
    (fun n ->
      let d =
        decision_for (ruleset n "pass all with eq(@src[name], firefox)")
      in
      let input = { D.flow = fl; src_response = src; dst_response = None } in
      Staged.stage (fun () -> ignore (D.allows d input)))

(* --- E10: switch datapath (cached forwarding) ------------------------ *)

let bench_flow_table =
  Test.make_indexed ~name:"datapath/flow-table-lookup" ~args:[ 10; 100; 1000 ]
    (fun n ->
      let population = Workload.Population.create ~clients:250 ~servers:200 () in
      let tuples = Workload.Flowgen.distinct_tuples ~population ~count:n in
      let table = Openflow.Flow_table.create () in
      List.iter
        (fun ft ->
          Openflow.Flow_table.add table
            (Openflow.Flow_entry.make
               ~fields:(Openflow.Match_fields.of_five_tuple ft)
               [ Openflow.Action.Output 1 ]))
        tuples;
      (* Probe the median entry: cost of a wildcard-table scan. *)
      let probe = Packet.of_five_tuple (List.nth tuples (n / 2)) in
      Staged.stage (fun () ->
          ignore (Openflow.Flow_table.lookup table ~in_port:1 probe)))

let bench_switch_process_hit =
  let sw = Openflow.Switch.create ~dpid:1 ~ports:[ 1; 2 ] () in
  let ft = flow "10.0.0.1" "10.0.0.2" in
  Openflow.Flow_table.add (Openflow.Switch.table sw)
    (Openflow.Flow_entry.make
       ~fields:(Openflow.Match_fields.of_five_tuple ft)
       [ Openflow.Action.Output 2 ]);
  let pkt = Packet.of_five_tuple ft in
  Test.make ~name:"datapath/switch-process-cached"
    (Staged.stage (fun () ->
         ignore (Openflow.Switch.process sw ~now:Sim.Time.zero ~in_port:1 pkt)))

let bench_switch_process_with_timeouts =
  let sw = Openflow.Switch.create ~dpid:1 ~ports:[ 1; 2 ] () in
  let ft = flow "10.0.0.1" "10.0.0.2" in
  Openflow.Flow_table.add (Openflow.Switch.table sw)
    (Openflow.Flow_entry.make ~idle_timeout:(Sim.Time.s 3600)
       ~fields:(Openflow.Match_fields.of_five_tuple ft)
       [ Openflow.Action.Output 2 ]);
  let pkt = Packet.of_five_tuple ft in
  Test.make ~name:"datapath/switch-process-idle-timeout"
    (Staged.stage (fun () ->
         ignore (Openflow.Switch.process sw ~now:(Sim.Time.ms 1) ~in_port:1 pkt)))

(* --- E11: PF+=2 evaluation throughput, quick ablation ----------------- *)

let bench_pf_eval =
  let fl = flow "10.0.0.1" "10.1.0.1" in
  let src = response fl [ ("name", "firefox"); ("userID", "u1") ] in
  let ctx = Pf.Eval.ctx ~src () in
  Test.make_indexed ~name:"pf/eval-last-match" ~args:[ 10; 100; 1000 ]
    (fun n ->
      let env =
        match
          Pf.Env.of_string (ruleset n "pass all with eq(@src[name], firefox)")
        with
        | Ok e -> e
        | Error e -> failwith e
      in
      Staged.stage (fun () -> ignore (Pf.Eval.eval env ctx fl)))

let bench_pf_eval_quick =
  let fl = flow "10.0.0.1" "10.1.0.1" in
  let src = response fl [ ("name", "firefox"); ("userID", "u1") ] in
  let ctx = Pf.Eval.ctx ~src () in
  Test.make_indexed ~name:"pf/eval-quick-first" ~args:[ 10; 100; 1000 ]
    (fun n ->
      let env =
        match
          Pf.Env.of_string
            ("pass quick all with eq(@src[name], firefox)\n" ^ ruleset n "block all")
        with
        | Ok e -> e
        | Error e -> failwith e
      in
      Staged.stage (fun () -> ignore (Pf.Eval.eval env ctx fl)))

let bench_pf_allowed =
  let fl = flow "10.0.0.1" "10.1.0.1" in
  let requirements =
    "block all pass from any to any port 80 with eq(@src[name], firefox)"
  in
  let src =
    response fl [ ("name", "firefox"); ("requirements", requirements) ]
  in
  let ctx = Pf.Eval.ctx ~src () in
  let env =
    match
      Pf.Env.of_string "block all\npass all with allowed(@src[requirements])"
    with
    | Ok e -> e
    | Error e -> failwith e
  in
  Test.make ~name:"pf/eval-allowed-cached"
    (Staged.stage (fun () -> ignore (Pf.Eval.eval env ctx fl)))

let bench_pf_parse =
  let text = ruleset 100 "pass all with eq(@src[name], firefox)" in
  Test.make ~name:"pf/parse-100-rules"
    (Staged.stage (fun () -> ignore (Pf.Parser.parse text)))

(* --- E11b: decision-diagram analysis (lib/analysis/fdd.mli) ----------- *)

(* analysis/fdd-lookup is the headline: the diagram answers the same
   question as pf/eval-last-match (what verdict does this flow get)
   with a five-node walk instead of a rule scan, so its per-op cost
   must stay flat as the ruleset grows. *)

let bench_env_of text =
  match Pf.Env.of_string text with Ok e -> e | Error e -> failwith e

let bench_fdd_compile =
  Test.make_indexed ~name:"analysis/fdd-compile" ~args:[ 10; 100; 1000 ]
    (fun n ->
      let env = bench_env_of (ruleset n "pass all with eq(@src[name], firefox)") in
      Staged.stage (fun () -> ignore (Analysis.Fdd.compile env)))

let bench_fdd_lookup =
  let fl = flow "10.0.0.1" "10.1.0.1" in
  Test.make_indexed ~name:"analysis/fdd-lookup" ~args:[ 10; 100; 1000 ]
    (fun n ->
      let fdd =
        Analysis.Fdd.compile
          (bench_env_of (ruleset n "pass all with eq(@src[name], firefox)"))
      in
      Staged.stage (fun () -> ignore (Analysis.Fdd.lookup fdd fl)))

(* The Figure-2 deployment (admin header + vendor fragment), embedded
   inline because the bench binary reads no files. The "new" revision
   is a plausible operator edit: the update CDN moved and the vendor
   widened the update port — equiv must find a counterexample, diff
   must localize it. *)
let figure2_policy =
  {|table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
table <skype_update> { 123.123.123.0/24 }
block all
pass from <int_hosts> to !<int_hosts> keep state
pass all with eq(@src[name], skype) with eq(@dst[name], skype)
pass from any to <skype_update> port 80 with eq(@src[name], skype) keep state|}

let figure2_policy_edited =
  {|table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
table <skype_update> { 123.123.200.0/24 }
block all
pass from <int_hosts> to !<int_hosts> keep state
pass all with eq(@src[name], skype) with eq(@dst[name], skype)
pass from any to <skype_update> port 80:443 with eq(@src[name], skype) keep state|}

let bench_fdd_equiv =
  let a = Analysis.Fdd.compile (bench_env_of figure2_policy) in
  let b = Analysis.Fdd.compile (bench_env_of figure2_policy_edited) in
  Test.make ~name:"analysis/equiv-figure2"
    (Staged.stage (fun () -> ignore (Analysis.Fdd.equiv a b)))

let bench_fdd_diff =
  let a = Analysis.Fdd.compile (bench_env_of figure2_policy) in
  let b = Analysis.Fdd.compile (bench_env_of figure2_policy_edited) in
  Test.make ~name:"analysis/diff-figure2"
    (Staged.stage (fun () -> ignore (Analysis.Fdd.diff a b)))

(* --- the proactive flow-table compiler (lib/compiler) ----------------- *)

let bench_compile_table =
  Test.make_indexed ~name:"compile/table-compile" ~args:[ 10; 100; 1000 ]
    (fun n ->
      let fdd =
        Analysis.Fdd.compile
          (bench_env_of (ruleset n "pass all with eq(@src[name], firefox)"))
      in
      Staged.stage (fun () -> ignore (Compiler.compile fdd)))

(* The steady-state recompile: the hash-consed node cache makes an
   edited policy cost only its changed regions, and delta emits the
   minimal flow-mod step. *)
let bench_compile_incremental =
  let cache = Compiler.create_cache () in
  let a = Analysis.Fdd.compile (bench_env_of figure2_policy) in
  let b = Analysis.Fdd.compile (bench_env_of figure2_policy_edited) in
  let old_ = Compiler.compile ~cache a in
  Test.make ~name:"compile/incremental-delta"
    (Staged.stage (fun () ->
         ignore (Compiler.delta ~old_ (Compiler.compile ~cache b))))

(* The counterpart of fig1/flow-setup-full-exchange with the static
   slice pushed into the switches: the flow hits a compiled wildcard
   entry and crosses the fabric with zero packet-ins (asserted in
   test/test_compiler.ml), so the measured cost is pure dataplane. *)
let bench_proactive_hit =
  let config = { C.default_config with C.proactive = true } in
  let s = Deploy.simple_network ~config () in
  PS.add_exn (C.policy s.Deploy.controller) ~name:"00" "pass all";
  (* let the compiled flow-mods land before traffic *)
  Sim.Engine.run s.Deploy.engine;
  let proc =
    Identxx.Host.run s.Deploy.client ~user:"alice" ~exe:"/usr/bin/firefox" ()
  in
  let counter = ref 0 in
  Test.make ~name:"fig1/flow-setup-proactive-hit"
    (Staged.stage (fun () ->
         incr counter;
         let fl =
           Identxx.Host.connect s.Deploy.client ~proc
             ~dst:(Identxx.Host.ip s.Deploy.server)
             ~src_port:(10000 + (!counter mod 50000))
             ~dst_port:80 ()
         in
         Openflow.Network.send_from_host s.Deploy.network ~name:"client"
           (Identxx.Host.first_packet s.Deploy.client ~flow:fl);
         Sim.Engine.run s.Deploy.engine;
         Identxx.Process_table.disconnect
           (Identxx.Host.processes s.Deploy.client)
           ~flow:fl))

(* --- E12: protocol and crypto costs ----------------------------------- *)

let bench_proto =
  let fl = flow "10.0.0.1" "10.1.0.1" in
  let r =
    Identxx.Response.make ~flow:fl
      (List.init 4 (fun s ->
           List.init 6 (fun i ->
               Identxx.Key_value.pair
                 (Printf.sprintf "key-%d-%d" s i)
                 (Printf.sprintf "value-%d-%d" s i))))
  in
  let encoded = Identxx.Response.encode r in
  let q = Identxx.Query.make ~flow:fl ~keys:[ "userID"; "name"; "exe-hash" ] in
  let qe = Identxx.Query.encode q in
  [
    Test.make ~name:"proto/query-encode"
      (Staged.stage (fun () -> ignore (Identxx.Query.encode q)));
    Test.make ~name:"proto/query-decode"
      (Staged.stage (fun () -> ignore (Identxx.Query.decode qe)));
    Test.make ~name:"proto/response-encode"
      (Staged.stage (fun () -> ignore (Identxx.Response.encode r)));
    Test.make ~name:"proto/response-decode"
      (Staged.stage (fun () -> ignore (Identxx.Response.decode encoded)));
  ]

let bench_crypto =
  let kp = Idcrypto.Sign.generate "bench" in
  let ks = Idcrypto.Sign.keystore () in
  Idcrypto.Sign.register ks kp;
  let data = [ "hash"; "app"; "requirements text of moderate length" ] in
  let signature = Idcrypto.Sign.sign ~secret:kp.Idcrypto.Sign.secret data in
  let one_kb = String.make 1024 'x' in
  [
    Test.make ~name:"crypto/sha256-1KiB"
      (Staged.stage (fun () -> ignore (Idcrypto.Sha256.digest one_kb)));
    Test.make ~name:"crypto/sign"
      (Staged.stage (fun () ->
           ignore (Idcrypto.Sign.sign ~secret:kp.Idcrypto.Sign.secret data)));
    Test.make ~name:"crypto/verify"
      (Staged.stage (fun () ->
           ignore
             (Idcrypto.Sign.verify ks ~public:kp.Idcrypto.Sign.public ~signature
                data)));
  ]

(* --- wire packet encode/decode ----------------------------------------- *)

let bench_packet =
  let pkt =
    Packet.udp_datagram
      ~src:(Ipv4.of_string "10.0.0.1")
      ~dst:(Ipv4.of_string "10.0.0.2")
      ~src_port:4000 ~dst_port:5000 ~payload:(String.make 512 'p') ()
  in
  let wire = Packet.encode pkt in
  [
    Test.make ~name:"packet/encode-udp-512B"
      (Staged.stage (fun () -> ignore (Packet.encode pkt)));
    Test.make ~name:"packet/decode-udp-512B"
      (Staged.stage (fun () -> ignore (Packet.decode wire)));
  ]

(* --- E13: enforcement scoring over the mixed workload ------------------ *)

let bench_granularity =
  let population = Workload.Population.create ~clients:40 ~servers:8 () in
  let prng = Sim.Prng.create 7 in
  let flows =
    Workload.Flowgen.mixed
      ~intent:(Workload.Flowgen.intent_of_population population)
      ~prng ~population ~count:500 ()
  in
  let identxx =
    Baselines.Systems.identxx_exn
      ~policy:
        "table <lan> { 10.0.0.0/8 }\n\
         table <important> { 10.1.0.1 }\n\
         allowed = \"{ firefox ssh thunderbird skype }\"\n\
         block all\n\
         pass from <lan> to any with member(@src[name], $allowed)\n\
         block from any to <important> with eq(@src[name], skype)"
      ()
  in
  let vanilla =
    Baselines.Systems.vanilla_exn
      ~policy:
        "table <lan> { 10.0.0.0/8 }\n\
         block all\n\
         pass from <lan> to any port 80\n\
         pass from <lan> to any port 22\n\
         pass from <lan> to any port 25"
  in
  [
    Test.make ~name:"ablation/score-identxx-500flows"
      (Staged.stage (fun () ->
           ignore (Baselines.Enforcement.score identxx flows)));
    Test.make ~name:"ablation/score-vanilla-500flows"
      (Staged.stage (fun () ->
           ignore (Baselines.Enforcement.score vanilla flows)));
  ]

(* --- E6: collaboration round over the two-domain fabric ---------------- *)

let bench_collab =
  Test.make ~name:"collab/two-domain-exchange"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         let topology = Openflow.Topology.create () in
         Openflow.Topology.add_switch topology 1;
         Openflow.Topology.add_switch topology 2;
         List.iter (Openflow.Topology.add_host topology) [ "a1"; "b1" ];
         Openflow.Topology.link topology
           (Openflow.Topology.Host "a1", 0)
           (Openflow.Topology.Sw 1, 1);
         Openflow.Topology.link topology
           (Openflow.Topology.Host "b1", 0)
           (Openflow.Topology.Sw 2, 1);
         Openflow.Topology.link topology
           (Openflow.Topology.Sw 1, 9)
           (Openflow.Topology.Sw 2, 9);
         let network = Openflow.Network.create ~engine ~topology () in
         let ca = C.create ~network ~id:0 () in
         let cb = C.create ~network ~id:1 () in
         Openflow.Network.assign_switch network 1 0;
         Openflow.Network.assign_switch network 2 1;
         PS.add_exn (C.policy ca) ~name:"00"
           "block all\npass all with member(@src[name], @dst[accepts])";
         PS.add_exn (C.policy cb) ~name:"00" "pass all";
         C.set_response_augment cb (fun _ ->
             [ Identxx.Key_value.pair "accepts" "{ firefox }" ]);
         let a1 =
           Identxx.Host.create ~name:"a1" ~mac:(Mac.of_int 0xa1)
             ~ip:(Ipv4.of_string "10.10.0.1") ()
         in
         let b1 =
           Identxx.Host.create ~name:"b1" ~mac:(Mac.of_int 0xb1)
             ~ip:(Ipv4.of_string "10.20.0.1") ()
         in
         List.iter (Deploy.attach_host network) [ a1; b1 ];
         let proc = Identxx.Host.run a1 ~user:"u" ~exe:"/usr/bin/firefox" () in
         let fl =
           Identxx.Host.connect a1 ~proc ~dst:(Identxx.Host.ip b1) ~dst_port:80 ()
         in
         Openflow.Network.send_from_host network ~name:"a1"
           (Identxx.Host.first_packet a1 ~flow:fl);
         Sim.Engine.run engine))

(* --- routing and state substrates --------------------------------------- *)

let bench_dijkstra =
  Test.make_indexed ~name:"topology/next-hop-linear" ~args:[ 8; 32; 64 ]
    (fun n ->
      let topology = Openflow.Topology.create () in
      for s = 1 to n do
        Openflow.Topology.add_switch topology s
      done;
      for s = 1 to n - 1 do
        Openflow.Topology.link topology
          (Openflow.Topology.Sw s, 1)
          (Openflow.Topology.Sw (s + 1), 0)
      done;
      Openflow.Topology.add_host topology "far";
      Openflow.Topology.link topology
        (Openflow.Topology.Host "far", 0)
        (Openflow.Topology.Sw n, 5);
      Staged.stage (fun () ->
          ignore (Openflow.Topology.next_hop topology ~from:1 ~dst_host:"far")))

(* Generated-fabric routing (BENCH_topo.json, doc/TOPOLOGY.md). The
   next-hop series scales a leaf-spine fabric by an order of magnitude
   in host count: a flat series is the tentpole claim — lookups hit the
   precomputed per-destination tables, they do not search the graph.
   The k=8 fat-tree members price topology churn: an incremental
   link-flap repair vs the full one-Dijkstra-per-destination rebuild,
   and the O(1) host attach/detach path. *)
let topo_leaf_spine ~hosts =
  Workload.Fabric.build
    (Workload.Fabric.Leaf_spine
       { spines = 4; leaves = max 1 (hosts / 8); hosts_per_leaf = 8 })

let topo_fat_tree_k8 () =
  (Workload.Fabric.build (Workload.Fabric.Fat_tree { k = 8 }))
    .Workload.Fabric.topology

(* Warm the routing tables (first lookup materializes them) so staged
   bodies measure steady state. *)
let warm_routes topology =
  match Openflow.Topology.hosts topology with
  | h :: _ -> ignore (Openflow.Topology.next_hop topology ~from:1 ~dst_host:h)
  | [] -> ()

let bench_next_hop =
  Test.make_indexed ~name:"topology/next-hop"
    ~args:[ 8; 32; 64; 256; 1024 ]
    (fun n ->
      let fab = topo_leaf_spine ~hosts:n in
      let topology = fab.Workload.Fabric.topology in
      let hosts = fab.Workload.Fabric.hosts in
      let dst_host = hosts.(Array.length hosts - 1).Workload.Fabric.hs_name in
      (* from the first leaf (dpid 5: spines are 1..4) to a host on the
         last leaf — a spine crossing at every size. *)
      ignore (Openflow.Topology.next_hop topology ~from:5 ~dst_host);
      Staged.stage (fun () ->
          ignore (Openflow.Topology.next_hop topology ~from:5 ~dst_host)))

(* Fat-tree k=8 dpids (doc/TOPOLOGY.md): aggregation 0 of pod 0 is 17,
   edge 0 of pod 0 is 49; their link is agg port 1 <-> edge port 5. *)
let bench_link_flap =
  let topology = topo_fat_tree_k8 () in
  warm_routes topology;
  Test.make ~name:"topology/link-flap-incremental-k8"
    (Staged.stage (fun () ->
         Openflow.Topology.unlink topology (Openflow.Topology.Sw 17, 1);
         Openflow.Topology.link topology ~latency:(Sim.Time.us 10)
           (Openflow.Topology.Sw 17, 1)
           (Openflow.Topology.Sw 49, 5)))

let bench_full_recompute =
  let topology = topo_fat_tree_k8 () in
  warm_routes topology;
  Test.make ~name:"topology/full-recompute-k8"
    (Staged.stage (fun () -> Openflow.Topology.recompute_routes topology))

let bench_host_attach =
  let topology = topo_fat_tree_k8 () in
  warm_routes topology;
  Test.make ~name:"topology/host-attach-detach-k8"
    (Staged.stage (fun () ->
         Openflow.Topology.add_host topology "bench-h";
         Openflow.Topology.link topology
           (Openflow.Topology.Host "bench-h", 0)
           (Openflow.Topology.Sw 49, 9);
         Openflow.Topology.remove_host topology "bench-h"))

let bench_conn_state =
  let cs = Identxx_core.Conn_state.create () in
  let population = Workload.Population.create ~clients:250 ~servers:40 () in
  let tuples = Workload.Flowgen.distinct_tuples ~population ~count:10_000 in
  List.iter (fun ft -> Identxx_core.Conn_state.note cs ~now:Sim.Time.zero ft) tuples;
  let probe = List.nth tuples 5_000 in
  Test.make ~name:"state/conn-state-permits-10k"
    (Staged.stage (fun () ->
         ignore
           (Identxx_core.Conn_state.permits cs ~now:Sim.Time.zero
              (Five_tuple.reverse probe))))

(* --- daemon answer path ------------------------------------------------ *)

let bench_daemon =
  let host =
    Identxx.Host.create ~name:"h" ~mac:(Mac.of_int 1)
      ~ip:(Ipv4.of_string "10.0.0.1") ()
  in
  Identxx.Host.install_exe host ~path:"/usr/bin/firefox" ~content:"ff-image";
  let proc = Identxx.Host.run host ~user:"alice" ~exe:"/usr/bin/firefox" () in
  let fl =
    Identxx.Host.connect host ~proc
      ~dst:(Ipv4.of_string "10.0.0.2")
      ~dst_port:80 ()
  in
  Test.make ~name:"proto/daemon-answer"
    (Staged.stage (fun () ->
         ignore
           (Identxx.Daemon.answer (Identxx.Host.daemon host)
              ~peer:fl.Five_tuple.dst ~proto:fl.Five_tuple.proto
              ~src_port:fl.Five_tuple.src_port ~dst_port:fl.Five_tuple.dst_port
              ~keys:[])))

(* --- sharded flow-setup: concurrent burst ------------------------------ *)

(* The sharded engine's target workload: a burst of concurrent
   table-miss flows converging on one hot host. [shards = None] is the
   sequential baseline; [Some n] partitions flow setup across [n] run
   queues with query coalescing and batched installs. [service] > 0
   charges each shard a simulated per-message cost, so the run's
   makespan (Controller.shard_makespan) models n controller cores —
   the throughput series in BENCH_shard.json divides flows by it. *)
let shard_burst ?(coalesce = true) ?(service = Sim.Time.zero) ~shards ~flows
    () =
  let config =
    {
      C.default_config with
      (* Keep queue delay (flows x service on one shard) well under the
         timeout so the series measures throughput, not timeouts. *)
      C.query_timeout = Sim.Time.s 1;
      C.shards =
        Option.map
          (fun n ->
            { C.shard_count = n; shard_service = service; coalesce })
          shards;
    }
  in
  let engine, network, controller, hosts =
    Deploy.linear_network ~config ~switches:4 ~hosts_per_switch:4 ()
  in
  PS.add_exn (C.policy controller) ~name:"00" "pass all";
  let n_hosts = Array.length hosts in
  let target = hosts.(0) in
  let procs =
    Array.map (fun h -> Identxx.Host.run h ~user:"u" ~exe:"/bin/app" ()) hosts
  in
  for i = 0 to flows - 1 do
    let hi = 1 + (i mod (n_hosts - 1)) in
    let h = hosts.(hi) in
    let fl =
      Identxx.Host.connect h ~proc:procs.(hi) ~dst:(Identxx.Host.ip target)
        ~src_port:(10000 + (i / (n_hosts - 1)))
        ~dst_port:80 ()
    in
    Openflow.Network.send_from_host network ~name:(Identxx.Host.name h)
      (Identxx.Host.first_packet h ~flow:fl)
  done;
  Sim.Engine.run engine;
  controller

let bench_concurrent_burst =
  let mk name shards =
    Test.make ~name
      (Staged.stage (fun () -> ignore (shard_burst ~shards ~flows:256 ())))
  in
  [
    mk "setup/concurrent-burst-sequential" None;
    mk "setup/concurrent-burst-1shard" (Some 1);
    mk "setup/concurrent-burst-4shard" (Some 4);
  ]

(* --- observability ----------------------------------------------------- *)

(* Prices the metrics layer. The micro pairs pin the registry's two
   promises (O(1) enabled record, one-load-one-branch disabled record);
   the flow-setup member runs the exact fastpath/flow-setup-warm-cache
   harness with recording ON, so the delta against that bench is the
   end-to-end cost of observability on the hottest controller path —
   the acceptance bar is that the disabled path shows no measurable
   regression. *)
let bench_obs =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "bench_counter_total" in
  let h = Obs.Registry.histogram reg "bench_seconds" in
  let reg_off = Obs.Registry.create ~enabled:false () in
  let c_off = Obs.Registry.counter reg_off "bench_counter_total" in
  let h_off = Obs.Registry.histogram reg_off "bench_seconds" in
  let spans_off = Obs.Span.create ~enabled:false () in
  [
    Test.make ~name:"obs/counter-inc"
      (Staged.stage (fun () -> Obs.Registry.Counter.inc c));
    Test.make ~name:"obs/counter-inc-disabled"
      (Staged.stage (fun () -> Obs.Registry.Counter.inc c_off));
    Test.make ~name:"obs/histogram-observe"
      (Staged.stage (fun () -> Obs.Registry.Histogram.observe h 3.2e-4));
    Test.make ~name:"obs/histogram-observe-disabled"
      (Staged.stage (fun () -> Obs.Registry.Histogram.observe h_off 3.2e-4));
    Test.make ~name:"obs/span-start-finish-disabled"
      (Staged.stage (fun () ->
           let sp = Obs.Span.start spans_off ~at:0. "flow-setup" in
           Obs.Span.finish spans_off ~at:0. sp));
    Test.make ~name:"obs/snapshot-export-prometheus"
      (Staged.stage (fun () -> ignore (Obs.Export.prometheus reg)));
  ]

(* A 1000-series registry — the cardinality a real per-source /
   per-shard deployment reaches — prices the exporter and a window
   close (a full snapshot diff) at scale. *)
let bench_obs_scale =
  let reg = Obs.Registry.create () in
  for i = 0 to 499 do
    let labels = [ ("src", Printf.sprintf "10.0.%d.%d" (i / 250) (i mod 250)) ] in
    Obs.Registry.Counter.add
      (Obs.Registry.counter reg ~labels "bench_pkt_total")
      (i mod 7);
    Obs.Registry.Gauge.set (Obs.Registry.gauge reg ~labels "bench_depth")
      (float_of_int i)
  done;
  let window = Obs.Window.create ~interval:1e-9 ~now:0. reg in
  let now = ref 0. in
  let recorder = Obs.Recorder.create ~enabled:true () in
  [
    Test.make ~name:"obs/prometheus-export-1k-series"
      (Staged.stage (fun () -> ignore (Obs.Export.prometheus reg)));
    Test.make ~name:"obs/window-close-1k-series"
      (Staged.stage (fun () ->
           now := !now +. 1.;
           ignore (Obs.Window.close window ~now:!now)));
    Test.make ~name:"obs/recorder-record"
      (Staged.stage (fun () ->
           Obs.Recorder.record recorder ~at:0.
             ~attrs:[ ("flow", "tcp 10.0.0.1:50000 -> 10.0.0.2:80") ]
             "packet-in"));
  ]

let bench_obs_flow_setup =
  let s = fastpath_network ~observe:true ~fastpath:fastpath_on () in
  let iter = flow_setup_iter s in
  iter ();
  Test.make ~name:"obs/flow-setup-warm-metrics-on" (Staged.stage iter)

(* The continuous-monitoring overhead bar: the exact warm flow-setup
   harness with the flight recorder enabled and a health engine ticking
   per flow (windows close on their interval, so a tick is a float
   compare — the recorder events are the per-flow cost). Must land
   within 10% of obs/flow-setup-warm-metrics-on. *)
let bench_obs_flow_setup_health =
  let recorder = Obs.Recorder.create ~enabled:true () in
  let s = fastpath_network ~observe:true ~recorder ~fastpath:fastpath_on () in
  let obs = C.metrics s.Deploy.controller in
  let health =
    Obs.Health.create ~recorder ~registry:obs
      (Obs.Window.create ~interval:3600. ~now:0. obs)
  in
  let iter = flow_setup_iter s in
  iter ();
  Test.make ~name:"obs/flow-setup-warm-health-on"
    (Staged.stage (fun () ->
         iter ();
         ignore (Obs.Health.step health ~now:0.)))

(* --- tracing ----------------------------------------------------------- *)

(* Prices distributed tracing on the hottest path: the exact
   fastpath/flow-setup-warm-cache harness with a span collector that is
   disabled, head-sampling at 1%, and always-on. The off member must
   measure at the warm-cache baseline (a disabled collector hands out
   the shared null span — one load and one branch per call site); the
   deltas price root-span bookkeeping, trace-context derivation, and —
   on flows that miss the caches — propagating the context to the
   daemons and stitching their spans back in. *)
let bench_trace =
  let mk name ~enabled ~rate =
    let spans = Obs.Span.create ~enabled () in
    Obs.Span.set_sample_rate spans rate;
    let s = fastpath_network ~spans ~fastpath:fastpath_on () in
    let iter = flow_setup_iter s in
    iter ();
    Test.make ~name (Staged.stage iter)
  in
  [
    mk "trace/flow-setup-trace-off" ~enabled:false ~rate:1.0;
    mk "trace/flow-setup-trace-sampled-1pct" ~enabled:true ~rate:0.01;
    mk "trace/flow-setup-trace-always-on" ~enabled:true ~rate:1.0;
  ]

(* --- harness ----------------------------------------------------------- *)

let tests =
  Test.make_grouped ~name:"identxx"
    ([
       bench_fig1;
       bench_fastpath_cold;
       bench_fastpath_warm;
       bench_fastpath_breaker_open;
       bench_fastpath_post_reload;
       bench_decision_vs_rules;
       bench_flow_table;
       bench_switch_process_hit;
       bench_switch_process_with_timeouts;
       bench_pf_eval;
       bench_pf_eval_quick;
       bench_pf_parse;
       bench_pf_allowed;
       bench_fdd_compile;
       bench_fdd_lookup;
       bench_fdd_equiv;
       bench_fdd_diff;
       bench_compile_table;
       bench_compile_incremental;
       bench_proactive_hit;
       bench_daemon;
       bench_collab;
       bench_dijkstra;
       bench_next_hop;
       bench_link_flap;
       bench_full_recompute;
       bench_host_attach;
       bench_conn_state;
       bench_obs_flow_setup;
       bench_obs_flow_setup_health;
     ]
    @ bench_concurrent_burst @ bench_obs @ bench_obs_scale @ bench_trace
    @ bench_proto
    @ bench_crypto @ bench_packet @ bench_granularity)

(* Run every benchmark body exactly once, untimed — `dune build
   @bench-smoke` uses this so bench code can't bit-rot outside the
   (slow) timed runs. *)
let run_smoke () =
  List.iter
    (fun elt ->
      let (Test.V { fn; kind; allocate; free }) = Test.Elt.fn elt in
      let fn = fn `Init in
      (match kind with
      | Test.Uniq ->
          let v = allocate () in
          ignore (fn (Test.Uniq.prj v));
          free v
      | Test.Multiple ->
          let v = allocate 1 in
          ignore (fn (Test.Multiple.prj v).(0));
          free v);
      Printf.printf "smoke: %s ok\n%!" (Test.Elt.name elt))
    (Test.elements tests);
  Printf.printf "all benchmark bodies ran once.\n"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Machine-readable results, one object per benchmark, so the perf
   trajectory can be diffed across commits (see bench/baseline.json). *)
let write_json file rows =
  let oc = open_out file in
  output_string oc "[\n";
  List.iteri
    (fun i (name, ns, runs) ->
      Printf.fprintf oc "  { \"name\": \"%s\", \"ns_per_op\": %s, \"runs\": %d }%s\n"
        (json_escape name)
        (if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns)
        runs
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s\n" file

(* The sharded-engine series (BENCH_shard.json): a 10k-flow concurrent
   burst with a 1 us simulated per-message cost, across shard counts —
   throughput is flows divided by the parallel makespan, all on the
   simulated clock, so the numbers are deterministic — plus the
   coalescing series (the same hot-host burst with the connection table
   off vs on). *)
let run_shards_json file =
  let flows = 10_000 in
  let service = Sim.Time.us 1 in
  let series =
    List.map
      (fun n ->
        let c = shard_burst ~shards:(Some n) ~service ~flows () in
        let st = C.stats c in
        let makespan = Sim.Time.to_float_s (C.shard_makespan c) in
        Printf.printf
          "shards=%d makespan=%.6fs throughput=%.0f flows/s timeouts=%d\n%!" n
          makespan
          (float_of_int flows /. makespan)
          st.C.query_timeouts;
        (n, makespan, st))
      [ 1; 2; 4; 8 ]
  in
  let co_flows = 1_000 in
  let co_off = shard_burst ~shards:(Some 4) ~coalesce:false ~flows:co_flows () in
  let co_on = shard_burst ~shards:(Some 4) ~coalesce:true ~flows:co_flows () in
  let q_off = (C.stats co_off).C.queries_sent in
  let q_on = (C.stats co_on).C.queries_sent in
  Printf.printf "coalescing: %d wire queries without, %d with (%d absorbed)\n%!"
    q_off q_on
    (C.coalesced_queries co_on);
  let speedup n =
    match series with
    | (1, base, _) :: _ -> (
        match List.find_opt (fun (m, _, _) -> m = n) series with
        | Some (_, mk, _) -> base /. mk
        | None -> nan)
    | _ -> nan
  in
  let oc = open_out file in
  Printf.fprintf oc
    "{\n  \"workload\": \"concurrent-burst\",\n  \"flows\": %d,\n\
    \  \"service_us\": 1,\n  \"shards\": [\n"
    flows;
  List.iteri
    (fun i (n, makespan, (st : C.stats)) ->
      Printf.fprintf oc
        "    { \"shards\": %d, \"makespan_s\": %.6f, \
         \"throughput_flows_per_s\": %.0f,\n\
        \      \"flows_seen\": %d, \"query_timeouts\": %d }%s\n"
        n makespan
        (float_of_int flows /. makespan)
        st.C.flows_seen st.C.query_timeouts
        (if i = List.length series - 1 then "" else ","))
    series;
  Printf.fprintf oc
    "  ],\n  \"speedup_4_shards\": %.2f,\n  \"speedup_8_shards\": %.2f,\n\
    \  \"coalescing\": {\n    \"flows\": %d,\n\
    \    \"wire_queries_without\": %d,\n    \"wire_queries_with\": %d,\n\
    \    \"duplicates_absorbed\": %d,\n    \"wire_exchanges\": %d\n  }\n}\n"
    (speedup 4) (speedup 8) co_flows q_off q_on
    (C.coalesced_queries co_on)
    (C.wire_exchanges co_on);
  close_out oc;
  Printf.printf "wrote %s\n" file

(* The generated-fabric routing series (BENCH_topo.json): steady-state
   next-hop cost across an order of magnitude of hosts (flat = O(1)),
   plus the cost of repairing the routing state after a k=8 fat-tree
   link flap — incrementally vs from scratch — with the engine's own
   counters showing how much of the fabric each repair touched. *)
let run_topo_json file =
  let time_ns f iters =
    f ();
    let t0 = Monotonic_clock.get () in
    for _ = 1 to iters do
      f ()
    done;
    let t1 = Monotonic_clock.get () in
    (t1 -. t0) /. float_of_int iters
  in
  let sizes = [ 8; 32; 64; 256; 1024 ] in
  let next_hop_series =
    List.map
      (fun hosts ->
        let fab = topo_leaf_spine ~hosts in
        let topology = fab.Workload.Fabric.topology in
        let arr = fab.Workload.Fabric.hosts in
        let dst_host = arr.(Array.length arr - 1).Workload.Fabric.hs_name in
        let ns =
          time_ns
            (fun () ->
              ignore (Openflow.Topology.next_hop topology ~from:5 ~dst_host))
            200_000
        in
        Printf.printf "topology/next-hop hosts=%d %.1f ns/op\n%!" hosts ns;
        (hosts, ns))
      sizes
  in
  let topology = topo_fat_tree_k8 () in
  warm_routes topology;
  let flap () =
    Openflow.Topology.unlink topology (Openflow.Topology.Sw 17, 1);
    Openflow.Topology.link topology ~latency:(Sim.Time.us 10)
      (Openflow.Topology.Sw 17, 1)
      (Openflow.Topology.Sw 49, 5)
  in
  let incr_ns = time_ns flap 200 in
  let full_ns =
    time_ns (fun () -> Openflow.Topology.recompute_routes topology) 20
  in
  (* Deterministic repair-scope counters for one link-down + link-up. *)
  let s0 = Openflow.Topology.routing_stats topology in
  flap ();
  let s1 = Openflow.Topology.routing_stats topology in
  let recomputed =
    s1.Openflow.Routing.dests_recomputed - s0.Openflow.Routing.dests_recomputed
  in
  let skipped =
    s1.Openflow.Routing.dests_skipped - s0.Openflow.Routing.dests_skipped
  in
  let settled =
    s1.Openflow.Routing.nodes_settled - s0.Openflow.Routing.nodes_settled
  in
  Printf.printf
    "link-flap k=8: incremental %.1f us, full recompute %.1f us (%.1fx); per \
     flap: %d trees repaired, %d skipped, %d nodes settled\n\
     %!"
    (incr_ns /. 1e3) (full_ns /. 1e3) (full_ns /. incr_ns) recomputed skipped
    settled;
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"next_hop\": [\n";
  List.iteri
    (fun i (hosts, ns) ->
      Printf.fprintf oc "    { \"hosts\": %d, \"ns_per_op\": %.1f }%s\n" hosts
        ns
        (if i = List.length next_hop_series - 1 then "" else ","))
    next_hop_series;
  Printf.fprintf oc
    "  ],\n\
    \  \"link_flap_k8\": {\n\
    \    \"incremental_us\": %.1f,\n\
    \    \"full_recompute_us\": %.1f,\n\
    \    \"speedup\": %.1f,\n\
    \    \"per_flap_dests_recomputed\": %d,\n\
    \    \"per_flap_dests_skipped\": %d,\n\
    \    \"per_flap_nodes_settled\": %d\n\
    \  }\n\
     }\n"
    (incr_ns /. 1e3) (full_ns /. 1e3) (full_ns /. incr_ns) recomputed skipped
    settled;
  close_out oc;
  Printf.printf "wrote %s\n" file

let run_timed json_file =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.2) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        let runs =
          match Hashtbl.find_opt raw name with
          | Some b -> b.Benchmark.stats.Benchmark.samples
          | None -> 0
        in
        (name, ns, runs) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  Printf.printf "%-55s %14s %8s\n" "benchmark" "ns/op" "runs";
  Printf.printf "%s\n" (String.make 80 '-');
  List.iter
    (fun (name, ns, runs) -> Printf.printf "%-55s %14.1f %8d\n" name ns runs)
    rows;
  Printf.printf "\n%d benchmarks completed.\n" (List.length rows);
  Option.iter (fun file -> write_json file rows) json_file

let () =
  let smoke = ref false
  and json_file = ref None
  and shards_file = ref None
  and topo_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse rest
    | "--shards-json" :: file :: rest ->
        shards_file := Some file;
        parse rest
    | "--topo-json" :: file :: rest ->
        topo_file := Some file;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: main.exe [--smoke] [--json FILE] [--shards-json FILE] \
           [--topo-json FILE]\n";
        Printf.eprintf "unknown argument: %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !smoke then run_smoke ()
  else
    match (!shards_file, !topo_file) with
    | Some file, _ -> run_shards_json file
    | None, Some file -> run_topo_json file
    | None, None -> run_timed !json_file

open Netcore
module Topo = Openflow.Topology

type spec =
  | Fat_tree of { k : int }
  | Leaf_spine of { spines : int; leaves : int; hosts_per_leaf : int }

type host_spec = {
  hs_name : string;
  hs_ip : Ipv4.t;
  hs_mac : Mac.t;
  hs_switch : int;
  hs_port : int;
}

type tier = { tier_name : string; tier_dpids : int list }

type t = {
  spec : spec;
  topology : Topo.t;
  hosts : host_spec array;
  tiers : tier list;
}

let validate = function
  | Fat_tree { k } ->
      if k < 2 || k > 32 || k mod 2 <> 0 then
        Error (Printf.sprintf "fat-tree: k must be an even integer in [2, 32] (got %d)" k)
      else Ok ()
  | Leaf_spine { spines; leaves; hosts_per_leaf } ->
      if spines < 1 || spines > 64 then
        Error (Printf.sprintf "leaf-spine: spines must be in [1, 64] (got %d)" spines)
      else if leaves < 1 || leaves > 250 then
        Error (Printf.sprintf "leaf-spine: leaves must be in [1, 250] (got %d)" leaves)
      else if hosts_per_leaf < 1 || hosts_per_leaf > 250 then
        Error
          (Printf.sprintf "leaf-spine: hosts must be in [1, 250] (got %d)"
             hosts_per_leaf)
      else Ok ()

let spec_to_string = function
  | Fat_tree { k } -> Printf.sprintf "fat-tree:k=%d" k
  | Leaf_spine { spines; leaves; hosts_per_leaf } ->
      Printf.sprintf "leaf-spine:spines=%d,leaves=%d,hosts=%d" spines leaves
        hosts_per_leaf

let spec_of_string s =
  let ( let* ) = Result.bind in
  let kind, params =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let* pairs =
    if params = "" then Ok []
    else
      List.fold_left
        (fun acc kv ->
          let* acc = acc in
          match String.index_opt kv '=' with
          | None ->
              Error
                (Printf.sprintf "%s: malformed parameter %S (expected key=value)"
                   kind kv)
          | Some i ->
              Ok
                ((String.sub kv 0 i,
                  String.sub kv (i + 1) (String.length kv - i - 1))
                :: acc))
        (Ok [])
        (String.split_on_char ',' params)
      |> Result.map List.rev
  in
  let int_param ~expected name default =
    match List.assoc_opt name pairs with
    | None -> Ok default
    | Some v -> (
        match int_of_string_opt v with
        | Some n -> Ok n
        | None ->
            Error
              (Printf.sprintf "%s: %s must be an integer (got %S, expected %s)"
                 kind name v expected))
  in
  let* spec =
    match kind with
    | "fat-tree" -> (
        match
          List.find_opt (fun (k, _) -> k <> "k") pairs
        with
        | Some (bad, _) ->
            Error
              (Printf.sprintf
                 "fat-tree: unknown parameter %S (expected k=<even int>)" bad)
        | None ->
            let* k = int_param ~expected:"k=<even int>" "k" 4 in
            Ok (Fat_tree { k }))
    | "leaf-spine" -> (
        match
          List.find_opt
            (fun (k, _) -> k <> "spines" && k <> "leaves" && k <> "hosts")
            pairs
        with
        | Some (bad, _) ->
            Error
              (Printf.sprintf
                 "leaf-spine: unknown parameter %S (expected spines=, leaves=, \
                  hosts=)"
                 bad)
        | None ->
            let* spines = int_param ~expected:"spines=<int>" "spines" 2 in
            let* leaves = int_param ~expected:"leaves=<int>" "leaves" 4 in
            let* hosts_per_leaf = int_param ~expected:"hosts=<int>" "hosts" 4 in
            Ok (Leaf_spine { spines; leaves; hosts_per_leaf }))
    | other ->
        Error
          (Printf.sprintf
             "unknown topology %S (expected fat-tree:k=N or \
              leaf-spine:spines=N,leaves=N,hosts=N)"
             other)
  in
  let* () = validate spec in
  Ok spec

let host_mac ~switch ~index = Mac.of_int ((switch lsl 8) lor (index + 1))

(* Fat-tree dpid plan (doc/TOPOLOGY.md): with h = k/2, cores get
   1..h^2, then aggregation pod-major (pod p aggregation a is
   h^2 + p*h + a + 1), then edge pod-major. Edge ports 1..h face
   hosts, h+1..k face the pod's aggregations; aggregation ports 1..h
   face the pod's edges, h+1..k face cores; core port p+1 faces pod p.
   Aggregation a peers exactly with cores a*h .. a*h+h-1. *)
let build_fat_tree ~latency ~k =
  let topology = Topo.create () in
  let h = k / 2 in
  let core c = 1 + c in
  let agg p a = 1 + (h * h) + (p * h) + a in
  let edge p e = 1 + (h * h) + (k * h) + (p * h) + e in
  for c = 0 to (h * h) - 1 do
    Topo.add_switch topology (core c)
  done;
  for p = 0 to k - 1 do
    for a = 0 to h - 1 do
      Topo.add_switch topology (agg p a)
    done;
    for e = 0 to h - 1 do
      Topo.add_switch topology (edge p e)
    done
  done;
  for p = 0 to k - 1 do
    for a = 0 to h - 1 do
      (* Aggregation a of every pod uplinks to the same h cores. *)
      for j = 0 to h - 1 do
        Topo.link topology ~latency
          (Topo.Sw (agg p a), h + 1 + j)
          (Topo.Sw (core ((a * h) + j)), p + 1)
      done;
      for e = 0 to h - 1 do
        Topo.link topology ~latency
          (Topo.Sw (agg p a), 1 + e)
          (Topo.Sw (edge p e), h + 1 + a)
      done
    done
  done;
  let hosts = ref [] in
  for p = 0 to k - 1 do
    for e = 0 to h - 1 do
      for i = 0 to h - 1 do
        let name = Printf.sprintf "h%d-%d-%d" p e i in
        Topo.add_host topology name;
        Topo.link topology ~latency (Topo.Host name, 0)
          (Topo.Sw (edge p e), 1 + i);
        hosts :=
          {
            hs_name = name;
            hs_ip = Ipv4.of_octets 10 p e (2 + i);
            hs_mac = host_mac ~switch:(edge p e) ~index:i;
            hs_switch = edge p e;
            hs_port = 1 + i;
          }
          :: !hosts
      done
    done
  done;
  let tier name dpids = { tier_name = name; tier_dpids = dpids } in
  {
    spec = Fat_tree { k };
    topology;
    hosts = Array.of_list (List.rev !hosts);
    tiers =
      [
        tier "core" (List.init (h * h) core);
        tier "aggregation"
          (List.concat_map (fun p -> List.init h (agg p)) (List.init k Fun.id));
        tier "edge"
          (List.concat_map (fun p -> List.init h (edge p)) (List.init k Fun.id));
      ];
  }

(* Leaf-spine dpid plan: spines 1..s, leaves s+1..s+l. Leaf ports
   1..h face hosts, h+1..h+s face spines (port h+1+j to spine j);
   spine port i+1 faces leaf i. *)
let build_leaf_spine ~latency ~spines ~leaves ~hosts_per_leaf =
  let topology = Topo.create () in
  let spine j = 1 + j in
  let leaf i = 1 + spines + i in
  for j = 0 to spines - 1 do
    Topo.add_switch topology (spine j)
  done;
  for i = 0 to leaves - 1 do
    Topo.add_switch topology (leaf i)
  done;
  for i = 0 to leaves - 1 do
    for j = 0 to spines - 1 do
      Topo.link topology ~latency
        (Topo.Sw (leaf i), hosts_per_leaf + 1 + j)
        (Topo.Sw (spine j), i + 1)
    done
  done;
  let hosts = ref [] in
  for i = 0 to leaves - 1 do
    for x = 0 to hosts_per_leaf - 1 do
      let name = Printf.sprintf "h%d-%d" i x in
      Topo.add_host topology name;
      Topo.link topology ~latency (Topo.Host name, 0) (Topo.Sw (leaf i), 1 + x);
      hosts :=
        {
          hs_name = name;
          hs_ip = Ipv4.of_octets 10 1 i (1 + x);
          hs_mac = host_mac ~switch:(leaf i) ~index:x;
          hs_switch = leaf i;
          hs_port = 1 + x;
        }
        :: !hosts
    done
  done;
  {
    spec = Leaf_spine { spines; leaves; hosts_per_leaf };
    topology;
    hosts = Array.of_list (List.rev !hosts);
    tiers =
      [
        { tier_name = "spine"; tier_dpids = List.init spines spine };
        { tier_name = "leaf"; tier_dpids = List.init leaves leaf };
      ];
  }

let build ?(latency = Sim.Time.us 10) spec =
  match validate spec with
  | Error e -> invalid_arg ("Fabric.build: " ^ e)
  | Ok () -> (
      match spec with
      | Fat_tree { k } -> build_fat_tree ~latency ~k
      | Leaf_spine { spines; leaves; hosts_per_leaf } ->
          build_leaf_spine ~latency ~spines ~leaves ~hosts_per_leaf)

let describe t =
  let tiers =
    String.concat ", "
      (List.map
         (fun tier ->
           Printf.sprintf "%d %s" (List.length tier.tier_dpids) tier.tier_name)
         t.tiers)
  in
  Printf.sprintf "%s: %d switches (%s), %d hosts, %d links"
    (spec_to_string t.spec)
    (List.length (Topo.switches t.topology))
    tiers (Array.length t.hosts)
    (List.length (Topo.links t.topology))

(** Generated datacenter fabrics: parameterized k-ary fat-tree and
    leaf-spine topologies with deterministic dpid numbering, port
    conventions and host placement, so fabric-scale scenarios and
    benchmarks are reproducible byte-for-byte. The conventions
    (who gets which dpid, which port faces what) are specified in
    doc/TOPOLOGY.md; `netsim fabric --topo SPEC` is the CLI entry. *)

open Netcore

type spec =
  | Fat_tree of { k : int }
      (** [k] even, in [2, 32]: [k] pods of [k/2] edge + [k/2]
          aggregation switches, [(k/2)^2] cores, [k^3/4] hosts. *)
  | Leaf_spine of { spines : int; leaves : int; hosts_per_leaf : int }
      (** Every leaf connects to every spine;
          [spines] in [1, 64], [leaves] and [hosts_per_leaf] in
          [1, 250]. *)

type host_spec = {
  hs_name : string;
  hs_ip : Ipv4.t;
  hs_mac : Mac.t;
  hs_switch : int;  (** The edge/leaf dpid the host hangs off. *)
  hs_port : int;  (** The switch port facing the host. *)
}

type tier = { tier_name : string; tier_dpids : int list }

type t = {
  spec : spec;
  topology : Openflow.Topology.t;
  hosts : host_spec array;  (** In placement order (deterministic). *)
  tiers : tier list;  (** core/aggregation/edge or spine/leaf. *)
}

val validate : spec -> (unit, string) result
(** Parameter range checks; the error string is operator-facing (it is
    what [netsim --topo] prints). *)

val spec_of_string : string -> (spec, string) result
(** Parses ["fat-tree:k=8"] / ["leaf-spine:spines=4,leaves=8,hosts=16"].
    Omitted parameters default to [fat-tree:k=4] and
    [leaf-spine:spines=2,leaves=4,hosts=4]. Validates ranges. *)

val spec_to_string : spec -> string
(** Canonical spec syntax, [spec_of_string]-parsable. *)

val build : ?latency:Sim.Time.t -> spec -> t
(** Generate the fabric (default link latency 10us everywhere).
    @raise Invalid_argument when {!validate} rejects the spec. *)

val describe : t -> string
(** One-line summary: switch count by tier, hosts, links. *)

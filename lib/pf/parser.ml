open Netcore

type state = { tokens : Token.located array; mutable pos : int }

exception Parse_error of string

let fail st fmt =
  let line =
    if st.pos < Array.length st.tokens then st.tokens.(st.pos).Token.line
    else if Array.length st.tokens > 0 then
      st.tokens.(Array.length st.tokens - 1).Token.line
    else 1
  in
  Format.kasprintf (fun msg -> raise (Parse_error (Printf.sprintf "line %d: %s" line msg))) fmt

let peek st =
  if st.pos < Array.length st.tokens then Some st.tokens.(st.pos).Token.token
  else None

let peek2 st =
  if st.pos + 1 < Array.length st.tokens then
    Some st.tokens.(st.pos + 1).Token.token
  else None

let current_line st =
  if st.pos < Array.length st.tokens then st.tokens.(st.pos).Token.line else 0

let advance st = st.pos <- st.pos + 1

let expect st tok what =
  match peek st with
  | Some t when t = tok -> advance st
  | Some t -> fail st "expected %s, found %s" what (Token.to_string t)
  | None -> fail st "expected %s, found end of input" what

let expect_word st what =
  match peek st with
  | Some (Token.Word w) ->
      advance st;
      w
  | Some t -> fail st "expected %s, found %s" what (Token.to_string t)
  | None -> fail st "expected %s, found end of input" what

(* <name> *)
let angle_name st =
  expect st Token.Langle "'<'";
  let name = expect_word st "a name" in
  expect st Token.Rangle "'>'";
  name

let parse_table_items st =
  expect st Token.Lbrace "'{'";
  let rec go acc =
    match peek st with
    | Some Token.Rbrace ->
        advance st;
        List.rev acc
    | Some Token.Langle -> go (Ast.Item_ref (angle_name st) :: acc)
    | Some (Token.Word w) -> (
        advance st;
        match Prefix.of_string_opt w with
        | Some p -> go (Ast.Item_prefix p :: acc)
        | None -> fail st "bad address or prefix in table: %s" w)
    | Some Token.Comma ->
        advance st;
        go acc
    | Some t -> fail st "unexpected %s in table" (Token.to_string t)
    | None -> fail st "unterminated table"
  in
  go []

let parse_dict_entries st =
  expect st Token.Lbrace "'{'";
  let rec go acc =
    match peek st with
    | Some Token.Rbrace ->
        advance st;
        List.rev acc
    | Some (Token.Word key) -> (
        advance st;
        expect st Token.Colon "':'";
        match peek st with
        | Some (Token.Word v) ->
            advance st;
            go ((key, v) :: acc)
        | Some (Token.Str v) ->
            advance st;
            go ((key, v) :: acc)
        | Some t -> fail st "bad dict value: %s" (Token.to_string t)
        | None -> fail st "unterminated dict")
    | Some Token.Comma ->
        advance st;
        go acc
    | Some t -> fail st "unexpected %s in dict" (Token.to_string t)
    | None -> fail st "unterminated dict"
  in
  go []

(* @src[key], *@src[key], @pubkeys[key], $macro, literal *)
let parse_arg st =
  match peek st with
  | Some Token.At | Some Token.Star_at ->
      let star = peek st = Some Token.Star_at in
      advance st;
      let dict = expect_word st "a dictionary name after '@'" in
      expect st Token.Lbracket "'['";
      let key = expect_word st "a key" in
      expect st Token.Rbracket "']'";
      Ast.Dict_access { star; dict; key }
  | Some Token.Dollar ->
      advance st;
      Ast.Macro_ref (expect_word st "a macro name after '$'")
  | Some (Token.Word w) ->
      advance st;
      Ast.Lit w
  | Some (Token.Str s) ->
      advance st;
      Ast.Lit s
  | Some t -> fail st "bad function argument: %s" (Token.to_string t)
  | None -> fail st "bad function argument: end of input"

let parse_funcall st =
  let fname = expect_word st "a function name after 'with'" in
  expect st Token.Lparen "'('";
  let rec args acc =
    match peek st with
    | Some Token.Rparen ->
        advance st;
        List.rev acc
    | Some Token.Comma ->
        advance st;
        args acc
    | Some _ -> args (parse_arg st :: acc)
    | None -> fail st "unterminated function call %s" fname
  in
  { Ast.fname; args = args [] }

(* [!] (any | <table> | prefix) *)
let parse_addr_spec st =
  let negated =
    match peek st with
    | Some Token.Bang ->
        advance st;
        true
    | _ -> false
  in
  match peek st with
  | Some (Token.Word "any") ->
      advance st;
      { Ast.negated; addr = Ast.Addr_any }
  | Some Token.Langle -> { Ast.negated; addr = Ast.Addr_table (angle_name st) }
  | Some Token.Lbrace ->
      advance st;
      let rec items acc =
        match peek st with
        | Some Token.Rbrace ->
            advance st;
            List.rev acc
        | Some Token.Comma ->
            advance st;
            items acc
        | Some (Token.Word w) -> (
            advance st;
            match Prefix.of_string_opt w with
            | Some p -> items (p :: acc)
            | None -> fail st "bad address in list: %s" w)
        | Some t -> fail st "unexpected %s in address list" (Token.to_string t)
        | None -> fail st "unterminated address list"
      in
      (match items [] with
      | [] -> fail st "empty address list"
      | prefixes -> { Ast.negated; addr = Ast.Addr_list prefixes })
  | Some (Token.Word w) -> (
      advance st;
      match Prefix.of_string_opt w with
      | Some p -> { Ast.negated; addr = Ast.Addr_prefix p }
      | None -> fail st "bad address: %s" w)
  | Some t -> fail st "expected an address, found %s" (Token.to_string t)
  | None -> fail st "expected an address, found end of input"

(* Endpoint after from/to: [addr_spec] [port X]. *)
let parse_endpoint st =
  let addr =
    match peek st with
    | Some (Token.Word "port") -> None
    | Some (Token.Word _) | Some Token.Langle | Some Token.Bang
    | Some Token.Lbrace ->
        Some (parse_addr_spec st)
    | _ -> None
  in
  let port =
    match peek st with
    | Some (Token.Word "port") -> (
        advance st;
        let w = expect_word st "a port number or service name" in
        let parse p =
          match Services.parse_port p with
          | Ok p -> p
          | Error e -> fail st "%s" e
        in
        (* PF range syntax lexes as a single word "8000:8080"?  No — ':'
           is a token, so a range arrives as Word Colon Word. *)
        let lo = parse w in
        match peek st with
        | Some Token.Colon -> (
            advance st;
            let hi = parse (expect_word st "the upper port of the range") in
            if hi < lo then
              fail st
                "empty port range %d:%d (lower bound exceeds upper bound; no \
                 flow can match)"
                lo hi
            else Some (Ast.Port_range (lo, hi)))
        | _ -> Some (Ast.Port_eq lo))
    | _ -> None
  in
  { Ast.addr; port }

let rule_keywords = [ "pass"; "block"; "table"; "dict"; "intercept" ]

let starts_decl st =
  match peek st with
  | Some (Token.Word w) when List.mem w rule_keywords -> true
  | Some (Token.Word _) when peek2 st = Some Token.Equals -> true
  | None -> true
  | _ -> false

let parse_rule st action =
  let line = current_line st in
  advance st;
  (* past pass/block *)
  let quick =
    match peek st with
    | Some (Token.Word "quick") ->
        advance st;
        true
    | _ -> false
  in
  let log =
    match peek st with
    | Some (Token.Word "log") ->
        advance st;
        true
    | _ -> false
  in
  let proto = ref None in
  let from_ = ref Ast.endpoint_any in
  let to_ = ref Ast.endpoint_any in
  let conds = ref [] in
  let keep_state = ref false in
  let seen_all = ref false in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (Token.Word "all") ->
        advance st;
        seen_all := true
    | Some (Token.Word "proto") ->
        advance st;
        let w = expect_word st "a protocol after 'proto'" in
        (match Netcore.Proto.of_string_opt w with
        | Some p -> proto := Some p
        | None -> fail st "unknown protocol %s" w)
    | Some (Token.Word "from") ->
        advance st;
        from_ := parse_endpoint st
    | Some (Token.Word "to") ->
        advance st;
        to_ := parse_endpoint st
    | Some (Token.Word "with") ->
        advance st;
        conds := parse_funcall st :: !conds
    | Some (Token.Word "keep") ->
        advance st;
        let w = expect_word st "'state' after 'keep'" in
        if w <> "state" then fail st "expected 'state' after 'keep', found %s" w;
        keep_state := true
    | Some (Token.Word "quick") ->
        advance st;
        fail st "'quick' must directly follow the action"
    | _ ->
        if starts_decl st then continue := false
        else
          fail st "unexpected %s in rule"
            (match peek st with
            | Some t -> Token.to_string t
            | None -> "end of input")
  done;
  if (not !seen_all) && !from_ = Ast.endpoint_any && !to_ = Ast.endpoint_any
     && !conds = [] && !proto = None then
    fail st "rule has no match criteria (use 'all' to match everything)";
  {
    Ast.action;
    quick;
    log;
    proto = !proto;
    from_ = !from_;
    to_ = !to_;
    conds = List.rev !conds;
    keep_state = !keep_state;
    line;
  }

let parse_intercept st =
  let iline = current_line st in
  advance st;
  (* past "intercept" *)
  let kind_word = expect_word st "'query' or 'response' after 'intercept'" in
  let to_word = expect_word st "'to'" in
  if to_word <> "to" then fail st "expected 'to', found %s" to_word;
  let target = parse_addr_spec st in
  let verb = expect_word st "'answer' or 'augment'" in
  let ikind =
    match (kind_word, verb) with
    | "query", "answer" -> Ast.Answer_query
    | "response", "augment" -> Ast.Augment_response
    | "query", v -> fail st "intercept query must 'answer', found %s" v
    | "response", v -> fail st "intercept response must 'augment', found %s" v
    | k, _ -> fail st "expected 'query' or 'response' after 'intercept', found %s" k
  in
  let pairs = parse_dict_entries st in
  { Ast.ikind; target; pairs; iline }

let parse_decl st =
  match peek st with
  | Some (Token.Word "intercept") -> Ast.Intercept_def (parse_intercept st)
  | Some (Token.Word "table") ->
      advance st;
      let name = angle_name st in
      Ast.Table_def (name, parse_table_items st)
  | Some (Token.Word "dict") ->
      advance st;
      let name = angle_name st in
      Ast.Dict_def (name, parse_dict_entries st)
  | Some (Token.Word "pass") -> Ast.Rule_decl (parse_rule st Ast.Pass)
  | Some (Token.Word "block") -> Ast.Rule_decl (parse_rule st Ast.Block)
  | Some (Token.Word name) when peek2 st = Some Token.Equals ->
      advance st;
      advance st;
      (match peek st with
      | Some (Token.Str v) ->
          advance st;
          Ast.Macro_def (name, v)
      | Some (Token.Word v) ->
          advance st;
          Ast.Macro_def (name, v)
      | Some t -> fail st "bad macro value: %s" (Token.to_string t)
      | None -> fail st "bad macro definition: end of input")
  | Some t -> fail st "expected a declaration or rule, found %s" (Token.to_string t)
  | None -> fail st "expected a declaration, found end of input"

let parse input =
  match Lexer.tokenize input with
  | Error e -> Error e
  | Ok tokens -> (
      let st = { tokens = Array.of_list tokens; pos = 0 } in
      try
        let rec go acc =
          if st.pos >= Array.length st.tokens then List.rev acc
          else go (parse_decl st :: acc)
        in
        Ok (go [])
      with Parse_error msg -> Error msg)

let parse_exn input =
  match parse input with Ok r -> r | Error e -> invalid_arg e

let parse_rules input =
  match parse input with
  | Error _ as e -> e
  | Ok decls ->
      let rec extract acc = function
        | [] -> Ok (List.rev acc)
        | Ast.Rule_decl r :: rest -> extract (r :: acc) rest
        | (Ast.Macro_def _ | Ast.Table_def _ | Ast.Dict_def _
          | Ast.Intercept_def _)
          :: _ ->
            Error "only rules are allowed in this context"
      in
      extract [] decls

type severity = Error | Warning | Info

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type finding = {
  line : int;
  severity : severity;
  code : string;
  message : string;
}

let is_quick_all (r : Ast.rule) =
  r.Ast.quick && Ast.is_all r && r.Ast.conds = [] && r.Ast.proto = None

(* Compare rules up to their source position. *)
let same_rule (a : Ast.rule) (b : Ast.rule) =
  { a with Ast.line = 0 } = { b with Ast.line = 0 }

let default_where l = "line " ^ string_of_int l

let dead_after_quick_all ~where rules =
  let rec go = function
    | [] -> []
    | (r : Ast.rule) :: rest when is_quick_all r ->
        List.map
          (fun (dead : Ast.rule) ->
            {
              line = dead.Ast.line;
              severity = Warning;
              code = "dead-after-quick-all";
              message =
                Printf.sprintf
                  "unreachable: the quick rule at %s decides every flow"
                  (where r.Ast.line);
            })
          rest
    | _ :: rest -> go rest
  in
  go rules

(* Of an identical pair, the redundant one depends on quick: a quick
   earlier rule decides first (the later copy never fires); otherwise
   the later copy always overrides the earlier under last-match — and a
   later quick copy decides with the same verdict the earlier one would
   have left pending. *)
let duplicates ~where rules =
  let rec go = function
    | [] -> []
    | (r : Ast.rule) :: rest ->
        let dups =
          List.filter_map
            (fun (later : Ast.rule) ->
              if not (same_rule r later) then None
              else if r.Ast.quick then
                Some
                  {
                    line = later.Ast.line;
                    severity = Warning;
                    code = "duplicate-rule";
                    message =
                      Printf.sprintf
                        "redundant: identical quick rule at %s always \
                         decides first"
                        (where r.Ast.line);
                  }
              else
                Some
                  {
                    line = r.Ast.line;
                    severity = Warning;
                    code = "duplicate-rule";
                    message =
                      Printf.sprintf
                        "redundant: identical rule at %s makes this one \
                         irrelevant under last-match"
                        (where later.Ast.line);
                  })
            rest
        in
        dups @ go rest
  in
  go rules

let unknown_functions rules =
  List.concat_map
    (fun (r : Ast.rule) ->
      List.filter_map
        (fun (fc : Ast.funcall) ->
          if List.mem fc.Ast.fname Fnreg.builtin_names then None
          else
            Some
              {
                line = r.Ast.line;
                severity = Warning;
                code = "unknown-function";
                message =
                  Printf.sprintf
                    "%s is not a built-in function; evaluation fails unless a \
                     custom function is registered"
                    fc.Ast.fname;
              })
        r.Ast.conds)
    rules

let check ?(where = default_where) decls =
  let rules = Ast.rules decls in
  dead_after_quick_all ~where rules @ duplicates ~where rules
  @ unknown_functions rules
  |> List.sort_uniq compare
  |> List.sort (fun a b -> compare a.line b.line)

let pp_finding ppf f =
  Format.fprintf ppf "line %d: %s [%s] %s" f.line (severity_string f.severity)
    f.code f.message

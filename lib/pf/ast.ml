(** The PF+=2 abstract syntax (§3.3). Types only; parsing lives in
    {!Parser}, semantics in {!Eval}, printing in {!Pretty}. *)

open Netcore

(** A function-call argument. *)
type arg =
  | Dict_access of { star : bool; dict : string; key : string }
      (** [@src[userID]], [@pubkeys[research]]; [star] is the [*@]
          all-sections concatenation accessor. *)
  | Macro_ref of string  (** [$allowed] *)
  | Lit of string  (** A bare word or quoted string. *)

type funcall = { fname : string; args : arg list }
(** A [with] predicate: user-definable boolean function (§3.3). *)

(** Address part of a [from]/[to] endpoint. *)
type addr_match =
  | Addr_any
  | Addr_table of string  (** [<mail-server>] *)
  | Addr_prefix of Prefix.t  (** A literal address or CIDR block. *)
  | Addr_list of Prefix.t list
      (** PF's inline list: [from { 10.0.0.1 10.0.0.2/31 }]. *)

type addr_spec = { negated : bool; addr : addr_match }

(** Port constraint on an endpoint: a single port or an inclusive
    range ([port 8000:8080], PF's range syntax). *)
type port_match = Port_eq of int | Port_range of int * int

type endpoint_spec = { addr : addr_spec option; port : port_match option }
(** [None] fields are unconstrained. *)

type action = Pass | Block

type rule = {
  action : action;
  quick : bool;
  log : bool;
      (** PF's [log] modifier. The paper notes it does "not currently
          use the log action" — we do, to support the delegation-audit
          story of S1 (see {!Eval.verdict} and the controller's audit
          log). *)
  proto : Netcore.Proto.t option;
      (** Optional [proto tcp|udp|icmp] constraint, as in PF. *)
  from_ : endpoint_spec;
  to_ : endpoint_spec;
  conds : funcall list;  (** All [with] clauses, conjunctive. *)
  keep_state : bool;
  line : int;  (** Source line, for diagnostics. *)
}

type table_item =
  | Item_prefix of Prefix.t
  | Item_ref of string  (** Nested table reference, e.g. [<lan>]. *)

(** The interception extensions the paper alludes to in §3.4 ("the
    controller can be configured to intercept queries and responses
    using additional extensions in PF+=2"). *)
type intercept_kind =
  | Answer_query
      (** [intercept query to <t> answer { k : v }]: answer queries
          addressed to matching hosts on their behalf, without
          forwarding the query. *)
  | Augment_response
      (** [intercept response to <t> augment { k : v }]: append a
          section to responses transiting toward matching addresses. *)

type intercept = {
  ikind : intercept_kind;
  target : addr_spec;
  pairs : (string * string) list;
  iline : int;
}

type decl =
  | Macro_def of string * string  (** [allowed = "{ http ssh }"] *)
  | Table_def of string * table_item list
  | Dict_def of string * (string * string) list
  | Intercept_def of intercept
  | Rule_decl of rule

type ruleset = decl list

let rules ruleset =
  List.filter_map (function Rule_decl r -> Some r | _ -> None) ruleset

let endpoint_any = { addr = None; port = None }

let is_all rule = rule.from_ = endpoint_any && rule.to_ = endpoint_any

let cond_free rule = rule.conds = []

let rule_args rule = List.concat_map (fun fc -> fc.args) rule.conds

(** The inclusive port interval a port match covers. *)
let port_interval = function
  | Port_eq p -> (p, p)
  | Port_range (lo, hi) -> (lo, hi)

(** What a [with] clause needs before it can be evaluated (§3.3): the
    classification behind the static analyzer's reactive/static split.
    A clause whose inputs are all resolvable at configuration time
    (macros, literals) still counts as reactive for compilation — its
    truth is decided by {!Eval}, not the flow-table compiler — but the
    classification tells the operator {e which} runtime source the
    verdict hinges on. *)
type cond_input =
  | Needs_src_response  (** Reads the flow source's ident++ response. *)
  | Needs_dst_response  (** Reads the flow destination's response. *)
  | Needs_dict of string  (** Reads a controller [dict] declaration. *)
  | Needs_function of string
      (** Calls a user-registered predicate ({!Fnreg}). *)

(** Predicates {!Eval} implements itself; anything else resolves
    through the function registry at flow time. *)
let builtin_functions =
  [ "eq"; "gt"; "lt"; "gte"; "lte"; "member"; "includes"; "verify"; "allowed" ]

let arg_inputs = function
  | Dict_access { dict = "src"; _ } -> [ Needs_src_response ]
  | Dict_access { dict = "dst"; _ } -> [ Needs_dst_response ]
  | Dict_access { dict; _ } -> [ Needs_dict dict ]
  | Macro_ref _ | Lit _ -> []

let funcall_inputs fc =
  (if List.mem fc.fname builtin_functions then []
   else [ Needs_function fc.fname ])
  @ List.concat_map arg_inputs fc.args

let rule_inputs rule =
  List.sort_uniq compare (List.concat_map funcall_inputs rule.conds)

let cond_input_to_string = function
  | Needs_src_response -> "@src response"
  | Needs_dst_response -> "@dst response"
  | Needs_dict d -> Printf.sprintf "dict @%s" d
  | Needs_function f -> Printf.sprintf "function %s()" f

let tables_of_endpoint (e : endpoint_spec) =
  match e.addr with
  | Some { addr = Addr_table n; _ } -> [ n ]
  | Some _ | None -> []

let tables_of_rule rule =
  tables_of_endpoint rule.from_ @ tables_of_endpoint rule.to_

(** Static checks over a parsed policy, beyond what {!Env.build}
    enforces. Delegated configurations are assembled from files written
    by different parties (§3.4), which makes it easy to ship rules that
    can never fire; the linter flags the cheap-to-detect cases. The
    deeper flow-space analysis (shadowing under quick/last-match
    semantics, conflicts, cross-config checks) lives in the [analysis]
    library and reuses this severity scale. *)

type severity = Error | Warning | Info
(** [Error] findings make the ruleset unsafe to load (evaluation can
    fail at flow time); [Warning] marks rules that cannot behave as
    written; [Info] is advisory. *)

val severity_string : severity -> string
val severity_rank : severity -> int
(** [0] for [Error], increasing with decreasing gravity — sort key. *)

type finding = {
  line : int;  (** Of the offending rule. *)
  severity : severity;
  code : string;  (** Stable identifier, e.g. ["dead-after-quick-all"]. *)
  message : string;
}

val check : ?where:(int -> string) -> Ast.ruleset -> finding list
(** Findings, in source order. [where] formats cross-references to
    other rules' line numbers inside messages (default
    ["line N"]) — callers analyzing a concatenation of files pass a
    formatter that maps back to [file:line]. Currently detected:
    - [dead-after-quick-all]: rules following an unconditional [quick]
      rule (it short-circuits every flow that reaches it);
    - [duplicate-rule]: two textually identical rules — the earlier is
      redundant under last-match unless it is [quick], in which case
      the later copy can never fire first;
    - [unknown-function]: a [with] predicate that is not a built-in
      (legitimate for deployments registering custom functions, hence a
      warning rather than an {!Env.build} error). *)

val pp_finding : Format.formatter -> finding -> unit

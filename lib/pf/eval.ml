open Netcore

type ctx = {
  src : Identxx.Response.t option;
  dst : Identxx.Response.t option;
  keystore : Idcrypto.Sign.keystore;
  functions : Fnreg.t;
}

let ctx ?src ?dst ?keystore ?functions () =
  {
    src;
    dst;
    keystore = Option.value ~default:(Idcrypto.Sign.keystore ()) keystore;
    functions = Option.value ~default:(Fnreg.create ()) functions;
  }

type verdict = {
  decision : Ast.action;
  matched : Ast.rule option;
  keep_state : bool;
  log : bool;
}

exception Eval_error of string

let error fmt = Format.kasprintf (fun m -> raise (Eval_error m)) fmt

let allowed_depth_limit = 4

(* allowed() receives the same requirements strings for every flow of an
   application, so parsing is memoized. Bounded: adversarial daemons
   could otherwise grow the table without limit. Eviction is FIFO, one
   entry at a time — wiping the whole table on overflow would let a
   single daemon cycling requirement strings force a re-parse stampede
   for every other cached application. *)
let allowed_cache : (string, (Ast.rule list, string) result) Hashtbl.t =
  Hashtbl.create 64

let allowed_cache_order : string Queue.t = Queue.create ()

let allowed_cache_limit = 1024

let parse_rules_cached text =
  match Hashtbl.find_opt allowed_cache text with
  | Some r -> r
  | None ->
      let r = Parser.parse_rules text in
      if Hashtbl.length allowed_cache >= allowed_cache_limit then (
        match Queue.take_opt allowed_cache_order with
        | Some oldest -> Hashtbl.remove allowed_cache oldest
        | None -> Hashtbl.reset allowed_cache);
      Hashtbl.add allowed_cache text r;
      Queue.add text allowed_cache_order;
      r

let response_of ctx name =
  match name with
  | "src" -> Some ctx.src
  | "dst" -> Some ctx.dst
  | _ -> None

let arg_value env ctx (arg : Ast.arg) =
  match arg with
  | Ast.Lit s -> Some s
  | Ast.Macro_ref name -> (
      match Env.macro env name with
      | Some v -> Some v
      | None -> error "undefined macro $%s" name)
  | Ast.Dict_access { star; dict; key } -> (
      match response_of ctx dict with
      | Some response -> (
          match response with
          | None -> None
          | Some r ->
              if star then
                match Identxx.Response.all_values r key with
                | [] -> None
                | vs -> Some (String.concat "," vs)
              else Identxx.Response.latest r key)
      | None -> (
          match Env.dict env dict with
          | Some entries -> List.assoc_opt key entries
          | None -> error "undefined dictionary @%s" dict))

(* "{ http ssh }" or a bare word: the list forms member() accepts. *)
let parse_list_spec spec =
  let spec = String.trim spec in
  let inner =
    if String.length spec >= 2 && spec.[0] = '{'
       && spec.[String.length spec - 1] = '}' then
      String.sub spec 1 (String.length spec - 2)
    else spec
  in
  String.split_on_char ' ' inner
  |> List.concat_map (String.split_on_char ',')
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let split_multi v =
  String.split_on_char ',' v |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let as_int s = int_of_string_opt (String.trim s)

let numeric_cmp op a b =
  match (a, b) with
  | Some a, Some b -> (
      match (as_int a, as_int b) with
      | Some x, Some y -> op (compare x y) 0
      | _ -> false)
  | _ -> false

let rec eval_funcall ~depth env ctx flow (fc : Ast.funcall) =
  let values () = List.map (arg_value env ctx) fc.args in
  let arity n =
    if List.length fc.args <> n then
      error "%s expects %d arguments, got %d (line use)" fc.fname n
        (List.length fc.args)
  in
  match fc.fname with
  | "eq" -> (
      arity 2;
      match values () with
      | [ Some a; Some b ] -> (
          match (as_int a, as_int b) with
          | Some x, Some y -> x = y
          | _ -> String.equal a b)
      | _ -> false)
  | "gt" ->
      arity 2;
      (match values () with [ a; b ] -> numeric_cmp ( > ) a b | _ -> false)
  | "lt" ->
      arity 2;
      (match values () with [ a; b ] -> numeric_cmp ( < ) a b | _ -> false)
  | "gte" ->
      arity 2;
      (match values () with [ a; b ] -> numeric_cmp ( >= ) a b | _ -> false)
  | "lte" ->
      arity 2;
      (match values () with [ a; b ] -> numeric_cmp ( <= ) a b | _ -> false)
  | "member" -> (
      arity 2;
      match values () with
      | [ Some v; Some spec ] ->
          let members = parse_list_spec spec in
          List.exists (fun x -> List.mem x members) (split_multi v)
      | _ -> false)
  | "includes" -> (
      arity 2;
      match values () with
      | [ Some v; Some item ] -> List.mem item (split_multi v)
      | _ -> false)
  | "verify" -> (
      if List.length fc.args < 3 then
        error "verify expects at least 3 arguments";
      match values () with
      | Some signature :: Some public :: data ->
          if List.exists Option.is_none data then false
          else
            Idcrypto.Sign.verify ctx.keystore ~public ~signature
              (List.map Option.get data)
      | _ -> false)
  | "allowed" -> (
      arity 1;
      if depth >= allowed_depth_limit then
        error "allowed() nesting exceeds depth %d" allowed_depth_limit;
      match values () with
      | [ Some rules_text ] -> (
          match parse_rules_cached rules_text with
          | Error e -> error "allowed(): %s" e
          | Ok rules ->
              (* Fail closed: a flow no rule mentions is NOT allowed. *)
              let verdict =
                eval_rules ~depth:(depth + 1) ~default:Ast.Block env ctx flow
                  rules
              in
              verdict.decision = Ast.Pass)
      | _ -> false)
  | name -> (
      match Fnreg.find ctx.functions name with
      | Some fn -> fn (values ())
      | None -> error "unknown function %s" name)

and addr_matches env (spec : Ast.addr_spec) ip =
  let base =
    match spec.addr with
    | Ast.Addr_any -> true
    | Ast.Addr_prefix p -> Prefix.mem ip p
    | Ast.Addr_table name -> (
        match Env.table env name with
        | Some prefixes -> List.exists (Prefix.mem ip) prefixes
        | None -> error "unknown table <%s>" name)
    | Ast.Addr_list prefixes -> List.exists (Prefix.mem ip) prefixes
  in
  if spec.negated then not base else base

and endpoint_matches env (spec : Ast.endpoint_spec) ip port =
  (match spec.addr with None -> true | Some a -> addr_matches env a ip)
  &&
  match spec.port with
  | None -> true
  | Some (Ast.Port_eq p) -> p = port
  | Some (Ast.Port_range (lo, hi)) -> lo <= port && port <= hi

and rule_matches ~depth env ctx (flow : Five_tuple.t) (rule : Ast.rule) =
  (match rule.proto with
  | None -> true
  | Some p -> Proto.equal p flow.proto)
  && endpoint_matches env rule.from_ flow.src flow.src_port
  && endpoint_matches env rule.to_ flow.dst flow.dst_port
  && List.for_all (eval_funcall ~depth env ctx flow) rule.conds

and eval_rules ~depth ~default env ctx flow rules =
  let rec go last = function
    | [] -> last
    | rule :: rest ->
        if rule_matches ~depth env ctx flow rule then
          let verdict =
            {
              decision = rule.Ast.action;
              matched = Some rule;
              keep_state = rule.Ast.keep_state;
              log = rule.Ast.log;
            }
          in
          if rule.Ast.quick then verdict else go verdict rest
        else go last rest
  in
  go { decision = default; matched = None; keep_state = false; log = false } rules

let eval ?(default = Ast.Pass) env ctx flow =
  try Ok (eval_rules ~depth:0 ~default env ctx flow (Env.rules env))
  with Eval_error msg -> Error msg

let eval_exn ?default env ctx flow =
  match eval ?default env ctx flow with
  | Ok v -> v
  | Error e -> invalid_arg ("Pf.Eval: " ^ e)

type trace_step = { rule : Ast.rule; matched : bool; decided : bool }

let trace ?(default = Ast.Pass) env ctx flow =
  try
    let steps = ref [] in
    let verdict = ref { decision = default; matched = None; keep_state = false; log = false } in
    let rec go = function
      | [] -> ()
      | rule :: rest ->
          let matched = rule_matches ~depth:0 env ctx flow rule in
          steps := { rule; matched; decided = matched } :: !steps;
          if matched then begin
            verdict :=
              {
                decision = rule.Ast.action;
                matched = Some rule;
                keep_state = rule.Ast.keep_state;
                log = rule.Ast.log;
              };
            if not rule.Ast.quick then go rest
          end
          else go rest
    in
    go (Env.rules env);
    (* Only the verdict's rule keeps [decided]; earlier matches were
       overridden. *)
    let final = !verdict in
    let steps =
      List.rev_map
        (fun s ->
          {
            s with
            decided =
              (match final.matched with
              | Some r -> s.rule == r
              | None -> false);
          })
        !steps
    in
    Ok (steps, final)
  with Eval_error msg -> Error msg

let passes ?default env ctx flow =
  match eval ?default env ctx flow with
  | Ok v -> v.decision = Ast.Pass
  | Error _ -> false

let arg_value env ctx arg =
  try arg_value env ctx arg with Eval_error _ -> None

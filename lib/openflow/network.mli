(** The simulated fabric: wires {!Switch} instances, host endpoints, and
    controller callbacks together over the {!Sim.Engine} event loop.
    Packets experience link latency; control-channel messages experience
    a configurable controller RTT contribution. Supports multiple
    controller domains (each switch belongs to one controller), which is
    how §4's "network collaboration" between branches is modelled. *)

open Netcore

type t

val create :
  ?ctrl_latency:Sim.Time.t ->
  ?table_capacity:int ->
  engine:Sim.Engine.t ->
  topology:Topology.t ->
  unit ->
  t
(** Builds a switch instance for every switch in the topology. Ports are
    taken from the topology wiring. [ctrl_latency] is the one-way
    switch-to-controller delay (default 50us). [table_capacity] bounds
    every switch's flow table (default unbounded); a full table evicts
    its least-recently-hit entry, modelling a small TCAM. *)

val engine : t -> Sim.Engine.t
val topology : t -> Topology.t
val switch : t -> Message.switch_id -> Switch.t
(** @raise Not_found for an unknown dpid. *)

val trace : t -> Sim.Trace.t
(** Every packet and control event is recorded here. *)

(** {2 Controllers} *)

type controller_id = int

val register_controller :
  t -> id:controller_id -> (Message.to_controller -> unit) -> unit
(** Install a controller callback. Re-registering replaces it. *)

val assign_switch : t -> Message.switch_id -> controller_id -> unit
(** Place a switch in a controller's domain (default: controller 0). *)

val switches_in_domain : t -> controller_id -> Message.switch_id list
(** All switches assigned to the controller (including by default). *)

val send_to_switch : t -> Message.switch_id -> Message.to_switch -> unit
(** Controller-to-switch message, delivered after the control latency. *)

(** {2 Hosts} *)

val attach_host :
  t -> name:string -> mac:Mac.t -> ip:Ipv4.t -> rx:(Packet.t -> unit) -> unit
(** Bind a receive callback for a host present in the topology.
    @raise Invalid_argument if the host has no attachment link. *)

val host_mac : t -> string -> Mac.t
val host_ip : t -> string -> Ipv4.t
val host_by_ip : t -> Ipv4.t -> string option

val send_from_host : t -> name:string -> Packet.t -> unit
(** Inject a packet at a host's NIC; it reaches the edge switch after
    the access-link latency. *)

(** {2 Fault injection} *)

val set_loss : t -> ?prng:Sim.Prng.t -> rate:float -> unit -> unit
(** Drop each emitted frame independently with probability [rate]
    (0 disables). Control-channel messages are not affected — only
    frames on links, including the ident++ exchange, which is how query
    loss and the resulting fail-closed timeouts are exercised. *)

(** {2 Capture} *)

val set_capture : t -> Netcore.Pcap.writer option -> unit
(** When set, every frame emitted onto any link is appended to the pcap
    writer with the current simulated timestamp. *)

(** {2 Accounting} *)

val delivered : t -> int
(** Packets handed to host receive callbacks. *)

val dropped : t -> int
val packet_ins : t -> int
val egress_packets : t -> node:Topology.node -> port:int -> int
(** Packets emitted by [node] out of [port] (for per-link accounting). *)

val egress_bytes : t -> node:Topology.node -> port:int -> int

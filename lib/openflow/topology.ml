type node = Sw of Message.switch_id | Host of string
type endpoint = { node : node; port : int }
type link = { a : endpoint; b : endpoint; latency : Sim.Time.t }

module Node_map = Map.Make (struct
  type t = node

  let compare = Stdlib.compare
end)

type t = {
  mutable nodes : unit Node_map.t;
  mutable links : link list;
  (* (node, port) -> far endpoint + latency, both directions. *)
  wiring : (node * int, endpoint * Sim.Time.t) Hashtbl.t;
  (* node -> its wired ports, sorted ascending — O(degree) [ports_of]
     instead of a scan of the whole wiring table. *)
  ports : (node, int list) Hashtbl.t;
  mutable epoch : int;
  (* All-pairs next-hop state over the switch graph, materialized on
     the first route lookup and updated incrementally by every
     subsequent mutation (see Routing). *)
  mutable routing : Routing.t option;
}

let create () =
  {
    nodes = Node_map.empty;
    links = [];
    wiring = Hashtbl.create 64;
    ports = Hashtbl.create 64;
    epoch = 0;
    routing = None;
  }

let epoch t = t.epoch

let add_node t n =
  if Node_map.mem n t.nodes then
    invalid_arg "Topology: duplicate node";
  t.nodes <- Node_map.add n () t.nodes;
  t.epoch <- t.epoch + 1

let add_switch t dpid =
  add_node t (Sw dpid);
  Option.iter (fun r -> Routing.add_switch r dpid) t.routing

let add_host t name = add_node t (Host name)

let node_to_string = function
  | Sw d -> Printf.sprintf "s%d" d
  | Host h -> h

let ports_of t node = Option.value ~default:[] (Hashtbl.find_opt t.ports node)

let add_port t node port =
  let rec ins = function
    | [] -> [ port ]
    | p :: tl when p < port -> p :: ins tl
    | rest -> port :: rest
  in
  Hashtbl.replace t.ports node (ins (ports_of t node))

let drop_port t node port =
  Hashtbl.replace t.ports node (List.filter (( <> ) port) (ports_of t node))

(* Link latencies weight the shortest-path computation; clamp to at
   least 1ns so parent chains strictly descend and stay loop-free even
   under zero-latency links. *)
let weight_of latency = max 1 (Sim.Time.to_ns latency)

let link t ?(latency = Sim.Time.us 10) (na, pa) (nb, pb) =
  if not (Node_map.mem na t.nodes) then
    invalid_arg ("Topology.link: unknown node " ^ node_to_string na);
  if not (Node_map.mem nb t.nodes) then
    invalid_arg ("Topology.link: unknown node " ^ node_to_string nb);
  if Hashtbl.mem t.wiring (na, pa) then
    invalid_arg
      (Printf.sprintf "Topology.link: %s port %d already wired"
         (node_to_string na) pa);
  if Hashtbl.mem t.wiring (nb, pb) then
    invalid_arg
      (Printf.sprintf "Topology.link: %s port %d already wired"
         (node_to_string nb) pb);
  let a = { node = na; port = pa } and b = { node = nb; port = pb } in
  t.links <- { a; b; latency } :: t.links;
  Hashtbl.replace t.wiring (na, pa) (b, latency);
  Hashtbl.replace t.wiring (nb, pb) (a, latency);
  add_port t na pa;
  add_port t nb pb;
  t.epoch <- t.epoch + 1;
  match (t.routing, na, nb) with
  | Some r, Sw u, Sw v ->
      Routing.link_up r (u, pa) (v, pb) ~weight:(weight_of latency)
  | _ -> ()

let unlink t (n, p) =
  match Hashtbl.find_opt t.wiring (n, p) with
  | None ->
      invalid_arg
        (Printf.sprintf "Topology.unlink: %s port %d is not wired"
           (node_to_string n) p)
  | Some (far, _) ->
      Hashtbl.remove t.wiring (n, p);
      Hashtbl.remove t.wiring (far.node, far.port);
      drop_port t n p;
      drop_port t far.node far.port;
      t.links <-
        List.filter
          (fun l ->
            not
              ((l.a.node = n && l.a.port = p)
              || (l.b.node = n && l.b.port = p)))
          t.links;
      t.epoch <- t.epoch + 1;
      (match (t.routing, n, far.node) with
      | Some r, Sw u, Sw v -> Routing.link_down r (u, p) (v, far.port)
      | _ -> ())

let remove_host t name =
  let n = Host name in
  if not (Node_map.mem n t.nodes) then
    invalid_arg ("Topology.remove_host: unknown host " ^ name);
  List.iter (fun p -> unlink t (n, p)) (ports_of t n);
  Hashtbl.remove t.ports n;
  t.nodes <- Node_map.remove n t.nodes;
  t.epoch <- t.epoch + 1

let switches t =
  Node_map.fold
    (fun n () acc -> match n with Sw d -> d :: acc | Host _ -> acc)
    t.nodes []
  |> List.rev

let hosts t =
  Node_map.fold
    (fun n () acc -> match n with Host h -> h :: acc | Sw _ -> acc)
    t.nodes []
  |> List.rev

let links t = List.rev t.links

let peer t node port =
  Option.map fst (Hashtbl.find_opt t.wiring (node, port))

let wire t node port = Hashtbl.find_opt t.wiring (node, port)

let host_attachment t name =
  (* The ports list is sorted, so a multihomed host's primary
     attachment is its lowest-numbered port. *)
  match ports_of t (Host name) with
  | [] -> None
  | port :: _ -> (
      match Hashtbl.find_opt t.wiring (Host name, port) with
      | Some (ep, _) -> ( match ep.node with Sw _ -> Some ep | Host _ -> None)
      | None -> None)

let ensure_routing t =
  match t.routing with
  | Some r -> r
  | None ->
      let r = Routing.create () in
      Node_map.iter
        (fun n () -> match n with Sw d -> Routing.add_switch r d | Host _ -> ())
        t.nodes;
      List.iter
        (fun l ->
          match (l.a.node, l.b.node) with
          | Sw u, Sw v ->
              Routing.load_link r (u, l.a.port) (v, l.b.port)
                ~weight:(weight_of l.latency)
          | _ -> ())
        t.links;
      Routing.recompute r;
      t.routing <- Some r;
      r

let recompute_routes t = Routing.recompute (ensure_routing t)
let routing_stats t = Routing.stats (ensure_routing t)

let next_hop t ~from ~dst_host =
  match host_attachment t dst_host with
  | None -> None
  | Some ep -> (
      match ep.node with
      | Sw d when d = from -> Some ep.port
      | Sw d -> Routing.next_hop_port (ensure_routing t) ~src:from ~dst:d
      | Host _ -> None)

let switch_path t ~src ~dst =
  if src = dst then Some []
  else
    match (host_attachment t src, host_attachment t dst) with
    | Some a, Some b -> (
        let sw_of ep =
          match ep.node with Sw d -> d | Host _ -> assert false
        in
        let a_sw = sw_of a and b_sw = sw_of b in
        if a_sw = b_sw then Some [ (a_sw, a.port, b.port) ]
        else
          let r = ensure_routing t in
          let limit = Routing.switch_count r in
          let rec walk cur in_port steps acc =
            if steps > limit then None
            else if cur = b_sw then
              Some (List.rev ((cur, in_port, b.port) :: acc))
            else
              match Routing.next_hop_port r ~src:cur ~dst:b_sw with
              | None -> None
              | Some out -> (
                  match peer t (Sw cur) out with
                  | Some far ->
                      walk
                        (match far.node with
                        | Sw d -> d
                        | Host _ -> assert false)
                        far.port (steps + 1)
                        ((cur, in_port, out) :: acc)
                  | None -> None)
          in
          walk a_sw a.port 0 [])
    | _ -> None

let pp ppf t =
  Format.fprintf ppf "topology: %d switches, %d hosts, %d links@."
    (List.length (switches t))
    (List.length (hosts t))
    (List.length t.links);
  List.iter
    (fun l ->
      Format.fprintf ppf "  %s:%d <-> %s:%d (%a)@." (node_to_string l.a.node)
        l.a.port (node_to_string l.b.node) l.b.port Sim.Time.pp l.latency)
    (links t)

(** The OpenFlow switch model: a flow table plus the table-miss rule
    "encapsulate and send to the controller" (§3.1). *)

open Netcore

type t

val create : ?capacity:int -> dpid:Message.switch_id -> ports:int list -> unit -> t
(** [ports] are the switch's physical port numbers. [capacity] bounds
    the flow table (default unbounded): a full table evicts its
    least-recently-hit entry on insert, modelling a small TCAM. *)

val dpid : t -> Message.switch_id
val ports : t -> int list
val table : t -> Flow_table.t

type forward_decision =
  | Forward of int list  (** Concrete output ports (flood resolved). *)
  | Send_to_controller
  | Dropped

val process :
  t -> now:Sim.Time.t -> in_port:int -> Packet.t -> forward_decision
(** Run a packet through the flow table: on a hit, update the entry's
    counters and resolve its actions to ports; on a miss, the OpenFlow
    default of sending to the controller. *)

type apply_result =
  | Nothing
  | Emit of int list * Packet.t  (** Ports to emit the packet on. *)
  | Reply of Message.to_controller  (** Response on the control channel. *)

val apply : t -> now:Sim.Time.t -> Message.to_switch -> apply_result
(** Apply a controller message. [Flow_mod] mutates the table;
    [Packet_out] resolves [`Flood]/[`Table] to concrete ports;
    [Stats_request] snapshots the flow table into a [Stats_reply]. *)

val packets_handled : t -> int
val pp : Format.formatter -> t -> unit

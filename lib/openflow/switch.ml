open Netcore

type t = {
  dpid : Message.switch_id;
  ports : int list;
  table : Flow_table.t;
  mutable packets_handled : int;
}

let create ?capacity ~dpid ~ports () =
  { dpid; ports; table = Flow_table.create ?capacity (); packets_handled = 0 }

let dpid t = t.dpid
let ports t = t.ports
let table t = t.table

type forward_decision = Forward of int list | Send_to_controller | Dropped

let resolve_actions t ~in_port actions =
  if Action.is_drop actions then Dropped
  else if List.exists (function Action.To_controller -> true | _ -> false) actions
  then Send_to_controller
  else
    let ports =
      List.concat_map
        (function
          | Action.Output p -> [ p ]
          | Action.Flood -> List.filter (fun p -> p <> in_port) t.ports
          | Action.To_controller | Action.Drop -> [])
        actions
    in
    if ports = [] then Dropped else Forward (List.sort_uniq Int.compare ports)

let process t ~now ~in_port pkt =
  t.packets_handled <- t.packets_handled + 1;
  ignore (Flow_table.expire t.table ~now);
  match Flow_table.lookup t.table ~in_port pkt with
  | None -> Send_to_controller
  | Some entry ->
      Flow_entry.hit entry ~now ~size:(Packet.size pkt);
      resolve_actions t ~in_port entry.actions

type apply_result =
  | Nothing
  | Emit of int list * Packet.t
  | Reply of Message.to_controller

let apply t ~now msg =
  match msg with
  | Message.Barrier -> Nothing
  | Message.Flow_mod fm -> (
      match fm.command with
      | Message.Add ->
          Flow_table.add t.table
            (Flow_entry.make ~priority:fm.priority
               ?idle_timeout:fm.idle_timeout ?hard_timeout:fm.hard_timeout
               ~cookie:fm.cookie ~installed_at:now ~fields:fm.fields fm.actions);
          Nothing
      | Message.Delete ->
          Flow_table.remove_matching t.table ~fields:fm.fields;
          Nothing
      | Message.Delete_strict ->
          Flow_table.remove t.table ~fields:fm.fields;
          Nothing)
  | Message.Stats_request { xid } ->
      let flows =
        List.map
          (fun (e : Flow_entry.t) ->
            {
              Message.st_fields = e.fields;
              st_priority = e.priority;
              st_packets = e.packets;
              st_bytes = e.bytes;
              st_age = Sim.Time.sub now e.installed_at;
            })
          (Flow_table.entries t.table)
      in
      Reply
        (Message.Stats_reply
           {
             Message.st_dpid = t.dpid;
             st_xid = xid;
             st_flows = flows;
             st_lookups = Flow_table.hits t.table + Flow_table.misses t.table;
             st_matched = Flow_table.hits t.table;
           })
  | Message.Packet_out po -> (
      match po.out_port with
      | `Port p -> Emit ([ p ], po.out_packet)
      | `Flood -> Emit (t.ports, po.out_packet)
      | `Table -> (
          (* Run through the table with a pseudo ingress port of 0. *)
          match process t ~now ~in_port:0 po.out_packet with
          | Forward ports -> Emit (ports, po.out_packet)
          | Send_to_controller | Dropped -> Nothing))

let packets_handled t = t.packets_handled

let pp ppf t =
  Format.fprintf ppf "switch dpid=%d ports=[%s] handled=%d@.%a" t.dpid
    (String.concat ";" (List.map string_of_int t.ports))
    t.packets_handled Flow_table.pp t.table

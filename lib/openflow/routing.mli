(** Precomputed all-pairs routing state over the switch graph.

    One shortest-path tree is maintained per destination switch
    ("routing epoch" state), giving O(1) [next_hop_port] and [distance]
    lookups. Topology events update the trees {e incrementally}: a
    link-down recomputes only the subtree that routed over the failed
    edge (per destination, skipping destinations whose tree never used
    it); a link-up runs a relaxation cascade from the improved
    endpoints and stops as soon as nothing improves. The cost of an
    event is therefore proportional to the affected region of the
    fabric, not to its size — see doc/TOPOLOGY.md for the model and
    {!stats} for the counters that make the claim checkable.

    This module is deliberately graph-neutral: vertices are switch
    dpids, weights are integer nanoseconds. {!Topology} owns the
    node/port/host model and keeps an instance of this engine in sync
    with its mutations; everything else looks up routes through the
    Topology API and picks the precomputed state up transparently. *)

type t

type stats = {
  full_recomputes : int;  (** From-scratch all-trees computations. *)
  link_events : int;  (** Incremental [link_up] + [link_down] calls. *)
  dests_recomputed : int;
      (** Destination trees actually touched by incremental updates. *)
  dests_skipped : int;
      (** Destination trees proven unaffected and left untouched. *)
  nodes_settled : int;
      (** Nodes re-settled across all incremental updates — the
          "affected region" an update actually paid for. *)
}

val create : unit -> t

val add_switch : t -> int -> unit
(** Add an isolated vertex. Its own tree is just itself; no other tree
    changes until a link arrives. Idempotent. *)

val load_link : t -> int * int -> int * int -> weight:int -> unit
(** [load_link t (u, pu) (v, pv) ~weight] adds an edge to the adjacency
    only, without updating any tree — bulk topology replay. Callers
    must finish with {!recompute}. Endpoints are [(dpid, port)] pairs;
    [weight] must be positive. *)

val link_up : t -> int * int -> int * int -> weight:int -> unit
(** Add an edge and incrementally repair every destination tree the new
    edge improves (relaxation cascade; unaffected trees are skipped). *)

val link_down : t -> int * int -> int * int -> unit
(** Remove an edge and incrementally repair every destination tree that
    routed over it (bounded re-Dijkstra over the orphaned subtree;
    trees that never used the edge are skipped). Unknown edges are
    ignored. *)

val recompute : t -> unit
(** Full from-scratch rebuild of every tree (one Dijkstra per
    destination switch). The comparison baseline for the incremental
    path, and the bulk-load finisher after {!load_link}. *)

val next_hop_port : t -> src:int -> dst:int -> int option
(** The output port at [src] on a shortest path toward switch [dst];
    [None] when unreachable or either dpid is unknown. O(1). *)

val next_hop_switch : t -> src:int -> dst:int -> int option
(** The neighbouring switch a packet at [src] is forwarded to on its
    way to [dst]. O(1). *)

val distance : t -> src:int -> dst:int -> int option
(** Shortest-path cost in weight units (nanoseconds); [Some 0] when
    [src = dst]. O(1). *)

val switch_count : t -> int
val stats : t -> stats

open Netcore

module Flow_tbl = Hashtbl.Make (struct
  type t = Five_tuple.t

  let equal = Five_tuple.equal
  let hash = Five_tuple.hash
end)

type t = {
  capacity : int option;
  mutable entries : Flow_entry.t list;
      (* Every entry, sorted by priority descending, then recency of
         installation (newer first). The authoritative store. *)
  index : Flow_entry.t Flow_tbl.t;
      (* Fast path: entries whose match is exactly one 5-tuple (the
         shape controllers install to cache per-flow decisions), keyed
         by that tuple. An index hit is only final when no wildcard
         entry of higher priority exists — see [lookup]. *)
  mutable wildcards : Flow_entry.t list;
      (* The non-indexable entries, in the same order as [entries]. *)
  mutable max_wildcard_priority : int;
      (* Highest priority among NON-indexable entries; min_int when
         there are none. Lets the common case (index hit, no wildcard
         above it) skip the linear scan entirely. *)
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
  mutable on_evict : (Flow_entry.t -> unit) option;
  mutable next_expiry : int option;
      (* Lower bound (ns) on the earliest possible entry expiry; [None]
         when no entry carries a timeout. Hits only push deadlines
         later, so the bound stays valid until the next full scan. *)
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Flow_table.create: capacity must be positive"
  | _ -> ());
  {
    capacity;
    entries = [];
    index = Flow_tbl.create 64;
    wildcards = [];
    max_wildcard_priority = min_int;
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
    on_evict = None;
    next_expiry = None;
  }

let size t = List.length t.entries

(* The 5-tuple an entry's fields pin down exactly, when the entry is
   "five-tuple shaped": layer-2 fields and ingress port wildcarded,
   /32 addresses, protocol and both ports given. *)
let index_key_of (fields : Match_fields.t) =
  match fields with
  | {
   Match_fields.in_port = None;
   dl_src = None;
   dl_dst = None;
   dl_vlan = None;
   dl_type = _;
   nw_src = Some src;
   nw_dst = Some dst;
   nw_proto = Some proto;
   tp_src = Some tp_src;
   tp_dst = Some tp_dst;
  }
    when Prefix.length src = 32 && Prefix.length dst = 32 ->
      Some
        (Five_tuple.make ~src:(Prefix.network src) ~dst:(Prefix.network dst)
           ~proto ~src_port:tp_src ~dst_port:tp_dst)
  | _ -> None

let deadline_of (e : Flow_entry.t) =
  let of_timeout base = function
    | None -> None
    | Some timeout -> Some (Sim.Time.to_ns (Sim.Time.add base timeout))
  in
  match
    (of_timeout e.last_hit e.idle_timeout, of_timeout e.installed_at e.hard_timeout)
  with
  | None, d | d, None -> d
  | Some a, Some b -> Some (min a b)

let recompute_aux t =
  Flow_tbl.reset t.index;
  t.max_wildcard_priority <- min_int;
  t.next_expiry <-
    List.fold_left
      (fun acc e ->
        match (acc, deadline_of e) with
        | None, d | d, None -> d
        | Some a, Some b -> Some (min a b))
      None t.entries;
  (* entries are newest-first within a priority; keep the FIRST entry
     seen per key so ties resolve like the linear scan. *)
  let wildcards =
    List.filter
      (fun (e : Flow_entry.t) ->
        match index_key_of e.fields with
        | Some key ->
            if not (Flow_tbl.mem t.index key) then Flow_tbl.add t.index key e;
            false
        | None ->
            if e.priority > t.max_wildcard_priority then
              t.max_wildcard_priority <- e.priority;
            true)
      t.entries
  in
  t.wildcards <- wildcards

let evict_lru t =
  match t.entries with
  | [] -> ()
  | first :: _ ->
      let victim =
        List.fold_left
          (fun (acc : Flow_entry.t) (e : Flow_entry.t) ->
            if Sim.Time.compare e.last_hit acc.last_hit < 0 then e else acc)
          first t.entries
      in
      t.entries <- List.filter (fun e -> e != victim) t.entries;
      t.eviction_count <- t.eviction_count + 1;
      recompute_aux t;
      (match t.on_evict with Some f -> f victim | None -> ())

let add t (entry : Flow_entry.t) =
  (* Replace an identical (fields, priority) entry. *)
  t.entries <-
    List.filter
      (fun (e : Flow_entry.t) ->
        not
          (e.priority = entry.priority
          && Match_fields.equal e.fields entry.fields))
      t.entries;
  (match t.capacity with
  | Some cap when List.length t.entries >= cap -> evict_lru t
  | _ -> ());
  (* Insert before existing entries of the same priority so newer
     installations win ties. *)
  let rec insert = function
    | [] -> [ entry ]
    | (e : Flow_entry.t) :: rest as l ->
        if entry.priority >= e.priority then entry :: l else e :: insert rest
  in
  t.entries <- insert t.entries;
  recompute_aux t

let scan_wildcards t ~in_port pkt =
  List.find_opt
    (fun (e : Flow_entry.t) -> Match_fields.matches e.fields ~in_port pkt)
    t.wildcards

let full_scan t ~in_port pkt =
  List.find_opt
    (fun (e : Flow_entry.t) -> Match_fields.matches e.fields ~in_port pkt)
    t.entries

let lookup t ~in_port pkt =
  let found =
    match Option.bind (Packet.five_tuple pkt) (Flow_tbl.find_opt t.index) with
    | Some (e : Flow_entry.t) when Match_fields.matches e.fields ~in_port pkt
      ->
        if e.priority > t.max_wildcard_priority then
          (* Fast path: no wildcard entry can outrank or tie the
             indexed hit. *)
          Some e
        else begin
          (* A wildcard entry might outrank or tie it. *)
          match scan_wildcards t ~in_port pkt with
          | Some (w : Flow_entry.t) when w.priority > e.priority -> Some w
          | Some (w : Flow_entry.t) when w.priority = e.priority ->
              (* Equal priority: linear order (recency) decides. *)
              List.find_opt (fun x -> x == e || x == w) t.entries
          | Some _ | None -> Some e
        end
    | Some _ ->
        (* Key collision with a non-matching entry (e.g. a dead entry
           with exact addresses but a non-IP dl_type): fall back to the
           authoritative scan. *)
        full_scan t ~in_port pkt
    | None ->
        (* No indexed candidate: only wildcard-shaped entries can match
           (an indexable entry matches exactly its own key). *)
        scan_wildcards t ~in_port pkt
  in
  (match found with
  | Some _ -> t.hit_count <- t.hit_count + 1
  | None -> t.miss_count <- t.miss_count + 1);
  found

let remove t ~fields =
  t.entries <-
    List.filter
      (fun (e : Flow_entry.t) -> not (Match_fields.equal e.fields fields))
      t.entries;
  recompute_aux t

let remove_matching t ~fields =
  t.entries <-
    List.filter
      (fun (e : Flow_entry.t) -> not (Match_fields.covers fields e.fields))
      t.entries;
  recompute_aux t

let expire t ~now =
  match t.next_expiry with
  | Some bound when Sim.Time.to_ns now > bound ->
      let before = List.length t.entries in
      t.entries <-
        List.filter (fun e -> not (Flow_entry.expired e ~now)) t.entries;
      let evicted = before - List.length t.entries in
      (* Recompute the bound even without evictions: hits may have
         pushed every deadline past [now]. *)
      recompute_aux t;
      evicted
  | Some _ | None -> 0

let entries t = t.entries

let clear t =
  t.entries <- [];
  recompute_aux t

let misses t = t.miss_count
let hits t = t.hit_count
let evictions t = t.eviction_count
let set_on_evict t f = t.on_evict <- Some f

let pp ppf t =
  Format.fprintf ppf "flow-table (%d entries, %d hits, %d misses)@."
    (size t) t.hit_count t.miss_count;
  List.iter (fun e -> Format.fprintf ppf "  %a@." Flow_entry.pp e) t.entries

open Netcore

type controller_id = int

type host_state = {
  h_name : string;
  h_mac : Mac.t;
  h_ip : Ipv4.t;
  h_rx : Packet.t -> unit;
}

type t = {
  engine : Sim.Engine.t;
  topology : Topology.t;
  ctrl_latency : Sim.Time.t;
  switches : (Message.switch_id, Switch.t) Hashtbl.t;
  hosts : (string, host_state) Hashtbl.t;
  controllers : (controller_id, Message.to_controller -> unit) Hashtbl.t;
  domains : (Message.switch_id, controller_id) Hashtbl.t;
  trace : Sim.Trace.t;
  egress : (Topology.node * int, int * int) Hashtbl.t; (* packets, bytes *)
  mutable delivered : int;
  mutable dropped : int;
  mutable packet_ins : int;
  mutable capture : Pcap.writer option;
  mutable loss_rate : float;
  mutable loss_prng : Sim.Prng.t;
}

let ports_of_switch topology dpid = Topology.ports_of topology (Topology.Sw dpid)

let create ?(ctrl_latency = Sim.Time.us 50) ?table_capacity ~engine ~topology
    () =
  let t =
    {
      engine;
      topology;
      ctrl_latency;
      switches = Hashtbl.create 16;
      hosts = Hashtbl.create 16;
      controllers = Hashtbl.create 4;
      domains = Hashtbl.create 16;
      trace = Sim.Trace.create ();
      egress = Hashtbl.create 64;
      delivered = 0;
      dropped = 0;
      packet_ins = 0;
      capture = None;
      loss_rate = 0.0;
      loss_prng = Sim.Prng.create 1;
    }
  in
  List.iter
    (fun dpid ->
      Hashtbl.replace t.switches dpid
        (Switch.create ?capacity:table_capacity ~dpid
           ~ports:(ports_of_switch topology dpid) ()))
    (Topology.switches topology);
  t

let engine t = t.engine
let topology t = t.topology
let switch t dpid = Hashtbl.find t.switches dpid
let trace t = t.trace

let register_controller t ~id f = Hashtbl.replace t.controllers id f
let assign_switch t dpid cid = Hashtbl.replace t.domains dpid cid

let switches_in_domain t cid =
  Hashtbl.fold
    (fun dpid _ acc ->
      let owner = Option.value ~default:0 (Hashtbl.find_opt t.domains dpid) in
      if owner = cid then dpid :: acc else acc)
    t.switches []
  |> List.sort Int.compare

let controller_of t dpid =
  let cid = Option.value ~default:0 (Hashtbl.find_opt t.domains dpid) in
  Hashtbl.find_opt t.controllers cid

(* Formatting an event string costs more than the rest of a packet hop,
   so skip it entirely when tracing is off (benchmarks disable it). *)
let record t fmt =
  if Sim.Trace.enabled t.trace then
    Format.kasprintf
      (fun msg ->
        (* actor is embedded in the message by callers via %s prefix *)
        Sim.Trace.record t.trace ~at:(Sim.Engine.now t.engine) ~actor:"" msg)
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let record_actor t actor fmt =
  if Sim.Trace.enabled t.trace then
    Format.kasprintf
      (fun msg ->
        Sim.Trace.record t.trace ~at:(Sim.Engine.now t.engine) ~actor msg)
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let bump_egress t node port size =
  let key = (node, port) in
  let p, b = Option.value ~default:(0, 0) (Hashtbl.find_opt t.egress key) in
  Hashtbl.replace t.egress key (p + 1, b + size)

(* Forward declaration cycle: emitting out a port leads to arrival at the
   peer, which for a switch re-enters processing. *)
let rec emit t ~from_node ~port pkt =
  if t.loss_rate > 0.0 && Sim.Prng.float t.loss_prng 1.0 < t.loss_rate then begin
    t.dropped <- t.dropped + 1;
    record_actor t
      (Topology.node_to_string from_node)
      "drop (loss) %a" Packet.pp pkt
  end
  else emit_frame t ~from_node ~port pkt

and emit_frame t ~from_node ~port pkt =
  bump_egress t from_node port (Packet.size pkt);
  (match t.capture with
  | Some w ->
      Pcap.write_packet w
        ~ts_us:(Sim.Time.to_ns (Sim.Engine.now t.engine) / 1000)
        pkt
  | None -> ());
  match Topology.wire t.topology from_node port with
  | None ->
      t.dropped <- t.dropped + 1;
      record_actor t
        (Topology.node_to_string from_node)
        "drop: port %d unwired" port
  | Some (far, latency) ->
      Sim.Engine.schedule t.engine ~delay:latency (fun () ->
          arrive t ~at:far pkt)

and arrive t ~(at : Topology.endpoint) pkt =
  match at.node with
  | Topology.Host name -> (
      match Hashtbl.find_opt t.hosts name with
      | None ->
          t.dropped <- t.dropped + 1;
          record_actor t name "drop: host has no receive callback"
      | Some h ->
          t.delivered <- t.delivered + 1;
          record_actor t name "rx %a" Packet.pp pkt;
          h.h_rx pkt)
  | Topology.Sw dpid -> switch_rx t dpid ~in_port:at.port pkt

and switch_rx t dpid ~in_port pkt =
  let sw = Hashtbl.find t.switches dpid in
  match Switch.process sw ~now:(Sim.Engine.now t.engine) ~in_port pkt with
  | Switch.Forward ports ->
      List.iter (fun p -> emit t ~from_node:(Topology.Sw dpid) ~port:p pkt) ports
  | Switch.Dropped ->
      t.dropped <- t.dropped + 1;
      record_actor t
        (Topology.node_to_string (Topology.Sw dpid))
        "drop (policy) %a" Packet.pp pkt
  | Switch.Send_to_controller -> (
      match controller_of t dpid with
      | None ->
          t.dropped <- t.dropped + 1;
          record_actor t
            (Topology.node_to_string (Topology.Sw dpid))
            "drop: table miss and no controller"
      | Some ctrl ->
          t.packet_ins <- t.packet_ins + 1;
          record_actor t
            (Topology.node_to_string (Topology.Sw dpid))
            "packet-in -> controller %a" Packet.pp pkt;
          Sim.Engine.schedule t.engine ~delay:t.ctrl_latency (fun () ->
              ctrl
                (Message.Packet_in
                   { Message.dpid; in_port; reason = `No_match; packet = pkt })))

let send_to_switch t dpid msg =
  record_actor t "controller" "-> s%d %a" dpid Message.pp_to_switch msg;
  Sim.Engine.schedule t.engine ~delay:t.ctrl_latency (fun () ->
      let sw = Hashtbl.find t.switches dpid in
      match Switch.apply sw ~now:(Sim.Engine.now t.engine) msg with
      | Switch.Nothing -> ()
      | Switch.Emit (ports, pkt) ->
          List.iter
            (fun p -> emit t ~from_node:(Topology.Sw dpid) ~port:p pkt)
            ports
      | Switch.Reply reply -> (
          match controller_of t dpid with
          | None -> ()
          | Some ctrl ->
              record_actor t
                (Topology.node_to_string (Topology.Sw dpid))
                "%a" Message.pp_to_controller reply;
              Sim.Engine.schedule t.engine ~delay:t.ctrl_latency (fun () ->
                  ctrl reply)))

let attach_host t ~name ~mac ~ip ~rx =
  (match Topology.host_attachment t.topology name with
  | None -> invalid_arg ("Network.attach_host: " ^ name ^ " is not wired")
  | Some _ -> ());
  Hashtbl.replace t.hosts name { h_name = name; h_mac = mac; h_ip = ip; h_rx = rx }

let host_state t name =
  match Hashtbl.find_opt t.hosts name with
  | Some h -> h
  | None -> invalid_arg ("Network: unknown host " ^ name)

let host_mac t name = (host_state t name).h_mac
let host_ip t name = (host_state t name).h_ip

let host_by_ip t ip =
  Hashtbl.fold
    (fun name h acc -> if Ipv4.equal h.h_ip ip then Some name else acc)
    t.hosts None

let send_from_host t ~name pkt =
  let _ = host_state t name in
  record_actor t name "tx %a" Packet.pp pkt;
  (* The host's single NIC is port 0 on the host node by convention of the
     topology builder; emit resolves the actual wiring. *)
  let host_node = Topology.Host name in
  let port =
    match Topology.ports_of t.topology host_node with
    | port :: _ -> port
    | [] -> 0
  in
  emit t ~from_node:host_node ~port pkt

let set_capture t w = t.capture <- w

let set_loss t ?prng ~rate () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Network.set_loss: bad rate";
  t.loss_rate <- rate;
  match prng with Some p -> t.loss_prng <- p | None -> ()

let delivered t = t.delivered
let dropped t = t.dropped
let packet_ins t = t.packet_ins

let egress_packets t ~node ~port =
  fst (Option.value ~default:(0, 0) (Hashtbl.find_opt t.egress (node, port)))

let egress_bytes t ~node ~port =
  snd (Option.value ~default:(0, 0) (Hashtbl.find_opt t.egress (node, port)))

let _ = record

(** The network graph: switches and hosts joined by point-to-point links
    with latencies, plus the precomputed routing state controllers use
    to install entries "along the path" (Figure 1, step 4).

    Routing is backed by {!Routing}: one next-hop table per destination
    switch, computed once per topology epoch and updated incrementally
    on link and host events, so {!next_hop} and {!switch_path} are O(1)
    and O(path) respectively — flat in fabric and host count. Hosts are
    routed via their {e primary attachment} (lowest-numbered host
    port); see doc/TOPOLOGY.md for the full model. *)

type node = Sw of Message.switch_id | Host of string

type endpoint = { node : node; port : int }

type link = { a : endpoint; b : endpoint; latency : Sim.Time.t }

type t

val create : unit -> t
val add_switch : t -> Message.switch_id -> unit
val add_host : t -> string -> unit

val link :
  t -> ?latency:Sim.Time.t -> node * int -> node * int -> unit
(** Bidirectional link between two (node, port) endpoints. Default
    latency is 10us. @raise Invalid_argument if either endpoint's node
    is unknown or the port is already wired. *)

val unlink : t -> node * int -> unit
(** Remove the link wired at this endpoint (both directions) — a
    link-down event. Routing state repairs incrementally: only
    destination trees that crossed the removed link are touched.
    @raise Invalid_argument if the port is not wired. *)

val remove_host : t -> string -> unit
(** Detach a host: unlink every port, then drop the node. Routing cost
    is O(1) — host reachability is derived from the attachment, not
    from per-host routing trees. @raise Invalid_argument if unknown. *)

val epoch : t -> int
(** Monotonic mutation counter: bumps on every node/link change.
    Cached artifacts derived from the topology (routing tables,
    compiled paths) are valid for exactly one epoch value. *)

val switches : t -> Message.switch_id list
val hosts : t -> string list
val links : t -> link list

val peer : t -> node -> int -> endpoint option
(** What is connected at this node's port. *)

val wire : t -> node -> int -> (endpoint * Sim.Time.t) option
(** Like {!peer} but also returns the link latency — the fabric's
    per-hop delay lookup, O(1). *)

val ports_of : t -> node -> int list
(** The node's wired ports, sorted ascending. O(degree). *)

val host_attachment : t -> string -> endpoint option
(** The switch endpoint a host hangs off ([None] if unattached). The
    returned endpoint is the {e switch side}: its node is the switch and
    its port the switch port facing the host. A multihomed host's
    primary attachment is its lowest-numbered port. *)

val switch_path :
  t -> src:string -> dst:string -> (Message.switch_id * int * int) list option
(** Hop-by-hop switch path from host [src] to host [dst], as
    [(dpid, in_port, out_port)] triples — exactly what a controller
    needs to install a flow along the path. [None] when unreachable.
    Minimizes total link latency; O(path length) over the precomputed
    next-hop tables. *)

val next_hop : t -> from:Message.switch_id -> dst_host:string -> int option
(** The output port at switch [from] on a shortest path toward
    [dst_host]; [None] when unreachable. Used by transit controllers to
    forward intercepted ident++ packets hop by hop (§3.4). O(1): a
    host-attachment lookup plus a next-hop table lookup. *)

val recompute_routes : t -> unit
(** Force a full from-scratch rebuild of the routing state (one
    Dijkstra per destination switch) — the comparison baseline for the
    incremental update path; never required for correctness. *)

val routing_stats : t -> Routing.stats
(** Counters from the routing engine (full recomputes, incremental
    events, trees touched vs skipped, nodes re-settled), materializing
    the routing state if needed. *)

val node_to_string : node -> string
val pp : Format.formatter -> t -> unit

(** A switch's flow table: priority-ordered wildcard matching with an
    exact-match fast path, per OpenFlow 1.0 semantics. *)

open Netcore

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of entries (default unbounded);
    inserting into a full table evicts the least-recently-hit entry. *)

val add : t -> Flow_entry.t -> unit
(** Install an entry. An entry with identical fields and priority
    replaces the old one (OpenFlow overlap semantics for identical
    matches). *)

val lookup : t -> in_port:int -> Packet.t -> Flow_entry.t option
(** Highest-priority matching entry; ties broken by most recent
    installation. Does not update counters — callers decide (see
    {!Switch}). *)

val remove : t -> fields:Match_fields.t -> unit
(** Strict delete: removes entries whose fields equal [fields]. *)

val remove_matching : t -> fields:Match_fields.t -> unit
(** Wildcard delete: removes entries covered by [fields] (OpenFlow
    DELETE semantics). *)

val expire : t -> now:Sim.Time.t -> int
(** Drop timed-out entries; returns how many were evicted. *)

val entries : t -> Flow_entry.t list
(** All live entries, highest priority first. *)

val size : t -> int
val clear : t -> unit
val misses : t -> int
(** Cumulative lookup misses. *)

val hits : t -> int

val evictions : t -> int
(** Cumulative capacity evictions (least-recently-hit entries dropped
    to make room; timeout expiry is not counted here). *)

val set_on_evict : t -> (Flow_entry.t -> unit) -> unit
(** Observe capacity evictions, called with each victim after removal —
    the controller uses this to flag proactively installed entries
    (recognized by cookie) being pushed out by reactive churn. *)

val pp : Format.formatter -> t -> unit

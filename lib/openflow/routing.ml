(* One shortest-path tree per destination switch, maintained
   incrementally. Trees point *toward* the destination: parent.(u) is
   (out_port at u, neighbour switch) on a shortest path from u to the
   destination. Weights are positive integers (nanoseconds), so parent
   chains strictly decrease in distance and are loop-free by
   construction. *)

(* Adjacency entry at a node: (port here, peer, port at peer, weight).
   Kept sorted by local port so relaxation order — and therefore
   tie-breaking between equal-cost paths — is a deterministic function
   of the wiring, not of hash order. *)
type edge = { e_port : int; e_peer : int; e_peer_port : int; e_w : int }

type tree = {
  dist : (int, int) Hashtbl.t;
  (* node -> (out_port at node, via switch) *)
  parent : (int, int * int) Hashtbl.t;
}

type stats = {
  full_recomputes : int;
  link_events : int;
  dests_recomputed : int;
  dests_skipped : int;
  nodes_settled : int;
}

type t = {
  adj : (int, edge list) Hashtbl.t;
  trees : (int, tree) Hashtbl.t;
  mutable s_full : int;
  mutable s_events : int;
  mutable s_dests_recomputed : int;
  mutable s_dests_skipped : int;
  mutable s_nodes_settled : int;
}

let create () =
  {
    adj = Hashtbl.create 64;
    trees = Hashtbl.create 64;
    s_full = 0;
    s_events = 0;
    s_dests_recomputed = 0;
    s_dests_skipped = 0;
    s_nodes_settled = 0;
  }

let switch_count t = Hashtbl.length t.adj

let stats t =
  {
    full_recomputes = t.s_full;
    link_events = t.s_events;
    dests_recomputed = t.s_dests_recomputed;
    dests_skipped = t.s_dests_skipped;
    nodes_settled = t.s_nodes_settled;
  }

let edges t n = Option.value ~default:[] (Hashtbl.find_opt t.adj n)

let singleton_tree d =
  let dist = Hashtbl.create 8 and parent = Hashtbl.create 8 in
  Hashtbl.replace dist d 0;
  { dist; parent }

let add_switch t d =
  if not (Hashtbl.mem t.adj d) then begin
    Hashtbl.replace t.adj d [];
    Hashtbl.replace t.trees d (singleton_tree d)
  end

let insert_edge t n e =
  let rec ins = function
    | [] -> [ e ]
    | hd :: tl when hd.e_port < e.e_port -> hd :: ins tl
    | rest -> e :: rest
  in
  Hashtbl.replace t.adj n (ins (edges t n))

let remove_edge t n ~port ~peer =
  Hashtbl.replace t.adj n
    (List.filter
       (fun e -> not (e.e_port = port && e.e_peer = peer))
       (edges t n))

let load_link t (u, pu) (v, pv) ~weight =
  if weight <= 0 then invalid_arg "Routing.load_link: weight must be positive";
  add_switch t u;
  add_switch t v;
  insert_edge t u { e_port = pu; e_peer = v; e_peer_port = pv; e_w = weight };
  insert_edge t v { e_port = pv; e_peer = u; e_peer_port = pu; e_w = weight }

(* Full Dijkstra toward destination [d]. Relaxing the edge u -> v
   (u nearer the destination) sets v's next hop to u through the port
   at v that faces u. *)
let dijkstra t d =
  let tree = singleton_tree d in
  let pq = Sim.Heap.create () in
  Sim.Heap.push pq ~key:0 (d, None);
  let rec loop () =
    match Sim.Heap.pop pq with
    | None -> ()
    | Some (k, (u, via)) ->
        let known =
          match Hashtbl.find_opt tree.dist u with
          | Some kd -> k > kd || (k = kd && u <> d)
          | None -> false
        in
        if not known then begin
          Hashtbl.replace tree.dist u k;
          Option.iter (fun p -> Hashtbl.replace tree.parent u p) via;
          List.iter
            (fun e ->
              let nd = k + e.e_w in
              match Hashtbl.find_opt tree.dist e.e_peer with
              | Some cur when cur <= nd -> ()
              | _ ->
                  Sim.Heap.push pq ~key:nd
                    (e.e_peer, Some (e.e_peer_port, u)))
            (edges t u)
        end;
        loop ()
  in
  loop ();
  tree

let recompute t =
  t.s_full <- t.s_full + 1;
  Hashtbl.reset t.trees;
  Hashtbl.iter (fun d _ -> Hashtbl.replace t.trees d (dijkstra t d)) t.adj

(* Relaxation cascade after an improvement (link-up, or the repair
   phase of link-down): settle the cheapest pending candidate, then
   offer improvements to its neighbours. [admit] restricts which nodes
   may be touched (the affected set during link-down repair). *)
let cascade t tree pq ~admit =
  let rec loop () =
    match Sim.Heap.pop pq with
    | None -> ()
    | Some (k, (u, (port, via))) ->
        let better =
          match Hashtbl.find_opt tree.dist u with
          | Some cur -> k < cur
          | None -> true
        in
        if better && admit u then begin
          Hashtbl.replace tree.dist u k;
          Hashtbl.replace tree.parent u (port, via);
          t.s_nodes_settled <- t.s_nodes_settled + 1;
          List.iter
            (fun e ->
              let nd = k + e.e_w in
              if admit e.e_peer then
                match Hashtbl.find_opt tree.dist e.e_peer with
                | Some cur when cur <= nd -> ()
                | _ -> Sim.Heap.push pq ~key:nd (e.e_peer, (e.e_peer_port, u)))
            (edges t u)
        end;
        loop ()
  in
  loop ()

let link_up t (u, pu) (v, pv) ~weight =
  load_link t (u, pu) (v, pv) ~weight;
  t.s_events <- t.s_events + 1;
  Hashtbl.iter
    (fun _d tree ->
      let du = Hashtbl.find_opt tree.dist u
      and dv = Hashtbl.find_opt tree.dist v in
      let improves cur far =
        match far with
        | None -> None
        | Some df -> (
            let nd = df + weight in
            match cur with Some dc when dc <= nd -> None | _ -> Some nd)
      in
      let pq = Sim.Heap.create () in
      (match improves du dv with
      | Some nd -> Sim.Heap.push pq ~key:nd (u, (pu, v))
      | None -> ());
      (match improves dv du with
      | Some nd -> Sim.Heap.push pq ~key:nd (v, (pv, u))
      | None -> ());
      if Sim.Heap.is_empty pq then
        t.s_dests_skipped <- t.s_dests_skipped + 1
      else begin
        t.s_dests_recomputed <- t.s_dests_recomputed + 1;
        cascade t tree pq ~admit:(fun _ -> true)
      end)
    t.trees

let link_down t (u, pu) (v, pv) =
  remove_edge t u ~port:pu ~peer:v;
  remove_edge t v ~port:pv ~peer:u;
  t.s_events <- t.s_events + 1;
  Hashtbl.iter
    (fun _d tree ->
      let used n port via =
        match Hashtbl.find_opt tree.parent n with
        | Some (p, w) -> p = port && w = via
        | None -> false
      in
      (* Weights are strictly positive, so at most one endpoint can
         route over the other: the orphaned side of the broken tree
         edge. *)
      let root =
        if used u pu v then Some u else if used v pv u then Some v else None
      in
      match root with
      | None ->
          (* The tree never crossed this link; distances can only grow
             on a removal, so the whole tree is still optimal. *)
          t.s_dests_skipped <- t.s_dests_skipped + 1
      | Some root ->
          t.s_dests_recomputed <- t.s_dests_recomputed + 1;
          (* Everything that reached the destination through [root] is
             orphaned with it: collect the reverse-tree subtree. *)
          let children = Hashtbl.create 16 in
          Hashtbl.iter
            (fun child (_port, via) ->
              Hashtbl.replace children via
                (child :: Option.value ~default:[] (Hashtbl.find_opt children via)))
            tree.parent;
          let affected = Hashtbl.create 16 in
          let rec collect n =
            if not (Hashtbl.mem affected n) then begin
              Hashtbl.replace affected n ();
              List.iter collect
                (Option.value ~default:[] (Hashtbl.find_opt children n))
            end
          in
          collect root;
          Hashtbl.iter
            (fun n () ->
              Hashtbl.remove tree.dist n;
              Hashtbl.remove tree.parent n)
            affected;
          (* Re-attach the orphaned region through its boundary: seed
             the queue with every edge from a still-valid node into the
             region, then run Dijkstra restricted to the region. Nodes
             no path reaches stay absent (= unreachable). *)
          let pq = Sim.Heap.create () in
          Hashtbl.iter
            (fun a () ->
              List.iter
                (fun e ->
                  match Hashtbl.find_opt tree.dist e.e_peer with
                  | Some dn ->
                      Sim.Heap.push pq ~key:(dn + e.e_w) (a, (e.e_port, e.e_peer))
                  | None -> ())
                (edges t a))
            affected;
          cascade t tree pq ~admit:(Hashtbl.mem affected))
    t.trees

let next_hop_port t ~src ~dst =
  match Hashtbl.find_opt t.trees dst with
  | None -> None
  | Some tree -> Option.map fst (Hashtbl.find_opt tree.parent src)

let next_hop_switch t ~src ~dst =
  match Hashtbl.find_opt t.trees dst with
  | None -> None
  | Some tree -> Option.map snd (Hashtbl.find_opt tree.parent src)

let distance t ~src ~dst =
  match Hashtbl.find_opt t.trees dst with
  | None -> None
  | Some tree -> Hashtbl.find_opt tree.dist src

(** Connection state for [keep state] rules: remembering approved flows
    so reply traffic passes without re-consulting policy, with idle
    expiry. *)

open Netcore

type t

val create : ?idle_timeout:Sim.Time.t -> unit -> t
(** Default idle timeout: 60 simulated seconds. *)

val note : t -> now:Sim.Time.t -> Five_tuple.t -> unit
(** Record an approved stateful flow. *)

val permits : t -> now:Sim.Time.t -> Five_tuple.t -> bool
(** True for a recorded flow or the exact reverse of one (the state
    entry admits replies). Refreshes the entry's idle timer on hit. *)

val revoke : t -> ip:Ipv4.t -> int
(** Drop every state entry whose flow has [ip] as either endpoint
    (principal revocation: replies must re-consult policy too); returns
    the number dropped. *)

val size : t -> int
val expire : t -> now:Sim.Time.t -> int
val clear : t -> unit

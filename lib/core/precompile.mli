(** Proactive compilation of PF+=2 rules into dataplane entries.

    "ident++ ... keeps enforcement in the network where it can be done
    at line-rate" (§6). Most PF+=2 rules need end-host information and
    must be decided reactively, but a prefix of the ruleset can be
    pushed straight into the switches: the {e leading} [block quick]
    rules whose match uses only network primitives. Because [quick]
    short-circuits evaluation at the first matching quick rule, a
    network-only [block quick] that precedes every other quick rule
    decides its flows identically whether evaluated in the controller
    or as a drop entry in the dataplane — so such traffic (port scans,
    known-bad prefixes) never causes a packet-in at all.

    A rule is compilable when it:
    - is [block quick],
    - has no [with] clauses and no [log] modifier,
    - uses non-negated addresses (any / table / prefix), and
    - constrains ports by equality or by a range of at most
      {!max_range_expansion} ports (OpenFlow 1.0 matches cannot express
      ranges, so small ranges are expanded).

    A compilable rule is offloaded iff its flow-space is disjoint from
    every earlier non-compilable [quick] rule's (over-approximated)
    flow-space — an overlapping earlier quick rule could decide one of
    its flows differently, so that rule stays reactive. Disjointness is
    decided symbolically with {!Analysis.Flowspace}; this strictly
    generalizes the previous behaviour of stopping compilation at the
    first non-compilable quick rule. *)

val max_range_expansion : int
(** 16. *)

val drop_matches : Pf.Env.t -> Openflow.Match_fields.t list
(** The match fields to install as maximum-priority drop entries. Table
    references expand to the cross product of their prefixes. *)

val compilable_rule : Pf.Env.t -> Pf.Ast.rule -> bool
(** Whether a single rule satisfies the per-rule conditions above
    (ignoring its position among quick rules). *)

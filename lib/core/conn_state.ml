open Netcore

module Flow_tbl = Hashtbl.Make (struct
  type t = Five_tuple.t

  let equal = Five_tuple.equal
  let hash = Five_tuple.hash
end)

type t = { idle_timeout : Sim.Time.t; entries : Sim.Time.t ref Flow_tbl.t }

let create ?(idle_timeout = Sim.Time.s 60) () =
  { idle_timeout; entries = Flow_tbl.create 64 }

let note t ~now flow = Flow_tbl.replace t.entries flow (ref now)

let fresh t ~now last =
  Sim.Time.compare now (Sim.Time.add !last t.idle_timeout) <= 0

let permits t ~now flow =
  let check f =
    match Flow_tbl.find_opt t.entries f with
    | Some last when fresh t ~now last ->
        last := now;
        true
    | Some _ | None -> false
  in
  check flow || check (Five_tuple.reverse flow)

let revoke t ~ip =
  let doomed =
    Flow_tbl.fold
      (fun flow _ acc ->
        if
          Ipv4.equal flow.Five_tuple.src ip || Ipv4.equal flow.Five_tuple.dst ip
        then flow :: acc
        else acc)
      t.entries []
  in
  List.iter (Flow_tbl.remove t.entries) doomed;
  List.length doomed

let size t = Flow_tbl.length t.entries

let expire t ~now =
  let stale =
    Flow_tbl.fold
      (fun flow last acc -> if fresh t ~now last then acc else flow :: acc)
      t.entries []
  in
  List.iter (Flow_tbl.remove t.entries) stale;
  List.length stale

let clear t = Flow_tbl.reset t.entries

(** The controller's configuration files (§3.4): [.control] files that
    "reside in a well known location", are "read in alphabetical order
    and their contents concatenated". Some are written by the
    administrator, others supplied by application developers or
    third-party security companies (Figure 2's 00-local-header /
    50-skype / 99-local-footer split). *)

type t

val create : ?strict:bool -> unit -> t
(** With [~strict:true], {!add} additionally runs the deep flow-space
    analysis ({!Analysis.Check.run}) over the concatenated ruleset and
    rejects the load (with rollback) when it reports error-severity
    findings — undefined macros, dictionaries, or table cycles that
    plain compilation only discovers at flow time. Default [false]. *)

val add : t -> name:string -> string -> (unit, string) result
(** Add or replace a file. The content must parse as PF+=2; on success
    the compiled environment is refreshed. The [".control"] suffix is
    optional in [name] and ignored for ordering. *)

val add_exn : t -> name:string -> string -> unit
val remove : t -> name:string -> unit
val files : t -> (string * string) list
(** In alphabetical (= evaluation) order. *)

val concatenated : t -> string
(** The logical single file the controller evaluates. *)

val env : t -> (Pf.Env.t, string) result
(** The compiled environment (cached; recompiled after changes). Fails
    when the concatenation is inconsistent, e.g. a rule referencing a
    table no file defines. *)

val env_exn : t -> Pf.Env.t

val analyze : t -> Analysis.Check.finding list
(** Deep flow-space analysis of the current concatenation (shadowing,
    conflicts, undefined references, default fallthrough); empty when
    the concatenation does not parse ({!env} reports that instead). *)

val epoch : t -> int
(** Monotonic policy generation: starts at 0 and is bumped by every
    successful {!add}, every {!remove}, and every rolled-back load.
    Anything derived from a compiled environment (e.g. memoized
    verdicts) is valid only while the epoch it was computed under is
    current. *)

val on_change : t -> (unit -> unit) -> unit
(** Register a callback fired after every successful {!add} or
    {!remove} (the controller uses this to resynchronize precompiled
    dataplane rules). *)

(** A change-impact report for one epoch bump: the {!Analysis.Fdd}
    differential between the previously compiled policy and the new
    one. *)
type change = {
  old_epoch : int;
  new_epoch : int;
  report : Analysis.Fdd.diff_report;
      (** Changed flow space, with example regions. *)
  nodes : int;  (** Diagram size of the {e new} policy. *)
  coverage : float;  (** Static coverage of the {e new} policy. *)
}

val watch_changes :
  ?registry:Obs.Registry.t -> ?limit:int -> t -> (change -> unit) -> unit
(** Opt in to automatic differential analysis: after every epoch bump
    that leaves the store compilable, diff the new decision diagram
    against the previous one and pass the report to the callback
    ([limit] caps example regions, default 16). Epochs where either
    side fails to compile produce no report (the next successful epoch
    diffs against the last compilable one). With [registry], also
    maintains the [identxx_analysis_fdd_nodes],
    [identxx_analysis_fdd_static_coverage],
    [identxx_analysis_policy_diff_changed_fraction] gauges and the
    [identxx_analysis_policy_diffs_total] counter. *)

type t = {
  mutable files : (string * string) list; (* sorted by name *)
  mutable compiled : (Pf.Env.t, string) result option;
  mutable listeners : (unit -> unit) list;
  mutable epoch : int;
  strict : bool;
}

let create ?(strict = false) () =
  { files = []; compiled = None; listeners = []; epoch = 0; strict }

let epoch t = t.epoch
let bump t = t.epoch <- t.epoch + 1

let notify t = List.iter (fun f -> f ()) (List.rev t.listeners)

let strip_suffix name =
  let suffix = ".control" in
  if String.length name > String.length suffix
     && String.sub name (String.length name - String.length suffix)
          (String.length suffix)
        = suffix
  then String.sub name 0 (String.length name - String.length suffix)
  else name

let sort_files files =
  List.sort (fun (a, _) (b, _) -> String.compare a b) files

let concatenated t =
  String.concat "\n" (List.map snd t.files)

let recompile t =
  let result = Pf.Env.of_string (concatenated t) in
  t.compiled <- Some result;
  result

let analyze t =
  match Pf.Parser.parse (concatenated t) with
  | Error _ -> [] (* compilation reports parse errors already *)
  | Ok decls -> Analysis.Check.run decls

(* In strict mode, error-severity analysis findings (undefined macros,
   dictionaries, table cycles — things Eval would only hit at flow
   time) reject the load just like a compile failure. *)
let strict_error t =
  if not t.strict then None
  else
    let errors =
      List.filter
        (fun (f : Analysis.Check.finding) ->
          f.Analysis.Check.severity = Analysis.Check.Error)
        (analyze t)
    in
    match errors with
    | [] -> None
    | f :: rest ->
        Some
          (Printf.sprintf "strict analysis: line %d: [%s] %s%s"
             f.Analysis.Check.line f.Analysis.Check.code
             f.Analysis.Check.message
             (match rest with
             | [] -> ""
             | _ -> Printf.sprintf " (and %d more)" (List.length rest)))

let add t ~name content =
  let name = strip_suffix name in
  (* Validate the file alone parses before accepting it. *)
  match Pf.Parser.parse content with
  | Error e -> Error (name ^ ": " ^ e)
  | Ok _ -> (
      let previous = t.files in
      t.files <- sort_files ((name, content) :: List.remove_assoc name t.files);
      let rollback e =
        t.files <- previous;
        ignore (recompile t);
        (* The env was (briefly) replaced and restored: bump anyway so
           any observer that sampled mid-load cannot keep stale state. *)
        bump t;
        Error (name ^ ": " ^ e)
      in
      match recompile t with
      | Ok _ -> (
          match strict_error t with
          | None ->
              bump t;
              notify t;
              Ok ()
          | Some e -> rollback e)
      | Error e ->
          (* Roll back: the file broke the concatenated config. *)
          rollback e)

let add_exn t ~name content =
  match add t ~name content with Ok () -> () | Error e -> invalid_arg e

let remove t ~name =
  t.files <- List.remove_assoc (strip_suffix name) t.files;
  ignore (recompile t);
  bump t;
  notify t

let files t = t.files

let env t =
  match t.compiled with Some r -> r | None -> recompile t

let on_change t f = t.listeners <- f :: t.listeners

let env_exn t =
  match env t with Ok e -> e | Error e -> invalid_arg ("Policy_store: " ^ e)

(* --- automatic differential analysis on reload --- *)

type change = {
  old_epoch : int;
  new_epoch : int;
  report : Analysis.Fdd.diff_report;
  nodes : int;
  coverage : float;
}

let watch_changes ?registry ?(limit = 16) t k =
  let current () =
    match env t with
    | Ok e -> Some (Analysis.Fdd.compile e)
    | Error _ -> None
  in
  let set_stats, record_diff =
    match registry with
    | None -> ((fun _ _ -> ()), fun _ -> ())
    | Some reg ->
        let open Obs.Registry in
        let diffs =
          counter reg
            ~help:"Differential policy-reload reports emitted by watchers"
            "identxx_analysis_policy_diffs_total"
        in
        let nodes =
          gauge reg ~help:"Nodes in the current policy decision diagram"
            "identxx_analysis_fdd_nodes"
        in
        let cov =
          gauge reg
            ~help:
              "Fraction of flow space the current policy decides statically"
            "identxx_analysis_fdd_static_coverage"
        in
        let frac =
          gauge reg
            ~help:"Flow-space fraction whose verdict the last reload changed"
            "identxx_analysis_policy_diff_changed_fraction"
        in
        ( (fun n c ->
            Gauge.set nodes (float_of_int n);
            Gauge.set cov c),
          fun f ->
            Counter.inc diffs;
            Gauge.set frac f )
  in
  let initial = current () in
  (match initial with
  | Some fdd ->
      set_stats (Analysis.Fdd.node_count fdd) (Analysis.Fdd.static_coverage fdd)
  | None -> ());
  let prev = ref initial and prev_epoch = ref t.epoch in
  on_change t (fun () ->
      let after = current () in
      (match (!prev, after) with
      | Some before, Some fdd ->
          let report = Analysis.Fdd.diff ~limit before fdd in
          let ch =
            {
              old_epoch = !prev_epoch;
              new_epoch = t.epoch;
              report;
              nodes = Analysis.Fdd.node_count fdd;
              coverage = Analysis.Fdd.static_coverage fdd;
            }
          in
          record_diff report.Analysis.Fdd.changed_fraction;
          set_stats ch.nodes ch.coverage;
          k ch
      | _ -> ());
      prev := after;
      prev_epoch := t.epoch)

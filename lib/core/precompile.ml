open Netcore
module MF = Openflow.Match_fields

let max_range_expansion = 16

(* The prefixes an address spec covers, or None when not compilable
   (negation, unknown table). [None] addr means unconstrained. *)
let prefixes_of env (spec : Pf.Ast.addr_spec option) =
  match spec with
  | None -> Some [ None ]
  | Some { Pf.Ast.negated = true; _ } -> None
  | Some { Pf.Ast.negated = false; addr } -> (
      match addr with
      | Pf.Ast.Addr_any -> Some [ None ]
      | Pf.Ast.Addr_prefix p -> Some [ Some p ]
      | Pf.Ast.Addr_table name -> (
          match Pf.Env.table env name with
          | Some ps -> Some (List.map (fun p -> Some p) ps)
          | None -> None)
      | Pf.Ast.Addr_list ps -> Some (List.map (fun p -> Some p) ps))

let ports_of (pm : Pf.Ast.port_match option) =
  match pm with
  | None -> Some [ None ]
  | Some (Pf.Ast.Port_eq p) -> Some [ Some p ]
  | Some (Pf.Ast.Port_range (lo, hi)) ->
      if hi - lo + 1 > max_range_expansion then None
      else Some (List.init (hi - lo + 1) (fun i -> Some (lo + i)))

let compilable_rule env (rule : Pf.Ast.rule) =
  rule.Pf.Ast.action = Pf.Ast.Block
  && rule.Pf.Ast.quick
  && (not rule.Pf.Ast.log)
  && rule.Pf.Ast.conds = []
  && prefixes_of env rule.Pf.Ast.from_.addr <> None
  && prefixes_of env rule.Pf.Ast.to_.addr <> None
  && ports_of rule.Pf.Ast.from_.port <> None
  && ports_of rule.Pf.Ast.to_.port <> None

let matches_of_rule env (rule : Pf.Ast.rule) =
  let get = Option.get in
  let srcs = get (prefixes_of env rule.Pf.Ast.from_.addr) in
  let dsts = get (prefixes_of env rule.Pf.Ast.to_.addr) in
  let sports = get (ports_of rule.Pf.Ast.from_.port) in
  let dports = get (ports_of rule.Pf.Ast.to_.port) in
  List.concat_map
    (fun nw_src ->
      List.concat_map
        (fun nw_dst ->
          List.concat_map
            (fun tp_src ->
              List.map
                (fun tp_dst ->
                  {
                    MF.any with
                    MF.dl_type =
                      (* Network-layer constraints imply an IPv4 match. *)
                      (if nw_src <> None || nw_dst <> None
                          || rule.Pf.Ast.proto <> None || tp_src <> None
                          || tp_dst <> None
                       then Some Ethertype.Ipv4
                       else None);
                    MF.nw_src;
                    nw_dst;
                    nw_proto = rule.Pf.Ast.proto;
                    tp_src;
                    tp_dst;
                  })
                dports)
            sports)
        dsts)
    srcs

(* A compilable [block quick] rule is safe to offload as a dataplane
   drop iff no earlier non-compilable quick rule can decide one of its
   flows differently first. Rule order gives the precise condition: the
   flow-spaces must be disjoint. Earlier compilable quick rules are
   drops themselves (consistent), and non-quick rules never decide
   before a later quick match. [Flowspace.of_rule_env] over-approximates
   conditional rules, so disjointness is conservative. This generalizes
   the old "stop at the first non-compilable quick rule" cutoff: a
   network-only block behind an unrelated informational quick rule now
   still offloads. *)
let drop_matches env =
  let rec go blockers = function
    | [] -> []
    | (rule : Pf.Ast.rule) :: rest ->
        if not rule.Pf.Ast.quick then go blockers rest
        else if compilable_rule env rule then
          let space = Analysis.Flowspace.of_rule_env env rule in
          if Analysis.Flowspace.overlaps space blockers then go blockers rest
          else matches_of_rule env rule @ go blockers rest
        else
          go
            (Analysis.Flowspace.union blockers
               (Analysis.Flowspace.of_rule_env env rule))
            rest
  in
  go Analysis.Flowspace.empty (Pf.Env.rules env)

open Netcore
module Net = Openflow.Network
module Topo = Openflow.Topology

let attach_host_with network host ~rx =
  let name = Identxx.Host.name host in
  Net.attach_host network ~name ~mac:(Identxx.Host.mac host)
    ~ip:(Identxx.Host.ip host) ~rx:(fun pkt ->
      (match Identxx.Host.handle_packet host pkt with
      | Some response -> Net.send_from_host network ~name response
      | None -> ());
      rx pkt)

let attach_host network host = attach_host_with network host ~rx:(fun _ -> ())

(* Fast-path invalidation (DESIGN.md, "Flow-setup fast path"): any
   daemon-side change event — login/logout (process spawn/exit),
   configuration reload, run-time pairs — drops the host's cached
   attributes at the controller. In a real deployment the daemon would
   push a change notification over its TCP session; in the simulator the
   hook is a direct call. *)
let watch_host controller host =
  let ip = Identxx.Host.ip host in
  Identxx.Daemon.on_change
    (Identxx.Host.daemon host)
    (fun () -> Controller.note_host_changed controller ip)

let watch_hosts controller hosts =
  Array.iter (fun h -> watch_host controller h) hosts

type simple = {
  engine : Sim.Engine.t;
  topology : Openflow.Topology.t;
  network : Net.t;
  controller : Controller.t;
  client : Identxx.Host.t;
  server : Identxx.Host.t;
}

let simple_network ?config ?obs ?spans ?recorder ?(client_ip = Ipv4.of_string "10.0.0.1")
    ?(server_ip = Ipv4.of_string "10.0.0.2") () =
  let engine = Sim.Engine.create () in
  let topology = Topo.create () in
  Topo.add_switch topology 1;
  Topo.add_host topology "client";
  Topo.add_host topology "server";
  Topo.link topology (Topo.Host "client", 0) (Topo.Sw 1, 1);
  Topo.link topology (Topo.Host "server", 0) (Topo.Sw 1, 2);
  let network = Net.create ~engine ~topology () in
  let controller = Controller.create ?config ?obs ?spans ?recorder ~network ~id:0 () in
  let client =
    Identxx.Host.create ~name:"client" ~mac:(Mac.of_int 0x0a0001) ~ip:client_ip ()
  in
  let server =
    Identxx.Host.create ~name:"server" ~mac:(Mac.of_int 0x0a0002) ~ip:server_ip ()
  in
  attach_host network client;
  attach_host network server;
  watch_host controller client;
  watch_host controller server;
  { engine; topology; network; controller; client; server }

let tree_network ?config ?obs ?spans ?recorder ~depth ~fanout ~hosts_per_edge () =
  if depth < 1 || depth > 6 then invalid_arg "Deploy.tree_network: bad depth";
  if fanout < 1 || fanout > 16 then invalid_arg "Deploy.tree_network: bad fanout";
  if hosts_per_edge < 1 || hosts_per_edge > 100 then
    invalid_arg "Deploy.tree_network: bad hosts_per_edge";
  let engine = Sim.Engine.create () in
  let topology = Topo.create () in
  (* Build switches level by level; dpids assigned in BFS order from 1.
     Port 0 faces the parent; ports 1..fanout face children; host ports
     start at 100. *)
  let next_dpid = ref 0 in
  let fresh () =
    incr next_dpid;
    Topo.add_switch topology !next_dpid;
    !next_dpid
  in
  let leaves = ref [] in
  let rec build level =
    let sw = fresh () in
    if level = depth then leaves := sw :: !leaves
    else
      for child = 1 to fanout do
        let c = build (level + 1) in
        Topo.link topology (Topo.Sw sw, child) (Topo.Sw c, 0)
      done;
    sw
  in
  ignore (build 1);
  let leaves = List.rev !leaves in
  let hosts = ref [] in
  List.iteri
    (fun li leaf ->
      for h = 1 to hosts_per_edge do
        let name = Printf.sprintf "t%d-%d" leaf h in
        Topo.add_host topology name;
        Topo.link topology (Topo.Host name, 0) (Topo.Sw leaf, 99 + h);
        let ip = Ipv4.of_octets 10 (li / 250) (li mod 250) h in
        let mac = Mac.of_int ((leaf lsl 8) lor h) in
        hosts := Identxx.Host.create ~name ~mac ~ip () :: !hosts
      done)
    leaves;
  let network = Net.create ~engine ~topology () in
  let controller = Controller.create ?config ?obs ?spans ?recorder ~network ~id:0 () in
  let hosts = Array.of_list (List.rev !hosts) in
  Array.iter (fun h -> attach_host network h) hosts;
  watch_hosts controller hosts;
  (engine, network, controller, hosts)

let linear_network ?config ?obs ?spans ?recorder ~switches ~hosts_per_switch () =
  if switches < 1 || switches > 250 then
    invalid_arg "Deploy.linear_network: switches out of range";
  if hosts_per_switch < 0 || hosts_per_switch > 250 then
    invalid_arg "Deploy.linear_network: hosts_per_switch out of range";
  let engine = Sim.Engine.create () in
  let topology = Topo.create () in
  for s = 1 to switches do
    Topo.add_switch topology s
  done;
  (* Port 0 links to the previous switch, port 1 to the next; hosts hang
     off ports 10, 11, … *)
  for s = 1 to switches - 1 do
    Topo.link topology (Topo.Sw s, 1) (Topo.Sw (s + 1), 0)
  done;
  let hosts = ref [] in
  for s = 1 to switches do
    for h = 1 to hosts_per_switch do
      let name = Printf.sprintf "h%d-%d" s h in
      Topo.add_host topology name;
      Topo.link topology (Topo.Host name, 0) (Topo.Sw s, 9 + h);
      let ip = Ipv4.of_octets 10 0 s h in
      let mac = Mac.of_int ((s lsl 8) lor h) in
      hosts := Identxx.Host.create ~name ~mac ~ip () :: !hosts
    done
  done;
  let network = Net.create ~engine ~topology () in
  let controller = Controller.create ?config ?obs ?spans ?recorder ~network ~id:0 () in
  let hosts = Array.of_list (List.rev !hosts) in
  Array.iter (fun h -> attach_host network h) hosts;
  watch_hosts controller hosts;
  (engine, network, controller, hosts)

(** The ident++ OpenFlow controller (§3.4, Figure 1).

    On a packet-in for an unknown flow, the controller queries the
    flow's source and destination ident++ daemons, waits for the
    responses (with a timeout — a silent daemon yields an absent
    response, which information-dependent policy treats as failure to
    prove), evaluates PF+=2 policy, and either installs flow entries
    along the whole path (allow) or a drop entry at the ingress switch
    (deny). The decision is cached by the switches' flow tables; later
    packets of the flow never reach the controller.

    ident++ traffic itself (TCP port 783) is never the subject of
    queries. A controller that sees ident++ queries or responses it did
    not originate is an {e intercepting} controller (§3.4): it may
    answer queries on behalf of end-hosts (spoofing their address,
    without forwarding the query), may augment responses with an extra
    section, and otherwise forwards them hop-by-hop — "intercepted
    queries are not allowed to cause new queries". *)

open Netcore

type query_targets = Both | Src_only | Dst_only | Neither
(** Which ends to query — §4's incremental-deployment modes. *)

type shard_config = {
  shard_count : int;  (** Flow-setup shards (≥ 1). *)
  shard_service : Sim.Time.t;
      (** Simulated per-packet-in service time charged to the owning
          shard's run queue. [Sim.Time.zero] (the default) keeps runs
          byte-identical across shard counts — the determinism oracle's
          regime; a positive value models N controller cores in
          parallel, which is what the throughput benchmark measures. *)
  coalesce : bool;
      (** Multiplex per-host daemon connections through the shared
          {!Shard.Conn_table}, so concurrent identical queries share
          one wire exchange. *)
}
(** Configuration of the sharded flow-setup engine (DESIGN.md §12). *)

val sharded : ?service:Sim.Time.t -> ?coalesce:bool -> int -> shard_config
(** [sharded n] is [n] shards with zero service time and coalescing
    on. *)

type config = {
  query_keys : string list;  (** Hint list placed in queries. *)
  query_timeout : Sim.Time.t;  (** Wait this long for daemon responses. *)
  entry_idle_timeout : Sim.Time.t option;  (** For installed entries. *)
  entry_hard_timeout : Sim.Time.t option;
  install_along_path : bool;
      (** Install entries at every switch on the path (Figure 1 step 4)
          vs. only at the packet-in switch (ablation). *)
  cache_denials : bool;  (** Install drop entries for blocked flows. *)
  precompile_quick_blocks : bool;
      (** Push leading network-only [block quick] rules into the
          switches as maximum-priority drop entries (see
          {!Precompile}), so that traffic dies at line rate without
          packet-ins. *)
  require_signed_responses : bool;
      (** Ignore responses that do not carry a valid {!Identxx.Signed}
          section from a keystore-known signer — spoofed responses then
          cannot influence decisions (a §5.3-style hardening). *)
  query_retries : int;
      (** Re-send unanswered queries this many times, each after
          [query_timeout], before deciding with what arrived (0 = a
          single attempt). *)
  query_targets : query_targets;
  default : Pf.Ast.action;  (** When no policy rule matches. *)
  fastpath : Fastpath.config;
      (** Flow-setup fast path (attribute/decision caches and the
          silent-host circuit breaker — see {!Fastpath} and DESIGN.md).
          {!Fastpath.disabled} by default: the baseline controller runs
          the full Figure-1 exchange for every table-miss flow. *)
  proactive : bool;
      (** Compile the policy's static slice ({!Analysis.Fdd}) into
          wildcard flow entries with {!Compiler} and keep them installed
          on every switch of the domain, so statically-decided flows
          never generate a packet-in — only the reactive residue (and
          ident++ exchange traffic, which a guard entry always punts)
          reaches the controller. Off by default (the paper's purely
          reactive Figure-1 exchange). See DESIGN.md §11. *)
  shards : shard_config option;
      (** [Some s] partitions flow setup across [s.shard_count] run
          queues by flow-key hash, multiplexes daemon connections with
          query coalescing, and batches flow-mod installs per tick.
          [None] (the default) is the original sequential path,
          byte-identical to the pre-shard controller. See DESIGN.md
          §12. *)
}

val default_config : config
(** Both ends queried, 5 ms query timeout, 30 s idle timeout on entries,
    path installation, denial caching and quick-block precompilation on,
    default pass (vanilla PF). *)

type t

val create :
  ?config:config ->
  ?keystore:Idcrypto.Sign.keystore ->
  ?functions:Pf.Fnreg.t ->
  ?obs:Obs.Registry.t ->
  ?spans:Obs.Span.t ->
  ?recorder:Obs.Recorder.t ->
  network:Openflow.Network.t ->
  id:Openflow.Network.controller_id ->
  unit ->
  t
(** Creates the controller and registers it with the network under [id].
    Switches must separately be assigned to its domain
    ({!Openflow.Network.assign_switch}; domain 0 is the default).

    [obs] is the metrics registry the controller records into (every
    series is labelled [controller="<id>"]; see doc/OBSERVABILITY.md
    for the catalog) — by default a private, enabled registry, so
    {!stats} works without any setup. [spans] is the flow-setup span
    collector — by default a {e disabled} private collector, since
    retained spans are only useful to a caller holding the collector.
    [recorder] is the flight recorder fed with structured flow-setup
    events (packet-in, query sent/settled, decision, install, breaker
    transitions; see doc/OBSERVABILITY.md for the schema) — by default
    {!Obs.Recorder.null}, so recording costs one branch per site.
    Recorder events carry no controller or shard attribution: the same
    workload dumps byte-identically whatever the shard count. *)

val policy : t -> Policy_store.t

val metrics : t -> Obs.Registry.t
(** The registry this controller records into (the [?obs] argument, or
    the private default). Exportable with {!Obs.Export}. *)

val spans : t -> Obs.Span.t
(** The flow-setup span collector (disabled unless [?spans] was given
    or a caller enables it). *)

val recorder : t -> Obs.Recorder.t
(** The flight recorder (the [?recorder] argument, or the shared
    disabled {!Obs.Recorder.null}). *)

val fastpath : t -> Fastpath.t
(** Shard 0's fast-path state (caches and breaker) — the whole
    controller's when unsharded; mostly for tests and tooling. Counters
    also surface through {!stats}, which aggregates all shards. *)

val shard_count : t -> int
(** Number of flow-setup shards (1 when [config.shards] is [None]). *)

val decision : t -> Decision.t
val keystore : t -> Idcrypto.Sign.keystore
val config : t -> config

val audit : t -> Audit.t
(** Every decision this controller made, with the rule that made it —
    the administrator's record for auditing delegated policy (S1). *)

(** {2 Override and revoke (S1, S7)}

    Cached flow entries outlive policy changes, so changing or revoking
    delegated policy must also flush the caches in this controller's
    domain; these helpers do both atomically (in simulation order). *)

val flush_cache : t -> unit
(** Delete every flow entry in the domain's switches and forget
    connection state; all flows are re-decided on their next packet.
    Precompiled quick-block entries are reinstalled afterwards. *)

val sync_precompiled : t -> unit
(** Resynchronize the proactive drop entries with current policy (runs
    automatically on every policy change). *)

val sync_proactive : ?force:bool -> t -> unit
(** Recompile the policy's static slice and push the delta of wildcard
    entries to the domain's switches (no-op unless [config.proactive]).
    Runs automatically on every policy change; the per-node compile
    cache makes an unchanged policy region free to recompile. [force]
    reinstalls every entry instead of diffing — used after the
    dataplane was wiped (cache flush) or partially clipped
    (revocation). *)

val proactive_table : t -> Compiler.table
(** The abstract compiled table currently installed (empty when
    [config.proactive] is off or nothing compiled yet). *)

val update_file : t -> name:string -> string -> (unit, string) result
(** Replace a [.control] file and flush. *)

val revoke_file : t -> name:string -> unit
(** Remove a [.control] file (e.g. a delegation granted to a user or a
    third party) and flush, so revocation takes effect immediately. *)

val revoke_principal : t -> ip:Ipv4.t -> int
(** Revoke a principal by address: drop its connection state (returned),
    purge its cached attributes and every memoized decision its answers
    may have influenced, reset its breaker state, and delete every
    installed dataplane entry with the address at either end. Already
    in-flight pending flows are unaffected (they decide with the
    responses they gathered). *)

val note_host_changed : t -> Ipv4.t -> unit
(** A daemon-side change event (login/logout, process spawn or exit,
    daemon configuration reload) occurred on the host: invalidate its
    cached attributes and dependent decisions. {!Deploy} wires
    {!Identxx.Daemon.on_change} to this. *)

(** {2 Interception hooks (§3.4)} *)

val set_response_augment :
  t -> (Identxx.Response.t -> Identxx.Key_value.section) -> unit
(** When a response transits this controller's domain, append the given
    section (empty section = leave unchanged). Models §4's network
    collaboration: a branch controller adding its own (signed) rules or
    drop requests to responses leaving its network. *)

val set_local_answers :
  t -> (Ipv4.t -> Identxx.Key_value.section option) -> unit
(** Answer queries on behalf of end-hosts: when a query targets an
    address this function covers, the controller spoofs a response
    itself and does not forward the query. Also used for the
    "controllers implement ident++ but end-hosts don't" deployment
    (§4, Incremental Benefit). *)

(** {2 Statistics} *)

type stats = {
  flows_seen : int;  (** Distinct flows that reached the controller. *)
  allowed : int;
  blocked : int;
  queries_sent : int;
  responses_received : int;
  query_timeouts : int;
  query_retries_sent : int;  (** Retry rounds issued. *)
  responses_rejected : int;  (** Failed signature checks. *)
  responses_augmented : int;
  queries_answered_locally : int;
  eval_errors : int;
  fastpath_decisions : int;
      (** Flows decided without any query exchange: every needed answer
          came from the attribute cache or an open breaker. *)
  attr_cache_hits : int;
  attr_cache_misses : int;
  attr_cache_evictions : int;
  attr_cache_invalidations : int;
  decision_cache_hits : int;
  decision_cache_misses : int;
  decision_cache_evictions : int;
  breaker_trips : int;
  breaker_fastpaths : int;
}

val stats : t -> stats
(** Aggregated across every shard, so the totals are shard-count
    invariant (each shard owns its own counter series; the sum is the
    controller's). *)

val coalesced_queries : t -> int
(** Duplicate in-flight queries absorbed by connection-table coalescing
    (0 when unsharded or coalescing is off). *)

val wire_exchanges : t -> int
(** Wire query exchanges actually begun by the connection table (0 when
    unsharded or coalescing is off). *)

val batch_flushes : t -> int
(** Batched install flushes performed (0 when unsharded). *)

val shard_makespan : t -> Sim.Time.t
(** Latest simulated completion time across all shard run queues — the
    parallel-makespan figure the throughput benchmark divides flows by.
    [Sim.Time.zero] when unsharded or with zero service time. *)

(** {2 Flow monitoring} *)

val request_stats : t -> Openflow.Message.switch_id -> unit
(** Ask a switch for a snapshot of its flow table (OpenFlow flow-stats).
    The reply arrives asynchronously; read it with {!switch_stats}. *)

val switch_stats :
  t -> Openflow.Message.switch_id -> Openflow.Message.stats_reply option
(** The most recent stats reply received from the switch. *)

(** {2 Lower-level access, used by tests} *)

val handle_message : t -> Openflow.Message.to_controller -> unit
(** The callback registered with the network. *)

val pending_count : t -> int

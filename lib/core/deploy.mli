(** Glue for standing up ident++-protected simulated networks: attaches
    {!Identxx.Host} end-hosts to an {!Openflow.Network} so their daemons
    answer queries arriving over the fabric, plus a canned Figure-1
    topology used by the quickstart, tests and benchmarks. *)

open Netcore

val attach_host : Openflow.Network.t -> Identxx.Host.t -> unit
(** Wire the host's NIC receive path: ident++ queries delivered to the
    host produce daemon responses sent back into the network; other
    traffic is accepted silently (the simulator measures delivery at the
    network layer). *)

val attach_host_with :
  Openflow.Network.t -> Identxx.Host.t -> rx:(Packet.t -> unit) -> unit
(** Like {!attach_host} but also invokes [rx] on every delivered packet
    (after ident++ processing), for application-level assertions. *)

val watch_host : Controller.t -> Identxx.Host.t -> unit
(** Subscribe the controller's fast path to the host's daemon change
    events ({!Identxx.Daemon.on_change} →
    {!Controller.note_host_changed}), so cached host attributes are
    dropped when what the daemon would answer changes. The canned
    topologies below do this for every host they create. *)

val watch_hosts : Controller.t -> Identxx.Host.t array -> unit

type simple = {
  engine : Sim.Engine.t;
  topology : Openflow.Topology.t;
  network : Openflow.Network.t;
  controller : Controller.t;
  client : Identxx.Host.t;
  server : Identxx.Host.t;
}

val simple_network :
  ?config:Controller.config ->
  ?obs:Obs.Registry.t ->
  ?spans:Obs.Span.t ->
  ?recorder:Obs.Recorder.t ->
  ?client_ip:Ipv4.t ->
  ?server_ip:Ipv4.t ->
  unit ->
  simple
(** The Figure-1 setup: one client, one switch, one server, one
    controller. Client defaults to 10.0.0.1, server to 10.0.0.2.
    [obs]/[spans]/[recorder] are handed to {!Controller.create}. *)

val tree_network :
  ?config:Controller.config ->
  ?obs:Obs.Registry.t ->
  ?spans:Obs.Span.t ->
  ?recorder:Obs.Recorder.t ->
  depth:int ->
  fanout:int ->
  hosts_per_edge:int ->
  unit ->
  Sim.Engine.t
  * Openflow.Network.t
  * Controller.t
  * Identxx.Host.t array
(** A [fanout]-ary tree of switches of the given [depth] (depth 1 = a
    single switch), with [hosts_per_edge] hosts under every leaf switch
    — the classic aggregation topology. Host IPs are 10.(leaf/250).
    (leaf mod 250).h. *)

val linear_network :
  ?config:Controller.config ->
  ?obs:Obs.Registry.t ->
  ?spans:Obs.Span.t ->
  ?recorder:Obs.Recorder.t ->
  switches:int ->
  hosts_per_switch:int ->
  unit ->
  Sim.Engine.t
  * Openflow.Network.t
  * Controller.t
  * Identxx.Host.t array
(** A chain of [switches] switches, each with [hosts_per_switch] hosts
    (IPs 10.0.s.h), all in controller domain 0 — the workhorse topology
    for benchmarks. *)

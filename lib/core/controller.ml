open Netcore
module Net = Openflow.Network

let src = Logs.Src.create "identxx.controller" ~doc:"ident++ controller"

module Log = (val Logs.src_log src : Logs.LOG)
module Topo = Openflow.Topology
module Msg = Openflow.Message

type query_targets = Both | Src_only | Dst_only | Neither

(* The sharded flow-setup engine (DESIGN.md §12). [shard_service] is the
   simulated per-message cost each shard pays; zero keeps behaviour
   byte-identical under any shard count, positive models N controller
   cores (the concurrent-burst bench). [coalesce] turns on the per-host
   connection table: concurrent misses needing the same host share one
   in-flight ident++ exchange. *)
type shard_config = {
  shard_count : int;
  shard_service : Sim.Time.t;
  coalesce : bool;
}

let sharded ?(service = Sim.Time.zero) ?(coalesce = true) count =
  { shard_count = count; shard_service = service; coalesce }

type config = {
  query_keys : string list;
  query_timeout : Sim.Time.t;
  entry_idle_timeout : Sim.Time.t option;
  entry_hard_timeout : Sim.Time.t option;
  install_along_path : bool;
  cache_denials : bool;
  precompile_quick_blocks : bool;
  require_signed_responses : bool;
  query_retries : int;
  query_targets : query_targets;
  default : Pf.Ast.action;
  fastpath : Fastpath.config;
  proactive : bool;
  shards : shard_config option;
}

let default_config =
  {
    query_keys =
      [
        Identxx.Key_value.user_id;
        Identxx.Key_value.group_id;
        Identxx.Key_value.app_name;
        Identxx.Key_value.exe_hash;
        Identxx.Key_value.version;
        Identxx.Key_value.requirements;
        Identxx.Key_value.req_sig;
      ];
    query_timeout = Sim.Time.ms 5;
    entry_idle_timeout = Some (Sim.Time.s 30);
    entry_hard_timeout = None;
    install_along_path = true;
    cache_denials = true;
    precompile_quick_blocks = true;
    require_signed_responses = false;
    query_retries = 0;
    query_targets = Both;
    default = Pf.Ast.Pass;
    (* Off by default: the baseline controller runs the unmodified
       Figure-1 exchange for every table-miss flow. *)
    fastpath = Fastpath.disabled;
    (* None: the legacy single sequential loop, byte-identical to the
       pre-shard controller. *)
    proactive = false;
    shards = None;
  }

type pending = {
  p_flow : Five_tuple.t;
  mutable p_packets : (Msg.switch_id * int * Packet.t) list;
      (* Buffered data packets awaiting the verdict, oldest first. *)
  mutable src_resp : Identxx.Response.t option;
  mutable dst_resp : Identxx.Response.t option;
  mutable await_src : bool;
  mutable await_dst : bool;
  mutable retries_left : int;
  mutable p_timeout : Sim.Engine.cancel;
  p_started : float; (* packet-in time, seconds *)
  p_ctx : Obs.Trace_context.t option;
  p_span : Obs.Span.span;
  mutable src_qspan : Obs.Span.span;
  mutable dst_qspan : Obs.Span.span;
  mutable src_sent : float; (* first query send time; nan = never sent *)
  mutable dst_sent : float;
  mutable p_exchanges : (Ipv4.t * string) list;
      (* (host, query shape) wire exchanges this flow initiated in the
         connection table; its timeout settles them for every waiter. *)
}

type stats = {
  flows_seen : int;
  allowed : int;
  blocked : int;
  queries_sent : int;
  responses_received : int;
  query_timeouts : int;
  query_retries_sent : int;
  responses_rejected : int;
  responses_augmented : int;
  queries_answered_locally : int;
  eval_errors : int;
  fastpath_decisions : int;
  attr_cache_hits : int;
  attr_cache_misses : int;
  attr_cache_evictions : int;
  attr_cache_invalidations : int;
  decision_cache_hits : int;
  decision_cache_misses : int;
  decision_cache_evictions : int;
  breaker_trips : int;
  breaker_fastpaths : int;
}

module Flow_tbl = Hashtbl.Make (struct
  type t = Five_tuple.t

  let equal = Five_tuple.equal
  let hash = Five_tuple.hash
end)

(* The controller's own instruments. The old ad-hoc stat fields live in
   the registry now; {!stats} reads the counters back, so its numbers
   track the exported series exactly. *)
type metrics = {
  c_flows : Obs.Registry.Counter.t;
  c_allowed : Obs.Registry.Counter.t;
  c_blocked : Obs.Registry.Counter.t;
  c_queries : Obs.Registry.Counter.t;
  c_responses : Obs.Registry.Counter.t;
  c_timeouts : Obs.Registry.Counter.t;
  c_retries : Obs.Registry.Counter.t;
  c_rejected : Obs.Registry.Counter.t;
  c_augmented : Obs.Registry.Counter.t;
  c_local : Obs.Registry.Counter.t;
  c_eval_errors : Obs.Registry.Counter.t;
  c_fastpath : Obs.Registry.Counter.t;
  h_flow_setup : Obs.Registry.Histogram.t;
  h_query_rtt : Obs.Registry.Histogram.t;
}

let make_metrics reg ~labels =
  let counter help name = Obs.Registry.counter reg ~help ~labels name in
  {
    c_flows =
      counter "Table-miss flows that reached the controller."
        "identxx_controller_flows_total";
    c_allowed =
      Obs.Registry.counter reg ~help:"Flow verdicts, by decision."
        ~labels:(labels @ [ ("verdict", "pass") ])
        "identxx_controller_decisions_total";
    c_blocked =
      Obs.Registry.counter reg ~help:"Flow verdicts, by decision."
        ~labels:(labels @ [ ("verdict", "block") ])
        "identxx_controller_decisions_total";
    c_queries =
      counter "ident++ queries sent to daemons (including retries)."
        "identxx_controller_queries_sent_total";
    c_responses =
      counter "ident++ responses accepted."
        "identxx_controller_responses_received_total";
    c_timeouts =
      counter "Flows that decided with at least one end silent."
        "identxx_controller_query_timeouts_total";
    c_retries =
      counter "Query retry rounds issued."
        "identxx_controller_query_retries_total";
    c_rejected =
      counter "Responses dropped for a failed signature check."
        "identxx_controller_responses_rejected_total";
    c_augmented =
      counter "Transit responses augmented with a policy section."
        "identxx_controller_responses_augmented_total";
    c_local =
      counter "Queries answered on a host's behalf (interception)."
        "identxx_controller_local_answers_total";
    c_eval_errors =
      counter "Policy evaluations that failed (verdict fell back to block)."
        "identxx_controller_eval_errors_total";
    c_fastpath =
      counter
        "Flows decided without any query exchange (every needed answer came \
         from the attribute cache or an open breaker)."
        "identxx_controller_fastpath_decisions_total";
    h_flow_setup =
      Obs.Registry.histogram reg
        ~help:"Packet-in to verdict latency in seconds." ~labels
        "identxx_controller_flow_setup_seconds";
    h_query_rtt =
      Obs.Registry.histogram reg
        ~help:"First query send to accepted response, in seconds." ~labels
        "identxx_controller_query_rtt_seconds";
  }

(* Instruments of the proactive flow-table compiler; only registered
   when [config.proactive] is set, so the default metric exposition is
   unchanged. *)
type pro_metrics = {
  pc_recompiles : Obs.Registry.Counter.t;
  pc_delta_add : Obs.Registry.Counter.t;
  pc_delta_del : Obs.Registry.Counter.t;
  pc_evicted : Obs.Registry.Counter.t;
  ph_recompile : Obs.Registry.Histogram.t;
}

let make_pro_metrics reg ~labels =
  {
    pc_recompiles =
      Obs.Registry.counter reg
        ~help:"Proactive table recompilations (policy epochs compiled)."
        ~labels "identxx_compiler_recompiles_total";
    pc_delta_add =
      Obs.Registry.counter reg
        ~help:"Abstract entries in emitted flow-mod deltas, by operation."
        ~labels:(labels @ [ ("op", "add") ])
        "identxx_compiler_delta_entries_total";
    pc_delta_del =
      Obs.Registry.counter reg
        ~help:"Abstract entries in emitted flow-mod deltas, by operation."
        ~labels:(labels @ [ ("op", "del") ])
        "identxx_compiler_delta_entries_total";
    pc_evicted =
      Obs.Registry.counter reg
        ~help:"Proactively installed entries evicted by reactive churn."
        ~labels "identxx_compiler_proactive_evictions_total";
    ph_recompile =
      Obs.Registry.histogram reg
        ~help:"Wall time to recompile and diff the proactive table."
        ~labels "identxx_compiler_recompile_seconds";
  }

(* One flow parked on a coalesced exchange: enough to find its pending
   entry (owning shard + flow key) and to know which end of the flow
   the exchange resolves. *)
type waiter = {
  w_flow : Five_tuple.t;
  w_sid : int;
  w_end : [ `Src | `Dst ];
}

(* Everything per-flow state touches, split per shard: its own pending
   table, its own fast-path view (attribute/decision caches + breaker),
   and its own metrics record (labelled [shard=<i>] when sharding is
   on, so per-shard series export while {!stats} sums them). *)
type shard_ctx = {
  sid : int;
  s_pending : pending Flow_tbl.t;
  s_fp : Fastpath.t;
  s_m : metrics;
  s_labels : Obs.Registry.labels;
  s_pin : (string, Obs.Registry.Counter.t) Hashtbl.t;
      (* Per-source packet-in counters, cached by source address so the
         hot path registers each (shard, src) series once. *)
}

type t = {
  network : Net.t;
  id : Net.controller_id;
  cfg : config;
  policy : Policy_store.t;
  decision : Decision.t;
  conn_state : Conn_state.t;
  audit : Audit.t;
  mutable augment : Identxx.Response.t -> Identxx.Key_value.section;
  mutable local_answers : Ipv4.t -> Identxx.Key_value.section option;
  obs : Obs.Registry.t;
  spans : Obs.Span.t;
  recorder : Obs.Recorder.t;
  shards_ : shard_ctx array;
      (* Always at least one: the unsharded controller is shard 0. *)
  driver : Shard.Engine.t option;
      (* Some iff cfg.shards: the run-queue multiplexer. *)
  conn : waiter Shard.Conn_table.t option;
      (* Some iff cfg.shards with coalesce: the per-host connection
         table all shards share (it sits below them, on the wire side). *)
  batch : Shard.Batch.t option;
  send_sw : Msg.switch_id -> Msg.to_switch -> unit;
      (* Flow-handling path to the dataplane: direct when unsharded,
         through the per-tick batcher when sharded. *)
  mutable src_port_matters : (int * bool) option;
      (* Per-epoch memo of Fastpath.env_matches_src_port. *)
  mutable trace_seq : int;
      (* Disambiguates trace ids when the same 5-tuple misses twice. *)
  mutable last_stats : (Msg.switch_id * Msg.stats_reply) list;
  mutable precompiled : Openflow.Match_fields.t list;
      (* Drop matches currently pushed to the dataplane. *)
  mutable proactive_tbl : Compiler.table;
      (* The abstract compiled table currently installed. *)
  mutable proactive_state : Analysis.Flowspace.t * Analysis.Flowspace.t;
      (* (forward, reverse) spaces of keep-state pass rules at last
         sync: pass entries overlapping the forward space and block
         entries overlapping the reverse space were installed as punts,
         and a change in either forces a full reinstall. *)
  proactive_cache : Compiler.cache;
  pm : pro_metrics option; (* Some iff cfg.proactive. *)
}

let policy t = t.policy
let recorder t = t.recorder
let fastpath t = t.shards_.(0).s_fp
let shard_count t = Array.length t.shards_
let metrics t = t.obs
let spans t = t.spans

let time_now_s t = Sim.Time.to_float_s (Sim.Engine.now (Net.engine t.network))
let decision t = t.decision
let audit t = t.audit
let keystore t = Decision.keystore t.decision
let config t = t.cfg

let set_response_augment t f = t.augment <- f
let set_local_answers t f = t.local_answers <- f

(* Aggregated across shards: each shard owns its counter registry, and
   the summary sums them — so `netsim --json` reads the same whatever
   the shard count. *)
let stats t =
  let v = Obs.Registry.Counter.value in
  let sum f =
    Array.fold_left (fun acc sx -> acc + v (f sx.s_m)) 0 t.shards_
  in
  let fc f =
    Array.fold_left
      (fun acc sx -> acc + f (Fastpath.counters sx.s_fp))
      0 t.shards_
  in
  {
    flows_seen = sum (fun m -> m.c_flows);
    allowed = sum (fun m -> m.c_allowed);
    blocked = sum (fun m -> m.c_blocked);
    queries_sent = sum (fun m -> m.c_queries);
    responses_received = sum (fun m -> m.c_responses);
    query_timeouts = sum (fun m -> m.c_timeouts);
    query_retries_sent = sum (fun m -> m.c_retries);
    responses_rejected = sum (fun m -> m.c_rejected);
    responses_augmented = sum (fun m -> m.c_augmented);
    queries_answered_locally = sum (fun m -> m.c_local);
    eval_errors = sum (fun m -> m.c_eval_errors);
    fastpath_decisions = sum (fun m -> m.c_fastpath);
    attr_cache_hits = fc (fun c -> c.Fastpath.attr_hits);
    attr_cache_misses = fc (fun c -> c.Fastpath.attr_misses);
    attr_cache_evictions = fc (fun c -> c.Fastpath.attr_evictions);
    attr_cache_invalidations = fc (fun c -> c.Fastpath.attr_invalidations);
    decision_cache_hits = fc (fun c -> c.Fastpath.decision_hits);
    decision_cache_misses = fc (fun c -> c.Fastpath.decision_misses);
    decision_cache_evictions = fc (fun c -> c.Fastpath.decision_evictions);
    breaker_trips = fc (fun c -> c.Fastpath.breaker_trips);
    breaker_fastpaths = fc (fun c -> c.Fastpath.breaker_fastpaths);
  }

let pending_count t =
  Array.fold_left (fun acc sx -> acc + Flow_tbl.length sx.s_pending) 0 t.shards_

let coalesced_queries t =
  match t.conn with None -> 0 | Some ct -> Shard.Conn_table.coalesced ct

let wire_exchanges t =
  match t.conn with None -> 0 | Some ct -> Shard.Conn_table.started ct

let batch_flushes t =
  match t.batch with None -> 0 | Some b -> Shard.Batch.flushes b

let shard_makespan t =
  match t.driver with
  | None -> Sim.Time.zero
  | Some d -> Shard.Engine.makespan d

(* --- policy-driven interception (S3.4's undisclosed PF+=2 extensions,
   made concrete: `intercept query ... answer { ... }` and
   `intercept response ... augment { ... }`) --- *)

let section_of_pairs pairs =
  List.filter_map
    (fun (k, v) ->
      if Identxx.Key_value.valid_key k && Identxx.Key_value.valid_value v then
        Some (Identxx.Key_value.pair k v)
      else None)
    pairs

(* Answer queries addressed to [ip] on the host's behalf: policy
   intercepts take precedence over the programmatic hook. *)
let resolve_local_answer t ip =
  let from_policy =
    match Policy_store.env t.policy with
    | Error _ -> None
    | Ok env ->
        List.fold_left
          (fun acc (i : Pf.Ast.intercept) ->
            if acc <> None then acc
            else if
              i.Pf.Ast.ikind = Pf.Ast.Answer_query
              && Pf.Env.addr_spec_matches env i.Pf.Ast.target ip
            then Some (section_of_pairs i.Pf.Ast.pairs)
            else acc)
          None (Pf.Env.intercepts env)
  in
  match from_policy with Some s -> Some s | None -> t.local_answers ip

(* The section(s) to append to a response heading toward [dst_ip]. *)
let resolve_augment t ~dst_ip response =
  let from_policy =
    match Policy_store.env t.policy with
    | Error _ -> []
    | Ok env ->
        List.concat_map
          (fun (i : Pf.Ast.intercept) ->
            if
              i.Pf.Ast.ikind = Pf.Ast.Augment_response
              && Pf.Env.addr_spec_matches env i.Pf.Ast.target dst_ip
            then section_of_pairs i.Pf.Ast.pairs
            else [])
          (Pf.Env.intercepts env)
  in
  from_policy @ t.augment response

(* --- forwarding of intercepted ident++ packets, one hop at a time --- *)

let forward_toward t ~dpid ~dst_ip pkt =
  match Net.host_by_ip t.network dst_ip with
  | None -> () (* destination outside every known domain: drop *)
  | Some host -> (
      match Topo.next_hop (Net.topology t.network) ~from:dpid ~dst_host:host with
      | None -> ()
      | Some port ->
          t.send_sw dpid
            (Msg.Packet_out { Msg.out_packet = pkt; out_port = `Port port }))

(* --- installing the verdict (Figure 1, step 4) --- *)

let install_path t flow =
  let net = t.network in
  match
    ( Net.host_by_ip net flow.Five_tuple.src,
      Net.host_by_ip net flow.Five_tuple.dst )
  with
  | Some src_host, Some dst_host -> (
      match
        Topo.switch_path (Net.topology net) ~src:src_host ~dst:dst_host
      with
      | None | Some [] -> false
      | Some hops ->
          let hops = if t.cfg.install_along_path then hops else [ List.hd hops ] in
          List.iter
            (fun (dpid, _in_port, out_port) ->
              t.send_sw dpid
                (Msg.add_flow ?idle_timeout:t.cfg.entry_idle_timeout
                   ?hard_timeout:t.cfg.entry_hard_timeout
                   ~fields:(Openflow.Match_fields.of_five_tuple flow)
                   [ Openflow.Action.Output out_port ]))
            hops;
          true)
  | _ -> false

let install_drop t ~dpid flow =
  t.send_sw dpid
    (Msg.add_flow ?idle_timeout:t.cfg.entry_idle_timeout
       ?hard_timeout:t.cfg.entry_hard_timeout
       ~fields:(Openflow.Match_fields.of_five_tuple flow)
       Openflow.Action.drop)

let release_packets t packets =
  (* Send each buffered packet back through its switch's (now updated)
     table. Flow-mods were enqueued first, and the control channel is
     FIFO, so the entries are in place when the packets run. *)
  List.iter
    (fun (dpid, _in_port, pkt) ->
      t.send_sw dpid
        (Msg.Packet_out { Msg.out_packet = pkt; out_port = `Table }))
    (List.rev packets)

(* Whether any rule of the current policy constrains source ports: the
   decision-cache key wildcards the ephemeral client port only when it
   provably cannot change the verdict. Memoized per policy epoch. *)
let src_port_matters t =
  let epoch = Policy_store.epoch t.policy in
  match t.src_port_matters with
  | Some (e, b) when e = epoch -> b
  | Some _ | None ->
      let b =
        match Policy_store.env t.policy with
        | Ok env -> Fastpath.env_matches_src_port env
        | Error _ -> true (* conservative: key on the full 5-tuple *)
      in
      t.src_port_matters <- Some (epoch, b);
      b

let compute_verdict t sx ~flow ~src ~dst =
  let input = { Decision.flow; src_response = src; dst_response = dst } in
  match Decision.decide t.decision input with
  | Ok v -> v
  | Error _ ->
      Obs.Registry.Counter.inc sx.s_m.c_eval_errors;
      (* Fail closed on configuration errors. *)
      {
        Pf.Eval.decision = Pf.Ast.Block;
        matched = None;
        keep_state = false;
        log = false;
      }

(* The verdict for a flow given both endpoint answers, through the
   decision cache when the fast path is on. [src_tag]/[dst_tag] are
   pre-computed answer tags (from the attribute cache) that save
   re-encoding the responses on the hot path. *)
let eval_decision ?src_tag ?dst_tag t sx ~flow ~src ~dst =
  if not (Fastpath.enabled sx.s_fp) then compute_verdict t sx ~flow ~src ~dst
  else begin
    let epoch = Policy_store.epoch t.policy in
    let tag precomputed resp =
      match precomputed with
      | Some tg -> tg
      | None -> Fastpath.answer_tag resp
    in
    let key =
      Fastpath.decision_key_tagged ~match_src_port:(src_port_matters t) ~flow
        ~src_tag:(tag src_tag src) ~dst_tag:(tag dst_tag dst)
    in
    match Fastpath.find_decision sx.s_fp ~epoch ~key with
    | Some v -> v
    | None ->
        let v = compute_verdict t sx ~flow ~src ~dst in
        Fastpath.store_decision sx.s_fp ~epoch ~key ~flow v;
        v
  end

let apply_verdict ?(span = Obs.Span.null) ?started ?trace_id t sx ~flow
    ~packets ~src ~dst verdict =
  Audit.record ?trace_id t.audit
    ~at:(Sim.Engine.now (Net.engine t.network))
    ~flow ~verdict ~src ~dst;
  Log.debug (fun m ->
      m "decision %s: %s%s" (Five_tuple.to_string flow)
        (match verdict.Pf.Eval.decision with
        | Pf.Ast.Pass -> "pass"
        | Pf.Ast.Block -> "block")
        (match verdict.Pf.Eval.matched with
        | Some r -> Printf.sprintf " (rule@%d)" r.Pf.Ast.line
        | None -> " (default)"));
  let now_s = time_now_s t in
  (match started with
  | Some s -> Obs.Registry.Histogram.observe sx.s_m.h_flow_setup (now_s -. s)
  | None -> ());
  if Obs.Span.is_live span then begin
    Obs.Span.set_attr span "decision"
      (match verdict.Pf.Eval.decision with
      | Pf.Ast.Pass -> "pass"
      | Pf.Ast.Block -> "block");
    Obs.Span.set_attr span "rule"
      (match verdict.Pf.Eval.matched with
      | Some r -> string_of_int r.Pf.Ast.line
      | None -> "default")
  end;
  (* A denied flow is exactly the trace an operator will want: override
     the head-sampling coin before the root is finished. *)
  if verdict.Pf.Eval.decision = Pf.Ast.Block then Obs.Span.force_sample span;
  (* The flight recorder keeps no shard attribution: the same workload
     must dump byte-identically whatever the shard count. *)
  if Obs.Recorder.enabled t.recorder then
    Obs.Recorder.record_lazy t.recorder ~at:now_s "decision"
      (lazy
        [
          ("flow", Five_tuple.to_string flow);
          ( "verdict",
            match verdict.Pf.Eval.decision with
            | Pf.Ast.Pass -> "pass"
            | Pf.Ast.Block -> "block" );
          ( "rule",
            match verdict.Pf.Eval.matched with
            | Some r -> string_of_int r.Pf.Ast.line
            | None -> "default" );
        ]);
  (match verdict.Pf.Eval.decision with
  | Pf.Ast.Pass ->
      Obs.Registry.Counter.inc sx.s_m.c_allowed;
      let installed = install_path t flow in
      if verdict.Pf.Eval.keep_state then begin
        Conn_state.note t.conn_state
          ~now:(Sim.Engine.now (Net.engine t.network))
          flow;
        ignore (install_path t (Five_tuple.reverse flow))
      end;
      if Obs.Span.is_live span then
        Obs.Span.event span ~at:now_s
          (if installed then "install" else "no-path");
      if installed then begin
        if Obs.Recorder.enabled t.recorder then
          Obs.Recorder.record_lazy t.recorder ~at:now_s "install"
            (lazy [ ("flow", Five_tuple.to_string flow); ("kind", "path") ]);
        release_packets t packets
      end
  | Pf.Ast.Block -> (
      Obs.Registry.Counter.inc sx.s_m.c_blocked;
      if t.cfg.cache_denials then
        match packets with
        | (dpid, _, _) :: _ ->
            install_drop t ~dpid flow;
            if Obs.Span.is_live span then
              Obs.Span.event span ~at:now_s "install-drop";
            if Obs.Recorder.enabled t.recorder then
              Obs.Recorder.record_lazy t.recorder ~at:now_s "install"
                (lazy
                  [ ("flow", Five_tuple.to_string flow); ("kind", "drop") ])
        | [] -> ()));
  Obs.Span.finish t.spans ~at:now_s span

let trace_id_of ctx =
  Option.map (fun (c : Obs.Trace_context.t) -> c.Obs.Trace_context.trace_id) ctx

let finalize t sx p =
  Sim.Engine.cancel p.p_timeout;
  Flow_tbl.remove sx.s_pending p.p_flow;
  let verdict =
    eval_decision t sx ~flow:p.p_flow ~src:p.src_resp ~dst:p.dst_resp
  in
  apply_verdict ~span:p.p_span ~started:p.p_started
    ?trace_id:(trace_id_of p.p_ctx) t sx ~flow:p.p_flow ~packets:p.p_packets
    ~src:p.src_resp ~dst:p.dst_resp verdict

let maybe_finalize t sx p =
  if (not p.await_src) && not p.await_dst then finalize t sx p

(* A coalesced exchange settled badly — timeout, breaker-open, or a
   rejected (unauthenticatable) response. Every waiter fails, not just
   the initiating flow: the awaited end resolves absent, the flow's
   root span is force-sampled (an error trace per waiter), and the
   flow decides with what it has. Runs on the waiter's own shard. *)
let fail_waiter t ~cause ~host w =
  let sx = t.shards_.(w.w_sid) in
  match Flow_tbl.find_opt sx.s_pending w.w_flow with
  | None -> () (* already decided; stale settlement is a no-op *)
  | Some p ->
      let awaiting =
        match w.w_end with `Src -> p.await_src | `Dst -> p.await_dst
      in
      if awaiting then begin
        Obs.Registry.Counter.inc sx.s_m.c_timeouts;
        Obs.Span.force_sample p.p_span;
        let at = time_now_s t in
        if Obs.Span.is_live p.p_span then
          Obs.Span.event p.p_span ~at
            ~attrs:[ ("host", Ipv4.to_string host); ("cause", cause) ]
            "exchange-failed";
        let qspan =
          match w.w_end with `Src -> p.src_qspan | `Dst -> p.dst_qspan
        in
        if Obs.Span.is_live qspan then begin
          Obs.Span.set_attr qspan "outcome" cause;
          Obs.Span.finish t.spans ~at qspan
        end;
        if Obs.Recorder.enabled t.recorder then
          Obs.Recorder.record_lazy t.recorder ~at "query-settled"
            (lazy
              [
                ("flow", Five_tuple.to_string w.w_flow);
                ("host", Ipv4.to_string host);
                ("outcome", cause);
              ]);
        (match w.w_end with
        | `Src -> p.await_src <- false
        | `Dst -> p.await_dst <- false);
        maybe_finalize t sx p
      end

(* Settle an exchange's waiters onto their shards, in join order. Every
   delivery is posted — never run inline — so the global execution
   order is the join order whatever the shard count. *)
let post_to_waiters t ws fn =
  match t.driver with
  | None -> List.iter fn ws
  | Some d ->
      List.iter (fun w -> Shard.Engine.post d ~shard:w.w_sid (fun () -> fn w)) ws

(* --- querying daemons (Figure 1, step 3) --- *)

(* Send an ident++ query to [target_ip] about [flow]. [reply_to] is the
   flow's other end: per §3.2 the controller uses it as the query's
   source address, so the response naturally routes back through the
   network (and its interception points). Returns false when no query
   could be issued (unknown host). *)
(* The key list a query hints: the keys the current policy actually
   reads, falling back to the configured defaults (§3.2: the list is
   only a hint; daemons may answer with more). Also the attribute-cache
   key for the host's answer. *)
let hint_keys t =
  match Policy_store.env t.policy with
  | Ok env -> (
      match Pf.Env.referenced_keys env with
      | [] -> t.cfg.query_keys
      | keys -> keys)
  | Error _ -> t.cfg.query_keys

(* The coalescing key alongside the host: two queries share an exchange
   only when they hint the same key list. *)
let shape_of_keys keys = String.concat "," keys

(* Actually put a query on the wire toward [target_ip]'s attachment
   point. The caller has already checked reachability. *)
let wire_send ?trace t sx ~(flow : Five_tuple.t) ~target_ip ~reply_to
    attachment =
  let query =
    Identxx.Query.with_trace
      (Identxx.Query.make ~flow ~keys:(hint_keys t))
      trace
  in
  let pkt =
    Identxx.Wire.query_packet ~to_ip:target_ip ~from_ip:reply_to query
  in
  Obs.Registry.Counter.inc sx.s_m.c_queries;
  if Obs.Recorder.enabled t.recorder then
    Obs.Recorder.record_lazy t.recorder ~at:(time_now_s t) "query-sent"
      (lazy
        [
          ("flow", Five_tuple.to_string flow);
          ("host", Ipv4.to_string target_ip);
        ]);
  match attachment.Topo.node with
  | Topo.Sw dpid ->
      t.send_sw dpid
        (Msg.Packet_out
           { Msg.out_packet = pkt; out_port = `Port attachment.Topo.port })
  | Topo.Host _ -> ()

let send_query ?trace t sx ~(flow : Five_tuple.t) ~target_ip ~reply_to ~end_ =
  match resolve_local_answer t target_ip with
  | Some section ->
      (* Answer on the host's behalf without touching the network. *)
      Obs.Registry.Counter.inc sx.s_m.c_local;
      let response = Identxx.Response.make ~flow [ section ] in
      `Local response
  | None -> (
      match Net.host_by_ip t.network target_ip with
      | None -> `Unreachable
      | Some host -> (
          match Topo.host_attachment (Net.topology t.network) host with
          | None -> `Unreachable
          | Some attachment -> (
              match t.conn with
              | None ->
                  wire_send ?trace t sx ~flow ~target_ip ~reply_to attachment;
                  `Sent None
              | Some ct -> (
                  (* Multiplex through the per-host connection: only the
                     first flow needing this (host, shape) actually
                     sends; everyone else parks on the exchange. *)
                  let shape = shape_of_keys (hint_keys t) in
                  let w = { w_flow = flow; w_sid = sx.sid; w_end = end_ } in
                  match Shard.Conn_table.join ct ~host:target_ip ~shape w with
                  | `First ->
                      wire_send ?trace t sx ~flow ~target_ip ~reply_to
                        attachment;
                      `Sent (Some shape)
                  | `Coalesced _ -> `Joined))))

let start_flow t sx ~dpid ~in_port pkt (flow : Five_tuple.t) =
  Obs.Registry.Counter.inc sx.s_m.c_flows;
  let now_s = time_now_s t in
  (* Per-source packet-in accounting: the series the packet_in_surge
     health rule watches. Registration and the address formatting are
     gated on the registry flag to keep the disabled path free. *)
  if Obs.Registry.enabled t.obs then begin
    let src_s = Ipv4.to_string flow.Five_tuple.src in
    let pin =
      match Hashtbl.find_opt sx.s_pin src_s with
      | Some c -> c
      | None ->
          let c =
            Obs.Registry.counter t.obs
              ~help:"Packet-in table misses reaching the controller, by source."
              ~labels:(sx.s_labels @ [ ("src", src_s) ])
              "identxx_controller_packet_ins_total"
          in
          Hashtbl.replace sx.s_pin src_s c;
          c
    in
    Obs.Registry.Counter.inc pin
  end;
  if Obs.Recorder.enabled t.recorder then
    Obs.Recorder.record_lazy t.recorder ~at:now_s "packet-in"
      (lazy [ ("flow", Five_tuple.to_string flow) ]);
  (* One root span — and one trace context — per table-miss flow.
     Attribute formatting is gated on the collector flag (the Sim.Trace
     discipline); when disabled every operation below runs against the
     shared dead span and no context rides the queries. *)
  let sp, ctx =
    if Obs.Span.enabled t.spans then begin
      let seq = t.trace_seq in
      t.trace_seq <- seq + 1;
      let ctx =
        Obs.Trace_context.make ~seed:(Five_tuple.to_string flow) ~seq
          ~sampled:true
      in
      let sampled =
        Obs.Span.should_sample t.spans ~id:ctx.Obs.Trace_context.trace_id
      in
      let ctx = { ctx with Obs.Trace_context.sampled } in
      let attrs =
        [
          ("flow", Five_tuple.to_string flow);
          ("trace-id", ctx.Obs.Trace_context.trace_id);
        ]
      in
      let attrs =
        (* The owning shard, when the sharded engine is driving. *)
        if Option.is_none t.driver then attrs
        else attrs @ [ ("shard", string_of_int sx.sid) ]
      in
      let sp = Obs.Span.start t.spans ~at:now_s ~sampled ~attrs "flow-setup" in
      (sp, Some ctx)
    end
    else (Obs.Span.null, None)
  in
  Log.debug (fun m -> m "new flow %s at s%d" (Five_tuple.to_string flow) dpid);
  (* PF semantics: state matching precedes the ruleset. A flow covered
     by live keep-state (e.g. a reply whose cached entry idled out) is
     re-admitted without a fresh ident++ exchange. *)
  if Conn_state.permits t.conn_state ~now:(Sim.Engine.now (Net.engine t.network)) flow
  then begin
    Obs.Registry.Counter.inc sx.s_m.c_allowed;
    Obs.Registry.Histogram.observe sx.s_m.h_flow_setup 0.;
    if Obs.Span.is_live sp then begin
      Obs.Span.event sp ~at:now_s "conn-state-readmit";
      Obs.Span.set_attr sp "decision" "pass"
    end;
    if install_path t flow then
      t.send_sw dpid
        (Msg.Packet_out { Msg.out_packet = pkt; out_port = `Table });
    Obs.Span.finish t.spans ~at:now_s sp
  end
  else begin
    let now = Sim.Engine.now (Net.engine t.network) in
    let want_src =
      match t.cfg.query_targets with
      | Both | Src_only -> true
      | Dst_only | Neither -> false
    and want_dst =
      match t.cfg.query_targets with
      | Both | Dst_only -> true
      | Src_only | Neither -> false
    in
    (* Fast path: before any Figure-1 exchange, try to resolve each
       queried endpoint from the attribute cache, or — for a host whose
       breaker is open — as an immediate absent response. [Some (r, tag)]
       is a resolved answer (r = None means absent) with its cached
       decision-key tag; [None] means the daemon must actually be
       asked. *)
    let fp_resolve want ip =
      if not want then Some (None, "-")
      else
        match
          Fastpath.find_attrs_tagged sx.s_fp ~now ~host:ip
            ~keys:(hint_keys t)
        with
        | Some (r, tag) ->
            if Obs.Span.is_live sp then
              Obs.Span.event sp ~at:now_s
                ~attrs:[ ("host", Ipv4.to_string ip) ]
                "attr-cache-hit";
            Some (Some r, tag)
        | None -> (
            match Fastpath.consult_host sx.s_fp ~now ip with
            | `Absent ->
                if Obs.Span.is_live sp then
                  Obs.Span.event sp ~at:now_s
                    ~attrs:[ ("host", Ipv4.to_string ip) ]
                    "breaker-absent";
                Some (None, "-")
            | `Probe ->
                if Obs.Span.is_live sp then
                  Obs.Span.event sp ~at:now_s
                    ~attrs:[ ("host", Ipv4.to_string ip) ]
                    "breaker-probe";
                None
            | `Ask -> None)
    in
    let pre_src = fp_resolve want_src flow.Five_tuple.src
    and pre_dst = fp_resolve want_dst flow.Five_tuple.dst in
    match (pre_src, pre_dst) with
    | Some (src, src_tag), Some (dst, dst_tag) when Fastpath.enabled sx.s_fp
      ->
        (* Both ends resolved without touching the network: decide now,
           with no pending entry and no timer. *)
        Obs.Registry.Counter.inc sx.s_m.c_fastpath;
        if Obs.Span.is_live sp then Obs.Span.set_attr sp "path" "fastpath";
        let verdict = eval_decision t sx ~flow ~src ~dst ~src_tag ~dst_tag in
        apply_verdict ~span:sp ~started:now_s ?trace_id:(trace_id_of ctx) t sx
          ~flow
          ~packets:[ (dpid, in_port, pkt) ]
          ~src ~dst verdict
    | _ ->
    let timeout_handle = ref None in
    (* Sharded, the timer posts into the owning shard's mailbox, so
       timeout handling serialises with the shard's other work (and
       its installs ride the same batched pass). *)
    let arm_timeout () =
      let fire () = match !timeout_handle with Some f -> f () | None -> () in
      match t.driver with
      | None ->
          Sim.Engine.schedule_cancellable (Net.engine t.network)
            ~delay:t.cfg.query_timeout fire
      | Some d ->
          Shard.Engine.post_after d ~shard:sx.sid ~delay:t.cfg.query_timeout
            fire
    in
    let p =
      {
        p_flow = flow;
        p_packets = [ (dpid, in_port, pkt) ];
        src_resp = (match pre_src with Some (r, _) -> r | None -> None);
        dst_resp = (match pre_dst with Some (r, _) -> r | None -> None);
        await_src = false;
        await_dst = false;
        retries_left = t.cfg.query_retries;
        p_timeout = arm_timeout ();
        p_started = now_s;
        p_ctx = ctx;
        p_span = sp;
        src_qspan = Obs.Span.null;
        dst_qspan = Obs.Span.null;
        src_sent = Float.nan;
        dst_sent = Float.nan;
        p_exchanges = [];
      }
    in
    let note_sent end_ =
      (* First attempt only: a retried query keeps its original child
         span and send time, so the RTT histogram sees the full wait. *)
      let at = time_now_s t in
      let qspan target =
        if Obs.Span.is_live p.p_span then
          Obs.Span.start t.spans ~at ~parent:p.p_span
            ~attrs:[ ("host", Ipv4.to_string target) ]
            "query"
        else Obs.Span.null
      in
      match end_ with
      | `Src ->
          if Float.is_nan p.src_sent then begin
            p.src_sent <- at;
            p.src_qspan <- qspan flow.Five_tuple.src
          end
      | `Dst ->
          if Float.is_nan p.dst_sent then begin
            p.dst_sent <- at;
            p.dst_qspan <- qspan flow.Five_tuple.dst
          end
    in
    (* Each query carries a per-endpoint child context, derived
       deterministically from the root — a retry resends the same span
       id, so the daemon's timings land under the same child either
       way. *)
    let qtrace n = Option.map (fun c -> Obs.Trace_context.child c n) p.p_ctx in
    let issue_end end_ ~target ~reply ~qn =
      let awaiting =
        match end_ with `Src -> p.await_src | `Dst -> p.await_dst
      in
      if awaiting then begin
        if List.exists (fun (h, _) -> Ipv4.equal h target) p.p_exchanges then
          (* A retry round, and this flow initiated the exchange: put
             the query back on the wire without re-joining (coalesced
             waiters ride this resend). *)
          match Net.host_by_ip t.network target with
          | None -> ()
          | Some host -> (
              match Topo.host_attachment (Net.topology t.network) host with
              | None -> ()
              | Some att ->
                  wire_send ?trace:(qtrace qn) t sx ~flow ~target_ip:target
                    ~reply_to:reply att)
        else
          match
            send_query ?trace:(qtrace qn) t sx ~flow ~target_ip:target
              ~reply_to:reply ~end_
          with
          | `Local r ->
              if Obs.Span.is_live sp then
                Obs.Span.event sp ~at:(time_now_s t)
                  ~attrs:[ ("host", Ipv4.to_string target) ]
                  "local-answer";
              (match end_ with
              | `Src -> p.src_resp <- Some r
              | `Dst -> p.dst_resp <- Some r);
              (match end_ with
              | `Src -> p.await_src <- false
              | `Dst -> p.await_dst <- false)
          | `Sent shape ->
              (match shape with
              | Some s -> p.p_exchanges <- (target, s) :: p.p_exchanges
              | None -> ());
              note_sent end_
          | `Joined ->
              (* Another flow's exchange is already in flight to this
                 host for the same query shape: no duplicate wire
                 query; the settlement fans out to us too. *)
              note_sent end_;
              if Obs.Span.is_live sp then
                Obs.Span.event sp ~at:(time_now_s t)
                  ~attrs:[ ("host", Ipv4.to_string target) ]
                  "query-coalesced"
          | `Unreachable -> (
              match end_ with
              | `Src -> p.await_src <- false
              | `Dst -> p.await_dst <- false)
      end
    in
    let issue_queries () =
      issue_end `Src ~target:flow.Five_tuple.src ~reply:flow.Five_tuple.dst
        ~qn:1;
      issue_end `Dst ~target:flow.Five_tuple.dst ~reply:flow.Five_tuple.src
        ~qn:2
    in
    timeout_handle :=
      Some
        (fun () ->
          match Flow_tbl.find_opt sx.s_pending flow with
          | Some p' when p' == p ->
              if (p.await_src || p.await_dst) && p.retries_left > 0 then begin
                (* Re-issue the unanswered queries and re-arm the timer. *)
                p.retries_left <- p.retries_left - 1;
                Obs.Registry.Counter.inc sx.s_m.c_retries;
                if Obs.Span.is_live sp then
                  Obs.Span.event sp ~at:(time_now_s t) "retry";
                issue_queries ();
                p.p_timeout <- arm_timeout ()
              end
              else begin
                if p.await_src || p.await_dst then begin
                  Obs.Registry.Counter.inc sx.s_m.c_timeouts;
                  (* A flow decided with an end silent is an error
                     trace: keep it whatever the sampling coin said. *)
                  Obs.Span.force_sample sp;
                  (* Feed the breaker: each side that stayed silent
                     through every attempt is a consecutive timeout. *)
                  let now = Sim.Engine.now (Net.engine t.network) in
                  let at = time_now_s t in
                  let timed_out qspan ip =
                    let tripped =
                      Fastpath.note_timeout_report sx.s_fp ~now ip
                    in
                    if tripped then begin
                      if Obs.Span.is_live sp then
                        Obs.Span.event sp ~at
                          ~attrs:[ ("host", Ipv4.to_string ip) ]
                          "breaker-trip";
                      if Obs.Recorder.enabled t.recorder then
                        Obs.Recorder.record_lazy t.recorder ~at "breaker"
                          (lazy
                            [
                              ("host", Ipv4.to_string ip);
                              ("state", "open");
                            ]);
                      (* Propagate the trip to every other shard's
                         breaker — an explicit cross-shard message, so
                         the whole controller fails fast on this host. *)
                      match t.driver with
                      | Some d ->
                          Shard.Engine.broadcast d (fun osid ->
                              if osid <> sx.sid then
                                Fastpath.note_breaker_open
                                  t.shards_.(osid).s_fp ~now ip)
                      | None -> ()
                    end;
                    if Obs.Span.is_live qspan then begin
                      Obs.Span.set_attr qspan "outcome" "timeout";
                      Obs.Span.finish t.spans ~at qspan
                    end;
                    if Obs.Recorder.enabled t.recorder then
                      Obs.Recorder.record_lazy t.recorder ~at "query-settled"
                        (lazy
                          [
                            ("flow", Five_tuple.to_string flow);
                            ("host", Ipv4.to_string ip);
                            ("outcome", "timeout");
                          ]);
                    (* This flow initiated the exchange (a silent host
                       answers nobody): settle it and fail every other
                       waiter the same way. *)
                    match t.conn with
                    | None -> ()
                    | Some ct ->
                        let cause =
                          if tripped then "breaker-open" else "timeout"
                        in
                        List.iter
                          (fun (h, shape) ->
                            if Ipv4.equal h ip then
                              let ws =
                                Shard.Conn_table.settle ct ~host:h ~shape
                              in
                              post_to_waiters t
                                (List.filter
                                   (fun w ->
                                     not (Five_tuple.equal w.w_flow flow))
                                   ws)
                                (fail_waiter t ~cause ~host:ip))
                          p.p_exchanges
                  in
                  if p.await_src then
                    timed_out p.src_qspan flow.Five_tuple.src;
                  if p.await_dst then timed_out p.dst_qspan flow.Five_tuple.dst
                end;
                p.await_src <- false;
                p.await_dst <- false;
                finalize t sx p
              end
          | Some _ | None -> ());
    Flow_tbl.replace sx.s_pending flow p;
    (* Query only the ends the fast path could not resolve. *)
    p.await_src <- want_src && Option.is_none pre_src;
    p.await_dst <- want_dst && Option.is_none pre_dst;
    issue_queries ();
    maybe_finalize t sx p
  end

(* --- intercepted / owned ident++ traffic --- *)

let find_pending_for_response sx ~from_ip (r : Identxx.Response.t) =
  Flow_tbl.fold
    (fun flow p acc ->
      if acc <> None then acc
      else if
        Proto.equal flow.Five_tuple.proto r.Identxx.Response.proto
        && flow.Five_tuple.src_port = r.Identxx.Response.src_port
        && flow.Five_tuple.dst_port = r.Identxx.Response.dst_port
        && (Ipv4.equal from_ip flow.Five_tuple.src
           || Ipv4.equal from_ip flow.Five_tuple.dst)
      then Some (flow, p)
      else acc)
    sx.s_pending None

(* Where a well-formed signature section must sit for the response to
   count as authenticated: last — except that a daemon answering a
   traced query appends its (unauthenticated, purely diagnostic) trace
   section after signing, so exactly one trailing trace section is
   tolerated. An untraced response is checked exactly as before. *)
let expected_signature_index (response : Identxx.Response.t) =
  let n = List.length response.Identxx.Response.sections in
  match List.rev response.Identxx.Response.sections with
  | last :: _ when Identxx.Response.is_trace_section last -> n - 2
  | _ -> n - 1

(* Transit: another controller's exchange crossing our domain.
   Augment (§3.4) and forward toward its destination. *)
let handle_transit t sx ~dpid ~from_ip ~to_ip response pkt =
  let section = resolve_augment t ~dst_ip:to_ip response in
  let pkt =
    if section = [] then pkt
    else begin
      Obs.Registry.Counter.inc sx.s_m.c_augmented;
      let augmented = Identxx.Response.append_section response section in
      let dst_port =
        match pkt.Packet.eth_payload with
        | Packet.Ip { payload = Packet.Tcp tcp; _ } -> tcp.Packet.tcp_dst
        | _ -> Identxx.Wire.port
      in
      Identxx.Wire.response_packet ~to_ip ~from_ip ~dst_port augmented
    end
  in
  forward_toward t ~dpid ~dst_ip:to_ip pkt

(* Stitch the daemon's piggybacked timings (decode, lookup, assemble,
   sign — on the daemon's clock) under this query's child span,
   completing the cross-host tree. *)
let stitch_daemon_spans t qspan dtrace =
  match dtrace with
  | Some (_trace_id, _parent, dspans) ->
      List.iter
        (fun (dname, t0, t1) ->
          let dsp = Obs.Span.start t.spans ~at:t0 ~parent:qspan dname in
          Obs.Span.finish t.spans ~at:t1 dsp)
        dspans
  | None -> ()

(* One settled answer landing on one parked flow, on the waiter's own
   shard. [dtrace] is the daemon's timing piggyback — stitched under
   the initiator's query span only (the timings are real once). *)
let deliver_to_waiter t ~dtrace response w =
  let sx = t.shards_.(w.w_sid) in
  match Flow_tbl.find_opt sx.s_pending w.w_flow with
  | None -> () (* the flow already decided (its own timeout won) *)
  | Some p ->
      let awaiting =
        match w.w_end with `Src -> p.await_src | `Dst -> p.await_dst
      in
      if awaiting then begin
        let at = time_now_s t in
        let qspan, sent =
          match w.w_end with
          | `Src -> (p.src_qspan, p.src_sent)
          | `Dst -> (p.dst_qspan, p.dst_sent)
        in
        if not (Float.is_nan sent) then
          Obs.Registry.Histogram.observe sx.s_m.h_query_rtt (at -. sent);
        if Obs.Span.is_live qspan then begin
          stitch_daemon_spans t qspan dtrace;
          Obs.Span.set_attr qspan "outcome" "answered";
          Obs.Span.finish t.spans ~at qspan
        end;
        if Obs.Recorder.enabled t.recorder then
          Obs.Recorder.record_lazy t.recorder ~at "query-settled"
            (lazy
              (let host =
                 match w.w_end with
                 | `Src -> w.w_flow.Five_tuple.src
                 | `Dst -> w.w_flow.Five_tuple.dst
               in
               [
                 ("flow", Five_tuple.to_string w.w_flow);
                 ("host", Ipv4.to_string host);
                 ("outcome", "answered");
               ]));
        (match w.w_end with
        | `Src ->
            p.src_resp <- Some response;
            p.await_src <- false
        | `Dst ->
            p.dst_resp <- Some response;
            p.await_dst <- false);
        maybe_finalize t sx p
      end

(* Coalescing path: a response from [from_ip] settles the oldest
   in-flight exchange on its connection and fans out to every waiter,
   in join order, each on its own shard. *)
let handle_response_coalesced t sx ct ~dpid ~from_ip ~to_ip response pkt =
  match Shard.Conn_table.settle_oldest ct ~host:from_ip with
  | None -> handle_transit t sx ~dpid ~from_ip ~to_ip response pkt
  | Some (_shape, ws) ->
      if
        t.cfg.require_signed_responses
        && Identxx.Signed.verify (Decision.keystore t.decision) response
           <> Identxx.Signed.Valid (expected_signature_index response)
      then begin
        (* One rejected wire response fails the whole exchange: every
           waiter — not just the initiating flow — decides now with
           this end absent, each with a force-sampled error trace. *)
        Obs.Registry.Counter.inc sx.s_m.c_rejected;
        Log.debug (fun m ->
            m "rejecting unauthenticated response from %s"
              (Ipv4.to_string from_ip));
        post_to_waiters t ws
          (fail_waiter t ~cause:"response-rejected" ~host:from_ip)
      end
      else begin
        Obs.Registry.Counter.inc sx.s_m.c_responses;
        let dtrace = Identxx.Response.trace_info response in
        let response = Identxx.Response.strip_trace response in
        (* Close breaker state and cache the attributes in every shard
           view that was waiting on this answer. *)
        let now = Sim.Engine.now (Net.engine t.network) in
        let sids =
          List.sort_uniq compare (sx.sid :: List.map (fun w -> w.w_sid) ws)
        in
        List.iter
          (fun sid ->
            let fp = t.shards_.(sid).s_fp in
            Fastpath.note_response fp from_ip;
            Fastpath.store_attrs fp ~now ~host:from_ip ~keys:(hint_keys t)
              ?signer:
                (Identxx.Response.latest response Identxx.Signed.signer_key)
              response)
          sids;
        (* Deliveries are posted in join order, so the initiator (who
           carries the daemon's timing piggyback) settles first. *)
        let first = ref true in
        post_to_waiters t ws (fun w ->
            let dt = if !first then dtrace else None in
            first := false;
            deliver_to_waiter t ~dtrace:dt response w)
      end

let handle_response_direct t sx ~dpid ~from_ip ~to_ip response pkt =
  match find_pending_for_response sx ~from_ip response with
  | Some (flow, p)
    when t.cfg.require_signed_responses
         && Identxx.Signed.verify (Decision.keystore t.decision) response
            <> Identxx.Signed.Valid (expected_signature_index response) -> (
      (* A response we cannot authenticate is ignored: the flow decides
         at the timeout with whatever arrived (fail closed for
         information-dependent policy). *)
      ignore flow;
      Obs.Registry.Counter.inc sx.s_m.c_rejected;
      Obs.Span.force_sample p.p_span;
      if Obs.Span.is_live p.p_span then
        Obs.Span.event p.p_span ~at:(time_now_s t)
          ~attrs:[ ("host", Ipv4.to_string from_ip) ]
          "response-rejected";
      Log.debug (fun m ->
          m "rejecting unauthenticated response from %s" (Ipv4.to_string from_ip)))
  | Some (flow, p) ->
      Obs.Registry.Counter.inc sx.s_m.c_responses;
      (* Pull the daemon's piggybacked timings out, then strip them:
         per-flow trace ids must not reach policy evaluation or the
         attribute cache (a cached trace section would both leak into
         later flows' decisions and defeat decision-cache key
         matching). *)
      let dtrace = Identxx.Response.trace_info response in
      let response = Identxx.Response.strip_trace response in
      (* An (authenticated, if required) answer: close any breaker state
         and remember the attributes for subsequent flows. *)
      Fastpath.note_response sx.s_fp from_ip;
      Fastpath.store_attrs sx.s_fp
        ~now:(Sim.Engine.now (Net.engine t.network))
        ~host:from_ip ~keys:(hint_keys t)
        ?signer:(Identxx.Response.latest response Identxx.Signed.signer_key)
        response;
      let at = time_now_s t in
      let answered qspan sent =
        if not (Float.is_nan sent) then
          Obs.Registry.Histogram.observe sx.s_m.h_query_rtt (at -. sent);
        if Obs.Span.is_live qspan then begin
          stitch_daemon_spans t qspan dtrace;
          Obs.Span.set_attr qspan "outcome" "answered";
          Obs.Span.finish t.spans ~at qspan
        end;
        if Obs.Recorder.enabled t.recorder then
          Obs.Recorder.record_lazy t.recorder ~at "query-settled"
            (lazy
              [
                ("flow", Five_tuple.to_string flow);
                ("host", Ipv4.to_string from_ip);
                ("outcome", "answered");
              ])
      in
      if Ipv4.equal from_ip flow.Five_tuple.src then begin
        answered p.src_qspan p.src_sent;
        p.src_resp <- Some response;
        p.await_src <- false
      end
      else begin
        answered p.dst_qspan p.dst_sent;
        p.dst_resp <- Some response;
        p.await_dst <- false
      end;
      maybe_finalize t sx p
  | None -> handle_transit t sx ~dpid ~from_ip ~to_ip response pkt

let handle_response t sx ~dpid ~from_ip ~to_ip response pkt =
  match t.conn with
  | Some ct ->
      handle_response_coalesced t sx ct ~dpid ~from_ip ~to_ip response pkt
  | None -> handle_response_direct t sx ~dpid ~from_ip ~to_ip response pkt

let handle_foreign_query t sx ~dpid ~from_ip ~to_ip (q : Identxx.Query.t) pkt =
  (* "Intercepted queries are not allowed to cause new queries." *)
  match resolve_local_answer t to_ip with
  | Some section ->
      Obs.Registry.Counter.inc sx.s_m.c_local;
      let flow =
        (* Spoof the queried host: respond as if we were it. *)
        Identxx.Query.flow_of q ~src:to_ip ~dst:from_ip
      in
      let response = Identxx.Response.make ~flow [ section ] in
      let reply =
        Identxx.Wire.response_packet ~to_ip:from_ip ~from_ip:to_ip
          ~dst_port:
            (match pkt.Packet.eth_payload with
            | Packet.Ip { payload = Packet.Tcp tcp; _ } -> tcp.Packet.tcp_src
            | _ -> Identxx.Wire.port)
          response
      in
      forward_toward t ~dpid ~dst_ip:from_ip reply
  | None -> forward_toward t ~dpid ~dst_ip:to_ip pkt

let handle_packet_in t sx (pi : Msg.packet_in) =
  let pkt = pi.Msg.packet in
  match Identxx.Wire.classify pkt with
  | Identxx.Wire.Response { from_ip; to_ip; response } ->
      handle_response t sx ~dpid:pi.Msg.dpid ~from_ip ~to_ip response pkt
  | Identxx.Wire.Query { from_ip; to_ip; query } ->
      handle_foreign_query t sx ~dpid:pi.Msg.dpid ~from_ip ~to_ip query pkt
  | Identxx.Wire.Not_identxx -> (
      match Packet.five_tuple pkt with
      | None -> () (* non-IP traffic is dropped by this firewall *)
      | Some flow -> (
          match Flow_tbl.find_opt sx.s_pending flow with
          | Some p -> p.p_packets <- (pi.Msg.dpid, pi.Msg.in_port, pkt) :: p.p_packets
          | None -> start_flow t sx ~dpid:pi.Msg.dpid ~in_port:pi.Msg.in_port pkt flow))

(* Which shard owns an arriving daemon response. The coalesced path
   pairs it with the connection's oldest exchange (FIFO wire), so it
   must run where that exchange's initiator parked; without the conn
   table, find the shard whose pending table is awaiting this host. *)
let response_owner t ~from_ip =
  let via_conn =
    match t.conn with
    | Some ct ->
        Option.map
          (fun (w : waiter) -> w.w_sid)
          (Shard.Conn_table.peek_oldest ct ~host:from_ip)
    | None -> None
  in
  match via_conn with
  | Some sid -> sid
  | None ->
      let n = Array.length t.shards_ in
      let rec scan sid =
        if sid >= n then 0
        else if
          Flow_tbl.fold
            (fun flow p acc ->
              acc
              || (p.await_src && Ipv4.equal flow.Five_tuple.src from_ip)
              || (p.await_dst && Ipv4.equal flow.Five_tuple.dst from_ip))
            t.shards_.(sid).s_pending false
        then sid
        else scan (sid + 1)
      in
      scan 0

(* The sharded front-end: classify the packet-in once (cheap, pure)
   and post the real work to the owning shard's run queue. Data
   packets partition by flow-key hash; responses go to the exchange
   initiator's shard; foreign/transit traffic pins to shard 0. *)
let dispatch_packet_in t d (pi : Msg.packet_in) =
  let pkt = pi.Msg.packet in
  let post sid =
    Shard.Engine.post d ~shard:sid (fun () ->
        handle_packet_in t t.shards_.(sid) pi)
  in
  match Identxx.Wire.classify pkt with
  | Identxx.Wire.Response { from_ip; _ } -> post (response_owner t ~from_ip)
  | Identxx.Wire.Query _ -> post 0
  | Identxx.Wire.Not_identxx -> (
      match Packet.five_tuple pkt with
      | None -> ()
      | Some flow -> post (Shard.Engine.shard_of_flow d flow))

let handle_message t = function
  | Msg.Packet_in pi -> (
      match t.driver with
      | None -> handle_packet_in t t.shards_.(0) pi
      | Some d -> dispatch_packet_in t d pi)
  | Msg.Stats_reply reply ->
      t.last_stats <- (reply.Msg.st_dpid, reply) :: List.remove_assq reply.Msg.st_dpid t.last_stats

let request_stats =
  let next_xid = ref 0 in
  fun t dpid ->
    incr next_xid;
    Net.send_to_switch t.network dpid (Msg.Stats_request { xid = !next_xid })

let switch_stats t dpid = List.assoc_opt dpid t.last_stats

(* --- proactive dataplane rules ("enforcement at line rate", S6) --- *)

(* Precompiled entries sit above every reactive entry so they keep
   deciding even as per-flow caches churn. *)
let precompiled_priority = 0xffff

let sync_precompiled t =
  if t.cfg.precompile_quick_blocks then begin
    let matches =
      match Policy_store.env t.policy with
      | Ok env -> Precompile.drop_matches env
      | Error _ -> []
    in
    let switches = Net.switches_in_domain t.network t.id in
    (* Remove entries no longer derived from policy, add new ones. *)
    List.iter
      (fun fields ->
        if not (List.mem fields matches) then
          List.iter
            (fun dpid ->
              Net.send_to_switch t.network dpid
                (Msg.Flow_mod
                   {
                     Msg.command = Msg.Delete_strict;
                     fields;
                     priority = precompiled_priority;
                     actions = [];
                     idle_timeout = None;
                     hard_timeout = None;
                     cookie = 0;
                   }))
            switches)
      t.precompiled;
    List.iter
      (fun fields ->
        List.iter
          (fun dpid ->
            Net.send_to_switch t.network dpid
              (Msg.add_flow ~priority:precompiled_priority ~fields
                 Openflow.Action.drop))
          switches)
      matches;
    t.precompiled <- matches
  end

(* --- the proactive flow-table compiler (static slice -> wildcards) --- *)

let empty_table =
  {
    Compiler.entries = [];
    spills = [];
    static_coverage = 0.0;
    installed_coverage = 0.0;
    truncated = false;
  }

(* The compiled band sits below reactive entries; this guard sits at the
   very top of it. ident++ queries and responses must stay
   controller-mediated — a wildcard pass entry must never deliver an
   exchange packet straight to a host, past the interception points. *)
let proactive_guard_priority = 0x7fff

let proactive_guards =
  [
    {
      Openflow.Match_fields.any with
      nw_proto = Some Proto.Tcp;
      tp_dst = Some Identxx.Wire.port;
    };
    {
      Openflow.Match_fields.any with
      nw_proto = Some Proto.Tcp;
      tp_src = Some Identxx.Wire.port;
    };
  ]

(* The (forward, reverse) flow spaces of every keep-state pass rule.
   Both demote compiled entries overlapping them to punts:

   - A {e pass} entry overlapping the forward space must punt, because
     statically forwarding the connection's first packet would skip the
     controller and never record connection state ([start_flow]) — the
     reply would then be blocked where the reactive baseline admits it.
     Stateful regions are inherently reactive; only their first packet
     pays the round-trip.
   - A {e block} entry overlapping the reverse space must punt, because
     a reply in that space may be readmitted by connection state even
     though the ruleset statically blocks it (state matching precedes
     the ruleset).

   [of_rule_env] over-approximates conditional rules, which errs toward
   punting — slower, never wrong. *)
let state_spaces env =
  List.fold_left
    (fun (fwd, rev) (r : Pf.Ast.rule) ->
      if r.Pf.Ast.keep_state && r.Pf.Ast.action = Pf.Ast.Pass then
        let atoms =
          Analysis.Flowspace.atoms (Analysis.Flowspace.of_rule_env env r)
        in
        let reversed =
          List.map
            (fun (a : Analysis.Flowspace.atom) ->
              {
                a with
                Analysis.Flowspace.src = a.Analysis.Flowspace.dst;
                dst = a.Analysis.Flowspace.src;
                sport = a.Analysis.Flowspace.dport;
                dport = a.Analysis.Flowspace.sport;
              })
            atoms
        in
        ( Analysis.Flowspace.union fwd (Analysis.Flowspace.of_atoms atoms),
          Analysis.Flowspace.union rev (Analysis.Flowspace.of_atoms reversed) )
      else (fwd, rev))
    (Analysis.Flowspace.empty, Analysis.Flowspace.empty)
    (Pf.Env.rules env)

let atom_of_fields (m : Openflow.Match_fields.t) =
  let any = Analysis.Flowspace.atom_any in
  {
    Analysis.Flowspace.proto =
      (match m.Openflow.Match_fields.nw_proto with
      | None -> Analysis.Flowspace.proto_any
      | Some p -> Analysis.Flowspace.proto_only p);
    src = (match m.Openflow.Match_fields.nw_src with
          | None -> any.Analysis.Flowspace.src
          | Some p -> p);
    dst = (match m.Openflow.Match_fields.nw_dst with
          | None -> any.Analysis.Flowspace.dst
          | Some p -> p);
    sport = (match m.Openflow.Match_fields.tp_src with
            | None -> Analysis.Flowspace.port_any
            | Some v -> (v, v));
    dport = (match m.Openflow.Match_fields.tp_dst with
            | None -> Analysis.Flowspace.port_any
            | Some v -> (v, v));
  }

(* One abstract entry, lowered for one switch: concrete
   (fields, priority, actions) triples.

   A wildcard pass entry cannot name an output port, so it lowers to a
   punt plus one host-specialized forwarding entry per reachable
   destination the match admits (nw_dst narrowed to the host /32, at
   priority + 1 — the gap the compiler's step-2 priorities leave).
   Traffic toward unknown destinations still punts, which is the
   reactive behaviour. Block entries drop in hardware unless their
   space overlaps the keep-state reverse space, and pass entries punt
   where they overlap the keep-state forward space (see
   [state_spaces]). *)
let lower_entry t ~dpid ~hosts ~state:(state_fwd, state_rev)
    (e : Compiler.entry) =
  let fields = e.Compiler.e_fields and prio = e.Compiler.e_priority in
  let punt = (fields, prio, [ Openflow.Action.To_controller ]) in
  match e.Compiler.e_decision with
  | Compiler.Punt -> [ punt ]
  | Compiler.Decide Pf.Ast.Block ->
      if Analysis.Flowspace.overlaps [ atom_of_fields fields ] state_rev then
        [ punt ]
      else [ (fields, prio, Openflow.Action.drop) ]
  | Compiler.Decide Pf.Ast.Pass
    when Analysis.Flowspace.overlaps [ atom_of_fields fields ] state_fwd ->
      [ punt ]
  | Compiler.Decide Pf.Ast.Pass ->
      let specials =
        List.filter_map
          (fun host ->
            (* Skip topology hosts without an attached endpoint. *)
            match
              (try Some (Net.host_ip t.network host)
               with Not_found | Invalid_argument _ -> None)
            with
            | None -> None
            | Some ip ->
                let admits =
                  match fields.Openflow.Match_fields.nw_dst with
                  | None -> true
                  | Some p -> Prefix.mem ip p
                in
                if not admits then None
                else
                  Option.map
                    (fun port ->
                      ( {
                          fields with
                          Openflow.Match_fields.nw_dst = Some (Prefix.host ip);
                        },
                        prio + 1,
                        [ Openflow.Action.Output port ] ))
                    (Topo.next_hop (Net.topology t.network) ~from:dpid
                       ~dst_host:host))
          hosts
      in
      specials @ [ punt ]

let sync_proactive ?(force = false) t =
  if t.cfg.proactive then begin
    let t0 = Sys.time () in
    let fdd, state =
      match Policy_store.env t.policy with
      | Ok env ->
          (Some (Analysis.Fdd.compile ~default:t.cfg.default env),
           state_spaces env)
      | Error _ -> (None, (Analysis.Flowspace.empty, Analysis.Flowspace.empty))
    in
    let cur =
      match fdd with
      | Some fdd -> Compiler.compile ~cache:t.proactive_cache fdd
      (* Unresolvable policy: install nothing, every flow goes to the
         controller, which fails closed per rule evaluation. *)
      | None -> empty_table
    in
    let d =
      if force then
        (* The dataplane was (possibly partially) wiped out from under
           us: re-add everything, nothing to delete. *)
        { Compiler.d_add = cur.Compiler.entries; d_del = [] }
      else if t.proactive_state <> state then
        (* Same abstract entry, different lowering: start over. *)
        {
          Compiler.d_add = cur.Compiler.entries;
          d_del = t.proactive_tbl.Compiler.entries;
        }
      else Compiler.delta ~old_:t.proactive_tbl cur
    in
    let switches = Net.switches_in_domain t.network t.id in
    let hosts = Topo.hosts (Net.topology t.network) in
    List.iter
      (fun dpid ->
        List.iter
          (fun e ->
            List.iter
              (fun (fields, priority, _) ->
                Net.send_to_switch t.network dpid
                  (Msg.Flow_mod
                     {
                       Msg.command = Msg.Delete_strict;
                       fields;
                       priority;
                       actions = [];
                       idle_timeout = None;
                       hard_timeout = None;
                       cookie = 0;
                     }))
              (lower_entry t ~dpid ~hosts ~state e))
          d.Compiler.d_del;
        let adds =
          List.concat_map
            (fun e -> lower_entry t ~dpid ~hosts ~state e)
            d.Compiler.d_add
        in
        let adds =
          if cur.Compiler.entries = [] then adds
          else
            adds
            @ List.map
                (fun f ->
                  (f, proactive_guard_priority, [ Openflow.Action.To_controller ]))
                proactive_guards
        in
        List.iter
          (fun (fields, priority, actions) ->
            Net.send_to_switch t.network dpid
              (Msg.add_flow ~priority ~cookie:Compiler.proactive_cookie ~fields
                 actions))
          adds)
      switches;
    (match t.pm with
    | Some pm ->
        Obs.Registry.Counter.inc pm.pc_recompiles;
        Obs.Registry.Counter.add pm.pc_delta_add (List.length d.Compiler.d_add);
        Obs.Registry.Counter.add pm.pc_delta_del (List.length d.Compiler.d_del);
        Obs.Registry.Histogram.observe pm.ph_recompile (Sys.time () -. t0)
    | None -> ());
    Log.debug (fun m ->
        m "proactive sync: %d entries (%+d/-%d), coverage %.3f"
          (List.length cur.Compiler.entries)
          (List.length d.Compiler.d_add)
          (List.length d.Compiler.d_del)
          cur.Compiler.installed_coverage);
    t.proactive_tbl <- cur;
    t.proactive_state <- state
  end

let proactive_table t = t.proactive_tbl

(* Per-switch eviction telemetry: a counter series per flow table, and
   a force-sampled span whenever reactive churn pushes out a compiled
   entry (the signal that the table-size budget is too tight). *)
let wire_eviction_telemetry t =
  List.iter
    (fun dpid ->
      let table = Openflow.Switch.table (Net.switch t.network dpid) in
      Obs.Registry.counter_fn t.obs
        ~help:"Flow-table capacity evictions (LRU victims), by switch."
        ~labels:[ ("dpid", string_of_int dpid) ]
        "identxx_switch_evictions_total"
        (fun () -> Openflow.Flow_table.evictions table);
      Openflow.Flow_table.set_on_evict table (fun victim ->
          if victim.Openflow.Flow_entry.cookie = Compiler.proactive_cookie
          then begin
            (match t.pm with
            | Some pm -> Obs.Registry.Counter.inc pm.pc_evicted
            | None -> ());
            if Obs.Span.enabled t.spans then begin
              let at = time_now_s t in
              let sp =
                Obs.Span.start t.spans ~at
                  ~attrs:
                    [
                      ("dpid", string_of_int dpid);
                      ( "entry",
                        Compiler.fields_to_string
                          victim.Openflow.Flow_entry.fields );
                    ]
                  "proactive-evicted"
              in
              Obs.Span.force_sample sp;
              Obs.Span.finish t.spans ~at sp
            end
          end))
    (Net.switches_in_domain t.network t.id)

(* --- cache management: override and revoke (S1, S7) --- *)

let flush_cache t =
  (* Remove every cached decision in this controller's domain so the
     next packet of every flow is re-evaluated against current policy. *)
  List.iter
    (fun dpid ->
      Net.send_to_switch t.network dpid
        (Msg.delete_flow ~fields:Openflow.Match_fields.any))
    (Net.switches_in_domain t.network t.id);
  Conn_state.clear t.conn_state;
  (* Memoized verdicts go too; cached host attributes survive, since
     policy operations do not change what the hosts would answer. Every
     shard's view is flushed — control-plane operations are global. *)
  Array.iter (fun sx -> Fastpath.flush_decisions sx.s_fp) t.shards_;
  (* The wildcard delete also removed the precompiled and proactive
     entries. *)
  t.precompiled <- [];
  sync_precompiled t;
  sync_proactive ~force:true t

(* A daemon-side change event (login/logout, process spawn/exit,
   configuration reload) reached us: what the host would answer may have
   changed, so its cached attributes — and every decision derived from
   them — are no longer trustworthy. *)
let note_host_changed t ip =
  Array.iter (fun sx -> Fastpath.note_host_changed sx.s_fp ip) t.shards_

let revoke_principal t ~ip =
  Log.info (fun m -> m "revoking principal %s" (Ipv4.to_string ip));
  let dropped = Conn_state.revoke t.conn_state ~ip in
  Array.iter (fun sx -> Fastpath.revoke_ip sx.s_fp ip) t.shards_;
  (* Dataplane: delete every installed entry the principal's address
     appears in, either end, on every switch of the domain. *)
  let host = Prefix.host ip in
  List.iter
    (fun dpid ->
      Net.send_to_switch t.network dpid
        (Msg.delete_flow
           ~fields:{ Openflow.Match_fields.any with nw_src = Some host });
      Net.send_to_switch t.network dpid
        (Msg.delete_flow
           ~fields:{ Openflow.Match_fields.any with nw_dst = Some host }))
    (Net.switches_in_domain t.network t.id);
  (* The per-host deletes cannot have clipped a precompiled wildcard
     entry unless it was host-specific; re-sync to be sure. The
     proactive table's host-specialized pass entries were certainly
     clipped, so it reinstalls in full. *)
  sync_precompiled t;
  sync_proactive ~force:true t;
  dropped

let update_file t ~name content =
  match Policy_store.add t.policy ~name content with
  | Error _ as e -> e
  | Ok () ->
      flush_cache t;
      Ok ()

let revoke_file t ~name =
  Log.info (fun m -> m "revoking policy file %s" name);
  Policy_store.remove t.policy ~name;
  flush_cache t

let create ?(config = default_config) ?keystore ?functions ?obs ?spans
    ?(recorder = Obs.Recorder.null) ~network ~id () =
  let policy = Policy_store.create () in
  let decision =
    Decision.create ~default:config.default ?keystore ?functions ~policy ()
  in
  (* A private registry when none is shared: stats counting must work
     out of the box. Span collection is opt-in — it retains per-flow
     records, which nothing reads unless a collector was passed. *)
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  let spans =
    match spans with Some s -> s | None -> Obs.Span.create ~enabled:false ()
  in
  let labels = [ ("controller", string_of_int id) ] in
  (* One shard context (the legacy sequential path, byte-identical to
     the unsharded controller) unless config.shards asks for more. *)
  let nshards, sharded =
    match config.shards with
    | None -> (1, false)
    | Some s ->
        if s.shard_count < 1 then invalid_arg "Controller.create: shards < 1";
        (s.shard_count, true)
  in
  let shard_labels sid =
    if sharded then labels @ [ ("shard", string_of_int sid) ] else labels
  in
  let driver =
    match config.shards with
    | None -> None
    | Some s ->
        Some
          (Shard.Engine.create ~service:s.shard_service ~shards:nshards
             (Net.engine network))
  in
  let conn =
    match config.shards with
    | Some s when s.coalesce -> Some (Shard.Conn_table.create ())
    | _ -> None
  in
  let batch =
    match config.shards with
    | None -> None
    | Some _ ->
        Some
          (Shard.Batch.create
             ~engine:(Net.engine network)
             ~send:(Net.send_to_switch network) ())
  in
  let send_sw =
    match batch with
    | Some b -> Shard.Batch.add b
    | None -> Net.send_to_switch network
  in
  let shards_ =
    Array.init nshards (fun sid ->
        {
          sid;
          s_pending = Flow_tbl.create 64;
          s_fp = Fastpath.create config.fastpath;
          s_m = make_metrics obs ~labels:(shard_labels sid);
          s_labels = shard_labels sid;
          s_pin = Hashtbl.create 16;
        })
  in
  let t =
    {
      network;
      id;
      cfg = config;
      policy;
      decision;
      conn_state = Conn_state.create ();
      audit = Audit.create ();
      augment = (fun _ -> []);
      local_answers = (fun _ -> None);
      obs;
      spans;
      recorder;
      shards_;
      driver;
      conn;
      batch;
      send_sw;
      src_port_matters = None;
      trace_seq = 0;
      last_stats = [];
      precompiled = [];
      proactive_tbl = empty_table;
      proactive_state = (Analysis.Flowspace.empty, Analysis.Flowspace.empty);
      proactive_cache = Compiler.create_cache ();
      pm = (if config.proactive then Some (make_pro_metrics obs ~labels) else None);
    }
  in
  Array.iter
    (fun sx ->
      Obs.Registry.gauge_fn obs ~help:"Flows awaiting daemon responses."
        ~labels:(shard_labels sx.sid) "identxx_controller_pending_flows"
        (fun () -> float_of_int (Flow_tbl.length sx.s_pending)))
    t.shards_;
  (* Per-collector, not per-controller: collectors may be shared, so no
     controller label — re-registration just replaces the callback. *)
  Obs.Registry.counter_fn obs
    ~help:"Trace spans discarded before export, by cause."
    ~labels:[ ("cause", "sampling") ]
    "identxx_trace_spans_dropped_total" (fun () ->
      Obs.Span.sampled_out spans);
  Obs.Registry.counter_fn obs
    ~help:"Trace spans discarded before export, by cause."
    ~labels:[ ("cause", "capacity") ]
    "identxx_trace_spans_dropped_total" (fun () ->
      Obs.Span.capacity_dropped spans);
  if config.proactive then begin
    Obs.Registry.gauge_fn obs
      ~help:"Abstract entries in the installed proactive table." ~labels
      "identxx_compiler_entries" (fun () ->
        float_of_int (List.length t.proactive_tbl.Compiler.entries));
    Obs.Registry.gauge_fn obs
      ~help:"Branches spilled back to the reactive path." ~labels
      "identxx_compiler_spilled_regions" (fun () ->
        float_of_int (List.length t.proactive_tbl.Compiler.spills));
    Obs.Registry.gauge_fn obs
      ~help:"Flow-space volume decided by installed static entries." ~labels
      "identxx_compiler_installed_coverage" (fun () ->
        t.proactive_tbl.Compiler.installed_coverage)
  end;
  Array.iter
    (fun sx -> Fastpath.register_metrics sx.s_fp ~labels:(shard_labels sx.sid) obs)
    t.shards_;
  (match driver with
  | Some d -> Shard.Engine.register_metrics d ~labels obs
  | None -> ());
  (match batch with
  | Some b -> Shard.Batch.register_metrics b ~labels obs
  | None -> ());
  (match conn with
  | Some ct ->
      Obs.Registry.counter_fn obs
        ~help:"Wire exchanges actually begun by the connection table."
        ~labels "identxx_shard_exchanges_total" (fun () ->
          Shard.Conn_table.started ct);
      Obs.Registry.counter_fn obs
        ~help:"Duplicate in-flight queries absorbed by coalescing."
        ~labels "identxx_shard_coalesced_queries_total" (fun () ->
          Shard.Conn_table.coalesced ct);
      Obs.Registry.gauge_fn obs
        ~help:"Exchanges currently in flight across all daemon connections."
        ~labels "identxx_shard_inflight_exchanges" (fun () ->
          float_of_int (Shard.Conn_table.in_flight ct))
  | None -> ());
  Net.register_controller network ~id (handle_message t);
  wire_eviction_telemetry t;
  (* No initial sync: hosts are typically attached after the controller
     is created, and the first policy change (or an explicit
     [sync_proactive]) installs the table with the full host set. *)
  Policy_store.on_change policy (fun () ->
      sync_precompiled t;
      sync_proactive t);
  t

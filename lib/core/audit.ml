open Netcore

type entry = {
  at : Sim.Time.t;
  flow : Five_tuple.t;
  decision : Pf.Ast.action;
  rule : string option;
  rule_line : int option;
  flagged : bool;
  src_info : (string * string) list;
  dst_info : (string * string) list;
  trace_id : string option;
}

type t = {
  capacity : int;
  mutable entries : entry list; (* newest first *)
  mutable length : int; (* List.length entries, kept so record is O(1) *)
  mutable count : int;
  mutable blocked : int;
}

let create ?(capacity = 10_000) () =
  if capacity <= 0 then invalid_arg "Audit.create: capacity must be positive";
  { capacity; entries = []; length = 0; count = 0; blocked = 0 }

let interesting_keys =
  [
    Identxx.Key_value.user_id;
    Identxx.Key_value.group_id;
    Identxx.Key_value.app_name;
    Identxx.Key_value.version;
    Identxx.Key_value.rule_maker;
  ]

let summarize = function
  | None -> []
  | Some response ->
      List.filter_map
        (fun key ->
          Option.map (fun v -> (key, v)) (Identxx.Response.latest response key))
        interesting_keys

let record ?trace_id t ~at ~flow ~(verdict : Pf.Eval.verdict) ~src ~dst =
  let entry =
    {
      at;
      flow;
      trace_id;
      decision = verdict.Pf.Eval.decision;
      rule = Option.map Pf.Pretty.rule verdict.Pf.Eval.matched;
      rule_line =
        Option.map (fun (r : Pf.Ast.rule) -> r.Pf.Ast.line) verdict.Pf.Eval.matched;
      flagged = verdict.Pf.Eval.log;
      src_info = summarize src;
      dst_info = summarize dst;
    }
  in
  t.count <- t.count + 1;
  if verdict.Pf.Eval.decision = Pf.Ast.Block then t.blocked <- t.blocked + 1;
  t.entries <- entry :: t.entries;
  t.length <- t.length + 1;
  (* Trim lazily: only when we exceed capacity by a margin, to keep
     recording O(1) amortized. *)
  if t.length > t.capacity + (t.capacity / 4) then begin
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    t.entries <- take t.capacity t.entries;
    t.length <- t.capacity
  end

let entries t = t.entries
let flagged t = List.filter (fun e -> e.flagged) t.entries
let count t = t.count
let blocked_count t = t.blocked
let clear t =
  t.entries <- [];
  t.length <- 0;
  t.count <- 0;
  t.blocked <- 0

let pp_info ppf info =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    (fun ppf (k, v) -> Format.fprintf ppf "%s=%s" k v)
    ppf info

let pp_entry ppf e =
  Format.fprintf ppf "%a %s %a%s src{%a} dst{%a}%s%s" Sim.Time.pp e.at
    (match e.decision with Pf.Ast.Pass -> "PASS " | Pf.Ast.Block -> "BLOCK")
    Five_tuple.pp e.flow
    (match e.rule_line with
    | Some l -> Printf.sprintf " rule@%d" l
    | None -> " default")
    pp_info e.src_info pp_info e.dst_info
    (if e.flagged then " [LOG]" else "")
    (match e.trace_id with Some id -> " trace=" ^ id | None -> "")

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (List.rev t.entries)

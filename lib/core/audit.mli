(** The controller's audit log.

    Delegation only works because the administrator can "log and audit
    the delegates' actions, and revoke the delegation if needed" (§1).
    Every flow decision is recorded here together with the rule that
    decided it and a summary of the end-host information it was based
    on; rules carrying PF's [log] modifier flag their entries for
    attention. *)

open Netcore

type entry = {
  at : Sim.Time.t;
  flow : Five_tuple.t;
  decision : Pf.Ast.action;
  rule : string option;  (** Pretty-printed matching rule. *)
  rule_line : int option;  (** Its line in the concatenated policy. *)
  flagged : bool;  (** The rule carried the [log] modifier. *)
  src_info : (string * string) list;  (** Interesting response pairs. *)
  dst_info : (string * string) list;
  trace_id : string option;
      (** The flow-setup trace this decision belongs to, when the
          controller traced it — the join key between the audit log and
          exported spans. *)
}

type t

val create : ?capacity:int -> unit -> t
(** Keeps the most recent [capacity] entries (default 10000). *)

val record :
  ?trace_id:string ->
  t ->
  at:Sim.Time.t ->
  flow:Five_tuple.t ->
  verdict:Pf.Eval.verdict ->
  src:Identxx.Response.t option ->
  dst:Identxx.Response.t option ->
  unit

val entries : t -> entry list
(** Newest first. *)

val flagged : t -> entry list
(** Only entries whose rule carried [log]. *)

val count : t -> int
val blocked_count : t -> int
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

val interesting_keys : string list
(** The response keys summarized into entries: userID, groupID, name,
    version, rule-maker. *)

(* N deterministic run queues multiplexed onto one Sim.Engine heap.

   Each shard is a sim process: posting a message schedules its
   execution at max(now, shard.busy_until), and the shard's busy_until
   advances by the per-message service time. With service = 0 (the
   default) every message executes at the instant it was posted, in
   global post order — the heap is FIFO among simultaneous events — so
   behaviour is byte-identical under any shard count. With service > 0
   each shard serialises its own work while distinct shards proceed in
   parallel simulated time, which is what the concurrent-burst bench
   measures. *)

type shard = {
  sid : int;
  queue : (unit -> unit) Queue.t;
  mutable busy_until : Sim.Time.t;
  mutable drained : int;
}

type t = {
  engine : Sim.Engine.t;
  shards : shard array;
  service : Sim.Time.t;
  mutable current : int option;
  mutable posted : int;
  mutable cross : int;
}

let zero = Sim.Time.zero

let create ?(service = zero) ~shards engine =
  if shards < 1 then invalid_arg "Shard.Engine.create: shards must be >= 1";
  {
    engine;
    shards =
      Array.init shards (fun sid ->
          { sid; queue = Queue.create (); busy_until = zero; drained = 0 });
    service;
    current = None;
    posted = 0;
    cross = 0;
  }

let shard_count t = Array.length t.shards
let service t = t.service
let current t = t.current

let shard_of_flow t flow =
  Netcore.Five_tuple.hash flow mod Array.length t.shards

let drain_one t sh () =
  match Queue.take_opt sh.queue with
  | None -> ()
  | Some fn ->
      let prev = t.current in
      t.current <- Some sh.sid;
      sh.drained <- sh.drained + 1;
      Fun.protect ~finally:(fun () -> t.current <- prev) fn

let post t ~shard fn =
  let sh = t.shards.(shard) in
  t.posted <- t.posted + 1;
  (match t.current with
  | Some from when from <> shard -> t.cross <- t.cross + 1
  | _ -> ());
  let at = Sim.Time.max (Sim.Engine.now t.engine) sh.busy_until in
  sh.busy_until <- Sim.Time.add at t.service;
  Queue.push fn sh.queue;
  Sim.Engine.schedule_at t.engine ~at (drain_one t sh)

let post_after t ~shard ~delay fn =
  Sim.Engine.schedule_cancellable t.engine ~delay (fun () ->
      post t ~shard fn)

let broadcast t fn =
  let from = t.current in
  Array.iter
    (fun sh ->
      (match from with
      | Some f when f = sh.sid -> ()
      | _ -> t.cross <- t.cross + 1);
      let prev = t.current in
      t.current <- Some sh.sid;
      Fun.protect ~finally:(fun () -> t.current <- prev) (fun () -> fn sh.sid))
    t.shards

let queue_depth t sid = Queue.length t.shards.(sid).queue
let posted t = t.posted
let processed t = Array.fold_left (fun acc sh -> acc + sh.drained) 0 t.shards
let cross_messages t = t.cross

let makespan t =
  Array.fold_left (fun acc sh -> Sim.Time.max acc sh.busy_until) zero t.shards

let register_metrics t ?(labels = []) reg =
  Array.iter
    (fun sh ->
      let labels = ("shard", string_of_int sh.sid) :: labels in
      Obs.Registry.gauge_fn reg ~labels "identxx_shard_queue_depth"
        ~help:"Messages waiting in the shard's run queue"
        (fun () -> float_of_int (Queue.length sh.queue));
      Obs.Registry.counter_fn reg ~labels "identxx_shard_messages_total"
        ~help:"Messages drained by the shard" (fun () -> sh.drained))
    t.shards;
  Obs.Registry.counter_fn reg ~labels "identxx_shard_cross_messages_total"
    ~help:"Messages posted or broadcast across shard boundaries"
    (fun () -> t.cross)

(** The per-tick install batcher. In the sharded controller, flow-mod
    installs and packet releases produced while one simulated instant
    drains are not sent switch-by-switch as they occur: they accumulate
    here and flush as {e one batched install pass per switch} at the
    end of the tick (a zero-delay event, which the FIFO sim heap places
    after every message already queued for this instant).

    Ordering guarantees, both load-bearing:
    - per-switch arrival order is preserved — the control channel is
      FIFO and packet release relies on flow-mods landing first;
    - switch groups flush in ascending dpid order — one canonical pass
      regardless of which shard queued which message, so traces stay
      byte-identical across shard counts. *)

type t

val create :
  engine:Sim.Engine.t ->
  send:(Openflow.Message.switch_id -> Openflow.Message.to_switch -> unit) ->
  unit -> t

val add : t -> Openflow.Message.switch_id -> Openflow.Message.to_switch -> unit
(** Queue a message for the tick's pass; the first [add] of a tick
    schedules the flush. *)

val flush : t -> unit
(** Flush now (grouped, ordered as above). Normally driven by the
    scheduled end-of-tick event; exposed for tests and shutdown. *)

val pending : t -> int
(** Messages queued for the current tick. *)

val flushes : t -> int
(** Passes flushed (cumulative). *)

val batched : t -> int
(** Messages delivered through the batcher (cumulative). *)

val register_metrics : t -> ?labels:Obs.Registry.labels -> Obs.Registry.t -> unit
(** Registers [identxx_shard_batch_size] (messages per switch per
    pass), [identxx_shard_batch_flushes_total], and
    [identxx_shard_batch_messages_total]. *)

(* Per-host daemon connections, multiplexed: one in-flight ident++
   exchange per (host, query shape), with every interested flow parked
   on a waiter list. Generic in the waiter type so the controller can
   park whatever per-flow handle it wants. *)

type key = { host : Netcore.Ipv4.t; shape : string }

module Key_tbl = Hashtbl.Make (struct
  type t = key

  let equal a b = Netcore.Ipv4.equal a.host b.host && String.equal a.shape b.shape
  let hash k = Hashtbl.hash (Netcore.Ipv4.hash k.host, k.shape)
end)

type 'w exchange = {
  seq : int;  (* global join order of the exchange's first waiter *)
  mutable waiters : 'w list;  (* reverse join order *)
  mutable waiter_count : int;
}

type 'w t = {
  tbl : 'w exchange Key_tbl.t;
  mutable next_seq : int;
  mutable started : int;
  mutable coalesced : int;
}

let create () =
  { tbl = Key_tbl.create 64; next_seq = 0; started = 0; coalesced = 0 }

let join t ~host ~shape w =
  let key = { host; shape } in
  match Key_tbl.find_opt t.tbl key with
  | Some ex ->
      ex.waiters <- w :: ex.waiters;
      ex.waiter_count <- ex.waiter_count + 1;
      t.coalesced <- t.coalesced + 1;
      `Coalesced ex.waiter_count
  | None ->
      let ex = { seq = t.next_seq; waiters = [ w ]; waiter_count = 1 } in
      t.next_seq <- t.next_seq + 1;
      t.started <- t.started + 1;
      Key_tbl.replace t.tbl key ex;
      `First

let settle t ~host ~shape =
  let key = { host; shape } in
  match Key_tbl.find_opt t.tbl key with
  | None -> []
  | Some ex ->
      Key_tbl.remove t.tbl key;
      List.rev ex.waiters

let settle_oldest t ~host =
  let best = ref None in
  Key_tbl.iter
    (fun key ex ->
      if Netcore.Ipv4.equal key.host host then
        match !best with
        | Some (_, b) when b.seq <= ex.seq -> ()
        | _ -> best := Some (key, ex))
    t.tbl;
  match !best with
  | None -> None
  | Some (key, ex) ->
      Key_tbl.remove t.tbl key;
      Some (key.shape, List.rev ex.waiters)

let settle_host t ~host =
  let hits = ref [] in
  Key_tbl.iter
    (fun key ex ->
      if Netcore.Ipv4.equal key.host host then hits := (key, ex) :: !hits)
    t.tbl;
  let hits = List.sort (fun (_, a) (_, b) -> compare a.seq b.seq) !hits in
  List.map
    (fun (key, ex) ->
      Key_tbl.remove t.tbl key;
      (key.shape, List.rev ex.waiters))
    hits

let peek_oldest t ~host =
  let best = ref None in
  Key_tbl.iter
    (fun key ex ->
      if Netcore.Ipv4.equal key.host host then
        match !best with
        | Some (_, b) when b.seq <= ex.seq -> ()
        | _ -> best := Some (key, ex))
    t.tbl;
  match !best with
  | None -> None
  | Some (_, ex) -> (
      match List.rev ex.waiters with w :: _ -> Some w | [] -> None)

let peek t ~host ~shape =
  match Key_tbl.find_opt t.tbl { host; shape } with
  | None -> []
  | Some ex -> List.rev ex.waiters

let in_flight t = Key_tbl.length t.tbl
let waiters t = Key_tbl.fold (fun _ ex acc -> acc + ex.waiter_count) t.tbl 0
let started t = t.started
let coalesced t = t.coalesced

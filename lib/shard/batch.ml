(* The per-tick install batcher: switch-bound messages accumulate while
   the current simulated instant drains, then flush as one pass per
   switch. Per-dpid arrival order is preserved (the control channel is
   FIFO, and release depends on flow-mods landing before the table-
   lookup packet-out); switches flush in ascending dpid order so the
   pass is canonical regardless of which shard queued what. *)

type t = {
  engine : Sim.Engine.t;
  send : Openflow.Message.switch_id -> Openflow.Message.to_switch -> unit;
  mutable buffer : (Openflow.Message.switch_id * Openflow.Message.to_switch) list;
      (* reverse arrival order *)
  mutable buffered : int;
  mutable scheduled : bool;
  mutable flushes : int;
  mutable batched : int;
  mutable h_size : Obs.Registry.Histogram.t option;
}

let create ~engine ~send () =
  {
    engine;
    send;
    buffer = [];
    buffered = 0;
    scheduled = false;
    flushes = 0;
    batched = 0;
    h_size = None;
  }

let flush t =
  t.scheduled <- false;
  if t.buffer <> [] then begin
    let msgs = List.rev t.buffer in
    t.buffer <- [];
    t.buffered <- 0;
    t.flushes <- t.flushes + 1;
    (* Group per switch, preserving per-dpid arrival order; emit groups
       in ascending dpid order. *)
    let dpids =
      List.sort_uniq compare (List.map fst msgs)
    in
    List.iter
      (fun dpid ->
        let group = List.filter (fun (d, _) -> d = dpid) msgs in
        (match t.h_size with
        | Some h ->
            Obs.Registry.Histogram.observe h (float_of_int (List.length group))
        | None -> ());
        List.iter
          (fun (_, msg) ->
            t.batched <- t.batched + 1;
            t.send dpid msg)
          group)
      dpids
  end

let add t dpid msg =
  t.buffer <- (dpid, msg) :: t.buffer;
  t.buffered <- t.buffered + 1;
  if not t.scheduled then begin
    t.scheduled <- true;
    Sim.Engine.schedule t.engine ~delay:Sim.Time.zero (fun () -> flush t)
  end

let pending t = t.buffered
let flushes t = t.flushes
let batched t = t.batched

let size_buckets = [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. ]

let register_metrics t ?(labels = []) reg =
  t.h_size <-
    Some
      (Obs.Registry.histogram reg ~labels ~buckets:size_buckets
         ~help:"Messages per switch per batched install pass"
         "identxx_shard_batch_size");
  Obs.Registry.counter_fn reg ~labels "identxx_shard_batch_flushes_total"
    ~help:"Batched install passes flushed" (fun () -> t.flushes);
  Obs.Registry.counter_fn reg ~labels "identxx_shard_batch_messages_total"
    ~help:"Switch-bound messages delivered through the batcher"
    (fun () -> t.batched)

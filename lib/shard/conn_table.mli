(** The per-host connection table: multiplexes every controller-to-
    daemon conversation for one host over a single logical connection,
    and {e coalesces} identical in-flight queries — concurrent
    table-miss flows that need the same host answered for the same
    query shape (the canonical key list) park on one waiter list and
    share a single wire exchange instead of issuing duplicates.

    The table is generic in the waiter type ['w]: the controller parks
    a per-flow handle (flow key + owning shard + which end of the flow
    the exchange resolves) and interprets it on settle. Determinism:
    waiters are returned in join order, and {!settle_host} returns
    exchanges in the order their first waiter joined, so settle-time
    fan-out is reproducible. *)

type 'w t

val create : unit -> 'w t

val join :
  'w t -> host:Netcore.Ipv4.t -> shape:string -> 'w ->
  [ `First | `Coalesced of int ]
(** Park a waiter on the (host, shape) exchange. [`First] means no
    exchange was in flight — the caller must actually send the wire
    query and becomes the {e initiator}. [`Coalesced n] means the
    waiter joined an existing exchange as its [n]th waiter and must
    {e not} send anything: the outcome arrives via {!settle}. *)

val settle : 'w t -> host:Netcore.Ipv4.t -> shape:string -> 'w list
(** Remove the (host, shape) exchange and return its waiters in join
    order (the initiator first); [[]] when none is in flight. Called on
    any terminal outcome — response, rejection, timeout, breaker — so
    every waiter sees exactly one settlement. *)

val settle_oldest : 'w t -> host:Netcore.Ipv4.t -> (string * 'w list) option
(** Remove and return the oldest in-flight exchange to [host] (the
    multiplexed connection is FIFO, so an arriving response pairs with
    the earliest outstanding wire query regardless of shape). *)

val settle_host : 'w t -> host:Netcore.Ipv4.t -> (string * 'w list) list
(** Remove {e every} exchange in flight to [host] and return
    [(shape, waiters)] pairs ordered by exchange start. Used when the
    whole host goes silent (timeout, breaker trip): one dead host fails
    all shapes at once. *)

val peek : 'w t -> host:Netcore.Ipv4.t -> shape:string -> 'w list
(** The current waiter list in join order, without settling. *)

val peek_oldest : 'w t -> host:Netcore.Ipv4.t -> 'w option
(** The initiator (first waiter) of the oldest in-flight exchange to
    [host], without settling — how a dispatcher routes an arriving
    response to the shard that will pair it ({!settle_oldest}). *)

val in_flight : 'w t -> int
(** Exchanges currently in flight (gauge). *)

val waiters : 'w t -> int
(** Waiters parked across all in-flight exchanges. *)

val started : 'w t -> int
(** Wire exchanges begun (cumulative [`First] joins). *)

val coalesced : 'w t -> int
(** Duplicate queries avoided (cumulative [`Coalesced] joins). *)

(** N deterministic shard run queues multiplexed onto one
    {!Sim.Engine} heap — the concurrency model for the sharded
    controller (DESIGN.md §12).

    Each shard is modelled as a sim process with its own mailbox:
    {!post} enqueues a message and schedules its execution at
    [max(now, busy_until)], advancing the shard's [busy_until] by the
    per-message {!service} time. Two regimes fall out:

    - [service = 0] (default): every message executes at the simulated
      instant it was posted, in global post order (the sim heap is
      FIFO among simultaneous events) — behaviour, audit trail, and
      metrics are byte-identical under {e any} shard count. This is
      the regime netsim and the determinism oracle run in.
    - [service > 0]: each shard serialises its own messages while
      distinct shards advance in parallel simulated time, modelling N
      controller cores; the burst makespan shrinks near-linearly in
      shard count (the [setup/concurrent-burst] bench). *)

type t

val create : ?service:Sim.Time.t -> shards:int -> Sim.Engine.t -> t
(** [service] is the simulated per-message processing cost (default
    {!Sim.Time.zero}).
    @raise Invalid_argument when [shards < 1]. *)

val shard_count : t -> int
val service : t -> Sim.Time.t

val shard_of_flow : t -> Netcore.Five_tuple.t -> int
(** The owning shard for a flow: [Five_tuple.hash mod shard_count].
    Deterministic, direction-sensitive — responses are routed back to
    the owner via the pending-table scan, not by re-hashing. *)

val current : t -> int option
(** The shard whose message is executing right now, if any — lets
    reentrant posts count as cross-shard traffic. *)

val post : t -> shard:int -> (unit -> unit) -> unit
(** Append a message to the shard's mailbox. It runs at
    [max(now, busy_until)]; messages posted to one shard run in post
    order. *)

val post_after :
  t -> shard:int -> delay:Sim.Time.t -> (unit -> unit) -> Sim.Engine.cancel
(** A cancellable timer that {e posts} into the shard's mailbox when it
    fires (so timeout handling also serialises with the shard's other
    work). Cancelling after the fire is a no-op as usual. *)

val broadcast : t -> (int -> unit) -> unit
(** Deliver a control message to every shard, in shard order, executing
    immediately — the propagation path for shared state (policy
    epochs, proactive sync, breaker trips, host changes). Synchronous
    delivery in a fixed order keeps runs reproducible under any shard
    count; each delivery to a foreign shard counts as a cross-shard
    message. *)

val queue_depth : t -> int -> int
(** Messages posted to the shard but not yet drained. *)

val posted : t -> int
val processed : t -> int
val cross_messages : t -> int

val makespan : t -> Sim.Time.t
(** The largest [busy_until] across shards — with [service > 0], the
    simulated completion time of all posted work; the quantity the
    concurrent-burst bench divides flow count by. *)

val register_metrics : t -> ?labels:Obs.Registry.labels -> Obs.Registry.t -> unit
(** Registers [identxx_shard_queue_depth] and
    [identxx_shard_messages_total] per shard (label [shard]) and the
    global [identxx_shard_cross_messages_total], on top of [labels]. *)

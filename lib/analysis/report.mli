(** Rendering of {!Check} findings for humans (text) and machines
    (JSON), mapping lines in the concatenated ruleset back to the
    contributing [.control] file. *)

val locator : (string * string) list -> int -> string * int
(** [locator files line] maps a 1-based line in
    [String.concat "\n" (List.map snd files)] to [(file, local_line)].
    [files] must be in concatenation order. *)

type located = { file : string; local_line : int; finding : Check.finding }
(** [file = ""] (and [local_line = 0]) for whole-ruleset findings. *)

val locate : (string * string) list -> Check.finding list -> located list
val text_line : located -> string
val to_text : located list -> string
val to_json : located list -> string

val exit_code : Check.finding list -> int
(** 1 iff any error-severity finding; warnings and info exit 0. *)

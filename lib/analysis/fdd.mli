(** Forwarding decision diagrams for PF+=2 rulesets.

    {!compile} turns a whole ruleset into a {e reduced, ordered decision
    diagram} over the five header dimensions a rule can constrain, in
    the fixed variable order

    {v proto -> src address -> dst address -> src port -> dst port v}

    Each internal node partitions one dimension into maximal integer
    intervals (a CIDR prefix is an aligned interval, so prefix tests
    need no special casing); leaves are {!verdict}s. Nodes are
    hash-consed and adjacent equal children merged, so the diagram is
    canonical for the fixed order: two rulesets denote the same
    header-space function iff they compile to the same root — the
    NetKAT/FDD idea (frenetic's compiler pipeline) adapted to PF's
    quick/last-match semantics.

    Rules whose outcome depends on [with] clauses, dictionary lookups,
    or host attributes cannot be decided from headers alone. The
    compiler tracks, per point of flow space, {e every} verdict any
    assignment of [with]-clause truth values could produce: when they
    all agree the leaf is {!Static} (with the possible deciding rule
    lines), otherwise {!Reactive} with the lines and classified inputs
    the outcome hinges on. [Static] is exact, not heuristic: a static
    leaf's action equals {!Pf.Eval}'s verdict for every context.

    The diagram is the semantic foundation for equivalence checking
    ({!equiv}, with concrete counterexample flows), change-impact
    analysis ({!diff}), and static-slice extraction ({!static_slice} —
    the input to a proactive flow-table compiler: static regions can be
    installed at switch connect, only the reactive residue needs the
    controller).

    Diagrams live in one global hash-consed store (grown monotonically,
    deduplicated across compiles), so values from different {!compile}
    calls can be compared and combined freely. *)

type t
(** A compiled diagram (an index into the shared node store). *)

type interval = int * int
(** Inclusive integer interval. *)

(** Why a region of flow space cannot be decided from headers alone. *)
type reason = {
  lines : int list;
      (** Source lines of the conditional rules the verdict may hinge
          on, ascending. *)
  inputs : Pf.Ast.cond_input list;
      (** Classified [with]-clause inputs of those rules. *)
  may_default : bool;
      (** The implicit default is still reachable (every influencing
          conditional rule can fail to match). *)
}

type verdict =
  | Static of { action : Pf.Ast.action; lines : int list }
      (** Every evaluation context yields [action]. [lines] are the
          rules that may be the deciding match (ascending); line [0]
          stands for the implicit default. *)
  | Reactive of reason
      (** The verdict depends on flow-time information. *)

val compile : ?default:Pf.Ast.action -> Pf.Env.t -> t
(** Compile a resolved environment ({!Pf.Env.rules} order = evaluation
    order). [default] is the implicit verdict when no rule matches
    (PF's pass, like {!Pf.Eval.eval}). *)

val compile_rules :
  ?default:Pf.Ast.action ->
  lookup:(string -> Netcore.Prefix.t list option) ->
  Pf.Ast.rule list ->
  t
(** As {!compile} but over a bare rule list with an explicit table
    [lookup]. A rule naming a table [lookup] cannot resolve matches no
    flow (the caller reports the broken table separately). *)

val lookup : t -> Netcore.Five_tuple.t -> verdict
(** The verdict for one flow: a walk of at most five nodes with a
    binary search per node — sublinear in ruleset size, unlike
    {!Pf.Eval}'s rule scan. *)

val node_count : t -> int
(** Reachable nodes, leaves included — the diagram-size statistic. *)

val static_coverage : t -> float
(** Fraction of the whole flow space (by volume) whose leaf is
    {!Static} — what a proactive compiler could install. *)

(** {2 Equivalence and differential analysis}

    Verdicts are compared by {e outcome}: static-pass, static-block, or
    reactive. Deciding lines and reactive reasons are reporting detail,
    not semantics — two independently written but equivalent policies
    compare equal. *)

type counterexample = {
  flow : Netcore.Five_tuple.t;  (** Lowest differing flow found. *)
  left : verdict;
  right : verdict;
}

val equiv : t -> t -> (unit, counterexample) result
(** [Ok ()] iff the two diagrams give every point of flow space the
    same outcome; otherwise a concrete counterexample flow. This is the
    translation-validation oracle for the proactive flow-table
    compiler. *)

type region = {
  r_proto : interval;
  r_src : interval;
  r_dst : interval;
  r_sport : interval;
  r_dport : interval;
}
(** A product region of flow space (one root-to-leaf path). *)

type delta = { d_region : region; d_left : verdict; d_right : verdict }

type diff_report = {
  deltas : delta list;  (** Example changed regions, at most [limit]. *)
  changed_fraction : float;
      (** Volume fraction of flow space whose outcome changed. *)
  truncated : bool;  (** More changed regions exist than [limit]. *)
}

val diff : ?limit:int -> t -> t -> diff_report
(** Change-impact analysis between two policy versions: exactly the
    flow space whose outcome differs. [limit] caps the example regions
    (default 64); [changed_fraction] is always exact. *)

(** {2 Static slice} *)

type slice = {
  s_static : (region * Pf.Ast.action * int list) list;
      (** Disjoint statically-decided regions with their action and
          possible deciding lines ([0] = default). *)
  s_reactive : (region * reason) list;  (** The reactive residue. *)
  s_coverage : float;  (** = {!static_coverage}. *)
  s_truncated : bool;  (** Region enumeration hit [limit]. *)
}

val static_slice : ?limit:int -> t -> slice
(** The proactive/reactive split. [limit] caps the total number of
    enumerated regions (default 4096). *)

val fallthrough : t -> region list
(** The regions where the implicit default may still decide — the
    residual flow space no unconditional rule covers ({!Check}'s
    [default-fallthrough]). *)

(** {2 Regions} *)

val region_witness : region -> Netcore.Five_tuple.t
(** The lowest flow inside a region. *)

val region_to_atoms : region -> Flowspace.atom list
(** Decompose a region into {!Flowspace} atoms (address intervals split
    into aligned CIDR blocks). *)

val region_to_string : region -> string

val verdict_to_string : verdict -> string
(** ["pass"], ["block"], or ["reactive"] with the deciding lines /
    influencing inputs in parentheses. *)

(** {2 Structural export}

    The diagram as a value tree, for downstream compilers that need the
    node structure (not just the flat region enumeration): the
    flow-table compiler factors a node's widest branch into a
    lower-priority wildcard rule, which requires seeing branches, not
    regions. *)

type tree =
  | T_verdict of verdict  (** A leaf. *)
  | T_split of { key : int; level : int; parts : (interval * tree) list }
      (** [parts] partition [[0, top]] of dimension [level] (0 = proto,
          1 = src, 2 = dst, 3 = sport, 4 = dport) into maximal
          intervals, ascending, adjacent children distinct. [key] is
          the hash-consed node id: equal [(level, key)] means an
          identical subdiagram (shared as one value here), so memo
          tables keyed on it survive recompiles of unchanged policy
          regions. *)

val tree : t -> tree
(** Unfold the diagram preserving sharing: subdiagrams reached along
    several paths are one (physically shared) [tree] value. *)

(* Symbolic flow-space algebra for PF+=2 rulesets.

   A flow-space is a finite union of atoms; an atom is a product of one
   constraint per header dimension (protocol set, source/destination
   prefix, source/destination port interval). Atoms are closed under
   intersection; subtraction of two atoms yields a union of atoms by
   carving one dimension at a time, so every set operation stays inside
   the representation. This is the match-space geometry used by
   header-space / packet-behavior analyses, restricted to the fields
   PF+=2 rules can constrain. *)

open Netcore

(* --- protocol sets --- *)

(* Closed under intersection and subtraction: [In] is a finite set,
   [NotIn] a co-finite one. [NotIn []] is the full 0..255 space. *)
type proto_set = In of Proto.t list | NotIn of Proto.t list

let proto_any = NotIn []
let proto_only p = In [ p ]

let proto_norm l = List.sort_uniq Proto.compare l

let proto_set_empty = function
  | In [] -> true
  | In _ -> false
  | NotIn l -> List.length (proto_norm l) >= 256

let proto_mem p = function
  | In l -> List.exists (Proto.equal p) l
  | NotIn l -> not (List.exists (Proto.equal p) l)

let proto_inter a b =
  match (a, b) with
  | In xs, _ -> In (List.filter (fun p -> proto_mem p b) xs)
  | _, In ys -> In (List.filter (fun p -> proto_mem p a) ys)
  | NotIn xs, NotIn ys -> NotIn (proto_norm (xs @ ys))

let proto_sub a b =
  match (a, b) with
  | In xs, _ -> In (List.filter (fun p -> not (proto_mem p b)) xs)
  | NotIn xs, In ys -> NotIn (proto_norm (xs @ ys))
  | NotIn _, NotIn ys ->
      (* a minus (everything but ys) = a ∩ ys *)
      proto_inter a (In ys)

let proto_witness = function
  | In (p :: _) -> Some p
  | In [] -> None
  | NotIn l ->
      let candidates =
        [ Proto.Tcp; Proto.Udp; Proto.Icmp ]
        @ List.init 256 (fun i -> Proto.of_int i)
      in
      List.find_opt (fun p -> not (List.exists (Proto.equal p) l)) candidates

let proto_set_to_string = function
  | NotIn [] -> "any"
  | In [] -> "none"
  | In l -> String.concat "|" (List.map Proto.to_string (proto_norm l))
  | NotIn l ->
      "!(" ^ String.concat "|" (List.map Proto.to_string (proto_norm l)) ^ ")"

(* --- port intervals --- *)

type interval = int * int (* inclusive; empty iff lo > hi *)

let port_any : interval = (0, 0xffff)
let interval_empty (lo, hi) = lo > hi

let interval_inter (a, b) (c, d) = (max a c, min b d)

(* Up to two residual intervals: below and above the subtrahend. *)
let interval_sub (a, b) (c, d) =
  if interval_empty (interval_inter (a, b) (c, d)) then [ (a, b) ]
  else
    List.filter
      (fun iv -> not (interval_empty iv))
      [ (a, min b (c - 1)); (max a (d + 1), b) ]

let interval_to_string (lo, hi) =
  if (lo, hi) = port_any then "any"
  else if lo = hi then string_of_int lo
  else Printf.sprintf "%d:%d" lo hi

(* --- prefix algebra --- *)

(* The sibling of [q]'s length-[len] ancestor: the other half produced
   when splitting the length-[len-1] ancestor. *)
let sibling_at q len =
  let qn = Ipv4.to_int (Prefix.network q) in
  let bit = 1 lsl (32 - len) in
  Prefix.make (Ipv4.of_int (qn lxor bit)) len

(* p minus q as a disjoint prefix list: walking from q up to p, keep
   the sibling shed at every level. *)
let prefix_sub p q =
  if not (Prefix.overlaps p q) then [ p ]
  else if Prefix.subset p q then []
  else
    (* q strictly inside p *)
    let rec go len acc =
      if len <= Prefix.length p then acc else go (len - 1) (sibling_at q len :: acc)
    in
    go (Prefix.length q) []

let prefix_inter p q =
  if Prefix.subset p q then Some p
  else if Prefix.subset q p then Some q
  else None

(* Complement of a union of prefixes, as a union of prefixes. *)
let prefix_complement prefixes =
  List.fold_left
    (fun acc q -> List.concat_map (fun p -> prefix_sub p q) acc)
    [ Prefix.all ] prefixes

(* --- atoms --- *)

type atom = {
  proto : proto_set;
  src : Prefix.t;
  dst : Prefix.t;
  sport : interval;
  dport : interval;
}

let atom_any =
  {
    proto = proto_any;
    src = Prefix.all;
    dst = Prefix.all;
    sport = port_any;
    dport = port_any;
  }

let atom_empty a =
  proto_set_empty a.proto || interval_empty a.sport || interval_empty a.dport

let atom_inter a b =
  match (prefix_inter a.src b.src, prefix_inter a.dst b.dst) with
  | Some src, Some dst ->
      let cand =
        {
          proto = proto_inter a.proto b.proto;
          src;
          dst;
          sport = interval_inter a.sport b.sport;
          dport = interval_inter a.dport b.dport;
        }
      in
      if atom_empty cand then None else Some cand
  | _ -> None

(* a \ b: carve one dimension at a time. Each step emits the part of
   [cur] outside b on that dimension and narrows [cur] to the part
   inside; what survives every step lies inside b and is dropped. *)
let atom_sub a b =
  match atom_inter a b with
  | None -> [ a ]
  | Some _ ->
      let acc = ref [] in
      let emit at = if not (atom_empty at) then acc := at :: !acc in
      let cur = ref a in
      (* proto *)
      let out = proto_sub !cur.proto b.proto in
      if not (proto_set_empty out) then emit { !cur with proto = out };
      cur := { !cur with proto = proto_inter !cur.proto b.proto };
      (* src prefix *)
      List.iter (fun p -> emit { !cur with src = p }) (prefix_sub !cur.src b.src);
      (match prefix_inter !cur.src b.src with
      | Some p -> cur := { !cur with src = p }
      | None -> ());
      (* dst prefix *)
      List.iter (fun p -> emit { !cur with dst = p }) (prefix_sub !cur.dst b.dst);
      (match prefix_inter !cur.dst b.dst with
      | Some p -> cur := { !cur with dst = p }
      | None -> ());
      (* ports *)
      List.iter (fun iv -> emit { !cur with sport = iv })
        (interval_sub !cur.sport b.sport);
      cur := { !cur with sport = interval_inter !cur.sport b.sport };
      List.iter (fun iv -> emit { !cur with dport = iv })
        (interval_sub !cur.dport b.dport);
      List.rev !acc

let atom_to_string a =
  Printf.sprintf "proto %s from %s port %s to %s port %s"
    (proto_set_to_string a.proto)
    (Prefix.to_string a.src)
    (interval_to_string a.sport)
    (Prefix.to_string a.dst)
    (interval_to_string a.dport)

(* --- spaces: unions of atoms --- *)

type t = atom list

let empty : t = []
let all : t = [ atom_any ]
let of_atoms atoms = List.filter (fun a -> not (atom_empty a)) atoms
let atoms (t : t) = t
let is_empty (t : t) = t = []
let union (a : t) (b : t) : t = a @ b

let sub (a : t) (b : t) : t =
  List.fold_left (fun acc batom -> List.concat_map (fun a -> atom_sub a batom) acc) a b

let inter (a : t) (b : t) : t =
  List.concat_map (fun x -> List.filter_map (fun y -> atom_inter x y) b) a

let covers ~outer ~inner = is_empty (sub inner outer)
let overlaps a b = not (is_empty (inter a b))

let witness (t : t) =
  List.find_map
    (fun a ->
      match proto_witness a.proto with
      | None -> None
      | Some proto ->
          Some
            (Five_tuple.make ~proto ~src:(Prefix.first a.src)
               ~dst:(Prefix.first a.dst) ~src_port:(fst a.sport)
               ~dst_port:(fst a.dport)))
    t

let to_string ?(max_atoms = 4) (t : t) =
  match t with
  | [] -> "(empty)"
  | atoms ->
      let shown = List.filteri (fun i _ -> i < max_atoms) atoms in
      let rest = List.length atoms - List.length shown in
      String.concat "; " (List.map atom_to_string shown)
      ^ (if rest > 0 then Printf.sprintf "; ... (%d more)" rest else "")

(* --- building spaces from rules --- *)

(* The prefixes an address spec covers, honouring negation. [lookup]
   resolves table names; an unknown table yields [None] (caller reports
   it separately and over- or under-approximates as appropriate). *)
let prefixes_of_spec ~lookup (spec : Pf.Ast.addr_spec option) =
  let positive addr =
    match addr with
    | Pf.Ast.Addr_any -> Some [ Prefix.all ]
    | Pf.Ast.Addr_prefix p -> Some [ p ]
    | Pf.Ast.Addr_list ps -> Some ps
    | Pf.Ast.Addr_table name -> lookup name
  in
  match spec with
  | None -> Some [ Prefix.all ]
  | Some { Pf.Ast.negated; addr } -> (
      match positive addr with
      | None -> None
      | Some ps -> Some (if negated then prefix_complement ps else ps))

let interval_of_port = function
  | None -> port_any
  | Some pm -> Pf.Ast.port_interval pm

(* The flow-space a rule's header constraints cover. [with] conditions
   are NOT represented: the result over-approximates the rule's true
   match set (exact on condition-free rules). Unknown tables resolve to
   the empty space so shadowing/conflict verdicts never rest on them. *)
let of_rule ~lookup (rule : Pf.Ast.rule) : t =
  let proto =
    match rule.Pf.Ast.proto with None -> proto_any | Some p -> proto_only p
  in
  match
    ( prefixes_of_spec ~lookup rule.Pf.Ast.from_.Pf.Ast.addr,
      prefixes_of_spec ~lookup rule.Pf.Ast.to_.Pf.Ast.addr )
  with
  | None, _ | _, None -> empty
  | Some srcs, Some dsts ->
      let sport = interval_of_port rule.Pf.Ast.from_.Pf.Ast.port in
      let dport = interval_of_port rule.Pf.Ast.to_.Pf.Ast.port in
      List.concat_map
        (fun src ->
          List.map (fun dst -> { proto; src; dst; sport; dport }) dsts)
        srcs
      |> of_atoms

let of_rule_env env rule =
  of_rule ~lookup:(fun name -> Pf.Env.table env name) rule

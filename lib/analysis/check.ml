(* Whole-ruleset static checks over PF+=2 policies.

   The effective ruleset the controller evaluates is concatenated from
   fragments written by mutually-distrustful parties — the
   administrator's header/footer, application vendors' rules,
   third-party security companies (§3.3-§3.5) — so rules that are
   shadowed, conflicting, or unanswerable are easy to ship and hard to
   spot. These checks reason about rule match-spaces symbolically
   (see {!Flowspace}) under real quick/last-match semantics. *)

open Netcore

type severity = Pf.Lint.severity = Error | Warning | Info

type finding = {
  line : int;  (** 0 when the finding has no single source line. *)
  severity : severity;
  code : string;
  message : string;
  witness : Five_tuple.t option;
      (** A concrete flow exhibiting the finding, when one exists. *)
}

let finding ?(line = 0) ?witness severity code message =
  { line; severity; code; message; witness }

let of_lint (f : Pf.Lint.finding) =
  {
    line = f.Pf.Lint.line;
    severity = f.Pf.Lint.severity;
    code = f.Pf.Lint.code;
    message = f.Pf.Lint.message;
    witness = None;
  }

let has_errors findings = List.exists (fun f -> f.severity = Error) findings

(* --- declaration helpers --- *)

let last_wins l =
  List.fold_left (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc) [] l

let table_defs decls =
  last_wins
    (List.filter_map
       (function Pf.Ast.Table_def (n, items) -> Some (n, items) | _ -> None)
       decls)

let macro_names decls =
  List.filter_map
    (function Pf.Ast.Macro_def (n, _) -> Some n | _ -> None)
    decls

let dict_names decls =
  List.filter_map
    (function Pf.Ast.Dict_def (n, _) -> Some n | _ -> None)
    decls

let intercept_keys decls =
  List.concat_map
    (function
      | Pf.Ast.Intercept_def i -> List.map fst i.Pf.Ast.pairs
      | _ -> [])
    decls

(* --- table resolution with findings instead of hard failure --- *)

(* Resolves every defined table, chasing [Item_ref]s with cycle
   detection. Unlike {!Pf.Env.build}, a broken table produces a finding
   and resolves to [None] so the remaining checks can still run. *)
let resolve_tables decls =
  let defs = table_defs decls in
  let findings = ref [] in
  let rec resolve stack name =
    if List.mem name stack then (
      findings :=
        finding Error "table-cycle"
          (Printf.sprintf "table reference cycle: <%s> -> <%s>"
             (String.concat "> -> <" (List.rev stack))
             name)
        :: !findings;
      None)
    else
      match List.assoc_opt name defs with
      | None ->
          (match stack with
          | parent :: _ ->
              findings :=
                finding Error "undefined-table"
                  (Printf.sprintf
                     "table <%s> (referenced from table <%s>) is never defined"
                     name parent)
                :: !findings
          | [] -> ());
          None
      | Some items ->
          List.fold_left
            (fun acc item ->
              match (acc, item) with
              | None, _ -> None
              | Some acc, Pf.Ast.Item_prefix p -> Some (p :: acc)
              | Some acc, Pf.Ast.Item_ref r -> (
                  match resolve (name :: stack) r with
                  | None -> None
                  | Some sub -> Some (List.rev_append sub acc)))
            (Some []) items
          |> Option.map List.rev
  in
  let resolved = List.map (fun (name, _) -> (name, resolve [] name)) defs in
  (resolved, List.sort_uniq compare !findings)

(* --- undefined references (today Eval only discovers these at flow
   time, deep inside the controller's decision path) --- *)

let undefined_references decls resolved =
  let macros = macro_names decls in
  let dicts = dict_names decls in
  let rules = Pf.Ast.rules decls in
  List.concat_map
    (fun (r : Pf.Ast.rule) ->
      let tables =
        List.filter_map
          (fun name ->
            match List.assoc_opt name resolved with
            | Some (Some _) -> None
            | Some None ->
                (* Defined but broken: the def-level finding covers it. *)
                None
            | None ->
                Some
                  (finding ~line:r.Pf.Ast.line Error "undefined-table"
                     (Printf.sprintf "table <%s> is never defined" name)))
          (Pf.Ast.tables_of_rule r)
      in
      let args =
        List.filter_map
          (function
            | Pf.Ast.Macro_ref name when not (List.mem name macros) ->
                Some
                  (finding ~line:r.Pf.Ast.line Error "undefined-macro"
                     (Printf.sprintf
                        "macro $%s is never defined; evaluation fails at flow \
                         time"
                        name))
            | Pf.Ast.Dict_access { dict; _ }
              when dict <> "src" && dict <> "dst"
                   && not (List.mem dict dicts) ->
                Some
                  (finding ~line:r.Pf.Ast.line Error "undefined-dict"
                     (Printf.sprintf
                        "dictionary @%s is never defined; evaluation fails at \
                         flow time"
                        dict))
            | _ -> None)
          (Pf.Ast.rule_args r)
      in
      tables @ args)
    rules
  |> List.sort_uniq compare

(* --- flow-space checks: shadowing, conflicts, fallthrough --- *)

(* Per-rule analysis record. [space] over-approximates the rule's match
   set ([with] conditions are ignored); [definite] marks rules whose
   space is exact AND whose match is unconditional — only those may
   cover other rules. *)
type rule_info = {
  rule : Pf.Ast.rule;
  space : Flowspace.t;
  resolvable : bool;
  definite : bool;
}

let rule_infos decls resolved =
  let lookup name =
    match List.assoc_opt name resolved with Some r -> r | None -> None
  in
  List.map
    (fun (r : Pf.Ast.rule) ->
      let resolvable =
        List.for_all
          (fun name -> lookup name <> None)
          (Pf.Ast.tables_of_rule r)
      in
      let space = Flowspace.of_rule ~lookup r in
      { rule = r; space; resolvable; definite = resolvable && Pf.Ast.cond_free r })
    (Pf.Ast.rules decls)

let lines_of ~where infos =
  String.concat ", " (List.map (fun i -> where i.rule.Pf.Ast.line) infos)

(* A rule never decides when (a) earlier unconditional quick rules
   cover its whole space (flows never reach it), or (b) it is not
   quick and every flow it matches is re-matched by a later
   unconditional rule, whose verdict overrides under last-match (a
   later quick rule also overrides: the earlier match never became the
   final verdict). Generalizes the dead-after-quick-all lint. *)
let shadowing ~where infos =
  let rec go before acc = function
    | [] -> List.rev acc
    | info :: after ->
        let acc =
          if not info.resolvable then acc
          else if Flowspace.is_empty info.space then
            finding ~line:info.rule.Pf.Ast.line Warning "unmatchable-rule"
              "no flow can match this rule (its flow-space is empty)"
            :: acc
          else
            let quick_before =
              List.filter
                (fun i -> i.definite && i.rule.Pf.Ast.quick)
                (List.rev before)
            in
            let later =
              if info.rule.Pf.Ast.quick then []
              else List.filter (fun i -> i.definite) after
            in
            let providers = quick_before @ later in
            let cover =
              List.fold_left
                (fun acc i -> Flowspace.union acc i.space)
                Flowspace.empty providers
            in
            if
              providers <> []
              && Flowspace.covers ~outer:cover ~inner:info.space
            then
              let touching =
                List.filter
                  (fun i -> Flowspace.overlaps i.space info.space)
                  providers
              in
              let because =
                match
                  ( List.filter (fun i -> List.memq i quick_before) touching,
                    List.filter (fun i -> List.memq i later) touching )
                with
                | qb, [] ->
                    Printf.sprintf
                      "earlier quick rules (%s) decide every flow before it \
                       is reached"
                      (lines_of ~where qb)
                | [], lt ->
                    Printf.sprintf
                      "later rules (%s) override it on every flow it matches"
                      (lines_of ~where lt)
                | qb, lt ->
                    Printf.sprintf
                      "earlier quick rules (%s) and later rules (%s) leave \
                       it no flow to decide"
                      (lines_of ~where qb) (lines_of ~where lt)
              in
              finding ~line:info.rule.Pf.Ast.line Warning "shadowed-rule"
                ("this rule never decides a flow: " ^ because)
              :: acc
            else acc
        in
        go (info :: before) acc after
  in
  go [] [] infos

(* Two unconditional rules with opposite actions whose spaces partially
   overlap (neither contains the other): the verdict on the overlap is
   decided purely by rule order, which is accidental when the rules
   come from different policy fragments. Containment is excluded
   because PF idiom relies on it (e.g. [block all] then [pass from
   <lan>]). *)
let conflicts ~where infos =
  let definite = List.filter (fun i -> i.definite) infos in
  let rec go acc = function
    | [] -> List.rev acc
    | a :: rest ->
        let acc =
          List.fold_left
            (fun acc b ->
              if a.rule.Pf.Ast.action = b.rule.Pf.Ast.action then acc
              else
                let overlap = Flowspace.inter a.space b.space in
                if
                  Flowspace.is_empty overlap
                  || Flowspace.covers ~outer:a.space ~inner:b.space
                  || Flowspace.covers ~outer:b.space ~inner:a.space
                then acc
                else
                  finding ~line:b.rule.Pf.Ast.line
                    ?witness:(Flowspace.witness overlap) Warning
                    "rule-conflict"
                    (Printf.sprintf
                       "partially overlaps the %s rule at %s with the \
                        opposite action; rule order alone decides the overlap"
                       (match a.rule.Pf.Ast.action with
                       | Pf.Ast.Pass -> "pass"
                       | Pf.Ast.Block -> "block")
                       (where a.rule.Pf.Ast.line))
                  :: acc)
            acc rest
        in
        go acc rest
  in
  go [] definite

(* The residual flow-space no unconditional rule decides: these flows
   fall through to the implicit default (PF's pass, or the deployment's
   default-deny) — what [99-local-footer.control] actually decides.
   Computed from the {!Fdd} residue (the leaves where line 0 is still a
   possible decider), which is exact under quick/last-match semantics,
   instead of the earlier pairwise flow-space subtraction. *)
let default_fallthrough decls resolved =
  let lookup name =
    match List.assoc_opt name resolved with Some r -> r | None -> None
  in
  let fdd = Fdd.compile_rules ~lookup (Pf.Ast.rules decls) in
  match Fdd.fallthrough fdd with
  | [] ->
      [
        finding Info "default-fallthrough"
          "no flow reaches the implicit default: unconditional rules cover \
           the whole flow-space";
      ]
  | first :: _ as regions ->
      let residual =
        Flowspace.of_atoms (List.concat_map Fdd.region_to_atoms regions)
      in
      [
        finding ~witness:(Fdd.region_witness first) Info "default-fallthrough"
          (Printf.sprintf
             "flows decided by no unconditional rule fall through to the \
              implicit default: %s"
             (Flowspace.to_string residual));
      ]

(* --- cross-config key check --- *)

(* Keys every honest daemon answers regardless of configuration (the
   built-in section: process owner, binary identity). *)
let daemon_builtin_keys =
  [
    Identxx.Key_value.user_id;
    Identxx.Key_value.group_id;
    "pid";
    Identxx.Key_value.app_path;
    Identxx.Key_value.app_name;
    "app-name";
    Identxx.Key_value.exe_hash;
  ]

let config_keys (cfg : Identxx.Config.t) =
  List.map (fun (p : Identxx.Key_value.pair) -> p.Identxx.Key_value.key)
    cfg.Identxx.Config.globals
  @ List.concat_map
      (fun (b : Identxx.Config.app_block) ->
        List.map
          (fun (p : Identxx.Key_value.pair) -> p.Identxx.Key_value.key)
          b.Identxx.Config.pairs)
      cfg.Identxx.Config.apps

(* A key queried through [@src]/[@dst] that no daemon configuration
   defines, no controller intercept supplies, and no built-in section
   carries can only ever be answered by a runtime registration — for a
   statically-configured fleet the [with] clause is permanently false
   (a None key makes the condition fail, §3.3). Only meaningful when
   daemon configs are supplied. *)
let unanswerable_keys decls configs =
  if configs = [] then []
  else
    let answerable =
      daemon_builtin_keys
      @ List.concat_map (fun (_, cfg) -> config_keys cfg) configs
      @ intercept_keys decls
    in
    let n = List.length configs in
    List.concat_map
      (fun (r : Pf.Ast.rule) ->
        List.filter_map
          (function
            | Pf.Ast.Dict_access { dict = ("src" | "dst") as dict; key; _ }
              when not (List.mem key answerable) ->
                Some
                  (finding ~line:r.Pf.Ast.line Warning "unanswerable-key"
                     (Printf.sprintf
                        "@%s[%s] can never be answered: none of the %d daemon \
                         config(s) defines '%s', it is not a built-in key, \
                         and no intercept supplies it (the condition is \
                         false unless registered at runtime)"
                        dict key n key))
            | _ -> None)
          (Pf.Ast.rule_args r))
      (Pf.Ast.rules decls)
    |> List.sort_uniq compare

(* --- entry point --- *)

let compare_findings a b =
  match compare a.line b.line with
  | 0 -> (
      match
        compare
          (Pf.Lint.severity_rank a.severity)
          (Pf.Lint.severity_rank b.severity)
      with
      | 0 -> compare (a.code, a.message) (b.code, b.message)
      | c -> c)
  | c -> c

let run ?(configs = []) ?(where = fun l -> "line " ^ string_of_int l) decls =
  let resolved, table_findings = resolve_tables decls in
  let infos = rule_infos decls resolved in
  let lint =
    (* The flow-space shadowing check subsumes dead-after-quick-all. *)
    Pf.Lint.check ~where decls
    |> List.filter (fun (f : Pf.Lint.finding) ->
           f.Pf.Lint.code <> "dead-after-quick-all")
    |> List.map of_lint
  in
  table_findings
  @ undefined_references decls resolved
  @ lint @ shadowing ~where infos @ conflicts ~where infos
  @ unanswerable_keys decls configs
  @ default_fallthrough decls resolved
  |> List.sort_uniq compare
  |> List.sort compare_findings

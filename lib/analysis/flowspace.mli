(** Symbolic flow-space algebra for PF+=2 rulesets.

    A flow-space is a finite union of {!atom}s — products of a protocol
    set, source/destination {!Netcore.Prefix.t}, and source/destination
    port intervals. The representation is closed under intersection and
    subtraction (subtraction splits prefixes and port intervals), which
    is all the whole-ruleset checks in {!Check} need: coverage is
    "subtract and test emptiness", a conflict witness is any member of
    a non-empty intersection. *)

(** A set of IP protocols: finite ([In]) or co-finite ([NotIn]).
    [NotIn []] is the full space. *)
type proto_set = In of Netcore.Proto.t list | NotIn of Netcore.Proto.t list

val proto_any : proto_set
val proto_only : Netcore.Proto.t -> proto_set
val proto_set_empty : proto_set -> bool
val proto_inter : proto_set -> proto_set -> proto_set
val proto_sub : proto_set -> proto_set -> proto_set

type interval = int * int
(** Inclusive port interval; empty iff [lo > hi]. *)

val port_any : interval
val interval_empty : interval -> bool
val interval_inter : interval -> interval -> interval

val interval_sub : interval -> interval -> interval list
(** At most two residual intervals (below and above the subtrahend). *)

val prefix_sub : Netcore.Prefix.t -> Netcore.Prefix.t -> Netcore.Prefix.t list
(** [prefix_sub p q] is [p \ q] as a disjoint prefix list: empty when
    [p ⊆ q], [[p]] when disjoint, otherwise one sibling prefix per
    level between the two lengths. *)

val prefix_complement : Netcore.Prefix.t list -> Netcore.Prefix.t list
(** Complement of a union of prefixes, as a union of prefixes. *)

type atom = {
  proto : proto_set;
  src : Netcore.Prefix.t;
  dst : Netcore.Prefix.t;
  sport : interval;
  dport : interval;
}

val atom_any : atom
val atom_empty : atom -> bool
val atom_inter : atom -> atom -> atom option
val atom_sub : atom -> atom -> atom list
val atom_to_string : atom -> string

type t = atom list
(** A flow-space: union of atoms (not necessarily disjoint). *)

val empty : t
val all : t
val of_atoms : atom list -> t
val atoms : t -> atom list
val is_empty : t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val sub : t -> t -> t

val covers : outer:t -> inner:t -> bool
(** [covers ~outer ~inner] iff every flow in [inner] is in [outer]. *)

val overlaps : t -> t -> bool

val witness : t -> Netcore.Five_tuple.t option
(** A concrete flow inside the space, if it is non-empty. *)

val to_string : ?max_atoms:int -> t -> string

val of_rule : lookup:(string -> Netcore.Prefix.t list option) -> Pf.Ast.rule -> t
(** The flow-space a rule's header constraints cover. [with] conditions
    are not represented, so the result over-approximates the rule's
    true match set (it is exact for condition-free rules). A table
    [lookup] returning [None] (unknown table) yields {!empty}. *)

val of_rule_env : Pf.Env.t -> Pf.Ast.rule -> t
